GO ?= go

.PHONY: build test race bench serve

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Service-path benchmarks; refreshes the committed BENCH_serve.json baseline.
bench:
	sh scripts/bench.sh

serve: build
	$(GO) run ./cmd/blackdp-serve
