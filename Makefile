GO ?= go

.PHONY: build test race bench profile serve testnet load

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark suites; refreshes the committed BENCH_serve.json,
# BENCH_dist.json and BENCH_core.json baselines (median of 5 runs).
bench:
	sh scripts/bench.sh

# Localhost sweep fabric: 3 worker processes + coordinator, kill one
# mid-sweep, assert byte-equality with a fleetless baseline.
testnet:
	sh scripts/testnet.sh

# CPU + heap profiles of a live sweep via blackdp-serve -pprof.
profile:
	sh scripts/profile.sh

serve: build
	$(GO) run ./cmd/blackdp-serve

# Multi-tenant soak: closed-loop clients across tenants against an
# in-process server, latency percentiles + fairness skew.
load:
	$(GO) run ./cmd/blackdp-load -clients 300 -jobs 2 -tenants 3 -saturate
