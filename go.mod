module blackdp

go 1.22
