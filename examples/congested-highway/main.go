// Congested highway: when traffic is dense, many vehicles may report the
// same suspicious node at once. BlackDP's verification table deduplicates
// concurrent d_reqs — the cluster head runs ONE examination, then answers
// every reporter — bounding RSU work under congestion (the paper's SIII-B
// optimisation). This example files five concurrent reports against one
// black hole and shows a single probe sequence servicing all of them.
package main

import (
	"fmt"
	"log"
	"time"

	"blackdp"
	"blackdp/internal/core"
	"blackdp/internal/wire"
)

func main() {
	cfg := blackdp.DefaultConfig()
	cfg.Seed = 21
	cfg.AttackerCluster = 1 // same cluster as the congested on-ramp
	cfg.DataPackets = 0

	world, err := blackdp.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	suspect := world.Attacker.NodeID()
	serial := world.Attacker.Credential().Cert.Serial

	// Pick five legitimate vehicles registered near the attacker to act as
	// concurrent reporters.
	var reporters []*core.VehicleAgent
	for _, v := range world.Vehicles {
		if v == world.Attacker || v == world.Destination {
			continue
		}
		if v.Mobile().ClusterAt(0) == 1 {
			reporters = append(reporters, v)
		}
		if len(reporters) == 5 {
			break
		}
	}
	if len(reporters) < 2 {
		log.Fatal("not enough vehicles in cluster 1; pick another seed")
	}

	verdicts := 0
	world.Sched.After(time.Second, func() {
		for _, r := range reporters {
			r := r
			err := r.ReportSuspect(suspect, 1, serial, func(res core.EstablishResult) {
				verdicts++
				fmt.Printf("  reporter %v got verdict: %v\n", r.NodeID(), res.Verdict)
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	})
	fmt.Printf("Congested cluster: %d vehicles report %v simultaneously\n\n", len(reporters), suspect)
	world.Sched.RunFor(20 * time.Second)

	head := world.Heads[1]
	st := head.Stats()
	ct, _ := world.Env.Tally.Lookup(suspect)
	fmt.Printf("\ncluster head %v:\n", head.NodeID())
	fmt.Printf("  d_reqs received:       %d\n", st.DReqReceived)
	fmt.Printf("  deduplicated:          %d (verification-table hits)\n", st.DReqDuplicates)
	fmt.Printf("  examinations run:      %d\n", st.Examinations)
	fmt.Printf("  probe packets sent:    %d (one bait sequence for everyone)\n", ct.ProbesSent)
	fmt.Printf("  verdicts delivered:    %d\n", verdicts)
	fmt.Printf("  suspect blacklisted:   %v\n", head.Membership().IsBlacklisted(suspect))
	if ct.Verdict == wire.VerdictMalicious {
		fmt.Println("\nOne examination served every reporter; RSU load stays flat under congestion.")
	}
}
