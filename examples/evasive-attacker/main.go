// Evasive attacker: the paper's clusters 8-10, where attackers randomly act
// legitimately under examination, renew their pseudonymous certificates
// mid-detection, or flee the highway. Runs a batch per cluster and shows
// accuracy collapsing toward the end of the highway while false positives
// stay at zero — and that even undetected attackers usually fail to land
// their attack (BlackDP "impedes" them, in the paper's words).
package main

import (
	"context"
	"fmt"
	"log"

	"blackdp"
)

func main() {
	const reps = 20
	fmt.Printf("Evasive black holes, %d runs per cluster (evasion active in 8-10)\n\n", reps)
	fmt.Println("cluster  accuracy  false-neg  false-pos  blocked-anyway")
	for _, cl := range []int{6, 7, 8, 9, 10} {
		cfg := blackdp.DefaultConfig()
		cfg.Seed = int64(1000 * cl)
		cfg.AttackerCluster = cl
		cfg.EvasiveClusters = []int{8, 9, 10}
		outcomes, err := blackdp.Sweep(context.Background(), cfg, reps)
		if err != nil {
			log.Fatal(err)
		}
		s := blackdp.Aggregate(outcomes)
		fmt.Printf("%7d  %7.0f%%  %8.0f%%  %8.0f%%  %d/%d\n",
			cl, 100*s.Accuracy(), 100*s.FNRate(), 100*s.FPRate(),
			s.PreventedOnly, s.FN)
	}
	fmt.Println("\nThe failure modes behind the false negatives mirror the paper's:")
	fmt.Println("  - the suspect acts legitimately while the RSU probes it (cleared);")
	fmt.Println("  - it renews its certificate, so probes chase a dead pseudonym;")
	fmt.Println("  - in cluster 10 it flees the highway before examination completes.")
}
