// Quickstart: run the paper's Table I scenario once — a 10 km highway with
// 100 vehicles, 10 RSU cluster heads, and a single black hole — and watch
// BlackDP detect and isolate the attacker.
package main

import (
	"context"
	"fmt"
	"log"

	"blackdp"
)

func main() {
	cfg := blackdp.DefaultConfig() // Table I parameters
	cfg.Seed = 42
	cfg.AttackerCluster = 3

	outcome, err := blackdp.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BlackDP quickstart — single black hole on a 10 km highway")
	fmt.Printf("  attacker in cluster %d\n", outcome.AttackerCluster)
	fmt.Printf("  route establishment ended: %s\n", outcome.EstablishStatus)
	if outcome.Detected {
		fmt.Printf("  attacker detected and isolated in %v\n", outcome.DetectionLatency)
		fmt.Printf("  detection cost: %d packets (paper: 6-9 for a single attack)\n", outcome.DetectionPackets)
	} else {
		fmt.Println("  attacker NOT detected")
	}
	fmt.Printf("  application data delivered after isolation: %d/%d\n",
		outcome.DataDelivered, outcome.DataSent)

	// The undefended baseline on the very same world: plain AODV trusts the
	// forged route and every packet dies in the black hole.
	cfg.Vehicle.Verify = false
	plain, err := blackdp.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSame world without BlackDP (plain AODV): %d/%d delivered\n",
		plain.DataDelivered, plain.DataSent)
}
