// Baseline comparison: scores the related-work sequence-number detectors
// (first-reply comparison, dynamic peak, static threshold) against BlackDP,
// in two regimes:
//
//  1. the dense Table I highway, where several replies race and the
//     heuristics have something to compare; and
//  2. the paper's connector topology — the attacker is the only bridge
//     between two highway segments, so the source receives exactly one
//     (forged) reply and magnitude-based heuristics go blind, while
//     BlackDP's behavioural probe convicts regardless.
package main

import (
	"context"
	"fmt"
	"log"

	"blackdp"
)

func main() {
	fmt.Println("Regime 1: dense highway, aggressive attacker, 10 runs")
	cfg := blackdp.DefaultConfig()
	cfg.Seed = 2
	scores, err := blackdp.CompareDetectors(context.Background(), cfg, 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range scores {
		fmt.Printf("  %-24s hit %2d/%d   false positives %d   undecided %d\n",
			s.Name, s.Hits, s.Runs, s.FalsePos, s.NoDecision)
	}

	fmt.Println("\nRegime 2: connector topology, varying forged-sequence inflation")
	fmt.Println("  (one reply only: the comparison method cannot compare at all)")
	for _, bonus := range []blackdp.SeqNum{30, 120, 500} {
		res, err := blackdp.RunConnector(2, bonus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  inflation +%-4d replies=%d  first-reply=%-5v peak=%-5v threshold=%-5v blackdp=%v\n",
			bonus, res.Replies,
			res.BaselineFlagged["first-reply-comparison"],
			res.BaselineFlagged["dynamic-peak"],
			res.BaselineFlagged["static-threshold"],
			res.BlackDPDetected)
	}
	fmt.Println("\nBlackDP keys on the protocol violation (answering a route request for a")
	fmt.Println("destination that does not exist), so the size of the lie never matters.")
}
