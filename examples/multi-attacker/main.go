// Multiple attackers: the paper's attack model allows several black holes
// in the network at once. Each isolation removes the currently freshest
// forger from the route race, so the next one wins the next discovery and
// gets reported in turn — the source peels them off sequentially and still
// converges to a verified route.
package main

import (
	"fmt"
	"log"

	"blackdp"
)

func main() {
	cfg := blackdp.DefaultConfig()
	cfg.Seed = 31
	cfg.AttackerCluster = 2
	cfg.ExtraAttackers = 2 // three black holes in total

	world, err := blackdp.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Three independent black holes on one highway")
	fmt.Printf("  primary: %v (cluster %d)\n", world.Attacker.NodeID(), cfg.AttackerCluster)
	for i, h := range world.Extras {
		fmt.Printf("  extra %d: %v (cluster %d)\n", i+1, h.Agent.NodeID(), h.Agent.Mobile().ClusterAt(0))
	}

	outcome := world.Run()
	fmt.Printf("\n  attackers present:  %d\n", outcome.AttackersPresent)
	fmt.Printf("  attackers isolated: %d\n", outcome.AttackersDetected)
	fmt.Printf("  false accusations:  %d\n", outcome.FalseAccusations)
	fmt.Printf("  final route status: %s\n", outcome.EstablishStatus)
	fmt.Printf("  data delivered:     %d/%d\n", outcome.DataDelivered, outcome.DataSent)
	fmt.Println("\nAttackers off the source-destination corridor are never probed — BlackDP")
	fmt.Println("is reactive by design; dormant black holes cost nothing until they forge.")
}
