// Cooperative attack walk-through: reproduces the paper's Figure 3 scenario
// — two cooperating black holes (B1 attracts traffic, B2 vouches for B1's
// fake route) — with the full detection trace printed step by step: the
// victim's verification probes, the d_req, the cluster head's bait probes
// under a disposable identity, the next-hop inquiry that exposes the
// teammate, and the isolation of both.
package main

import (
	"fmt"
	"log"

	"blackdp"
	"blackdp/internal/trace"
)

func main() {
	cfg := blackdp.DefaultConfig()
	cfg.Seed = 11
	cfg.Attack = blackdp.CooperativeBlackHole
	cfg.AttackerCluster = 2
	cfg.Trace = true

	world, err := blackdp.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Cooperative black hole detection (the paper's Figure 3 flow)")
	fmt.Printf("  primary attacker: %v (cluster %d)\n", world.Attacker.NodeID(), cfg.AttackerCluster)
	fmt.Printf("  accomplice:       %v\n", world.Teammate.NodeID())
	fmt.Printf("  victim:           %v, destination %v\n\n", world.Source.NodeID(), world.Destination.NodeID())

	outcome := world.Run()

	fmt.Println("protocol trace (verification, detection, isolation):")
	for _, e := range world.Env.Tracer.Filter(0, trace.CatVerify, trace.CatDetect, trace.CatIsolate, trace.CatAuthority) {
		fmt.Println(" ", e)
	}

	fmt.Println("\noutcome:")
	fmt.Printf("  primary detected:  %v\n", outcome.Detected)
	fmt.Printf("  accomplice caught: %v\n", outcome.TeammateDetected)
	fmt.Printf("  detection packets: %d (paper: 8-11 for cooperative attacks)\n", outcome.DetectionPackets)
	fmt.Printf("  data delivered after isolation: %d/%d\n", outcome.DataDelivered, outcome.DataSent)
}
