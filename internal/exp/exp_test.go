package exp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestMapReturnsResultsInReplicationOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := Map(context.Background(), 32, Options{Workers: workers},
				func(_ context.Context, rep int) (int, error) { return rep * rep, nil })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 32 {
				t.Fatalf("got %d results, want 32", len(got))
			}
			for rep, v := range got {
				if v != rep*rep {
					t.Errorf("result[%d] = %d, want %d", rep, v, rep*rep)
				}
			}
		})
	}
}

func TestMapSerialAndParallelIdentical(t *testing.T) {
	fn := func(_ context.Context, rep int) (int64, error) {
		// A deterministic function of the replication index alone, like a
		// seeded world: scheduling must not leak into the result.
		return Seed(42, "diff", rep), nil
	}
	serial, err := Map(context.Background(), 64, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 64, Options{Workers: 8}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel sweeps diverged:\n serial   %v\n parallel %v", serial, parallel)
	}
}

func TestMapZeroReps(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0 reps) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapWorkersOneRunsInline(t *testing.T) {
	// The serial path must execute on the calling goroutine in replication
	// order — it is the reference implementation the parallel path is
	// measured against.
	var order []int
	_, err := Map(context.Background(), 5, Options{Workers: 1},
		func(_ context.Context, rep int) (int, error) {
			order = append(order, rep) // no locking: single goroutine
			return rep, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("serial execution order %v", order)
	}
}

func TestMapReportsLowestFailingReplication(t *testing.T) {
	failAt := map[int]bool{3: true, 7: true, 11: true}
	fn := func(_ context.Context, rep int) (int, error) {
		if failAt[rep] {
			return 0, fmt.Errorf("rep %d failed", rep)
		}
		return rep, nil
	}
	for _, workers := range []int{1, 8} {
		got, err := Map(context.Background(), 16, Options{Workers: workers}, fn)
		if got != nil {
			t.Errorf("workers=%d: results returned alongside error", workers)
		}
		if err == nil || err.Error() != "rep 3 failed" {
			t.Errorf("workers=%d: error = %v, want the lowest failing replication (rep 3)", workers, err)
		}
	}
}

func TestMapCapturesPanicWithRepAndSeed(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 8, Options{
			Workers: workers,
			SeedOf:  func(rep int) int64 { return 1000 + int64(rep) },
		}, func(_ context.Context, rep int) (int, error) {
			if rep == 2 {
				panic("world exploded")
			}
			return rep, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error = %v, want *PanicError", workers, err)
		}
		if pe.Rep != 2 || pe.Seed != 1002 || pe.Value != "world exploded" {
			t.Errorf("workers=%d: PanicError = rep %d seed %d value %v", workers, pe.Rep, pe.Seed, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
	}
}

func TestMapPanicDoesNotKillOtherReplications(t *testing.T) {
	// Every replication must still be attempted: the sweep fails with the
	// panicking replication's error, not by tearing down the pool.
	var mu sync.Mutex
	ran := map[int]bool{}
	_, err := Map(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, rep int) (int, error) {
			mu.Lock()
			ran[rep] = true
			mu.Unlock()
			if rep == 0 {
				panic("first replication down")
			}
			return rep, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Rep != 0 {
		t.Fatalf("error = %v, want PanicError for rep 0", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 10 {
		t.Errorf("only %d/10 replications attempted after the panic", len(ran))
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	started := 0
	_, err := Map(ctx, 1000, Options{Workers: 4},
		func(ctx context.Context, rep int) (int, error) {
			mu.Lock()
			started++
			if started == 8 {
				cancel()
			}
			mu.Unlock()
			return rep, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if started == 1000 {
		t.Error("cancellation did not stop the sweep early")
	}
}

func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var dones []int
		_, err := Map(context.Background(), 20, Options{
			Workers:  workers,
			Progress: func(done, total int) { mu.Lock(); dones = append(dones, done); mu.Unlock() },
		}, func(_ context.Context, rep int) (int, error) {
			time.Sleep(time.Millisecond)
			return rep, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(dones) != 20 {
			t.Fatalf("workers=%d: %d progress calls, want 20", workers, len(dones))
		}
		sort.Ints(dones)
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("workers=%d: progress counts %v, want each of 1..20 exactly once", workers, dones)
			}
		}
	}
}

func TestMapOnRepSeesEveryReplicationOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		seen := map[int]int{} // rep -> calls; OnRep is serialised, no lock
		failures := map[int]bool{}
		_, err := Map(context.Background(), 24, Options{
			Workers: workers,
			OnRep: func(rep int, err error) {
				seen[rep]++
				if err != nil {
					failures[rep] = true
				}
			},
		}, func(_ context.Context, rep int) (int, error) {
			if rep == 5 {
				return 0, errors.New("rep 5 failed")
			}
			return rep, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected the rep 5 failure", workers)
		}
		if workers == 1 {
			// The serial path stops at the first failure, after reporting it.
			if len(seen) != 6 || !failures[5] {
				t.Fatalf("workers=1: OnRep saw reps %v (failures %v), want 0..5 with 5 failed", seen, failures)
			}
			continue
		}
		if len(seen) != 24 {
			t.Fatalf("workers=%d: OnRep saw %d reps, want 24", workers, len(seen))
		}
		for rep, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: OnRep saw rep %d %d times", workers, rep, n)
			}
		}
		if len(failures) != 1 || !failures[5] {
			t.Fatalf("workers=%d: OnRep failures %v, want exactly rep 5", workers, failures)
		}
	}
}

func TestSeedIsOrderIndependentAndLabelled(t *testing.T) {
	if Seed(1, "fig4", 42) != Seed(1, "fig4", 42) {
		t.Error("Seed is not a pure function")
	}
	if Seed(1, "fig4", 42) == Seed(1, "fig5", 42) {
		t.Error("different labels should decorrelate streams")
	}
	if Seed(1, "fig4", 42) == Seed(1, "fig4", 43) {
		t.Error("different replications should draw different seeds")
	}
	if Seed(1, "fig4", 42) == Seed(2, "fig4", 42) {
		t.Error("different base seeds should draw different seeds")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// TestMapScratchOnePerWorker pins the scratch lifecycle: newScratch runs
// exactly once per worker goroutine, each worker's replications all see the
// same scratch value, and no worker sees another worker's scratch.
func TestMapScratchOnePerWorker(t *testing.T) {
	const reps, workers = 32, 4
	var (
		mu     sync.Mutex
		made   []int           // worker indexes newScratch was called with
		usedBy = map[int]int{} // scratch worker index -> replication count
	)
	type scratch struct{ worker int }
	_, err := MapScratch(context.Background(), reps, Options{Workers: workers},
		func(worker int) *scratch {
			mu.Lock()
			made = append(made, worker)
			mu.Unlock()
			return &scratch{worker: worker}
		},
		func(_ context.Context, rep int, s *scratch) (int, error) {
			mu.Lock()
			usedBy[s.worker]++
			mu.Unlock()
			return rep, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(made) != workers {
		t.Fatalf("newScratch called %d times, want once per worker (%d)", len(made), workers)
	}
	sort.Ints(made)
	if !reflect.DeepEqual(made, []int{0, 1, 2, 3}) {
		t.Errorf("newScratch saw worker indexes %v, want [0 1 2 3]", made)
	}
	total := 0
	for _, n := range usedBy {
		total += n
	}
	if total != reps {
		t.Errorf("replications executed with a scratch = %d, want %d", total, reps)
	}
}

// TestMapScratchSerialReuse checks Workers == 1 builds a single scratch
// (worker 0) and threads it through every replication of the serial loop.
func TestMapScratchSerialReuse(t *testing.T) {
	calls := 0
	var seen []*int
	results, err := MapScratch(context.Background(), 5, Options{Workers: 1},
		func(worker int) *int {
			calls++
			if worker != 0 {
				t.Errorf("serial scratch built for worker %d, want 0", worker)
			}
			return new(int)
		},
		func(_ context.Context, rep int, s *int) (int, error) {
			seen = append(seen, s)
			*s++
			return *s, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("newScratch called %d times, want 1", calls)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[0] {
			t.Fatal("serial replications did not share one scratch")
		}
	}
	if !reflect.DeepEqual(results, []int{1, 2, 3, 4, 5}) {
		t.Errorf("results = %v (scratch state should persist across reps)", results)
	}
}

// TestMapScratchPanicCarriesAttribution mirrors Map's panic contract through
// the scratch-aware path.
func TestMapScratchPanicCarriesAttribution(t *testing.T) {
	_, err := MapScratch(context.Background(), 3, Options{
		Workers: 2,
		SeedOf:  func(rep int) int64 { return 100 + int64(rep) },
	},
		func(int) struct{} { return struct{}{} },
		func(_ context.Context, rep int, _ struct{}) (int, error) {
			if rep == 2 {
				panic("boom")
			}
			return rep, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	if pe.Rep != 2 || pe.Seed != 102 {
		t.Errorf("panic attributed to rep %d seed %d, want rep 2 seed 102", pe.Rep, pe.Seed)
	}
}
