// Package exp is the replication sweep engine behind every Monte-Carlo
// experiment in the repository. A sweep fans N independent simulator
// replications out across a pool of workers and collects their results in
// replication order, so the aggregate a caller sees is byte-identical
// whether the sweep ran on one goroutine or sixteen.
//
// Determinism is the contract: each replication derives its own seed from
// the sweep's base seed and its replication index alone (never from
// scheduling order), every replication builds a private world (the
// simulator keeps no package-level mutable state), and results land in a
// pre-sized slice at their replication index regardless of completion
// order. The differential test suites in this package, internal/scenario
// and cmd/blackdp-experiments hold the engine to that contract under the
// race detector.
package exp

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
)

// DefaultWorkers is the worker count used when Options.Workers is zero:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Seed derives the base RNG seed for replication rep of a sweep labelled
// label, using the same FNV-1a label hashing as sim.RNG.Split. The result
// is a pure function of (base, label, rep): two sweeps with different
// labels are decorrelated, and a given replication draws the identical
// world no matter which worker runs it or in what order.
func Seed(base int64, label string, rep int) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(rep))
	_, _ = h.Write(b[:])
	return int64(h.Sum64()) ^ base
}

// PanicError reports a replication whose function panicked. The sweep
// converts the panic into a per-replication failure — with the replication
// index and seed attached for reproduction — instead of crashing the whole
// sweep.
type PanicError struct {
	Rep   int    // replication index that panicked
	Seed  int64  // the replication's seed, when Options.SeedOf was set
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exp: replication %d (seed %d) panicked: %v", e.Rep, e.Seed, e.Value)
}

// Options tune one sweep.
type Options struct {
	// Workers is the pool size. Zero (or negative) means DefaultWorkers().
	// One runs every replication inline on the calling goroutine — the
	// exact serial loop the engine replaced.
	Workers int
	// SeedOf, when non-nil, reports the seed of a replication so panics
	// and errors can name it. It must be safe for concurrent use (a pure
	// function of rep is ideal).
	SeedOf func(rep int) int64
	// Progress, when non-nil, is called after each replication completes
	// with the number done so far and the total. Calls are serialised but,
	// with more than one worker, not in replication order.
	Progress func(done, total int)
	// OnRep, when non-nil, is called after each replication completes with
	// its index and error (nil on success), immediately before Progress.
	// Calls are serialised under the same lock as Progress, so streaming
	// consumers (e.g. NDJSON progress writers) need no synchronisation of
	// their own; a blocking OnRep stalls the whole pool, so buffer if the
	// sink is slow.
	OnRep func(rep int, err error)
}

// Map runs fn for every replication 0..reps-1 and returns the results in
// replication order. With Workers == 1 it is a plain serial loop; otherwise
// replications are distributed over the pool as workers free up.
//
// Error semantics are order-independent: if any replications fail, Map
// returns the error of the lowest-indexed failing replication — exactly
// what the serial loop would have returned first — regardless of worker
// count. A panic inside fn fails only that replication (reported as a
// *PanicError). Cancelling ctx stops the sweep early with ctx.Err().
func Map[T any](ctx context.Context, reps int, opt Options, fn func(ctx context.Context, rep int) (T, error)) ([]T, error) {
	return MapScratch(ctx, reps, opt,
		func(int) struct{} { return struct{}{} },
		func(ctx context.Context, rep int, _ struct{}) (T, error) { return fn(ctx, rep) })
}

// MapScratch is Map with per-worker scratch state. newScratch is called once
// per worker goroutine — with the worker's index, before that worker runs its
// first replication — and the value it returns is threaded into every fn call
// the worker executes. Scratch is the engine's hook for allocation reuse:
// event pools, RNG state, outcome accumulators and decode buffers can be
// built once per worker and recycled across replications instead of once per
// replication.
//
// The determinism contract is unchanged — and it is exactly why scratch is
// per-worker rather than per-replication: fn must produce the same result
// for a given rep no matter which worker (and therefore which scratch value)
// runs it, so scratch may only carry state whose contents never leak into
// results (free lists, buffers reset per use). Worker indexes exist only to
// let newScratch size or label state; they carry no scheduling guarantee.
// With Workers == 1 a single scratch (worker 0) serves the whole serial loop.
func MapScratch[S, T any](ctx context.Context, reps int, opt Options, newScratch func(worker int) S, fn func(ctx context.Context, rep int, scratch S) (T, error)) ([]T, error) {
	if reps <= 0 {
		return nil, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > reps {
		workers = reps
	}

	results := make([]T, reps)
	if workers == 1 {
		scratch := newScratch(0)
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := runRep(ctx, rep, opt, scratch, fn)
			if opt.OnRep != nil {
				opt.OnRep(rep, err)
			}
			if err != nil {
				return nil, err
			}
			results[rep] = out
			if opt.Progress != nil {
				opt.Progress(rep+1, reps)
			}
		}
		return results, nil
	}

	var (
		mu       sync.Mutex
		next     int
		done     int
		firstRep = reps // lowest failing replication index seen
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			scratch := newScratch(worker)
			for {
				mu.Lock()
				rep := next
				next++
				mu.Unlock()
				if rep >= reps || ctx.Err() != nil {
					return
				}
				out, err := runRep(ctx, rep, opt, scratch, fn)
				mu.Lock()
				if opt.OnRep != nil {
					opt.OnRep(rep, err) // under mu: serialised with Progress
				}
				if err != nil {
					// Keep the lowest-indexed failure so the reported
					// error matches the serial loop's. Later replications
					// still run: aborting on the first *observed* failure
					// would make the winner scheduling-dependent.
					if rep < firstRep {
						firstRep, firstErr = rep, err
					}
				} else {
					results[rep] = out
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, reps) // under mu: calls are serialised
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runRep invokes fn for one replication, converting a panic into a
// *PanicError carrying the replication's index and seed.
func runRep[S, T any](ctx context.Context, rep int, opt Options, scratch S, fn func(ctx context.Context, rep int, scratch S) (T, error)) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{Rep: rep, Value: v, Stack: debug.Stack()}
			if opt.SeedOf != nil {
				pe.Seed = opt.SeedOf(rep)
			}
			err = pe
		}
	}()
	return fn(ctx, rep, scratch)
}
