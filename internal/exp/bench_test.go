package exp_test

import (
	"context"
	"testing"
	"time"

	"blackdp/internal/exp"
	"blackdp/internal/scenario"
)

// benchConfig is the differential suite's small-but-real world: 4 clusters,
// 30 vehicles, full detection pipeline.
func benchConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.HighwayLengthM = 4000
	cfg.Vehicles = 30
	cfg.AttackerCluster = 2
	cfg.DataPackets = 5
	cfg.MaxSimTime = 45 * time.Second
	return cfg
}

// benchSweep measures one 8-replication sweep end to end (world build,
// discrete-event run, outcome extraction per replication).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		outcomes, err := scenario.RunSweep(context.Background(), cfg, 8,
			scenario.SweepOptions{Workers: workers}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(outcomes) != 8 {
			b.Fatalf("%d outcomes", len(outcomes))
		}
	}
}

// BenchmarkSweepSerial is the pre-engine baseline: every replication on one
// goroutine. Compare against BenchmarkSweepParallel* for the speedup on
// your hardware; the differential tests guarantee the outputs are
// identical, so the ratio is pure wall-clock gain.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel4 fixes four workers — the ISSUE's reference point
// (≥2x on a 4-core runner).
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }

// BenchmarkSweepParallel uses one worker per CPU, the -workers default.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, exp.DefaultWorkers()) }

// BenchmarkMapOverhead isolates the pool's own cost: empty replications,
// so anything measured is scheduling overhead per replication.
func BenchmarkMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := exp.Map(context.Background(), 64, exp.Options{Workers: exp.DefaultWorkers()},
			func(context.Context, int) (int, error) { return 0, nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
