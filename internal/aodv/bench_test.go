package aodv

import (
	"testing"
	"time"

	"blackdp/internal/wire"
)

// BenchmarkDiscovery measures a full 3-hop route discovery including the
// flood, the reply, and the collection window.
func BenchmarkDiscovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := newBenchNet(b, 0, 900, 1800, 2700)
		b.StartTimer()
		var got *DiscoverResult
		if err := net.router(1).Discover(4, func(r DiscoverResult) { got = &r }); err != nil {
			b.Fatal(err)
		}
		net.sched.RunFor(2 * time.Second)
		if got == nil || got.Best == nil {
			b.Fatal("discovery failed")
		}
	}
}

// BenchmarkDataForwarding measures steady-state multi-hop data delivery.
func BenchmarkDataForwarding(b *testing.B) {
	net := newBenchNet(b, 0, 900, 1800, 2700)
	var done *DiscoverResult
	if err := net.router(1).Discover(4, func(r DiscoverResult) { done = &r }); err != nil {
		b.Fatal(err)
	}
	net.sched.RunFor(2 * time.Second)
	if done == nil || done.Best == nil {
		b.Fatal("no route")
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.router(1).SendData(4, payload); err != nil {
			b.Fatal(err)
		}
		net.sched.RunFor(50 * time.Millisecond)
	}
}

// BenchmarkRouteTableUpdate measures the forwarding-table hot path.
func BenchmarkRouteTableUpdate(b *testing.B) {
	tbl := newTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dest := wire.NodeID(i%64 + 1)
		tbl.update(dest, wire.NodeID(i%8+100), uint8(i%10), wire.SeqNum(i), 0, time.Duration(i)+time.Second)
	}
}

// newBenchNet mirrors newTestNet for benchmarks.
func newBenchNet(b *testing.B, xs ...float64) *testNet {
	b.Helper()
	return newTestNet(b, Config{}, xs...)
}
