// Package aodv implements the Ad hoc On-Demand Distance Vector protocol the
// paper's network runs: reactive route discovery by RREQ flooding, RREP
// replies from the destination or from intermediates with fresh cached
// routes, sequence-number freshness, periodic Hello beacons with neighbour
// timeout, RERR propagation on link breaks, and hop-by-hop forwarding of
// data and of BlackDP's end-to-end Hello probes.
//
// The router is deliberately policy-free about security: route replies it
// originates are passed through a pluggable Sealer (the BlackDP agent seals
// them into signed envelopes), and every RREP candidate collected during
// discovery is surfaced with its envelope so the agent layer can
// authenticate issuers. Attack behaviours are implemented outside the
// router, by intercepting frames before they reach it (see package attack).
package aodv

import (
	"time"

	"blackdp/internal/wire"
)

// Config carries the protocol timing constants. Zero fields are replaced by
// the corresponding DefaultConfig values when the router is constructed.
type Config struct {
	// HelloInterval is the period of neighbour beacons.
	HelloInterval time.Duration
	// HelloJitter is the maximum random offset added to each beacon to
	// desynchronise neighbours.
	HelloJitter time.Duration
	// NeighborTimeout is how long after the last frame from a neighbour the
	// link is declared broken.
	NeighborTimeout time.Duration
	// RouteLifetime is the validity of a route entry from its last use or
	// refresh.
	RouteLifetime time.Duration
	// ReplyWait is the window after originating a RREQ during which route
	// replies are collected before the best is chosen (the paper's source
	// stores all RREPs in its route cache and picks the freshest).
	ReplyWait time.Duration
	// Retries is how many times a discovery re-floods after an empty
	// ReplyWait window before reporting failure.
	Retries int
	// TTL is the initial time-to-live of flooded RREQs.
	TTL uint8
	// ForwardJitter is the maximum random delay before rebroadcasting a
	// RREQ, standing in for CSMA contention and suppressing collisions.
	ForwardJitter time.Duration
	// FloodCacheTTL is how long (origin, flood-id) pairs are remembered for
	// duplicate suppression.
	FloodCacheTTL time.Duration
	// MaintenanceInterval is the period of the background sweep that prunes
	// expired routes, neighbours and flood-cache entries.
	MaintenanceInterval time.Duration
}

// DefaultConfig returns timing constants scaled for the paper's highway
// scenario (1000 m range, sub-second end-to-end paths).
func DefaultConfig() Config {
	return Config{
		HelloInterval:       2 * time.Second,
		HelloJitter:         200 * time.Millisecond,
		NeighborTimeout:     5 * time.Second,
		RouteLifetime:       10 * time.Second,
		ReplyWait:           750 * time.Millisecond,
		Retries:             2,
		TTL:                 16,
		ForwardJitter:       10 * time.Millisecond,
		FloodCacheTTL:       5 * time.Second,
		MaintenanceInterval: time.Second,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HelloInterval == 0 {
		c.HelloInterval = def.HelloInterval
	}
	if c.HelloJitter == 0 {
		c.HelloJitter = def.HelloJitter
	}
	if c.NeighborTimeout == 0 {
		c.NeighborTimeout = def.NeighborTimeout
	}
	if c.RouteLifetime == 0 {
		c.RouteLifetime = def.RouteLifetime
	}
	if c.ReplyWait == 0 {
		c.ReplyWait = def.ReplyWait
	}
	if c.Retries == 0 {
		c.Retries = def.Retries
	}
	if c.TTL == 0 {
		c.TTL = def.TTL
	}
	if c.ForwardJitter == 0 {
		c.ForwardJitter = def.ForwardJitter
	}
	if c.FloodCacheTTL == 0 {
		c.FloodCacheTTL = def.FloodCacheTTL
	}
	if c.MaintenanceInterval == 0 {
		c.MaintenanceInterval = def.MaintenanceInterval
	}
	return c
}

// Link is the router's transmit port; *radio.Interface satisfies it.
type Link interface {
	// Send transmits a marshalled packet to the pseudonym to
	// (wire.Broadcast for all neighbours). The result is link-layer
	// acknowledgement: false means the unicast certainly failed, which the
	// router treats as a broken link. Broadcasts always report true.
	Send(to wire.NodeID, payload []byte) bool
	// NodeID returns the device's current pseudonym.
	NodeID() wire.NodeID
}

// Sealer converts an originated control packet into its on-air payload. The
// default marshals the packet bare; the BlackDP agent substitutes one that
// wraps packets in signed envelopes.
type Sealer func(p wire.Packet) ([]byte, error)

// Candidate is one route reply collected during discovery, with enough
// context for the agent layer to authenticate it.
type Candidate struct {
	RREP     wire.RREP
	Envelope *wire.Secure // nil when the reply arrived unsigned
	From     wire.NodeID  // neighbour that delivered the reply
	At       time.Duration
}

// DiscoverResult reports the outcome of a route discovery.
type DiscoverResult struct {
	Dest       wire.NodeID
	Candidates []Candidate // every reply collected, arrival order
	Best       *Candidate  // freshest candidate (highest seq, then fewest hops), nil if none
	Attempts   int         // flood rounds used
}

// Callbacks are the router's upcalls into the owning agent. All fields are
// optional.
//
// Packet pointers handed to callbacks are only valid for the duration of the
// call: hot receive paths decode into reused scratch records. Callbacks that
// need a packet later must copy the value.
type Callbacks struct {
	// DataReceived fires when a Data packet addressed to this node arrives.
	DataReceived func(d *wire.Data, from wire.NodeID)
	// HelloProbe fires when an end-to-end Hello probe addressed to this
	// node arrives (request or reply). The agent owns answering probes —
	// BlackDP requires replies to be authenticated, which needs the agent's
	// credential. env is non-nil when the probe arrived sealed.
	HelloProbe func(h *wire.Hello, env *wire.Secure, from wire.NodeID)
	// RouteBroken fires when a previously valid route is invalidated.
	RouteBroken func(dest wire.NodeID)
	// ReplyObserved fires for every route reply addressed to this node,
	// including replies outside any discovery window.
	ReplyObserved func(c Candidate)
	// Cluster reports the node's current cluster registration, stamped into
	// route replies the router originates (paper SIII-A: packets carry the
	// sender's cluster-head association). Nil or 0 means unregistered.
	Cluster func() wire.ClusterID
	// AcceptReply gates route installation from a received reply. The
	// BlackDP layer wires it to the blacklist so isolated attackers cannot
	// re-enter the forwarding table; rejected replies are still surfaced to
	// discovery callbacks (for accounting) but never installed or relayed.
	// Nil accepts everything.
	AcceptReply func(rep *wire.RREP, from wire.NodeID) bool
}

// Stats counts router activity, exposed for tests and experiment reports.
type Stats struct {
	RREQOriginated uint64
	RREQForwarded  uint64
	RREPOriginated uint64
	RREPForwarded  uint64
	RERRSent       uint64
	DataOriginated uint64
	DataForwarded  uint64
	DataDelivered  uint64
	DataDropped    uint64 // undeliverable at an intermediate (no route)
	ProbeForwarded uint64
	BeaconsSent    uint64
}
