package aodv

import (
	"time"

	"blackdp/internal/wire"
)

// Route is a forwarding-table entry.
type Route struct {
	Dest     wire.NodeID
	NextHop  wire.NodeID
	HopCount uint8
	Seq      wire.SeqNum
	Expiry   time.Duration
	Valid    bool
}

// fresher reports whether a candidate (seq, hops) should replace the entry,
// per AODV: strictly higher sequence number wins; an equal sequence number
// wins on fewer hops; an invalid entry is always replaceable.
func (r *Route) fresher(seq wire.SeqNum, hops uint8) bool {
	if !r.Valid {
		return true
	}
	if seq != r.Seq {
		return seq > r.Seq
	}
	return hops < r.HopCount
}

// table is the routing table plus neighbour and flood-duplicate state.
type table struct {
	routes    map[wire.NodeID]*Route
	neighbors map[wire.NodeID]time.Duration // last heard
	floods    map[floodKey]time.Duration    // first seen
}

type floodKey struct {
	origin wire.NodeID
	id     uint32
}

func newTable() *table {
	return &table{
		routes:    make(map[wire.NodeID]*Route),
		neighbors: make(map[wire.NodeID]time.Duration),
		floods:    make(map[floodKey]time.Duration),
	}
}

// lookup returns the valid, unexpired route to dest, if any.
func (t *table) lookup(dest wire.NodeID, now time.Duration) (Route, bool) {
	r, ok := t.routes[dest]
	if !ok || !r.Valid || r.Expiry <= now {
		return Route{}, false
	}
	return *r, true
}

// update installs or refreshes a route if the candidate is fresher,
// reporting whether the table changed. Per RFC 3561, an invalid or expired
// entry is always replaceable regardless of its recorded sequence number —
// otherwise a black hole's inflated sequence number would veto legitimate
// routes long after its forged entry lapsed.
func (t *table) update(dest, nextHop wire.NodeID, hops uint8, seq wire.SeqNum, now, expiry time.Duration) bool {
	r, ok := t.routes[dest]
	if !ok {
		t.routes[dest] = &Route{Dest: dest, NextHop: nextHop, HopCount: hops, Seq: seq, Expiry: expiry, Valid: true}
		return true
	}
	live := r.Valid && r.Expiry > now
	if live && !r.fresher(seq, hops) {
		// Same-or-staler information still refreshes the timer when it
		// confirms the installed next hop (any traffic arriving through
		// that hop proves the link is alive).
		if r.NextHop == nextHop && expiry > r.Expiry {
			r.Expiry = expiry
		}
		return false
	}
	r.NextHop = nextHop
	r.HopCount = hops
	r.Seq = seq
	r.Expiry = expiry
	r.Valid = true
	return true
}

// touch extends a route's lifetime on active use.
func (t *table) touch(dest wire.NodeID, expiry time.Duration) {
	if r, ok := t.routes[dest]; ok && r.Valid && expiry > r.Expiry {
		r.Expiry = expiry
	}
}

// invalidate marks the route to dest broken, returning the stale entry and
// whether anything changed.
func (t *table) invalidate(dest wire.NodeID) (Route, bool) {
	r, ok := t.routes[dest]
	if !ok || !r.Valid {
		return Route{}, false
	}
	r.Valid = false
	return *r, true
}

// invalidateVia breaks every valid route whose next hop is via, returning
// the broken entries.
func (t *table) invalidateVia(via wire.NodeID) []Route {
	var broken []Route
	for _, r := range t.routes {
		if r.Valid && r.NextHop == via {
			r.Valid = false
			broken = append(broken, *r)
		}
	}
	return broken
}

// heard records traffic from a neighbour.
func (t *table) heard(n wire.NodeID, now time.Duration) {
	t.neighbors[n] = now
}

// appendStale appends neighbours silent past the timeout to dst and forgets
// them, returning the extended slice so the caller can reuse one scratch
// buffer across maintenance rounds.
func (t *table) appendStale(dst []wire.NodeID, now, timeout time.Duration) []wire.NodeID {
	for n, last := range t.neighbors {
		if now-last >= timeout {
			dst = append(dst, n)
			delete(t.neighbors, n)
		}
	}
	return dst
}

// seenFlood records a flood identifier, reporting whether it was already
// known (a duplicate to suppress).
func (t *table) seenFlood(origin wire.NodeID, id uint32, now time.Duration) bool {
	k := floodKey{origin: origin, id: id}
	if _, dup := t.floods[k]; dup {
		return true
	}
	t.floods[k] = now
	return false
}

// prune drops expired invalid routes and aged flood-cache entries.
func (t *table) prune(now, floodTTL time.Duration) {
	for dest, r := range t.routes {
		if r.Expiry+floodTTL <= now && (!r.Valid || r.Expiry <= now) {
			delete(t.routes, dest)
		}
	}
	for k, seen := range t.floods {
		if now-seen >= floodTTL {
			delete(t.floods, k)
		}
	}
}
