package aodv

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"blackdp/internal/wire"
)

// TestFloodTerminatesProperty: on random connected line topologies, a
// discovery flood always terminates, every router forwards a given flood at
// most once, and total forwards are bounded by the node count.
func TestFloodTerminatesProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 3 // 3..10 nodes
		xs := make([]float64, n)
		x := 0.0
		for i := range xs {
			xs[i] = x
			x += 300 + float64(r.Intn(600)) // 300-900 m spacing: connected
		}
		net := newTestNet(t, Config{}, xs...)
		done := false
		if err := net.router(1).Discover(wire.NodeID(n), func(DiscoverResult) { done = true }); err != nil {
			return false
		}
		net.sched.RunFor(10 * time.Second)
		if !done {
			return false
		}
		for i := 2; i < n; i++ {
			if f := net.router(wire.NodeID(i)).Stats().RREQForwarded; f > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRouteTableSeqMonotoneProperty: after any sequence of updates, the
// installed sequence number for a destination never decreases while the
// entry stays live.
func TestRouteTableSeqMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := newTable()
		const dest = wire.NodeID(5)
		var lastSeq wire.SeqNum
		now := time.Duration(0)
		for i := 0; i < 100; i++ {
			seq := wire.SeqNum(r.Intn(50))
			tbl.update(dest, wire.NodeID(r.Intn(4)+10), uint8(r.Intn(8)), seq, now, now+10*time.Second)
			route, ok := tbl.lookup(dest, now)
			if !ok {
				return false
			}
			if route.Seq < lastSeq {
				return false
			}
			lastSeq = route.Seq
			now += time.Duration(r.Intn(100)) * time.Millisecond
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestExpiredEntryAlwaysReplaceableProperty: RFC 3561 — once an entry
// lapses, any fresh information installs, however low its sequence number.
func TestExpiredEntryAlwaysReplaceableProperty(t *testing.T) {
	prop := func(oldSeq, newSeq uint16, hops uint8) bool {
		tbl := newTable()
		const dest = wire.NodeID(5)
		tbl.update(dest, 10, 3, wire.SeqNum(oldSeq), 0, time.Second)
		// Past expiry, the low-seq candidate must win.
		changed := tbl.update(dest, 11, hops, wire.SeqNum(newSeq), 2*time.Second, 12*time.Second)
		if !changed {
			return false
		}
		route, ok := tbl.lookup(dest, 2*time.Second)
		return ok && route.NextHop == 11 && route.Seq == wire.SeqNum(newSeq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdoptRouteOverridesFresherEntry(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	r := net.router(1)
	r.InstallRoute(5, 2, 1)
	// Poison with an absurdly fresh entry via a direct table write.
	r.table.update(5, 3, 1, 10_000, 0, time.Hour)
	r.AdoptRoute(5, 2, 1, 7)
	route, ok := r.RouteTo(5)
	if !ok || route.NextHop != 2 || route.Seq != 7 {
		t.Errorf("adopted route = %+v, want pinned via 2 seq 7", route)
	}
}

func TestPurgeNodeRemovesAllState(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	r := net.router(1)
	r.InstallRoute(5, 66, 1)  // route THROUGH the attacker
	r.InstallRoute(66, 66, 1) // route TO the attacker
	r.table.heard(66, 0)
	broken := 0
	r.cb.RouteBroken = func(wire.NodeID) { broken++ }
	r.PurgeNode(66)
	if _, ok := r.RouteTo(5); ok {
		t.Error("route via the purged node survived")
	}
	if _, ok := r.RouteTo(66); ok {
		t.Error("route to the purged node survived")
	}
	if broken != 1 {
		t.Errorf("RouteBroken fired %d times, want 1 (the via-route)", broken)
	}
	for _, n := range r.Neighbors() {
		if n == 66 {
			t.Error("purged node still a neighbour")
		}
	}
}

func TestLinkFailureInvalidatesAndReports(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800)
	net.discover(1, 3)
	// Node 2 vanishes (off-ramp): the next unicast from 1 fails its ACK,
	// the route breaks immediately (no neighbour-timeout wait), and the
	// sender returns ErrLinkFailed.
	net.ifcs[2].Detach()
	err := net.router(1).SendData(3, []byte("x"))
	if err == nil {
		t.Fatal("send over a dead link succeeded")
	}
	if _, ok := net.router(1).RouteTo(3); ok {
		t.Error("route survived the failed acknowledgement")
	}
}
