package aodv

import (
	"testing"
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// testNet is a line topology of routers on a highway, spaced so only
// adjacent nodes are in radio range.
type testNet struct {
	t       testing.TB
	sched   *sim.Scheduler
	medium  *radio.Medium
	routers map[wire.NodeID]*Router
	ifcs    map[wire.NodeID]*radio.Interface
}

// newTestNet places len(xs) routers with NodeIDs 1..n at the given X
// coordinates on a 10 km highway with the paper's 1000 m range.
func newTestNet(t testing.TB, cfg Config, xs ...float64) *testNet {
	t.Helper()
	h, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(42)
	net := &testNet{
		t:       t,
		sched:   sched,
		medium:  radio.NewMedium(sched, rng.Split("radio")),
		routers: make(map[wire.NodeID]*Router),
		ifcs:    make(map[wire.NodeID]*radio.Interface),
	}
	for i, x := range xs {
		id := wire.NodeID(i + 1)
		loc := mobility.Static{Pos: mobility.Position{X: x, Y: 100}, H: h}
		var router *Router
		ifc := net.medium.Attach(id, loc, func(f radio.Frame) { router.HandleFrame(f) })
		router = New(cfg, sched, rng.Split(id.String()), ifc, nil, Callbacks{})
		router.Start()
		net.routers[id] = router
		net.ifcs[id] = ifc
	}
	return net
}

func (n *testNet) router(id wire.NodeID) *Router { return n.routers[id] }

// discover runs a discovery from src to dst and returns the result after the
// network quiesces.
func (n *testNet) discover(src, dst wire.NodeID, opts ...DiscoverOption) DiscoverResult {
	n.t.Helper()
	var got *DiscoverResult
	err := n.router(src).Discover(dst, func(res DiscoverResult) { got = &res }, opts...)
	if err != nil {
		n.t.Fatalf("Discover: %v", err)
	}
	n.sched.RunFor(10 * time.Second)
	if got == nil {
		n.t.Fatal("discovery callback never fired")
	}
	return *got
}

func TestDiscoveryOverMultipleHops(t *testing.T) {
	// 1 - 2 - 3 - 4, adjacent spacing 900m, range 1000m.
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	res := net.discover(1, 4)
	if res.Best == nil {
		t.Fatal("no route found over 3 hops")
	}
	if res.Best.RREP.Issuer != 4 {
		t.Errorf("best reply issued by %v, want destination 4", res.Best.RREP.Issuer)
	}
	route, ok := net.router(1).RouteTo(4)
	if !ok {
		t.Fatal("no route installed after discovery")
	}
	if route.NextHop != 2 {
		t.Errorf("next hop = %v, want 2", route.NextHop)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", res.Attempts)
	}
}

func TestDiscoveryUnreachableRetriesThenFails(t *testing.T) {
	// Node 3 is beyond every radio horizon from 1 and 2.
	net := newTestNet(t, Config{}, 0, 900, 5000)
	res := net.discover(1, 3)
	if res.Best != nil {
		t.Fatalf("found a route to an unreachable node: %+v", res.Best)
	}
	wantAttempts := DefaultConfig().Retries + 1
	if res.Attempts != wantAttempts {
		t.Errorf("attempts = %d, want %d", res.Attempts, wantAttempts)
	}
}

func TestDataDeliveryEndToEnd(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	var delivered []*wire.Data
	net.router(4).cb.DataReceived = func(d *wire.Data, from wire.NodeID) {
		delivered = append(delivered, d)
	}
	net.discover(1, 4)
	if err := net.router(1).SendData(4, []byte("congestion at exit 12")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	net.sched.RunFor(time.Second)
	if len(delivered) != 1 {
		t.Fatalf("delivered %d data packets, want 1", len(delivered))
	}
	if string(delivered[0].Payload) != "congestion at exit 12" {
		t.Errorf("payload = %q", delivered[0].Payload)
	}
	if net.router(2).Stats().DataForwarded != 1 || net.router(3).Stats().DataForwarded != 1 {
		t.Error("intermediates did not forward the data packet")
	}
}

func TestSendDataWithoutRoute(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	if err := net.router(1).SendData(2, []byte("x")); err == nil {
		t.Error("SendData without a route succeeded")
	}
}

func TestIntermediateReplyFromCachedRoute(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	// Prime node 2 with a route to 4 (via a first discovery from 2).
	net.discover(2, 4)
	seqAt2, _ := net.router(2).RouteTo(4)
	if seqAt2.Seq == 0 {
		t.Fatal("cached route has zero seq; cannot test intermediate reply")
	}
	// Now 1 discovers 4: node 2 should answer from cache.
	res := net.discover(1, 4)
	if res.Best == nil {
		t.Fatal("no route found")
	}
	var fromIntermediate bool
	for _, c := range res.Candidates {
		if c.RREP.Issuer == 2 && c.RREP.Dest == 4 {
			fromIntermediate = true
		}
	}
	if !fromIntermediate {
		t.Errorf("no intermediate reply from node 2; candidates: %+v", res.Candidates)
	}
}

func TestMinDestSeqSuppressesStaleIntermediateReply(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	net.discover(2, 4)
	route, _ := net.router(2).RouteTo(4)
	// Demand freshness beyond node 2's cache: only the destination itself
	// may answer.
	res := net.discover(1, 4, WithMinDestSeq(route.Seq+100))
	if res.Best == nil {
		t.Fatal("no route found")
	}
	for _, c := range res.Candidates {
		if c.RREP.Issuer == 2 {
			t.Errorf("stale intermediate replied despite MinDestSeq: %+v", c.RREP)
		}
	}
	if res.Best.RREP.DestSeq < route.Seq+100 {
		t.Errorf("best reply seq %d below demanded %d", res.Best.RREP.DestSeq, route.Seq+100)
	}
}

func TestNextHopInquiry(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	net.discover(2, 4)
	res := net.discover(1, 4, WithNextHopInquiry())
	var answered bool
	for _, c := range res.Candidates {
		if c.RREP.Issuer == 2 {
			answered = true
			if c.RREP.NextHop != 3 {
				t.Errorf("intermediate named next hop %v, want 3", c.RREP.NextHop)
			}
		}
	}
	if !answered {
		t.Skip("intermediate did not answer first; destination reply won the cache race")
	}
}

func TestDuplicateFloodSuppression(t *testing.T) {
	// Dense cluster: everyone hears everyone.
	net := newTestNet(t, Config{}, 0, 100, 200, 300, 400)
	net.discover(1, 5)
	for id := wire.NodeID(2); id <= 4; id++ {
		if f := net.router(id).Stats().RREQForwarded; f > 1 {
			t.Errorf("node %v forwarded the flood %d times, want <=1", id, f)
		}
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	res := net.discover(1, 4, WithTTL(2))
	// TTL 2: RREQ reaches node 2 (TTL 2), rebroadcast reaches 3 with TTL 1,
	// which must not rebroadcast; node 4 never hears it.
	if res.Best != nil {
		t.Errorf("TTL-2 flood reached a 3-hop destination: %+v", res.Best.RREP)
	}
}

func TestHelloProbeEndToEnd(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	net.discover(1, 4)

	var probed *wire.Hello
	net.router(4).cb.HelloProbe = func(h *wire.Hello, env *wire.Secure, from wire.NodeID) {
		cp := *h // h is only valid during the callback
		probed = &cp
		// Reply along the learned reverse route.
		rep := &wire.Hello{Origin: 4, Dest: h.Origin, Nonce: h.Nonce, Reply: true}
		b, _ := rep.MarshalBinary()
		if err := net.router(4).SendProbe(h.Origin, b); err != nil {
			t.Errorf("reply SendProbe: %v", err)
		}
	}
	var reply *wire.Hello
	net.router(1).cb.HelloProbe = func(h *wire.Hello, env *wire.Secure, from wire.NodeID) {
		if h.Reply {
			cp := *h
			reply = &cp
		}
	}

	probe := &wire.Hello{Origin: 1, Dest: 4, Nonce: 77}
	b, _ := probe.MarshalBinary()
	if err := net.router(1).SendProbe(4, b); err != nil {
		t.Fatalf("SendProbe: %v", err)
	}
	net.sched.RunFor(time.Second)
	if probed == nil || probed.Nonce != 77 {
		t.Fatalf("probe did not reach the destination: %+v", probed)
	}
	if reply == nil || reply.Nonce != 77 {
		t.Fatalf("probe reply did not return: %+v", reply)
	}
}

func TestNeighborTimeoutBreaksRoutesAndSendsRERR(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	net.discover(1, 4)
	if _, ok := net.router(1).RouteTo(4); !ok {
		t.Fatal("no route installed")
	}
	var broken []wire.NodeID
	net.router(1).cb.RouteBroken = func(d wire.NodeID) { broken = append(broken, d) }

	// Node 2 goes dark: its neighbours stop hearing beacons.
	net.ifcs[2].SetSilenced(true)
	net.sched.RunFor(DefaultConfig().NeighborTimeout + 2*time.Second)

	if _, ok := net.router(1).RouteTo(4); ok {
		t.Error("route via the dead neighbour still valid")
	}
	found := false
	for _, d := range broken {
		if d == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("RouteBroken not fired for 4; got %v", broken)
	}
	if net.router(1).Stats().RERRSent == 0 {
		t.Error("no RERR sent after neighbour loss")
	}
}

func TestRERRPropagates(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900, 1800, 2700)
	net.discover(1, 4)
	// All of 1,2,3 should now have routes toward 4. Kill node 3; node 2
	// times it out and RERRs; node 1 must invalidate too.
	net.ifcs[3].SetSilenced(true)
	net.sched.RunFor(DefaultConfig().NeighborTimeout + 3*time.Second)
	if _, ok := net.router(1).RouteTo(4); ok {
		t.Error("node 1 still has a route to 4 after upstream break")
	}
}

func TestDataToBrokenRouteEmitsRERR(t *testing.T) {
	cfg := Config{NeighborTimeout: time.Hour} // keep neighbours alive; break routes another way
	net := newTestNet(t, cfg, 0, 900, 1800, 2700)
	net.discover(1, 4)
	// Invalidate node 2's route to 4 directly (as if it expired).
	net.router(2).table.invalidate(4)
	if err := net.router(1).SendData(4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	net.sched.RunFor(time.Second)
	st := net.router(2).Stats()
	if st.DataDropped != 1 {
		t.Errorf("DataDropped = %d, want 1", st.DataDropped)
	}
	if st.RERRSent == 0 {
		t.Error("no RERR after dropping data")
	}
}

func TestHelloBeaconsMaintainNeighbors(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	net.sched.RunFor(5 * time.Second)
	n1 := net.router(1).Neighbors()
	if len(n1) != 1 || n1[0] != 2 {
		t.Errorf("Neighbors() = %v, want [2]", n1)
	}
	if net.router(1).Stats().BeaconsSent == 0 {
		t.Error("no beacons sent")
	}
}

func TestSequenceNumberMonotonic(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	before := net.router(1).SeqNum()
	net.discover(1, 2)
	after := net.router(1).SeqNum()
	if after <= before {
		t.Errorf("own seq %d -> %d; discovery must increment it", before, after)
	}
}

func TestDestinationHonoursDemandedFreshness(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	res := net.discover(1, 2, WithMinDestSeq(500))
	if res.Best == nil {
		t.Fatal("no reply")
	}
	if res.Best.RREP.DestSeq <= 500 {
		t.Errorf("destination replied with seq %d, want > 500", res.Best.RREP.DestSeq)
	}
}

func TestDiscoverValidation(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	r := net.router(1)
	if err := r.Discover(1, func(DiscoverResult) {}); err == nil {
		t.Error("self-discovery accepted")
	}
	if err := r.Discover(wire.Broadcast, func(DiscoverResult) {}); err == nil {
		t.Error("broadcast discovery accepted")
	}
	if err := r.Discover(2, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestStoppedRouterRefusesWork(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	r := net.router(1)
	r.Stop()
	if err := r.Discover(2, func(DiscoverResult) {}); err != ErrStopped {
		t.Errorf("Discover on stopped router error = %v, want ErrStopped", err)
	}
	if err := r.SendData(2, nil); err != ErrStopped {
		t.Errorf("SendData on stopped router error = %v, want ErrStopped", err)
	}
	// Frames are ignored without panicking.
	r.HandleFrame(radio.Frame{From: 2, Payload: []byte{byte(wire.KindHello)}})
}

func TestCorruptFramesIgnored(t *testing.T) {
	net := newTestNet(t, Config{}, 0, 900)
	r := net.router(1)
	r.HandleFrame(radio.Frame{From: 2, Payload: nil})
	r.HandleFrame(radio.Frame{From: 2, Payload: []byte{0xff, 1, 2}})
	r.HandleFrame(radio.Frame{From: 2, Payload: []byte{byte(wire.KindRREQ), 1}}) // truncated
}

func TestRouteTableFreshness(t *testing.T) {
	tbl := newTable()
	now := time.Duration(0)
	exp := 10 * time.Second
	if !tbl.update(5, 2, 3, 10, now, exp) {
		t.Fatal("initial install rejected")
	}
	if tbl.update(5, 3, 5, 9, now, exp) {
		t.Error("stale seq replaced a fresher route")
	}
	if !tbl.update(5, 3, 2, 10, now, exp) {
		t.Error("equal-seq shorter route rejected")
	}
	if !tbl.update(5, 4, 9, 11, now, exp) {
		t.Error("higher-seq longer route rejected")
	}
	r, ok := tbl.lookup(5, now)
	if !ok || r.NextHop != 4 || r.Seq != 11 {
		t.Errorf("final route = %+v", r)
	}
	// Expiry honoured.
	if _, ok := tbl.lookup(5, exp+1); ok {
		t.Error("expired route returned")
	}
}

func TestRouteTableInvalidateVia(t *testing.T) {
	tbl := newTable()
	exp := 10 * time.Second
	tbl.update(5, 2, 1, 1, 0, exp)
	tbl.update(6, 2, 1, 1, 0, exp)
	tbl.update(7, 3, 1, 1, 0, exp)
	broken := tbl.invalidateVia(2)
	if len(broken) != 2 {
		t.Errorf("invalidateVia broke %d routes, want 2", len(broken))
	}
	if _, ok := tbl.lookup(7, 0); !ok {
		t.Error("unrelated route invalidated")
	}
}
