package aodv

import (
	"errors"
	"fmt"

	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// Router errors.
var (
	// ErrNoRoute reports a send with no valid route installed.
	ErrNoRoute = errors.New("aodv: no route to destination")
	// ErrStopped reports an operation on a stopped router.
	ErrStopped = errors.New("aodv: router stopped")
	// ErrLinkFailed reports a unicast whose link-layer acknowledgement
	// failed; the route has been invalidated.
	ErrLinkFailed = errors.New("aodv: link to next hop failed")
)

// Router is one node's AODV instance. It is single-threaded: all entry
// points must be invoked from scheduler events (the simulation's only
// execution context).
type Router struct {
	cfg   Config
	sched sim.Runtime
	rng   *sim.RNG
	link  Link
	seal  Sealer
	cb    Callbacks

	table      *table
	ownSeq     wire.SeqNum
	nextFlood  uint32
	discovery  map[wire.NodeID]*pendingDiscovery
	dataSeq    uint32
	stats      Stats
	stopped    bool
	helloTimer sim.Timer
	maintTimer sim.Timer

	// Reusable callbacks and scratch for the hot paths: the beacon and
	// maintenance closures are built once, forwarded RREQs ride pooled
	// records through AfterFunc, and the beacon packet and stale-neighbour
	// list are reused across rounds.
	helloFn      func()
	maintFn      func()
	fwdFn        func(any)
	fwdFree      []*wire.RREQ
	helloPkt     wire.Hello
	staleScratch []wire.NodeID

	// Receive-side scratch records for HandleFrame's fast paths. Safe
	// because frame handling never nests (deliveries are scheduler events)
	// and no handler or callback retains these kinds past the call.
	scratchHello wire.Hello
	scratchRREQ  wire.RREQ
	scratchRERR  wire.RERR
}

type pendingDiscovery struct {
	req        wire.RREQ
	candidates []Candidate
	attempts   int
	done       func(DiscoverResult)
	timer      sim.Timer
	wantNext   bool
	ttl        uint8
}

// New creates a router on link. Zero Config fields take defaults; seal may
// be nil for unsigned control packets; cb fields are optional.
func New(cfg Config, sched sim.Runtime, rng *sim.RNG, link Link, seal Sealer, cb Callbacks) *Router {
	if sched == nil || rng == nil || link == nil {
		panic("aodv: New requires scheduler, RNG and link")
	}
	if seal == nil {
		seal = func(p wire.Packet) ([]byte, error) { return p.MarshalBinary() }
	}
	r := &Router{
		cfg:       cfg.withDefaults(),
		sched:     sched,
		rng:       rng,
		link:      link,
		seal:      seal,
		cb:        cb,
		table:     newTable(),
		discovery: make(map[wire.NodeID]*pendingDiscovery),
	}
	r.helloFn = r.helloRound
	r.maintFn = r.maintenanceRound
	r.fwdFn = r.forwardRREQ
	return r
}

// Start begins Hello beaconing and background maintenance.
func (r *Router) Start() {
	if r.stopped {
		panic("aodv: Start after Stop")
	}
	r.scheduleHello()
	r.scheduleMaintenance()
}

// Stop cancels timers and pending discoveries; the router ignores further
// frames.
func (r *Router) Stop() {
	r.stopped = true
	r.helloTimer.Stop()
	r.maintTimer.Stop()
	for dest, d := range r.discovery {
		d.timer.Stop()
		delete(r.discovery, dest)
	}
}

// Stats returns a snapshot of activity counters.
func (r *Router) Stats() Stats { return r.stats }

// SetDataReceived replaces the data-delivery callback (the agent layer
// installs it after construction).
func (r *Router) SetDataReceived(fn func(d *wire.Data, from wire.NodeID)) {
	r.cb.DataReceived = fn
}

// SeqNum returns the node's own destination sequence number.
func (r *Router) SeqNum() wire.SeqNum { return r.ownSeq }

// RouteTo returns the current valid route to dest, if one is installed.
func (r *Router) RouteTo(dest wire.NodeID) (Route, bool) {
	return r.table.lookup(dest, r.sched.Now())
}

// Neighbors returns the pseudonyms heard from within the neighbour timeout.
func (r *Router) Neighbors() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(r.table.neighbors))
	for n := range r.table.neighbors {
		out = append(out, n)
	}
	return out
}

// InstallRoute force-installs a route entry; used by infrastructure nodes
// that learn member positions out of band, and by tests.
func (r *Router) InstallRoute(dest, nextHop wire.NodeID, hops uint8) {
	now := r.sched.Now()
	r.table.update(dest, nextHop, hops, 0, now, now+r.cfg.RouteLifetime)
}

// AdoptRoute unconditionally pins the route to dest through nextHop,
// overriding any fresher-looking entry. The BlackDP layer calls it with the
// candidate its verification accepted, so forwarding follows the
// authenticated choice rather than the rawest sequence-number race (which a
// black hole wins by construction).
func (r *Router) AdoptRoute(dest, nextHop wire.NodeID, hops uint8, seq wire.SeqNum) {
	r.table.routes[dest] = &Route{
		Dest:     dest,
		NextHop:  nextHop,
		HopCount: hops,
		Seq:      seq,
		Expiry:   r.sched.Now() + r.cfg.RouteLifetime,
		Valid:    true,
	}
}

// PurgeNode erases all routing state involving a node — as destination, next
// hop, or neighbour. The BlackDP layer calls it when a node lands on the
// blacklist, so no traffic keeps flowing into an isolated attacker.
func (r *Router) PurgeNode(id wire.NodeID) {
	delete(r.table.routes, id)
	for _, broken := range r.table.invalidateVia(id) {
		if r.cb.RouteBroken != nil {
			r.cb.RouteBroken(broken.Dest)
		}
	}
	delete(r.table.neighbors, id)
}

func (r *Router) scheduleHello() {
	delay := r.cfg.HelloInterval + r.rng.Jitter(r.cfg.HelloJitter)
	r.helloTimer = r.sched.After(delay, r.helloFn)
}

// helloRound is the reusable beacon callback: one broadcast, then reschedule.
func (r *Router) helloRound() {
	if r.stopped {
		return
	}
	// The beacon packet is reused across rounds; Origin is refreshed because
	// certificate renewal changes the node's pseudonym.
	r.helloPkt = wire.Hello{Origin: r.link.NodeID(), Dest: wire.Broadcast}
	r.sendBare(wire.Broadcast, &r.helloPkt)
	r.stats.BeaconsSent++
	r.scheduleHello()
}

func (r *Router) scheduleMaintenance() {
	r.maintTimer = r.sched.After(r.cfg.MaintenanceInterval, r.maintFn)
}

// maintenanceRound is the reusable maintenance callback: expire silent
// neighbours, advertise the routes that died with them, prune caches, and
// reschedule.
func (r *Router) maintenanceRound() {
	if r.stopped {
		return
	}
	now := r.sched.Now()
	r.staleScratch = r.table.appendStale(r.staleScratch[:0], now, r.cfg.NeighborTimeout)
	var unreachable []wire.UnreachableDest
	for _, n := range r.staleScratch {
		for _, broken := range r.table.invalidateVia(n) {
			unreachable = append(unreachable, wire.UnreachableDest{Node: broken.Dest, Seq: broken.Seq})
			if r.cb.RouteBroken != nil {
				r.cb.RouteBroken(broken.Dest)
			}
		}
	}
	if len(unreachable) > 0 {
		r.sendBare(wire.Broadcast, &wire.RERR{Reporter: r.link.NodeID(), Unreachable: unreachable})
		r.stats.RERRSent++
	}
	r.table.prune(now, r.cfg.FloodCacheTTL)
	r.scheduleMaintenance()
}

// DiscoverOption tunes a single route discovery.
type DiscoverOption func(*discoverOpts)

type discoverOpts struct {
	minDestSeq wire.SeqNum
	wantNext   bool
	ttl        uint8
}

// WithMinDestSeq demands replies at least this fresh (the RREQ's DestSeq
// field). BlackDP's second-round discovery uses it to demand a sequence
// number higher than the suspicious reply's.
func WithMinDestSeq(seq wire.SeqNum) DiscoverOption {
	return func(o *discoverOpts) { o.minDestSeq = seq }
}

// WithNextHopInquiry asks repliers to name their next hop toward the
// destination (BlackDP's cooperative-attacker exposure probe).
func WithNextHopInquiry() DiscoverOption {
	return func(o *discoverOpts) { o.wantNext = true }
}

// WithTTL overrides the flood TTL, bounding how far the RREQ travels.
func WithTTL(ttl uint8) DiscoverOption {
	return func(o *discoverOpts) { o.ttl = ttl }
}

// Discover floods a route request for dest, collects replies for the
// ReplyWait window (re-flooding up to Retries times if none arrive), then
// invokes done exactly once with everything gathered. A discovery already
// pending for the same destination is replaced (its callback fires with what
// it had).
func (r *Router) Discover(dest wire.NodeID, done func(DiscoverResult), opts ...DiscoverOption) error {
	if r.stopped {
		return ErrStopped
	}
	if done == nil {
		return errors.New("aodv: Discover requires a completion callback")
	}
	if dest == r.link.NodeID() || dest == wire.Broadcast {
		return fmt.Errorf("aodv: cannot discover route to %v", dest)
	}
	var o discoverOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.ttl == 0 {
		o.ttl = r.cfg.TTL
	}
	if prev, ok := r.discovery[dest]; ok {
		prev.timer.Stop()
		r.finish(dest, prev)
	}
	r.ownSeq++
	r.nextFlood++
	d := &pendingDiscovery{
		req: wire.RREQ{
			FloodID:   r.nextFlood,
			Origin:    r.link.NodeID(),
			OriginSeq: r.ownSeq,
			Dest:      dest,
			DestSeq:   o.minDestSeq,
			TTL:       o.ttl,
			WantNext:  o.wantNext,
		},
		done:     done,
		wantNext: o.wantNext,
		ttl:      o.ttl,
	}
	r.discovery[dest] = d
	r.flood(d)
	return nil
}

func (r *Router) flood(d *pendingDiscovery) {
	d.attempts++
	req := d.req
	req.FloodID = r.nextFlood // fresh flood id per round
	r.nextFlood++
	r.table.seenFlood(req.Origin, req.FloodID, r.sched.Now()) // don't process our own flood
	r.sendBare(wire.Broadcast, &req)
	r.stats.RREQOriginated++
	d.timer = r.sched.After(r.cfg.ReplyWait, func() {
		if len(d.candidates) == 0 && d.attempts <= r.cfg.Retries {
			r.flood(d)
			return
		}
		r.finish(d.req.Dest, d)
	})
}

func (r *Router) finish(dest wire.NodeID, d *pendingDiscovery) {
	if r.discovery[dest] == d {
		delete(r.discovery, dest)
	}
	res := DiscoverResult{Dest: dest, Candidates: d.candidates, Attempts: d.attempts}
	for i := range d.candidates {
		c := &d.candidates[i]
		if res.Best == nil || c.RREP.DestSeq > res.Best.RREP.DestSeq ||
			(c.RREP.DestSeq == res.Best.RREP.DestSeq && c.RREP.HopCount < res.Best.RREP.HopCount) {
			res.Best = c
		}
	}
	d.done(res)
}

// SendData routes an application payload toward dest over the installed
// route.
func (r *Router) SendData(dest wire.NodeID, payload []byte) error {
	if r.stopped {
		return ErrStopped
	}
	route, ok := r.table.lookup(dest, r.sched.Now())
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRoute, dest)
	}
	r.dataSeq++
	d := &wire.Data{Origin: r.link.NodeID(), Dest: dest, SeqNo: r.dataSeq, Payload: payload}
	r.table.touch(dest, r.sched.Now()+r.cfg.RouteLifetime)
	if !r.sendBare(route.NextHop, d) {
		r.linkBroken(route.NextHop)
		return fmt.Errorf("%w: via %v", ErrLinkFailed, route.NextHop)
	}
	r.stats.DataOriginated++
	return nil
}

// SendProbe routes an end-to-end Hello probe (pre-sealed by the agent)
// toward dest.
func (r *Router) SendProbe(dest wire.NodeID, sealed []byte) error {
	if r.stopped {
		return ErrStopped
	}
	route, ok := r.table.lookup(dest, r.sched.Now())
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRoute, dest)
	}
	r.table.touch(dest, r.sched.Now()+r.cfg.RouteLifetime)
	if !r.link.Send(route.NextHop, sealed) {
		r.linkBroken(route.NextHop)
		return fmt.Errorf("%w: via %v", ErrLinkFailed, route.NextHop)
	}
	return nil
}

func (r *Router) clusterOf() wire.ClusterID {
	if r.cb.Cluster == nil {
		return 0
	}
	return r.cb.Cluster()
}

// sendBare seals (default: bare-marshals) and transmits a packet,
// reporting link-layer acknowledgement (always true for broadcasts).
func (r *Router) sendBare(to wire.NodeID, p wire.Packet) bool {
	payload, err := r.seal(p)
	if err != nil {
		panic(fmt.Sprintf("aodv: sealing %v: %v", p.Kind(), err))
	}
	return r.link.Send(to, payload)
}

// linkBroken reacts to a failed unicast acknowledgement: every route
// through the dead next hop is invalidated and advertised broken.
func (r *Router) linkBroken(nextHop wire.NodeID) {
	var unreachable []wire.UnreachableDest
	for _, broken := range r.table.invalidateVia(nextHop) {
		unreachable = append(unreachable, wire.UnreachableDest{Node: broken.Dest, Seq: broken.Seq})
		if r.cb.RouteBroken != nil {
			r.cb.RouteBroken(broken.Dest)
		}
	}
	if len(unreachable) > 0 {
		r.sendBare(wire.Broadcast, &wire.RERR{Reporter: r.link.NodeID(), Unreachable: unreachable})
		r.stats.RERRSent++
	}
}

// HandleFrame is the router's receive entry point. The owning node wires its
// radio receiver here (possibly through an interception layer).
//
// The dominant bare kinds take a kind-peek fast path: Hello, RREQ and RERR
// decode into router-owned scratch records (their handlers and callbacks
// never retain the packet), RREP and Data into a fresh typed record. Secure
// envelopes and everything else go through the generic decoder. Handlers
// observe exactly the packets they always did, in the same order.
func (r *Router) HandleFrame(f radio.Frame) {
	if r.stopped {
		return
	}
	switch f.Kind() {
	case wire.KindHello:
		if r.scratchHello.UnmarshalBinary(f.Payload) != nil {
			return
		}
		r.table.heard(f.From, r.sched.Now())
		r.handleHello(&r.scratchHello, nil, f)
		return
	case wire.KindRREQ:
		if r.scratchRREQ.UnmarshalBinary(f.Payload) != nil {
			return
		}
		r.table.heard(f.From, r.sched.Now())
		r.handleRREQ(&r.scratchRREQ, f.From)
		return
	case wire.KindRERR:
		if r.scratchRERR.UnmarshalBinary(f.Payload) != nil {
			return
		}
		r.table.heard(f.From, r.sched.Now())
		r.handleRERR(&r.scratchRERR)
		return
	case wire.KindRREP:
		p := new(wire.RREP)
		if p.UnmarshalBinary(f.Payload) != nil {
			return
		}
		r.table.heard(f.From, r.sched.Now())
		r.handleRREP(p, nil, f, f.Payload)
		return
	case wire.KindData:
		p := new(wire.Data)
		if p.UnmarshalBinary(f.Payload) != nil {
			return
		}
		r.table.heard(f.From, r.sched.Now())
		r.handleData(p, f)
		return
	}

	pkt, err := wire.Decode(f.Payload)
	if err != nil {
		return // corrupt or foreign frame; ignore like real radios do
	}
	r.table.heard(f.From, r.sched.Now())

	var env *wire.Secure
	if sec, ok := pkt.(*wire.Secure); ok {
		inner, err := wire.Decode(sec.Inner)
		if err != nil {
			return
		}
		env = sec
		pkt = inner
	}

	switch p := pkt.(type) {
	case *wire.RREQ:
		r.handleRREQ(p, f.From)
	case *wire.RREP:
		r.handleRREP(p, env, f, f.Payload)
	case *wire.RERR:
		r.handleRERR(p)
	case *wire.Hello:
		r.handleHello(p, env, f)
	case *wire.Data:
		r.handleData(p, f)
	default:
		// Cluster and PKI packets are handled by the agent layers.
	}
}

func (r *Router) handleRREQ(p *wire.RREQ, from wire.NodeID) {
	now := r.sched.Now()
	if p.Origin == r.link.NodeID() {
		return // our own flood echoed back
	}
	if r.table.seenFlood(p.Origin, p.FloodID, now) {
		return
	}
	// Install/refresh the reverse route to the origin.
	r.table.update(p.Origin, from, p.HopCount+1, p.OriginSeq, now, now+r.cfg.RouteLifetime)

	me := r.link.NodeID()
	if p.Dest == me {
		// Destination reply: bump own sequence number to at least the
		// demanded freshness, per AODV.
		if p.DestSeq > r.ownSeq {
			r.ownSeq = p.DestSeq
		}
		r.ownSeq++
		rep := &wire.RREP{
			Origin:        p.Origin,
			Dest:          me,
			DestSeq:       r.ownSeq,
			HopCount:      0,
			Lifetime:      r.cfg.RouteLifetime,
			Issuer:        me,
			IssuerCluster: r.clusterOf(),
		}
		r.sendBare(from, rep)
		r.stats.RREPOriginated++
		return
	}
	if route, ok := r.table.lookup(p.Dest, now); ok && route.Seq >= p.DestSeq && route.Seq > 0 {
		// Intermediate reply from a fresh cached route.
		rep := &wire.RREP{
			Origin:        p.Origin,
			Dest:          p.Dest,
			DestSeq:       route.Seq,
			HopCount:      route.HopCount,
			Lifetime:      route.Expiry - now,
			Issuer:        me,
			IssuerCluster: r.clusterOf(),
		}
		if p.WantNext {
			rep.NextHop = route.NextHop
		}
		r.sendBare(from, rep)
		r.stats.RREPOriginated++
		return
	}
	// Rebroadcast with decremented TTL after a short contention jitter. The
	// pending copy rides a pooled record through the shared forward callback
	// instead of a per-flood closure.
	if p.TTL <= 1 {
		return
	}
	fwd := r.getFwd()
	*fwd = *p
	fwd.TTL--
	fwd.HopCount++
	r.sched.AfterFunc(r.rng.Jitter(r.cfg.ForwardJitter), r.fwdFn, fwd)
}

// getFwd takes a pooled RREQ record for a pending rebroadcast.
func (r *Router) getFwd() *wire.RREQ {
	if n := len(r.fwdFree); n > 0 {
		p := r.fwdFree[n-1]
		r.fwdFree[n-1] = nil
		r.fwdFree = r.fwdFree[:n-1]
		return p
	}
	return &wire.RREQ{}
}

// forwardRREQ is the shared rebroadcast callback; it recycles its record.
func (r *Router) forwardRREQ(a any) {
	p := a.(*wire.RREQ)
	if !r.stopped {
		r.sendBare(wire.Broadcast, p)
		r.stats.RREQForwarded++
	}
	*p = wire.RREQ{}
	r.fwdFree = append(r.fwdFree, p)
}

func (r *Router) handleRREP(p *wire.RREP, env *wire.Secure, f radio.Frame, raw []byte) {
	now := r.sched.Now()
	if r.cb.AcceptReply != nil && !r.cb.AcceptReply(p, f.From) {
		// Quarantined reply: surface it for accounting, install nothing,
		// relay nothing.
		if p.Origin == r.link.NodeID() {
			cand := Candidate{RREP: *p, Envelope: env, From: f.From, At: now}
			if r.cb.ReplyObserved != nil {
				r.cb.ReplyObserved(cand)
			}
			if d, ok := r.discovery[p.Dest]; ok {
				d.candidates = append(d.candidates, cand)
			}
		}
		return
	}
	// Learn the forward route toward the destination via the delivering
	// neighbour. Hop counts are as claimed by the issuer plus the distance
	// the reply has travelled; with unmutated signed replies we approximate
	// the travelled distance as zero for intermediates (the issuer's claim
	// dominates route choice, which is what the attack exploits).
	r.table.update(p.Dest, f.From, p.HopCount+1, p.DestSeq, now, now+r.cfg.RouteLifetime)
	if p.Issuer != p.Dest {
		// Remember the issuer as the gateway for this route.
		r.table.update(p.Issuer, f.From, 1, 0, now, now+r.cfg.RouteLifetime)
	}

	if p.Origin == r.link.NodeID() {
		cand := Candidate{RREP: *p, Envelope: env, From: f.From, At: now}
		if r.cb.ReplyObserved != nil {
			r.cb.ReplyObserved(cand)
		}
		if d, ok := r.discovery[p.Dest]; ok {
			d.candidates = append(d.candidates, cand)
		}
		return
	}
	// Forward along the reverse route toward the origin, unmodified (the
	// envelope, if any, stays intact).
	route, ok := r.table.lookup(p.Origin, now)
	if !ok {
		return // reverse route expired; the reply dies here
	}
	if !r.link.Send(route.NextHop, raw) {
		r.linkBroken(route.NextHop)
		return
	}
	r.stats.RREPForwarded++
}

func (r *Router) handleRERR(p *wire.RERR) {
	var propagate []wire.UnreachableDest
	for _, u := range p.Unreachable {
		route, ok := r.table.routes[u.Node]
		if !ok || !route.Valid || route.NextHop != p.Reporter {
			continue
		}
		if _, changed := r.table.invalidate(u.Node); changed {
			propagate = append(propagate, wire.UnreachableDest{Node: u.Node, Seq: route.Seq})
			if r.cb.RouteBroken != nil {
				r.cb.RouteBroken(u.Node)
			}
		}
	}
	if len(propagate) > 0 {
		r.sendBare(wire.Broadcast, &wire.RERR{Reporter: r.link.NodeID(), Unreachable: propagate})
		r.stats.RERRSent++
	}
}

func (r *Router) handleHello(p *wire.Hello, env *wire.Secure, f radio.Frame) {
	if p.Dest == wire.Broadcast {
		return // neighbour beacon; the heard() above did the work
	}
	now := r.sched.Now()
	// Gratuitous route learning: a routed probe teaches every hop the way
	// back to its origin, so the reply can travel the reverse path.
	r.table.update(p.Origin, f.From, p.Hops+1, 0, now, now+r.cfg.RouteLifetime)

	if p.Dest == r.link.NodeID() {
		if r.cb.HelloProbe != nil {
			r.cb.HelloProbe(p, env, f.From)
		}
		return
	}
	route, ok := r.table.lookup(p.Dest, now)
	if !ok {
		return // a forwarder with no route silently loses the probe
	}
	fwd := *p
	fwd.Hops++
	var acked bool
	if env != nil {
		// Forward the sealed envelope bytes unmodified so the signature
		// stays valid.
		acked = r.link.Send(route.NextHop, f.Payload)
	} else {
		acked = r.sendBare(route.NextHop, &fwd)
	}
	if !acked {
		r.linkBroken(route.NextHop)
		return
	}
	r.stats.ProbeForwarded++
}

func (r *Router) handleData(p *wire.Data, f radio.Frame) {
	now := r.sched.Now()
	if p.Dest == r.link.NodeID() {
		r.stats.DataDelivered++
		if r.cb.DataReceived != nil {
			r.cb.DataReceived(p, f.From)
		}
		return
	}
	route, ok := r.table.lookup(p.Dest, now)
	if !ok {
		r.stats.DataDropped++
		r.sendBare(wire.Broadcast, &wire.RERR{
			Reporter:    r.link.NodeID(),
			Unreachable: []wire.UnreachableDest{{Node: p.Dest}},
		})
		r.stats.RERRSent++
		return
	}
	r.table.touch(p.Dest, now+r.cfg.RouteLifetime)
	if !r.link.Send(route.NextHop, f.Payload) {
		r.stats.DataDropped++
		r.linkBroken(route.NextHop)
		return
	}
	r.stats.DataForwarded++
}
