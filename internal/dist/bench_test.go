package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
)

// BenchmarkDistDispatch prices one full sub-job round trip — coordinator
// chunking, HTTP dispatch, worker admission, a single replication, NDJSON
// stream-back, decode and merge. The seed changes every iteration so no
// chunk cache (coordinator or worker side) short-circuits the path; the
// number is dispatch overhead plus one replication, to be read against the
// single-replication cost in BENCH_core.json.
func BenchmarkDistDispatch(b *testing.B) {
	f := newFleet(b, 1, Config{ChunkReps: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.coord.Sweep(ctx, fastCfg(int64(i)), 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistDispatchCached prices the fully warm path: the same sweep
// over and over, answered from the coordinator's chunk cache without
// touching the worker. The gap to BenchmarkDistDispatch is the fabric's
// cache win per chunk.
func BenchmarkDistDispatchCached(b *testing.B) {
	f := newFleet(b, 1, Config{ChunkReps: 1})
	ctx := context.Background()
	cfg := fastCfg(1)
	if _, err := f.coord.Sweep(ctx, cfg, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.coord.Sweep(ctx, cfg, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistMerge prices the coordinator's merge loop alone: decoding a
// returned chunk payload and placing its outcomes at the replication
// offset, for a representative 8-replication chunk. This is the per-chunk
// coordinator cost that bounds merge throughput on wide fleets.
func BenchmarkDistMerge(b *testing.B) {
	const count = 8
	outs := make([]metrics.Outcome, count)
	for i := range outs {
		outs[i] = metrics.Outcome{Seed: int64(i), AttackerPresent: true, Detected: true, DetectionPackets: 12, IsolationPackets: 4}
	}
	payload, err := json.Marshal(chunkPayload{Outcomes: outs})
	if err != nil {
		b.Fatal(err)
	}
	results := make([]metrics.Outcome, 64)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, err := decodeChunk(payload, count)
		if err != nil {
			b.Fatal(err)
		}
		copy(results[(i%8)*count:], decoded)
	}
}

// BenchmarkDistSweepWorkers prices a whole 16-replication sweep through
// fleets of 1, 2 and 4 workers, against the same sweep run locally — the
// scaling curve quoted in EXPERIMENTS.md. On a laptop all workers share
// the host's cores, so this prices fabric overhead, not speedup.
func BenchmarkDistSweepWorkers(b *testing.B) {
	const reps = 16
	cfg := fastCfg(3)
	b.Run("local", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(1000 + i) // new world each iteration: no cache anywhere
			if _, err := scenario.RunSweep(ctx, c, reps, scenario.SweepOptions{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", nw), func(b *testing.B) {
			f := newFleet(b, nw, Config{ChunkReps: 4})
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Seed = int64(1000 + i)
				if _, err := f.coord.Sweep(ctx, c, reps, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
