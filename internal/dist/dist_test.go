package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blackdp/internal/scenario"
	"blackdp/internal/serve"
)

// fastCfg is the calibrated small world every fabric test sweeps: a few
// milliseconds per replication, so 20-seed differentials stay cheap even
// under -race.
func fastCfg(seed int64) scenario.Config {
	return scenario.Config{
		Seed:            seed,
		HighwayLengthM:  3000,
		Vehicles:        20,
		AttackerCluster: 2,
		DataPackets:     3,
		MaxSimTime:      30 * time.Second,
	}
}

// fleet is an in-process testnet: n real Workers behind httptest servers
// plus a coordinator pointed at them.
type fleet struct {
	coord   *Coordinator
	workers []*Worker
	servers []*httptest.Server
}

func newFleet(t testing.TB, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{Slots: 4})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		f.workers = append(f.workers, w)
		f.servers = append(f.servers, srv)
		cfg.Workers = append(cfg.Workers, srv.URL)
	}
	if cfg.ChunkReps == 0 {
		cfg.ChunkReps = 3
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.FleetGrace == 0 {
		cfg.FleetGrace = 10 * time.Second
	}
	f.coord = New(cfg)
	f.coord.Start()
	t.Cleanup(f.coord.Stop)
	return f
}

func chunkBody(t testing.TB, cfg scenario.Config, start, count int) []byte {
	t.Helper()
	canon, err := scenario.Canonical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(chunkRequest{Config: canon, Start: start, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postChunk posts one chunk to a worker handler and returns the HTTP
// status, the parsed stream lines and the final payload line (if any).
func postChunk(t *testing.T, h http.Handler, body []byte) (int, []chunkLine, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/chunks", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var lines []chunkLine
	var payload []byte
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	payloadNext := false
	for sc.Scan() {
		if payloadNext {
			payload = append([]byte(nil), sc.Bytes()...)
			payloadNext = false
			continue
		}
		var line chunkLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
		if line.Type == "result" {
			payloadNext = true
		}
	}
	return rec.Code, lines, payload, rec.Result().Header
}

func TestWorkerExecutesChunkAndCachesIt(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	body := chunkBody(t, fastCfg(1), 2, 3)

	code, lines, payload, hdr := postChunk(t, w.Handler(), body)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if hdr.Get("X-Blackdp-Cache") != "miss" {
		t.Errorf("first chunk cache header = %q, want miss", hdr.Get("X-Blackdp-Cache"))
	}
	outs, err := decodeChunk(payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The worker ran global replications [2,5): byte-for-byte what a local
	// range run produces, and the progress lines carry global indexes.
	want, err := scenario.RunSweepRange(context.Background(), fastCfg(1), 2, 3, scenario.SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, want) {
		t.Error("worker chunk outcomes diverge from local RunSweepRange")
	}
	seen := map[int]bool{}
	for _, line := range lines {
		if line.Type == "progress" {
			seen[line.Rep] = true
		}
	}
	for rep := 2; rep < 5; rep++ {
		if !seen[rep] {
			t.Errorf("no progress line for global rep %d (saw %v)", rep, seen)
		}
	}

	// Same sub-job again: answered from the chunk cache, payload verbatim.
	code, _, payload2, hdr := postChunk(t, w.Handler(), body)
	if code != http.StatusOK || hdr.Get("X-Blackdp-Cache") != "hit" {
		t.Fatalf("second chunk: status %d cache %q, want 200 hit", code, hdr.Get("X-Blackdp-Cache"))
	}
	if !bytes.Equal(payload, payload2) {
		t.Error("cached chunk payload is not byte-identical")
	}
	if st := w.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestWorkerRejectsBadChunks(t *testing.T) {
	w := NewWorker(WorkerConfig{MaxChunkReps: 4})
	for name, body := range map[string][]byte{
		"negative start": chunkBody(t, fastCfg(1), -1, 2),
		"zero count":     chunkBody(t, fastCfg(1), 0, 0),
		"oversize chunk": chunkBody(t, fastCfg(1), 0, 5),
		"not json":       []byte("nope"),
	} {
		code, _, _, _ := postChunk(t, w.Handler(), body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestWorkerSlotsFullEnvelope pins the satellite contract: a saturated
// worker answers 429 with the typed JSON envelope and a usable
// retry_after_seconds, and the refusal is counted.
func TestWorkerSlotsFullEnvelope(t *testing.T) {
	w := NewWorker(WorkerConfig{Slots: 1, RetryAfter: 2 * time.Second})
	w.slots <- struct{}{} // occupy the only slot

	req := httptest.NewRequest(http.MethodPost, "/v1/chunks", bytes.NewReader(chunkBody(t, fastCfg(1), 0, 1)))
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	var env serve.APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("not an envelope: %v\n%s", err, rec.Body.Bytes())
	}
	if env.Code != "chunk_slots_full" || env.RetryAfterSeconds != 2 {
		t.Errorf("envelope = %+v, want chunk_slots_full with retry_after_seconds=2", env)
	}
	<-w.slots
	// The aborted single-flight entry must not wedge the key: the next
	// identical chunk gets a slot and executes.
	if code, _, _, _ := postChunk(t, w.Handler(), chunkBody(t, fastCfg(1), 0, 1)); code != http.StatusOK {
		t.Fatalf("chunk after slot release: status %d, want 200", code)
	}
}

func TestWorkerDrainRefusesWithEnvelope(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := w.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/chunks", bytes.NewReader(chunkBody(t, fastCfg(1), 0, 1)))
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var env serve.APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != "draining" || env.RetryAfterSeconds < 1 {
		t.Errorf("draining envelope = %+v (err %v), want code=draining with a retry hint", env, err)
	}
	// And healthz flips so the coordinator stops routing here.
	hreq := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hrec := httptest.NewRecorder()
	w.Handler().ServeHTTP(hrec, hreq)
	if !strings.Contains(hrec.Body.String(), `"draining"`) {
		t.Errorf("healthz while draining: %s", hrec.Body.String())
	}
}

func TestChunkKeyIsCanonical(t *testing.T) {
	// The wire round trip must be key-stable: the coordinator keys a chunk
	// by cfg, ships Canonical(cfg), and the worker keys what it decodes —
	// both sides must land on the same key or caches never share.
	cfg := fastCfg(9)
	canon, err := scenario.Canonical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := scenario.DecodeConfig(canon)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := ChunkKey(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ChunkKey(decoded, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("coordinator and worker disagree on the chunk key:\n%s\n%s", k1, k2)
	}
	if !strings.HasPrefix(k1, "chunk/8+4/") {
		t.Errorf("key %q does not encode its range", k1)
	}
	k3, _ := ChunkKey(cfg, 12, 4)
	if k1 == k3 {
		t.Error("different ranges share a chunk key")
	}
}

func TestCoordinatorSweepMatchesLocal(t *testing.T) {
	f := newFleet(t, 2, Config{ChunkReps: 3})
	cfg := fastCfg(5)
	const reps = 8

	var mu []int
	var muErr int
	outs, err := f.coord.Sweep(context.Background(), cfg, reps, func(rep int, err error) {
		mu = append(mu, rep)
		if err != nil {
			muErr++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.RunSweep(context.Background(), cfg, reps, scenario.SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, want) {
		t.Error("distributed outcomes diverge from single-node RunSweep")
	}
	if len(mu) != reps || muErr != 0 {
		t.Errorf("onRep fired %d times (%d errors), want %d/0: %v", len(mu), muErr, reps, mu)
	}
	if got := f.coord.remoteReps.Load(); got != reps {
		t.Errorf("remote reps counter = %d, want %d", got, reps)
	}
}

// TestCoordinatorSharesChunksAcrossJobs proves the cross-job cache: a
// second, longer sweep of the same config reuses the first sweep's chunks
// instead of recomputing them.
func TestCoordinatorSharesChunksAcrossJobs(t *testing.T) {
	f := newFleet(t, 2, Config{ChunkReps: 4})
	cfg := fastCfg(11)
	ctx := context.Background()

	first, err := f.coord.Sweep(ctx, cfg, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.coord.Sweep(ctx, cfg, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second[:8], first) {
		t.Error("overlapping sweeps disagree on the shared prefix")
	}
	if shared := f.coord.cacheShared.Load(); shared < 2 {
		t.Errorf("chunk cache shared %d chunks, want >= 2 (the first sweep's two chunks)", shared)
	}
	want, err := scenario.RunSweep(ctx, cfg, 16, scenario.SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Error("cache-merged sweep diverges from single-node RunSweep")
	}
}

// TestCoordinatorHonorsBackpressure routes chunks through a proxy that
// answers 429 (typed envelope, retry hint) twice before forwarding, and
// requires the retry loop to absorb the refusals without failing the sweep
// or burning the hard-failure budget.
func TestCoordinatorHonorsBackpressure(t *testing.T) {
	w := NewWorker(WorkerConfig{Slots: 4})
	backend := httptest.NewServer(w.Handler())
	t.Cleanup(backend.Close)

	var refusals atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/chunks") && refusals.Add(1) <= 2 {
			// retry_after_seconds deliberately 0: the coordinator must fall
			// back to its own pacing rather than treating 0 as "never".
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(rw, `{"code":"chunk_slots_full","message":"busy","retry_after_seconds":0}`)
			return
		}
		r2 := r.Clone(r.Context())
		r2.RequestURI = ""
		u := *r.URL
		u.Scheme = "http"
		u.Host = strings.TrimPrefix(backend.URL, "http://")
		r2.URL = &u
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			rw.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := rw.Write(buf[:n]); werr != nil {
					return
				}
				if f, ok := rw.(http.Flusher); ok {
					f.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	coord := New(Config{Workers: []string{proxy.URL}, ChunkReps: 4, HealthInterval: 50 * time.Millisecond})
	t.Cleanup(coord.Stop)
	cfg := fastCfg(3)
	outs, err := coord.Sweep(context.Background(), cfg, 4, nil)
	if err != nil {
		t.Fatalf("sweep failed despite backpressure being retryable: %v", err)
	}
	want, _ := scenario.RunSweep(context.Background(), cfg, 4, scenario.SweepOptions{Workers: 1}, nil)
	if !reflect.DeepEqual(outs, want) {
		t.Error("outcomes diverge after backpressure retries")
	}
	if got := coord.chunksRetried.Load(); got < 2 {
		t.Errorf("chunks retried = %d, want >= 2 (the two 429s)", got)
	}
}

// TestCoordinatorSurfacesWorkerEnvelope pins the other half of the
// satellite: when the backpressure budget runs out, the worker's typed
// envelope — code and retry hint included — appears in the sweep error
// instead of being swallowed.
func TestCoordinatorSurfacesWorkerEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			fmt.Fprint(rw, `{"status":"ok"}`)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(rw, `{"code":"chunk_slots_full","message":"every chunk slot is busy","retry_after_seconds":0}`)
	}))
	t.Cleanup(srv.Close)

	coord := New(Config{Workers: []string{srv.URL}, ChunkReps: 4, BackpressureRetries: 1, HealthInterval: 50 * time.Millisecond})
	t.Cleanup(coord.Stop)
	_, err := coord.Sweep(context.Background(), fastCfg(1), 4, nil)
	if err == nil {
		t.Fatal("sweep succeeded against an always-429 worker")
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error does not carry the worker envelope: %v", err)
	}
	if we.Code != "chunk_slots_full" || we.Status != http.StatusTooManyRequests {
		t.Errorf("surfaced envelope = %+v", we)
	}
	if !strings.Contains(err.Error(), "chunk_slots_full") {
		t.Errorf("error text hides the envelope code: %v", err)
	}
}

func TestCoordinatorNoWorkersIsTyped(t *testing.T) {
	// Empty fleet.
	empty := New(Config{})
	t.Cleanup(empty.Stop)
	if _, err := empty.Sweep(context.Background(), fastCfg(1), 4, nil); !errors.Is(err, serve.ErrNoWorkers) {
		t.Errorf("empty fleet error = %v, want ErrNoWorkers", err)
	}
	// Configured but unreachable fleet: the on-demand probe fails and the
	// typed sentinel tells the serve layer to fall back to local execution.
	dead := New(Config{Workers: []string{"http://127.0.0.1:1"}, HealthInterval: 50 * time.Millisecond})
	t.Cleanup(dead.Stop)
	if _, err := dead.Sweep(context.Background(), fastCfg(1), 4, nil); !errors.Is(err, serve.ErrNoWorkers) {
		t.Errorf("dead fleet error = %v, want ErrNoWorkers", err)
	}
}

func TestWorkerMetricsRender(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	if code, _, _, _ := postChunk(t, w.Handler(), chunkBody(t, fastCfg(2), 0, 2)); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{
		`blackdp_dist_worker_chunks_total{status="done"} 1`,
		"blackdp_dist_worker_reps_completed_total 2",
		"blackdp_dist_worker_cache_misses_total 1",
		"blackdp_dist_worker_chunks_running 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("worker metrics missing %q:\n%s", want, out)
		}
	}
}

// TestServeExposesFabricMetrics wires a coordinator into a serve.Server and
// requires the fabric gauges to appear on the service /metrics page.
func TestServeExposesFabricMetrics(t *testing.T) {
	f := newFleet(t, 2, Config{})
	s := mustServe(t, serve.Config{Distributor: f.coord})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Give the health loop a beat so the live gauge is 2, then scrape.
	deadline := time.Now().Add(2 * time.Second)
	for f.coord.LiveWorkers() != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"blackdp_dist_workers_known 2",
		"blackdp_dist_workers_live 2",
		"blackdp_dist_chunks_dispatched_total",
		"blackdp_dist_chunks_retried_total",
		"blackdp_dist_chunk_cache_shared_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("service metrics missing %q", want)
		}
	}
}
