package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"blackdp/serve/client"
)

// WorkerError is a worker's typed non-2xx answer. It is the shared
// serve-client envelope error — the coordinator's retry loop switches on
// its Backpressure() exactly as every other API consumer does.
type WorkerError = client.APIError

// runChunk posts one chunk to a worker and consumes its NDJSON stream:
// onRep fires per progress line with the GLOBAL replication index and the
// replication's error message (empty on success), and the returned bytes
// are the final outcomes payload line, verbatim — the unit both chunk
// caches store. The request is bound to ctx, so cancelling the sweep
// aborts the connection and, through the worker's request context, the
// remote replication pool. A non-2xx answer decodes into *WorkerError; a
// connection torn down mid-stream (the worker died) surfaces as an
// ordinary error so the coordinator reassigns the chunk.
func runChunk(ctx context.Context, hc *http.Client, baseURL string, body []byte, onRep func(rep int, errMsg string)) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+"/v1/chunks", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	stream, err := client.DoNDJSON(hc, req)
	if err != nil {
		return nil, err
	}
	defer stream.Close()

	var payload []byte
	payloadNext := false
	err = client.Lines(stream, func(raw []byte) error {
		if payloadNext {
			payload = append([]byte(nil), raw...)
			return client.ErrStop
		}
		var line chunkLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("dist: parsing worker stream: %w", err)
		}
		switch line.Type {
		case "accepted":
		case "progress":
			if onRep != nil {
				onRep(line.Rep, line.Error)
			}
		case "error":
			return fmt.Errorf("dist: worker chunk failed: %s", line.Error)
		case "result":
			payloadNext = true
		default:
			return fmt.Errorf("dist: unknown worker stream line %q", line.Type)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if payload == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dist: worker stream ended without a result: %w", io.ErrUnexpectedEOF)
	}
	return payload, nil
}

// probeWorker checks a worker's /v1/healthz; only a 200 with status "ok"
// (not draining) counts as live.
func probeWorker(ctx context.Context, hc *http.Client, baseURL string) bool {
	return client.Probe(ctx, hc, baseURL)
}
