package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"blackdp/internal/serve"
)

// WorkerError is a worker's typed non-2xx answer, decoded from the same
// JSON envelope the serve layer writes ({"code","message",
// "retry_after_seconds"}). The coordinator's retry loop switches on it:
// backpressure answers (429 queue-full, 503 draining) are retried after
// the advertised back-off without burning the chunk's failure budget, and
// when a budget does run out the envelope — code and retry hint included —
// surfaces in the job error instead of being swallowed.
type WorkerError struct {
	Status            int    // HTTP status code
	Code              string // envelope code ("chunk_slots_full", "draining", ...)
	Message           string // envelope message (or raw body if not an envelope)
	RetryAfterSeconds int    // envelope back-off hint; 0 when absent
}

func (e *WorkerError) Error() string {
	msg := fmt.Sprintf("worker answered %d", e.Status)
	if e.Code != "" {
		msg += " " + e.Code
	}
	if e.Message != "" {
		msg += ": " + e.Message
	}
	if e.RetryAfterSeconds > 0 {
		msg += fmt.Sprintf(" (retry after %ds)", e.RetryAfterSeconds)
	}
	return msg
}

// Backpressure reports whether the worker refused the chunk for capacity
// reasons (429) or because it is draining (503) — answers that mean "try
// again elsewhere or later", not "this chunk is broken".
func (e *WorkerError) Backpressure() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// runChunk posts one chunk to a worker and consumes its NDJSON stream:
// onRep fires per progress line with the GLOBAL replication index and the
// replication's error message (empty on success), and the returned bytes
// are the final outcomes payload line, verbatim — the unit both chunk
// caches store. The request is bound to ctx, so cancelling the sweep
// aborts the connection and, through the worker's request context, the
// remote replication pool. A non-2xx answer decodes into *WorkerError; a
// connection torn down mid-stream (the worker died) surfaces as an
// ordinary error so the coordinator reassigns the chunk.
func runChunk(ctx context.Context, hc *http.Client, baseURL string, body []byte, onRep func(rep int, errMsg string)) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+"/v1/chunks", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		we := &WorkerError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
		var env serve.APIError
		if json.Unmarshal(raw, &env) == nil && env.Code != "" {
			we.Code, we.Message, we.RetryAfterSeconds = env.Code, env.Message, env.RetryAfterSeconds
		}
		return nil, we
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // outcome payloads grow with the chunk
	payloadNext := false
	for sc.Scan() {
		raw := sc.Bytes()
		if payloadNext {
			return append([]byte(nil), raw...), nil
		}
		var line chunkLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("dist: parsing worker stream: %w", err)
		}
		switch line.Type {
		case "accepted":
		case "progress":
			if onRep != nil {
				onRep(line.Rep, line.Error)
			}
		case "error":
			return nil, fmt.Errorf("dist: worker chunk failed: %s", line.Error)
		case "result":
			payloadNext = true
		default:
			return nil, fmt.Errorf("dist: unknown worker stream line %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("dist: worker stream ended without a result: %w", io.ErrUnexpectedEOF)
}

// probeWorker checks a worker's /v1/healthz; only a 200 with status "ok"
// (not draining) counts as live.
func probeWorker(ctx context.Context, hc *http.Client, baseURL string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&health); err != nil {
		return false
	}
	return health.Status == "ok"
}
