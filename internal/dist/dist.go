// Package dist is the distributed sweep fabric: a coordinator that shards a
// sweep's replication range into contiguous chunks and fans them out over a
// fleet of worker nodes, and the worker-side HTTP sub-job API the chunks
// run on. It layers on the internal/serve primitives — canonical
// fingerprints key a chunk-level result cache with single-flight
// coalescing, admission control speaks the same 429/503 envelope, and
// /metrics renders through the same hand-rolled registry — and on
// scenario.RunSweepRange, whose global-index seed derivation is what makes
// a chunk's outcomes byte-identical to the same replications of a
// single-node sweep.
//
// The wire discipline matches the rest of the repository: stdlib HTTP,
// JSON requests, NDJSON progress streams. A worker exposes
//
//	POST /v1/chunks   run replications [start, start+count) of a sweep;
//	                  the response streams accepted/progress lines and ends
//	                  with a result line followed by the outcomes payload
//	GET  /v1/healthz  liveness and drain state
//	GET  /v1/metrics  Prometheus text exposition
//
// and rejects with the typed serve error envelope (429 when all chunk
// slots are busy, 503 while draining — both carrying retry_after_seconds).
//
// The coordinator guarantees the fleet is invisible in the results: chunks
// merge in replication order, a chunk that fails is retried with backoff
// and reassigned when its worker died, identical chunks are never computed
// twice (the chunk cache is shared across jobs, so overlapping sweeps reuse
// each other's prefixes), and cancelling the job's context aborts every
// in-flight chunk request — the workers observe the disconnect through
// their own request contexts. The differential suite in this package holds
// distributed output byte-identical to single-node output across seeds,
// fleet sizes and a worker killed mid-sweep.
package dist

import (
	"encoding/json"
	"fmt"

	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
)

// chunkRequest is the POST /v1/chunks payload: the sweep's canonical
// config plus the chunk's slice of the global replication range. Config is
// the coordinator-side scenario.Canonical bytes, so a chunk means exactly
// what its fingerprint says no matter which node decodes it.
type chunkRequest struct {
	Config json.RawMessage `json:"config"`
	Start  int             `json:"start"`
	Count  int             `json:"count"`
	// Workers overrides the worker's per-chunk replication pool (0 = the
	// worker's default).
	Workers int `json:"workers,omitempty"`
	// Tenant is the submitting tenant's name, forwarded by the coordinator
	// for worker-side accounting (per-tenant replication counters). It is
	// deliberately NOT part of the chunk cache key: tenancy is
	// admission-time identity, and byte-identity makes cross-tenant chunk
	// sharing sound.
	Tenant string `json:"tenant,omitempty"`
}

// chunkLine is one NDJSON line of a chunk stream. Rep carries GLOBAL
// replication indexes (start-relative offsets never cross the wire), so
// the coordinator can forward progress to the job stream unchanged.
type chunkLine struct {
	Type      string `json:"type"`
	Key       string `json:"key,omitempty"`
	Cache     string `json:"cache,omitempty"`
	Rep       int    `json:"rep,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// chunkPayload is the final line of a successful chunk stream — the bytes
// both cache layers store and replay verbatim. Outcome is plain data
// (integers, booleans, strings), so the JSON round trip through a worker
// is exact and the merged sweep stays byte-identical to a local one.
type chunkPayload struct {
	Outcomes []metrics.Outcome `json:"outcomes"`
}

// ChunkKey is the canonical identity of a sub-job: the chunk's slice of
// the replication range plus the sweep config's fingerprint. Coordinator
// and worker derive it independently and must agree — it keys both chunk
// caches, which is what lets identical sub-jobs be shared across jobs and
// across the fleet instead of recomputed.
func ChunkKey(cfg scenario.Config, start, count int) (string, error) {
	fp, err := scenario.Fingerprint(cfg)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("chunk/%d+%d/%s", start, count, fp), nil
}
