package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"blackdp/internal/scenario"
	"blackdp/internal/serve"
)

// WorkerConfig tunes one worker node.
type WorkerConfig struct {
	// Slots is how many chunks execute concurrently (default 2). Each
	// chunk additionally fans its replications across a scenario sweep
	// pool, so total parallelism is Slots x SweepWorkers.
	Slots int
	// SweepWorkers is the per-chunk replication pool (0 = one per CPU); a
	// chunk request's "workers" field overrides it.
	SweepWorkers int
	// MaxChunkReps caps a single chunk request (default 10000).
	MaxChunkReps int
	// CacheEntries bounds the chunk result cache (default 256).
	CacheEntries int
	// RetryAfter is advertised on 429/503 responses (default 1s).
	RetryAfter time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.MaxChunkReps <= 0 {
		c.MaxChunkReps = 10_000
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Worker is one node of the sweep fleet: a bounded pool of chunk slots
// behind the POST /v1/chunks API, with a single-flight chunk cache so the
// same sub-job is computed at most once per node no matter how many
// coordinators ask. Create with NewWorker, expose with Handler or Serve,
// stop with Drain.
type Worker struct {
	cfg   WorkerConfig
	cache *serve.Cache
	reg   *serve.Registry
	mux   *http.ServeMux
	http  *http.Server

	slots    chan struct{}
	running  atomic.Int64
	draining atomic.Bool

	mChunks     *serve.CounterVec
	mRejected   *serve.Counter
	mReps       *serve.Counter
	mTenantReps *serve.DynCounterVec
}

// NewWorker builds a worker with cfg (zero fields take defaults).
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{
		cfg:   cfg,
		cache: serve.NewCache(cfg.CacheEntries),
		reg:   &serve.Registry{},
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, cfg.Slots),
	}
	w.http = &http.Server{Handler: w.mux}

	w.mChunks = w.reg.CounterVec("blackdp_dist_worker_chunks_total",
		"Executed chunks by final status.", "status",
		serve.StatusDone, serve.StatusFailed, serve.StatusCanceled)
	w.mRejected = w.reg.Counter("blackdp_dist_worker_chunks_rejected_total",
		"Chunks rejected with 429 because every slot was busy.")
	w.mReps = w.reg.Counter("blackdp_dist_worker_reps_completed_total",
		"Replications completed by this worker across all chunks.")
	w.mTenantReps = w.reg.DynCounterVec("blackdp_dist_worker_tenant_reps_total",
		"Replications completed by this worker per submitting tenant.", "tenant")
	w.reg.CounterFunc("blackdp_dist_worker_cache_hits_total",
		"Chunk requests answered from the node's chunk cache (completed hits plus in-flight joins).",
		func() uint64 { st := w.cache.Stats(); return st.Hits + st.Joins })
	w.reg.CounterFunc("blackdp_dist_worker_cache_misses_total",
		"Chunk requests that had to execute replications.",
		func() uint64 { return w.cache.Stats().Misses })
	w.reg.GaugeFunc("blackdp_dist_worker_chunks_running",
		"Chunks currently executing.",
		func() float64 { return float64(w.running.Load()) })

	w.mux.HandleFunc("POST /v1/chunks", w.handleChunk)
	w.mux.HandleFunc("GET /v1/healthz", w.handleHealth)
	w.mux.HandleFunc("GET /v1/metrics", w.handleMetrics)
	// The unversioned aliases are retired alongside the serve layer's: a
	// stale coordinator gets a typed 410, not a silent 404.
	for _, legacy := range []string{"/chunks", "/healthz", "/metrics"} {
		w.mux.HandleFunc(legacy, handleWorkerGone)
	}
	return w
}

// handleWorkerGone answers retired unversioned routes with the typed 410
// envelope so old clients learn the /v1 prefix instead of guessing.
func handleWorkerGone(rw http.ResponseWriter, r *http.Request) {
	serve.WriteError(rw, http.StatusGone, "gone",
		"the unversioned API is retired; use /v1"+r.URL.Path, 0)
}

// Handler exposes the worker mux (for tests and embedding).
func (w *Worker) Handler() http.Handler { return w.mux }

// Serve accepts connections on l until Drain; it returns
// http.ErrServerClosed after a clean drain, like net/http.
func (w *Worker) Serve(l net.Listener) error { return w.http.Serve(l) }

// Drain stops admission (new chunks get 503), waits for in-flight chunks
// and returns the final chunk-cache statistics.
func (w *Worker) Drain(ctx context.Context) (serve.CacheStats, error) {
	w.draining.Store(true)
	err := w.http.Shutdown(ctx)
	return w.cache.Stats(), err
}

// Running reports how many chunks are executing right now (the orphan
// tests poll it to prove cancellation reached the replication pools).
func (w *Worker) Running() int { return int(w.running.Load()) }

// Metrics exposes the worker's registry.
func (w *Worker) Metrics() *serve.Registry { return w.reg }

func (w *Worker) retryAfterSeconds() int {
	secs := int(w.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// parseChunk validates a chunk request body against the worker limits.
func (w *Worker) parseChunk(body []byte) (chunkRequest, scenario.Config, string, error) {
	var req chunkRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, scenario.Config{}, "", fmt.Errorf("parsing chunk request: %w", err)
	}
	if req.Start < 0 {
		return req, scenario.Config{}, "", fmt.Errorf("chunk start %d is negative", req.Start)
	}
	if req.Count < 1 {
		return req, scenario.Config{}, "", fmt.Errorf("chunk needs count >= 1, got %d", req.Count)
	}
	if req.Count > w.cfg.MaxChunkReps {
		return req, scenario.Config{}, "", fmt.Errorf("chunk of %d reps exceeds the worker limit of %d", req.Count, w.cfg.MaxChunkReps)
	}
	raw := req.Config
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	cfg, err := scenario.DecodeConfig(raw)
	if err != nil {
		return req, scenario.Config{}, "", err
	}
	key, err := ChunkKey(cfg, req.Start, req.Count)
	if err != nil {
		return req, scenario.Config{}, "", err
	}
	return req, cfg, key, nil
}

func (w *Worker) handleChunk(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		serve.WriteError(rw, http.StatusServiceUnavailable, "draining",
			"worker is draining and not accepting chunks", w.retryAfterSeconds())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err != nil {
		serve.WriteError(rw, http.StatusBadRequest, "bad_request", "reading request: "+err.Error(), 0)
		return
	}
	req, cfg, key, err := w.parseChunk(body)
	if err != nil {
		serve.WriteError(rw, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	ctx := r.Context()

	// Single-flight on the chunk key: concurrent identical sub-jobs (two
	// coordinators, or one coordinator's retry racing its own timeout)
	// join the leader instead of recomputing. A joiner whose leader failed
	// loops to lead the next attempt itself.
	for {
		entry, leader := w.cache.Begin(key)
		if leader {
			w.executeChunk(ctx, rw, req, cfg, key, entry)
			return
		}
		payload, err := entry.Wait(ctx)
		if err == nil {
			w.writeCachedChunk(rw, req, key, payload)
			return
		}
		if ctx.Err() != nil {
			serve.WriteError(rw, http.StatusServiceUnavailable, "canceled", ctx.Err().Error(), 0)
			return
		}
	}
}

// writeCachedChunk replays a completed chunk payload without progress
// lines — the coordinator reports the reps itself on a cache hit.
func (w *Worker) writeCachedChunk(rw http.ResponseWriter, req chunkRequest, key string, payload []byte) {
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.Header().Set("X-Blackdp-Cache", "hit")
	_ = writeJSONLine(rw, chunkLine{Type: "accepted", Key: key, Cache: "hit", Total: req.Count})
	_ = writeJSONLine(rw, chunkLine{Type: "result", Key: key, Cache: "hit", Total: req.Count})
	_, _ = rw.Write(payload)
	_, _ = io.WriteString(rw, "\n")
	if f, ok := rw.(http.Flusher); ok {
		f.Flush()
	}
}

// executeChunk runs replications [start, start+count) as the key's leader.
func (w *Worker) executeChunk(ctx context.Context, rw http.ResponseWriter, req chunkRequest, cfg scenario.Config, key string, entry *serve.Entry) {
	// Admission control: a free slot or an immediate 429 with the same
	// typed envelope the serve layer speaks, so the coordinator's retry
	// loop gets a machine-readable back-off hint.
	select {
	case w.slots <- struct{}{}:
	default:
		w.cache.Abort(entry, errors.New("dist: chunk rejected by admission control"))
		w.mRejected.Inc()
		serve.WriteError(rw, http.StatusTooManyRequests, "chunk_slots_full",
			"every chunk slot is busy", w.retryAfterSeconds())
		return
	}
	defer func() { <-w.slots }()
	w.running.Add(1)
	defer w.running.Add(-1)

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.Header().Set("X-Blackdp-Cache", "miss")
	_ = writeJSONLine(rw, chunkLine{Type: "accepted", Key: key, Cache: "miss", Total: req.Count})
	start := time.Now()

	// Progress flows through a buffered channel to a writer goroutine so a
	// slow coordinator connection cannot stall the replication pool;
	// excess lines are dropped (progress is advisory, the payload is not).
	lines := make(chan chunkLine, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for line := range lines {
			_ = writeJSONLine(rw, line)
		}
	}()
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	repsDone := 0
	onRep := func(rep int, err error) { // serialised by exp.Map; rep is GLOBAL
		w.mReps.Inc()
		w.mTenantReps.Add(tenant, 1)
		repsDone++
		line := chunkLine{Type: "progress", Rep: rep, Done: repsDone, Total: req.Count}
		if err != nil {
			line.Error = err.Error()
		}
		select {
		case lines <- line:
		default:
		}
	}

	pool := req.Workers
	if pool <= 0 {
		pool = w.cfg.SweepWorkers
	}
	outs, err := scenario.RunSweepRange(ctx, cfg, req.Start, req.Count,
		scenario.SweepOptions{Workers: pool, OnRep: onRep}, nil)
	close(lines)
	<-writerDone
	elapsed := time.Since(start)

	if err != nil {
		w.cache.Complete(entry, nil, err)
		status := serve.StatusFailed
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = serve.StatusCanceled
		}
		w.mChunks.Inc(status)
		_ = writeJSONLine(rw, chunkLine{Type: "error", Key: key, Error: err.Error(), ElapsedMS: elapsed.Milliseconds()})
		return
	}
	payload, err := json.Marshal(chunkPayload{Outcomes: outs})
	if err != nil {
		w.cache.Complete(entry, nil, err)
		w.mChunks.Inc(serve.StatusFailed)
		_ = writeJSONLine(rw, chunkLine{Type: "error", Key: key, Error: err.Error()})
		return
	}
	w.cache.Complete(entry, payload, nil)
	w.mChunks.Inc(serve.StatusDone)
	_ = writeJSONLine(rw, chunkLine{Type: "result", Key: key, Cache: "miss", ElapsedMS: elapsed.Milliseconds(), Total: req.Count})
	_, _ = rw.Write(payload)
	_, _ = io.WriteString(rw, "\n")
	if f, ok := rw.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if w.draining.Load() {
		status = "draining"
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(struct {
		Status  string `json:"status"`
		Running int    `json:"running"`
	}{status, int(w.running.Load())})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = w.reg.Render(rw)
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return err
}
