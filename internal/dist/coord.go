package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
	"blackdp/internal/serve"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers is the fleet: worker base URLs ("http://host:port"). The set
	// is fixed at construction; liveness within it is dynamic.
	Workers []string
	// ChunkReps is how many replications one dispatched chunk carries
	// (default 8). Smaller chunks rebalance a ragged fleet better; larger
	// ones amortise dispatch overhead. The chunking is part of the chunk
	// cache key, so jobs only share cached sub-jobs when their coordinator
	// uses the same chunk size.
	ChunkReps int
	// Retries is a chunk's hard-failure budget — connection errors, worker
	// deaths mid-stream, failed executions — before the sweep fails
	// (default 3). Each hard failure marks the worker dead and reassigns
	// the chunk.
	Retries int
	// BackpressureRetries is a chunk's budget of 429/503 answers (default
	// 32). These honor the envelope's retry_after_seconds before the chunk
	// re-enters the queue and do not mark the worker dead (429) — the node
	// is healthy, just busy.
	BackpressureRetries int
	// HealthInterval paces the background health loop and a sweep's wait
	// for a dead fleet to revive (default 2s).
	HealthInterval time.Duration
	// FleetGrace is how long a sweep tolerates zero live workers before it
	// fails with ErrNoWorkers (default 30s).
	FleetGrace time.Duration
	// CacheEntries bounds the coordinator's chunk result cache (default
	// 512 completed chunks). The cache is shared across jobs: overlapping
	// sweeps of the same canonical config reuse each other's chunks.
	CacheEntries int
	// Client is the HTTP client for chunk dispatch (default: a fresh
	// client with no overall timeout — chunk streams run as long as the
	// replications do; cancellation comes from the sweep context).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ChunkReps <= 0 {
		c.ChunkReps = 8
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.BackpressureRetries <= 0 {
		c.BackpressureRetries = 32
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FleetGrace <= 0 {
		c.FleetGrace = 30 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// workerNode is the coordinator's view of one fleet member.
type workerNode struct {
	url   string
	alive atomic.Bool
}

// Coordinator shards sweeps into contiguous replication chunks and fans
// them out over the worker fleet, merging results in replication order so
// the output is byte-identical to a single-node run. It implements
// serve.Distributor. Construct with New, start the health loop with Start,
// stop it with Stop.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	cache   *serve.Cache
	workers []*workerNode

	stopOnce sync.Once
	stop     chan struct{}

	chunksDispatched atomic.Uint64
	chunksRetried    atomic.Uint64
	cacheShared      atomic.Uint64
	remoteReps       atomic.Uint64
}

// New builds a coordinator over cfg.Workers (zero fields take defaults).
// Workers start unknown-dead and go live on their first successful health
// probe — Start the health loop, or let the first Sweep probe on demand.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		cache:  serve.NewCache(cfg.CacheEntries),
		stop:   make(chan struct{}),
	}
	for _, url := range cfg.Workers {
		c.workers = append(c.workers, &workerNode{url: url})
	}
	return c
}

// Start launches the background health loop: every HealthInterval each
// fleet member's /v1/healthz decides its liveness, so workers that died
// mid-sweep revive when their process comes back.
func (c *Coordinator) Start() {
	go func() {
		ticker := time.NewTicker(c.cfg.HealthInterval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
				c.probeAll(ctx)
				cancel()
			}
		}
	}()
}

// Stop halts the health loop. It does not interrupt running sweeps.
func (c *Coordinator) Stop() { c.stopOnce.Do(func() { close(c.stop) }) }

// probeAll health-checks every worker concurrently and updates liveness.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerNode) {
			defer wg.Done()
			w.alive.Store(probeWorker(ctx, c.client, w.url))
		}(w)
	}
	wg.Wait()
}

// LiveWorkers reports how many fleet members currently pass health checks.
func (c *Coordinator) LiveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the fabric instruments on a serve registry (the
// server wires this up automatically when the coordinator is its
// Distributor).
func (c *Coordinator) RegisterMetrics(r *serve.Registry) {
	r.GaugeFunc("blackdp_dist_workers_known",
		"Fleet members configured on the coordinator.",
		func() float64 { return float64(len(c.workers)) })
	r.GaugeFunc("blackdp_dist_workers_live",
		"Fleet members currently passing health checks.",
		func() float64 { return float64(c.LiveWorkers()) })
	r.CounterFunc("blackdp_dist_chunks_dispatched_total",
		"Chunks dispatched to workers, including retries.",
		func() uint64 { return c.chunksDispatched.Load() })
	r.CounterFunc("blackdp_dist_chunks_retried_total",
		"Chunk dispatches that failed or were refused and re-entered the queue.",
		func() uint64 { return c.chunksRetried.Load() })
	r.CounterFunc("blackdp_dist_chunk_cache_shared_total",
		"Chunks answered from the coordinator's cross-job chunk cache.",
		func() uint64 { return c.cacheShared.Load() })
	r.CounterFunc("blackdp_dist_reps_remote_total",
		"Replications computed remotely across the fleet.",
		func() uint64 { return c.remoteReps.Load() })
}

// chunk is one contiguous slice of a sweep's replication range, with its
// retry budgets.
type chunk struct {
	start, count  int
	failures      int // hard failures (worker died, execution failed)
	backpressures int // 429/503 refusals
}

// sweepState is the shared bookkeeping of one SweepRange call. Replication
// indexes are GLOBAL (chunk starts, onRep, cache keys); base translates
// them into the local results slice.
type sweepState struct {
	mu        sync.Mutex
	base      int // global index of results[0]
	tenant    string
	results   []metrics.Outcome
	reported  []bool // per-rep onRep dedup across chunk retries and cache hits
	onRep     func(rep int, err error)
	remaining int
	done      chan struct{}
	failErr   error
	failStart int
}

// report forwards one replication's progress exactly once, no matter how
// many chunk attempts or cache replays observe it.
func (st *sweepState) report(rep int, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	i := rep - st.base
	if i < 0 || i >= len(st.reported) || st.reported[i] {
		return
	}
	st.reported[i] = true
	if st.onRep != nil {
		var err error
		if errMsg != "" {
			err = fmt.Errorf("%s", errMsg)
		}
		st.onRep(rep, err)
	}
}

// finish merges a completed chunk's outcomes at its replication offset.
func (st *sweepState) finish(ck *chunk, outs []metrics.Outcome) {
	copy(st.results[ck.start-st.base:ck.start-st.base+ck.count], outs)
	for rep := ck.start; rep < ck.start+ck.count; rep++ {
		st.report(rep, "")
	}
	st.mu.Lock()
	st.remaining--
	last := st.remaining == 0
	st.mu.Unlock()
	if last {
		close(st.done)
	}
}

// fail records a fatal sweep error, keeping the lowest-start failing chunk
// (mirroring exp.Map's lowest-replication-failure rule so the reported
// error does not depend on dispatch order).
func (st *sweepState) fail(start int, err error) {
	st.mu.Lock()
	if st.failErr == nil || start < st.failStart {
		st.failStart, st.failErr = start, err
	}
	st.mu.Unlock()
}

// Sweep executes reps replications of cfg across the fleet and returns the
// outcomes in replication order, byte-identical to scenario.RunSweep on
// one node (the differential suite holds it to that).
func (c *Coordinator) Sweep(ctx context.Context, cfg scenario.Config, reps int, onRep func(rep int, err error)) ([]metrics.Outcome, error) {
	return c.SweepRange(ctx, cfg, 0, reps, onRep)
}

// SweepRange executes count replications of cfg starting at GLOBAL
// replication index start, fanned out across the fleet, and returns the
// outcomes in replication order — byte-identical to the corresponding
// slice of scenario.RunSweep on one node, because replication seeds are a
// pure function of the global index. Chunk boundaries and cache keys use
// global indexes too, so a resumed durable job's tail range shares cached
// chunks with the full sweep that preceded it. onRep fires once per
// replication — serialised, not in replication order — as progress
// streams back, carrying the global index. The submitting tenant (from
// serve.WithTenant on ctx) is stamped on every dispatched chunk for
// worker-side accounting. If no fleet member is live (after an on-demand
// probe and FleetGrace of waiting) the error wraps serve.ErrNoWorkers,
// which tells the serve layer to fall back to local execution.
func (c *Coordinator) SweepRange(ctx context.Context, cfg scenario.Config, start, count int, onRep func(rep int, err error)) ([]metrics.Outcome, error) {
	if count <= 0 {
		return nil, nil
	}
	// Canonical bytes are the wire form: fully defaulted and normalised,
	// so coordinator-side and worker-side fingerprints agree exactly.
	canon, err := scenario.Canonical(cfg)
	if err != nil {
		return nil, err
	}
	fp, err := scenario.Fingerprint(cfg)
	if err != nil {
		return nil, err
	}
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured: %w", serve.ErrNoWorkers)
	}
	if c.LiveWorkers() == 0 {
		probeCtx, cancel := context.WithTimeout(ctx, c.cfg.HealthInterval)
		c.probeAll(probeCtx)
		cancel()
		if c.LiveWorkers() == 0 {
			return nil, fmt.Errorf("dist: none of %d workers is live: %w", len(c.workers), serve.ErrNoWorkers)
		}
	}

	// Chunk boundaries align to global multiples of ChunkReps, not to the
	// range start, so a range resuming at an aligned index dispatches the
	// same chunks — and hits the same cache keys — as the full sweep that
	// preceded it. An unaligned head becomes one partial chunk with its
	// own key.
	size := c.cfg.ChunkReps
	end := start + count
	first := (start / size) * size
	nchunks := 0
	pending := make(chan *chunk, (end-first+size-1)/size)
	for cs := first; cs < end; cs += size {
		lo, hi := max(cs, start), min(cs+size, end)
		pending <- &chunk{start: lo, count: hi - lo}
		nchunks++
	}
	st := &sweepState{
		base:      start,
		tenant:    serve.TenantName(ctx),
		results:   make([]metrics.Outcome, count),
		reported:  make([]bool, count),
		onRep:     onRep,
		remaining: nchunks,
		done:      make(chan struct{}),
		failStart: end + 1,
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// One dispatcher per fleet member: each pulls chunks while its worker
	// is live and idles (waiting for the health loop to revive it) while
	// dead. A fleet that is entirely dead for FleetGrace fails the sweep.
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerNode) {
			defer wg.Done()
			var deadSince time.Time
			for {
				if !w.alive.Load() {
					if c.LiveWorkers() == 0 {
						if deadSince.IsZero() {
							deadSince = time.Now()
						} else if time.Since(deadSince) > c.cfg.FleetGrace {
							st.fail(start, fmt.Errorf("dist: fleet dead for %v mid-sweep: %w",
								c.cfg.FleetGrace, serve.ErrNoWorkers))
							cancel()
							return
						}
					} else {
						deadSince = time.Time{}
					}
					select {
					case <-sctx.Done():
						return
					case <-st.done:
						return
					case <-time.After(c.cfg.HealthInterval):
						continue
					}
				}
				deadSince = time.Time{}
				select {
				case <-sctx.Done():
					return
				case <-st.done:
					return
				case ck := <-pending:
					c.processChunk(sctx, w, canon, fp, ck, st, pending, cancel)
				}
			}
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st.mu.Lock()
	failErr, remaining := st.failErr, st.remaining
	st.mu.Unlock()
	if failErr != nil {
		return nil, failErr
	}
	if remaining > 0 {
		return nil, fmt.Errorf("dist: sweep ended with %d chunks unfinished", remaining)
	}
	return st.results, nil
}

// processChunk drives one chunk attempt on one worker: cache first, then a
// dispatched sub-job, then the retry/reassign policy on failure. A failed
// attempt re-enqueues the chunk (another dispatcher — or this one, after
// backoff — picks it up); exhausted budgets fail the sweep.
func (c *Coordinator) processChunk(sctx context.Context, w *workerNode, canon []byte, fp string, ck *chunk, st *sweepState, pending chan *chunk, cancel context.CancelFunc) {
	key := fmt.Sprintf("chunk/%d+%d/%s", ck.start, ck.count, fp)

	// Cross-job chunk sharing: a chunk someone already computed — this
	// sweep's twin running concurrently, or an earlier overlapping sweep —
	// is merged from the cache instead of recomputed. A joiner whose
	// leader failed loops to lead the retry itself.
	var entry *serve.Entry
	for {
		var leader bool
		entry, leader = c.cache.Begin(key)
		if leader {
			break
		}
		payload, err := entry.Wait(sctx)
		if err == nil {
			if outs, derr := decodeChunk(payload, ck.count); derr == nil {
				c.cacheShared.Add(1)
				st.finish(ck, outs)
				return
			}
			// A corrupt cached payload is a hard failure of this attempt.
			err = fmt.Errorf("dist: cached chunk payload corrupt")
		}
		if sctx.Err() != nil {
			return
		}
		_ = err // leader failed or payload corrupt: try to lead the retry
	}

	body, err := json.Marshal(chunkRequest{Config: canon, Start: ck.start, Count: ck.count, Tenant: st.tenant})
	if err != nil {
		c.cache.Complete(entry, nil, err)
		st.fail(ck.start, err)
		cancel()
		return
	}
	c.chunksDispatched.Add(1)
	payload, err := runChunk(sctx, c.client, w.url, body, st.report)
	if err == nil {
		var outs []metrics.Outcome
		if outs, err = decodeChunk(payload, ck.count); err == nil {
			c.cache.Complete(entry, payload, nil)
			c.remoteReps.Add(uint64(ck.count))
			st.finish(ck, outs)
			return
		}
	}
	// Withdraw the in-flight entry so the retry can lead it again.
	c.cache.Complete(entry, nil, err)
	if sctx.Err() != nil {
		return // sweep cancelled; no retry bookkeeping
	}

	if we, ok := err.(*WorkerError); ok && we.Backpressure() {
		// The envelope's retry hint is honored, not swallowed: wait it out
		// before the chunk re-enters the queue. 503 means the worker is
		// going away, so it also drops out of the live set until the
		// health loop sees it again; 429 is a healthy-but-busy node.
		ck.backpressures++
		if ck.backpressures > c.cfg.BackpressureRetries {
			st.fail(ck.start, fmt.Errorf("dist: chunk [%d,%d) refused %d times, last by %s: %w",
				ck.start, ck.start+ck.count, ck.backpressures, w.url, we))
			cancel()
			return
		}
		if we.Status == http.StatusServiceUnavailable {
			w.alive.Store(false)
		}
		c.chunksRetried.Add(1)
		wait := time.Duration(we.RetryAfterSeconds) * time.Second
		if wait <= 0 {
			wait = 250 * time.Millisecond
		}
		select {
		case <-time.After(wait):
		case <-sctx.Done():
			return
		}
		pending <- ck
		return
	}

	// Hard failure: connection refused, stream torn mid-chunk, execution
	// error. The worker is presumed dead (the health loop revives it if it
	// comes back) and the chunk is reassigned to whoever is still alive.
	ck.failures++
	w.alive.Store(false)
	if ck.failures > c.cfg.Retries {
		st.fail(ck.start, fmt.Errorf("dist: chunk [%d,%d) failed %d times, last on %s: %w",
			ck.start, ck.start+ck.count, ck.failures, w.url, err))
		cancel()
		return
	}
	c.chunksRetried.Add(1)
	pending <- ck
}

// decodeChunk parses a chunk payload and checks its shape.
func decodeChunk(payload []byte, count int) ([]metrics.Outcome, error) {
	var cp chunkPayload
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("dist: decoding chunk payload: %w", err)
	}
	if len(cp.Outcomes) != count {
		return nil, fmt.Errorf("dist: chunk payload has %d outcomes, want %d", len(cp.Outcomes), count)
	}
	return cp.Outcomes, nil
}
