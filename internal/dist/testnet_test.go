package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"blackdp/internal/scenario"
	"blackdp/internal/serve"
)

// TestDistTestnetDifferential is the acceptance differential: 20 base
// seeds, each swept on fleets of 1, 2 and 4 workers, and every distributed
// result must be byte-identical (marshalled JSON, not just DeepEqual) to
// the single-node sweep.
func TestDistTestnetDifferential(t *testing.T) {
	const reps = 8
	ctx := context.Background()

	// Single-node baselines, one per seed.
	baselines := make([][]byte, 20)
	for seed := 0; seed < 20; seed++ {
		outs, err := scenario.RunSweep(ctx, fastCfg(int64(seed)), reps, scenario.SweepOptions{Workers: 2}, nil)
		if err != nil {
			t.Fatalf("seed %d local: %v", seed, err)
		}
		b, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		baselines[seed] = b
	}

	for _, nw := range []int{1, 2, 4} {
		nw := nw
		t.Run(fmt.Sprintf("workers=%d", nw), func(t *testing.T) {
			f := newFleet(t, nw, Config{ChunkReps: 3})
			for seed := 0; seed < 20; seed++ {
				outs, err := f.coord.Sweep(ctx, fastCfg(int64(seed)), reps, nil)
				if err != nil {
					t.Fatalf("seed %d on %d workers: %v", seed, nw, err)
				}
				got, err := json.Marshal(outs)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(baselines[seed]) {
					t.Errorf("seed %d: %d-worker sweep is not byte-identical to single-node", seed, nw)
				}
			}
		})
	}
}

// TestDistTestnetWorkerKilledMidSweep kills one of three workers while it
// is streaming a chunk and requires the coordinator to reassign the lost
// work and still produce the single-node bytes, with the retry counted.
func TestDistTestnetWorkerKilledMidSweep(t *testing.T) {
	cfg := fastCfg(17)
	const reps = 24

	victim := NewWorker(WorkerConfig{Slots: 4})
	firstChunk := make(chan struct{})
	var once sync.Once
	victimSrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/chunks") {
			once.Do(func() { close(firstChunk) })
			// Hold the request long enough for the kill to land mid-stream.
			time.Sleep(100 * time.Millisecond)
		}
		victim.Handler().ServeHTTP(rw, r)
	}))

	urls := []string{victimSrv.URL}
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{Slots: 4})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	coord := New(Config{Workers: urls, ChunkReps: 3, HealthInterval: 50 * time.Millisecond, FleetGrace: 10 * time.Second})
	coord.Start()
	t.Cleanup(coord.Stop)

	// Kill the victim the moment it receives its first chunk: in-flight
	// streams tear, the health loop sees connection-refused forever after.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		select {
		case <-firstChunk:
		case <-time.After(30 * time.Second):
			return
		}
		victimSrv.CloseClientConnections()
		victimSrv.Close()
	}()

	outs, err := coord.Sweep(context.Background(), cfg, reps, nil)
	<-killDone
	if err != nil {
		t.Fatalf("sweep did not survive the worker kill: %v", err)
	}
	want, err := scenario.RunSweep(context.Background(), cfg, reps, scenario.SweepOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := json.Marshal(outs)
	wantB, _ := json.Marshal(want)
	if string(gotB) != string(wantB) {
		t.Error("post-kill sweep is not byte-identical to single-node")
	}
	if retried := coord.chunksRetried.Load(); retried < 1 {
		t.Errorf("chunks retried = %d, want >= 1 (the chunk lost with the worker)", retried)
	}
	if live := coord.LiveWorkers(); live > 2 {
		t.Errorf("live workers = %d after the kill, want <= 2", live)
	}
}

// TestDistCancelLeavesNoOrphans is the cancellation satellite: DELETE on a
// distributed job must abort the in-flight chunks on every worker — no
// replication pool keeps running, no goroutine is left behind.
func TestDistCancelLeavesNoOrphans(t *testing.T) {
	f := newFleet(t, 2, Config{ChunkReps: 4})
	s := mustServe(t, serve.Config{Distributor: f.coord, SweepWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	before := runtime.NumGoroutine()

	// A sweep big enough to still be in flight when the DELETE lands: the
	// full-size world takes seconds per replication.
	slow := scenario.Config{Seed: 1, Vehicles: 40, AttackerCluster: 2, DataPackets: 8}
	cfgJSON, err := json.Marshal(slow)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"kind":"sweep","reps":64,"config":%s}`, cfgJSON)

	type submitResult struct {
		lines []string
		err   error
	}
	submitted := make(chan submitResult, 1)
	jobID := make(chan string, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			submitted <- submitResult{err: err}
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		var lines []string
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			var l struct {
				Type string `json:"type"`
				Job  string `json:"job"`
			}
			if json.Unmarshal([]byte(line), &l) == nil && l.Type == "accepted" {
				jobID <- l.Job
			}
		}
		submitted <- submitResult{lines: lines, err: sc.Err()}
	}()

	var id string
	select {
	case id = <-jobID:
	case <-time.After(10 * time.Second):
		t.Fatal("no accepted line within 10s")
	}

	// Wait until at least one worker is actually executing a chunk, so the
	// cancel provably interrupts remote work rather than an empty queue.
	waitUntil(t, 10*time.Second, "a worker to start a chunk", func() bool {
		for _, w := range f.workers {
			if w.Running() > 0 {
				return true
			}
		}
		return false
	})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d, want 202", resp.StatusCode)
	}

	// Every worker's replication pools must stop: Running() drains to zero.
	waitUntil(t, 20*time.Second, "workers to stop their chunks", func() bool {
		for _, w := range f.workers {
			if w.Running() > 0 {
				return false
			}
		}
		return true
	})

	res := <-submitted
	if res.err != nil {
		t.Fatalf("reading canceled job stream: %v", res.err)
	}
	tail := strings.Join(res.lines, "\n")
	if !strings.Contains(tail, "canceled") && !strings.Contains(tail, "error") {
		t.Errorf("canceled job stream carries no terminal marker:\n%s", tail)
	}

	// Goroutine count returns to the neighbourhood it started in — nothing
	// orphaned on the coordinator, the serve layer or the workers.
	waitUntil(t, 20*time.Second, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+8
	})
}

// TestServeFallsBackToLocalWhenFleetDead: a configured-but-unreachable
// fleet must not take sweeps down with it — the serve layer catches
// ErrNoWorkers and executes locally, bytes unchanged.
func TestServeFallsBackToLocalWhenFleetDead(t *testing.T) {
	dead := New(Config{Workers: []string{"http://127.0.0.1:1"}, HealthInterval: 50 * time.Millisecond})
	t.Cleanup(dead.Stop)
	withFleet := mustServe(t, serve.Config{Distributor: dead})
	tsFleet := httptest.NewServer(withFleet.Handler())
	t.Cleanup(tsFleet.Close)
	plain := mustServe(t, serve.Config{})
	tsPlain := httptest.NewServer(plain.Handler())
	t.Cleanup(tsPlain.Close)

	cfgJSON, _ := json.Marshal(fastCfg(6))
	body := fmt.Sprintf(`{"kind":"sweep","reps":4,"workers":1,"config":%s}`, cfgJSON)
	get := func(url string) string {
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		var last string
		for sc.Scan() {
			last = sc.Text()
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, last)
		}
		return last
	}
	if viaFleet, viaLocal := get(tsFleet.URL), get(tsPlain.URL); viaFleet != viaLocal {
		t.Error("dead-fleet fallback payload differs from a plain local server")
	}
}

// TestServeDistributedPayloadMatchesLocal is the end-to-end byte identity:
// the NDJSON result payload of a sweep served through the fleet equals the
// payload of the same sweep on a fleetless server.
func TestServeDistributedPayloadMatchesLocal(t *testing.T) {
	f := newFleet(t, 3, Config{ChunkReps: 3})
	distServer := mustServe(t, serve.Config{Distributor: f.coord})
	tsDist := httptest.NewServer(distServer.Handler())
	t.Cleanup(tsDist.Close)
	localServer := mustServe(t, serve.Config{})
	tsLocal := httptest.NewServer(localServer.Handler())
	t.Cleanup(tsLocal.Close)

	for seed := 0; seed < 3; seed++ {
		cfgJSON, _ := json.Marshal(fastCfg(int64(seed)))
		body := fmt.Sprintf(`{"kind":"sweep","reps":10,"workers":1,"config":%s}`, cfgJSON)
		payload := func(url string) string {
			resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
			var last string
			for sc.Scan() {
				last = sc.Text()
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, last)
			}
			return last
		}
		if viaDist, viaLocal := payload(tsDist.URL), payload(tsLocal.URL); viaDist != viaLocal {
			t.Errorf("seed %d: distributed result payload is not byte-identical to local", seed)
		}
	}
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// mustServe builds a serve.Server, failing the test on a config error.
func mustServe(tb testing.TB, cfg serve.Config) *serve.Server {
	tb.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
