package baseline

import (
	"testing"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/wire"
)

func cand(issuer wire.NodeID, seq wire.SeqNum, at time.Duration) aodv.Candidate {
	return aodv.Candidate{
		RREP: wire.RREP{Issuer: issuer, DestSeq: seq},
		At:   at,
	}
}

func TestFirstReplyFlagsFastInflatedReply(t *testing.T) {
	// Attacker answers first with a huge SN; honest replies trickle in.
	cands := []aodv.Candidate{
		cand(66, 250, 10*time.Millisecond),
		cand(4, 75, 40*time.Millisecond),
		cand(3, 20, 60*time.Millisecond),
	}
	got := FirstReply{}.Suspects(cands)
	if len(got) != 1 || got[0] != 66 {
		t.Errorf("Suspects = %v, want [66]", got)
	}
}

func TestFirstReplyAcceptsHonestFirstReply(t *testing.T) {
	cands := []aodv.Candidate{
		cand(4, 80, 10*time.Millisecond),
		cand(3, 75, 40*time.Millisecond),
	}
	if got := (FirstReply{}).Suspects(cands); len(got) != 0 {
		t.Errorf("honest fast replier flagged: %v", got)
	}
}

func TestFirstReplyBlindWithSingleReply(t *testing.T) {
	// The paper's connector case: the attacker is the only replier. The
	// comparison method has nothing to compare and misses it.
	cands := []aodv.Candidate{cand(66, 5000, 10*time.Millisecond)}
	if got := (FirstReply{}).Suspects(cands); len(got) != 0 {
		t.Errorf("single-reply case should be undecidable, got %v", got)
	}
}

func TestFirstReplyUsesArrivalOrderNotSliceOrder(t *testing.T) {
	cands := []aodv.Candidate{
		cand(4, 75, 40*time.Millisecond),
		cand(66, 250, 10*time.Millisecond), // earliest, though listed second
	}
	got := FirstReply{}.Suspects(cands)
	if len(got) != 1 || got[0] != 66 {
		t.Errorf("Suspects = %v, want [66]", got)
	}
}

func TestPeakLearnsAndFlags(t *testing.T) {
	d := NewPeak(60)
	// Honest traffic teaches the ceiling.
	if got := d.Suspects([]aodv.Candidate{cand(4, 50, 0), cand(3, 40, 0)}); len(got) != 0 {
		t.Fatalf("honest replies flagged: %v", got)
	}
	if d.PeakValue() != 50 {
		t.Fatalf("peak = %d, want 50", d.PeakValue())
	}
	// An attacker far above peak+headroom is flagged.
	got := d.Suspects([]aodv.Candidate{cand(66, 500, 0), cand(4, 60, 0)})
	if len(got) != 1 || got[0] != 66 {
		t.Errorf("Suspects = %v, want [66]", got)
	}
	// The flagged value must not poison the peak.
	if d.PeakValue() != 60 {
		t.Errorf("peak = %d after attack, want 60", d.PeakValue())
	}
}

func TestPeakMissesModestInflation(t *testing.T) {
	// A patient attacker staying within the headroom evades the peak
	// detector; BlackDP's behavioural probe does not care about magnitude.
	d := NewPeak(60)
	d.Suspects([]aodv.Candidate{cand(4, 50, 0)})
	got := d.Suspects([]aodv.Candidate{cand(66, 100, 0)})
	if len(got) != 0 {
		t.Errorf("modest inflation flagged (peak method should miss it): %v", got)
	}
}

func TestStaticThresholds(t *testing.T) {
	tests := []struct {
		env  Environment
		want wire.SeqNum
	}{
		{SmallEnv, 100}, {MediumEnv, 400}, {LargeEnv, 1000}, {Environment(0), 400},
	}
	for _, tt := range tests {
		if got := (StaticThreshold{Env: tt.env}).Threshold(); got != tt.want {
			t.Errorf("Threshold(%v) = %d, want %d", tt.env, got, tt.want)
		}
	}

	d := StaticThreshold{Env: MediumEnv}
	got := d.Suspects([]aodv.Candidate{cand(66, 500, 0), cand(4, 80, 0)})
	if len(got) != 1 || got[0] != 66 {
		t.Errorf("Suspects = %v, want [66]", got)
	}
	if got := d.Suspects([]aodv.Candidate{cand(66, 399, 0)}); len(got) != 0 {
		t.Errorf("below-threshold attacker flagged: %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	cands := []aodv.Candidate{cand(66, 500, 0), cand(4, 80, 0)}
	ev := Evaluate(StaticThreshold{Env: MediumEnv}, cands, 66)
	if !ev.Hit || ev.FalsePos != 0 {
		t.Errorf("evaluation = %+v", ev)
	}
	// Same detector, innocent flagged (no attacker present).
	ev = Evaluate(StaticThreshold{Env: SmallEnv}, []aodv.Candidate{cand(4, 150, 0)}, 0)
	if ev.Hit || ev.FalsePos != 1 {
		t.Errorf("evaluation = %+v", ev)
	}
}

func TestAllReturnsThreeDetectors(t *testing.T) {
	ds := All()
	if len(ds) != 3 {
		t.Fatalf("All() = %d detectors, want 3", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name()] {
			t.Errorf("duplicate detector %q", d.Name())
		}
		seen[d.Name()] = true
	}
}
