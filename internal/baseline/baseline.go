// Package baseline implements the sequence-number-based black hole
// detectors the paper compares against in related work (SV-A): source-side
// heuristics that inspect the route replies a discovery collected and flag
// issuers whose sequence numbers look implausible.
//
//   - FirstReply (Jaiswal et al.): compare the first reply's sequence
//     number against the rest; a large gap marks its issuer malicious.
//   - Peak (Jhaveri et al.): maintain a running estimate of the maximum
//     plausible sequence number; replies above it are malicious.
//   - StaticThreshold (Tan et al.): a fixed per-environment threshold.
//
// All three fail in the paper's connector topology — a single attacker
// bridging two highway segments produces exactly one (forged) reply, so
// comparison-based methods have nothing to compare and threshold methods
// miss attackers that inflate moderately. BlackDP's behavioural probing
// (package core) detects those cases; the benchmark harness quantifies the
// difference.
package baseline

import (
	"fmt"

	"blackdp/internal/aodv"
	"blackdp/internal/wire"
)

// Detector is a source-side black hole classifier over one discovery's
// replies.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Suspects returns the issuers judged malicious among the candidates.
	Suspects(cands []aodv.Candidate) []wire.NodeID
}

// FirstReply implements Jaiswal et al.: the black hole answers fastest, so
// compare the first reply's sequence number with the remaining replies; if
// it exceeds the best of the rest by more than Gap, flag its issuer. With
// fewer than two replies it cannot decide.
type FirstReply struct {
	// Gap is the sequence-number margin that counts as implausible.
	Gap wire.SeqNum
}

var _ Detector = FirstReply{}

// Name implements Detector.
func (d FirstReply) Name() string { return "first-reply-comparison" }

// Suspects implements Detector.
func (d FirstReply) Suspects(cands []aodv.Candidate) []wire.NodeID {
	if len(cands) < 2 {
		return nil
	}
	gap := d.Gap
	if gap == 0 {
		gap = 50
	}
	first := earliest(cands)
	var restMax wire.SeqNum
	for i := range cands {
		if i == first {
			continue
		}
		if s := cands[i].RREP.DestSeq; s > restMax {
			restMax = s
		}
	}
	if cands[first].RREP.DestSeq > restMax+gap {
		return []wire.NodeID{cands[first].RREP.Issuer}
	}
	return nil
}

func earliest(cands []aodv.Candidate) int {
	best := 0
	for i := range cands {
		if cands[i].At < cands[best].At {
			best = i
		}
	}
	return best
}

// Peak implements Jhaveri et al.: track the highest legitimate sequence
// number observed so far and allow for bounded growth; replies beyond the
// moving peak are malicious. The detector is stateful across discoveries.
type Peak struct {
	// Headroom is the allowed growth above the learned peak.
	Headroom wire.SeqNum

	peak wire.SeqNum
}

var _ Detector = (*Peak)(nil)

// NewPeak creates a peak detector with the given headroom (0 means 60).
func NewPeak(headroom wire.SeqNum) *Peak {
	if headroom == 0 {
		headroom = 60
	}
	return &Peak{Headroom: headroom}
}

// Name implements Detector.
func (d *Peak) Name() string { return "dynamic-peak" }

// Suspects implements Detector. Replies below the peak also teach it the
// current legitimate ceiling.
func (d *Peak) Suspects(cands []aodv.Candidate) []wire.NodeID {
	limit := d.peak + d.Headroom
	var out []wire.NodeID
	for i := range cands {
		s := cands[i].RREP.DestSeq
		if s > limit {
			out = append(out, cands[i].RREP.Issuer)
			continue
		}
		if s > d.peak {
			d.peak = s
		}
	}
	return out
}

// Peak exposes the learned ceiling (for tests and reports).
func (d *Peak) PeakValue() wire.SeqNum { return d.peak }

// Environment sizes for StaticThreshold, per Tan et al.
type Environment int

// Environments.
const (
	SmallEnv Environment = iota + 1
	MediumEnv
	LargeEnv
)

// StaticThreshold implements Tan et al.: one fixed threshold per
// environment size; any reply whose sequence number exceeds it is judged
// malicious and discarded.
type StaticThreshold struct {
	Env Environment
}

var _ Detector = StaticThreshold{}

// Name implements Detector.
func (d StaticThreshold) Name() string { return "static-threshold" }

// Threshold returns the cut-off for the configured environment.
func (d StaticThreshold) Threshold() wire.SeqNum {
	switch d.Env {
	case SmallEnv:
		return 100
	case LargeEnv:
		return 1000
	default:
		return 400
	}
}

// Suspects implements Detector.
func (d StaticThreshold) Suspects(cands []aodv.Candidate) []wire.NodeID {
	limit := d.Threshold()
	var out []wire.NodeID
	for i := range cands {
		if cands[i].RREP.DestSeq > limit {
			out = append(out, cands[i].RREP.Issuer)
		}
	}
	return out
}

// All returns one fresh instance of every baseline detector.
func All() []Detector {
	return []Detector{FirstReply{}, NewPeak(0), StaticThreshold{Env: MediumEnv}}
}

// Evaluation is the outcome of judging one discovery with one detector
// against ground truth.
type Evaluation struct {
	Detector string
	Flagged  []wire.NodeID
	Hit      bool // the actual attacker was flagged
	FalsePos int  // innocent issuers flagged
}

// Evaluate judges the candidates with det given the actual attacker (0 if
// none).
func Evaluate(det Detector, cands []aodv.Candidate, attacker wire.NodeID) Evaluation {
	flagged := det.Suspects(cands)
	ev := Evaluation{Detector: det.Name(), Flagged: flagged}
	for _, id := range flagged {
		if id == attacker && attacker != 0 {
			ev.Hit = true
		} else {
			ev.FalsePos++
		}
	}
	return ev
}

func (e Evaluation) String() string {
	return fmt.Sprintf("%s: flagged=%v hit=%v fp=%d", e.Detector, e.Flagged, e.Hit, e.FalsePos)
}
