package core

import (
	"testing"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/attack"
	"blackdp/internal/mobility"
	"blackdp/internal/wire"
)

// The DESIGN.md design-decision ablations: these tests demonstrate WHY the
// paper's protocol has each piece, by turning it off and watching what
// breaks (or what gets wasted).

func TestProbeBeforeReportAvoidsWastedExaminations(t *testing.T) {
	// An honest intermediate with a cached route answers a TTL-limited
	// discovery. With the paper's Hello probe the route verifies end to
	// end and nobody is reported; with the ablation the honest node is
	// reported, examined and cleared — correct but wasteful.
	build := func(seed int64, skipProbe bool) (*world, *VehicleAgent, *VehicleAgent, *VehicleAgent) {
		w := newWorld(t, seed)
		cfg := VehicleConfig{ReportWithoutProbe: skipProbe}
		cfg.Router.TTL = 2 // the source's flood cannot reach the destination
		src := w.addVehicle(300, 14, mobility.Eastbound, cfg)
		mid := w.addVehicle(1200, 14, mobility.Eastbound, VehicleConfig{})
		w.addVehicle(1900, 14, mobility.Eastbound, VehicleConfig{})
		dest := w.addVehicle(2500, 14, mobility.Eastbound, VehicleConfig{})
		w.sched.RunFor(time.Second)
		// Prime the intermediate's route cache.
		primed := false
		if err := mid.Router().Discover(dest.NodeID(), func(aodv.DiscoverResult) { primed = true }); err != nil {
			t.Fatal(err)
		}
		w.runUntil(10*time.Second, func() bool { return primed })
		return w, src, mid, dest
	}

	t.Run("with probe (paper)", func(t *testing.T) {
		w, src, mid, dest := build(50, false)
		res := w.establish(src, dest.NodeID(), 30*time.Second)
		if res.Status != StatusVerified || res.Via != mid.NodeID() {
			t.Fatalf("result = %+v, want verified via the honest intermediate", res)
		}
		if src.Stats().ReportsFiled != 0 {
			t.Error("paper flow reported an honest intermediate")
		}
	})
	t.Run("without probe (ablation)", func(t *testing.T) {
		w, src, mid, dest := build(50, true)
		res := w.establish(src, dest.NodeID(), 30*time.Second)
		if res.Status != StatusCleared || res.Suspect != mid.NodeID() {
			t.Fatalf("result = %+v, want the honest intermediate reported then cleared", res)
		}
		// Still no false positive — the CH examination is the backstop...
		if w.heads[2].Membership().IsBlacklisted(mid.NodeID()) {
			t.Error("FALSE POSITIVE under the ablation")
		}
		// ...but a full examination was burned on an innocent node.
		ct, ok := w.env.Tally.Lookup(mid.NodeID())
		if !ok || ct.DetectionPackets() == 0 {
			t.Error("no examination recorded; the ablation did not fire")
		}
	})
}

func TestVerificationQueueSerialisesWork(t *testing.T) {
	// With AuthProcessing configured and no fog nodes, the head is a
	// single-server queue: n simultaneous d_reqs finish authentication at
	// strictly increasing multiples of the processing cost.
	w := newWorldWithHeads(t, 52, HeadConfig{AuthProcessing: 50 * time.Millisecond})
	var reporters []*VehicleAgent
	for i := 0; i < 4; i++ {
		reporters = append(reporters, w.addVehicle(200+float64(i)*50, 14, mobility.Eastbound, VehicleConfig{}))
	}
	honest := w.addVehicle(800, 14, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	verdicts := 0
	for _, r := range reporters {
		if err := r.ReportSuspect(honest.NodeID(), 1, 0, func(EstablishResult) { verdicts++ }); err != nil {
			t.Fatal(err)
		}
	}
	w.sched.RunFor(20 * time.Second)
	if verdicts != len(reporters) {
		t.Fatalf("verdicts = %d, want %d", verdicts, len(reporters))
	}
	st := w.heads[1].Stats()
	if st.AuthQueued != uint64(len(reporters)) {
		t.Errorf("AuthQueued = %d, want %d", st.AuthQueued, len(reporters))
	}
	// The last of four near-simultaneous arrivals waits ~4 service times.
	if st.AuthMaxLatency < 150*time.Millisecond || st.AuthMaxLatency > 400*time.Millisecond {
		t.Errorf("AuthMaxLatency = %v, want roughly 4x50ms for a serialised burst", st.AuthMaxLatency)
	}
}

func TestSingleProbeAblationMissesTeammate(t *testing.T) {
	// The second bait probe carries the next-hop inquiry; without it the
	// primary still falls, but the accomplice survives.
	build := func(seed int64, single bool) (*world, *VehicleAgent, *VehicleAgent, wire.NodeID) {
		w := newWorldWithHeads(t, seed, HeadConfig{SingleProbe: single})
		src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
		w.legitChain(1200, 1900)
		dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
		p2 := attack.DefaultProfile()
		p2.SupportOnly = true
		b2, _ := w.addBlackhole(950, 15, mobility.Eastbound, p2)
		p1 := attack.DefaultProfile()
		p1.Teammate = b2.NodeID()
		b1, _ := w.addBlackhole(800, 15, mobility.Eastbound, p1)
		w.sched.RunFor(time.Second)
		res := w.establish(src, dest.NodeID(), 30*time.Second)
		if res.Status != StatusDetected || res.Suspect != b1.NodeID() {
			t.Fatalf("primary not detected: %+v", res)
		}
		w.sched.RunFor(time.Second)
		return w, b1, b2, b2.NodeID()
	}

	t.Run("two probes (paper)", func(t *testing.T) {
		w, b1, b2, _ := build(51, false)
		if !w.heads[1].Membership().IsBlacklisted(b1.NodeID()) || !w.heads[1].Membership().IsBlacklisted(b2.NodeID()) {
			t.Error("paper flow must isolate both attackers")
		}
	})
	t.Run("single probe (ablation)", func(t *testing.T) {
		w, b1, _, teammateID := build(51, true)
		if !w.heads[1].Membership().IsBlacklisted(b1.NodeID()) {
			t.Error("primary not isolated")
		}
		if w.heads[1].Membership().IsBlacklisted(teammateID) {
			t.Error("teammate isolated without the next-hop inquiry — ablation did not fire")
		}
		ct, _ := w.env.Tally.Lookup(b1.NodeID())
		if ct.Teammate != 0 {
			t.Errorf("teammate %v exposed without the second probe", ct.Teammate)
		}
		// And it is cheaper: a same-cluster single-probe case costs 4
		// detection packets instead of 6.
		if got := ct.DetectionPackets(); got != 4 {
			t.Errorf("detection packets = %d, want 4 under single-probe", got)
		}
	})
}
