package core

import (
	"testing"
	"time"

	"blackdp/internal/attack"
	"blackdp/internal/cluster"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// world is a complete simulated highway: one TA, a head per cluster, and
// whatever vehicles a test adds.
type world struct {
	t       *testing.T
	env     Env
	sched   *sim.Scheduler
	highway *mobility.Highway
	ta      *AuthorityAgent
	heads   map[wire.ClusterID]*HeadAgent
	seq     int
}

func newWorld(t *testing.T, seed int64) *world {
	return newWorldWithHeads(t, seed, HeadConfig{})
}

func newWorldWithHeads(t *testing.T, seed int64, headCfg HeadConfig) *world {
	t.Helper()
	highway, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	env := Env{
		Sched:    sched,
		RNG:      rng,
		Trust:    pki.NewTrustStore(),
		Scheme:   pki.ECDSA{Rand: rng.Split("crypto").Reader()},
		Dir:      cluster.NewDirectory(),
		Highway:  highway,
		Medium:   radio.NewMedium(sched, rng.Split("radio")),
		Backbone: radio.NewBackbone(sched, time.Millisecond),
		Tracer:   trace.NewRecorder(sched.Now, 0),
		Tally:    NewTally(),
	}
	w := &world{t: t, env: env, sched: sched, highway: highway, heads: make(map[wire.ClusterID]*HeadAgent)}

	served := make([]wire.ClusterID, highway.Clusters())
	for i := range served {
		served[i] = wire.ClusterID(i + 1)
	}
	ta, err := NewAuthorityAgent(env, 1, 1, served, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w.ta = ta

	for c := wire.ClusterID(1); int(c) <= highway.Clusters(); c++ {
		cred, err := ta.IssueHeadCredential(c)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHeadAgent(env, headCfg, cred, c)
		if err != nil {
			t.Fatal(err)
		}
		h.Start()
		w.heads[c] = h
	}
	return w
}

// addVehicle creates and starts a legitimate vehicle.
func (w *world) addVehicle(x, speedMS float64, dir mobility.Direction, cfg VehicleConfig) *VehicleAgent {
	w.t.Helper()
	w.seq++
	cred, err := w.ta.IssueVehicleCredential(lineage(w.seq))
	if err != nil {
		w.t.Fatal(err)
	}
	mob, err := mobility.NewMobile(w.highway, mobility.Position{X: x, Y: 100}, dir, speedMS, w.sched.Now())
	if err != nil {
		w.t.Fatal(err)
	}
	cfg.Verify = true
	v, err := NewVehicleAgent(w.env, cfg, cred, mob)
	if err != nil {
		w.t.Fatal(err)
	}
	v.Start()
	return v
}

func lineage(n int) string { return "veh-" + string(rune('a'+n%26)) + string(rune('0'+n/26)) }

// addBlackhole creates a black hole vehicle: a full vehicle agent with the
// hostile interceptor wired in front of its radio.
func (w *world) addBlackhole(x, speedMS float64, dir mobility.Direction, profile attack.Profile) (*VehicleAgent, *attack.Blackhole) {
	w.t.Helper()
	v := w.addVehicle(x, speedMS, dir, VehicleConfig{})
	bh := attack.NewBlackhole(profile, attack.Env{
		Sched:   w.sched,
		RNG:     w.env.RNG.Split("attacker"),
		Send:    v.Interface().Send,
		Self:    v.Interface().NodeID,
		Cluster: v.Client().Cluster,
		Seal: func(p wire.Packet) ([]byte, error) {
			sec, err := pki.Seal(p, v.Credential(), w.env.Scheme)
			if err != nil {
				return nil, err
			}
			return sec.MarshalBinary()
		},
		Inner: v.HandleFrame,
		Flee:  func() { v.Mobile().Exit(w.sched.Now()) },
		Renew: func() { _ = v.RenewCertificate() },
	})
	v.Interface().SetReceiver(bh.HandleFrame)
	return v, bh
}

// establish runs a verified route establishment to completion.
func (w *world) establish(src *VehicleAgent, dest wire.NodeID, within time.Duration) EstablishResult {
	w.t.Helper()
	var got *EstablishResult
	if err := src.EstablishRoute(dest, func(r EstablishResult) { got = &r }); err != nil {
		w.t.Fatalf("EstablishRoute: %v", err)
	}
	w.runUntil(within, func() bool { return got != nil })
	if got == nil {
		w.t.Fatal("establishment never completed")
	}
	return *got
}

// runUntil steps the simulation until cond holds or the time budget is
// spent, stopping promptly so later assertions see fresh protocol state.
func (w *world) runUntil(within time.Duration, cond func() bool) {
	deadline := w.sched.Now() + within
	for !cond() && w.sched.Now() < deadline && w.sched.Pending() > 0 {
		w.sched.Step()
	}
}

// legitChain adds relay vehicles so src (x=300, cluster 1) can reach a
// destination placed at destX through honest hops 900 m apart.
func (w *world) legitChain(xs ...float64) []*VehicleAgent {
	out := make([]*VehicleAgent, 0, len(xs))
	for _, x := range xs {
		out = append(out, w.addVehicle(x, 15, mobility.Eastbound, VehicleConfig{}))
	}
	return out
}

func TestVerifiedRouteToHonestDestination(t *testing.T) {
	w := newWorld(t, 1)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	chain := w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	_ = chain
	w.sched.RunFor(time.Second) // joins settle

	res := w.establish(src, dest.NodeID(), 15*time.Second)
	if res.Status != StatusVerified {
		t.Fatalf("status = %v, want verified", res.Status)
	}
	// Data flows end to end.
	var delivered int
	dest.OnDataReceived(func(d *wire.Data, from wire.NodeID) { delivered++ })
	for i := 0; i < 5; i++ {
		if err := src.SendData(dest.NodeID(), []byte("hi")); err != nil {
			t.Fatalf("SendData: %v", err)
		}
	}
	w.sched.RunFor(2 * time.Second)
	if delivered != 5 {
		t.Errorf("delivered %d/5 data packets", delivered)
	}
}

func TestSingleBlackHoleDetectedAndIsolated(t *testing.T) {
	w := newWorld(t, 2)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, bh := w.addBlackhole(800, 15, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("status = %v (suspect %v verdict %v), want detected", res.Status, res.Suspect, res.Verdict)
	}
	if res.Suspect != attacker.NodeID() {
		t.Errorf("suspect = %v, want attacker %v", res.Suspect, attacker.NodeID())
	}
	if res.Verdict != wire.VerdictMalicious {
		t.Errorf("verdict = %v, want malicious", res.Verdict)
	}
	if bh.Stats().RepliesForged == 0 {
		t.Error("attacker never forged a reply; scenario broken")
	}

	// Isolation artefacts: blacklisted at its head, revoked at the TA,
	// renewal paused.
	h := w.heads[1]
	if !h.Membership().IsBlacklisted(attacker.NodeID()) {
		t.Error("attacker not blacklisted at its cluster head")
	}
	if w.ta.Stats().Revocations != 1 {
		t.Errorf("TA revocations = %d, want 1", w.ta.Stats().Revocations)
	}
	if !w.ta.Authority().IsRevoked(attacker.Credential().Cert.Serial) {
		t.Error("attacker's certificate not revoked")
	}

	// Figure 5 accounting: same-cluster single attack costs 6 detection
	// packets (d_req + two probe rounds + verdict).
	ct, ok := w.env.Tally.Lookup(attacker.NodeID())
	if !ok {
		t.Fatal("no tally case for the attacker")
	}
	if got := ct.DetectionPackets(); got != 6 {
		t.Errorf("detection packets = %d (dreq %d fwd %d probes %d replies %d respBB %d respRadio %d), want 6",
			got, ct.DReqSent, ct.DReqForwarded, ct.ProbesSent, ct.ProbeReplies, ct.RespBackbone, ct.RespRadio)
	}
	if ct.Verdict != wire.VerdictMalicious {
		t.Errorf("tally verdict = %v", ct.Verdict)
	}
}

func TestDetectionAcrossClusters(t *testing.T) {
	// Reporter in cluster 1, attacker registered in cluster 2: the d_req is
	// forwarded over the backbone and the verdict relayed back (8 packets).
	w := newWorld(t, 3)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2700, 15, mobility.Eastbound, VehicleConfig{})
	attacker, _ := w.addBlackhole(1100, 15, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("status = %v, want detected", res.Status)
	}
	ct, ok := w.env.Tally.Lookup(attacker.NodeID())
	if !ok {
		t.Fatal("no tally case")
	}
	if ct.DReqForwarded != 1 {
		t.Errorf("DReqForwarded = %d, want 1", ct.DReqForwarded)
	}
	if ct.RespBackbone != 1 {
		t.Errorf("RespBackbone = %d, want 1", ct.RespBackbone)
	}
	if got := ct.DetectionPackets(); got != 8 {
		t.Errorf("detection packets = %d, want 8", got)
	}
	// Both the detecting head and the reporter's head blacklist the node
	// (adjacent-cluster notice).
	if !w.heads[2].Membership().IsBlacklisted(attacker.NodeID()) {
		t.Error("attacker not blacklisted in its own cluster")
	}
	w.sched.RunFor(time.Second)
	if !w.heads[1].Membership().IsBlacklisted(attacker.NodeID()) {
		t.Error("attacker not blacklisted in the adjacent cluster")
	}
}

func TestCooperativeAttackersBothIsolated(t *testing.T) {
	w := newWorld(t, 4)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})

	// Two cooperating attackers in mutual range, same cluster as source.
	// The accomplice only endorses (paper's B2); the primary attracts the
	// traffic and names it when probed.
	p2 := attack.DefaultProfile()
	p2.SupportOnly = true
	b2, _ := w.addBlackhole(950, 15, mobility.Eastbound, p2)
	p1 := attack.DefaultProfile()
	p1.Teammate = b2.NodeID()
	b1, _ := w.addBlackhole(800, 15, mobility.Eastbound, p1)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("status = %v, want detected", res.Status)
	}
	ct, ok := w.env.Tally.Lookup(res.Suspect)
	if !ok {
		t.Fatal("no tally case")
	}
	if ct.Teammate == 0 {
		t.Fatal("cooperative teammate not exposed")
	}
	w.sched.RunFor(time.Second)
	for _, a := range []wire.NodeID{b1.NodeID(), b2.NodeID()} {
		if !w.heads[1].Membership().IsBlacklisted(a) {
			t.Errorf("attacker %v not blacklisted", a)
		}
	}
	// Cooperative detection costs the single-attack packets plus two
	// (teammate probe + reply): 8 in the same-cluster case.
	if got := ct.DetectionPackets(); got != 8 {
		t.Errorf("detection packets = %d, want 8 (6 + teammate pair)", got)
	}
}

func TestFakeHelloReplyTriggersImmediateReport(t *testing.T) {
	p := attack.DefaultProfile()
	p.FakeHelloReplyProb = 1
	w := newWorld(t, 5)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	_, bh := w.addBlackhole(800, 15, mobility.Eastbound, p)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("status = %v, want detected", res.Status)
	}
	if bh.Stats().FakeHelloSent == 0 {
		t.Error("attacker never sent the fake hello; scenario broken")
	}
	if src.Stats().AnonymityFakes == 0 {
		t.Error("source did not classify the reply as an anonymity response")
	}
	// Immediate report: only one discovery round needed.
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (anonymity response skips round 2)", res.Rounds)
	}
}

func TestLegitimateSuspectCleared(t *testing.T) {
	// A manual report against an honest node: the head probes it twice,
	// gets nothing (an honest node has no route to a nonexistent
	// destination), and clears it. No false positive, 4 packets.
	w := newWorld(t, 6)
	reporter := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	honest := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	var got *EstablishResult
	err := reporter.ReportSuspect(honest.NodeID(), 1, honest.Credential().Cert.Serial,
		func(r EstablishResult) { got = &r })
	if err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(15 * time.Second)
	if got == nil {
		t.Fatal("report never resolved")
	}
	if got.Status != StatusCleared || got.Verdict != wire.VerdictLegitimate {
		t.Fatalf("result = %v/%v, want cleared/legitimate", got.Status, got.Verdict)
	}
	if w.heads[1].Membership().IsBlacklisted(honest.NodeID()) {
		t.Error("FALSE POSITIVE: honest node blacklisted")
	}
	if w.ta.Stats().Revocations != 0 {
		t.Error("FALSE POSITIVE: honest node revoked")
	}
	ct, _ := w.env.Tally.Lookup(honest.NodeID())
	if got := ct.DetectionPackets(); got != 4 {
		t.Errorf("detection packets = %d, want 4 (d_req + 2 silent probes + verdict)", got)
	}
}

func TestLegitimateSuspectRemoteCluster(t *testing.T) {
	// Reporter in cluster 1, honest suspect in cluster 3: 6 packets.
	w := newWorld(t, 7)
	reporter := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	honest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	var got *EstablishResult
	err := reporter.ReportSuspect(honest.NodeID(), 3, 0, func(r EstablishResult) { got = &r })
	if err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(15 * time.Second)
	if got == nil || got.Status != StatusCleared {
		t.Fatalf("result = %+v, want cleared", got)
	}
	ct, _ := w.env.Tally.Lookup(honest.NodeID())
	if got := ct.DetectionPackets(); got != 6 {
		t.Errorf("detection packets = %d, want 6", got)
	}
}

func TestIsolatedAttackerCannotRenew(t *testing.T) {
	w := newWorld(t, 8)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, _ := w.addBlackhole(800, 15, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("status = %v, want detected", res.Status)
	}
	// The revoked attacker asks for a new pseudonym; the TA must refuse.
	if err := attacker.RenewCertificate(); err != nil {
		t.Fatalf("RenewCertificate: %v", err)
	}
	w.sched.RunFor(2 * time.Second)
	if attacker.Stats().RenewalsApplied != 0 {
		t.Error("revoked attacker obtained a fresh certificate")
	}
	if w.ta.Stats().RenewalsDenied == 0 {
		t.Error("TA did not deny the renewal")
	}
}

func TestRouteReestablishedAfterIsolation(t *testing.T) {
	w := newWorld(t, 9)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, _ := w.addBlackhole(800, 15, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected {
		t.Fatalf("first establishment = %v, want detected", res.Status)
	}
	w.sched.RunFor(time.Second) // blacklist notice propagates

	res2 := w.establish(src, dest.NodeID(), 30*time.Second)
	if res2.Status != StatusVerified {
		t.Fatalf("second establishment = %v, want verified", res2.Status)
	}
	if res2.Via == attacker.NodeID() {
		t.Error("second route still goes through the attacker")
	}
	// And data now arrives.
	var delivered int
	dest.OnDataReceived(func(*wire.Data, wire.NodeID) { delivered++ })
	for i := 0; i < 3; i++ {
		if err := src.SendData(dest.NodeID(), []byte("x")); err != nil {
			t.Fatalf("SendData: %v", err)
		}
	}
	w.sched.RunFor(2 * time.Second)
	if delivered != 3 {
		t.Errorf("delivered %d/3 after isolation", delivered)
	}
}

func TestEvasiveAttackerActsLegitimately(t *testing.T) {
	// An attacker that always acts legitimately under evasion never forges,
	// so establishment succeeds through honest nodes and nothing is
	// detected — the paper's "prevent but not detect" region.
	p := attack.DefaultProfile()
	p.ActLegitProb = 1
	p.EvasiveWhen = func() bool { return true }
	w := newWorld(t, 10)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	_, bh := w.addBlackhole(800, 15, mobility.Eastbound, p)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusVerified {
		t.Fatalf("status = %v, want verified (attacker lying low)", res.Status)
	}
	if bh.Stats().RepliesForged != 0 {
		t.Error("supposedly dormant attacker forged replies")
	}
	if w.ta.Stats().Revocations != 0 {
		t.Error("revocation without an attack")
	}
}

func TestAttackerFleesMidDetection(t *testing.T) {
	// The attacker forges once (non-evasive on the first request due to the
	// profile draw), then flees when the head probes it: detection cannot
	// conclude; the head reports it unreachable or the report times out —
	// either way a false negative, never a false positive.
	p := attack.DefaultProfile()
	firstForged := false
	p.FleeProb = 1
	p.EvasiveWhen = func() bool {
		// Attack the first request (the victim's), evade afterwards (the
		// head's probes).
		if !firstForged {
			firstForged = true
			return false
		}
		return true
	}
	w := newWorld(t, 11)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, bh := w.addBlackhole(800, 15, mobility.Eastbound, p)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 40*time.Second)
	if res.Status == StatusDetected {
		t.Fatalf("fled attacker was somehow detected")
	}
	if bh.Stats().Fled == 0 {
		t.Error("attacker never fled; scenario broken")
	}
	if w.heads[1].Membership().IsBlacklisted(attacker.NodeID()) {
		t.Error("fled attacker blacklisted without confirmation")
	}
}

func TestAttackerRenewsMidDetection(t *testing.T) {
	// The attacker renews its certificate when probed: the old pseudonym
	// goes silent, probes time out, and the examination clears or loses the
	// suspect — a false negative by identity churn.
	p := attack.DefaultProfile()
	first := false
	p.RenewProb = 1
	p.EvasiveWhen = func() bool {
		if !first {
			first = true
			return false
		}
		return true
	}
	w := newWorld(t, 12)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, _ := w.addBlackhole(800, 15, mobility.Eastbound, p)
	oldID := attacker.NodeID()
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 40*time.Second)
	if res.Status == StatusDetected && res.Suspect == attacker.NodeID() {
		t.Fatalf("renewed attacker convicted under its new identity")
	}
	w.sched.RunFor(5 * time.Second)
	if attacker.Stats().RenewalsApplied == 0 {
		t.Error("attacker never completed the renewal; scenario broken")
	}
	if attacker.NodeID() == oldID {
		t.Error("pseudonym did not rotate")
	}
}

func TestRedundantReportsDeduplicated(t *testing.T) {
	// Two reporters flag the same suspect: one examination, one probe
	// sequence, two verdicts delivered.
	w := newWorld(t, 13)
	r1 := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	r2 := w.addVehicle(400, 15, mobility.Eastbound, VehicleConfig{})
	honest := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	var got1, got2 *EstablishResult
	if err := r1.ReportSuspect(honest.NodeID(), 1, 0, func(r EstablishResult) { got1 = &r }); err != nil {
		t.Fatal(err)
	}
	if err := r2.ReportSuspect(honest.NodeID(), 1, 0, func(r EstablishResult) { got2 = &r }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(15 * time.Second)
	if got1 == nil || got2 == nil {
		t.Fatal("verdicts not delivered to both reporters")
	}
	if w.heads[1].Stats().DReqDuplicates != 1 {
		t.Errorf("DReqDuplicates = %d, want 1", w.heads[1].Stats().DReqDuplicates)
	}
	ct, _ := w.env.Tally.Lookup(honest.NodeID())
	if ct.ProbesSent != 2 {
		t.Errorf("ProbesSent = %d, want 2 (no extra probes for the duplicate)", ct.ProbesSent)
	}
	if ct.RespRadio != 2 {
		t.Errorf("RespRadio = %d, want 2 (one verdict per reporter)", ct.RespRadio)
	}
}

func TestUnsignedDReqIgnored(t *testing.T) {
	w := newWorld(t, 14)
	honest := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	// Craft a bare (unsigned) d_req and fire it at the head directly.
	dr := &wire.DetectReq{Reporter: 424242, ReporterCluster: 1, Suspect: honest.NodeID(), SuspectCluster: 1}
	b, err := dr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rogue := w.env.Medium.Attach(424242, mobility.Static{Pos: mobility.Position{X: 400, Y: 100}, H: w.env.Highway},
		func(radio.Frame) {})
	rogue.Send(w.heads[1].NodeID(), b)
	w.sched.RunFor(5 * time.Second)

	if w.heads[1].Stats().Examinations != 0 {
		t.Error("unsigned d_req triggered an examination")
	}
	if w.heads[1].Stats().AuthFailures == 0 {
		t.Error("authentication failure not counted")
	}
}

func TestPlainAODVModeTrustsAttacker(t *testing.T) {
	// The undefended baseline: with Verify off, the source installs the
	// attacker's route and its data dies in the black hole.
	w := newWorld(t, 15)
	cfg := VehicleConfig{}
	src := w.addVehicle(300, 15, mobility.Eastbound, cfg)
	src.cfg.Verify = false
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	_, bh := w.addBlackhole(800, 15, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 15*time.Second)
	if res.Status != StatusUnverified {
		t.Fatalf("status = %v, want unverified", res.Status)
	}
	var delivered int
	dest.OnDataReceived(func(*wire.Data, wire.NodeID) { delivered++ })
	for i := 0; i < 5; i++ {
		if err := src.SendData(dest.NodeID(), []byte("x")); err != nil {
			t.Fatalf("SendData: %v", err)
		}
	}
	w.sched.RunFor(2 * time.Second)
	if delivered != 0 {
		t.Errorf("delivered %d packets through a black hole, want 0", delivered)
	}
	if bh.Stats().DataDropped == 0 {
		t.Error("attacker dropped nothing; route did not go through it")
	}
}

func TestTallyArithmetic(t *testing.T) {
	tal := NewTally()
	c := tal.Case(5)
	c.addDReq(time.Second)
	c.addForward()
	c.addProbe()
	c.addProbe()
	c.addProbeReply()
	c.addRespBackbone()
	c.addRespRadio()
	if got := c.DetectionPackets(); got != 7 {
		t.Errorf("DetectionPackets = %d, want 7", got)
	}
	c.addIsolation(3)
	if c.IsolationPackets != 3 {
		t.Errorf("IsolationPackets = %d", c.IsolationPackets)
	}
	c.resolve(wire.VerdictMalicious, 7, 2*time.Second)
	c.resolve(wire.VerdictLegitimate, 0, 3*time.Second) // later resolutions ignored
	if c.Verdict != wire.VerdictMalicious || c.Teammate != 7 {
		t.Errorf("resolution overwritten: %v/%v", c.Verdict, c.Teammate)
	}
	if len(tal.Cases()) != 1 || tal.TotalDetectionPackets() != 7 {
		t.Error("aggregate views wrong")
	}

	// Nil safety.
	var nilT *Tally
	nilT.Case(1).addProbe()
	if nilT.TotalDetectionPackets() != 0 {
		t.Error("nil tally not inert")
	}
}
