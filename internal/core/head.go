package core

import (
	"fmt"
	"sort"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/cluster"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// HeadConfig tunes the cluster head's detection engine. Zero fields take
// defaults.
type HeadConfig struct {
	// ProbeTimeout is how long the head waits for a suspect's reply to one
	// bait probe.
	ProbeTimeout time.Duration
	// ProbeRetries is how many extra probes a silent suspect receives
	// before being declared legitimate.
	ProbeRetries int
	// StageDelay separates a received probe reply from the next probe,
	// modelling the head's verification-table processing interval.
	StageDelay time.Duration
	// MaxForwards bounds how many times a d_req may be handed between
	// heads before the suspect is declared unreachable.
	MaxForwards uint8
	// ForwardRetries is how many times a failed backbone hand-off (crashed
	// peer, severed link) is retried with capped exponential backoff before
	// the suspect is declared unreachable. 0 means the default (5);
	// -1 disables retries — the ablation baseline, failing on first error.
	ForwardRetries int
	// ForwardTimeout is the initial backbone retry delay; each retry doubles
	// it, capped at 4x.
	ForwardTimeout time.Duration
	// AuthProcessing is the simulated CPU time the head spends verifying
	// one sealed packet from a vehicle (signature + certificate checks).
	// Zero models a head with unbounded verification capacity; a positive
	// value creates the queueing bottleneck the paper's SIII-C warns about
	// when cluster density is high.
	AuthProcessing time.Duration
	// FogNodes is the number of additional fog verifiers the head can
	// offload authentication to (the paper's proposed mitigation). The
	// head itself always counts as one server, so the verification stage
	// runs as a (1+FogNodes)-server queue.
	FogNodes int
	// SingleProbe is the DESIGN.md ablation of the paper's two-probe bait:
	// convict on the first reply to the fake-destination request, without
	// the higher-sequence follow-up. Two detection packets cheaper per
	// case — but the follow-up carries the next-hop inquiry, so
	// cooperative accomplices are never exposed. Off by default.
	SingleProbe bool
	// Router configures the head's AODV participation.
	Router aodv.Config
}

func (c HeadConfig) withDefaults() HeadConfig {
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 800 * time.Millisecond
	}
	if c.ProbeRetries == 0 {
		c.ProbeRetries = 1
	}
	if c.MaxForwards == 0 {
		c.MaxForwards = 3
	}
	if c.ForwardRetries == 0 {
		c.ForwardRetries = 5
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = time.Second
	}
	return c
}

// HeadAgentStats counts detection-engine activity.
type HeadAgentStats struct {
	DReqReceived   uint64
	DReqDuplicates uint64
	DReqForwarded  uint64
	Examinations   uint64
	Confirmed      uint64
	ClearedLegit   uint64
	Unreachable    uint64
	Teammates      uint64
	Revocations    uint64
	AuthFailures   uint64 // sealed packets that failed verification
	RenewalsProxy  uint64
	AuthQueued     uint64        // verifications that passed through the server queue
	AuthMaxLatency time.Duration // worst queueing + processing delay observed

	ForwardRetransmits uint64 // backbone hand-off retries after send failures
	VerdictReplays     uint64 // cached verdicts re-sent for retransmitted d_reqs
	Crashes            uint64 // injected crashes survived
}

// reporterRef identifies who asked for a detection and where to send the
// verdict.
type reporterRef struct {
	node    wire.NodeID
	cluster wire.ClusterID
	nonce   uint64 // the d_req's retransmission nonce, 0 if absent
}

// resolvedCase remembers a delivered verdict so a retransmitted d_req (same
// nonce — the verdict was lost in flight) can be re-answered without burning
// a second examination. A different nonce is a genuinely new report.
type resolvedCase struct {
	verdict  wire.Verdict
	teammate wire.NodeID
	nonces   map[uint64]bool
}

// detectionCase is one entry of the paper's verification table, plus the
// live probe state.
type detectionCase struct {
	suspect  wire.NodeID
	serial   uint64 // certificate serial to revoke (from the d_req or probe envelope)
	expiry   time.Duration
	reporter []reporterRef

	fakeDest   wire.NodeID
	disposable *radio.Interface
	stage      int // 1 = first probe, 2 = violation probe, 3 = teammate probe
	priorSeq   wire.SeqNum
	teammate   wire.NodeID
	retries    int
	forwards   uint8
	timer      sim.Timer
}

// HeadAgent is an RSU cluster head: membership, AODV relay, BlackDP
// detection and isolation.
type HeadAgent struct {
	env  Env
	cfg  HeadConfig
	cred *pki.Credential

	cluster wire.ClusterID
	pos     mobility.Position
	ifc     *radio.Interface
	router  *aodv.Router
	memb    *cluster.Head
	ep      *radio.BackboneEndpoint

	verifier *pki.Verifier // per-head verification cache

	cases           map[wire.NodeID]*detectionCase
	resolved        map[wire.NodeID]*resolvedCase
	pendingRenewals map[wire.NodeID]bool
	verifiers       []time.Duration // per-server busy-until (head + fog nodes)
	crashed         bool
	pruneFn         func() // reusable prune callback (built on first schedule)
	stats           HeadAgentStats
}

// NewHeadAgent creates the head for cluster c with the given (TA-issued)
// credential, mounts its radio at the cluster centre, and attaches it to the
// backbone.
func NewHeadAgent(env Env, cfg HeadConfig, cred *pki.Credential, c wire.ClusterID) (*HeadAgent, error) {
	env.check()
	if cred == nil {
		return nil, fmt.Errorf("core: head for cluster %d requires a credential", c)
	}
	h := &HeadAgent{
		env:             env,
		cfg:             cfg.withDefaults(),
		cred:            cred,
		cluster:         c,
		pos:             env.Highway.ClusterCenter(int(c)),
		verifier:        env.NewVerifier(),
		cases:           make(map[wire.NodeID]*detectionCase),
		resolved:        make(map[wire.NodeID]*resolvedCase),
		pendingRenewals: make(map[wire.NodeID]bool),
	}
	h.verifiers = make([]time.Duration, 1+h.cfg.FogNodes)
	loc := mobility.Static{Pos: h.pos, H: env.Highway}
	h.ifc = env.AttachRadio(cred.NodeID(), loc, h.handleFrame)
	h.router = aodv.New(h.cfg.Router, env.Sched, env.RNG.Split(fmt.Sprintf("head-router-%d", c)), h.ifc,
		h.sealPacket, aodv.Callbacks{
			Cluster: func() wire.ClusterID { return h.cluster },
			AcceptReply: func(rep *wire.RREP, from wire.NodeID) bool {
				// The head's own relay plane must not carry routes through
				// nodes it has blacklisted.
				return !h.memb.IsBlacklisted(rep.Issuer) && !h.memb.IsBlacklisted(from)
			},
		})
	h.memb = cluster.NewHead(cred.NodeID(), c, env.Highway, env.Sched,
		func(to wire.NodeID, payload []byte) { h.ifc.Send(to, payload) }, cluster.HeadCallbacks{})
	ep, err := env.Backbone.Attach(cred.NodeID(), int(c), h.handleBackbone)
	if err != nil {
		return nil, err
	}
	h.ep = ep
	if err := env.Dir.AddHead(c, cred.NodeID()); err != nil {
		return nil, err
	}
	return h, nil
}

// Start begins AODV participation and periodic membership pruning.
func (h *HeadAgent) Start() {
	h.router.Start()
	h.schedulePrune()
}

func (h *HeadAgent) schedulePrune() {
	if h.pruneFn == nil {
		h.pruneFn = func() {
			if !h.crashed {
				h.memb.Prune()
			}
			h.schedulePrune()
		}
	}
	h.env.Sched.After(5*time.Second, h.pruneFn)
}

// Crash takes the head fully offline: radio silenced, backbone port down,
// every open detection case aborted, in-flight renewals dropped. Membership
// and blacklist state survive — RSU storage is non-volatile — so Recover
// resumes service where the crash left it. The fault layer drives this.
func (h *HeadAgent) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.stats.Crashes++
	h.ifc.SetSilenced(true)
	h.ep.SetDown(true)
	// Abort open cases in deterministic order; their disposable identities
	// and timers die with the head.
	suspects := make([]wire.NodeID, 0, len(h.cases))
	for s := range h.cases {
		suspects = append(suspects, s)
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
	for _, s := range suspects {
		h.closeCase(h.cases[s])
	}
	h.pendingRenewals = make(map[wire.NodeID]bool)
	h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "head for cluster %d crashed", h.cluster)
}

// Recover brings a crashed head back online.
func (h *HeadAgent) Recover() {
	if !h.crashed {
		return
	}
	h.crashed = false
	h.ifc.SetSilenced(false)
	h.ep.SetDown(false)
	h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "head for cluster %d recovered", h.cluster)
}

// Crashed reports whether the head is currently offline.
func (h *HeadAgent) Crashed() bool { return h.crashed }

// NodeID returns the head's pseudonym.
func (h *HeadAgent) NodeID() wire.NodeID { return h.cred.NodeID() }

// Credential returns the head's operating credential.
func (h *HeadAgent) Credential() *pki.Credential { return h.cred }

// Cluster returns the cluster this head serves.
func (h *HeadAgent) Cluster() wire.ClusterID { return h.cluster }

// Membership exposes the membership table (for scenario assertions).
func (h *HeadAgent) Membership() *cluster.Head { return h.memb }

// Router exposes the AODV instance (for scenario assertions).
func (h *HeadAgent) Router() *aodv.Router { return h.router }

// Stats returns a snapshot of detection counters.
func (h *HeadAgent) Stats() HeadAgentStats { return h.stats }

// sealPacket signs control packets the head's router originates.
func (h *HeadAgent) sealPacket(p wire.Packet) ([]byte, error) {
	if _, ok := p.(*wire.RREP); ok {
		sec, err := pki.Seal(p, h.cred, h.env.Scheme)
		if err != nil {
			return nil, err
		}
		return sec.MarshalBinary()
	}
	return p.MarshalBinary()
}

func (h *HeadAgent) seal(p wire.Packet) []byte {
	sec, err := pki.Seal(p, h.cred, h.env.Scheme)
	if err != nil {
		panic("core: sealing head packet: " + err.Error())
	}
	b, err := sec.MarshalBinary()
	if err != nil {
		panic("core: marshalling head packet: " + err.Error())
	}
	return b
}

// handleFrame dispatches radio frames: membership and detection packets are
// the head's own; AODV traffic goes to the router.
func (h *HeadAgent) handleFrame(f radio.Frame) {
	switch f.Kind() {
	case wire.KindRREQ, wire.KindRREP, wire.KindRERR, wire.KindHello, wire.KindData:
		// Relay traffic dominates; skip the generic decode and let the
		// router's typed fast paths handle it. The sender still counts as
		// alive for membership purposes, exactly as before.
		h.memb.Touch(f.From)
		h.router.HandleFrame(f)
		return
	}
	pkt, err := wire.Decode(f.Payload)
	if err != nil {
		return
	}
	h.memb.Touch(f.From)

	var env *wire.Secure
	inner := pkt
	if sec, ok := pkt.(*wire.Secure); ok {
		env = sec
		inner, err = wire.Decode(sec.Inner)
		if err != nil {
			return
		}
	}

	switch p := inner.(type) {
	case *wire.JoinReq, *wire.Leave:
		h.memb.HandlePacket(inner, f.From)
	case *wire.DetectReq:
		h.handleDetectReqRadio(p, env, f.From)
	case *wire.RenewalReq:
		h.relayRenewal(env, f)
	default:
		// RREQ/RREP/RERR/Hello/Data: ordinary AODV relay work.
		h.router.HandleFrame(f)
	}
}

// afterVerification schedules fn once a verification server (the head
// itself, or a fog node) has spent AuthProcessing on the packet. With no
// configured cost, fn runs synchronously.
func (h *HeadAgent) afterVerification(fn func()) {
	if h.cfg.AuthProcessing <= 0 {
		fn()
		return
	}
	now := h.env.Sched.Now()
	best := 0
	for i, busy := range h.verifiers {
		if busy < h.verifiers[best] {
			best = i
		}
	}
	start := h.verifiers[best]
	if start < now {
		start = now
	}
	done := start + h.cfg.AuthProcessing
	h.verifiers[best] = done
	h.stats.AuthQueued++
	if wait := done - now; wait > h.stats.AuthMaxLatency {
		h.stats.AuthMaxLatency = wait
	}
	h.env.Sched.At(done, fn)
}

// handleDetectReqRadio authenticates and admits a member's d_req. The paper
// requires heads to authenticate reporters so forged reports cannot
// disconnect legitimate nodes; the verification itself occupies a
// verification server for AuthProcessing.
func (h *HeadAgent) handleDetectReqRadio(p *wire.DetectReq, env *wire.Secure, from wire.NodeID) {
	if env == nil {
		h.stats.AuthFailures++
		h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "unsigned d_req from %v ignored", from)
		return
	}
	h.afterVerification(func() {
		_, cert, err := h.verifier.Open(env, h.env.Sched.Now())
		if err != nil || cert.Node != p.Reporter {
			h.stats.AuthFailures++
			h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "d_req from %v failed authentication", from)
			return
		}
		h.admitDetectReq(p)
	})
}

// handleBackbone processes infrastructure traffic: forwarded cases, verdict
// relays, revocation notices and renewal responses.
func (h *HeadAgent) handleBackbone(from wire.NodeID, payload []byte) {
	pkt, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch p := pkt.(type) {
	case *wire.DetectReq:
		if !h.env.Dir.IsHead(from) {
			return
		}
		h.admitDetectReq(p)
	case *wire.DetectResp:
		// A verdict for one of my members, decided elsewhere.
		h.deliverVerdict(p, reporterRef{node: p.Reporter, cluster: h.cluster})
	case *wire.RevocationNotice:
		h.addRevoked(p.Revoked)
		ct, _ := h.env.Tally.Lookup(p.Revoked.Node)
		ct.addIsolation(1)
	case *wire.RenewalResp:
		if !h.pendingRenewals[p.Requester] {
			return
		}
		delete(h.pendingRenewals, p.Requester)
		h.ifc.Send(p.Requester, h.seal(p))
	}
}

// relayRenewal forwards a member's sealed renewal request to this cluster's
// TA verbatim, remembering who to answer.
func (h *HeadAgent) relayRenewal(env *wire.Secure, f radio.Frame) {
	if env == nil {
		h.stats.AuthFailures++
		return
	}
	h.afterVerification(func() {
		inner, cert, err := h.verifier.Open(env, h.env.Sched.Now())
		if err != nil {
			h.stats.AuthFailures++
			return
		}
		req, ok := inner.(*wire.RenewalReq)
		if !ok || cert.Node != req.Current {
			h.stats.AuthFailures++
			return
		}
		ta, ok := h.env.Dir.AuthorityOf(h.cluster)
		if !ok {
			h.env.Tracer.Logf(h.NodeID(), trace.CatCluster, "no authority serves cluster %d", h.cluster)
			return
		}
		h.pendingRenewals[req.Current] = true
		h.stats.RenewalsProxy++
		if err := h.ep.Send(ta, f.Payload); err != nil {
			h.env.Tracer.Logf(h.NodeID(), trace.CatCluster, "renewal relay failed: %v", err)
		}
	})
}

// admitDetectReq is the verification-table entry point for both local and
// forwarded d_reqs.
func (h *HeadAgent) admitDetectReq(p *wire.DetectReq) {
	if h.crashed {
		return // a deferred verification can land after the crash
	}
	h.stats.DReqReceived++
	now := h.env.Sched.Now()
	rep := reporterRef{node: p.Reporter, cluster: p.ReporterCluster, nonce: p.Nonce}

	if rc, ok := h.resolved[p.Suspect]; ok && p.Nonce != 0 && rc.nonces[p.Nonce] {
		// Same nonce as an already-answered report: the verdict was lost in
		// flight. Replay it instead of re-examining the suspect.
		h.stats.DReqDuplicates++
		h.stats.VerdictReplays++
		h.respondVerdict(&detectionCase{suspect: p.Suspect, reporter: []reporterRef{rep}}, rc.verdict, rc.teammate)
		return
	}
	if h.memb.IsBlacklisted(p.Suspect) {
		h.respond(&detectionCase{suspect: p.Suspect, reporter: []reporterRef{rep}}, wire.VerdictAlreadyKnown)
		return
	}
	if c, ok := h.cases[p.Suspect]; ok {
		// Redundant report for a suspect already under examination: record
		// the reporter, send no extra probes (the paper's congestion
		// optimisation).
		h.stats.DReqDuplicates++
		for i, r := range c.reporter {
			if r.node == rep.node {
				// A retransmission while the case runs; the reporter may
				// have re-registered elsewhere since, so refresh the
				// delivery route for its eventual verdict.
				c.reporter[i].cluster = rep.cluster
				return
			}
		}
		c.reporter = append(c.reporter, rep)
		return
	}

	c := &detectionCase{
		suspect:  p.Suspect,
		serial:   p.SuspectSerial,
		reporter: []reporterRef{rep},
		fakeDest: p.FakeDest,
		priorSeq: p.PriorSeq,
		forwards: p.Forwards,
	}

	if h.memb.IsMember(p.Suspect) {
		h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "examining suspect %v (reported by %v) at %v", p.Suspect, rep.node, now)
		h.cases[p.Suspect] = c
		h.stats.Examinations++
		h.beginExamination(c)
		return
	}
	// Not mine: hand the case to whoever should have it.
	h.routeCaseElsewhere(c, p)
}

// routeCaseElsewhere forwards a d_req toward the suspect's cluster, or
// declares the suspect unreachable.
func (h *HeadAgent) routeCaseElsewhere(c *detectionCase, p *wire.DetectReq) {
	if c.forwards >= h.cfg.MaxForwards {
		h.respond(c, wire.VerdictUnreachable)
		return
	}
	var target wire.NodeID
	switch {
	case p.SuspectCluster != 0 && p.SuspectCluster != h.cluster:
		if head, ok := h.env.Dir.HeadOf(p.SuspectCluster); ok {
			target = head
		}
	case h.memb.InHistory(p.Suspect):
		// The suspect recently left; chase it into the adjacent cluster in
		// its direction of travel.
		if m, ok := h.memb.HistoryRecord(p.Suspect); ok {
			next := h.cluster + 1
			if !m.East {
				next = h.cluster - 1
			}
			if head, ok := h.env.Dir.HeadOf(next); ok {
				target = head
			}
		}
	}
	if target == 0 {
		h.stats.Unreachable++
		h.respond(c, wire.VerdictUnreachable)
		return
	}
	fwd := *p
	fwd.SuspectCluster = 0 // the receiving head re-resolves
	fwd.Forwards = c.forwards + 1
	fwd.FakeDest = c.fakeDest
	fwd.PriorSeq = c.priorSeq
	b, err := fwd.MarshalBinary()
	if err != nil {
		panic("core: marshalling forwarded d_req: " + err.Error())
	}
	h.forwardCase(c, fwd.Suspect, target, b, 0)
}

// forwardCase hands the marshalled d_req to the target head, retrying failed
// backbone sends (crashed peer, severed link) with capped exponential
// backoff before giving up on the suspect as unreachable.
func (h *HeadAgent) forwardCase(c *detectionCase, suspect, target wire.NodeID, b []byte, attempt int) {
	if h.crashed {
		return
	}
	if err := h.ep.Send(target, b); err == nil {
		h.stats.DReqForwarded++
		h.env.Tally.Case(suspect).addForward()
		h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "d_req for %v forwarded to %v", suspect, target)
		return
	}
	if h.cfg.ForwardRetries < 0 || attempt >= h.cfg.ForwardRetries {
		h.stats.Unreachable++
		h.respond(c, wire.VerdictUnreachable)
		return
	}
	h.stats.ForwardRetransmits++
	backoff := h.cfg.ForwardTimeout << uint(attempt)
	if cap := 4 * h.cfg.ForwardTimeout; backoff > cap {
		backoff = cap
	}
	h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "hand-off of %v to %v failed; retry %d in %v", suspect, target, attempt+1, backoff)
	h.env.Sched.After(backoff, func() { h.forwardCase(c, suspect, target, b, attempt+1) })
}

// beginExamination starts (or resumes) probing a suspect that is registered
// in this cluster.
func (h *HeadAgent) beginExamination(c *detectionCase) {
	if c.fakeDest == 0 {
		// Fresh case: invent the nonexistent destination and the disposable
		// identity used to fool the attacker.
		c.fakeDest = h.randomIdentity()
	}
	if c.disposable == nil {
		disposable := h.randomIdentity()
		loc := mobility.Static{Pos: h.pos, H: h.env.Highway}
		c.disposable = h.env.AttachRadio(disposable, loc, func(f radio.Frame) { h.handleProbeReply(c, f) })
	}
	if c.priorSeq > 0 {
		c.stage = 2
		h.sendProbe(c, c.priorSeq+1, true)
		return
	}
	c.stage = 1
	h.sendProbe(c, 0, false)
}

// randomIdentity draws a pseudonym-shaped identity outside any authority's
// allocation range (authorities allocate below 1<<63).
func (h *HeadAgent) randomIdentity() wire.NodeID {
	return wire.NodeID(h.env.RNG.Uint64() | 1<<63)
}

// sendProbe transmits one bait RREQ to the suspect from the disposable
// identity. TTL 1 keeps the probe strictly point-to-point.
func (h *HeadAgent) sendProbe(c *detectionCase, demandSeq wire.SeqNum, wantNext bool) {
	req := &wire.RREQ{
		FloodID:   uint32(h.env.RNG.Uint64()),
		Origin:    c.disposable.NodeID(),
		OriginSeq: 1,
		Dest:      c.fakeDest,
		DestSeq:   demandSeq,
		TTL:       1,
		WantNext:  wantNext,
	}
	b, err := req.MarshalBinary()
	if err != nil {
		panic("core: marshalling probe: " + err.Error())
	}
	target := c.suspect
	if c.stage == 3 {
		target = c.teammate
	}
	c.disposable.Send(target, b)
	h.env.Tally.Case(c.suspect).addProbe()
	h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "probe stage %d -> %v (fake dest %v, demand seq %d)", c.stage, target, c.fakeDest, demandSeq)
	// Retried probes back off exponentially (capped at 4x) so a lossy channel
	// gets progressively longer reply windows.
	timeout := h.cfg.ProbeTimeout << uint(c.retries)
	if cap := 4 * h.cfg.ProbeTimeout; timeout > cap {
		timeout = cap
	}
	c.timer.Stop()
	c.timer = h.env.Sched.After(timeout, func() { h.probeTimeout(c) })
}

// handleProbeReply processes frames arriving at the disposable identity.
func (h *HeadAgent) handleProbeReply(c *detectionCase, f radio.Frame) {
	if h.cases[c.suspect] != c {
		return // case already resolved
	}
	pkt, err := wire.Decode(f.Payload)
	if err != nil {
		return
	}
	if sec, ok := pkt.(*wire.Secure); ok {
		inner, cert, err := h.verifier.Open(sec, h.env.Sched.Now())
		if err == nil && cert.Node == c.suspect {
			// An authenticated reply pins the exact certificate to revoke.
			c.serial = cert.Serial
			c.expiry = cert.Expiry
		}
		if err != nil {
			h.stats.AuthFailures++
		}
		pkt = inner
		if pkt == nil {
			return
		}
	}
	rep, ok := pkt.(*wire.RREP)
	if !ok || rep.Dest != c.fakeDest {
		return
	}
	expected := c.suspect
	if c.stage == 3 {
		expected = c.teammate
	}
	if rep.Issuer != expected || f.From != expected {
		// A relayed or third-party reply is not the suspect's own claim.
		return
	}
	if c.stage == 2 && rep.DestSeq <= c.priorSeq {
		// A re-delivered copy of the stage-1 reply (fault injection can
		// duplicate frames), not an answer to the higher-sequence demand —
		// a genuine stage-2 claim must exceed the demanded sequence.
		return
	}
	h.env.Tally.Case(c.suspect).addProbeReply()
	c.timer.Stop()

	switch c.stage {
	case 1:
		if h.cfg.SingleProbe {
			// Ablation: convict on the first forged reply alone. Cheaper,
			// but the next-hop inquiry never happens, so teammates escape.
			h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "single-probe conviction of %v (seq %d)", c.suspect, rep.DestSeq)
			h.concludeMalicious(c, false)
			return
		}
		// Claiming a route to a destination that does not exist is already
		// the black hole signature; the second probe proves the sequence-
		// number violation and asks after accomplices.
		c.priorSeq = rep.DestSeq
		c.stage = 2
		h.afterStageDelay(c, func() {
			if !h.ensureStillMember(c) {
				return
			}
			h.sendProbe(c, c.priorSeq+1, true)
		})
	case 2:
		h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "violation confirmed: %v answered demand %d with seq %d (next hop %v)",
			c.suspect, c.priorSeq+1, rep.DestSeq, rep.NextHop)
		if rep.NextHop != 0 && rep.NextHop != c.suspect {
			c.teammate = rep.NextHop
			c.stage = 3
			h.afterStageDelay(c, func() { h.sendProbe(c, 0, true) })
			return
		}
		h.concludeMalicious(c, false)
	case 3:
		// The teammate endorsed a route to the nonexistent destination:
		// cooperative attack confirmed.
		h.concludeMalicious(c, true)
	}
}

func (h *HeadAgent) afterStageDelay(c *detectionCase, fn func()) {
	if h.cfg.StageDelay <= 0 {
		fn()
		return
	}
	c.timer.Stop()
	c.timer = h.env.Sched.After(h.cfg.StageDelay, fn)
}

// ensureStillMember checks the suspect has not left the cluster mid-case;
// if it has, the case is handed to the adjacent head with its probe state.
func (h *HeadAgent) ensureStillMember(c *detectionCase) bool {
	if h.memb.IsMember(c.suspect) {
		return true
	}
	h.env.Tracer.Logf(h.NodeID(), trace.CatDetect, "suspect %v left mid-examination", c.suspect)
	h.closeCase(c)
	// Every waiting reporter travels with the case; the receiving head's
	// verification table re-merges them, so nobody's verdict is lost in
	// the hand-off.
	reporters := c.reporter
	if len(reporters) == 0 {
		reporters = []reporterRef{{}}
	}
	for i, rep := range reporters {
		dr := &wire.DetectReq{
			Reporter:        rep.node,
			ReporterCluster: rep.cluster,
			Suspect:         c.suspect,
			SuspectSerial:   c.serial,
			FakeDest:        c.fakeDest,
			PriorSeq:        c.priorSeq,
			Forwards:        c.forwards,
		}
		if i == 0 {
			h.routeCaseElsewhere(c, dr)
			continue
		}
		// Follow-up reporters ride separate forwards that the next head
		// deduplicates into the same case.
		single := &detectionCase{
			suspect:  c.suspect,
			serial:   c.serial,
			reporter: []reporterRef{rep},
			fakeDest: c.fakeDest,
			priorSeq: c.priorSeq,
			forwards: c.forwards,
		}
		h.routeCaseElsewhere(single, dr)
	}
	return false
}

// probeTimeout fires when a probe went unanswered.
func (h *HeadAgent) probeTimeout(c *detectionCase) {
	if h.cases[c.suspect] != c {
		return
	}
	switch c.stage {
	case 1:
		if !h.ensureStillMember(c) {
			return
		}
		if c.retries < h.cfg.ProbeRetries {
			c.retries++
			h.sendProbe(c, 0, false)
			return
		}
		// The suspect never claimed the fake route: it behaved correctly
		// under examination.
		h.stats.ClearedLegit++
		h.respond(c, wire.VerdictLegitimate)
	case 2:
		if !h.ensureStillMember(c) {
			return
		}
		// It already claimed a route to a nonexistent destination; silence
		// now does not undo that.
		h.concludeMalicious(c, false)
	case 3:
		// The teammate stayed silent: isolate the primary only.
		h.concludeMalicious(c, false)
	}
}

// concludeMalicious resolves the case, isolates the attacker(s), and
// reports to every waiting reporter.
func (h *HeadAgent) concludeMalicious(c *detectionCase, teammateConfirmed bool) {
	h.stats.Confirmed++
	teammate := wire.NodeID(0)
	if teammateConfirmed {
		teammate = c.teammate
		h.stats.Teammates++
	}
	h.env.Tally.Case(c.suspect).resolve(wire.VerdictMalicious, teammate, h.env.Sched.Now())
	h.isolate(c.suspect, c.serial, c.expiry, c.suspect)
	if teammateConfirmed {
		h.isolate(teammate, 0, 0, c.suspect)
	}
	h.respondVerdict(c, wire.VerdictMalicious, teammate)
	h.closeCase(c)
	delete(h.cases, c.suspect)
}

// respond resolves a case with a non-malicious verdict.
func (h *HeadAgent) respond(c *detectionCase, v wire.Verdict) {
	h.env.Tally.Case(c.suspect).resolve(v, 0, h.env.Sched.Now())
	h.respondVerdict(c, v, 0)
	h.closeCase(c)
	delete(h.cases, c.suspect)
}

// respondVerdict delivers the verdict to each reporter: directly over radio
// for local members, via the reporter's own head otherwise.
func (h *HeadAgent) respondVerdict(c *detectionCase, v wire.Verdict, teammate wire.NodeID) {
	// Remember which report nonces this verdict answers: if the verdict is
	// lost in flight, the reporter's retransmission (same nonce) is served
	// from this cache instead of a fresh examination.
	rc := h.resolved[c.suspect]
	if rc == nil {
		rc = &resolvedCase{nonces: make(map[uint64]bool)}
	}
	rc.verdict, rc.teammate = v, teammate
	for _, rep := range c.reporter {
		if rep.nonce != 0 {
			rc.nonces[rep.nonce] = true
		}
	}
	if len(rc.nonces) > 0 {
		h.resolved[c.suspect] = rc
	}
	for _, rep := range c.reporter {
		resp := &wire.DetectResp{Reporter: rep.node, Suspect: c.suspect, Verdict: v, Teammate: teammate}
		if rep.cluster == h.cluster || rep.cluster == 0 {
			h.deliverVerdict(resp, rep)
			continue
		}
		head, ok := h.env.Dir.HeadOf(rep.cluster)
		if !ok {
			continue
		}
		b, err := resp.MarshalBinary()
		if err != nil {
			panic("core: marshalling DetectResp: " + err.Error())
		}
		if err := h.ep.Send(head, b); err == nil {
			h.env.Tally.Case(c.suspect).addRespBackbone()
		}
	}
}

// deliverVerdict seals and radios a verdict to a reporter in this cluster.
func (h *HeadAgent) deliverVerdict(resp *wire.DetectResp, rep reporterRef) {
	h.ifc.Send(resp.Reporter, h.seal(resp))
	h.env.Tally.Case(resp.Suspect).addRespRadio()
}

// isolate blacklists the attacker locally, warns adjacent heads, and files
// the certificate revocation with the TA.
func (h *HeadAgent) isolate(attacker wire.NodeID, serial uint64, expiry time.Duration, caseKey wire.NodeID) {
	h.stats.Revocations++
	if expiry == 0 {
		expiry = h.env.Sched.Now() + time.Hour
	}
	rc := wire.RevokedCert{Node: attacker, CertSerial: serial, Expiry: expiry}
	ct := h.env.Tally.Case(caseKey)

	// Local blacklist + member broadcast.
	before := h.memb.Stats().BlacklistNotices
	h.addRevoked(rc)
	ct.addIsolation(int(h.memb.Stats().BlacklistNotices - before))

	// Adjacent heads ("notifies adjacent clusters").
	notice := &wire.RevocationNotice{Authority: 0, Revoked: rc}
	nb, err := notice.MarshalBinary()
	if err != nil {
		panic("core: marshalling RevocationNotice: " + err.Error())
	}
	for _, adj := range h.env.Dir.AdjacentHeads(h.cluster) {
		if err := h.ep.Send(adj, nb); err == nil {
			ct.addIsolation(1)
		}
	}

	// Certificate revocation through the TA.
	ta, ok := h.env.Dir.AuthorityOf(h.cluster)
	if !ok {
		h.env.Tracer.Logf(h.NodeID(), trace.CatIsolate, "no authority to revoke %v", attacker)
		return
	}
	req := &wire.RevocationReq{Head: h.NodeID(), Suspect: attacker, CertSerial: serial, Cluster: h.cluster}
	rb, err := req.MarshalBinary()
	if err != nil {
		panic("core: marshalling RevocationReq: " + err.Error())
	}
	if err := h.ep.Send(ta, rb); err == nil {
		ct.addIsolation(1)
	}
	h.env.Tracer.Logf(h.NodeID(), trace.CatIsolate, "isolated %v (serial %d)", attacker, serial)
}

// addRevoked blacklists a node in the membership plane and evicts it from
// the head's own forwarding tables.
func (h *HeadAgent) addRevoked(rc wire.RevokedCert) {
	h.memb.AddRevoked(rc)
	h.router.PurgeNode(rc.Node)
}

// closeCase releases the disposable identity and timers without resolving.
func (h *HeadAgent) closeCase(c *detectionCase) {
	c.timer.Stop()
	if c.disposable != nil {
		c.disposable.Detach()
		c.disposable = nil
	}
	if h.cases[c.suspect] == c {
		delete(h.cases, c.suspect)
	}
}
