package core

import (
	"testing"
	"time"

	"blackdp/internal/attack"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/wire"
)

func TestAlreadyBlacklistedSuspectAnsweredImmediately(t *testing.T) {
	w := newWorld(t, 30)
	reporter := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	// The head already knows this pseudonym is revoked.
	w.heads[1].Membership().AddRevoked(wire.RevokedCert{Node: 6666, CertSerial: 1, Expiry: time.Hour})

	var got *EstablishResult
	if err := reporter.ReportSuspect(6666, 1, 1, func(r EstablishResult) { got = &r }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(3 * time.Second)
	if got == nil {
		t.Fatal("no verdict")
	}
	if got.Verdict != wire.VerdictAlreadyKnown {
		t.Errorf("verdict = %v, want already-known", got.Verdict)
	}
	if got.Status != StatusDetected {
		t.Errorf("status = %v, want detected (isolation already in force)", got.Status)
	}
	// No probes were spent.
	ct, _ := w.env.Tally.Lookup(6666)
	if ct.ProbesSent != 0 {
		t.Errorf("ProbesSent = %d for an already-known attacker", ct.ProbesSent)
	}
}

func TestUnknownSuspectUnreachable(t *testing.T) {
	// A d_req naming a pseudonym registered nowhere ends as unreachable
	// (bounded by MaxForwards), never as a conviction.
	w := newWorld(t, 31)
	reporter := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	var got *EstablishResult
	if err := reporter.ReportSuspect(424242, 0, 0, func(r EstablishResult) { got = &r }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(5 * time.Second)
	if got == nil {
		t.Fatal("no verdict")
	}
	if got.Verdict != wire.VerdictUnreachable || got.Status != StatusUnresolved {
		t.Errorf("result = %v/%v, want unresolved/unreachable", got.Status, got.Verdict)
	}
	if w.ta.Stats().Revocations != 0 {
		t.Error("unknown suspect revoked")
	}
}

func TestForwardedDReqFromNonHeadIgnored(t *testing.T) {
	w := newWorld(t, 32)
	honest := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	// A rogue infrastructure endpoint (not a registered head) injects a
	// d_req over the backbone.
	rogue, err := w.env.Backbone.Attach(999999, 3, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	dr := &wire.DetectReq{Reporter: 1, ReporterCluster: 1, Suspect: honest.NodeID(), SuspectCluster: 1}
	b, err := dr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.Send(w.heads[1].NodeID(), b); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(3 * time.Second)
	if w.heads[1].Stats().Examinations != 0 {
		t.Error("backbone d_req from a non-head triggered an examination")
	}
}

func TestRogueRevocationRequestIgnored(t *testing.T) {
	w := newWorld(t, 33)
	honest := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	rogue, err := w.env.Backbone.Attach(999998, 3, func(wire.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	req := &wire.RevocationReq{Head: 999998, Suspect: honest.NodeID(), CertSerial: honest.Credential().Cert.Serial}
	b, err := req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.Send(w.ta.NodeID(), b); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(time.Second)
	if w.ta.Stats().Revocations != 0 {
		t.Error("TA honoured a revocation request from a non-head")
	}
	if w.ta.Authority().IsRevoked(honest.Credential().Cert.Serial) {
		t.Error("honest certificate revoked by a rogue request")
	}
}

func TestHonestVehicleRenewalRotatesPseudonym(t *testing.T) {
	w := newWorld(t, 34)
	v := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)
	old := v.NodeID()
	oldSerial := v.Credential().Cert.Serial

	if err := v.RenewCertificate(); err != nil {
		t.Fatal(err)
	}
	// A second request while one is pending is refused.
	if err := v.RenewCertificate(); err == nil {
		t.Error("concurrent renewal accepted")
	}
	w.sched.RunFor(3 * time.Second)

	if v.NodeID() == old {
		t.Fatal("pseudonym did not rotate")
	}
	if v.Credential().Cert.Serial == oldSerial {
		t.Error("serial did not advance")
	}
	if v.Stats().RenewalsApplied != 1 {
		t.Errorf("RenewalsApplied = %d", v.Stats().RenewalsApplied)
	}
	// The vehicle re-registered under the new identity.
	w.sched.RunFor(2 * time.Second)
	if !w.heads[1].Membership().IsMember(v.NodeID()) {
		t.Error("renewed vehicle not re-registered with its head")
	}
	// And it can still run verified establishments.
	dest := w.addVehicle(1500, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)
	res := w.establish(v, dest.NodeID(), 15*time.Second)
	if res.Status != StatusVerified {
		t.Errorf("post-renewal establishment = %v", res.Status)
	}
}

func TestEstablishRouteRejectsDuplicates(t *testing.T) {
	w := newWorld(t, 35)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	dest := w.addVehicle(900, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)
	if err := src.EstablishRoute(dest.NodeID(), func(EstablishResult) {}); err != nil {
		t.Fatal(err)
	}
	if err := src.EstablishRoute(dest.NodeID(), func(EstablishResult) {}); err == nil {
		t.Error("concurrent establishment to the same destination accepted")
	}
	if err := src.EstablishRoute(dest.NodeID(), nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestUnsignedForgedRepliesAreDiscarded(t *testing.T) {
	// An attacker too lazy to sign its forgeries cannot even get probed:
	// unsigned replies fail source authentication outright.
	w := newWorld(t, 36)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})

	// Build the attacker without a Seal hook: bare forged replies.
	v := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	bh := attack.NewBlackhole(attack.DefaultProfile(), attack.Env{
		Sched:   w.sched,
		RNG:     w.env.RNG.Split("lazy-attacker"),
		Send:    v.Interface().Send,
		Self:    v.Interface().NodeID,
		Cluster: v.Client().Cluster,
		Inner:   v.HandleFrame,
	})
	v.Interface().SetReceiver(bh.HandleFrame)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusVerified {
		t.Fatalf("status = %v, want verified via the honest chain", res.Status)
	}
	if res.Via == v.NodeID() {
		t.Error("route accepted through the unsigned forger")
	}
	if src.Stats().AuthViolations == 0 {
		t.Error("unsigned replies not counted as authentication violations")
	}
	if bh.Stats().RepliesForged == 0 {
		t.Error("attacker never forged; scenario broken")
	}
}

func TestImpersonatedIssuerDiscarded(t *testing.T) {
	// A forged reply claiming another node's identity but sealed with the
	// attacker's own certificate must fail the cert/issuer binding check.
	w := newWorld(t, 37)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	victim := w.addVehicle(400, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})

	v := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	bh := attack.NewBlackhole(attack.DefaultProfile(), attack.Env{
		Sched:   w.sched,
		RNG:     w.env.RNG.Split("impersonator"),
		Send:    v.Interface().Send,
		Self:    victim.Interface().NodeID, // frames itself as the victim
		Cluster: v.Client().Cluster,
		Seal: func(p wire.Packet) ([]byte, error) {
			sec, err := pki.Seal(p, v.Credential(), w.env.Scheme) // but signs as itself
			if err != nil {
				return nil, err
			}
			return sec.MarshalBinary()
		},
		Inner: v.HandleFrame,
	})
	v.Interface().SetReceiver(bh.HandleFrame)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Suspect == victim.NodeID() && res.Status == StatusDetected {
		t.Fatal("FRAMED: the victim was convicted for the attacker's forgery")
	}
	if w.heads[1].Membership().IsBlacklisted(victim.NodeID()) {
		t.Error("victim blacklisted")
	}
}

func TestHandoffCarriesAllReporters(t *testing.T) {
	// Two reporters flag a suspect that crosses into the next cluster
	// mid-examination; the case hand-off must deliver a verdict to both.
	w := newWorldWithHeads(t, 40, HeadConfig{StageDelay: 2500 * time.Millisecond})
	r1 := w.addVehicle(200, 14, mobility.Eastbound, VehicleConfig{})
	r2 := w.addVehicle(300, 14, mobility.Eastbound, VehicleConfig{})
	// Suspect 50 m short of the cluster-1 boundary at 25 m/s: it answers
	// the first probe in cluster 1 and is gone before the second.
	attacker, _ := w.addBlackhole(950, 25, mobility.Eastbound, attack.DefaultProfile())
	w.sched.RunFor(time.Second)

	var v1, v2 *EstablishResult
	serial := attacker.Credential().Cert.Serial
	if err := r1.ReportSuspect(attacker.NodeID(), 1, serial, func(r EstablishResult) { v1 = &r }); err != nil {
		t.Fatal(err)
	}
	if err := r2.ReportSuspect(attacker.NodeID(), 1, serial, func(r EstablishResult) { v2 = &r }); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(15 * time.Second)
	if v1 == nil || v2 == nil {
		t.Fatalf("verdicts delivered: r1=%v r2=%v; the hand-off dropped a reporter", v1 != nil, v2 != nil)
	}
	if v1.Status != StatusDetected || v2.Status != StatusDetected {
		t.Errorf("statuses = %v/%v, want detected for both", v1.Status, v2.Status)
	}
	// The examination itself was handed over (one forward at least) and
	// run once.
	ct, _ := w.env.Tally.Lookup(attacker.NodeID())
	if ct.DReqForwarded == 0 {
		t.Error("no hand-off happened; the scenario timing is off")
	}
	if ct.ProbesSent > 3 {
		t.Errorf("ProbesSent = %d; the second reporter must not trigger extra probes", ct.ProbesSent)
	}
}

func TestGrayHoleStillConvicted(t *testing.T) {
	// A selective dropper that forges routes is caught exactly like the
	// pure black hole: BlackDP's bait probe keys on the forgery, not on
	// how much traffic the node lets through.
	p := attack.DefaultProfile()
	p.DropProb = 0.3
	w := newWorld(t, 39)
	src := w.addVehicle(300, 15, mobility.Eastbound, VehicleConfig{})
	w.legitChain(1200, 1900)
	dest := w.addVehicle(2500, 15, mobility.Eastbound, VehicleConfig{})
	attacker, _ := w.addBlackhole(800, 15, mobility.Eastbound, p)
	w.sched.RunFor(time.Second)

	res := w.establish(src, dest.NodeID(), 30*time.Second)
	if res.Status != StatusDetected || res.Suspect != attacker.NodeID() {
		t.Fatalf("gray hole not detected: %+v", res)
	}
}

func TestDetectRespForWrongReporterIgnored(t *testing.T) {
	w := newWorld(t, 38)
	v := w.addVehicle(800, 15, mobility.Eastbound, VehicleConfig{})
	w.sched.RunFor(time.Second)

	// A verdict addressed to someone else, even properly sealed by a head,
	// must not resolve anything here.
	resp := &wire.DetectResp{Reporter: 12345, Suspect: 66, Verdict: wire.VerdictMalicious}
	sec, err := pki.Seal(resp, w.heads[1].Credential(), w.env.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	before := v.Stats().VerdictsGot
	v.HandleFrame(radio.Frame{From: w.heads[1].NodeID(), To: 12345, Payload: b})
	if v.Stats().VerdictsGot != before {
		t.Error("foreign verdict consumed")
	}
}
