package core

import (
	"time"

	"blackdp/internal/wire"
)

// CaseTally counts the packets one detection case consumed, reproducing the
// accounting behind the paper's Figure 5 ("number of detection packets
// needed by BlackDP through RSU (CH)"). Detection packets are everything
// from the d_req to the verdict delivery; isolation traffic (revocation and
// blacklist fan-out) is tallied separately because the paper's figure counts
// only detection.
type CaseTally struct {
	Suspect wire.NodeID

	DReqSent      int // reporter -> its cluster head (radio)
	DReqForwarded int // head -> head hand-offs (backbone)
	ProbesSent    int // bait RREQs from the disposable identity (incl. retries, teammate)
	ProbeReplies  int // suspect/teammate replies to bait probes
	RespBackbone  int // verdict relayed between heads (backbone)
	RespRadio     int // verdict delivered to a reporter (radio)

	IsolationPackets int // revocation requests/notices and blacklist broadcasts

	Verdict    wire.Verdict
	Teammate   wire.NodeID
	ReportedAt time.Duration
	ResolvedAt time.Duration
}

// DetectionPackets returns the Figure 5 quantity for this case.
func (c *CaseTally) DetectionPackets() int {
	return c.DReqSent + c.DReqForwarded + c.ProbesSent + c.ProbeReplies + c.RespBackbone + c.RespRadio
}

// Tally aggregates detection accounting across a run, keyed by suspect. All
// methods are safe on a nil receiver (accounting disabled).
type Tally struct {
	cases map[wire.NodeID]*CaseTally
	order []wire.NodeID
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{cases: make(map[wire.NodeID]*CaseTally)}
}

// Case returns the per-suspect tally, creating it on first use. It returns
// nil on a nil tally.
func (t *Tally) Case(suspect wire.NodeID) *CaseTally {
	if t == nil {
		return nil
	}
	c, ok := t.cases[suspect]
	if !ok {
		c = &CaseTally{Suspect: suspect}
		t.cases[suspect] = c
		t.order = append(t.order, suspect)
	}
	return c
}

// Lookup returns the per-suspect tally without creating it.
func (t *Tally) Lookup(suspect wire.NodeID) (*CaseTally, bool) {
	if t == nil {
		return nil, false
	}
	c, ok := t.cases[suspect]
	return c, ok
}

// Cases returns every case in first-report order.
func (t *Tally) Cases() []*CaseTally {
	if t == nil {
		return nil
	}
	out := make([]*CaseTally, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.cases[id])
	}
	return out
}

// TotalDetectionPackets sums DetectionPackets over all cases.
func (t *Tally) TotalDetectionPackets() int {
	n := 0
	for _, c := range t.Cases() {
		n += c.DetectionPackets()
	}
	return n
}

// Merge links a teammate's case into the primary suspect's tally: teammate
// probes are part of the cooperative detection (the paper's "additional two
// packets").
func (c *CaseTally) addProbe() {
	if c != nil {
		c.ProbesSent++
	}
}

func (c *CaseTally) addProbeReply() {
	if c != nil {
		c.ProbeReplies++
	}
}

func (c *CaseTally) addDReq(at time.Duration) {
	if c != nil {
		c.DReqSent++
		if c.ReportedAt == 0 {
			c.ReportedAt = at
		}
	}
}

func (c *CaseTally) addForward() {
	if c != nil {
		c.DReqForwarded++
	}
}

func (c *CaseTally) addRespBackbone() {
	if c != nil {
		c.RespBackbone++
	}
}

func (c *CaseTally) addRespRadio() {
	if c != nil {
		c.RespRadio++
	}
}

func (c *CaseTally) addIsolation(n int) {
	if c != nil {
		c.IsolationPackets += n
	}
}

func (c *CaseTally) resolve(v wire.Verdict, teammate wire.NodeID, at time.Duration) {
	if c == nil {
		return
	}
	if c.Verdict == wire.VerdictUnknown {
		c.Verdict = v
		c.Teammate = teammate
		c.ResolvedAt = at
		return
	}
	// Under injected faults a case can resolve twice: an early Unreachable
	// (forwarding failed) followed by a genuine conviction once the reporter
	// failed over to a live head. The conviction wins — the attacker WAS
	// detected, just late.
	if v == wire.VerdictMalicious && c.Verdict != wire.VerdictMalicious && c.Verdict != wire.VerdictAlreadyKnown {
		c.Verdict = v
		c.Teammate = teammate
		c.ResolvedAt = at
	}
}
