// Package core implements BlackDP, the paper's contribution: source and
// destination verification at legitimate vehicles, detection requests
// (d_req) to trusted Road Side Units, suspicious-node examination by bait
// probing under a disposable identity, cooperative-attacker exposure, and
// isolation via certificate revocation and blacklist dissemination.
//
// Three agents cooperate:
//
//   - VehicleAgent: a legitimate vehicle. It runs AODV plus the BlackDP
//     verification layer — it authenticates route replies, probes claimed
//     routes end to end with signed Hello packets, and files a d_req with
//     its cluster head when a route issuer behaves suspiciously.
//   - HeadAgent: an RSU cluster head. It manages cluster membership,
//     relays AODV traffic, examines reported suspects with fake route
//     requests from a disposable identity, confirms the AODV sequence-
//     number violation, chases named teammates, and isolates attackers.
//   - AuthorityAgent: a Trusted Authority node on the wired backbone. It
//     issues and renews pseudonymous certificates, processes revocation
//     requests, pauses renewals for revoked identities, and fans out
//     revocation notices to peer authorities and cluster heads.
package core

import (
	"blackdp/internal/cluster"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// Env bundles the simulation-wide facilities every agent needs. One Env is
// shared by all agents of a run.
type Env struct {
	Sched    sim.Runtime
	RNG      *sim.RNG
	Trust    *pki.TrustStore
	Scheme   pki.Scheme
	Dir      *cluster.Directory
	Highway  mobility.Topology // road layout; a *mobility.Highway or any mesh
	Medium   *radio.Medium
	Backbone *radio.Backbone
	Tracer   *trace.Recorder // nil disables tracing
	Tally    *Tally          // nil disables detection-packet accounting

	// Port is the radio shard context this agent's interfaces attach to.
	// nil in serial runs, where Medium.Attach uses the implicit serial
	// context; sharded world builds set it per agent alongside Sched.
	Port *radio.Shard

	// NoVerifyCache disables the per-agent verification cache so every
	// envelope pays the full Open cost — the reference path the crypto
	// differential wall compares against.
	NoVerifyCache bool
}

func (e *Env) check() {
	if e.Sched == nil || e.RNG == nil || e.Trust == nil || e.Scheme == nil ||
		e.Dir == nil || e.Highway == nil || e.Medium == nil || e.Backbone == nil {
		panic("core: Env is missing required facilities")
	}
}

// NewVerifier builds the agent's verification front end: per-agent cached
// verification over the Env's scheme ("verify once per node"), or the
// uncached reference path when NoVerifyCache is set. Each agent owns its
// Verifier, so sharded runs share no verification state across shards.
func (e *Env) NewVerifier() *pki.Verifier {
	return pki.NewVerifier(e.Trust, e.Scheme, pki.VerifierOptions{Disabled: e.NoVerifyCache})
}

// AttachRadio attaches a radio interface on the agent's home shard: the
// serial context when Port is nil, the agent's shard otherwise. All agent
// code attaches through this so one Env field switch moves an agent between
// execution modes.
func (e *Env) AttachRadio(id wire.NodeID, loc mobility.Locator, recv radio.Receiver) *radio.Interface {
	if e.Port != nil {
		return e.Medium.AttachOn(e.Port, id, loc, recv)
	}
	return e.Medium.Attach(id, loc, recv)
}
