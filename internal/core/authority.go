package core

import (
	"errors"
	"fmt"
	"time"

	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// AuthorityAgent is one Trusted Authority node: the pki.Authority state
// machine attached to the wired backbone, processing revocation requests
// from cluster heads, exchanging revocation notices with peer authorities,
// and serving certificate renewals relayed by heads.
type AuthorityAgent struct {
	env  Env
	auth *pki.Authority
	cred *pki.Credential
	ep   *radio.BackboneEndpoint

	served       []wire.ClusterID // clusters whose heads report here
	peers        []wire.NodeID    // other TA nodes on the backbone
	certValidity time.Duration
	verifier     *pki.Verifier // verification cache for relayed envelopes

	stats AuthorityStats
}

// AuthorityStats counts TA activity.
type AuthorityStats struct {
	Revocations     uint64
	PeerNotices     uint64 // notices received from peers
	NoticesSent     uint64
	RenewalsGranted uint64
	RenewalsDenied  uint64
}

// taCertValidity is the lifetime of infrastructure certificates; effectively
// forever at simulation scale.
const taCertValidity = 1000 * time.Hour

// NewAuthorityAgent creates a TA responsible for the given clusters,
// attached to the backbone at chain position hop. Vehicle certificates it
// issues are valid for certValidity.
func NewAuthorityAgent(env Env, id wire.AuthorityID, hop int, served []wire.ClusterID, certValidity time.Duration) (*AuthorityAgent, error) {
	env.check()
	if certValidity <= 0 {
		return nil, fmt.Errorf("core: non-positive certificate validity %v", certValidity)
	}
	// Key generation consumes a variable number of random bytes (rejection
	// sampling inside crypto/ecdsa), so every generation gets its own
	// derived stream — otherwise that variability would shift later draws
	// on the shared stream and break run determinism.
	auth, err := pki.NewAuthority(id, env.Trust, env.Sched.Now, env.Scheme,
		env.RNG.Split(fmt.Sprintf("ta-key-%d", id)).Reader())
	if err != nil {
		return nil, err
	}
	cred, err := auth.Issue(fmt.Sprintf("ta:%d", id), taCertValidity,
		env.RNG.Split(fmt.Sprintf("ta-cred-%d", id)).Reader())
	if err != nil {
		return nil, err
	}
	a := &AuthorityAgent{
		env:          env,
		auth:         auth,
		cred:         cred,
		served:       append([]wire.ClusterID(nil), served...),
		certValidity: certValidity,
		verifier:     env.NewVerifier(),
	}
	ep, err := env.Backbone.Attach(cred.NodeID(), hop, a.handleBackbone)
	if err != nil {
		return nil, err
	}
	a.ep = ep
	for _, c := range served {
		if err := env.Dir.AddAuthority(c, cred.NodeID(), id); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// NodeID returns the TA's backbone identity.
func (a *AuthorityAgent) NodeID() wire.NodeID { return a.cred.NodeID() }

// AuthorityID returns the TA's authority identity.
func (a *AuthorityAgent) AuthorityID() wire.AuthorityID { return a.auth.ID() }

// Authority exposes the underlying PKI state machine (for provisioning).
func (a *AuthorityAgent) Authority() *pki.Authority { return a.auth }

// Stats returns a snapshot of TA counters.
func (a *AuthorityAgent) Stats() AuthorityStats { return a.stats }

// SetPeers wires the other TA nodes, once all authorities exist.
func (a *AuthorityAgent) SetPeers(peers []wire.NodeID) {
	a.peers = a.peers[:0]
	for _, p := range peers {
		if p != a.cred.NodeID() {
			a.peers = append(a.peers, p)
		}
	}
}

// IssueVehicleCredential provisions a vehicle identity before the run (the
// paper's TA distributes credentials out of band).
func (a *AuthorityAgent) IssueVehicleCredential(lineage string) (*pki.Credential, error) {
	return a.auth.Issue(lineage, a.certValidity, a.env.RNG.Split("issue-"+lineage).Reader())
}

// IssueHeadCredential provisions an RSU identity.
func (a *AuthorityAgent) IssueHeadCredential(cluster wire.ClusterID) (*pki.Credential, error) {
	lineage := fmt.Sprintf("rsu:%d", cluster)
	return a.auth.Issue(lineage, taCertValidity, a.env.RNG.Split("issue-"+lineage).Reader())
}

func (a *AuthorityAgent) handleBackbone(from wire.NodeID, payload []byte) {
	pkt, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch p := pkt.(type) {
	case *wire.RevocationReq:
		a.handleRevocationReq(p, from)
	case *wire.RevocationNotice:
		a.handlePeerNotice(p)
	case *wire.Secure:
		// Heads relay vehicles' sealed renewal requests verbatim so the TA
		// can authenticate the presenter's certificate itself.
		inner, cert, err := a.verifier.Open(p, a.env.Sched.Now())
		if err != nil {
			a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "sealed request failed verification: %v", err)
			return
		}
		if req, ok := inner.(*wire.RenewalReq); ok {
			a.handleRenewal(req, cert, from)
		}
	default:
		// Heads exchange detection traffic among themselves; not ours.
	}
}

// handleRevocationReq processes a cluster head's report of a confirmed
// attacker: revoke, pause renewals, and notify peer TAs plus every head so
// the revoked certificate is blacklisted network-wide.
func (a *AuthorityAgent) handleRevocationReq(p *wire.RevocationReq, from wire.NodeID) {
	if !a.env.Dir.IsHead(from) {
		a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "revocation request from non-head %v ignored", from)
		return
	}
	rc := a.auth.Revoke(p.Suspect, p.CertSerial)
	if rc.Expiry <= a.env.Sched.Now() {
		// Revoke stamps "now" when it cannot know the certificate's natural
		// expiry; keep the record alive for the vehicle-cert validity.
		rc.Expiry = a.env.Sched.Now() + a.certValidity
	}
	a.stats.Revocations++
	a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "revoked %v (serial %d) on report from %v", p.Suspect, p.CertSerial, from)

	notice := &wire.RevocationNotice{Authority: a.auth.ID(), Revoked: rc}
	b, err := notice.MarshalBinary()
	if err != nil {
		panic("core: marshalling RevocationNotice: " + err.Error())
	}
	ct, _ := a.env.Tally.Lookup(p.Suspect)
	for _, peer := range a.peers {
		if err := a.ep.Send(peer, b); err == nil {
			a.stats.NoticesSent++
			ct.addIsolation(1)
		}
	}
	for c := wire.ClusterID(1); int(c) <= a.env.Highway.Clusters(); c++ {
		head, ok := a.env.Dir.HeadOf(c)
		if !ok || head == from {
			continue
		}
		if err := a.ep.Send(head, b); err == nil {
			a.stats.NoticesSent++
			ct.addIsolation(1)
		}
	}
}

// handlePeerNotice ingests a peer TA's revocation, pausing renewals here and
// informing the heads this TA serves.
func (a *AuthorityAgent) handlePeerNotice(p *wire.RevocationNotice) {
	a.auth.RecordPeerRevocation(p.Revoked)
	a.stats.PeerNotices++
	a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "renewals paused for %v per notice from authority %d", p.Revoked.Node, p.Authority)
}

// handleRenewal serves a pseudonym renewal relayed by a head. The head that
// relayed it receives the response and forwards it to the vehicle.
func (a *AuthorityAgent) handleRenewal(p *wire.RenewalReq, presented *wire.Certificate, from wire.NodeID) {
	resp := &wire.RenewalResp{Requester: p.Current}
	cert, err := a.renewCert(p, presented)
	if err != nil {
		resp.Denied = true
		a.stats.RenewalsDenied++
		a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "renewal denied for %v: %v", p.Current, err)
	} else {
		resp.Cert = cert
		a.stats.RenewalsGranted++
		a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "renewed %v -> %v", p.Current, cert.Node)
	}
	b, err := resp.MarshalBinary()
	if err != nil {
		panic("core: marshalling RenewalResp: " + err.Error())
	}
	if err := a.ep.Send(from, b); err != nil {
		a.env.Tracer.Logf(a.cred.NodeID(), trace.CatAuthority, "renewal response undeliverable: %v", err)
	}
}

func (a *AuthorityAgent) renewCert(p *wire.RenewalReq, presented *wire.Certificate) (wire.Certificate, error) {
	if len(p.NewPubKey) == 0 {
		return wire.Certificate{}, errors.New("core: renewal without a public key")
	}
	if presented == nil || presented.Node != p.Current || presented.Serial != p.CertSerial {
		return wire.Certificate{}, errors.New("core: renewal identity does not match the sealing certificate")
	}
	return a.auth.RenewFor(*presented, p.NewPubKey, a.certValidity)
}
