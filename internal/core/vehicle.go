package core

import (
	"fmt"
	"sort"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/cluster"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// VehicleConfig tunes a vehicle's BlackDP layer. Zero fields take defaults.
type VehicleConfig struct {
	// Verify enables BlackDP verification; false runs plain AODV (the
	// undefended baseline).
	Verify bool
	// ProbeTimeout is how long the vehicle waits for the destination's
	// answer to a route-verification Hello before suspecting the issuer.
	ProbeTimeout time.Duration
	// DetectTimeout is how long the vehicle waits for its cluster head's
	// verdict after filing a d_req.
	DetectTimeout time.Duration
	// DReqRetries is how many times an unanswered d_req is retransmitted
	// (same nonce, exponential backoff) before the vehicle gives up on its
	// head and fails over to an adjacent one. 0 means the default (1);
	// -1 disables both retransmission and failover — the ablation baseline,
	// matching the paper's fire-and-forget report.
	DReqRetries int
	// DReqTimeout is the initial retransmission timeout for an unanswered
	// d_req; each retry doubles it, capped at 4x. It must exceed the head's
	// worst-case fault-free verdict latency or healthy runs retransmit
	// spuriously.
	DReqTimeout time.Duration
	// ReportWithoutProbe is the DESIGN.md ablation of the paper's
	// verification step: report any intermediate route issuer immediately,
	// without the end-to-end Hello probe and the second discovery round.
	// Honest intermediates with cached routes then get reported too — the
	// cluster head still clears them (no false positives), but every such
	// report burns a full examination. Off by default.
	ReportWithoutProbe bool
	// Router configures the AODV instance.
	Router aodv.Config
}

func (c VehicleConfig) withDefaults() VehicleConfig {
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 1500 * time.Millisecond
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = 10 * time.Second
	}
	if c.DReqRetries == 0 {
		c.DReqRetries = 1
	}
	if c.DReqTimeout == 0 {
		// Above the ~5s worst-case fault-free verdict latency (a cooperative
		// case whose suspect moved to a remote cluster: two hand-offs, three
		// probe stages), so healthy runs never retransmit.
		c.DReqTimeout = 8 * time.Second
	}
	return c
}

// EstablishStatus is the outcome class of a route establishment.
type EstablishStatus int

// Establishment outcomes.
const (
	// StatusVerified: an authenticated route to the destination is
	// installed (directly from the destination, or probe-confirmed through
	// an honest intermediate).
	StatusVerified EstablishStatus = iota + 1
	// StatusNoRoute: discovery produced no usable authenticated candidate.
	StatusNoRoute
	// StatusPrevented: a suspicious issuer stopped answering once probed;
	// the attack was blocked but the attacker could not be convicted (the
	// paper's "can only prevent the black hole establishment").
	StatusPrevented
	// StatusDetected: the cluster head confirmed the issuer malicious and
	// isolated it.
	StatusDetected
	// StatusCleared: the cluster head found the reported issuer legitimate.
	StatusCleared
	// StatusUnresolved: a report was filed but no conviction resulted (the
	// suspect was unreachable, or the verdict timed out) — the paper's
	// false-negative bucket.
	StatusUnresolved
	// StatusUnverified: plain-AODV mode installed the freshest route with
	// no checks at all.
	StatusUnverified
)

func (s EstablishStatus) String() string {
	switch s {
	case StatusVerified:
		return "verified"
	case StatusNoRoute:
		return "no-route"
	case StatusPrevented:
		return "prevented"
	case StatusDetected:
		return "detected"
	case StatusCleared:
		return "cleared"
	case StatusUnresolved:
		return "unresolved"
	case StatusUnverified:
		return "unverified"
	default:
		return fmt.Sprintf("EstablishStatus(%d)", int(s))
	}
}

// EstablishResult reports how a route establishment ended.
type EstablishResult struct {
	Status   EstablishStatus
	Dest     wire.NodeID
	Via      wire.NodeID // issuer of the accepted route reply, if any
	Suspect  wire.NodeID // issuer reported to the head, if any
	Verdict  wire.Verdict
	Teammate wire.NodeID
	Rounds   int // discovery rounds used
}

// VehicleStats counts verification-layer activity.
type VehicleStats struct {
	Discoveries     uint64
	AuthViolations  uint64 // replies discarded for failed authentication
	BlacklistHits   uint64 // replies discarded because the issuer is blacklisted
	ProbesSent      uint64
	ProbeConfirmed  uint64
	AnonymityFakes  uint64 // forged probe replies recognised
	ReportsFiled    uint64
	VerdictsGot     uint64
	RenewalsApplied uint64
	DataSent        uint64
	DataReceived    uint64
	DReqRetransmits uint64 // d_req resends after verdict timeouts
	Failovers       uint64 // head-failover attempts after exhausted retries
}

// verification is the in-flight state of one EstablishRoute call.
type verification struct {
	dest     wire.NodeID
	done     func(EstablishResult)
	round    int
	excluded map[wire.NodeID]bool
	suspect  *aodv.Candidate
	nonce    uint64
	timer    sim.Timer
	minSeq   wire.SeqNum

	// d_req retransmission state, live once fileReport runs.
	dreq       *wire.DetectReq // the filed report; Nonce stays fixed across resends
	attempts   int             // sends so far in the current head registration
	retryTimer sim.Timer
	failedOver bool // already rejoined once over this report
}

// VehicleAgent is one legitimate vehicle: mobility, radio, AODV, cluster
// membership, and the BlackDP verification layer.
type VehicleAgent struct {
	env  Env
	cfg  VehicleConfig
	cred *pki.Credential

	mobile *mobility.Mobile
	ifc    *radio.Interface
	router *aodv.Router
	client *cluster.Client

	verifier    *pki.Verifier  // per-vehicle verification cache
	openScratch []*wire.Secure // batch-verify staging, reused per discovery

	verifications map[wire.NodeID]*verification // by destination
	reports       map[wire.NodeID]*verification // by suspect
	pendingRenew  *pki.Credential               // key waiting for its certificate
	onRenewed     func(old, new wire.NodeID)
	stats         VehicleStats
}

// NewVehicleAgent creates a vehicle with the given credential and
// trajectory. The returned agent still needs Start.
func NewVehicleAgent(env Env, cfg VehicleConfig, cred *pki.Credential, mobile *mobility.Mobile) (*VehicleAgent, error) {
	env.check()
	if cred == nil || mobile == nil {
		return nil, fmt.Errorf("core: vehicle requires a credential and a trajectory")
	}
	v := &VehicleAgent{
		env:           env,
		cfg:           cfg.withDefaults(),
		cred:          cred,
		mobile:        mobile,
		verifier:      env.NewVerifier(),
		verifications: make(map[wire.NodeID]*verification),
		reports:       make(map[wire.NodeID]*verification),
	}
	v.ifc = env.AttachRadio(cred.NodeID(), mobile, v.HandleFrame)
	v.router = aodv.New(v.cfg.Router, env.Sched, env.RNG.Split("router-"+cred.NodeID().String()), v.ifc,
		v.sealPacket, aodv.Callbacks{
			HelloProbe: v.handleProbe,
			Cluster:    func() wire.ClusterID { return v.client.Cluster() },
			AcceptReply: func(rep *wire.RREP, from wire.NodeID) bool {
				return !v.client.IsBlacklisted(rep.Issuer) && !v.client.IsBlacklisted(from)
			},
		})
	v.client = cluster.NewClient(env.Sched, env.Highway, mobile, env.Medium.Range(),
		func(to wire.NodeID, payload []byte) { v.ifc.Send(to, payload) }, v.ifc.NodeID,
		cluster.ClientCallbacks{
			Joined: func(wire.ClusterID, wire.NodeID) { v.refileReports() },
			BlacklistUpdated: func(added []wire.RevokedCert) {
				// Blacklisted nodes must carry no more of our traffic.
				for _, rc := range added {
					v.router.PurgeNode(rc.Node)
				}
			},
		})
	return v, nil
}

// Start begins AODV and cluster registration.
func (v *VehicleAgent) Start() {
	v.router.Start()
	v.client.Start()
}

// NodeID returns the vehicle's current pseudonym.
func (v *VehicleAgent) NodeID() wire.NodeID { return v.ifc.NodeID() }

// Credential returns the current credential.
func (v *VehicleAgent) Credential() *pki.Credential { return v.cred }

// Mobile returns the trajectory.
func (v *VehicleAgent) Mobile() *mobility.Mobile { return v.mobile }

// Router exposes the AODV instance.
func (v *VehicleAgent) Router() *aodv.Router { return v.router }

// Client exposes the membership client.
func (v *VehicleAgent) Client() *cluster.Client { return v.client }

// Interface exposes the radio endpoint (the attack layer rewires its
// receive path).
func (v *VehicleAgent) Interface() *radio.Interface { return v.ifc }

// Stats returns a snapshot of verification counters.
func (v *VehicleAgent) Stats() VehicleStats { return v.stats }

// OnRenewed registers a hook invoked after a pseudonym change.
func (v *VehicleAgent) OnRenewed(fn func(old, new wire.NodeID)) { v.onRenewed = fn }

// sealPacket signs route replies this vehicle originates, per the paper's
// secure-packet requirement for destinations and intermediates.
func (v *VehicleAgent) sealPacket(p wire.Packet) ([]byte, error) {
	if _, ok := p.(*wire.RREP); ok {
		sec, err := pki.Seal(p, v.cred, v.env.Scheme)
		if err != nil {
			return nil, err
		}
		return sec.MarshalBinary()
	}
	return p.MarshalBinary()
}

func (v *VehicleAgent) seal(p wire.Packet) []byte {
	sec, err := pki.Seal(p, v.cred, v.env.Scheme)
	if err != nil {
		panic("core: sealing vehicle packet: " + err.Error())
	}
	b, err := sec.MarshalBinary()
	if err != nil {
		panic("core: marshalling vehicle packet: " + err.Error())
	}
	return b
}

// HandleFrame is the radio receive entry point (the attack layer wraps it
// for hostile vehicles).
func (v *VehicleAgent) HandleFrame(f radio.Frame) {
	switch f.Kind() {
	case wire.KindRREQ, wire.KindRREP, wire.KindRERR, wire.KindHello, wire.KindData:
		// Bare routing traffic is the bulk of what a vehicle hears; the
		// kind peek hands it straight to the router without a wasted decode
		// (the router runs its own typed fast paths).
		v.router.HandleFrame(f)
		return
	}
	pkt, err := wire.Decode(f.Payload)
	if err != nil {
		return
	}
	var env *wire.Secure
	inner := pkt
	if sec, ok := pkt.(*wire.Secure); ok {
		env = sec
		inner, err = wire.Decode(sec.Inner)
		if err != nil {
			return
		}
	}
	switch p := inner.(type) {
	case *wire.JoinRep, *wire.BlacklistNotice:
		v.client.HandlePacket(inner, f.From)
	case *wire.DetectResp:
		v.handleDetectResp(p, env)
	case *wire.RenewalResp:
		v.handleRenewalResp(p, env)
	default:
		v.router.HandleFrame(f)
	}
}

// SendData routes an application payload over the established route.
func (v *VehicleAgent) SendData(dest wire.NodeID, payload []byte) error {
	if err := v.router.SendData(dest, payload); err != nil {
		return err
	}
	v.stats.DataSent++
	return nil
}

// OnDataReceived registers the application delivery callback.
func (v *VehicleAgent) OnDataReceived(fn func(d *wire.Data, from wire.NodeID)) {
	v.router.SetDataReceived(func(d *wire.Data, from wire.NodeID) {
		v.stats.DataReceived++
		if fn != nil {
			fn(d, from)
		}
	})
}

// EstablishRoute performs the paper's source-and-destination-verified route
// establishment toward dest and reports the outcome through done.
func (v *VehicleAgent) EstablishRoute(dest wire.NodeID, done func(EstablishResult)) error {
	if done == nil {
		return fmt.Errorf("core: EstablishRoute requires a completion callback")
	}
	if _, busy := v.verifications[dest]; busy {
		return fmt.Errorf("core: establishment to %v already in progress", dest)
	}
	ver := &verification{dest: dest, done: done, excluded: make(map[wire.NodeID]bool)}
	v.verifications[dest] = ver
	return v.discoverRound(ver)
}

func (v *VehicleAgent) discoverRound(ver *verification) error {
	ver.round++
	v.stats.Discoveries++
	opts := []aodv.DiscoverOption{}
	if ver.minSeq > 0 {
		opts = append(opts, aodv.WithMinDestSeq(ver.minSeq))
	}
	return v.router.Discover(ver.dest, func(res aodv.DiscoverResult) { v.evaluate(ver, res) }, opts...)
}

func (v *VehicleAgent) finish(ver *verification, res EstablishResult) {
	ver.timer.Stop()
	ver.retryTimer.Stop()
	if v.verifications[ver.dest] == ver {
		delete(v.verifications, ver.dest)
	}
	res.Dest = ver.dest
	res.Rounds = ver.round
	v.env.Tracer.Logf(v.NodeID(), trace.CatVerify, "establishment to %v: %v (suspect %v verdict %v)",
		ver.dest, res.Status, res.Suspect, res.Verdict)
	ver.done(res)
}

// evaluate inspects the replies a discovery round collected.
func (v *VehicleAgent) evaluate(ver *verification, res aodv.DiscoverResult) {
	if v.verifications[ver.dest] != ver {
		return
	}
	if !v.cfg.Verify {
		// Plain AODV: trust the freshest reply blindly.
		if res.Best == nil {
			v.finish(ver, EstablishResult{Status: StatusNoRoute})
			return
		}
		v.finish(ver, EstablishResult{Status: StatusUnverified, Via: res.Best.RREP.Issuer})
		return
	}

	best := v.bestAuthenticated(ver, res.Candidates)
	if best == nil {
		if ver.suspect != nil {
			// Round 2 after a failed probe: the suspicious issuer declined
			// to re-offer its route. Attack blocked, attacker uncharged.
			v.finish(ver, EstablishResult{Status: StatusPrevented, Suspect: ver.suspect.RREP.Issuer})
			return
		}
		v.finish(ver, EstablishResult{Status: StatusNoRoute})
		return
	}
	// Forwarding must follow the candidate verification is acting on, not
	// whatever unauthenticated reply raced to the top of the route table.
	v.router.AdoptRoute(ver.dest, best.From, best.RREP.HopCount+1, best.RREP.DestSeq)
	if best.RREP.Issuer == ver.dest {
		// The destination answered and authenticated itself directly.
		v.finish(ver, EstablishResult{Status: StatusVerified, Via: best.RREP.Issuer})
		return
	}
	if ver.suspect != nil && best.RREP.Issuer == ver.suspect.RREP.Issuer {
		// Second round, same issuer, still claiming the freshest route it
		// cannot prove: report it.
		v.fileReport(ver, best)
		return
	}
	if v.cfg.ReportWithoutProbe {
		// Ablation: treat every intermediate issuer as suspicious outright.
		v.fileReport(ver, best)
		return
	}
	// An intermediate claims a route; verify end to end with a signed Hello.
	ver.suspect = best
	v.sendVerificationProbe(ver)
}

// bestAuthenticated filters candidates through the paper's authentication
// rules and returns the freshest survivor.
func (v *VehicleAgent) bestAuthenticated(ver *verification, cands []aodv.Candidate) *aodv.Candidate {
	// Stage the envelopes that survive the cheap pre-filters and verify
	// them as one batch through the per-vehicle cache; relayed copies of
	// the same reply then cost one signature verification, not one each.
	v.openScratch = v.openScratch[:0]
	for i := range cands {
		c := &cands[i]
		if ver.excluded[c.RREP.Issuer] || v.client.IsBlacklisted(c.RREP.Issuer) {
			v.openScratch = append(v.openScratch, nil)
			continue
		}
		v.openScratch = append(v.openScratch, c.Envelope)
	}
	opened := v.verifier.OpenBatch(v.openScratch, v.env.Sched.Now())
	var best *aodv.Candidate
	for i := range cands {
		c := &cands[i]
		if ver.excluded[c.RREP.Issuer] {
			continue
		}
		if v.client.IsBlacklisted(c.RREP.Issuer) {
			v.stats.BlacklistHits++
			continue
		}
		if c.Envelope == nil {
			// Unsigned replies cannot authenticate their issuer; BlackDP
			// discards them outright.
			v.stats.AuthViolations++
			continue
		}
		inner, cert, err := opened[i].Packet, opened[i].Cert, opened[i].Err
		if err != nil {
			v.stats.AuthViolations++
			continue
		}
		rep, ok := inner.(*wire.RREP)
		if !ok || cert.Node != rep.Issuer {
			// A reply signed under a different identity than it claims is
			// an impersonation attempt.
			v.stats.AuthViolations++
			continue
		}
		if v.client.IsBlacklisted(cert.Node) {
			v.stats.BlacklistHits++
			continue
		}
		if best == nil || rep.DestSeq > best.RREP.DestSeq ||
			(rep.DestSeq == best.RREP.DestSeq && rep.HopCount < best.RREP.HopCount) {
			best = c
		}
	}
	return best
}

// sendVerificationProbe sends the signed end-to-end Hello through the
// claimed route and arms the timeout that triggers re-discovery.
func (v *VehicleAgent) sendVerificationProbe(ver *verification) {
	ver.nonce = v.env.RNG.Uint64()
	probe := &wire.Hello{Origin: v.NodeID(), Dest: ver.dest, Nonce: ver.nonce}
	if err := v.router.SendProbe(ver.dest, v.seal(probe)); err != nil {
		v.finish(ver, EstablishResult{Status: StatusNoRoute, Suspect: ver.suspect.RREP.Issuer})
		return
	}
	v.stats.ProbesSent++
	v.env.Tracer.Logf(v.NodeID(), trace.CatVerify, "probing route to %v via %v (nonce %d)",
		ver.dest, ver.suspect.RREP.Issuer, ver.nonce)
	ver.timer.Stop()
	ver.timer = v.env.Sched.After(v.cfg.ProbeTimeout, func() { v.probeTimedOut(ver) })
}

// probeTimedOut: no destination answer; redo discovery demanding a fresher
// sequence number than the suspicious claim, per the paper.
func (v *VehicleAgent) probeTimedOut(ver *verification) {
	if v.verifications[ver.dest] != ver {
		return
	}
	if ver.round >= 2 {
		// Two rounds of suspicion without a reply to convict on: report
		// anyway? The paper files after the second suspicious reply; with
		// none, the establishment simply failed safe.
		v.finish(ver, EstablishResult{Status: StatusPrevented, Suspect: ver.suspect.RREP.Issuer})
		return
	}
	v.env.Tracer.Logf(v.NodeID(), trace.CatVerify, "probe to %v unanswered; re-discovering", ver.dest)
	ver.minSeq = ver.suspect.RREP.DestSeq + 1
	if err := v.discoverRound(ver); err != nil {
		v.finish(ver, EstablishResult{Status: StatusPrevented, Suspect: ver.suspect.RREP.Issuer})
	}
}

// handleProbe serves both directions of the Hello probe protocol.
func (v *VehicleAgent) handleProbe(h *wire.Hello, env *wire.Secure, from wire.NodeID) {
	now := v.env.Sched.Now()
	if !h.Reply {
		// We are the probed destination: authenticate the prober, then
		// answer with our own signed Hello.
		if env != nil {
			if _, cert, err := v.verifier.Open(env, now); err != nil || cert.Node != h.Origin {
				v.stats.AuthViolations++
				return
			}
		}
		reply := &wire.Hello{Origin: v.NodeID(), Dest: h.Origin, Nonce: h.Nonce, Reply: true}
		if err := v.router.SendProbe(h.Origin, v.seal(reply)); err != nil {
			v.env.Tracer.Logf(v.NodeID(), trace.CatVerify, "cannot answer probe from %v: %v", h.Origin, err)
		}
		return
	}
	// A probe reply: find the verification waiting on this nonce.
	for _, ver := range v.verifications {
		if ver.nonce == 0 || ver.nonce != h.Nonce {
			continue
		}
		v.resolveProbeReply(ver, h, env)
		return
	}
}

// resolveProbeReply authenticates the destination's answer — or recognises
// a forged one, which is itself damning evidence.
func (v *VehicleAgent) resolveProbeReply(ver *verification, h *wire.Hello, env *wire.Secure) {
	now := v.env.Sched.Now()
	if env != nil {
		if _, cert, err := v.verifier.Open(env, now); err == nil && cert.Node == ver.dest && h.Origin == ver.dest {
			// Genuine destination: the intermediate's route is real.
			v.stats.ProbeConfirmed++
			v.finish(ver, EstablishResult{Status: StatusVerified, Via: ver.suspect.RREP.Issuer})
			return
		}
	}
	// Anonymity response: someone (not the destination) answered the probe.
	// The paper files the d_req immediately, skipping the second round.
	v.stats.AnonymityFakes++
	v.env.Tracer.Logf(v.NodeID(), trace.CatVerify, "forged probe reply for %v; reporting %v",
		ver.dest, ver.suspect.RREP.Issuer)
	v.fileReport(ver, ver.suspect)
}

// fileReport sends the d_req for the suspicious issuer to the vehicle's
// cluster head and waits for the verdict.
func (v *VehicleAgent) fileReport(ver *verification, suspect *aodv.Candidate) {
	ver.timer.Stop()
	head := v.client.Head()
	if head == wire.Broadcast {
		v.finish(ver, EstablishResult{Status: StatusUnresolved, Suspect: suspect.RREP.Issuer})
		return
	}
	var serial uint64
	if suspect.Envelope != nil {
		serial = suspect.Envelope.Cert.Serial
	}
	dr := &wire.DetectReq{
		Reporter:        v.NodeID(),
		ReporterCluster: v.client.Cluster(),
		Suspect:         suspect.RREP.Issuer,
		SuspectCluster:  suspect.RREP.IssuerCluster,
		SuspectSerial:   serial,
		Nonce:           v.env.RNG.Uint64(),
	}
	v.stats.ReportsFiled++
	ver.suspect = suspect
	ver.dreq = dr
	v.reports[dr.Suspect] = ver
	v.sendDReq(ver)
	window := v.cfg.DetectTimeout
	if v.cfg.DReqRetries >= 0 {
		// The retry ladder (timeout, 2x, capped) must fit inside the verdict
		// window or retransmission and failover could never trigger.
		window = 4 * v.cfg.DetectTimeout
	}
	ver.timer = v.env.Sched.After(window, func() { v.reportTimedOut(ver) })
}

// reportTimedOut gives up on a filed report: no verdict arrived within the
// detection window (including any retransmissions and failover).
func (v *VehicleAgent) reportTimedOut(ver *verification) {
	if v.reports[ver.dreq.Suspect] != ver {
		return
	}
	delete(v.reports, ver.dreq.Suspect)
	v.finish(ver, EstablishResult{Status: StatusUnresolved, Suspect: ver.dreq.Suspect})
}

// sendDReq transmits the report to the current head and, when retransmission
// is enabled, arms the retry timer with capped exponential backoff. The nonce
// stays fixed across resends so the head can tell a lost-verdict
// retransmission from a fresh report.
func (v *VehicleAgent) sendDReq(ver *verification) {
	dr := ver.dreq
	head := v.client.Head()
	if head == wire.Broadcast {
		return // failover join still in progress; refileReports resumes
	}
	dr.ReporterCluster = v.client.Cluster()
	v.ifc.Send(head, v.seal(dr))
	ver.attempts++
	v.env.Tally.Case(dr.Suspect).addDReq(v.env.Sched.Now())
	v.env.Tracer.Logf(v.NodeID(), trace.CatDetect, "d_req filed against %v (cluster %d, attempt %d)",
		dr.Suspect, dr.SuspectCluster, ver.attempts)
	if v.cfg.DReqRetries < 0 {
		return // ablation: fire and forget, as in the base paper
	}
	backoff := v.cfg.DReqTimeout << uint(ver.attempts-1)
	if cap := 4 * v.cfg.DReqTimeout; backoff > cap {
		backoff = cap
	}
	ver.retryTimer.Stop()
	ver.retryTimer = v.env.Sched.After(backoff, func() { v.dreqTimedOut(ver) })
}

// dreqTimedOut retransmits an unanswered d_req, or — once the per-head retry
// budget is exhausted — abandons the registered head and solicits an adjacent
// one via the membership failover path.
func (v *VehicleAgent) dreqTimedOut(ver *verification) {
	if v.reports[ver.dreq.Suspect] != ver {
		return
	}
	if ver.attempts <= v.cfg.DReqRetries {
		v.stats.DReqRetransmits++
		v.env.Tracer.Logf(v.NodeID(), trace.CatDetect, "d_req against %v unanswered; retransmitting", ver.dreq.Suspect)
		v.sendDReq(ver)
		return
	}
	if ver.failedOver {
		return // one failover per report; reportTimedOut decides from here
	}
	ver.failedOver = true
	v.stats.Failovers++
	v.env.Tracer.Logf(v.NodeID(), trace.CatDetect, "head unresponsive; failing over to an adjacent cluster head")
	// Reaching an adjacent head's radio range can take tens of seconds of
	// driving; stretch the verdict deadline to give the failover a chance.
	ver.timer.Stop()
	ver.timer = v.env.Sched.After(3*v.cfg.DetectTimeout, func() { v.reportTimedOut(ver) })
	v.client.Rejoin()
}

// refileReports retransmits failed-over reports to the freshly joined head.
// The membership Joined callback runs it on every admission; with no pending
// failover it does nothing, keeping the fault-free path untouched.
func (v *VehicleAgent) refileReports() {
	var suspects []wire.NodeID
	for s, ver := range v.reports {
		if ver.failedOver {
			suspects = append(suspects, s)
		}
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
	for _, s := range suspects {
		ver := v.reports[s]
		ver.attempts = 0 // fresh retry budget at the new head
		v.sendDReq(ver)
		ver.timer.Stop()
		ver.timer = v.env.Sched.After(2*v.cfg.DetectTimeout, func() { v.reportTimedOut(ver) })
	}
}

// ReportSuspect files a d_req directly, outside any route establishment —
// the "suspicious route establishment activities" trigger. The experiment
// harness uses it to reproduce detection-packet counts for scripted
// scenarios (including reports against legitimate nodes).
func (v *VehicleAgent) ReportSuspect(suspect wire.NodeID, suspectCluster wire.ClusterID, serial uint64, done func(EstablishResult)) error {
	if done == nil {
		return fmt.Errorf("core: ReportSuspect requires a completion callback")
	}
	if _, busy := v.reports[suspect]; busy {
		return fmt.Errorf("core: report against %v already pending", suspect)
	}
	ver := &verification{dest: suspect, done: done, excluded: make(map[wire.NodeID]bool)}
	cand := &aodv.Candidate{RREP: wire.RREP{Issuer: suspect, IssuerCluster: suspectCluster}}
	if serial != 0 {
		cand.Envelope = &wire.Secure{Cert: wire.Certificate{Serial: serial, Node: suspect}}
	}
	v.fileReport(ver, cand)
	return nil
}

// handleDetectResp resolves a filed report with the head's verdict.
func (v *VehicleAgent) handleDetectResp(p *wire.DetectResp, env *wire.Secure) {
	if p.Reporter != v.NodeID() {
		return
	}
	if env == nil {
		v.stats.AuthViolations++
		return
	}
	if _, cert, err := v.verifier.Open(env, v.env.Sched.Now()); err != nil || !v.env.Dir.IsHead(cert.Node) {
		v.stats.AuthViolations++
		return
	}
	ver, ok := v.reports[p.Suspect]
	if !ok {
		return
	}
	delete(v.reports, p.Suspect)
	v.stats.VerdictsGot++

	res := EstablishResult{Suspect: p.Suspect, Verdict: p.Verdict, Teammate: p.Teammate}
	switch p.Verdict {
	case wire.VerdictMalicious, wire.VerdictAlreadyKnown:
		res.Status = StatusDetected
		v.router.PurgeNode(p.Suspect)
		if p.Teammate != 0 {
			v.router.PurgeNode(p.Teammate)
		}
	case wire.VerdictLegitimate:
		res.Status = StatusCleared
	default:
		res.Status = StatusUnresolved
	}
	v.finish(ver, res)
}

// RenewCertificate asks the TA (via the cluster head) for a fresh pseudonym,
// generating the next key pair locally.
func (v *VehicleAgent) RenewCertificate() error {
	head := v.client.Head()
	if head == wire.Broadcast {
		return fmt.Errorf("core: not registered in any cluster")
	}
	if v.pendingRenew != nil {
		return fmt.Errorf("core: renewal already pending")
	}
	// A derived stream keeps the variable byte consumption of key
	// generation from shifting shared-stream draws (run determinism).
	key, err := pki.GenerateKey(v.env.RNG.Split("renew-" + v.NodeID().String()).Reader())
	if err != nil {
		return err
	}
	der, err := pki.MarshalPublicKey(&key.PublicKey)
	if err != nil {
		return err
	}
	req := &wire.RenewalReq{Current: v.NodeID(), CertSerial: v.cred.Cert.Serial, NewPubKey: der}
	v.pendingRenew = &pki.Credential{Key: key}
	v.ifc.Send(head, v.seal(req))
	return nil
}

// handleRenewalResp applies the freshly issued certificate: new pseudonym on
// the radio, re-registration with the cluster.
func (v *VehicleAgent) handleRenewalResp(p *wire.RenewalResp, env *wire.Secure) {
	if p.Requester != v.NodeID() || v.pendingRenew == nil {
		return
	}
	if env == nil {
		v.stats.AuthViolations++
		return
	}
	if _, cert, err := v.verifier.Open(env, v.env.Sched.Now()); err != nil || !v.env.Dir.IsHead(cert.Node) {
		v.stats.AuthViolations++
		return
	}
	pending := v.pendingRenew
	v.pendingRenew = nil
	if p.Denied {
		v.env.Tracer.Logf(v.NodeID(), trace.CatCluster, "certificate renewal denied")
		return
	}
	if err := pki.VerifyCertificate(&p.Cert, v.env.Trust, v.env.Sched.Now(), v.env.Scheme); err != nil {
		v.stats.AuthViolations++
		return
	}
	old := v.NodeID()
	pending.Cert = p.Cert
	v.cred = pending
	v.ifc.SetNodeID(p.Cert.Node)
	v.stats.RenewalsApplied++
	v.env.Tracer.Logf(v.NodeID(), trace.CatCluster, "pseudonym rotated %v -> %v", old, p.Cert.Node)
	// Re-register under the new identity; the old registration ages out.
	v.client.Start()
	if v.onRenewed != nil {
		v.onRenewed(old, p.Cert.Node)
	}
}
