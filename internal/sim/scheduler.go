// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event scheduler with cancellable timers, and seeded
// random-number streams.
//
// All simulated activity runs on a single goroutine inside Scheduler.Run (or
// its bounded variants), so protocol code never needs locks and every run
// with the same seed replays identically. Events scheduled for the same
// instant fire in FIFO order of scheduling, which keeps broadcast fan-out
// deterministic.
//
// Event records are pooled: once an event fires or is stopped, its record
// returns to a free list and backs a later schedule. Pooling is invisible to
// simulation outcomes — ordering is decided by the (time, seq) pair assigned
// at schedule time, never by record identity — and stale Timer handles are
// fenced off by a per-record generation counter. A shared EventPool can be
// threaded through consecutive schedulers (one replication after another on
// the same worker) so a warmed-up free list keeps amortising allocations
// across runs.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// event is a unit of scheduled work. Records are pooled and reused; the gen
// counter invalidates Timer handles left over from a previous life.
type event struct {
	time  time.Duration
	seq   uint64 // tie-breaker: FIFO among equal times
	index int    // heap index, -1 once popped or cancelled
	gen   uint64 // incremented on recycle; fences stale Timers
	fn    func()
	afn   func(any) // arg-style callback (AtFunc/AfterFunc); nil for fn events
	arg   any
}

// EventPool recycles event records across schedulers. A pool may be shared
// by any number of schedulers used one after another on the same goroutine
// (e.g. consecutive replications on one sweep worker); it is not safe for
// concurrent use. The zero value is ready to use.
type EventPool struct {
	free []*event
}

// NewEventPool returns an empty pool.
func NewEventPool() *EventPool { return &EventPool{} }

func (p *EventPool) get() *event {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return ev
	}
	return &event{}
}

// put recycles a record: the generation bump invalidates outstanding Timer
// handles and the callback slots are cleared so pooled records retain
// nothing.
func (p *EventPool) put(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.index = -1
	p.free = append(p.free, ev)
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. Timers are small values and may be copied freely; the zero value is
// an inert, already-stopped timer.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to the scheduled event it was
// created for (the record may since have been recycled for another event).
func (t *Timer) live() bool {
	return t != nil && t.s != nil && t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing: false means the event already ran, was already stopped, or the
// timer is the zero value.
func (t *Timer) Stop() bool {
	if !t.live() {
		if t != nil {
			t.ev = nil
		}
		return false
	}
	ev := t.ev
	t.ev = nil
	heap.Remove(&t.s.events, ev.index)
	t.s.pool.put(ev)
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t.live() }

// Observer receives scheduler lifecycle callbacks. It exists for runtime
// invariant checking in tests (see InvariantChecker); nil fields are skipped,
// and an absent observer costs one nil check per event.
type Observer struct {
	// RunStarted fires when Run/RunUntil/RunFor begins a run loop.
	RunStarted func(at time.Duration)
	// EventFired fires as each event is popped, before its callback runs.
	EventFired func(at time.Duration)
	// Stopped fires when Stop is called from inside an event.
	Stopped func(at time.Duration)
}

// Scheduler is a discrete-event scheduler. The zero value is ready to use,
// with the clock at zero and a private event pool.
type Scheduler struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	executed  uint64
	running   bool
	stopped   bool
	idleHooks []func()
	obs       Observer
	pool      *EventPool
	ownPool   EventPool // backs pool when no shared pool was supplied
}

// NewScheduler returns an empty scheduler with the clock at zero and a
// private event pool.
func NewScheduler() *Scheduler { return &Scheduler{} }

// NewSchedulerWithPool returns a scheduler drawing event records from pool,
// so a worker running many short-lived schedulers in sequence reuses one
// warmed-up free list instead of re-allocating per run. A nil pool behaves
// like NewScheduler.
func NewSchedulerWithPool(pool *EventPool) *Scheduler {
	return &Scheduler{pool: pool}
}

// ensurePool lazily wires the private pool so the zero Scheduler keeps
// working.
func (s *Scheduler) ensurePool() *EventPool {
	if s.pool == nil {
		s.pool = &s.ownPool
	}
	return s.pool
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return s.events.Len() }

// NextTime returns the time of the earliest pending event. ok is false when
// the queue is empty. The sharded executor uses it to pick conservative
// window bounds without disturbing the queue.
func (s *Scheduler) NextTime() (t time.Duration, ok bool) {
	if s.events.Len() == 0 {
		return 0, false
	}
	return s.events[0].time, true
}

// schedule allocates (or recycles) a record for time t and pushes it.
func (s *Scheduler) schedule(t time.Duration) *event {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, s.now))
	}
	ev := s.ensurePool().get()
	ev.time = t
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// At schedules fn to run at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past (t < Now) panics: it is always a protocol
// bug, and silently reordering time would mask it.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil func")
	}
	ev := s.schedule(t)
	ev.fn = fn
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics, as with At.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// AtFunc schedules fn(arg) to run at absolute virtual time t. It is the
// allocation-free alternative to At for hot paths: a caller keeps one fn for
// the lifetime of the component and threads per-event state through arg
// (typically a pointer into its own free list), so no closure is created per
// event.
func (s *Scheduler) AtFunc(t time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: AtFunc called with nil func")
	}
	ev := s.schedule(t)
	ev.afn = fn
	ev.arg = arg
	return Timer{s: s, ev: ev, gen: ev.gen}
}

// AfterFunc schedules fn(arg) to run d from now. Negative d panics, as with
// At.
func (s *Scheduler) AfterFunc(d time.Duration, fn func(any), arg any) Timer {
	return s.AtFunc(s.now+d, fn, arg)
}

// Stop makes the current Run/RunUntil/RunFor call return after the event in
// progress completes. It may only be called from inside an event callback.
func (s *Scheduler) Stop() {
	s.stopped = true
	if s.obs.Stopped != nil {
		s.obs.Stopped(s.now)
	}
}

// Observe installs a lifecycle observer (replacing any previous one).
func (s *Scheduler) Observe(o Observer) { s.obs = o }

// OnIdle registers fn to run when the event queue drains while Run is
// active. Hooks may schedule new events; they run in registration order each
// time the queue empties.
func (s *Scheduler) OnIdle(fn func()) {
	if fn == nil {
		panic("sim: OnIdle called with nil func")
	}
	s.idleHooks = append(s.idleHooks, fn)
}

// Step fires the single earliest pending event. It reports whether an event
// fired.
func (s *Scheduler) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	if ev.time < s.now {
		panic("sim: event heap yielded an event in the past")
	}
	s.now = ev.time
	s.executed++
	if s.obs.EventFired != nil {
		s.obs.EventFired(ev.time)
	}
	// Recycle before running the callback: the record's next life (possibly
	// scheduled by this very callback) is fenced from stale Timers by the
	// generation bump, and the callback slots were copied out first.
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	s.ensurePool().put(ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue is empty (after idle hooks have had a
// chance to refill it) or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(maxDuration)
}

const maxDuration = time.Duration(1<<63 - 1)

// RunUntil fires events whose time is <= deadline, advancing the clock to
// exactly deadline when it returns (unless Stop was called first). Events
// scheduled after the deadline remain pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	if s.running {
		panic("sim: Run re-entered from inside an event")
	}
	s.running = true
	s.stopped = false
	if s.obs.RunStarted != nil {
		s.obs.RunStarted(s.now)
	}
	defer func() { s.running = false }()

	for !s.stopped {
		if s.events.Len() == 0 {
			n := s.events.Len()
			for _, hook := range s.idleHooks {
				hook()
			}
			if s.events.Len() == n { // hooks added nothing; truly drained
				break
			}
			continue
		}
		if s.events[0].time > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && deadline != maxDuration && s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs for d of virtual time from the current clock.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
