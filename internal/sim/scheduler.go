// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event scheduler with cancellable timers, and seeded
// random-number streams.
//
// All simulated activity runs on a single goroutine inside Scheduler.Run (or
// its bounded variants), so protocol code never needs locks and every run
// with the same seed replays identically. Events scheduled for the same
// instant fire in FIFO order of scheduling, which keeps broadcast fan-out
// deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a unit of scheduled work. Events are created through Scheduler.At
// and Scheduler.After and are not reusable.
type event struct {
	time  time.Duration
	seq   uint64 // tie-breaker: FIFO among equal times
	index int    // heap index, -1 once popped or cancelled
	fn    func()
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is an inert, already-stopped timer.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing: false means the event already ran, was already stopped, or the
// timer is the zero value.
func (t *Timer) Stop() bool {
	if t == nil || t.s == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	t.ev = nil
	if ev.index < 0 {
		return false
	}
	heap.Remove(&t.s.events, ev.index)
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && t.ev.index >= 0
}

// Observer receives scheduler lifecycle callbacks. It exists for runtime
// invariant checking in tests (see InvariantChecker); nil fields are skipped,
// and an absent observer costs one nil check per event.
type Observer struct {
	// RunStarted fires when Run/RunUntil/RunFor begins a run loop.
	RunStarted func(at time.Duration)
	// EventFired fires as each event is popped, before its callback runs.
	EventFired func(at time.Duration)
	// Stopped fires when Stop is called from inside an event.
	Stopped func(at time.Duration)
}

// Scheduler is a discrete-event scheduler. The zero value is ready to use,
// with the clock at zero.
type Scheduler struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	executed  uint64
	running   bool
	stopped   bool
	idleHooks []func()
	obs       Observer
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return s.events.Len() }

// At schedules fn to run at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past (t < Now) panics: it is always a protocol
// bug, and silently reordering time would mask it.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil func")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, s.now))
	}
	ev := &event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{s: s, ev: ev}
}

// After schedules fn to run d from now. Negative d panics, as with At.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Stop makes the current Run/RunUntil/RunFor call return after the event in
// progress completes. It may only be called from inside an event callback.
func (s *Scheduler) Stop() {
	s.stopped = true
	if s.obs.Stopped != nil {
		s.obs.Stopped(s.now)
	}
}

// Observe installs a lifecycle observer (replacing any previous one).
func (s *Scheduler) Observe(o Observer) { s.obs = o }

// OnIdle registers fn to run when the event queue drains while Run is
// active. Hooks may schedule new events; they run in registration order each
// time the queue empties.
func (s *Scheduler) OnIdle(fn func()) {
	if fn == nil {
		panic("sim: OnIdle called with nil func")
	}
	s.idleHooks = append(s.idleHooks, fn)
}

// Step fires the single earliest pending event. It reports whether an event
// fired.
func (s *Scheduler) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	if ev.time < s.now {
		panic("sim: event heap yielded an event in the past")
	}
	s.now = ev.time
	s.executed++
	if s.obs.EventFired != nil {
		s.obs.EventFired(ev.time)
	}
	ev.fn()
	return true
}

// Run fires events until the queue is empty (after idle hooks have had a
// chance to refill it) or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(maxDuration)
}

const maxDuration = time.Duration(1<<63 - 1)

// RunUntil fires events whose time is <= deadline, advancing the clock to
// exactly deadline when it returns (unless Stop was called first). Events
// scheduled after the deadline remain pending.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	if s.running {
		panic("sim: Run re-entered from inside an event")
	}
	s.running = true
	s.stopped = false
	if s.obs.RunStarted != nil {
		s.obs.RunStarted(s.now)
	}
	defer func() { s.running = false }()

	for !s.stopped {
		if s.events.Len() == 0 {
			n := s.events.Len()
			for _, hook := range s.idleHooks {
				hook()
			}
			if s.events.Len() == n { // hooks added nothing; truly drained
				break
			}
			continue
		}
		if s.events[0].time > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && deadline != maxDuration && s.now < deadline {
		s.now = deadline
	}
}

// RunFor runs for d of virtual time from the current clock.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
