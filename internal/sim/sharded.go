package sim

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// Sharded executes one simulation across several event-queue shards with
// conservative time-window synchronization — classic conservative parallel
// discrete-event simulation, specialised to this repository's geometry:
// cluster strips only interact through the radio channel, and every frame
// needs at least `lookahead` of virtual time on the air, so a window of that
// length can run on every shard concurrently without any shard seeing an
// event out of order.
//
// Shard 0 is the *anchor*: it runs solo at the head of every window, before
// the other shards start, so components that touch run-global state (trust
// store, cluster directory, detection tally, wired backbone) can live there
// and stay lock-free — their writes are sequenced against every other
// shard's reads by the window barrier itself. Shards 1..n-1 then execute the
// same window concurrently on the worker pool.
//
// Events crossing shards travel through per-shard mailboxes: a PostTo from
// shard A to shard B during a window is buffered on A and merged into B's
// queue at the barrier, in (time, source shard, post order) order. The merge
// order is a pure function of the simulation, never of goroutine scheduling,
// which is what makes a sharded run byte-identical for any worker count —
// workers decide only which OS thread executes a shard, never what the shard
// observes. The determinism wall in internal/scenario holds exactly this.
//
// Lookahead is a hard contract: a cross-shard post must land strictly after
// the window in which it was made. Posts that would violate it panic — a
// violation means the lookahead was derived from a wrong lower bound on
// cross-shard latency, which would silently corrupt event ordering.
type Sharded struct {
	lookahead time.Duration
	shards    []*ShardRuntime
	workers   int

	now  time.Duration // virtual time the run has been driven to
	we   time.Duration // inclusive end of the window in flight
	mail []mailItem    // barrier merge scratch

	onWindow []func(start, end time.Duration)

	work chan *ShardRuntime
	wg   sync.WaitGroup
}

// ShardRuntime is one shard's scheduling handle. It implements Runtime (so
// agents built on a shard schedule onto that shard transparently) and
// CrossPoster (so the radio layer can route deliveries to another device's
// home shard).
type ShardRuntime struct {
	x      *Sharded
	id     int
	s      *Scheduler
	outbox []mailItem
}

// mailItem is one buffered cross-shard post.
type mailItem struct {
	to  int
	src int
	seq int
	at  time.Duration
	fn  func(any)
	arg any
}

// NewSharded builds a sharded executor with `shards` shards (anchor
// included, so shards >= 2 for any actual sharding) and a worker pool of
// `workers` goroutines for the non-anchor shards. The lookahead must be a
// lower bound on the virtual latency of every cross-shard interaction.
func NewSharded(lookahead time.Duration, shards, workers int) *Sharded {
	if lookahead <= 0 {
		panic("sim: sharded lookahead must be positive")
	}
	if shards < 1 {
		panic("sim: sharded needs at least the anchor shard")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards-1 && shards > 1 {
		workers = shards - 1
	}
	x := &Sharded{lookahead: lookahead, workers: workers}
	for i := 0; i < shards; i++ {
		x.shards = append(x.shards, &ShardRuntime{x: x, id: i, s: NewScheduler()})
	}
	return x
}

// Shard returns shard i's runtime (0 = anchor).
func (x *Sharded) Shard(i int) *ShardRuntime { return x.shards[i] }

// Anchor returns shard 0, the solo-slot shard for run-global state.
func (x *Sharded) Anchor() *ShardRuntime { return x.shards[0] }

// Shards returns the shard count, anchor included.
func (x *Sharded) Shards() int { return len(x.shards) }

// Lookahead returns the conservative window length.
func (x *Sharded) Lookahead() time.Duration { return x.lookahead }

// Now returns the virtual time the executor has been driven to.
func (x *Sharded) Now() time.Duration { return x.now }

// Executed returns the total number of events fired across all shards.
func (x *Sharded) Executed() uint64 {
	var n uint64
	for _, sh := range x.shards {
		n += sh.s.Executed()
	}
	return n
}

// Pending returns the total number of events waiting across all shards.
func (x *Sharded) Pending() int {
	var n int
	for _, sh := range x.shards {
		n += sh.s.Pending()
	}
	return n
}

// OnWindow registers fn to run on the orchestrating goroutine at the start
// of every window, after the bounds [start, end] are fixed and before any
// shard (anchor included) executes. Shared read-mostly structures refresh
// themselves here — the radio spatial index brings its buckets up to the
// window end — so the window itself runs them read-only.
func (x *Sharded) OnWindow(fn func(start, end time.Duration)) {
	if fn == nil {
		panic("sim: OnWindow called with nil func")
	}
	x.onWindow = append(x.onWindow, fn)
}

// RunFor advances the whole sharded run by d of virtual time.
func (x *Sharded) RunFor(d time.Duration) { x.RunUntil(x.now + d) }

// RunUntil fires events on every shard up to and including deadline,
// window by window, leaving every shard clock at exactly deadline.
func (x *Sharded) RunUntil(deadline time.Duration) {
	if deadline < x.now {
		panic(fmt.Sprintf("sim: sharded RunUntil(%v) is in the past (now %v)", deadline, x.now))
	}
	// Posts made outside a window — agent construction and Start() calls
	// during the world build send real frames — sit in outboxes, which
	// nextTime cannot see. Merge them into the shard queues first, or the
	// first window could be computed past them.
	x.mergeMail()
	pool := x.workers > 1 && len(x.shards) > 2
	if pool {
		work := make(chan *ShardRuntime)
		x.work = work
		for i := 0; i < x.workers; i++ {
			go func() {
				for sh := range work {
					sh.s.RunUntil(x.we)
					x.wg.Done()
				}
			}()
		}
	}
	for {
		t, ok := x.nextTime()
		if !ok || t > deadline {
			break
		}
		we := t + x.lookahead - 1
		if we > deadline {
			we = deadline
		}
		x.we = we
		for _, fn := range x.onWindow {
			fn(t, we)
		}

		// Anchor solo slot: run-global state is written here, strictly
		// before any other shard reads it this window.
		if nt, ok := x.shards[0].s.NextTime(); ok && nt <= we {
			x.shards[0].s.RunUntil(we)
		}

		// Parallel slot: every non-anchor shard with work in the window.
		var dispatched int
		for _, sh := range x.shards[1:] {
			if nt, ok := sh.s.NextTime(); ok && nt <= we {
				if pool {
					x.wg.Add(1)
					x.work <- sh
					dispatched++
				} else {
					sh.s.RunUntil(we)
				}
			}
		}
		if dispatched > 0 {
			x.wg.Wait()
		}

		x.mergeMail()
	}
	if pool {
		close(x.work)
		x.work = nil
	}
	// Advance every clock to exactly deadline (no shard has events left at
	// or before it).
	x.we = deadline
	for _, sh := range x.shards {
		if sh.s.Now() < deadline {
			sh.s.RunUntil(deadline)
		}
	}
	x.now = deadline
}

// nextTime returns the earliest pending event time across all shards.
func (x *Sharded) nextTime() (time.Duration, bool) {
	var (
		best  time.Duration
		found bool
	)
	for _, sh := range x.shards {
		if t, ok := sh.s.NextTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// mergeMail drains every shard's outbox into the target shards in
// (time, source shard, post order) order — a pure function of simulation
// state, independent of which worker ran which shard.
func (x *Sharded) mergeMail() {
	mail := x.mail[:0]
	for _, sh := range x.shards {
		for i := range sh.outbox {
			m := sh.outbox[i]
			m.src, m.seq = sh.id, i
			mail = append(mail, m)
			sh.outbox[i] = mailItem{}
		}
		sh.outbox = sh.outbox[:0]
	}
	if len(mail) > 1 {
		slices.SortFunc(mail, func(a, b mailItem) int {
			switch {
			case a.at < b.at:
				return -1
			case a.at > b.at:
				return 1
			case a.src != b.src:
				return a.src - b.src
			default:
				return a.seq - b.seq
			}
		})
	}
	for i := range mail {
		m := mail[i]
		x.shards[m.to].s.AtFunc(m.at, m.fn, m.arg)
		mail[i] = mailItem{}
	}
	x.mail = mail[:0]
}

var (
	_ Runtime     = (*ShardRuntime)(nil)
	_ CrossPoster = (*ShardRuntime)(nil)
)

// Now returns the shard's local clock.
func (sh *ShardRuntime) Now() time.Duration { return sh.s.Now() }

// At schedules fn on this shard at absolute time t.
func (sh *ShardRuntime) At(t time.Duration, fn func()) Timer { return sh.s.At(t, fn) }

// After schedules fn on this shard d from the shard's now.
func (sh *ShardRuntime) After(d time.Duration, fn func()) Timer { return sh.s.After(d, fn) }

// AtFunc schedules fn(arg) on this shard at absolute time t.
func (sh *ShardRuntime) AtFunc(t time.Duration, fn func(any), arg any) Timer {
	return sh.s.AtFunc(t, fn, arg)
}

// AfterFunc schedules fn(arg) on this shard d from the shard's now.
func (sh *ShardRuntime) AfterFunc(d time.Duration, fn func(any), arg any) Timer {
	return sh.s.AfterFunc(d, fn, arg)
}

// ID returns the shard index (0 = anchor).
func (sh *ShardRuntime) ID() int { return sh.id }

// Scheduler exposes the shard's underlying serial scheduler, for callers
// that need its extended surface (diagnostics, idle hooks in tests).
func (sh *ShardRuntime) Scheduler() *Scheduler { return sh.s }

// PostTo implements CrossPoster. Same-shard posts are ordinary AtFuncs;
// cross-shard posts buffer in the outbox until the window barrier. A
// cross-shard post at or before the current window's end is a lookahead
// violation and panics — it could target a time the destination shard has
// already executed past.
func (sh *ShardRuntime) PostTo(dst Runtime, at time.Duration, fn func(any), arg any) {
	d, ok := dst.(*ShardRuntime)
	if !ok || d.x != sh.x {
		panic("sim: PostTo destination is not a shard of this run")
	}
	if d == sh {
		sh.s.AtFunc(at, fn, arg)
		return
	}
	if at <= sh.x.we {
		panic(fmt.Sprintf("sim: lookahead violation: shard %d posting to shard %d at %v inside window ending %v (lookahead %v)",
			sh.id, d.id, at, sh.x.we, sh.x.lookahead))
	}
	sh.outbox = append(sh.outbox, mailItem{to: d.id, at: at, fn: fn, arg: arg})
}
