package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		s.At(d, func() { got = append(got, d) })
	}
	s.Run()
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerFIFOForEqualTimes(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(42, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler()
	s.At(100*time.Millisecond, func() {
		if s.Now() != 100*time.Millisecond {
			t.Errorf("Now() = %v inside event, want 100ms", s.Now())
		}
		s.After(50*time.Millisecond, func() {
			if s.Now() != 150*time.Millisecond {
				t.Errorf("Now() = %v inside nested event, want 150ms", s.Now())
			}
		})
	})
	s.Run()
	if s.Now() != 150*time.Millisecond {
		t.Errorf("final Now() = %v, want 150ms", s.Now())
	}
	if s.Executed() != 2 {
		t.Errorf("Executed() = %d, want 2", s.Executed())
	}
}

func TestSchedulerAtPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestSchedulerNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(nil) did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Active() {
		t.Error("timer not active after scheduling")
	}
	if !tm.Stop() {
		t.Error("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop() = true")
	}
	if tm.Active() {
		t.Error("timer active after Stop")
	}
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(10, func() {})
	s.Run()
	if tm.Stop() {
		t.Error("Stop() = true after the event fired")
	}
}

func TestTimerStopMiddleOfHeap(t *testing.T) {
	// Cancelling an event in the middle of the heap must not disturb the
	// ordering of the remaining events.
	s := NewScheduler()
	var got []time.Duration
	var timers []Timer
	for _, d := range []time.Duration{50, 40, 30, 20, 10} {
		d := d
		timers = append(timers, s.At(d, func() { got = append(got, d) }))
	}
	timers[2].Stop() // the 30 event
	s.Run()
	want := []time.Duration{10, 20, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Error("zero Timer Stop() = true")
	}
	if tm.Active() {
		t.Error("zero Timer Active() = true")
	}
	var nilTimer *Timer
	if nilTimer.Stop() || nilTimer.Active() {
		t.Error("nil Timer not inert")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired %d events by t=20, want 2", fired)
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v after RunUntil(20), want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 3 {
		t.Errorf("fired %d events total, want 3", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunFor(time.Second)
	if s.Now() != time.Second {
		t.Errorf("Now() = %v after empty RunFor(1s), want 1s", s.Now())
	}
	fired := false
	s.After(500*time.Millisecond, func() { fired = true })
	s.RunFor(time.Second)
	if !fired {
		t.Error("event within RunFor window did not fire")
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() { fired++; s.Stop() })
	s.At(20, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d events, want 1 (Stop should halt the run)", fired)
	}
	// A subsequent Run resumes.
	s.Run()
	if fired != 2 {
		t.Errorf("fired %d events after resume, want 2", fired)
	}
}

func TestOnIdleRefillsQueue(t *testing.T) {
	s := NewScheduler()
	rounds := 0
	s.OnIdle(func() {
		if rounds < 3 {
			rounds++
			s.After(10, func() {})
		}
	})
	s.At(0, func() {})
	s.Run()
	if rounds != 3 {
		t.Errorf("idle hook refilled %d times, want 3", rounds)
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestRunReentrancyPanics(t *testing.T) {
	s := NewScheduler()
	s.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entering Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}

// TestSchedulerOrderProperty checks, over random workloads, that events never
// fire with a decreasing clock and that all non-cancelled events fire.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		count := int(n)%64 + 1
		last := time.Duration(-1)
		fired := 0
		ok := true
		for i := 0; i < count; i++ {
			at := time.Duration(r.Intn(1000))
			s.At(at, func() {
				if at < last {
					ok = false
				}
				last = at
				fired++
			})
		}
		s.Run()
		return ok && fired == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerCancelProperty randomly cancels a subset of events and checks
// exactly the surviving ones fire, in order.
func TestSchedulerCancelProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		const n = 40
		fired := make([]bool, n)
		timers := make([]Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = s.At(time.Duration(r.Intn(100)), func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				cancelled[i] = true
				timers[i].Stop()
			}
		}
		s.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSplitDecorrelates(t *testing.T) {
	g := NewRNG(7)
	a := g.Split("radio")
	g2 := NewRNG(7)
	b := g2.Split("mobility")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("differently-labelled splits matched %d/64 draws", same)
	}
}

func TestRNGRangeBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Range(13.9, 25.0)
		if v < 13.9 || v >= 25.0 {
			t.Fatalf("Range draw %v out of [13.9, 25.0)", v)
		}
	}
	if g.Range(5, 5) != 5 {
		t.Error("degenerate Range(5,5) != 5")
	}
}

func TestRNGDurationBounds(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := g.Duration(time.Millisecond, time.Second)
		if v < time.Millisecond || v >= time.Second {
			t.Fatalf("Duration draw %v out of [1ms, 1s)", v)
		}
	}
	if g.Duration(time.Second, time.Second) != time.Second {
		t.Error("degenerate Duration != lo")
	}
}

func TestRNGBool(t *testing.T) {
	g := NewRNG(3)
	if g.Bool(0) {
		t.Error("Bool(0) = true")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) = false")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestRNGJitter(t *testing.T) {
	g := NewRNG(4)
	if g.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
	for i := 0; i < 100; i++ {
		if v := g.Jitter(time.Millisecond); v < 0 || v >= time.Millisecond {
			t.Fatalf("Jitter draw %v out of [0, 1ms)", v)
		}
	}
}
