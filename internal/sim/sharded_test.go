package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

const la = 10 * time.Microsecond // test lookahead

// traceLog collects (time, shard, label) entries per shard so parallel
// windows never contend; merged in deterministic shard order afterwards.
type traceLog struct {
	mu      sync.Mutex
	byShard map[int][]string
}

func newTraceLog() *traceLog { return &traceLog{byShard: map[int][]string{}} }

func (l *traceLog) add(shard int, at time.Duration, label string) {
	l.mu.Lock()
	l.byShard[shard] = append(l.byShard[shard], fmt.Sprintf("%d@%v:%s", shard, at, label))
	l.mu.Unlock()
}

func (l *traceLog) flat(shards int) []string {
	var out []string
	for i := 0; i < shards; i++ {
		out = append(out, l.byShard[i]...)
	}
	return out
}

// pingPong runs a deterministic cross-shard exchange and returns the per-shard
// trace: shard 1 and shard 2 bounce an incrementing counter back and forth
// through PostTo while the anchor ticks a heartbeat.
func pingPong(workers int) []string {
	x := NewSharded(la, 3, workers)
	log := newTraceLog()

	type ball struct{ n int }
	var volley func(from, to *ShardRuntime, b *ball)
	volley = func(from, to *ShardRuntime, b *ball) {
		log.add(from.ID(), from.Now(), fmt.Sprintf("hit%d", b.n))
		if b.n >= 20 {
			return
		}
		b.n++
		from.PostTo(to, from.Now()+2*la, func(any) { volley(to, from, b) }, nil)
	}

	s1, s2 := x.Shard(1), x.Shard(2)
	s1.At(0, func() { volley(s1, s2, &ball{}) })

	anchor := x.Anchor()
	var beat func()
	beat = func() {
		log.add(0, anchor.Now(), "beat")
		if anchor.Now() < 20*la {
			anchor.After(3*la, beat)
		}
	}
	anchor.At(la, beat)

	x.RunUntil(100 * la)
	return log.flat(3)
}

func TestShardedCrossShardDeterministicAcrossWorkers(t *testing.T) {
	want := pingPong(1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, w := range []int{2, 4, 8} {
		got := pingPong(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: trace length %d != %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trace[%d] = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

func TestShardedAnchorRunsBeforeStrips(t *testing.T) {
	// The anchor bumps a shared epoch at the head of each window; strip
	// shards read it with no synchronization of their own. Under -race this
	// verifies the solo-slot happens-before edge; in any mode it verifies
	// the strips observe the anchor's write from the same window.
	x := NewSharded(la, 4, 4)
	epoch := 0

	var tick func()
	tick = func() {
		epoch++
		if x.Anchor().Now() < 50*la {
			x.Anchor().After(5*la, tick)
		}
	}
	x.Anchor().At(0, tick)

	type obs struct {
		at    time.Duration
		epoch int
	}
	seen := make([][]obs, 4)
	for i := 1; i < 4; i++ {
		sh := x.Shard(i)
		i := i
		var poll func()
		poll = func() {
			seen[i] = append(seen[i], obs{sh.Now(), epoch})
			if sh.Now() < 50*la {
				sh.After(5*la, poll)
			}
		}
		sh.At(0, poll)
	}

	x.RunUntil(60 * la)

	for i := 1; i < 4; i++ {
		if len(seen[i]) == 0 {
			t.Fatalf("shard %d observed nothing", i)
		}
		last := -1
		for _, o := range seen[i] {
			if o.epoch < last {
				t.Fatalf("shard %d saw epoch regress: %v", i, seen[i])
			}
			last = o.epoch
			if o.epoch == 0 {
				t.Fatalf("shard %d read epoch before anchor's same-window write at %v", i, o.at)
			}
		}
	}
}

func TestShardedMailMergeOrder(t *testing.T) {
	// Shards 1..3 all post to the anchor for the same instant within one
	// window; delivery must interleave by (time, source shard, post order)
	// regardless of worker count.
	for _, workers := range []int{1, 3} {
		x := NewSharded(la, 4, workers)
		var got []string
		target := 10 * la
		for i := 1; i < 4; i++ {
			sh := x.Shard(i)
			i := i
			sh.At(0, func() {
				for k := 0; k < 3; k++ {
					k := k
					sh.PostTo(x.Anchor(), target, func(any) {
						got = append(got, fmt.Sprintf("s%dk%d", i, k))
					}, nil)
					// Interleave with a later-time post to prove sorting is
					// by time first, not source order.
					sh.PostTo(x.Anchor(), target+la, func(any) {
						got = append(got, fmt.Sprintf("late-s%dk%d", i, k))
					}, nil)
				}
			})
		}
		x.RunUntil(20 * la)

		want := []string{
			"s1k0", "s1k1", "s1k2", "s2k0", "s2k1", "s2k2", "s3k0", "s3k1", "s3k2",
			"late-s1k0", "late-s1k1", "late-s1k2", "late-s2k0", "late-s2k1", "late-s2k2",
			"late-s3k0", "late-s3k1", "late-s3k2",
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d deliveries, want %d: %v", workers, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: delivery[%d] = %q, want %q (full: %v)", workers, i, got[i], want[i], got)
			}
		}
	}
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	x := NewSharded(la, 2, 1)
	x.Shard(1).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected lookahead violation panic")
			}
			panic(stopRun{})
		}()
		// Posting inside the current window must panic.
		x.Shard(1).PostTo(x.Anchor(), x.Shard(1).Now(), func(any) {}, nil)
	})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopRun); !ok {
					panic(r)
				}
			}
		}()
		x.RunUntil(la)
	}()
}

type stopRun struct{}

func TestShardedSameShardPostInsideWindow(t *testing.T) {
	// A same-shard PostTo is an ordinary AtFunc: no window constraint.
	x := NewSharded(la, 2, 1)
	fired := false
	sh := x.Shard(1)
	sh.At(0, func() {
		sh.PostTo(sh, sh.Now(), func(any) { fired = true }, nil)
	})
	x.RunUntil(la)
	if !fired {
		t.Fatal("same-shard post within window did not fire")
	}
}

func TestShardedForeignDestinationPanics(t *testing.T) {
	x := NewSharded(la, 2, 1)
	y := NewSharded(la, 2, 1)
	x.Shard(1).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected foreign-destination panic")
			}
		}()
		x.Shard(1).PostTo(y.Shard(1), 5*la, func(any) {}, nil)
	})
	x.RunUntil(la)
}

func TestShardedClocksReachDeadline(t *testing.T) {
	x := NewSharded(la, 3, 2)
	x.Shard(1).At(0, func() {})
	deadline := 7 * la
	x.RunUntil(deadline)
	if x.Now() != deadline {
		t.Fatalf("executor now = %v, want %v", x.Now(), deadline)
	}
	for i := 0; i < x.Shards(); i++ {
		if got := x.Shard(i).Now(); got != deadline {
			t.Fatalf("shard %d now = %v, want %v", i, got, deadline)
		}
	}
	// RunFor continues from the new now.
	x.RunFor(3 * la)
	if x.Now() != 10*la {
		t.Fatalf("after RunFor, now = %v, want %v", x.Now(), 10*la)
	}
}

func TestShardedPastDeadlinePanics(t *testing.T) {
	x := NewSharded(la, 2, 1)
	x.RunUntil(5 * la)
	defer func() {
		if recover() == nil {
			t.Error("expected past-deadline panic")
		}
	}()
	x.RunUntil(la)
}

func TestShardedExecutedAndPending(t *testing.T) {
	x := NewSharded(la, 3, 1)
	x.Shard(1).At(0, func() {})
	x.Shard(2).At(0, func() {})
	x.Anchor().At(100*la, func() {})
	if got := x.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	x.RunUntil(la)
	if got := x.Executed(); got != 2 {
		t.Fatalf("executed = %d, want 2", got)
	}
	if got := x.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
}

func TestSerialSchedulerPostTo(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(0, func() {
		s.PostTo(s, 5*time.Microsecond, func(any) { fired = true }, nil)
	})
	s.Run()
	if !fired {
		t.Fatal("serial PostTo did not fire")
	}

	other := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("expected foreign-runtime panic")
		}
	}()
	s.PostTo(other, 10*time.Microsecond, func(any) {}, nil)
}

func TestShardedConstructorValidation(t *testing.T) {
	for _, tc := range []struct {
		la      time.Duration
		shards  int
		wantBad bool
	}{
		{0, 2, true},
		{-la, 2, true},
		{la, 0, true},
		{la, 1, false},
		{la, 9, false},
	} {
		func() {
			defer func() {
				if (recover() != nil) != tc.wantBad {
					t.Errorf("NewSharded(%v, %d, 1): panic mismatch", tc.la, tc.shards)
				}
			}()
			NewSharded(tc.la, tc.shards, 1)
		}()
	}
	// Workers clamp to shard count - 1.
	x := NewSharded(la, 3, 64)
	if x.workers != 2 {
		t.Fatalf("workers = %d, want clamp to 2", x.workers)
	}
}
