package sim

import (
	"strings"
	"testing"
	"time"
)

func TestInvariantCheckerCleanRun(t *testing.T) {
	s := NewScheduler()
	c := NewInvariantChecker(s)
	for i := 1; i <= 5; i++ {
		i := i
		s.After(time.Duration(i)*time.Second, func() {
			if i == 3 {
				s.After(100*time.Millisecond, func() {})
			}
		})
	}
	s.Run()
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
	if len(c.Violations()) != 0 {
		t.Errorf("Violations() = %v, want empty", c.Violations())
	}
}

func TestInvariantCheckerStopThenResume(t *testing.T) {
	s := NewScheduler()
	c := NewInvariantChecker(s)
	s.After(time.Second, func() { s.Stop() })
	s.After(2*time.Second, func() {})
	s.Run()
	// The second event legitimately fires in a later run loop; RunStarted
	// must clear the stop latch.
	s.Run()
	if err := c.Err(); err != nil {
		t.Fatalf("stop + resume reported violations: %v", err)
	}
}

// The scheduler itself never produces these violations, so the negative
// tests drive the checker's observer callbacks directly — proving the
// checker would catch an engine regression rather than vacuously passing.
func TestInvariantCheckerCatchesPostStopEvent(t *testing.T) {
	s := NewScheduler()
	c := NewInvariantChecker(s)
	s.obs.Stopped(time.Second)
	s.obs.EventFired(2 * time.Second)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "after Stop") {
		t.Fatalf("Err() = %v, want post-stop violation", err)
	}
}

func TestInvariantCheckerCatchesBackwardsClock(t *testing.T) {
	s := NewScheduler()
	c := NewInvariantChecker(s)
	s.obs.EventFired(5 * time.Second)
	s.obs.EventFired(3 * time.Second)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("Err() = %v, want backwards-clock violation", err)
	}
}

func TestInvariantCheckerViolationCap(t *testing.T) {
	s := NewScheduler()
	c := NewInvariantChecker(s)
	s.obs.Stopped(0)
	for i := 0; i < 100; i++ {
		s.obs.EventFired(time.Duration(i))
	}
	if n := len(c.Violations()); n > 16 {
		t.Errorf("checker recorded %d violations, cap is 16", n)
	}
}
