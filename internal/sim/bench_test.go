package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures raw event throughput: schedule + fire.
func BenchmarkScheduleFire(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkScheduleBurst measures heap behaviour with many pending events.
func BenchmarkScheduleBurst(b *testing.B) {
	const burst = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		rng := NewRNG(int64(i))
		for j := 0; j < burst; j++ {
			s.At(time.Duration(rng.IntN(1_000_000)), func() {})
		}
		s.Run()
	}
}

// BenchmarkTimerCancel measures schedule-then-cancel (the protocol stack's
// dominant timer pattern).
func BenchmarkTimerCancel(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Second, func() {})
		t.Stop()
	}
}

// BenchmarkRNGDraws measures the decision-stream cost.
func BenchmarkRNGDraws(b *testing.B) {
	g := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Float64()
		_ = g.Jitter(time.Millisecond)
	}
}
