package sim

import (
	"fmt"
	"strings"
	"time"
)

// InvariantChecker observes a scheduler at runtime and records violations of
// the engine's execution contract: the virtual clock never runs backwards,
// and once Stop has been called no further event fires inside the same run
// loop. Tests install one with NewInvariantChecker and assert Err() == nil
// after driving the world; production runs pay nothing.
type InvariantChecker struct {
	last       time.Duration
	fired      bool
	stopped    bool
	violations []string
}

// NewInvariantChecker installs a fresh checker on s, replacing any previous
// observer.
func NewInvariantChecker(s *Scheduler) *InvariantChecker {
	c := &InvariantChecker{}
	s.Observe(Observer{
		RunStarted: func(at time.Duration) {
			// A new run loop legitimately resumes after an earlier Stop.
			c.stopped = false
		},
		EventFired: func(at time.Duration) {
			if c.stopped {
				c.record("event fired at %v after Stop", at)
			}
			if c.fired && at < c.last {
				c.record("clock ran backwards: event at %v after event at %v", at, c.last)
			}
			c.last = at
			c.fired = true
		},
		Stopped: func(at time.Duration) { c.stopped = true },
	})
	return c
}

func (c *InvariantChecker) record(format string, args ...any) {
	if len(c.violations) < 16 { // keep the report readable on cascades
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns every recorded violation in occurrence order.
func (c *InvariantChecker) Violations() []string {
	return append([]string(nil), c.violations...)
}

// Err returns nil when every invariant held, or one error naming all
// violations.
func (c *InvariantChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("sim: %d invariant violation(s): %s",
		len(c.violations), strings.Join(c.violations, "; "))
}
