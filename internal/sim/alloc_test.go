package sim

import (
	"testing"
	"time"
)

// allocBudget asserts an AllocsPerRun measurement against a pinned budget.
// The budgets are the regression fence for the event-pooling work: raising
// one needs a profile showing why. Skipped under the race detector, whose
// instrumentation inflates allocation counts.
func allocBudget(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	if got := testing.AllocsPerRun(200, fn); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.1f", name, got, budget)
	}
}

// TestAllocsScheduleFire pins the steady-state schedule+fire path at zero
// allocations: event records come from the free list and the Timer handle is
// a stack value.
func TestAllocsScheduleFire(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
	allocBudget(t, "schedule+fire", 0, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
}

// TestAllocsScheduleCancel pins schedule+Stop at zero allocations.
func TestAllocsScheduleCancel(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 8; i++ {
		tm := s.After(time.Second, fn)
		tm.Stop()
	}
	allocBudget(t, "schedule+cancel", 0, func() {
		tm := s.After(time.Second, fn)
		tm.Stop()
	})
}

// TestAllocsAfterFunc pins the arg-style path at zero allocations when the
// argument is a pointer (boxing a pointer into an interface does not
// allocate).
func TestAllocsAfterFunc(t *testing.T) {
	s := NewScheduler()
	type payload struct{ n int }
	p := &payload{}
	fn := func(a any) { a.(*payload).n++ }
	for i := 0; i < 8; i++ {
		s.AfterFunc(time.Microsecond, fn, p)
		s.Step()
	}
	allocBudget(t, "AfterFunc+fire", 0, func() {
		s.AfterFunc(time.Microsecond, fn, p)
		s.Step()
	})
	if p.n == 0 {
		t.Fatal("callback never ran")
	}
}

// TestStaleTimerAfterReuse proves the generation fence: a Timer whose event
// fired must stay inert even after its record has been recycled into a new
// pending event — Stop must not cancel the record's next life.
func TestStaleTimerAfterReuse(t *testing.T) {
	s := NewScheduler()
	fired := 0
	old := s.After(time.Millisecond, func() {})
	s.Step() // fires; record returns to the pool
	tm := s.After(time.Millisecond, func() { fired++ })
	if old.Stop() {
		t.Error("stale Timer.Stop() = true after its event fired")
	}
	if old.Active() {
		t.Error("stale Timer.Active() = true")
	}
	if !tm.Active() {
		t.Fatal("new event lost: stale handle cancelled a recycled record")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("recycled event fired %d times, want 1", fired)
	}
}

// TestSharedEventPoolAcrossSchedulers exercises the cross-replication reuse
// path: a second scheduler on the same pool starts with a warmed free list,
// and its behaviour is identical to a private-pool scheduler's.
func TestSharedEventPoolAcrossSchedulers(t *testing.T) {
	pool := NewEventPool()
	run := func(s *Scheduler) []time.Duration {
		var got []time.Duration
		for _, d := range []time.Duration{30, 10, 20} {
			s.At(d, func() { got = append(got, s.Now()) })
		}
		s.Run()
		return got
	}
	first := run(NewSchedulerWithPool(pool))
	second := run(NewSchedulerWithPool(pool))
	want := []time.Duration{10, 20, 30}
	for i, w := range want {
		if first[i] != w || second[i] != w {
			t.Fatalf("order diverged: first %v second %v want %v", first, second, want)
		}
	}
	if len(pool.free) == 0 {
		t.Error("pool retained no records after two runs")
	}
}

// TestSchedulerOrderWithPooling re-checks FIFO-among-equal-times under heavy
// recycle pressure: interleaved schedule/fire/cancel cycles must preserve
// (time, seq) ordering exactly.
func TestSchedulerOrderWithPooling(t *testing.T) {
	s := NewScheduler()
	var got []int
	// Round 1 populates and drains the pool.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i%7)*time.Millisecond, func() {})
	}
	s.Run()
	// Round 2: equal-time events must fire in schedule order even though
	// their records come back from the free list in LIFO order.
	base := s.Now()
	for i := 0; i < 32; i++ {
		i := i
		s.At(base+time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time FIFO broken at %d: got %v", i, got)
		}
	}
}
