//go:build race

package sim

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-budget tests consult it: race instrumentation inflates
// allocation counts, so AllocsPerRun assertions only run in plain builds.
const RaceEnabled = true
