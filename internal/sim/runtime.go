package sim

import "time"

// Runtime is the scheduling surface simulation components program against:
// the virtual clock plus the four ways to schedule work. *Scheduler
// implements it directly — the serial engine every run used before intra-run
// parallelism existed — and *ShardRuntime implements it for one shard of a
// sharded run. Agents hold a Runtime instead of a concrete *Scheduler so one
// world can place different agents on different shards without the protocol
// code knowing.
type Runtime interface {
	// Now returns the current virtual time of this runtime's clock.
	Now() time.Duration
	// At schedules fn at absolute virtual time t on this runtime.
	At(t time.Duration, fn func()) Timer
	// After schedules fn d from now on this runtime.
	After(d time.Duration, fn func()) Timer
	// AtFunc schedules fn(arg) at absolute virtual time t (the
	// allocation-free hot-path variant, see Scheduler.AtFunc).
	AtFunc(t time.Duration, fn func(any), arg any) Timer
	// AfterFunc schedules fn(arg) d from now.
	AfterFunc(d time.Duration, fn func(any), arg any) Timer
}

// CrossPoster is the optional cross-shard scheduling extension of Runtime.
// PostTo schedules fn(arg) at absolute time at on dst, which may belong to a
// different shard of the same sharded run. The radio layer uses it to route
// frame deliveries to the receiving device's home shard; a serial *Scheduler
// satisfies it trivially because every component shares the one scheduler.
//
// Cross-shard posts are subject to the run's lookahead: at must not precede
// the end of the window currently executing, or the conservative
// synchronization protocol would be violated (the sharded runtime panics).
type CrossPoster interface {
	PostTo(dst Runtime, at time.Duration, fn func(any), arg any)
}

var (
	_ Runtime     = (*Scheduler)(nil)
	_ CrossPoster = (*Scheduler)(nil)
)

// PostTo implements CrossPoster for the serial scheduler: dst is necessarily
// this same scheduler (a serial run has exactly one), so the post is a plain
// AtFunc. No Timer is returned — posts are fire-and-forget by design, which
// is what lets the sharded implementation route them through mailboxes.
func (s *Scheduler) PostTo(dst Runtime, at time.Duration, fn func(any), arg any) {
	if dst != Runtime(s) {
		panic("sim: serial PostTo with a foreign destination runtime")
	}
	s.AtFunc(at, fn, arg)
}
