package sim

import (
	"testing"
	"time"
)

// Edge cases the sharded executor stresses: repeated idle-hook re-arming,
// deadline ties, Stop raced against Step, and pool reuse across run calls.

func TestOnIdleReArming(t *testing.T) {
	s := NewScheduler()
	var drains int
	var fired []int
	s.OnIdle(func() {
		drains++
		if drains <= 3 {
			n := drains
			s.After(time.Duration(n)*time.Millisecond, func() { fired = append(fired, n) })
		}
	})
	s.At(0, func() { fired = append(fired, 0) })
	s.Run()
	// The hook refills the queue three times; the fourth drain adds nothing
	// and ends the run.
	if drains != 4 {
		t.Fatalf("idle hook ran %d times, want 4", drains)
	}
	want := []int{0, 1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestOnIdleMultipleHooksRegistrationOrder(t *testing.T) {
	s := NewScheduler()
	var order []string
	rearmed := false
	s.OnIdle(func() { order = append(order, "a") })
	s.OnIdle(func() {
		order = append(order, "b")
		if !rearmed {
			rearmed = true
			s.After(time.Millisecond, func() { order = append(order, "ev") })
		}
	})
	s.Run()
	want := []string{"a", "b", "ev", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestRunUntilSameTimestampAtDeadline(t *testing.T) {
	s := NewScheduler()
	deadline := 10 * time.Millisecond
	var fired []int
	// Several events exactly at the deadline, plus one just past it; the
	// deadline batch fires in FIFO order, the later one stays pending.
	for i := 0; i < 5; i++ {
		i := i
		s.At(deadline, func() { fired = append(fired, i) })
	}
	s.At(deadline+1, func() { fired = append(fired, 99) })
	s.RunUntil(deadline)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want exactly the 5 deadline events", fired)
	}
	for i := 0; i < 5; i++ {
		if fired[i] != i {
			t.Fatalf("deadline batch out of FIFO order: %v", fired)
		}
	}
	if s.Now() != deadline {
		t.Fatalf("now = %v, want %v", s.Now(), deadline)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the one post-deadline event", s.Pending())
	}
	// An event scheduled *during* the deadline batch for the same instant
	// also fires within the same RunUntil.
	s2 := NewScheduler()
	var chained bool
	s2.At(deadline, func() {
		s2.At(deadline, func() { chained = true })
	})
	s2.RunUntil(deadline)
	if !chained {
		t.Fatal("same-timestamp event scheduled at the deadline did not fire")
	}
}

func TestStopDuringStep(t *testing.T) {
	s := NewScheduler()
	var seen []int
	s.At(1, func() { seen = append(seen, 1); s.Stop() })
	s.At(2, func() { seen = append(seen, 2) })

	// Stop set via a manual Step is cleared when a run starts, so the
	// remaining event still fires.
	if !s.Step() {
		t.Fatal("Step fired nothing")
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("seen %v after Step", seen)
	}
	s.Run()
	if len(seen) != 2 || seen[1] != 2 {
		t.Fatalf("seen %v after Run; Stop from a bare Step must not stick", seen)
	}

	// Stop fired from inside a run halts it with later events intact and
	// the clock parked at the stopping event's time, not the deadline.
	s = NewScheduler()
	seen = nil
	s.At(1, func() { seen = append(seen, 1); s.Stop() })
	s.At(2, func() { seen = append(seen, 2) })
	s.RunUntil(10)
	if len(seen) != 1 {
		t.Fatalf("seen %v, want only the stopping event", seen)
	}
	if s.Now() != 1 {
		t.Fatalf("now = %v, want clock parked at the stopping event", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the undelivered event retained", s.Pending())
	}
	// The next run resumes cleanly.
	s.RunUntil(10)
	if len(seen) != 2 {
		t.Fatalf("seen %v after resuming", seen)
	}
}

func TestPoolReuseAcrossRunCalls(t *testing.T) {
	pool := NewEventPool()
	s := NewSchedulerWithPool(pool)
	const n = 32
	for i := 0; i < n; i++ {
		s.At(time.Duration(i), func() {})
	}
	s.Run()
	if got := len(pool.free); got != n {
		t.Fatalf("free list has %d records after first run, want %d", got, n)
	}

	// A second batch on the same scheduler drains the free list instead of
	// allocating.
	for i := 0; i < n; i++ {
		s.After(time.Duration(i+1), func() {})
	}
	if got := len(pool.free); got != 0 {
		t.Fatalf("free list has %d records after rescheduling, want 0 (all reused)", got)
	}
	s.Run()

	// A fresh scheduler sharing the pool also reuses the warmed-up records,
	// and generation fencing keeps old Timer handles inert across the reuse.
	s2 := NewSchedulerWithPool(pool)
	var timers []Timer
	for i := 0; i < n; i++ {
		timers = append(timers, s2.At(time.Duration(i), func() {}))
	}
	if got := len(pool.free); got != 0 {
		t.Fatalf("free list has %d records on the second scheduler, want 0", got)
	}
	s2.Run()
	for i := range timers {
		if timers[i].Active() {
			t.Fatalf("timer %d still active after its event fired", i)
		}
		if timers[i].Stop() {
			t.Fatalf("timer %d Stop claimed to cancel a fired event", i)
		}
	}
	if got := len(pool.free); got != n {
		t.Fatalf("free list has %d records after second scheduler ran, want %d", got, n)
	}
}
