package sim

import (
	"hash/fnv"
	"io"
	"math/rand"
	"time"
)

// RNG is a deterministic random stream for simulation decisions. Distinct
// protocol layers should use distinct streams (via Split) so that adding a
// random draw in one layer does not perturb another layer's sequence.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from this stream's state and a
// label. Two children with different labels are decorrelated; the same label
// drawn at the same point in the parent sequence replays identically.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()) ^ g.r.Int63())
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform uint64.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Range returns a uniform draw in [lo, hi). It panics if hi < lo; lo == hi
// returns lo.
func (g *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("sim: RNG.Range with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + g.r.Float64()*(hi-lo)
}

// Duration returns a uniform draw in [lo, hi). It panics if hi < lo; lo == hi
// returns lo.
func (g *RNG) Duration(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic("sim: RNG.Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)))
}

// Jitter returns a uniform draw in [0, max).
func (g *RNG) Jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(g.r.Int63n(int64(max)))
}

// Reader returns an io.Reader view of the stream, for seeding key
// generation deterministically.
func (g *RNG) Reader() io.Reader { return rngReader{g} }

type rngReader struct{ g *RNG }

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.g.r.Intn(256))
	}
	return len(p), nil
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
