package metrics

import (
	"math"
	"math/bits"
	"sort"
	"time"
)

// streamExactCap is how many detection latencies a Stream keeps exactly.
// Up to this many, Stream.Report reproduces Summary.Report bit for bit;
// beyond it the latencies spill into a fixed-size log-linear histogram and
// the P95 becomes an upper bound within 1/64 relative error.
const streamExactCap = 4096

// histBuckets covers every positive int64 nanosecond value: 64 unit buckets
// below 64ns, then 64 sub-buckets per power of two up to 2^63.
const histBuckets = 64 * 58

// Stream aggregates outcomes incrementally in O(1) memory. Summary retains
// a slice entry per detecting run, so a metro-scale sweep's aggregation
// state grows with the replication count; Stream folds each outcome into
// commutative counters (exact — they are sums, extrema and a confusion
// matrix) plus a bounded latency sketch. Aside from the P95 of a sweep with
// more than streamExactCap verdicts, every Report field is bit-identical to
// the retained-state path; the equivalence tests in this package hold it so.
//
// Stream is not safe for concurrent use; sweep engines fold under their
// collection lock (see scenario.RunSweepStream).
type Stream struct {
	runs, tp, fn, fp, tn int
	preventedOnly        int
	dataSent             int
	dataDelivered        int

	pkMin, pkMax, pkSum, pkN int

	latSum   time.Duration
	latN     int
	latExact []time.Duration // exact values while latN <= streamExactCap
	latHist  []uint64        // log-linear sketch once the reservoir spills
}

// NewStream returns an empty streaming aggregator.
func NewStream() *Stream { return &Stream{} }

// Add folds one outcome into the stream. After the latency reservoir is
// warm it allocates nothing.
func (s *Stream) Add(o Outcome) {
	s.runs++
	tp, fn, fp, tn := o.Classify()
	if tp {
		s.tp++
	}
	if fn {
		s.fn++
	}
	if fp {
		s.fp++
	}
	if tn {
		s.tn++
	}
	if o.AttackerPresent && !o.Detected && o.Prevented {
		s.preventedOnly++
	}
	if o.DetectionPackets > 0 {
		if s.pkN == 0 || o.DetectionPackets < s.pkMin {
			s.pkMin = o.DetectionPackets
		}
		if o.DetectionPackets > s.pkMax {
			s.pkMax = o.DetectionPackets
		}
		s.pkSum += o.DetectionPackets
		s.pkN++
	}
	if o.DetectionLatency > 0 {
		s.addLatency(o.DetectionLatency)
	}
	s.dataSent += o.DataSent
	s.dataDelivered += o.DataDelivered
}

func (s *Stream) addLatency(d time.Duration) {
	s.latSum += d
	s.latN++
	if s.latHist == nil {
		if s.latN <= streamExactCap {
			if s.latExact == nil {
				s.latExact = make([]time.Duration, 0, streamExactCap)
			}
			s.latExact = append(s.latExact, d)
			return
		}
		// The reservoir just spilled: fold what it holds into the sketch
		// and aggregate there from now on.
		s.latHist = make([]uint64, histBuckets)
		for _, v := range s.latExact {
			s.latHist[histBucket(v)]++
		}
		s.latExact = nil
	}
	s.latHist[histBucket(d)]++
}

// histBucket maps a positive duration to its sketch bucket.
func histBucket(d time.Duration) int {
	v := int64(d)
	if v < 1 {
		v = 1
	}
	if v < 64 {
		return int(v)
	}
	e := bits.Len64(uint64(v)) // 7..63
	return 64*(e-6) + int((v>>(uint(e)-7))&63)
}

// bucketUpper returns the largest duration mapping to bucket b — reporting
// the bucket's upper edge keeps the sketched percentile an upper bound on
// the exact one, within 1/64 relative error.
func bucketUpper(b int) time.Duration {
	if b < 64 {
		return time.Duration(b)
	}
	e := uint(b/64 + 6)
	sub := uint64(b % 64)
	hi := (64 + sub + 1) << (e - 7)
	if hi == 0 || hi-1 > math.MaxInt64 { // 2^63 wrapped or exceeded
		return math.MaxInt64
	}
	return time.Duration(hi - 1)
}

// Runs returns how many outcomes have been folded in.
func (s *Stream) Runs() int { return s.runs }

// LatencyPercentile mirrors Summary.LatencyPercentile: exact nearest-rank
// while the reservoir holds, the sketch's bucket upper edge after it spills.
func (s *Stream) LatencyPercentile(p float64) time.Duration {
	if s.latN == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(s.latN)))
	if rank < 1 {
		rank = 1
	}
	if s.latHist == nil {
		sorted := append([]time.Duration(nil), s.latExact...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[rank-1]
	}
	cum := 0
	for b, n := range s.latHist {
		cum += int(n)
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Report projects the stream into the same flattened form as
// Summary.Report.
func (s *Stream) Report() Report {
	var pkMean float64
	if s.pkN > 0 {
		pkMean = float64(s.pkSum) / float64(s.pkN)
	}
	var meanLat time.Duration
	if s.latN > 0 {
		meanLat = s.latSum / time.Duration(s.latN)
	}
	return Report{
		Runs:                 s.runs,
		TP:                   s.tp,
		FN:                   s.fn,
		FP:                   s.fp,
		TN:                   s.tn,
		Accuracy:             ratio(s.tp+s.tn, s.runs),
		TPRate:               ratio(s.tp, s.tp+s.fn),
		FNRate:               ratio(s.fn, s.tp+s.fn),
		FPRate:               ratio(s.fp, s.runs),
		DeliveryRatio:        ratio(s.dataDelivered, s.dataSent),
		PreventedOnly:        s.preventedOnly,
		DetectionPacketsMin:  s.pkMin,
		DetectionPacketsMean: pkMean,
		DetectionPacketsMax:  s.pkMax,
		MeanLatency:          meanLat,
		P95Latency:           s.LatencyPercentile(95),
	}
}
