// Package metrics defines the per-run outcome record and the aggregation
// used to reproduce the paper's Figure 4 (detection accuracy, true/false
// positive and negative rates per attacker cluster) and Figure 5 (detection
// packet counts per scenario class).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Outcome is everything one simulation run reports.
type Outcome struct {
	// Seed reproduces the run.
	Seed int64

	// AttackerPresent is whether the run contained a black hole.
	AttackerPresent bool
	// Cooperative is whether the attack was a two-node cooperative one.
	Cooperative bool
	// AttackerCluster is the 1-based cluster the attacker started in.
	AttackerCluster int

	// AttackersPresent counts every hostile node in the run (primary,
	// extra black holes; accomplices are counted with their primaries).
	AttackersPresent int
	// AttackersDetected counts how many of them were convicted.
	AttackersDetected int

	// Detected is whether the primary attacker was convicted and isolated.
	Detected bool
	// TeammateDetected is whether the cooperative accomplice was convicted.
	TeammateDetected bool
	// Prevented is whether the source avoided routing through the black
	// hole even without a conviction.
	Prevented bool
	// FalseAccusations counts legitimate nodes convicted as malicious.
	FalseAccusations int

	// DetectionPackets is the Figure 5 quantity for the run's primary case
	// (0 when no detection ran).
	DetectionPackets int
	// IsolationPackets counts revocation/blacklist traffic.
	IsolationPackets int

	// DataSent/DataDelivered measure application traffic after route
	// establishment.
	DataSent      int
	DataDelivered int

	// AirFrames/AirBytes total every radio transmission in the run (the
	// "lightweight" accounting: BlackDP's added control traffic is the
	// delta against a verification-off run of the same world).
	AirFrames uint64
	AirBytes  uint64

	// AirOffered/AirDelivered/AirLost break out the per-receiver frame-copy
	// ledger (offered = delivered + lost + still-in-flight at extraction
	// time); AirDuplicated counts extra copies spawned by fault injection.
	// Together they quantify how harsh the injected channel actually was.
	AirOffered    uint64
	AirDelivered  uint64
	AirLost       uint64
	AirDuplicated uint64

	// DReqRetransmits/Failovers count the source's robustness actions:
	// d_req resends after verdict timeouts and head-failover attempts after
	// exhausted retries. Both stay 0 in a fault-free run.
	DReqRetransmits uint64
	Failovers       uint64

	// EstablishStatus is the source's final establishment status string.
	EstablishStatus string
	// DetectionLatency is the time from d_req to verdict (0 if none).
	DetectionLatency time.Duration
	// Duration is total simulated time consumed.
	Duration time.Duration
}

// Classify buckets the outcome into the confusion matrix the paper reports.
// A run with an attacker is a true positive when the attacker was detected,
// else a false negative. A run without an attacker is a false positive when
// anyone was convicted, else a true negative. False accusations also count
// as false positives regardless of attacker presence.
func (o Outcome) Classify() (tp, fn, fp, tn bool) {
	if o.FalseAccusations > 0 {
		fp = true
	}
	if o.AttackerPresent {
		if o.Detected {
			tp = true
		} else {
			fn = true
		}
		return tp, fn, fp, tn
	}
	if o.FalseAccusations == 0 {
		tn = true
	}
	return tp, fn, fp, tn
}

// Summary aggregates outcomes into the paper's rates.
type Summary struct {
	Runs int
	TP   int
	FN   int
	FP   int
	TN   int

	PreventedOnly    int // attacker present, not detected, but blocked
	DetectionPackets []int
	Latencies        []time.Duration
	DataSent         int
	DataDelivered    int
}

// Add folds one outcome into the summary.
func (s *Summary) Add(o Outcome) {
	s.Runs++
	tp, fn, fp, tn := o.Classify()
	if tp {
		s.TP++
	}
	if fn {
		s.FN++
	}
	if fp {
		s.FP++
	}
	if tn {
		s.TN++
	}
	if o.AttackerPresent && !o.Detected && o.Prevented {
		s.PreventedOnly++
	}
	if o.DetectionPackets > 0 {
		s.DetectionPackets = append(s.DetectionPackets, o.DetectionPackets)
	}
	if o.DetectionLatency > 0 {
		s.Latencies = append(s.Latencies, o.DetectionLatency)
	}
	s.DataSent += o.DataSent
	s.DataDelivered += o.DataDelivered
}

// Aggregate summarises a batch of outcomes.
func Aggregate(outcomes []Outcome) Summary {
	var s Summary
	for _, o := range outcomes {
		s.Add(o)
	}
	return s
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Accuracy is (TP+TN) / runs — with an attacker in every run this equals
// the detection rate, matching the paper's "detection accuracy".
func (s Summary) Accuracy() float64 { return ratio(s.TP+s.TN, s.Runs) }

// TPRate is TP / (TP+FN): the fraction of attacks detected.
func (s Summary) TPRate() float64 { return ratio(s.TP, s.TP+s.FN) }

// FNRate is FN / (TP+FN): the fraction of attacks missed.
func (s Summary) FNRate() float64 { return ratio(s.FN, s.TP+s.FN) }

// FPRate is FP / runs: the fraction of runs convicting an innocent node.
func (s Summary) FPRate() float64 { return ratio(s.FP, s.Runs) }

// DeliveryRatio is delivered/sent application data.
func (s Summary) DeliveryRatio() float64 { return ratio(s.DataDelivered, s.DataSent) }

// PacketStats returns min/mean/max of per-run detection packet counts.
func (s Summary) PacketStats() (min int, mean float64, max int) {
	if len(s.DetectionPackets) == 0 {
		return 0, 0, 0
	}
	min, max = s.DetectionPackets[0], s.DetectionPackets[0]
	sum := 0
	for _, n := range s.DetectionPackets {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		sum += n
	}
	return min, float64(sum) / float64(len(s.DetectionPackets)), max
}

// LatencyPercentile returns the p-th percentile (0 < p <= 100) of detection
// latencies across runs that produced a verdict, using nearest-rank.
func (s Summary) LatencyPercentile(p float64) time.Duration {
	if len(s.Latencies) == 0 || p <= 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// PacketPercentile returns the p-th percentile of per-run detection packet
// counts, using nearest-rank.
func (s Summary) PacketPercentile(p float64) int {
	if len(s.DetectionPackets) == 0 || p <= 0 {
		return 0
	}
	sorted := append([]int(nil), s.DetectionPackets...)
	sort.Ints(sorted)
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// MeanLatency returns the average detection latency across runs that
// produced a verdict.
func (s Summary) MeanLatency() time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.Latencies {
		sum += l
	}
	return sum / time.Duration(len(s.Latencies))
}

// Report is the JSON-friendly projection of a Summary: the confusion matrix
// plus every derived rate, computed once with the division-by-zero guards
// applied (a rate whose denominator is zero reports 0). The serve subsystem
// embeds it in job results so clients get the paper's rates without
// re-deriving them; durations serialise as nanoseconds, like Config.
type Report struct {
	Runs int `json:"runs"`
	TP   int `json:"tp"`
	FN   int `json:"fn"`
	FP   int `json:"fp"`
	TN   int `json:"tn"`

	Accuracy      float64 `json:"accuracy"`
	TPRate        float64 `json:"tp_rate"`
	FNRate        float64 `json:"fn_rate"`
	FPRate        float64 `json:"fp_rate"`
	DeliveryRatio float64 `json:"delivery_ratio"`

	PreventedOnly int `json:"prevented_only"`

	DetectionPacketsMin  int     `json:"detection_packets_min"`
	DetectionPacketsMean float64 `json:"detection_packets_mean"`
	DetectionPacketsMax  int     `json:"detection_packets_max"`

	MeanLatency time.Duration `json:"mean_latency"`
	P95Latency  time.Duration `json:"p95_latency"`
}

// Report projects the summary into its flattened form.
func (s Summary) Report() Report {
	min, mean, max := s.PacketStats()
	return Report{
		Runs:                 s.Runs,
		TP:                   s.TP,
		FN:                   s.FN,
		FP:                   s.FP,
		TN:                   s.TN,
		Accuracy:             s.Accuracy(),
		TPRate:               s.TPRate(),
		FNRate:               s.FNRate(),
		FPRate:               s.FPRate(),
		DeliveryRatio:        s.DeliveryRatio(),
		PreventedOnly:        s.PreventedOnly,
		DetectionPacketsMin:  min,
		DetectionPacketsMean: mean,
		DetectionPacketsMax:  max,
		MeanLatency:          s.MeanLatency(),
		P95Latency:           s.LatencyPercentile(95),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("runs=%d acc=%.1f%% tp=%.1f%% fn=%.1f%% fp=%.1f%%",
		s.Runs, 100*s.Accuracy(), 100*s.TPRate(), 100*s.FNRate(), 100*s.FPRate())
}

// ByCluster groups outcomes by attacker cluster — the x-axis of Figure 4.
func ByCluster(outcomes []Outcome) map[int]Summary {
	grouped := make(map[int][]Outcome)
	for _, o := range outcomes {
		grouped[o.AttackerCluster] = append(grouped[o.AttackerCluster], o)
	}
	out := make(map[int]Summary, len(grouped))
	for c, os := range grouped {
		out[c] = Aggregate(os)
	}
	return out
}
