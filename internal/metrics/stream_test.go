package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// randomOutcome draws a plausible outcome mix: attacker runs, clean runs,
// false accusations, detections with packet counts and latencies.
func randomOutcome(rng *rand.Rand) Outcome {
	o := Outcome{
		AttackerPresent: rng.Intn(4) != 0,
		DataSent:        rng.Intn(20),
	}
	o.DataDelivered = rng.Intn(o.DataSent + 1)
	if o.AttackerPresent {
		o.Detected = rng.Intn(3) != 0
		if o.Detected {
			o.DetectionPackets = 5 + rng.Intn(40)
			o.DetectionLatency = time.Duration(1+rng.Intn(5_000_000_000)) * time.Nanosecond
		} else {
			o.Prevented = rng.Intn(2) == 0
		}
	}
	if rng.Intn(20) == 0 {
		o.FalseAccusations = 1
	}
	return o
}

// TestStreamMatchesSummary holds Stream.Report bit-identical to the
// retained-state Summary.Report while the latency reservoir is exact.
func TestStreamMatchesSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sum Summary
	st := NewStream()
	for i := 0; i < 3000; i++ {
		o := randomOutcome(rng)
		sum.Add(o)
		st.Add(o)
	}
	if got, want := st.Report(), sum.Report(); got != want {
		t.Fatalf("stream report diverged:\n got %+v\nwant %+v", got, want)
	}
	if st.Runs() != sum.Runs {
		t.Fatalf("Runs() = %d, want %d", st.Runs(), sum.Runs)
	}
}

// TestStreamSketchedP95 checks the spilled-reservoir path: every field but
// the P95 stays exact, and the sketched P95 is an upper bound on the exact
// one within 1/64 relative error.
func TestStreamSketchedP95(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sum Summary
	st := NewStream()
	for i := 0; i < 3*streamExactCap; i++ {
		o := Outcome{
			AttackerPresent:  true,
			Detected:         true,
			DetectionPackets: 1 + rng.Intn(50),
			DetectionLatency: time.Duration(1 + rng.Int63n(int64(10*time.Second))),
		}
		sum.Add(o)
		st.Add(o)
	}
	got, want := st.Report(), sum.Report()
	exact, sketched := want.P95Latency, got.P95Latency
	if sketched < exact {
		t.Errorf("sketched P95 %v below exact %v", sketched, exact)
	}
	if lim := exact + exact/64; sketched > lim {
		t.Errorf("sketched P95 %v beyond 1/64 bound %v (exact %v)", sketched, lim, exact)
	}
	got.P95Latency, want.P95Latency = 0, 0
	if got != want {
		t.Fatalf("non-P95 fields diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamBucketRoundTrip pins the sketch's error bound: for any positive
// duration, the bucket's upper edge is >= the value and within 1/64 of it.
func TestStreamBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	check := func(v time.Duration) {
		t.Helper()
		up := bucketUpper(histBucket(v))
		if up < v {
			t.Fatalf("bucketUpper(histBucket(%d)) = %d < value", v, up)
		}
		if v >= 64 && uint64(up) > uint64(v)+uint64(v)/64 {
			t.Fatalf("bucketUpper(histBucket(%d)) = %d beyond 1/64 bound", v, up)
		}
	}
	for _, v := range []time.Duration{1, 2, 63, 64, 65, 127, 128, 1 << 20, 1<<62 + 12345, 1<<63 - 1} {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		check(time.Duration(1 + rng.Int63()))
	}
}

// TestStreamAddAllocs pins the hot path: once the reservoir has spilled into
// the fixed-size sketch, folding an outcome allocates nothing.
func TestStreamAddAllocs(t *testing.T) {
	st := NewStream()
	warm := Outcome{AttackerPresent: true, Detected: true, DetectionPackets: 7, DetectionLatency: time.Second}
	for i := 0; i < streamExactCap+2; i++ {
		st.Add(warm)
	}
	if n := testing.AllocsPerRun(100, func() { st.Add(warm) }); n != 0 {
		t.Fatalf("Add allocated %.1f times per run after warm-up", n)
	}
}

// TestStreamBoundedRetention is the memory regression test: unlike Summary,
// whose latency and packet slices grow with every detecting run, the
// stream's state stays at the fixed sketch size no matter how many outcomes
// are folded in.
func TestStreamBoundedRetention(t *testing.T) {
	st := NewStream()
	o := Outcome{AttackerPresent: true, Detected: true, DetectionPackets: 3, DetectionLatency: time.Millisecond}
	for i := 0; i < 100*streamExactCap; i++ {
		st.Add(o)
	}
	if st.latExact != nil {
		t.Errorf("exact reservoir retained after spill: %d entries", len(st.latExact))
	}
	if len(st.latHist) != histBuckets {
		t.Errorf("sketch size = %d buckets, want %d", len(st.latHist), histBuckets)
	}
	if st.latN != 100*streamExactCap {
		t.Errorf("latN = %d, want %d", st.latN, 100*streamExactCap)
	}
}
