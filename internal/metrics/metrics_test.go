package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		name           string
		o              Outcome
		tp, fn, fp, tn bool
	}{
		{"attacker detected", Outcome{AttackerPresent: true, Detected: true}, true, false, false, false},
		{"attacker missed", Outcome{AttackerPresent: true}, false, true, false, false},
		{"clean run", Outcome{}, false, false, false, true},
		{"innocent convicted", Outcome{FalseAccusations: 1}, false, false, true, false},
		{"attacker detected plus innocent convicted", Outcome{AttackerPresent: true, Detected: true, FalseAccusations: 1}, true, false, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tp, fn, fp, tn := tt.o.Classify()
			if tp != tt.tp || fn != tt.fn || fp != tt.fp || tn != tt.tn {
				t.Errorf("Classify() = %v %v %v %v, want %v %v %v %v",
					tp, fn, fp, tn, tt.tp, tt.fn, tt.fp, tt.tn)
			}
		})
	}
}

func TestAggregateRates(t *testing.T) {
	outcomes := []Outcome{
		{AttackerPresent: true, Detected: true, DetectionPackets: 6, DetectionLatency: time.Second},
		{AttackerPresent: true, Detected: true, DetectionPackets: 8, DetectionLatency: 3 * time.Second},
		{AttackerPresent: true, Prevented: true},
		{AttackerPresent: true},
	}
	s := Aggregate(outcomes)
	if s.Runs != 4 || s.TP != 2 || s.FN != 2 || s.FP != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", s.Accuracy())
	}
	if s.TPRate() != 0.5 || s.FNRate() != 0.5 {
		t.Errorf("TP/FN = %v/%v, want 0.5/0.5", s.TPRate(), s.FNRate())
	}
	if s.FPRate() != 0 {
		t.Errorf("FPRate = %v, want 0", s.FPRate())
	}
	if s.PreventedOnly != 1 {
		t.Errorf("PreventedOnly = %d, want 1", s.PreventedOnly)
	}
	min, mean, max := s.PacketStats()
	if min != 6 || max != 8 || mean != 7 {
		t.Errorf("PacketStats = %d/%v/%d", min, mean, max)
	}
	if s.MeanLatency() != 2*time.Second {
		t.Errorf("MeanLatency = %v", s.MeanLatency())
	}
}

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.Accuracy() != 0 || s.TPRate() != 0 || s.FNRate() != 0 || s.FPRate() != 0 {
		t.Error("empty summary rates not zero")
	}
	if s.MeanLatency() != 0 {
		t.Error("empty MeanLatency not zero")
	}
	if min, mean, max := s.PacketStats(); min != 0 || mean != 0 || max != 0 {
		t.Error("empty PacketStats not zero")
	}
	if s.DeliveryRatio() != 0 {
		t.Error("empty DeliveryRatio not zero")
	}
}

func TestDeliveryRatio(t *testing.T) {
	s := Aggregate([]Outcome{
		{DataSent: 10, DataDelivered: 7},
		{DataSent: 10, DataDelivered: 3},
	})
	if s.DeliveryRatio() != 0.5 {
		t.Errorf("DeliveryRatio = %v, want 0.5", s.DeliveryRatio())
	}
}

func TestByCluster(t *testing.T) {
	outcomes := []Outcome{
		{AttackerPresent: true, AttackerCluster: 1, Detected: true},
		{AttackerPresent: true, AttackerCluster: 1, Detected: true},
		{AttackerPresent: true, AttackerCluster: 9},
	}
	grouped := ByCluster(outcomes)
	if len(grouped) != 2 {
		t.Fatalf("groups = %d, want 2", len(grouped))
	}
	if grouped[1].Accuracy() != 1 {
		t.Errorf("cluster 1 accuracy = %v", grouped[1].Accuracy())
	}
	if grouped[9].FNRate() != 1 {
		t.Errorf("cluster 9 FN rate = %v", grouped[9].FNRate())
	}
}

func TestPercentiles(t *testing.T) {
	var outcomes []Outcome
	for i := 1; i <= 10; i++ {
		outcomes = append(outcomes, Outcome{
			AttackerPresent:  true,
			Detected:         true,
			DetectionPackets: i,
			DetectionLatency: time.Duration(i) * time.Millisecond,
		})
	}
	s := Aggregate(outcomes)
	tests := []struct {
		p        float64
		wantPkts int
	}{
		{10, 1}, {50, 5}, {90, 9}, {100, 10}, {150, 10},
	}
	for _, tt := range tests {
		if got := s.PacketPercentile(tt.p); got != tt.wantPkts {
			t.Errorf("PacketPercentile(%v) = %d, want %d", tt.p, got, tt.wantPkts)
		}
		want := time.Duration(tt.wantPkts) * time.Millisecond
		if got := s.LatencyPercentile(tt.p); got != want {
			t.Errorf("LatencyPercentile(%v) = %v, want %v", tt.p, got, want)
		}
	}
	if s.PacketPercentile(0) != 0 || s.LatencyPercentile(-1) != 0 {
		t.Error("non-positive percentile not zero")
	}
	var empty Summary
	if empty.PacketPercentile(50) != 0 || empty.LatencyPercentile(50) != 0 {
		t.Error("empty summary percentile not zero")
	}
}

// TestClassifyPartitionProperty: every attacker-present outcome is exactly
// one of TP/FN; every attacker-absent outcome with no accusations is TN.
func TestClassifyPartitionProperty(t *testing.T) {
	prop := func(present, detected bool, accusations uint8) bool {
		o := Outcome{
			AttackerPresent:  present,
			Detected:         detected,
			FalseAccusations: int(accusations % 3),
		}
		tp, fn, fp, tn := o.Classify()
		if present && tp == fn {
			return false // must be exactly one
		}
		if !present && (tp || fn) {
			return false
		}
		if !present && o.FalseAccusations == 0 && !tn {
			return false
		}
		if o.FalseAccusations > 0 && !fp {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRatesSumProperty: TPRate + FNRate = 1 whenever attacks exist.
func TestRatesSumProperty(t *testing.T) {
	prop := func(detected []bool) bool {
		if len(detected) == 0 {
			return true
		}
		var outcomes []Outcome
		for _, d := range detected {
			outcomes = append(outcomes, Outcome{AttackerPresent: true, Detected: d})
		}
		s := Aggregate(outcomes)
		sum := s.TPRate() + s.FNRate()
		return sum > 0.9999 && sum < 1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
