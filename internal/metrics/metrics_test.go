package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		name           string
		o              Outcome
		tp, fn, fp, tn bool
	}{
		{"attacker detected", Outcome{AttackerPresent: true, Detected: true}, true, false, false, false},
		{"attacker missed", Outcome{AttackerPresent: true}, false, true, false, false},
		{"clean run", Outcome{}, false, false, false, true},
		{"innocent convicted", Outcome{FalseAccusations: 1}, false, false, true, false},
		{"attacker detected plus innocent convicted", Outcome{AttackerPresent: true, Detected: true, FalseAccusations: 1}, true, false, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tp, fn, fp, tn := tt.o.Classify()
			if tp != tt.tp || fn != tt.fn || fp != tt.fp || tn != tt.tn {
				t.Errorf("Classify() = %v %v %v %v, want %v %v %v %v",
					tp, fn, fp, tn, tt.tp, tt.fn, tt.fp, tt.tn)
			}
		})
	}
}

// An empty outcome set must aggregate to all-zero rates, not NaN or panic:
// every rate has a zero denominator here.
func TestAggregateEmpty(t *testing.T) {
	s := Aggregate(nil)
	if s.Runs != 0 {
		t.Fatalf("Runs = %d", s.Runs)
	}
	for name, got := range map[string]float64{
		"Accuracy":      s.Accuracy(),
		"TPRate":        s.TPRate(),
		"FNRate":        s.FNRate(),
		"FPRate":        s.FPRate(),
		"DeliveryRatio": s.DeliveryRatio(),
	} {
		if got != 0 {
			t.Errorf("%s on empty summary = %v, want 0", name, got)
		}
	}
	if min, mean, max := s.PacketStats(); min != 0 || mean != 0 || max != 0 {
		t.Errorf("PacketStats on empty summary = %d %v %d", min, mean, max)
	}
	if s.MeanLatency() != 0 || s.LatencyPercentile(95) != 0 || s.PacketPercentile(50) != 0 {
		t.Error("latency/percentile on empty summary not 0")
	}
	r := s.Report()
	if r != (Report{}) {
		t.Errorf("Report of empty summary = %+v, want zero value", r)
	}
}

// Runs with no attacker at all: TP+FN is zero, so TPRate and FNRate divide
// by zero and must report 0 while accuracy counts the true negatives.
func TestAggregateNoAttackerOnly(t *testing.T) {
	outcomes := []Outcome{
		{AttackerPresent: false, DataSent: 10, DataDelivered: 10},
		{AttackerPresent: false},
		{AttackerPresent: false, FalseAccusations: 1},
	}
	s := Aggregate(outcomes)
	if s.TP != 0 || s.FN != 0 || s.TN != 2 || s.FP != 1 {
		t.Fatalf("confusion matrix = tp%d fn%d fp%d tn%d", s.TP, s.FN, s.FP, s.TN)
	}
	if got := s.TPRate(); got != 0 {
		t.Errorf("TPRate with no attackers = %v, want 0 (guarded)", got)
	}
	if got := s.FNRate(); got != 0 {
		t.Errorf("FNRate with no attackers = %v, want 0 (guarded)", got)
	}
	if got := s.Accuracy(); got != 2.0/3.0 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if got := s.FPRate(); got != 1.0/3.0 {
		t.Errorf("FPRate = %v, want 1/3", got)
	}
	r := s.Report()
	if r.TPRate != 0 || r.FNRate != 0 || r.Accuracy != s.Accuracy() {
		t.Errorf("Report diverges from Summary: %+v", r)
	}
}

// DeliveryRatio with zero data sent (e.g. establishment never succeeded)
// must not divide by zero.
func TestDeliveryRatioNoTraffic(t *testing.T) {
	s := Aggregate([]Outcome{{AttackerPresent: true}})
	if got := s.DeliveryRatio(); got != 0 {
		t.Errorf("DeliveryRatio with no traffic = %v, want 0", got)
	}
}

// Report must carry every derived statistic of a populated summary.
func TestReportMatchesSummary(t *testing.T) {
	s := Aggregate([]Outcome{
		{AttackerPresent: true, Detected: true, DetectionPackets: 6,
			DetectionLatency: time.Second, DataSent: 10, DataDelivered: 9},
		{AttackerPresent: true, DetectionPackets: 8, Prevented: true},
	})
	r := s.Report()
	if r.Runs != 2 || r.TP != 1 || r.FN != 1 {
		t.Fatalf("Report matrix = %+v", r)
	}
	if r.DetectionPacketsMin != 6 || r.DetectionPacketsMean != 7 || r.DetectionPacketsMax != 8 {
		t.Errorf("packet stats = %d %v %d", r.DetectionPacketsMin, r.DetectionPacketsMean, r.DetectionPacketsMax)
	}
	if r.MeanLatency != time.Second || r.P95Latency != time.Second {
		t.Errorf("latencies = %v %v", r.MeanLatency, r.P95Latency)
	}
	if r.PreventedOnly != 1 {
		t.Errorf("PreventedOnly = %d", r.PreventedOnly)
	}
	if r.DeliveryRatio != 0.9 {
		t.Errorf("DeliveryRatio = %v", r.DeliveryRatio)
	}
}

func TestAggregateRates(t *testing.T) {
	outcomes := []Outcome{
		{AttackerPresent: true, Detected: true, DetectionPackets: 6, DetectionLatency: time.Second},
		{AttackerPresent: true, Detected: true, DetectionPackets: 8, DetectionLatency: 3 * time.Second},
		{AttackerPresent: true, Prevented: true},
		{AttackerPresent: true},
	}
	s := Aggregate(outcomes)
	if s.Runs != 4 || s.TP != 2 || s.FN != 2 || s.FP != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", s.Accuracy())
	}
	if s.TPRate() != 0.5 || s.FNRate() != 0.5 {
		t.Errorf("TP/FN = %v/%v, want 0.5/0.5", s.TPRate(), s.FNRate())
	}
	if s.FPRate() != 0 {
		t.Errorf("FPRate = %v, want 0", s.FPRate())
	}
	if s.PreventedOnly != 1 {
		t.Errorf("PreventedOnly = %d, want 1", s.PreventedOnly)
	}
	min, mean, max := s.PacketStats()
	if min != 6 || max != 8 || mean != 7 {
		t.Errorf("PacketStats = %d/%v/%d", min, mean, max)
	}
	if s.MeanLatency() != 2*time.Second {
		t.Errorf("MeanLatency = %v", s.MeanLatency())
	}
}

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.Accuracy() != 0 || s.TPRate() != 0 || s.FNRate() != 0 || s.FPRate() != 0 {
		t.Error("empty summary rates not zero")
	}
	if s.MeanLatency() != 0 {
		t.Error("empty MeanLatency not zero")
	}
	if min, mean, max := s.PacketStats(); min != 0 || mean != 0 || max != 0 {
		t.Error("empty PacketStats not zero")
	}
	if s.DeliveryRatio() != 0 {
		t.Error("empty DeliveryRatio not zero")
	}
}

func TestDeliveryRatio(t *testing.T) {
	s := Aggregate([]Outcome{
		{DataSent: 10, DataDelivered: 7},
		{DataSent: 10, DataDelivered: 3},
	})
	if s.DeliveryRatio() != 0.5 {
		t.Errorf("DeliveryRatio = %v, want 0.5", s.DeliveryRatio())
	}
}

func TestByCluster(t *testing.T) {
	outcomes := []Outcome{
		{AttackerPresent: true, AttackerCluster: 1, Detected: true},
		{AttackerPresent: true, AttackerCluster: 1, Detected: true},
		{AttackerPresent: true, AttackerCluster: 9},
	}
	grouped := ByCluster(outcomes)
	if len(grouped) != 2 {
		t.Fatalf("groups = %d, want 2", len(grouped))
	}
	if grouped[1].Accuracy() != 1 {
		t.Errorf("cluster 1 accuracy = %v", grouped[1].Accuracy())
	}
	if grouped[9].FNRate() != 1 {
		t.Errorf("cluster 9 FN rate = %v", grouped[9].FNRate())
	}
}

func TestPercentiles(t *testing.T) {
	var outcomes []Outcome
	for i := 1; i <= 10; i++ {
		outcomes = append(outcomes, Outcome{
			AttackerPresent:  true,
			Detected:         true,
			DetectionPackets: i,
			DetectionLatency: time.Duration(i) * time.Millisecond,
		})
	}
	s := Aggregate(outcomes)
	tests := []struct {
		p        float64
		wantPkts int
	}{
		{10, 1}, {50, 5}, {90, 9}, {100, 10}, {150, 10},
	}
	for _, tt := range tests {
		if got := s.PacketPercentile(tt.p); got != tt.wantPkts {
			t.Errorf("PacketPercentile(%v) = %d, want %d", tt.p, got, tt.wantPkts)
		}
		want := time.Duration(tt.wantPkts) * time.Millisecond
		if got := s.LatencyPercentile(tt.p); got != want {
			t.Errorf("LatencyPercentile(%v) = %v, want %v", tt.p, got, want)
		}
	}
	if s.PacketPercentile(0) != 0 || s.LatencyPercentile(-1) != 0 {
		t.Error("non-positive percentile not zero")
	}
	var empty Summary
	if empty.PacketPercentile(50) != 0 || empty.LatencyPercentile(50) != 0 {
		t.Error("empty summary percentile not zero")
	}
}

// TestClassifyPartitionProperty: every attacker-present outcome is exactly
// one of TP/FN; every attacker-absent outcome with no accusations is TN.
func TestClassifyPartitionProperty(t *testing.T) {
	prop := func(present, detected bool, accusations uint8) bool {
		o := Outcome{
			AttackerPresent:  present,
			Detected:         detected,
			FalseAccusations: int(accusations % 3),
		}
		tp, fn, fp, tn := o.Classify()
		if present && tp == fn {
			return false // must be exactly one
		}
		if !present && (tp || fn) {
			return false
		}
		if !present && o.FalseAccusations == 0 && !tn {
			return false
		}
		if o.FalseAccusations > 0 && !fp {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRatesSumProperty: TPRate + FNRate = 1 whenever attacks exist.
func TestRatesSumProperty(t *testing.T) {
	prop := func(detected []bool) bool {
		if len(detected) == 0 {
			return true
		}
		var outcomes []Outcome
		for _, d := range detected {
			outcomes = append(outcomes, Outcome{AttackerPresent: true, Detected: d})
		}
		s := Aggregate(outcomes)
		sum := s.TPRate() + s.FNRate()
		return sum > 0.9999 && sum < 1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
