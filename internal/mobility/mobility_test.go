package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func tableIHighway(t *testing.T) *Highway {
	t.Helper()
	h, err := NewHighway(10_000, 200, 1000)
	if err != nil {
		t.Fatalf("NewHighway: %v", err)
	}
	return h
}

func TestKmhToMs(t *testing.T) {
	if got := KmhToMs(90); math.Abs(got-25.0) > 1e-9 {
		t.Errorf("KmhToMs(90) = %v, want 25", got)
	}
	if got := MsToKmh(KmhToMs(72)); math.Abs(got-72) > 1e-9 {
		t.Errorf("round trip = %v, want 72", got)
	}
}

func TestNewHighwayValidation(t *testing.T) {
	tests := []struct {
		name                      string
		length, width, clusterLen float64
		wantErr                   bool
	}{
		{"table I", 10_000, 200, 1000, false},
		{"single cluster", 1000, 200, 1000, false},
		{"zero length", 0, 200, 1000, true},
		{"negative width", 10_000, -1, 1000, true},
		{"zero cluster", 10_000, 200, 0, true},
		{"non-multiple", 10_500, 200, 1000, true},
		{"shorter than cluster", 500, 200, 1000, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewHighway(tt.length, tt.width, tt.clusterLen)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewHighway(%v, %v, %v) error = %v, wantErr %v",
					tt.length, tt.width, tt.clusterLen, err, tt.wantErr)
			}
		})
	}
}

func TestHighwayClusterCount(t *testing.T) {
	h := tableIHighway(t)
	if h.Clusters() != 10 {
		t.Errorf("Clusters() = %d, want 10 (paper p = l/r)", h.Clusters())
	}
}

func TestClusterAt(t *testing.T) {
	h := tableIHighway(t)
	tests := []struct {
		x    float64
		want int
	}{
		{0, 1}, {999.9, 1}, {1000, 2}, {4500, 5}, {9000, 10}, {9999, 10},
		{10_000, 10}, // end of road clamps to last cluster
		{-5, 1},      // before the road clamps to first
		{20_000, 10}, // past the road clamps to last
	}
	for _, tt := range tests {
		if got := h.ClusterAt(tt.x); got != tt.want {
			t.Errorf("ClusterAt(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestClusterCenterAndBounds(t *testing.T) {
	h := tableIHighway(t)
	for c := 1; c <= 10; c++ {
		center := h.ClusterCenter(c)
		wantX := float64(c)*1000 - 500
		if center.X != wantX || center.Y != 100 {
			t.Errorf("ClusterCenter(%d) = %v, want (%v, 100)", c, center, wantX)
		}
		lo, hi := h.ClusterBounds(c)
		if lo != float64(c-1)*1000 || hi != float64(c)*1000 {
			t.Errorf("ClusterBounds(%d) = [%v, %v)", c, lo, hi)
		}
		if h.ClusterAt(center.X) != c {
			t.Errorf("center of cluster %d maps to cluster %d", c, h.ClusterAt(center.X))
		}
	}
}

func TestClusterCenterPanicsOutOfRange(t *testing.T) {
	h := tableIHighway(t)
	for _, c := range []int{0, 11, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClusterCenter(%d) did not panic", c)
				}
			}()
			h.ClusterCenter(c)
		}()
	}
}

func TestOverlapZone(t *testing.T) {
	h := tableIHighway(t)
	// With a 1000 m range and RSUs at 500, 1500, ...: x=500 reaches only
	// RSU1 (distance to RSU2 is 1000 -> inclusive boundary reaches it too).
	// Use strict interior points.
	if h.OverlapZone(400, 1000) {
		// RSU1 at 500 (100m), RSU2 at 1500 (1100m) -> single zone
		t.Error("x=400 should be a single zone with 1000m range")
	}
	if !h.OverlapZone(1000, 1000) {
		// RSU1 at 500 (500m), RSU2 at 1500 (500m) -> overlapped
		t.Error("x=1000 (cluster boundary) should be an overlapped zone")
	}
	got := h.ClustersInRange(1000, 1000)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ClustersInRange(1000, 1000) = %v, want [1 2]", got)
	}
	// RSUs sit at 500, 1500, ..., 9500; from x=5000 a 2200 m range reaches
	// the heads of clusters 4-7.
	if got := h.ClustersInRange(5000, 2200); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Errorf("ClustersInRange(5000, 2200) = %v, want [4 5 6 7]", got)
	}
}

func TestDistance(t *testing.T) {
	a := Position{X: 0, Y: 0}
	b := Position{X: 3, Y: 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Errorf("DistanceTo = %v, want 5", d)
	}
	if d := b.DistanceTo(a); d != 5 {
		t.Errorf("distance not symmetric: %v", d)
	}
}

func TestStaticLocator(t *testing.T) {
	h := tableIHighway(t)
	s := Static{Pos: h.ClusterCenter(3), H: h}
	if s.PositionAt(0) != s.PositionAt(time.Hour) {
		t.Error("static node moved")
	}
	if !s.OnHighwayAt(time.Hour) {
		t.Error("static node reported off-highway")
	}
}

func TestMobileKinematics(t *testing.T) {
	h := tableIHighway(t)
	m, err := NewMobile(h, Position{X: 1000, Y: 50}, Eastbound, 25, 0)
	if err != nil {
		t.Fatalf("NewMobile: %v", err)
	}
	p := m.PositionAt(10 * time.Second)
	if math.Abs(p.X-1250) > 1e-9 || p.Y != 50 {
		t.Errorf("PositionAt(10s) = %v, want (1250, 50)", p)
	}
	if c := m.ClusterAt(10 * time.Second); c != 2 {
		t.Errorf("ClusterAt(10s) = %d, want 2", c)
	}
	// 9000m to the end at 25 m/s = 360s.
	dep, ok := m.DepartureTime()
	if !ok || dep != 360*time.Second {
		t.Errorf("DepartureTime = (%v, %v), want (360s, true)", dep, ok)
	}
	if m.OnHighwayAt(359*time.Second) != true {
		t.Error("on-highway at 359s = false")
	}
	if m.OnHighwayAt(361 * time.Second) {
		t.Error("still on-highway after departure")
	}
	// Position clamps at the end.
	if p := m.PositionAt(time.Hour); p.X != 10_000 {
		t.Errorf("clamped position = %v, want X=10000", p)
	}
}

func TestMobileWestbound(t *testing.T) {
	h := tableIHighway(t)
	m, err := NewMobile(h, Position{X: 500, Y: 150}, Westbound, 20, 0)
	if err != nil {
		t.Fatalf("NewMobile: %v", err)
	}
	p := m.PositionAt(10 * time.Second)
	if math.Abs(p.X-300) > 1e-9 {
		t.Errorf("PositionAt(10s).X = %v, want 300", p.X)
	}
	dep, ok := m.DepartureTime()
	if !ok || dep != 25*time.Second {
		t.Errorf("DepartureTime = (%v, %v), want (25s, true)", dep, ok)
	}
}

func TestMobileValidation(t *testing.T) {
	h := tableIHighway(t)
	if _, err := NewMobile(nil, Position{}, Eastbound, 10, 0); err == nil {
		t.Error("nil highway accepted")
	}
	if _, err := NewMobile(h, Position{X: -1, Y: 0}, Eastbound, 10, 0); err == nil {
		t.Error("off-highway start accepted")
	}
	if _, err := NewMobile(h, Position{X: 0, Y: 0}, Eastbound, -1, 0); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewMobile(h, Position{X: 0, Y: 0}, Direction(0), 10, 0); err == nil {
		t.Error("invalid direction accepted")
	}
}

func TestMobileSetSpeedContinuity(t *testing.T) {
	h := tableIHighway(t)
	m, _ := NewMobile(h, Position{X: 0, Y: 10}, Eastbound, 10, 0)
	before := m.PositionAt(100 * time.Second) // 1000m
	if err := m.SetSpeed(100*time.Second, 30); err != nil {
		t.Fatalf("SetSpeed: %v", err)
	}
	after := m.PositionAt(100 * time.Second)
	if math.Abs(before.X-after.X) > 1e-9 {
		t.Errorf("position jumped on SetSpeed: %v -> %v", before, after)
	}
	p := m.PositionAt(110 * time.Second)
	if math.Abs(p.X-1300) > 1e-9 {
		t.Errorf("PositionAt(110s).X = %v, want 1300", p.X)
	}
	if err := m.SetSpeed(110*time.Second, -3); err == nil {
		t.Error("negative speed accepted by SetSpeed")
	}
}

func TestMobileExit(t *testing.T) {
	h := tableIHighway(t)
	m, _ := NewMobile(h, Position{X: 5000, Y: 10}, Eastbound, 20, 0)
	m.Exit(50 * time.Second) // at 6000m
	if !m.Exited() {
		t.Error("Exited() = false after Exit")
	}
	if m.OnHighwayAt(51 * time.Second) {
		t.Error("on-highway after Exit")
	}
	if p := m.PositionAt(time.Hour); math.Abs(p.X-6000) > 1e-9 {
		t.Errorf("position after exit = %v, want frozen at 6000", p)
	}
	if _, ok := m.TimeToReachX(9000); ok {
		t.Error("exited vehicle claims it will reach 9000m")
	}
	if dep, ok := m.DepartureTime(); !ok || dep != 50*time.Second {
		t.Errorf("DepartureTime after exit = (%v, %v), want (50s, true)", dep, ok)
	}
}

func TestTimeToReachX(t *testing.T) {
	h := tableIHighway(t)
	m, _ := NewMobile(h, Position{X: 1000, Y: 10}, Eastbound, 25, 0)
	at, ok := m.TimeToReachX(2000)
	if !ok || at != 40*time.Second {
		t.Errorf("TimeToReachX(2000) = (%v, %v), want (40s, true)", at, ok)
	}
	if _, ok := m.TimeToReachX(500); ok {
		t.Error("eastbound vehicle claims it will reach a point behind it")
	}
	stopped, _ := NewMobile(h, Position{X: 1000, Y: 10}, Eastbound, 0, 0)
	if _, ok := stopped.TimeToReachX(2000); ok {
		t.Error("stationary vehicle claims it will reach 2000m")
	}
	if at, ok := stopped.TimeToReachX(1000); !ok || at != 0 {
		t.Errorf("TimeToReachX(current) = (%v, %v), want (0, true)", at, ok)
	}
}

// TestMobileMonotonicProperty: an eastbound vehicle's X never decreases and a
// westbound vehicle's X never increases, across random speeds and query times.
func TestMobileMonotonicProperty(t *testing.T) {
	h := tableIHighway(t)
	prop := func(speedKmh uint16, t1, t2 uint32, west bool) bool {
		speed := KmhToMs(float64(speedKmh%41 + 50)) // 50..90 km/h
		dir := Eastbound
		start := Position{X: 0, Y: 100}
		if west {
			dir = Westbound
			start.X = h.Length()
		}
		m, err := NewMobile(h, start, dir, speed, 0)
		if err != nil {
			return false
		}
		ta := time.Duration(t1%100_000) * time.Millisecond
		tb := time.Duration(t2%100_000) * time.Millisecond
		if ta > tb {
			ta, tb = tb, ta
		}
		xa, xb := m.PositionAt(ta).X, m.PositionAt(tb).X
		if west {
			return xb <= xa
		}
		return xa <= xb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOverlapZoneSymmetryProperty: with full RSU coverage, every on-road
// point is in range of at least one cluster head, and overlap zones are
// exactly the points within range of two or more.
func TestOverlapZoneSymmetryProperty(t *testing.T) {
	h := tableIHighway(t)
	prop := func(raw uint32) bool {
		x := float64(raw % 10_000)
		reach := h.ClustersInRange(x, 1000)
		if len(reach) == 0 {
			return false // coverage hole
		}
		if h.OverlapZone(x, 1000) != (len(reach) >= 2) {
			return false
		}
		// The covering cluster's own head is always reachable.
		own := h.ClusterAt(x)
		for _, c := range reach {
			if c == own {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDepartureConsistentProperty: a vehicle is on the highway strictly
// before its departure time and off it strictly after.
func TestDepartureConsistentProperty(t *testing.T) {
	h := tableIHighway(t)
	prop := func(startRaw uint16, speedRaw uint8, west bool) bool {
		start := float64(startRaw % 10_000)
		speed := KmhToMs(float64(speedRaw%41 + 50))
		dir := Eastbound
		if west {
			dir = Westbound
		}
		m, err := NewMobile(h, Position{X: start, Y: 100}, dir, speed, 0)
		if err != nil {
			return false
		}
		dep, ok := m.DepartureTime()
		if !ok {
			return false // moving vehicles always depart eventually
		}
		eps := 10 * time.Millisecond
		if dep > eps && !m.OnHighwayAt(dep-eps) {
			return false
		}
		return !m.OnHighwayAt(dep + eps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestClusterAtConsistentWithBounds: for random x on the road, x lies within
// the bounds of its reported cluster.
func TestClusterAtConsistentWithBounds(t *testing.T) {
	h := tableIHighway(t)
	prop := func(raw uint32) bool {
		x := float64(raw%10_000_000) / 1000 // [0, 10000)
		c := h.ClusterAt(x)
		lo, hi := h.ClusterBounds(c)
		return x >= lo && x < hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
