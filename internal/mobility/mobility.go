// Package mobility models the paper's highway geometry and vehicle motion.
//
// The highway is a straight controlled-access road of configurable length and
// width (Table I: 10 km x 200 m), divided into equal-length clusters (1000 m)
// with a Road Side Unit at the centre of each. Vehicles move kinematically at
// a constant per-vehicle speed; positions are evaluated analytically at any
// virtual time, so the discrete-event simulator never needs motion ticks.
package mobility

import (
	"fmt"
	"math"
	"time"
)

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// Position is a point on the highway plane: X runs along the road from its
// start (metres), Y runs across it.
type Position struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to q in metres.
func (p Position) DistanceTo(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Position) String() string {
	return fmt.Sprintf("(%.1fm, %.1fm)", p.X, p.Y)
}

// Direction is the travel direction along the highway axis.
type Direction int

// Directions of travel. Eastbound increases X.
const (
	Eastbound Direction = iota + 1
	Westbound
)

func (d Direction) String() string {
	switch d {
	case Eastbound:
		return "eastbound"
	case Westbound:
		return "westbound"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Sign returns +1 for Eastbound and -1 for Westbound.
func (d Direction) Sign() float64 {
	if d == Westbound {
		return -1
	}
	return 1
}

// Highway describes the road geometry and its static clustering.
type Highway struct {
	length     float64 // metres along X
	width      float64 // metres along Y
	clusterLen float64 // metres per cluster
	clusters   int
}

// NewHighway builds a highway of the given dimensions divided into clusters
// of clusterLen metres. The length must be a positive whole multiple of
// clusterLen, matching the paper's equal-size static clusters.
func NewHighway(length, width, clusterLen float64) (*Highway, error) {
	switch {
	case length <= 0:
		return nil, fmt.Errorf("mobility: highway length %v must be positive", length)
	case width <= 0:
		return nil, fmt.Errorf("mobility: highway width %v must be positive", width)
	case clusterLen <= 0:
		return nil, fmt.Errorf("mobility: cluster length %v must be positive", clusterLen)
	}
	n := length / clusterLen
	rounded := math.Round(n)
	if rounded < 1 || math.Abs(n-rounded) > 1e-9 {
		return nil, fmt.Errorf("mobility: highway length %vm is not a whole multiple of cluster length %vm", length, clusterLen)
	}
	return &Highway{length: length, width: width, clusterLen: clusterLen, clusters: int(rounded)}, nil
}

// Length returns the highway length in metres.
func (h *Highway) Length() float64 { return h.length }

// Width returns the highway width in metres.
func (h *Highway) Width() float64 { return h.width }

// ClusterLength returns the per-cluster length in metres.
func (h *Highway) ClusterLength() float64 { return h.clusterLen }

// Clusters returns the number of clusters (the paper's p = l / r).
func (h *Highway) Clusters() int { return h.clusters }

// Contains reports whether p lies on the highway surface.
func (h *Highway) Contains(p Position) bool {
	return p.X >= 0 && p.X <= h.length && p.Y >= 0 && p.Y <= h.width
}

// ClusterAt returns the 1-based cluster index covering longitudinal position
// x, clamped to the first/last cluster for off-road coordinates. The paper
// numbers clusters 1..10.
func (h *Highway) ClusterAt(x float64) int {
	if x < 0 {
		return 1
	}
	c := int(x/h.clusterLen) + 1
	if c > h.clusters {
		return h.clusters
	}
	return c
}

// ClusterCenter returns the RSU mounting point for cluster c (1-based):
// longitudinally central in the cluster, laterally central on the road.
func (h *Highway) ClusterCenter(c int) Position {
	h.checkCluster(c)
	return Position{X: (float64(c) - 0.5) * h.clusterLen, Y: h.width / 2}
}

// ClusterBounds returns the [lo, hi) longitudinal extent of cluster c.
func (h *Highway) ClusterBounds(c int) (lo, hi float64) {
	h.checkCluster(c)
	lo = float64(c-1) * h.clusterLen
	return lo, lo + h.clusterLen
}

func (h *Highway) checkCluster(c int) {
	if c < 1 || c > h.clusters {
		panic(fmt.Sprintf("mobility: cluster %d out of range [1, %d]", c, h.clusters))
	}
}

// OverlapZone reports whether a node at longitudinal position x is within
// radio range of more than one cluster head, given the common transmission
// range. Vehicles joining from such a zone must broadcast their join request
// to every reachable cluster head (paper SIII-A).
func (h *Highway) OverlapZone(x float64, txRange float64) bool {
	return len(h.ClustersInRange(x, txRange)) > 1
}

// ClustersInRange returns the 1-based indices of all clusters whose head is
// within txRange (longitudinally) of position x, in ascending order.
func (h *Highway) ClustersInRange(x float64, txRange float64) []int {
	var out []int
	for c := 1; c <= h.clusters; c++ {
		center := (float64(c) - 0.5) * h.clusterLen
		if math.Abs(x-center) <= txRange {
			out = append(out, c)
		}
	}
	return out
}

// Locator yields a (possibly moving) node position over virtual time.
type Locator interface {
	// PositionAt returns the node position at virtual time t.
	PositionAt(t time.Duration) Position
	// OnHighwayAt reports whether the node is on the road (and therefore
	// radio-active) at virtual time t.
	OnHighwayAt(t time.Duration) bool
}

// Static is a stationary Locator (RSUs, trusted-authority uplinks).
type Static struct {
	Pos Position
	H   Topology
}

var _ Locator = Static{}

// PositionAt implements Locator.
func (s Static) PositionAt(time.Duration) Position { return s.Pos }

// OnHighwayAt implements Locator. A static node is always active; RSUs sit on
// the roadside whether or not their coordinates fall on the road surface.
func (s Static) OnHighwayAt(time.Duration) bool { return true }

// MotionAt implements Kinematic: a static node never moves.
func (s Static) MotionAt(time.Duration) (Position, Velocity, time.Duration) {
	return s.Pos, Velocity{}, 0
}

// OnMotionChange implements Kinematic: a static trajectory never re-bases.
func (s Static) OnMotionChange(func()) {}

// Mobile is a vehicle trajectory: piecewise-constant speed along one road's
// travel axis at a fixed lateral offset. The zero value is unusable;
// construct with NewMobile (the paper's highway) or NewMobileOnRoad (mesh
// topologies).
type Mobile struct {
	topo Topology
	axis Axis
	// Travel extent along axis; positions clamp to [lo, hi].
	lo, hi float64
	cross  float64 // fixed lateral coordinate

	// Re-based kinematic state: along/speed valid from time base onward.
	base  time.Duration
	along float64
	speed float64 // m/s, always >= 0
	dir   Direction

	exited   bool // permanently left the road (fled or reached the end)
	onChange []func()
}

// NewMobile creates a vehicle at start, travelling in dir at speed m/s from
// virtual time t0.
func NewMobile(h *Highway, start Position, dir Direction, speed float64, t0 time.Duration) (*Mobile, error) {
	if h == nil {
		return nil, fmt.Errorf("mobility: NewMobile requires a highway")
	}
	if !h.Contains(start) {
		return nil, fmt.Errorf("mobility: start %v is off the highway", start)
	}
	if speed < 0 {
		return nil, fmt.Errorf("mobility: speed %v must be non-negative", speed)
	}
	if dir != Eastbound && dir != Westbound {
		return nil, fmt.Errorf("mobility: invalid direction %v", dir)
	}
	return &Mobile{
		topo: h, axis: AxisX, lo: 0, hi: h.length, cross: start.Y,
		base: t0, along: start.X, speed: speed, dir: dir,
	}, nil
}

// NewMobileOnRoad creates a vehicle on one road strip of topo, starting at
// start (which must lie on the road), travelling in dir along the road's
// travel axis at speed m/s from virtual time t0. Positions clamp to the
// road's extent, exactly as on the single highway.
func NewMobileOnRoad(topo Topology, road Road, start Position, dir Direction, speed float64, t0 time.Duration) (*Mobile, error) {
	if topo == nil {
		return nil, fmt.Errorf("mobility: NewMobileOnRoad requires a topology")
	}
	if !road.Rect().Contains(start) {
		return nil, fmt.Errorf("mobility: start %v is off the road", start)
	}
	if speed < 0 {
		return nil, fmt.Errorf("mobility: speed %v must be non-negative", speed)
	}
	if dir != Eastbound && dir != Westbound {
		return nil, fmt.Errorf("mobility: invalid direction %v", dir)
	}
	return &Mobile{
		topo: topo, axis: road.Axis, lo: road.Lo, hi: road.Hi, cross: road.Cross(start),
		base: t0, along: road.Along(start), speed: speed, dir: dir,
	}, nil
}

var (
	_ Locator   = (*Mobile)(nil)
	_ Kinematic = (*Mobile)(nil)
	_ Kinematic = Static{}
)

// Speed returns the current speed in m/s.
func (m *Mobile) Speed() float64 { return m.speed }

// Direction returns the travel direction.
func (m *Mobile) Direction() Direction { return m.dir }

// Axis returns the travel axis (AxisX on the single highway).
func (m *Mobile) Axis() Axis { return m.axis }

// TravelBounds returns the [lo, hi] travel extent along the axis. On the
// single highway this is [0, length].
func (m *Mobile) TravelBounds() (lo, hi float64) { return m.lo, m.hi }

// PositionAt implements Locator. Positions are clamped to the road ends; use
// OnHighwayAt to detect departure.
func (m *Mobile) PositionAt(t time.Duration) Position {
	a := m.rawAlong(t)
	if a < m.lo {
		a = m.lo
	}
	if a > m.hi {
		a = m.hi
	}
	if m.axis == AxisY {
		return Position{X: m.cross, Y: a}
	}
	return Position{X: a, Y: m.cross}
}

func (m *Mobile) rawAlong(t time.Duration) float64 {
	dt := t - m.base
	if dt < 0 {
		dt = 0 // history before the last re-base is not retained
	}
	return m.along + m.dir.Sign()*m.speed*dt.Seconds()
}

// OnHighwayAt implements Locator.
func (m *Mobile) OnHighwayAt(t time.Duration) bool {
	if m.exited {
		return false
	}
	a := m.rawAlong(t)
	return a >= m.lo && a <= m.hi
}

// ClusterAt returns the 1-based cluster index the vehicle occupies at t.
func (m *Mobile) ClusterAt(t time.Duration) int {
	return m.topo.ClusterOf(m.PositionAt(t))
}

// MotionAt implements Kinematic.
func (m *Mobile) MotionAt(t time.Duration) (Position, Velocity, time.Duration) {
	pos := m.PositionAt(t)
	if m.exited || m.speed == 0 {
		return pos, Velocity{}, 0
	}
	raw := m.rawAlong(t)
	if raw < m.lo || raw > m.hi {
		// Clamped at a road end: the position froze there permanently (speed
		// is constant, so the raw coordinate never re-enters the extent).
		return pos, Velocity{}, 0
	}
	v := m.dir.Sign() * m.speed
	edge := m.hi
	if v < 0 {
		edge = m.lo
	}
	sec := (edge - raw) / v // >= 0: seconds until the clamp takes over
	horizon := time.Duration(0)
	if ns := sec * float64(time.Second); ns < float64(1<<62) {
		horizon = t + time.Duration(ns)
	}
	vel := Velocity{VX: v}
	if m.axis == AxisY {
		vel = Velocity{VY: v}
	}
	return pos, vel, horizon
}

// OnMotionChange implements Kinematic.
func (m *Mobile) OnMotionChange(fn func()) { m.onChange = append(m.onChange, fn) }

func (m *Mobile) motionChanged() {
	for _, fn := range m.onChange {
		fn()
	}
}

// SetSpeed re-bases the trajectory at time now with a new speed, preserving
// position continuity. Used by evasive attackers that accelerate to flee.
func (m *Mobile) SetSpeed(now time.Duration, speed float64) error {
	if speed < 0 {
		return fmt.Errorf("mobility: speed %v must be non-negative", speed)
	}
	m.rebase(now)
	m.speed = speed
	m.motionChanged()
	return nil
}

// Exit marks the vehicle as permanently departed at time now (it took an
// off-ramp). Its position freezes; OnHighwayAt reports false afterwards.
func (m *Mobile) Exit(now time.Duration) {
	m.rebase(now)
	m.speed = 0
	m.exited = true
	m.motionChanged()
}

// Exited reports whether Exit has been called.
func (m *Mobile) Exited() bool { return m.exited }

func (m *Mobile) rebase(now time.Duration) {
	a := m.rawAlong(now)
	if a < m.lo {
		a = m.lo
	}
	if a > m.hi {
		a = m.hi
	}
	m.along = a
	m.base = now
}

// TimeToReach returns the virtual time at which the vehicle first reaches
// the given coordinate along its travel axis, and whether it ever does
// (given its current speed and direction, and ignoring the road end).
func (m *Mobile) TimeToReach(coord float64) (time.Duration, bool) {
	if m.exited {
		return 0, false
	}
	dx := coord - m.along
	if dx == 0 {
		return m.base, true
	}
	v := m.dir.Sign() * m.speed
	if v == 0 || dx/v < 0 {
		return 0, false
	}
	return m.base + time.Duration(dx/v*float64(time.Second)), true
}

// TimeToReachX is TimeToReach under its historical, highway-era name (the
// travel axis was always X).
func (m *Mobile) TimeToReachX(x float64) (time.Duration, bool) { return m.TimeToReach(x) }

// DepartureTime returns the virtual time at which the vehicle leaves the
// road by travelling past an end, and whether it ever does.
func (m *Mobile) DepartureTime() (time.Duration, bool) {
	if m.exited {
		return m.base, true
	}
	if m.speed == 0 {
		return 0, false
	}
	edge := m.hi
	if m.dir == Westbound {
		edge = m.lo
	}
	return m.TimeToReach(edge)
}
