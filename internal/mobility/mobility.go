// Package mobility models the paper's highway geometry and vehicle motion.
//
// The highway is a straight controlled-access road of configurable length and
// width (Table I: 10 km x 200 m), divided into equal-length clusters (1000 m)
// with a Road Side Unit at the centre of each. Vehicles move kinematically at
// a constant per-vehicle speed; positions are evaluated analytically at any
// virtual time, so the discrete-event simulator never needs motion ticks.
package mobility

import (
	"fmt"
	"math"
	"time"
)

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// Position is a point on the highway plane: X runs along the road from its
// start (metres), Y runs across it.
type Position struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to q in metres.
func (p Position) DistanceTo(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Position) String() string {
	return fmt.Sprintf("(%.1fm, %.1fm)", p.X, p.Y)
}

// Direction is the travel direction along the highway axis.
type Direction int

// Directions of travel. Eastbound increases X.
const (
	Eastbound Direction = iota + 1
	Westbound
)

func (d Direction) String() string {
	switch d {
	case Eastbound:
		return "eastbound"
	case Westbound:
		return "westbound"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Sign returns +1 for Eastbound and -1 for Westbound.
func (d Direction) Sign() float64 {
	if d == Westbound {
		return -1
	}
	return 1
}

// Highway describes the road geometry and its static clustering.
type Highway struct {
	length     float64 // metres along X
	width      float64 // metres along Y
	clusterLen float64 // metres per cluster
	clusters   int
}

// NewHighway builds a highway of the given dimensions divided into clusters
// of clusterLen metres. The length must be a positive whole multiple of
// clusterLen, matching the paper's equal-size static clusters.
func NewHighway(length, width, clusterLen float64) (*Highway, error) {
	switch {
	case length <= 0:
		return nil, fmt.Errorf("mobility: highway length %v must be positive", length)
	case width <= 0:
		return nil, fmt.Errorf("mobility: highway width %v must be positive", width)
	case clusterLen <= 0:
		return nil, fmt.Errorf("mobility: cluster length %v must be positive", clusterLen)
	}
	n := length / clusterLen
	rounded := math.Round(n)
	if rounded < 1 || math.Abs(n-rounded) > 1e-9 {
		return nil, fmt.Errorf("mobility: highway length %vm is not a whole multiple of cluster length %vm", length, clusterLen)
	}
	return &Highway{length: length, width: width, clusterLen: clusterLen, clusters: int(rounded)}, nil
}

// Length returns the highway length in metres.
func (h *Highway) Length() float64 { return h.length }

// Width returns the highway width in metres.
func (h *Highway) Width() float64 { return h.width }

// ClusterLength returns the per-cluster length in metres.
func (h *Highway) ClusterLength() float64 { return h.clusterLen }

// Clusters returns the number of clusters (the paper's p = l / r).
func (h *Highway) Clusters() int { return h.clusters }

// Contains reports whether p lies on the highway surface.
func (h *Highway) Contains(p Position) bool {
	return p.X >= 0 && p.X <= h.length && p.Y >= 0 && p.Y <= h.width
}

// ClusterAt returns the 1-based cluster index covering longitudinal position
// x, clamped to the first/last cluster for off-road coordinates. The paper
// numbers clusters 1..10.
func (h *Highway) ClusterAt(x float64) int {
	if x < 0 {
		return 1
	}
	c := int(x/h.clusterLen) + 1
	if c > h.clusters {
		return h.clusters
	}
	return c
}

// ClusterCenter returns the RSU mounting point for cluster c (1-based):
// longitudinally central in the cluster, laterally central on the road.
func (h *Highway) ClusterCenter(c int) Position {
	h.checkCluster(c)
	return Position{X: (float64(c) - 0.5) * h.clusterLen, Y: h.width / 2}
}

// ClusterBounds returns the [lo, hi) longitudinal extent of cluster c.
func (h *Highway) ClusterBounds(c int) (lo, hi float64) {
	h.checkCluster(c)
	lo = float64(c-1) * h.clusterLen
	return lo, lo + h.clusterLen
}

func (h *Highway) checkCluster(c int) {
	if c < 1 || c > h.clusters {
		panic(fmt.Sprintf("mobility: cluster %d out of range [1, %d]", c, h.clusters))
	}
}

// OverlapZone reports whether a node at longitudinal position x is within
// radio range of more than one cluster head, given the common transmission
// range. Vehicles joining from such a zone must broadcast their join request
// to every reachable cluster head (paper SIII-A).
func (h *Highway) OverlapZone(x float64, txRange float64) bool {
	return len(h.ClustersInRange(x, txRange)) > 1
}

// ClustersInRange returns the 1-based indices of all clusters whose head is
// within txRange (longitudinally) of position x, in ascending order.
func (h *Highway) ClustersInRange(x float64, txRange float64) []int {
	var out []int
	for c := 1; c <= h.clusters; c++ {
		center := (float64(c) - 0.5) * h.clusterLen
		if math.Abs(x-center) <= txRange {
			out = append(out, c)
		}
	}
	return out
}

// Locator yields a (possibly moving) node position over virtual time.
type Locator interface {
	// PositionAt returns the node position at virtual time t.
	PositionAt(t time.Duration) Position
	// OnHighwayAt reports whether the node is on the road (and therefore
	// radio-active) at virtual time t.
	OnHighwayAt(t time.Duration) bool
}

// Static is a stationary Locator (RSUs, trusted-authority uplinks).
type Static struct {
	Pos Position
	H   *Highway
}

var _ Locator = Static{}

// PositionAt implements Locator.
func (s Static) PositionAt(time.Duration) Position { return s.Pos }

// OnHighwayAt implements Locator. A static node is always active; RSUs sit on
// the roadside whether or not their coordinates fall on the road surface.
func (s Static) OnHighwayAt(time.Duration) bool { return true }

// Mobile is a vehicle trajectory: piecewise-constant speed along the highway
// axis at a fixed lateral offset. The zero value is unusable; construct with
// NewMobile.
type Mobile struct {
	h *Highway

	// Re-based kinematic state: position/speed valid from time base onward.
	base  time.Duration
	pos   Position
	speed float64 // m/s, always >= 0
	dir   Direction

	exited bool // permanently left the highway (fled or reached the end)
}

// NewMobile creates a vehicle at start, travelling in dir at speed m/s from
// virtual time t0.
func NewMobile(h *Highway, start Position, dir Direction, speed float64, t0 time.Duration) (*Mobile, error) {
	if h == nil {
		return nil, fmt.Errorf("mobility: NewMobile requires a highway")
	}
	if !h.Contains(start) {
		return nil, fmt.Errorf("mobility: start %v is off the highway", start)
	}
	if speed < 0 {
		return nil, fmt.Errorf("mobility: speed %v must be non-negative", speed)
	}
	if dir != Eastbound && dir != Westbound {
		return nil, fmt.Errorf("mobility: invalid direction %v", dir)
	}
	return &Mobile{h: h, base: t0, pos: start, speed: speed, dir: dir}, nil
}

var _ Locator = (*Mobile)(nil)

// Speed returns the current speed in m/s.
func (m *Mobile) Speed() float64 { return m.speed }

// Direction returns the travel direction.
func (m *Mobile) Direction() Direction { return m.dir }

// PositionAt implements Locator. Positions are clamped to the highway ends;
// use OnHighwayAt to detect departure.
func (m *Mobile) PositionAt(t time.Duration) Position {
	x := m.rawX(t)
	if x < 0 {
		x = 0
	}
	if x > m.h.length {
		x = m.h.length
	}
	return Position{X: x, Y: m.pos.Y}
}

func (m *Mobile) rawX(t time.Duration) float64 {
	dt := t - m.base
	if dt < 0 {
		dt = 0 // history before the last re-base is not retained
	}
	return m.pos.X + m.dir.Sign()*m.speed*dt.Seconds()
}

// OnHighwayAt implements Locator.
func (m *Mobile) OnHighwayAt(t time.Duration) bool {
	if m.exited {
		return false
	}
	x := m.rawX(t)
	return x >= 0 && x <= m.h.length
}

// ClusterAt returns the 1-based cluster index the vehicle occupies at t.
func (m *Mobile) ClusterAt(t time.Duration) int {
	return m.h.ClusterAt(m.PositionAt(t).X)
}

// SetSpeed re-bases the trajectory at time now with a new speed, preserving
// position continuity. Used by evasive attackers that accelerate to flee.
func (m *Mobile) SetSpeed(now time.Duration, speed float64) error {
	if speed < 0 {
		return fmt.Errorf("mobility: speed %v must be non-negative", speed)
	}
	m.rebase(now)
	m.speed = speed
	return nil
}

// Exit marks the vehicle as permanently departed at time now (it took an
// off-ramp). Its position freezes; OnHighwayAt reports false afterwards.
func (m *Mobile) Exit(now time.Duration) {
	m.rebase(now)
	m.speed = 0
	m.exited = true
}

// Exited reports whether Exit has been called.
func (m *Mobile) Exited() bool { return m.exited }

func (m *Mobile) rebase(now time.Duration) {
	m.pos = m.PositionAt(now)
	m.base = now
}

// TimeToReachX returns the virtual time at which the vehicle first reaches
// longitudinal coordinate x, and whether it ever does (given its current
// speed and direction, and ignoring the highway end).
func (m *Mobile) TimeToReachX(x float64) (time.Duration, bool) {
	if m.exited {
		return 0, false
	}
	dx := x - m.pos.X
	if dx == 0 {
		return m.base, true
	}
	v := m.dir.Sign() * m.speed
	if v == 0 || dx/v < 0 {
		return 0, false
	}
	return m.base + time.Duration(dx/v*float64(time.Second)), true
}

// DepartureTime returns the virtual time at which the vehicle leaves the
// highway by travelling past an end, and whether it ever does.
func (m *Mobile) DepartureTime() (time.Duration, bool) {
	if m.exited {
		return m.base, true
	}
	if m.speed == 0 {
		return 0, false
	}
	edge := m.h.length
	if m.dir == Westbound {
		edge = 0
	}
	return m.TimeToReachX(edge)
}
