package mobility

import (
	"math"
	"reflect"
	"testing"
)

// checkTopologyInvariants asserts the structural properties every Topology
// must satisfy, brute-forced over all clusters (or a stride-sample for very
// large meshes so fuzzing stays fast).
func checkTopologyInvariants(t *testing.T, topo Topology) {
	t.Helper()
	n := topo.Clusters()
	if n < 1 {
		t.Fatalf("Clusters() = %d, want >= 1", n)
	}
	stride := 1
	if n > 4096 {
		stride = n / 4096
	}
	bounds := topo.Bounds()
	for c := 1; c <= n; c += stride {
		rect := topo.ClusterRect(c)
		if rect.X1 < rect.X0 || rect.Y1 < rect.Y0 {
			t.Fatalf("cluster %d: inverted rect %+v", c, rect)
		}
		center := topo.ClusterCenter(c)
		if !rect.Contains(center) {
			t.Fatalf("cluster %d: center %+v outside own rect %+v", c, center, rect)
		}
		if !bounds.Contains(center) {
			t.Fatalf("cluster %d: center %+v outside bounds %+v", c, center, bounds)
		}
		if !topo.Contains(center) {
			t.Fatalf("cluster %d: center %+v not on any road", c, center)
		}
		// The cluster covering a point must actually contain it.
		got := topo.ClusterOf(center)
		if got < 1 || got > n {
			t.Fatalf("ClusterOf(%+v) = %d out of [1, %d]", center, got, n)
		}
		if !topo.ClusterRect(got).Contains(center) {
			t.Fatalf("ClusterOf(center of %d) = %d, whose rect %+v misses %+v",
				c, got, topo.ClusterRect(got), center)
		}
		// Adjacency: irreflexive, symmetric, consistent with Neighbors,
		// sorted ascending, and geometrically touching.
		if topo.Adjacent(c, c) {
			t.Fatalf("cluster %d adjacent to itself", c)
		}
		prev := 0
		for _, nb := range topo.Neighbors(c) {
			if nb <= prev {
				t.Fatalf("cluster %d: neighbors %v not strictly ascending", c, topo.Neighbors(c))
			}
			prev = nb
			if nb < 1 || nb > n {
				t.Fatalf("cluster %d: neighbor %d out of range", c, nb)
			}
			if !topo.Adjacent(c, nb) || !topo.Adjacent(nb, c) {
				t.Fatalf("clusters %d and %d: Neighbors/Adjacent disagree or asymmetric", c, nb)
			}
			if !rect.Touches(topo.ClusterRect(nb)) {
				t.Fatalf("clusters %d and %d adjacent but rects %+v and %+v do not touch",
					c, nb, rect, topo.ClusterRect(nb))
			}
		}
	}
	// Out-of-range indices are never adjacent and never panic.
	for _, bad := range []int{0, -1, n + 1, math.MaxInt32} {
		if topo.Adjacent(bad, 1) || topo.Adjacent(1, bad) {
			t.Fatalf("out-of-range cluster %d reported adjacent", bad)
		}
	}
}

// checkTopologyProbe asserts the total-function contract at an arbitrary
// (possibly degenerate) coordinate: ClusterOf never panics and lands in
// range, on-road points resolve to a cluster containing them, and
// ClustersNear returns exactly the brute-force set of in-range centers.
func checkTopologyProbe(t *testing.T, topo Topology, p Position, txRange float64) {
	t.Helper()
	n := topo.Clusters()
	c := topo.ClusterOf(p)
	if c < 1 || c > n {
		t.Fatalf("ClusterOf(%+v) = %d out of [1, %d]", p, c, n)
	}
	finite := !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
	if finite && topo.Contains(p) && !topo.ClusterRect(c).Contains(p) {
		t.Fatalf("on-road point %+v assigned to cluster %d whose rect %+v misses it", p, c, topo.ClusterRect(c))
	}
	if !(txRange >= 0) || math.IsInf(txRange, 0) {
		return
	}
	near := topo.ClustersNear(p, txRange)
	var want []int
	for i := 1; i <= n; i++ {
		if p.DistanceTo(topo.ClusterCenter(i)) <= txRange {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(near, want) && (len(near) != 0 || len(want) != 0) {
		t.Fatalf("ClustersNear(%+v, %v) = %v, want brute-force %v", p, txRange, near, want)
	}
}

func TestRoadMeshValidation(t *testing.T) {
	cases := []struct {
		name       string
		clusterLen float64
		roads      []Road
	}{
		{"no roads", 1000, nil},
		{"zero cluster length", 0, []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
		{"negative cluster length", -5, []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
		{"NaN cluster length", math.NaN(), []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
		{"Inf cluster length", math.Inf(1), []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
		{"empty extent", 1000, []Road{{Axis: AxisX, Lo: 500, Hi: 500, CLo: 0, CHi: 30}}},
		{"inverted extent", 1000, []Road{{Axis: AxisX, Lo: 1000, Hi: 0, CLo: 0, CHi: 30}}},
		{"empty lateral band", 1000, []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 30, CHi: 30}}},
		{"NaN bound", 1000, []Road{{Axis: AxisX, Lo: 0, Hi: math.NaN(), CLo: 0, CHi: 30}}},
		{"Inf bound", 1000, []Road{{Axis: AxisX, Lo: 0, Hi: math.Inf(1), CLo: 0, CHi: 30}}},
		{"not a multiple", 1000, []Road{{Axis: AxisX, Lo: 0, Hi: 1500, CLo: 0, CHi: 30}}},
		{"invalid axis", 1000, []Road{{Axis: Axis(7), Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
		{"too many clusters", 1e-12, []Road{{Axis: AxisX, Lo: 0, Hi: 1000, CLo: 0, CHi: 30}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRoadMesh(tc.clusterLen, tc.roads...); err == nil {
				t.Fatal("NewRoadMesh accepted an invalid mesh")
			}
		})
	}
}

func TestGridCityShape(t *testing.T) {
	m, err := NewGridCity(3, 4, 1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Clusters(), 2*3*4; got != want {
		t.Fatalf("Clusters() = %d, want %d", got, want)
	}
	if got, want := m.Bounds(), (Rect{X0: 0, Y0: 0, X1: 4000, Y1: 3000}); got != want {
		t.Fatalf("Bounds() = %+v, want %+v", got, want)
	}
	checkTopologyInvariants(t, m)
	// A point on the first horizontal road, in its second block.
	p := Position{X: 1500, Y: 500}
	if !m.Contains(p) {
		t.Fatalf("grid does not contain %+v", p)
	}
	if got := m.ClusterOf(p); got != 2 {
		t.Fatalf("ClusterOf(%+v) = %d, want 2", p, got)
	}
	// An intersection point lies on two roads; the first road wins.
	x := Position{X: 500, Y: 500}
	c := m.ClusterOf(x)
	if rd := m.ClusterRoad(c); rd != 0 {
		t.Fatalf("intersection %+v assigned to road %d, want road 0 (first wins)", x, rd)
	}
}

func TestMultiHighwayAdjacency(t *testing.T) {
	// Touching carriageways (gap 0): lateral neighbors are adjacent.
	touching, err := NewMultiHighway(2, 4000, 200, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, touching)
	if !touching.Adjacent(1, 5) {
		t.Fatal("gap 0: first clusters of the two carriageways should touch")
	}
	// A median gap severs lateral adjacency.
	gapped, err := NewMultiHighway(2, 4000, 200, 30, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, gapped)
	if gapped.Adjacent(1, 5) {
		t.Fatal("gap 30: carriageways should not be adjacent across the median")
	}
	if !gapped.Adjacent(1, 2) || !gapped.Adjacent(5, 6) {
		t.Fatal("consecutive clusters of one carriageway must stay adjacent")
	}
}

func TestInterchangeCrossAdjacency(t *testing.T) {
	m, err := NewInterchange(4000, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, m)
	if got, want := m.Clusters(), 8; got != want {
		t.Fatalf("Clusters() = %d, want %d", got, want)
	}
	// The central segments of the two highways overlap and must be adjacent.
	center := Position{X: 2000, Y: 2000}
	cx := m.ClusterOf(center)
	adjacentToOtherRoad := false
	for _, nb := range m.Neighbors(cx) {
		if m.ClusterRoad(nb) != m.ClusterRoad(cx) {
			adjacentToOtherRoad = true
		}
	}
	if !adjacentToOtherRoad {
		t.Fatal("interchange center cluster has no cross-road neighbor")
	}
}

func TestHighwayTopologyConformance(t *testing.T) {
	h, err := NewHighway(8000, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, h)
	checkTopologyProbe(t, h, Position{X: 2500, Y: 100}, 1000)
}

// FuzzTopology builds arbitrary meshes and probes them at arbitrary
// coordinates: construction must either fail cleanly or yield a topology
// whose invariants hold and whose cluster assignment is total — no inputs,
// however degenerate, may panic.
func FuzzTopology(f *testing.F) {
	f.Add(uint8(0), int64(3), int64(4), 1000.0, 30.0, 0.0, 1500.0, 500.0, 1000.0)
	f.Add(uint8(1), int64(3), int64(0), 4000.0, 200.0, 30.0, -10.0, 1e9, 500.0)
	f.Add(uint8(2), int64(0), int64(0), 4000.0, 200.0, 0.0, 2000.0, 2000.0, 0.0)
	f.Add(uint8(3), int64(2), int64(1), 500.0, 250.0, 125.0, 250.0, 250.0, 750.0)
	// Degenerate dimensions: zero, negative, NaN, Inf, huge, subnormal.
	f.Add(uint8(0), int64(0), int64(-3), 0.0, -30.0, 0.0, math.NaN(), math.Inf(1), -1.0)
	f.Add(uint8(1), int64(1<<40), int64(2), math.Inf(1), math.NaN(), -5.0, 0.0, 0.0, math.NaN())
	f.Add(uint8(2), int64(1), int64(1), 1e308, 1e-320, 1e300, -1e300, 1e300, math.Inf(1))
	f.Add(uint8(3), int64(-1), int64(64), 7.7, 0.1, 0.0, 1e-320, -0.0, 0.5)
	f.Fuzz(func(t *testing.T, kind uint8, a, b int64, d1, d2, d3, px, py, txRange float64) {
		var (
			topo Topology
			err  error
		)
		switch kind % 4 {
		case 0:
			topo, err = NewGridCity(int(a%100), int(b%100), d1, d2)
		case 1:
			topo, err = NewMultiHighway(int(a%140), d1, d2, d3, d2)
		case 2:
			topo, err = NewInterchange(d1, d2, d1/4)
		default:
			// A raw mesh of up to three hand-cut strips sharing one
			// cluster length; any of them may be degenerate.
			roads := []Road{
				{Axis: Axis(a % 2), Lo: d2, Hi: d2 + d1*float64(1+b%4), CLo: 0, CHi: d3 + 10},
				{Axis: Axis(b % 2), Lo: 0, Hi: d1 * float64(1+a%4), CLo: px, CHi: px + d3 + 10},
				{Axis: AxisY, Lo: py, Hi: py + d1, CLo: -d3, CHi: d3},
			}
			topo, err = NewRoadMesh(d1, roads[:1+int(uint64(a+b)%3)]...)
		}
		if err != nil {
			return // rejected cleanly — the acceptable failure mode
		}
		if topo.Clusters() > 1<<16 {
			t.Fatalf("construction cap breached: %d clusters", topo.Clusters())
		}
		checkTopologyInvariants(t, topo)
		checkTopologyProbe(t, topo, Position{X: px, Y: py}, txRange)
	})
}
