package mobility

import (
	"fmt"
	"math"
	"time"
)

// Axis is a road's travel axis.
type Axis int

// Road travel axes.
const (
	AxisX Axis = iota // travel along X, fixed Y band
	AxisY             // travel along Y, fixed X band
)

func (a Axis) String() string {
	if a == AxisY {
		return "y"
	}
	return "x"
}

// Velocity is a planar velocity in m/s.
type Velocity struct {
	VX, VY float64
}

// IsZero reports whether the velocity is exactly zero.
func (v Velocity) IsZero() bool { return v.VX == 0 && v.VY == 0 }

// Rect is an axis-aligned rectangle with closed bounds.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains reports whether p lies in the rectangle (boundary-inclusive).
func (r Rect) Contains(p Position) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Center returns the rectangle's midpoint. Halving before adding keeps the
// midpoint finite even when the bounds sum past MaxFloat64.
func (r Rect) Center() Position {
	return Position{X: r.X0/2 + r.X1/2, Y: r.Y0/2 + r.Y1/2}
}

// Touches reports whether the two closed rectangles intersect or share an
// edge or corner.
func (r Rect) Touches(o Rect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// Road is one straight road strip: a travel extent [Lo, Hi] along Axis and a
// lateral band [CLo, CHi] across it.
type Road struct {
	Axis     Axis
	Lo, Hi   float64 // extent along the travel axis
	CLo, CHi float64 // extent across it
}

// Rect returns the road's footprint.
func (r Road) Rect() Rect {
	if r.Axis == AxisY {
		return Rect{X0: r.CLo, Y0: r.Lo, X1: r.CHi, Y1: r.Hi}
	}
	return Rect{X0: r.Lo, Y0: r.CLo, X1: r.Hi, Y1: r.CHi}
}

// At composes a position from a travel-axis coordinate and a lateral one.
func (r Road) At(along, cross float64) Position {
	if r.Axis == AxisY {
		return Position{X: cross, Y: along}
	}
	return Position{X: along, Y: cross}
}

// Along projects p onto the road's travel axis.
func (r Road) Along(p Position) float64 {
	if r.Axis == AxisY {
		return p.Y
	}
	return p.X
}

// Cross projects p onto the road's lateral axis.
func (r Road) Cross(p Position) float64 {
	if r.Axis == AxisY {
		return p.X
	}
	return p.Y
}

// Topology is a clustered road geometry: the world the scenario builds on and
// the cluster layout the membership protocol serves. *Highway implements it
// with the paper's single straight road; RoadMesh composes many road strips
// (grid cities, parallel highways, interchanges). Clusters are 1-based, as in
// the paper.
type Topology interface {
	// Clusters returns the number of clusters.
	Clusters() int
	// Contains reports whether p lies on a road surface.
	Contains(p Position) bool
	// ClusterOf returns the 1-based cluster covering p, clamped to the
	// nearest cluster for off-road coordinates (total: never panics).
	ClusterOf(p Position) int
	// ClusterCenter returns the RSU mounting point for cluster c.
	ClusterCenter(c int) Position
	// ClusterRect returns cluster c's footprint.
	ClusterRect(c int) Rect
	// Adjacent reports whether clusters a and b border each other. Out-of-
	// range indices are simply not adjacent.
	Adjacent(a, b int) bool
	// Neighbors returns the clusters adjacent to c in ascending order. The
	// returned slice is shared; callers must not modify it.
	Neighbors(c int) []int
	// ClustersNear returns, in ascending order, the clusters whose head is
	// within txRange of p (boundary-inclusive).
	ClustersNear(p Position, txRange float64) []int
	// Bounds returns the bounding box of every road.
	Bounds() Rect
	// Roads returns the road strips making up the topology. The returned
	// slice is shared; callers must not modify it.
	Roads() []Road
}

// Kinematic extends Locator with an analytic motion description, letting a
// spatial index schedule re-bucketing at exact cell-crossing times instead of
// polling positions. Static and *Mobile implement it.
type Kinematic interface {
	Locator
	// MotionAt returns the position and instantaneous velocity at t, plus
	// the virtual time until which straight-line motion at that velocity
	// remains valid (0 = forever). Callers may extrapolate the position
	// linearly strictly before the returned horizon.
	MotionAt(t time.Duration) (Position, Velocity, time.Duration)
	// OnMotionChange registers fn to run whenever the trajectory is
	// re-based out of band (speed change, exit), so observers can
	// invalidate cached extrapolations. Callbacks are never removed.
	OnMotionChange(fn func())
}

// --- Highway conformance -------------------------------------------------

var _ Topology = (*Highway)(nil)

// ClusterOf implements Topology: the cluster covering p's longitudinal
// coordinate (the highway's historical, X-only semantics).
func (h *Highway) ClusterOf(p Position) int { return h.ClusterAt(p.X) }

// ClusterRect implements Topology.
func (h *Highway) ClusterRect(c int) Rect {
	lo, hi := h.ClusterBounds(c)
	return Rect{X0: lo, Y0: 0, X1: hi, Y1: h.width}
}

// Adjacent implements Topology: consecutive clusters border each other.
func (h *Highway) Adjacent(a, b int) bool {
	if a < 1 || a > h.clusters || b < 1 || b > h.clusters {
		return false
	}
	return a-b == 1 || b-a == 1
}

// Neighbors implements Topology.
func (h *Highway) Neighbors(c int) []int {
	var out []int
	if c-1 >= 1 && c-1 <= h.clusters {
		out = append(out, c-1)
	}
	if c+1 >= 1 && c+1 <= h.clusters {
		out = append(out, c+1)
	}
	return out
}

// ClustersNear implements Topology. It keeps the highway's historical
// longitudinal-distance semantics (ClustersInRange): only the X distance to
// each head counts, matching the paper's one-dimensional overlap zones.
func (h *Highway) ClustersNear(p Position, txRange float64) []int {
	return h.ClustersInRange(p.X, txRange)
}

// Bounds implements Topology.
func (h *Highway) Bounds() Rect { return Rect{X0: 0, Y0: 0, X1: h.length, Y1: h.width} }

// Roads implements Topology.
func (h *Highway) Roads() []Road {
	return []Road{{Axis: AxisX, Lo: 0, Hi: h.length, CLo: 0, CHi: h.width}}
}

// --- RoadMesh ------------------------------------------------------------

// Construction limits: caps keep degenerate (fuzzed) meshes from exhausting
// memory while staying far above any realistic metro configuration.
const (
	maxMeshRoads    = 128
	maxMeshClusters = 1 << 16
	maxMeshAdjacent = 1 << 20
	// maxMeshCoord bounds every road coordinate: beyond ~1e15 m, squared
	// distances and midpoints start losing metre-scale precision (and can
	// overflow), so such worlds are rejected rather than mis-simulated.
	maxMeshCoord = 1e15
)

// RoadMesh is a composable Topology: a set of axis-aligned road strips, each
// divided into equal clusterLen segments. Clusters are numbered strip-major
// (road 0's segments first, in travel order). Two clusters are adjacent when
// their footprints intersect or touch — consecutive segments of one road, or
// crossing/abutting segments of different roads.
type RoadMesh struct {
	roads      []Road
	clusterLen float64
	segs       []Rect // per cluster (index c-1)
	segRoad    []int  // owning road per cluster
	firstSeg   []int  // per road: 0-based index of its first cluster
	adj        [][]int
	bounds     Rect
}

var _ Topology = (*RoadMesh)(nil)

// NewRoadMesh builds a mesh from road strips. Every road extent must be a
// positive whole multiple of clusterLen (the paper's equal-size static
// clusters, per strip).
func NewRoadMesh(clusterLen float64, roads ...Road) (*RoadMesh, error) {
	if len(roads) == 0 {
		return nil, fmt.Errorf("mobility: mesh needs at least one road")
	}
	if len(roads) > maxMeshRoads {
		return nil, fmt.Errorf("mobility: %d roads exceeds the mesh limit %d", len(roads), maxMeshRoads)
	}
	if !(clusterLen > 0) || math.IsInf(clusterLen, 0) {
		return nil, fmt.Errorf("mobility: cluster length %v must be positive and finite", clusterLen)
	}
	m := &RoadMesh{roads: append([]Road(nil), roads...), clusterLen: clusterLen}
	total := 0
	for ri, r := range m.roads {
		if r.Axis != AxisX && r.Axis != AxisY {
			return nil, fmt.Errorf("mobility: road %d has invalid axis %d", ri, int(r.Axis))
		}
		for _, v := range []float64{r.Lo, r.Hi, r.CLo, r.CHi} {
			if math.IsNaN(v) || math.Abs(v) > maxMeshCoord {
				return nil, fmt.Errorf("mobility: road %d bound %v outside [-%g, %g]", ri, v, maxMeshCoord, maxMeshCoord)
			}
		}
		if r.Hi <= r.Lo || r.CHi <= r.CLo {
			return nil, fmt.Errorf("mobility: road %d has an empty extent", ri)
		}
		n := (r.Hi - r.Lo) / clusterLen
		rounded := math.Round(n)
		if rounded < 1 || math.Abs(n-rounded) > 1e-9 || rounded > maxMeshClusters {
			return nil, fmt.Errorf("mobility: road %d length %vm is not a whole multiple of cluster length %vm", ri, r.Hi-r.Lo, clusterLen)
		}
		total += int(rounded)
		if total > maxMeshClusters {
			return nil, fmt.Errorf("mobility: mesh exceeds %d clusters", maxMeshClusters)
		}
	}
	m.segs = make([]Rect, 0, total)
	m.segRoad = make([]int, 0, total)
	m.firstSeg = make([]int, len(m.roads))
	for ri, r := range m.roads {
		m.firstSeg[ri] = len(m.segs)
		n := int(math.Round((r.Hi - r.Lo) / clusterLen))
		lo := r.Lo
		for i := 0; i < n; i++ {
			// Each segment starts exactly where the previous one ended:
			// recomputing lo as Lo + i*clusterLen can round a hair below
			// the previous hi, leaving 1-ulp gaps no cluster covers.
			hi := r.Lo + float64(i+1)*clusterLen
			if i == n-1 {
				hi = r.Hi // absorb rounding so the last segment reaches the end
			}
			seg := Road{Axis: r.Axis, Lo: lo, Hi: hi, CLo: r.CLo, CHi: r.CHi}.Rect()
			m.segs = append(m.segs, seg)
			m.segRoad = append(m.segRoad, ri)
			lo = hi
		}
		rb := r.Rect()
		if ri == 0 {
			m.bounds = rb
		} else {
			m.bounds.X0 = math.Min(m.bounds.X0, rb.X0)
			m.bounds.Y0 = math.Min(m.bounds.Y0, rb.Y0)
			m.bounds.X1 = math.Max(m.bounds.X1, rb.X1)
			m.bounds.Y1 = math.Max(m.bounds.Y1, rb.Y1)
		}
	}
	if err := m.buildAdjacency(); err != nil {
		return nil, err
	}
	return m, nil
}

// roadSegs returns the number of segments of road ri.
func (m *RoadMesh) roadSegs(ri int) int {
	if ri == len(m.roads)-1 {
		return len(m.segs) - m.firstSeg[ri]
	}
	return m.firstSeg[ri+1] - m.firstSeg[ri]
}

// buildAdjacency fills adj without the O(C²) all-pairs sweep: consecutive
// segments of each road touch by construction, and cross-road pairs are
// bounded to the segments overlapping the two strips' intersection.
func (m *RoadMesh) buildAdjacency() error {
	m.adj = make([][]int, len(m.segs))
	entries := 0
	link := func(a, b int) error { // 0-based
		entries += 2
		if entries > maxMeshAdjacent {
			return fmt.Errorf("mobility: mesh adjacency exceeds %d entries (roads too densely overlapped)", maxMeshAdjacent)
		}
		m.adj[a] = append(m.adj[a], b+1)
		m.adj[b] = append(m.adj[b], a+1)
		return nil
	}
	for ri := range m.roads {
		base := m.firstSeg[ri]
		for i := 1; i < m.roadSegs(ri); i++ {
			if err := link(base+i-1, base+i); err != nil {
				return err
			}
		}
	}
	for r1 := 0; r1 < len(m.roads); r1++ {
		for r2 := r1 + 1; r2 < len(m.roads); r2++ {
			if !m.roads[r1].Rect().Touches(m.roads[r2].Rect()) {
				continue
			}
			// Candidate segments of r1: those whose extent along r1's axis
			// meets r2's footprint (±1 slack for shared-edge touching).
			o := m.roads[r2].Rect()
			iLo, iHi := m.segRange(r1, m.roads[r1].Along(Position{X: o.X0, Y: o.Y0}), m.roads[r1].Along(Position{X: o.X1, Y: o.Y1}))
			for i := iLo; i <= iHi; i++ {
				si := m.segs[m.firstSeg[r1]+i]
				jLo, jHi := m.segRange(r2, m.roads[r2].Along(Position{X: si.X0, Y: si.Y0}), m.roads[r2].Along(Position{X: si.X1, Y: si.Y1}))
				for j := jLo; j <= jHi; j++ {
					if si.Touches(m.segs[m.firstSeg[r2]+j]) {
						if err := link(m.firstSeg[r1]+i, m.firstSeg[r2]+j); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	for c := range m.adj {
		sortInts(m.adj[c])
	}
	return nil
}

// segRange returns the clamped segment index range of road ri whose travel
// extent could touch [lo, hi] along that road's axis.
func (m *RoadMesh) segRange(ri int, lo, hi float64) (int, int) {
	r := m.roads[ri]
	n := m.roadSegs(ri)
	iLo := clampSegIndex(math.Floor((lo-r.Lo)/m.clusterLen)-1, n)
	iHi := clampSegIndex(math.Floor((hi-r.Lo)/m.clusterLen)+1, n)
	return iLo, iHi
}

// clampSegIndex converts a (possibly NaN or out-of-range) float segment index
// to a valid one.
func clampSegIndex(f float64, n int) int {
	if !(f > 0) { // NaN or <= 0
		return 0
	}
	if f >= float64(n) {
		return n - 1
	}
	return int(f)
}

// sortInts is a small insertion sort: neighbor lists are short and this keeps
// the build allocation-free.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Clusters implements Topology.
func (m *RoadMesh) Clusters() int { return len(m.segs) }

// ClusterLength returns the per-segment length in metres.
func (m *RoadMesh) ClusterLength() float64 { return m.clusterLen }

// Contains implements Topology.
func (m *RoadMesh) Contains(p Position) bool {
	for _, r := range m.roads {
		if r.Rect().Contains(p) {
			return true
		}
	}
	return false
}

// ClusterOf implements Topology: the first road containing p wins (crossing
// roads overlap at intersections; assignment is deterministic by road order);
// off-road positions clamp to the nearest road, ties to the lowest index.
func (m *RoadMesh) ClusterOf(p Position) int {
	for ri, r := range m.roads {
		if r.Rect().Contains(p) {
			return m.firstSeg[ri] + m.segIndex(ri, r.Along(p)) + 1
		}
	}
	best, bestD := 0, math.Inf(1)
	for ri, r := range m.roads {
		d := rectDist2(r.Rect(), p)
		if d < bestD {
			best, bestD = ri, d
		}
	}
	return m.firstSeg[best] + m.segIndex(best, m.roads[best].Along(p)) + 1
}

// rectDist2 is the squared distance from p to the closed rectangle.
func rectDist2(r Rect, p Position) float64 {
	dx := math.Max(math.Max(r.X0-p.X, 0), p.X-r.X1)
	dy := math.Max(math.Max(r.Y0-p.Y, 0), p.Y-r.Y1)
	return dx*dx + dy*dy
}

// segIndex returns the clamped 0-based segment index of road ri at travel
// coordinate along. It searches the stored tiles rather than dividing by
// clusterLen so the answer is exactly consistent with the segment rects
// (division can land one ulp across a tile boundary).
func (m *RoadMesh) segIndex(ri int, along float64) int {
	r := m.roads[ri]
	n := m.roadSegs(ri)
	if math.IsNaN(along) || along <= r.Lo {
		return 0
	}
	if along >= r.Hi {
		return n - 1
	}
	base := m.firstSeg[ri]
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		seg := m.segs[base+mid]
		segHi := seg.X1
		if r.Axis == AxisY {
			segHi = seg.Y1
		}
		if segHi >= along {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (m *RoadMesh) checkCluster(c int) {
	if c < 1 || c > len(m.segs) {
		panic(fmt.Sprintf("mobility: cluster %d out of range [1, %d]", c, len(m.segs)))
	}
}

// ClusterCenter implements Topology.
func (m *RoadMesh) ClusterCenter(c int) Position {
	m.checkCluster(c)
	return m.segs[c-1].Center()
}

// ClusterRect implements Topology.
func (m *RoadMesh) ClusterRect(c int) Rect {
	m.checkCluster(c)
	return m.segs[c-1]
}

// ClusterRoad returns the 0-based index of the road owning cluster c.
func (m *RoadMesh) ClusterRoad(c int) int {
	m.checkCluster(c)
	return m.segRoad[c-1]
}

// Adjacent implements Topology.
func (m *RoadMesh) Adjacent(a, b int) bool {
	if a < 1 || a > len(m.segs) || b < 1 || b > len(m.segs) || a == b {
		return false
	}
	for _, n := range m.adj[a-1] {
		if n == b {
			return true
		}
	}
	return false
}

// Neighbors implements Topology.
func (m *RoadMesh) Neighbors(c int) []int {
	m.checkCluster(c)
	return m.adj[c-1]
}

// ClustersNear implements Topology: clusters whose center (RSU mounting
// point) lies within Euclidean txRange of p, boundary-inclusive. Candidates
// are pruned per road to the segments whose center could be close enough.
func (m *RoadMesh) ClustersNear(p Position, txRange float64) []int {
	var out []int
	for ri, r := range m.roads {
		cc := (r.CLo + r.CHi) / 2
		dc := r.Cross(p) - cc
		if math.Abs(dc) > txRange {
			continue
		}
		reach := math.Sqrt(txRange*txRange - dc*dc)
		along := r.Along(p)
		iLo := clampSegIndex(math.Floor((along-reach-r.Lo)/m.clusterLen)-1, m.roadSegs(ri))
		iHi := clampSegIndex(math.Floor((along+reach-r.Lo)/m.clusterLen)+1, m.roadSegs(ri))
		for i := iLo; i <= iHi; i++ {
			if p.DistanceTo(m.segs[m.firstSeg[ri]+i].Center()) <= txRange {
				out = append(out, m.firstSeg[ri]+i+1)
			}
		}
	}
	return out
}

// Bounds implements Topology.
func (m *RoadMesh) Bounds() Rect { return m.bounds }

// Roads implements Topology.
func (m *RoadMesh) Roads() []Road { return m.roads }

// --- Composed constructors ----------------------------------------------

// NewMultiHighway builds count parallel highways of the given length and
// width, separated by gap metres. With gap = 0 the carriageways touch and
// lateral neighbors are adjacent clusters; with gap > 0 adjacency is
// per-carriageway only (radio range still spans the median).
func NewMultiHighway(count int, length, width, gap, clusterLen float64) (*RoadMesh, error) {
	if count < 1 || count > maxMeshRoads {
		return nil, fmt.Errorf("mobility: %d carriageways out of range [1, %d]", count, maxMeshRoads)
	}
	if !(gap >= 0) || math.IsInf(gap, 0) {
		return nil, fmt.Errorf("mobility: carriageway gap %v must be non-negative and finite", gap)
	}
	roads := make([]Road, count)
	for i := range roads {
		lo := float64(i) * (width + gap)
		roads[i] = Road{Axis: AxisX, Lo: 0, Hi: length, CLo: lo, CHi: lo + width}
	}
	return NewRoadMesh(clusterLen, roads...)
}

// NewGridCity builds a Manhattan grid: rows horizontal roads and cols
// vertical roads of width roadWidth, spaced clusterLen apart (one cluster per
// block face). The world spans cols×clusterLen by rows×clusterLen metres and
// has 2·rows·cols clusters.
func NewGridCity(rows, cols int, clusterLen, roadWidth float64) (*RoadMesh, error) {
	if rows < 1 || cols < 1 || rows > maxMeshRoads/2 || cols > maxMeshRoads/2 {
		return nil, fmt.Errorf("mobility: grid %dx%d out of range [1, %d]", rows, cols, maxMeshRoads/2)
	}
	if !(roadWidth > 0) || math.IsInf(roadWidth, 0) {
		return nil, fmt.Errorf("mobility: road width %v must be positive and finite", roadWidth)
	}
	w := float64(cols) * clusterLen
	h := float64(rows) * clusterLen
	roads := make([]Road, 0, rows+cols)
	for i := 0; i < rows; i++ {
		cy := (float64(i) + 0.5) * clusterLen
		roads = append(roads, Road{Axis: AxisX, Lo: 0, Hi: w, CLo: cy - roadWidth/2, CHi: cy + roadWidth/2})
	}
	for j := 0; j < cols; j++ {
		cx := (float64(j) + 0.5) * clusterLen
		roads = append(roads, Road{Axis: AxisY, Lo: 0, Hi: h, CLo: cx - roadWidth/2, CHi: cx + roadWidth/2})
	}
	return NewRoadMesh(clusterLen, roads...)
}

// NewInterchange builds two equal-length highways of the given width crossing
// at their midpoints: one along X, one along Y.
func NewInterchange(length, width, clusterLen float64) (*RoadMesh, error) {
	if !(length > 0) || math.IsInf(length, 0) {
		return nil, fmt.Errorf("mobility: interchange length %v must be positive and finite", length)
	}
	mid := length / 2
	return NewRoadMesh(clusterLen,
		Road{Axis: AxisX, Lo: 0, Hi: length, CLo: mid - width/2, CHi: mid + width/2},
		Road{Axis: AxisY, Lo: 0, Hi: length, CLo: mid - width/2, CHi: mid + width/2},
	)
}
