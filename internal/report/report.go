// Package report renders experiment results as aligned text tables and as
// CSV data files, so the experiment harness can both print human-readable
// output and emit machine-readable artefacts for plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
)

// Table is a titled grid of string cells with a fixed column arity.
type Table struct {
	Title   string
	Slug    string // file-name stem for CSV export
	columns []string
	rows    [][]string
	notes   []string
}

// New creates a table. Slug defaults to a sanitised form of the title.
func New(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("report: a table needs at least one column")
	}
	return &Table{Title: title, Slug: slugify(title), columns: append([]string(nil), columns...)}
}

func slugify(s string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// Columns returns the header cells.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cells returns a copy of the data rows, for table comparison in tests.
func (t *Table) Cells() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// Notes returns the attached footnotes.
func (t *Table) Notes() []string { return append([]string(nil), t.notes...) }

// AddRow appends a row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.columns))
	}
	t.rows = append(t.rows, append([]string(nil), cells...))
	return nil
}

// AddRowf appends a row of formatted values; the value count must match the
// header.
func (t *Table) AddRowf(values ...any) error {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprint(v)
	}
	return t.AddRow(cells...)
}

// Note attaches a free-text footnote rendered after the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.columns, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes header plus rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<slug>.csv, creating dir if needed, and
// returns the file path.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, t.Slug+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("report: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", fmt.Errorf("report: writing %s: %w", path, err)
	}
	return path, f.Close()
}

// Emit renders the table to stdout and, when csvDir is non-empty, also
// saves it as CSV there, printing the artefact path.
func (t *Table) Emit(csvDir string) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	path, err := t.SaveCSV(csvDir)
	if err != nil {
		return err
	}
	_, err = fmt.Printf("[csv: %s]\n", path)
	return err
}
