package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := New("FIGURE X: things", "cluster", "accuracy")
	if err := tbl.AddRow("1", "100%"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRowf(2, "99%"); err != nil {
		t.Fatal(err)
	}
	tbl.Note("a footnote")

	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIGURE X: things", "cluster", "accuracy", "100%", "99%", "a footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows() = %d", tbl.Rows())
	}
}

func TestTableArityChecked(t *testing.T) {
	tbl := New("t", "a", "b")
	if err := tbl.AddRow("only one"); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.AddRowf(1, 2, 3); err == nil {
		t.Error("long row accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := New("t", "a", "b")
	if err := tbl.AddRow("1", "x,y"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := New("FIGURE 4: Single attacks (150 runs)", "cluster", "accuracy")
	if err := tbl.AddRow("1", "1.0"); err != nil {
		t.Fatal(err)
	}
	path, err := tbl.SaveCSV(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "figure-4-single-attacks-150-runs.csv" {
		t.Errorf("slug path = %s", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "cluster,accuracy\n") {
		t.Errorf("file content = %q", b)
	}
}

func TestSlugify(t *testing.T) {
	tests := []struct{ in, want string }{
		{"FIGURE 5: packets", "figure-5-packets"},
		{"  weird -- name!! ", "weird-name"},
		{"ALLCAPS", "allcaps"},
	}
	for _, tt := range tests {
		if got := slugify(tt.in); got != tt.want {
			t.Errorf("slugify(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestColumnsCopy(t *testing.T) {
	tbl := New("t", "a")
	cols := tbl.Columns()
	cols[0] = "mutated"
	if tbl.Columns()[0] != "a" {
		t.Error("Columns exposes internal storage")
	}
}

func TestNewPanicsWithoutColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero columns")
		}
	}()
	New("t")
}
