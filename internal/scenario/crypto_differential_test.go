package scenario

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"blackdp/internal/metrics"
)

// The crypto differential wall. Three invariants pinned here:
//
//  1. The verification cache is byte-for-bit invisible: a cached run and a
//     NoVerifyCache reference run of the same config produce identical
//     outcomes, seed by seed, and the cached stream matches a golden hash so
//     the fast path cannot drift across releases.
//  2. The session-token scheme is its own pinned deterministic stream — and,
//     because every scheme frames its signature into the same fixed-width
//     wire slot, a session-token run is byte-identical to the ECDSA run of
//     the same seed (same frame sizes, same radio timing, same RNG draws).
//  3. Scheme choice never changes the protocol's verdict: detection,
//     isolation, false accusations and delivery agree across ECDSA,
//     session-token and placeholder, even though placeholder runs skip the
//     "crypto" RNG split and so see different radio noise.
//
// CI runs this file with -race; together with per-agent verifiers that is
// the proof that the cache and the session store introduce no shared state
// races under the sharded executor.

// cryptoDiffConfig is a scaled-down world (matching diffConfig) that still
// exercises detection, isolation, renewal relays and re-broadcast floods —
// every path that opens sealed envelopes — across 20 seeds in a few seconds.
func cryptoDiffConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.HighwayLengthM = 4000
	cfg.Vehicles = 30
	cfg.Authorities = 2
	cfg.AttackerCluster = 2
	cfg.DataPackets = 5
	cfg.MaxSimTime = 45 * time.Second
	cfg.RealCrypto = true
	return cfg
}

const cryptoDiffSeeds = 20

// Golden hashes of the JSON-marshalled outcome stream for seeds 1..20.
// Regenerate by logging cryptoStreamHash's input after an intentional
// behaviour change; an unintentional mismatch is a broken invariant.
const (
	cryptoECDSAGoldenHash   = "1cecae63e41046564e14d60760efead4cff788fa97cdbfb52a3bad70dd183b5f"
	cryptoSessionGoldenHash = "1cecae63e41046564e14d60760efead4cff788fa97cdbfb52a3bad70dd183b5f"
)

func cryptoStreamHash(t *testing.T, outcomes []metrics.Outcome) string {
	t.Helper()
	b, err := json.Marshal(outcomes)
	if err != nil {
		t.Fatalf("marshalling outcomes: %v", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// TestCryptoCachedMatchesUncached holds invariant 1: for every seed the
// cached ECDSA run equals the uncached reference run, and the stream of
// cached outcomes matches the pinned golden hash.
func TestCryptoCachedMatchesUncached(t *testing.T) {
	outcomes := make([]metrics.Outcome, 0, cryptoDiffSeeds)
	for seed := int64(1); seed <= cryptoDiffSeeds; seed++ {
		cached := cryptoDiffConfig(seed)
		want, err := Run(cached)
		if err != nil {
			t.Fatalf("seed %d cached: %v", seed, err)
		}
		reference := cryptoDiffConfig(seed)
		reference.NoVerifyCache = true
		got, err := Run(reference)
		if err != nil {
			t.Fatalf("seed %d uncached: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: uncached reference diverged from cached run:\n got  %+v\n want %+v", seed, got, want)
		}
		outcomes = append(outcomes, want)
	}
	if got := cryptoStreamHash(t, outcomes); got != cryptoECDSAGoldenHash {
		t.Errorf("cached ECDSA outcome stream drifted:\n got  %s\n want %s", got, cryptoECDSAGoldenHash)
	}
}

// TestCryptoSessionGoldenStream holds invariant 2: session-token runs are a
// pinned deterministic stream, and that stream coincides with the ECDSA one
// because both schemes occupy identical fixed-width signature frames and
// draw the same "crypto" RNG split.
func TestCryptoSessionGoldenStream(t *testing.T) {
	outcomes := make([]metrics.Outcome, 0, cryptoDiffSeeds)
	for seed := int64(1); seed <= cryptoDiffSeeds; seed++ {
		cfg := cryptoDiffConfig(seed)
		cfg.CryptoScheme = SchemeSession
		out, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		outcomes = append(outcomes, out)
	}
	if got := cryptoStreamHash(t, outcomes); got != cryptoSessionGoldenHash {
		t.Errorf("session-token outcome stream drifted:\n got  %s\n want %s", got, cryptoSessionGoldenHash)
	}
	// Replay determinism: the session store (epoch anchors, HMAC keys) must
	// leave no residue between runs.
	cfg := cryptoDiffConfig(7)
	cfg.CryptoScheme = SchemeSession
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("session-token replay diverged:\n got  %+v\n want %+v", again, first)
	}
}

// cryptoVerdict is the scheme-independent slice of an outcome: what the
// protocol decided, not how many bytes the air carried while deciding it.
type cryptoVerdict struct {
	AttackersDetected int
	Detected          bool
	TeammateDetected  bool
	Prevented         bool
	FalseAccusations  int
	DetectionPackets  int
	IsolationPackets  int
	DataSent          int
	DataDelivered     int
}

func verdictOf(o metrics.Outcome) cryptoVerdict {
	return cryptoVerdict{
		AttackersDetected: o.AttackersDetected,
		Detected:          o.Detected,
		TeammateDetected:  o.TeammateDetected,
		Prevented:         o.Prevented,
		FalseAccusations:  o.FalseAccusations,
		DetectionPackets:  o.DetectionPackets,
		IsolationPackets:  o.IsolationPackets,
		DataSent:          o.DataSent,
		DataDelivered:     o.DataDelivered,
	}
}

// TestCryptoSchemeVerdictParity holds invariant 3: blacklist and verdict
// behaviour is identical under every scheme across 20 seeds.
func TestCryptoSchemeVerdictParity(t *testing.T) {
	for seed := int64(1); seed <= cryptoDiffSeeds; seed++ {
		base := cryptoDiffConfig(seed)
		base.CryptoScheme = SchemeECDSA
		ref, err := Run(base)
		if err != nil {
			t.Fatalf("seed %d ecdsa: %v", seed, err)
		}
		want := verdictOf(ref)
		for _, scheme := range []string{SchemeSession, SchemePlaceholder} {
			cfg := cryptoDiffConfig(seed)
			cfg.CryptoScheme = scheme
			cfg.RealCrypto = scheme != SchemePlaceholder
			out, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			if got := verdictOf(out); got != want {
				t.Errorf("seed %d: scheme %s verdict diverged from ecdsa:\n got  %+v\n want %+v", seed, scheme, got, want)
			}
		}
	}
}

// TestCryptoShardedDeterminism extends the RunWorkers wall to real crypto,
// now that the Validate gate is lifted: sharded ECDSA and session-token runs
// must be deterministic and worker-count independent (per-agent verifier
// caches, per-shard signing streams). Run with -race.
func TestCryptoShardedDeterminism(t *testing.T) {
	for _, scheme := range []string{SchemeECDSA, SchemeSession} {
		for seed := int64(1); seed <= 5; seed++ {
			base := cryptoDiffConfig(seed)
			base.CryptoScheme = scheme
			base.RunWorkers = 2
			want, err := Run(base)
			if err != nil {
				t.Fatalf("%s seed %d workers=2: %v", scheme, seed, err)
			}
			cfg := cryptoDiffConfig(seed)
			cfg.CryptoScheme = scheme
			cfg.RunWorkers = 4
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s seed %d workers=4: %v", scheme, seed, err)
			}
			if got != want {
				t.Errorf("%s seed %d: workers=4 diverged from workers=2:\n got  %+v\n want %+v", scheme, seed, got, want)
			}
			again, err := Run(base)
			if err != nil {
				t.Fatalf("%s seed %d replay: %v", scheme, seed, err)
			}
			if again != want {
				t.Errorf("%s seed %d: sharded replay diverged:\n got  %+v\n want %+v", scheme, seed, again, want)
			}
		}
	}
}

// TestCryptoFingerprint pins the cache-key semantics of the new knobs: the
// scheme is part of a run's identity, the verification cache is not, and the
// legacy RealCrypto boolean collapses onto the explicit scheme names.
func TestCryptoFingerprint(t *testing.T) {
	fp := func(mutate func(*Config)) string {
		cfg := cryptoDiffConfig(1)
		mutate(&cfg)
		s, err := Fingerprint(cfg)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		return s
	}
	ecdsa := fp(func(c *Config) { c.CryptoScheme = SchemeECDSA })
	session := fp(func(c *Config) { c.CryptoScheme = SchemeSession })
	placeholder := fp(func(c *Config) { c.CryptoScheme = SchemePlaceholder; c.RealCrypto = false })

	if ecdsa == session || ecdsa == placeholder || session == placeholder {
		t.Errorf("scheme classes must have distinct fingerprints: ecdsa=%s session=%s placeholder=%s", ecdsa, session, placeholder)
	}
	if got := fp(func(c *Config) { c.RealCrypto = true }); got != ecdsa {
		t.Error("legacy RealCrypto=true should share the ecdsa fingerprint")
	}
	if got := fp(func(c *Config) { c.RealCrypto = false }); got != placeholder {
		t.Error("legacy RealCrypto=false should share the placeholder fingerprint")
	}
	if got := fp(func(c *Config) { c.CryptoScheme = SchemeECDSA; c.NoVerifyCache = true }); got != ecdsa {
		t.Error("NoVerifyCache is byte-invisible and must not change the fingerprint")
	}
	if got := fp(func(c *Config) { c.CryptoScheme = SchemeSession; c.NoVerifyCache = true }); got != session {
		t.Error("NoVerifyCache must not change the session fingerprint")
	}
}
