package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"blackdp/internal/metrics"
)

// indexDiffConfig is diffConfig with free signatures: the grid-vs-linear
// differential needs many full sweeps, and the spatial index is orthogonal
// to the crypto scheme.
func indexDiffConfig() Config {
	cfg := diffConfig()
	cfg.RealCrypto = false
	return cfg
}

// TestGridIndexDifferential is the tentpole's proof of invisibility: the
// full Fig-4 sweep must be byte-identical between the grid-hash spatial
// index (the default) and the retained linear scan, across many seeds. Any
// divergence means the index changed delivery order or RNG draws — a
// correctness bug, never a baseline to re-record.
func TestGridIndexDifferential(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	base := indexDiffConfig()
	base.AttackerCluster = 0
	for s := 0; s < seeds; s++ {
		base.Seed = int64(1000 + 37*s)
		grid := base
		linear := base
		linear.LinearScan = true

		gp, err := RunFig4Sweep(context.Background(), grid, SingleBlackHole, 1, SweepOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		lp, err := RunFig4Sweep(context.Background(), linear, SingleBlackHole, 1, SweepOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(gp)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := json.Marshal(lp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, lb) {
			t.Fatalf("seed %d: grid index diverged from linear scan:\n grid   %s\n linear %s", base.Seed, gb, lb)
		}
	}
}

// TestLinearScanGoldenHash holds the retained linear-scan path to the same
// pre-index golden hash as TestFig4SweepGoldenHash: the escape hatch is the
// reference implementation, so it must still reproduce the recorded bytes.
func TestLinearScanGoldenHash(t *testing.T) {
	base := DefaultConfig()
	base.HighwayLengthM = 4000
	base.Vehicles = 30
	base.DataPackets = 5
	base.MaxSimTime = 45 * time.Second
	base.Seed = 42
	base.LinearScan = true
	assertFig4GoldenHash(t, base)
}

// TestRunSweepStreamMatchesRetained holds the streaming sweep to the
// retained path: folding outcomes as they complete must produce the exact
// aggregate report that collecting every outcome and aggregating afterwards
// does, at any worker count.
func TestRunSweepStreamMatchesRetained(t *testing.T) {
	cfg := indexDiffConfig()
	const reps = 6
	outcomes, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.Aggregate(outcomes).Report()
	for _, workers := range []int{1, 8} {
		stream, err := RunSweepStream(context.Background(), cfg, reps, SweepOptions{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := stream.Report(); got != want {
			t.Fatalf("workers=%d: streamed report diverged:\n got  %+v\nwant %+v", workers, got, want)
		}
	}
}
