package scenario

import (
	"fmt"
	"time"

	"blackdp/internal/cluster"
	"blackdp/internal/core"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// FogResult measures the paper's SIII-C bottleneck experiment: a burst of
// reports hits one cluster head whose per-packet authentication costs
// AuthProcessing, with FogNodes fog verifiers to offload to.
type FogResult struct {
	Reporters      int
	FogNodes       int
	MeanVerdict    time.Duration // report-to-verdict latency, averaged
	MaxAuthLatency time.Duration // worst queueing+processing delay at the head
	AuthQueued     uint64
}

// RunFogAblation floods one RSU with reporters simultaneous d_reqs (each
// against its own honest suspect, so every report needs authentication and
// an examination) and measures how verification cost and fog offload shape
// verdict latency.
func RunFogAblation(seed int64, reporters int, authCost time.Duration, fogNodes int) (FogResult, error) {
	if reporters < 1 {
		return FogResult{}, fmt.Errorf("scenario: need at least one reporter")
	}
	highway, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		return FogResult{}, err
	}
	rng := sim.NewRNG(seed)
	sched := sim.NewScheduler()
	env := core.Env{
		Sched:    sched,
		RNG:      rng.Split("core"),
		Trust:    pki.NewTrustStore(),
		Scheme:   pki.ECDSA{Rand: rng.Split("crypto").Reader()},
		Dir:      cluster.NewDirectory(),
		Highway:  highway,
		Medium:   radio.NewMedium(sched, rng.Split("radio")),
		Backbone: radio.NewBackbone(sched, time.Millisecond),
		Tally:    core.NewTally(),
	}
	ta, err := core.NewAuthorityAgent(env, 1, 1, []wire.ClusterID{1}, time.Hour)
	if err != nil {
		return FogResult{}, err
	}
	headCred, err := ta.IssueHeadCredential(1)
	if err != nil {
		return FogResult{}, err
	}
	head, err := core.NewHeadAgent(env, core.HeadConfig{AuthProcessing: authCost, FogNodes: fogNodes}, headCred, 1)
	if err != nil {
		return FogResult{}, err
	}
	head.Start()

	mk := func(lineage string, x float64) (*core.VehicleAgent, error) {
		cred, err := ta.IssueVehicleCredential(lineage)
		if err != nil {
			return nil, err
		}
		mob, err := mobility.NewMobile(highway, mobility.Position{X: x, Y: 100}, mobility.Eastbound, 14, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.NewVehicleAgent(env, core.VehicleConfig{Verify: true}, cred, mob)
		if err != nil {
			return nil, err
		}
		v.Start()
		return v, nil
	}

	reps := make([]*core.VehicleAgent, reporters)
	suspects := make([]*core.VehicleAgent, reporters)
	for i := range reps {
		x := 100 + float64(i%40)*10
		if reps[i], err = mk(fmt.Sprintf("rep-%d", i), x); err != nil {
			return FogResult{}, err
		}
		if suspects[i], err = mk(fmt.Sprintf("sus-%d", i), x+400); err != nil {
			return FogResult{}, err
		}
	}

	var latencies []time.Duration
	sched.After(time.Second, func() {
		for i := range reps {
			i := i
			filedAt := sched.Now()
			err := reps[i].ReportSuspect(suspects[i].NodeID(), 1, suspects[i].Credential().Cert.Serial,
				func(core.EstablishResult) {
					latencies = append(latencies, sched.Now()-filedAt)
				})
			if err != nil {
				return
			}
		}
	})
	deadline := 120 * time.Second
	for len(latencies) < reporters && sched.Now() < deadline && sched.Pending() > 0 {
		sched.Step()
	}
	if len(latencies) < reporters {
		return FogResult{}, fmt.Errorf("scenario: only %d/%d verdicts arrived", len(latencies), reporters)
	}

	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	st := head.Stats()
	return FogResult{
		Reporters:      reporters,
		FogNodes:       fogNodes,
		MeanVerdict:    sum / time.Duration(len(latencies)),
		MaxAuthLatency: st.AuthMaxLatency,
		AuthQueued:     st.AuthQueued,
	}, nil
}
