package scenario

import (
	"testing"
	"time"

	"blackdp/internal/metrics"
	"blackdp/internal/wire"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"defaults", func(*Config) {}, false},
		{"too few vehicles", func(c *Config) { c.Vehicles = 2 }, true},
		{"inverted speeds", func(c *Config) { c.SpeedMinKmh = 90; c.SpeedMaxKmh = 50 }, true},
		{"too many authorities", func(c *Config) { c.Authorities = 99 }, true},
		{"attacker cluster out of range", func(c *Config) { c.AttackerCluster = 11 }, true},
		{"loss rate 1", func(c *Config) { c.LossRate = 1 }, true},
		{"cooperative", func(c *Config) { c.Attack = CooperativeBlackHole }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.Vehicles != 100 || c.HighwayLengthM != 10_000 || c.Attack != SingleBlackHole {
		t.Errorf("withDefaults did not apply Table I: %+v", c)
	}
}

func TestAttackKindStrings(t *testing.T) {
	if NoAttack.String() != "none" || SingleBlackHole.String() != "single" ||
		CooperativeBlackHole.String() != "cooperative" {
		t.Error("attack kind names wrong")
	}
	if AttackKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.AttackerCluster = 5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
}

func TestSingleAttackDetectedInNonEvasiveClusters(t *testing.T) {
	for _, cl := range []int{1, 3, 6} {
		cfg := DefaultConfig()
		cfg.Seed = int64(100 + cl)
		cfg.AttackerCluster = cl
		o, err := Run(cfg)
		if err != nil {
			t.Fatalf("cluster %d: %v", cl, err)
		}
		if !o.Detected {
			t.Errorf("cluster %d: attacker not detected (status %s)", cl, o.EstablishStatus)
		}
		if o.FalseAccusations != 0 {
			t.Errorf("cluster %d: %d false accusations", cl, o.FalseAccusations)
		}
		if o.DetectionPackets < 6 || o.DetectionPackets > 9 {
			t.Errorf("cluster %d: %d detection packets, want within the paper's 6-9",
				cl, o.DetectionPackets)
		}
	}
}

func TestCooperativeAttackDetected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.Attack = CooperativeBlackHole
	cfg.AttackerCluster = 2
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("cooperative attacker not detected: %+v", o)
	}
	if !o.TeammateDetected {
		t.Error("accomplice not detected")
	}
	if o.DetectionPackets < 8 || o.DetectionPackets > 11 {
		t.Errorf("%d detection packets, want within the paper's 8-11", o.DetectionPackets)
	}
}

func TestEvasiveClustersProduceFalseNegativesNeverFalsePositives(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttackerCluster = 9
	cfg.EvasiveClusters = []int{8, 9, 10}
	outcomes, err := RunMany(cfg, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Aggregate(outcomes)
	if s.FP != 0 {
		t.Errorf("false positives in evasive runs: %d", s.FP)
	}
	if s.FN == 0 {
		t.Error("no false negatives despite evasion; accuracy should drop in clusters 8-10")
	}
	if s.TP == 0 {
		t.Error("evasion should not blind detection completely")
	}
}

func TestNoAttackRunIsCleanTrueNegative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.Attack = NoAttack
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp, fn, fp, tn := o.Classify()
	if tp || fn || fp || !tn {
		t.Errorf("clean run classified %v %v %v %v, want TN only", tp, fn, fp, tn)
	}
	if o.EstablishStatus != "verified" {
		t.Errorf("status = %q, want verified in an honest network", o.EstablishStatus)
	}
	// No transport layer: a packet can die during a mobility-induced route
	// transition, but an honest network must deliver the large majority.
	if o.DataSent == 0 || float64(o.DataDelivered) < 0.8*float64(o.DataSent) {
		t.Errorf("delivery %d/%d in an honest network", o.DataDelivered, o.DataSent)
	}
}

func TestPlainAODVLosesDataToBlackHole(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.AttackerCluster = 2
	cfg.Vehicle.Verify = false
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Detected {
		t.Error("plain AODV cannot detect anything")
	}
	if o.DataSent == 0 {
		t.Fatal("no data sent; scenario broken")
	}
	if o.DataDelivered != 0 {
		t.Errorf("black hole leaked %d/%d packets in plain mode", o.DataDelivered, o.DataSent)
	}
}

func TestBlackDPRestoresDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 17 // same world as the plain-mode test
	cfg.AttackerCluster = 2
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Fatalf("attacker not detected: %+v", o)
	}
	if o.DataDelivered == 0 {
		t.Errorf("no data delivered after isolation (%d sent)", o.DataSent)
	}
}

func TestInsecureSchemeRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 19
	cfg.AttackerCluster = 3
	cfg.RealCrypto = false
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Errorf("detection failed under the placeholder scheme: %+v", o)
	}
}

func TestLossyChannelStillDetects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 23
	cfg.AttackerCluster = 2
	cfg.LossRate = 0.02
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected && !o.Prevented {
		t.Errorf("2%% loss defeated the protocol entirely: %+v", o)
	}
}

func TestRunManyDistinctSeeds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttackerCluster = 2
	outcomes, err := RunMany(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("RunMany returned %d outcomes", len(outcomes))
	}
	seen := map[int64]bool{}
	for _, o := range outcomes {
		if seen[o.Seed] {
			t.Errorf("duplicate seed %d", o.Seed)
		}
		seen[o.Seed] = true
	}
}

func TestRunManyMutate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSimTime = 20 * time.Second
	clusters := []int{}
	_, err := RunMany(cfg, 2, func(rep int, c *Config) {
		c.AttackerCluster = rep + 1
		clusters = append(clusters, c.AttackerCluster)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 || clusters[0] != 1 || clusters[1] != 2 {
		t.Errorf("mutate hooks saw %v", clusters)
	}
}

func TestFig5AllCategoriesMatchPaper(t *testing.T) {
	for _, cat := range Fig5Categories() {
		cat := cat
		t.Run(cat.String(), func(t *testing.T) {
			res, err := RunFig5(cat, 3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Packets != cat.PaperPackets() {
				t.Errorf("detection packets = %d, paper reports %d (case %+v)",
					res.Packets, cat.PaperPackets(), res.Case)
			}
			wantVerdict := wire.VerdictMalicious
			if !cat.attacker() {
				wantVerdict = wire.VerdictLegitimate
			}
			if res.Verdict != wantVerdict {
				t.Errorf("verdict = %v, want %v", res.Verdict, wantVerdict)
			}
			if cat.cooperative() && res.Case.Teammate == 0 {
				t.Error("cooperative case did not expose the teammate")
			}
		})
	}
}

func TestFig5SeriesOrdered(t *testing.T) {
	series, err := Fig5Series(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig5Categories()) {
		t.Fatalf("series has %d entries", len(series))
	}
	for i, cat := range Fig5Categories() {
		if series[i].Category != cat {
			t.Errorf("series[%d] = %v, want %v", i, series[i].Category, cat)
		}
	}
}

func TestRunFig4SmallSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HighwayLengthM = 4000 // 4 clusters keeps the sweep fast
	cfg.Vehicles = 40
	cfg.Authorities = 1
	points, err := RunFig4(cfg, SingleBlackHole, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.Summary.Runs != 2 {
			t.Errorf("cluster %d: %d runs, want 2", p.Cluster, p.Summary.Runs)
		}
		if p.Summary.FP != 0 {
			t.Errorf("cluster %d: false positives", p.Cluster)
		}
	}
	// Non-evasive clusters (1, here) should detect perfectly.
	if points[0].Summary.Accuracy() != 1 {
		t.Errorf("cluster 1 accuracy = %v, want 1", points[0].Summary.Accuracy())
	}
}

func TestConnectorCaseDefeatsBaselinesNotBlackDP(t *testing.T) {
	// The paper's key related-work argument: when the attacker is the sole
	// connector between two highway segments, the source sees exactly one
	// (forged) reply. Comparison methods have nothing to compare, and a
	// modestly inflating attacker stays under every threshold — yet the
	// behavioural probe convicts it regardless of magnitude.
	res, err := RunConnector(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies != 1 {
		t.Fatalf("connector produced %d replies, want exactly 1", res.Replies)
	}
	for name, hit := range res.BaselineFlagged {
		if hit {
			t.Errorf("baseline %q flagged the modest connector attacker; the topology no longer isolates the weakness", name)
		}
	}
	if !res.BlackDPDetected {
		t.Error("BlackDP missed the connector attacker")
	}
}

func TestConnectorAggressiveAttackerStillDetected(t *testing.T) {
	res, err := RunConnector(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BlackDPDetected {
		t.Error("BlackDP missed the aggressive connector attacker")
	}
	if !res.BaselineFlagged["dynamic-peak"] {
		t.Error("peak detector should catch wildly inflated sequence numbers")
	}
}

func TestCompareDetectorsScoresAllRows(t *testing.T) {
	scores, err := CompareDetectors(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("got %d score rows, want 3 baselines + blackdp", len(scores))
	}
	var blackdp *DetectorScore
	for i := range scores {
		if scores[i].Runs != 2 {
			t.Errorf("%s scored %d runs, want 2", scores[i].Name, scores[i].Runs)
		}
		if scores[i].Name == "blackdp" {
			blackdp = &scores[i]
		}
	}
	if blackdp == nil {
		t.Fatal("no blackdp row")
	}
	if blackdp.Hits != 2 || blackdp.FalsePos != 0 {
		t.Errorf("blackdp score = %+v, want perfect on non-evasive attacks", *blackdp)
	}
}

func TestBuildExposesRoles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Attack = CooperativeBlackHole
	cfg.AttackerCluster = 4
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Source == nil || w.Destination == nil || w.Attacker == nil || w.Teammate == nil {
		t.Fatal("roles not populated")
	}
	if len(w.Vehicles) != cfg.Vehicles {
		t.Errorf("population = %d, want %d", len(w.Vehicles), cfg.Vehicles)
	}
	if len(w.Heads) != 10 || len(w.Authorities) != 2 {
		t.Errorf("infrastructure = %d heads, %d TAs", len(w.Heads), len(w.Authorities))
	}
	// Attacker placed in its cluster, destination out of its radio range.
	ax := w.Attacker.Mobile().PositionAt(0)
	if w.Highway.ClusterAt(ax.X) != 4 {
		t.Errorf("attacker at %v, want cluster 4", ax)
	}
	dx := w.Destination.Mobile().PositionAt(0)
	if ax.DistanceTo(dx) <= cfg.TxRangeM {
		t.Errorf("destination within attacker radio range: %v vs %v", ax, dx)
	}
	// Teammate within radio range of the primary.
	tx := w.Teammate.Mobile().PositionAt(0)
	if ax.DistanceTo(tx) > cfg.TxRangeM {
		t.Errorf("teammate out of the primary's range: %v vs %v", ax, tx)
	}
}
