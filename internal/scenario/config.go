// Package scenario builds and runs complete simulation scenarios: the Table
// I highway world (100 vehicles, 10 RSU cluster heads, trusted authorities,
// wired backbone), attacker placement rules, the source-destination workload,
// and per-run outcome extraction. It is the layer the public API, the
// example programs and the benchmark harness all drive.
package scenario

import (
	"fmt"
	"time"

	"blackdp/internal/core"
	"blackdp/internal/fault"
	"blackdp/internal/wire"
)

// AttackKind selects the adversary for a run.
type AttackKind int

// Attack kinds.
const (
	// NoAttack runs an honest network.
	NoAttack AttackKind = iota + 1
	// SingleBlackHole places one black hole vehicle.
	SingleBlackHole
	// CooperativeBlackHole places a black hole and a supporting accomplice
	// within mutual radio range.
	CooperativeBlackHole
)

func (k AttackKind) String() string {
	switch k {
	case NoAttack:
		return "none"
	case SingleBlackHole:
		return "single"
	case CooperativeBlackHole:
		return "cooperative"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// Config describes one simulation run. DefaultConfig returns the paper's
// Table I values; zero fields of a hand-built Config are filled from it.
type Config struct {
	// Seed drives every random decision of the run.
	Seed int64

	// Highway geometry (Table I).
	HighwayLengthM float64 // 10 km
	HighwayWidthM  float64 // 200 m
	ClusterLengthM float64 // 1000 m
	TxRangeM       float64 // 1000 m

	// Topology selects the road layout: "highway" (the paper's Table I
	// world, default), "grid" (Manhattan grid of GridRows×GridCols roads),
	// "multi" (HighwayCount parallel carriageways separated by HighwayGapM)
	// or "interchange" (two highways crossing at their midpoints). The
	// highway fields above parameterise every layout: road length, road
	// width and cluster length.
	Topology     string
	GridRows     int     // horizontal roads in a "grid" world (default 4)
	GridCols     int     // vertical roads in a "grid" world (default 4)
	HighwayCount int     // carriageways in a "multi" world (default 3)
	HighwayGapM  float64 // median width between "multi" carriageways (default 30)

	// LinearScan disables the radio medium's grid-hash spatial index and
	// restores the O(N) neighbor scan. The two are byte-identical (the
	// differential suite proves it); this is the reference path for that
	// proof and an escape hatch, not a tuning knob.
	LinearScan bool

	// Population (Table I).
	Vehicles    int     // 100
	SpeedMinKmh float64 // 50
	SpeedMaxKmh float64 // 90

	// Infrastructure.
	Authorities     int           // TA nodes; clusters are split evenly among them
	CertValidity    time.Duration // vehicle pseudonym lifetime
	BackboneLatency time.Duration // per-hop wired latency

	// Channel.
	LossRate float64 // per-receiver frame loss probability

	// Fault is the injected infrastructure fault schedule: head crashes,
	// backbone link cuts, Gilbert–Elliott burst loss, duplication and
	// reordering. The zero Plan injects nothing and leaves the run
	// byte-identical to a fault-free build (the ablation baseline).
	Fault fault.Plan

	// Protocol.
	Vehicle    core.VehicleConfig
	Head       core.HeadConfig
	RealCrypto bool // true: ECDSA P-256; false: free placeholder signatures

	// CryptoScheme picks the signature scheme by name, overriding the
	// RealCrypto boolean: "ecdsa" (P-256 per packet), "session" (one ECDSA
	// anchor per pseudonym epoch + HMAC-SHA256 per packet), or
	// "placeholder" (free digests, the ablation). Empty derives the scheme
	// from RealCrypto, keeping old configs working. The resolved name is
	// part of the canonical fingerprint: scheme classes never share cache
	// entries.
	CryptoScheme string

	// NoVerifyCache disables the per-agent verification cache, paying the
	// full Open cost on every reception. It is the reference path the
	// crypto differential wall compares against and is excluded from the
	// canonical fingerprint (caching is observably invisible).
	NoVerifyCache bool

	// Attack.
	Attack          AttackKind
	AttackerCluster int // 1-based; 0 picks a random cluster
	// ExtraAttackers adds this many further independent single black holes
	// in random clusters (the paper's attack model allows multiple
	// attackers in the network). Each attracts and drops traffic on its
	// own; detection handles them as separate cases.
	ExtraAttackers  int
	EvasiveClusters []int // clusters where the attacker draws evasive behaviour
	ActLegitProb    float64
	FleeProb        float64 // effective only when the attacker starts in the last cluster
	RenewProb       float64
	FakeHelloProb   float64     // probability of forging probe replies instead of staying silent
	SeqBonus        wire.SeqNum // forged-reply inflation; 0 = attack default

	// Workload.
	DataPackets int           // application packets sent once a route stands
	MaxSimTime  time.Duration // hard stop
	Trace       bool          // record a structured event log

	// RunWorkers selects the intra-run execution mode. <= 1 (the default)
	// runs the whole simulation on the serial scheduler — the legacy path,
	// byte-identical across releases. >= 2 runs it as a cluster-sharded
	// conservative parallel discrete-event simulation: filler vehicles are
	// partitioned into contiguous cluster strips with one event queue each,
	// executed on up to RunWorkers goroutines per conservative time window.
	// Sharded runs are deterministic and *independent of the exact worker
	// count* (2, 4 and 8 workers produce byte-identical outcomes), but they
	// draw radio RNG from per-shard streams (and, under real crypto,
	// per-shard signing streams), so they form their own mode distinct
	// from the serial stream. Sharded mode requires the spatial index
	// (LinearScan false) and excludes Trace — Validate enforces both; any
	// crypto scheme is allowed, since verification state is per-agent and
	// signing randomness is per-shard.
	RunWorkers int
}

// CryptoScheme names accepted by Config.CryptoScheme.
const (
	SchemeECDSA       = "ecdsa"       // full ECDSA P-256 per packet
	SchemeSession     = "session"     // ECDSA anchor per epoch + HMAC per packet
	SchemePlaceholder = "placeholder" // free digest signatures (ablation)
)

// SchemeName resolves the effective crypto scheme: the explicit CryptoScheme
// if set, otherwise derived from the legacy RealCrypto boolean.
func (c Config) SchemeName() string {
	if c.CryptoScheme != "" {
		return c.CryptoScheme
	}
	if c.RealCrypto {
		return SchemeECDSA
	}
	return SchemePlaceholder
}

// DefaultConfig returns the paper's Table I parameters with protocol
// defaults: verification on, real ECDSA, two trusted authorities, no channel
// loss, single black hole in a random cluster.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		HighwayLengthM:  10_000,
		HighwayWidthM:   200,
		ClusterLengthM:  1000,
		TxRangeM:        1000,
		Topology:        "highway",
		GridRows:        4,
		GridCols:        4,
		HighwayCount:    3,
		HighwayGapM:     30,
		Vehicles:        100,
		SpeedMinKmh:     50,
		SpeedMaxKmh:     90,
		Authorities:     2,
		CertValidity:    time.Hour,
		BackboneLatency: time.Millisecond,
		Vehicle:         core.VehicleConfig{Verify: true},
		RealCrypto:      true,
		Attack:          SingleBlackHole,
		ActLegitProb:    0.15,
		FleeProb:        0.3,
		RenewProb:       0.15,
		DataPackets:     10,
		MaxSimTime:      90 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HighwayLengthM == 0 {
		c.HighwayLengthM = def.HighwayLengthM
	}
	if c.HighwayWidthM == 0 {
		c.HighwayWidthM = def.HighwayWidthM
	}
	if c.ClusterLengthM == 0 {
		c.ClusterLengthM = def.ClusterLengthM
	}
	if c.TxRangeM == 0 {
		c.TxRangeM = def.TxRangeM
	}
	if c.Topology == "" {
		c.Topology = def.Topology
	}
	if c.GridRows == 0 {
		c.GridRows = def.GridRows
	}
	if c.GridCols == 0 {
		c.GridCols = def.GridCols
	}
	if c.HighwayCount == 0 {
		c.HighwayCount = def.HighwayCount
	}
	if c.HighwayGapM == 0 {
		c.HighwayGapM = def.HighwayGapM
	}
	if c.Vehicles == 0 {
		c.Vehicles = def.Vehicles
	}
	if c.SpeedMinKmh == 0 {
		c.SpeedMinKmh = def.SpeedMinKmh
	}
	if c.SpeedMaxKmh == 0 {
		c.SpeedMaxKmh = def.SpeedMaxKmh
	}
	if c.Authorities == 0 {
		c.Authorities = def.Authorities
	}
	if c.CertValidity == 0 {
		c.CertValidity = def.CertValidity
	}
	if c.BackboneLatency == 0 {
		c.BackboneLatency = def.BackboneLatency
	}
	if c.Attack == 0 {
		c.Attack = def.Attack
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = def.MaxSimTime
	}
	return c
}

// clusterCount returns how many clusters the configured topology has; the
// per-topology constructors in internal/mobility build exactly this many.
func (c Config) clusterCount() int {
	n := int(c.HighwayLengthM / c.ClusterLengthM)
	switch c.Topology {
	case "grid":
		return 2 * c.GridRows * c.GridCols
	case "multi":
		return n * c.HighwayCount
	case "interchange":
		return 2 * n
	default: // "highway"
		return n
	}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Topology {
	case "highway", "grid", "multi", "interchange":
	default:
		return fmt.Errorf("scenario: unknown topology %q", c.Topology)
	}
	switch {
	case c.GridRows < 1 || c.GridRows > 64 || c.GridCols < 1 || c.GridCols > 64:
		return fmt.Errorf("scenario: grid %dx%d out of range [1, 64]", c.GridRows, c.GridCols)
	case c.HighwayCount < 1 || c.HighwayCount > 64:
		return fmt.Errorf("scenario: %d carriageways out of range [1, 64]", c.HighwayCount)
	case c.HighwayGapM < 0:
		return fmt.Errorf("scenario: carriageway gap %v negative", c.HighwayGapM)
	}
	clusters := c.clusterCount()
	switch {
	case c.Vehicles < 4:
		return fmt.Errorf("scenario: %d vehicles cannot form source, destination and relays", c.Vehicles)
	case c.SpeedMaxKmh < c.SpeedMinKmh:
		return fmt.Errorf("scenario: speed range [%v, %v] inverted", c.SpeedMinKmh, c.SpeedMaxKmh)
	case c.Authorities < 1 || c.Authorities > clusters:
		return fmt.Errorf("scenario: %d authorities for %d clusters", c.Authorities, clusters)
	case c.AttackerCluster < 0 || c.AttackerCluster > clusters:
		return fmt.Errorf("scenario: attacker cluster %d out of range [0, %d]", c.AttackerCluster, clusters)
	case c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("scenario: loss rate %v out of [0, 1)", c.LossRate)
	case c.ExtraAttackers < 0 || c.ExtraAttackers > c.Vehicles/4:
		return fmt.Errorf("scenario: %d extra attackers for %d vehicles", c.ExtraAttackers, c.Vehicles)
	}
	switch c.SchemeName() {
	case SchemeECDSA, SchemeSession, SchemePlaceholder:
	default:
		return fmt.Errorf("scenario: unknown crypto scheme %q (want %q, %q or %q)",
			c.CryptoScheme, SchemeECDSA, SchemeSession, SchemePlaceholder)
	}
	if c.RunWorkers >= 2 {
		switch {
		case c.Trace:
			return fmt.Errorf("scenario: RunWorkers=%d excludes Trace (the recorder is not shard-safe)", c.RunWorkers)
		case c.LinearScan:
			return fmt.Errorf("scenario: RunWorkers=%d requires the spatial index (LinearScan=false)", c.RunWorkers)
		}
	}
	return c.Fault.Validate(clusters)
}

// CrashPlan is a convenience constructor for the most common fault schedule:
// the head of one cluster crashes at `at` and recovers at `recoverAt`
// (0 = stays down for the rest of the run).
func CrashPlan(cluster int, at, recoverAt time.Duration) fault.Plan {
	return fault.Plan{HeadCrashes: []fault.HeadCrash{
		{Cluster: cluster, At: at, RecoverAt: recoverAt},
	}}
}

// BurstPlan is a convenience constructor for a Gilbert–Elliott burst-loss
// channel: lossless good state, lossBad in the fading state, with the given
// state-transition probabilities per loss decision.
func BurstPlan(lossBad, goodToBad, badToGood float64) fault.Plan {
	return fault.Plan{Burst: fault.BurstLoss{
		LossBad: lossBad, GoodToBad: goodToBad, BadToGood: badToGood,
	}}
}
