package scenario

import (
	"context"
	"fmt"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/attack"
	"blackdp/internal/baseline"
	"blackdp/internal/cluster"
	"blackdp/internal/core"
	"blackdp/internal/exp"
	"blackdp/internal/metrics"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// DetectorScore aggregates a detector's performance over repeated runs.
type DetectorScore struct {
	Name       string
	Runs       int
	Hits       int // attacker flagged
	Misses     int // attacker present, not flagged
	FalsePos   int // innocent issuers flagged
	NoDecision int // detector had nothing to decide on (e.g. single reply)
}

// HitRate returns Hits / Runs.
func (s DetectorScore) HitRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Runs)
}

func (s DetectorScore) String() string {
	return fmt.Sprintf("%-24s hits=%d/%d fp=%d undecided=%d",
		s.Name, s.Hits, s.Runs, s.FalsePos, s.NoDecision)
}

// CompareDetectors runs reps Table-I scenarios and scores the related-work
// sequence-number detectors on the source's raw discovery replies, alongside
// BlackDP's behavioural detection on the same worlds.
func CompareDetectors(cfg Config, reps int) ([]DetectorScore, error) {
	return CompareDetectorsSweep(context.Background(), cfg, reps, SweepOptions{})
}

// compareEvidence is one replication's raw material for detector scoring:
// the discovery replies the source collected (for the sequence-number
// heuristics) and BlackDP's outcome on an identical world.
type compareEvidence struct {
	candidates []aodv.Candidate
	attackerID wire.NodeID
	outcome    metrics.Outcome
}

// CompareDetectorsSweep is CompareDetectors with cancellation and sweep
// options. The expensive part — building and running two worlds per
// replication — fans out across the pool; the detector evaluation then
// folds serially in replication order, because the dynamic-peak baseline
// is deliberately stateful across discoveries and must see them in the
// same order as the serial path.
func CompareDetectorsSweep(ctx context.Context, cfg Config, reps int, opt SweepOptions) ([]DetectorScore, error) {
	cfg = cfg.withDefaults()
	seedOf := func(rep int) int64 { return cfg.Seed + int64(rep)*104729 }
	evidence, err := exp.MapScratch(ctx, reps, exp.Options{
		Workers:  opt.Workers,
		SeedOf:   seedOf,
		Progress: opt.Progress,
	}, func(int) *sim.EventPool {
		return sim.NewEventPool()
	}, func(ctx context.Context, rep int, pool *sim.EventPool) (compareEvidence, error) {
		runCfg := cfg
		runCfg.Seed = seedOf(rep)

		// Raw discovery view for the sequence-number heuristics. The two
		// worlds of one replication run back to back on this worker, so they
		// share its event pool.
		w, err := buildPooled(runCfg, pool)
		if err != nil {
			return compareEvidence{}, err
		}
		ev := compareEvidence{}
		if w.Attacker != nil {
			ev.attackerID = w.Attacker.NodeID()
		}
		w.Sched.RunFor(1500 * time.Millisecond) // joins settle
		var got *aodv.DiscoverResult
		err = w.Source.Router().Discover(w.Destination.NodeID(),
			func(res aodv.DiscoverResult) { got = &res })
		if err != nil {
			return compareEvidence{}, err
		}
		w.Sched.RunFor(5 * time.Second)
		if got == nil {
			return compareEvidence{}, fmt.Errorf("scenario: discovery never completed (seed %d)", runCfg.Seed)
		}
		ev.candidates = got.Candidates

		// BlackDP's verdict on an identical world.
		o, err := runPooled(ctx, runCfg, pool)
		if err != nil {
			return compareEvidence{}, err
		}
		ev.outcome = o
		return ev, nil
	})
	if err != nil {
		return nil, err
	}

	detectors := baseline.All()
	scores := make([]DetectorScore, len(detectors)+1)
	for i, d := range detectors {
		scores[i].Name = d.Name()
	}
	scores[len(detectors)].Name = "blackdp"
	for _, ev := range evidence {
		for i, d := range detectors {
			scores[i].Runs++
			if len(ev.candidates) < 2 {
				if _, isFirst := d.(baseline.FirstReply); isFirst {
					scores[i].NoDecision++
					scores[i].Misses++
					continue
				}
			}
			e := baseline.Evaluate(d, ev.candidates, ev.attackerID)
			if e.Hit {
				scores[i].Hits++
			} else if ev.attackerID != 0 {
				scores[i].Misses++
			}
			scores[i].FalsePos += e.FalsePos
		}
		idx := len(detectors)
		scores[idx].Runs++
		switch {
		case ev.outcome.Detected:
			scores[idx].Hits++
		case ev.outcome.AttackerPresent:
			scores[idx].Misses++
		}
		scores[idx].FalsePos += ev.outcome.FalseAccusations
	}
	return scores, nil
}

// ConnectorResult reports the paper's connector case: the attacker is the
// only bridge between two disconnected highway segments, so the source
// receives exactly one (forged) route reply.
type ConnectorResult struct {
	Replies         int             // replies the source's discovery collected
	BaselineFlagged map[string]bool // detector name -> attacker flagged
	BlackDPDetected bool
}

// RunConnector builds the connector topology with the given forged-sequence
// inflation and compares every detector. Low inflation (e.g. 30) defeats
// all magnitude-based baselines; BlackDP's probing is magnitude-blind.
func RunConnector(seed int64, seqBonus wire.SeqNum) (ConnectorResult, error) {
	highway, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		return ConnectorResult{}, err
	}
	rng := sim.NewRNG(seed)
	sched := sim.NewScheduler()
	env := core.Env{
		Sched:    sched,
		RNG:      rng.Split("core"),
		Trust:    pki.NewTrustStore(),
		Scheme:   pki.ECDSA{Rand: rng.Split("crypto").Reader()},
		Dir:      cluster.NewDirectory(),
		Highway:  highway,
		Medium:   radio.NewMedium(sched, rng.Split("radio")),
		Backbone: radio.NewBackbone(sched, time.Millisecond),
		Tally:    core.NewTally(),
	}
	served := make([]wire.ClusterID, highway.Clusters())
	for i := range served {
		served[i] = wire.ClusterID(i + 1)
	}
	ta, err := core.NewAuthorityAgent(env, 1, 1, served, time.Hour)
	if err != nil {
		return ConnectorResult{}, err
	}
	// Only clusters 1 and 2 are RSU-equipped — the paper notes the highway
	// need not be fully covered. The destination sits in the uncovered
	// stretch, so no RSU can relay to it and the attacker really is the
	// sole bridge.
	for _, c := range []wire.ClusterID{1, 2} {
		cred, err := ta.IssueHeadCredential(c)
		if err != nil {
			return ConnectorResult{}, err
		}
		h, err := core.NewHeadAgent(env, core.HeadConfig{}, cred, c)
		if err != nil {
			return ConnectorResult{}, err
		}
		h.Start()
	}

	mk := func(lineage string, x float64) (*core.VehicleAgent, error) {
		cred, err := ta.IssueVehicleCredential(lineage)
		if err != nil {
			return nil, err
		}
		mob, err := mobility.NewMobile(highway, mobility.Position{X: x, Y: 100}, mobility.Eastbound, 14, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.NewVehicleAgent(env, core.VehicleConfig{Verify: true}, cred, mob)
		if err != nil {
			return nil, err
		}
		v.Start()
		return v, nil
	}
	// Source at 800, attacker at 1700, destination at 2600: adjacent pairs
	// are in range (900 m); source-destination is not (1800 m); and neither
	// equipped RSU (at 500 and 1500) can reach the destination. The
	// attacker bridges the partition and its forged reply is the only one
	// the source ever receives.
	source, err := mk("source", 800)
	if err != nil {
		return ConnectorResult{}, err
	}
	attacker, err := mk("attacker", 1700)
	if err != nil {
		return ConnectorResult{}, err
	}
	dest, err := mk("dest", 2600)
	if err != nil {
		return ConnectorResult{}, err
	}

	profile := attack.DefaultProfile()
	profile.SeqBonus = seqBonus
	bh := attack.NewBlackhole(profile, attack.Env{
		Sched:   sched,
		RNG:     rng.Split("attacker"),
		Send:    attacker.Interface().Send,
		Self:    attacker.Interface().NodeID,
		Cluster: attacker.Client().Cluster,
		Seal: func(p wire.Packet) ([]byte, error) {
			sec, err := pki.Seal(p, attacker.Credential(), env.Scheme)
			if err != nil {
				return nil, err
			}
			return sec.MarshalBinary()
		},
		Inner: attacker.HandleFrame,
	})
	attacker.Interface().SetReceiver(bh.HandleFrame)

	sched.RunFor(1500 * time.Millisecond)

	// Raw discovery for the baselines. The destination is radio-unreachable
	// (the black hole does not forward floods), so the forged reply is the
	// only candidate the source ever sees.
	var raw *aodv.DiscoverResult
	if err := source.Router().Discover(dest.NodeID(), func(r aodv.DiscoverResult) { raw = &r }); err != nil {
		return ConnectorResult{}, err
	}
	sched.RunFor(5 * time.Second)
	if raw == nil {
		return ConnectorResult{}, fmt.Errorf("scenario: connector discovery never completed")
	}
	res := ConnectorResult{
		Replies:         len(raw.Candidates),
		BaselineFlagged: make(map[string]bool),
	}
	for _, d := range baseline.All() {
		ev := baseline.Evaluate(d, raw.Candidates, attacker.NodeID())
		res.BaselineFlagged[d.Name()] = ev.Hit
	}

	// BlackDP's verified establishment on the same world.
	var done *core.EstablishResult
	if err := source.EstablishRoute(dest.NodeID(), func(r core.EstablishResult) { done = &r }); err != nil {
		return ConnectorResult{}, err
	}
	deadline := sched.Now() + 40*time.Second
	for done == nil && sched.Now() < deadline && sched.Pending() > 0 {
		sched.Step()
	}
	if done != nil && done.Status == core.StatusDetected {
		res.BlackDPDetected = true
	}
	return res, nil
}
