package scenario

import (
	"testing"
)

// metroConfig scales a grid-city world to the given vehicle count at
// roughly constant density (~100 vehicles per cluster, the Table I
// density), so the 1k/10k/100k curve measures how run cost scales with
// world size. Free signatures and a short horizon keep the benchmark about
// the simulator, not the crypto.
func metroConfig(vehicles, rowsCols int) Config {
	cfg := DefaultConfig()
	cfg.Topology = "grid"
	cfg.GridRows = rowsCols
	cfg.GridCols = rowsCols
	cfg.Vehicles = vehicles
	cfg.RealCrypto = false
	cfg.DataPackets = 2
	cfg.MaxSimTime = 10e9 // 10 simulated seconds
	return cfg
}

func benchmarkMetroRun(b *testing.B, vehicles, rowsCols, runWorkers int) {
	cfg := metroConfig(vehicles, rowsCols)
	cfg.RunWorkers = runWorkers
	b.ReportMetric(float64(2*rowsCols*rowsCols), "clusters")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The metro scaling curve: grid worlds of 18, 98 and 1058 clusters. The
// 100k point is the tentpole's acceptance run — a 100,000-vehicle,
// 1000+-cluster metro simulated on one machine.
func BenchmarkMetroRun1k(b *testing.B)   { benchmarkMetroRun(b, 1_000, 3, 1) }
func BenchmarkMetroRun10k(b *testing.B)  { benchmarkMetroRun(b, 10_000, 7, 1) }
func BenchmarkMetroRun100k(b *testing.B) { benchmarkMetroRun(b, 100_000, 23, 1) }

// The intra-run parallelism curve: the same worlds on the cluster-sharded
// executor at 2, 4 and 8 workers. Workers beyond the host's core count add
// only scheduling overhead — compare against GOMAXPROCS when reading the
// numbers, and against the serial benchmarks above for the sharding tax.
func BenchmarkMetroRun1kWorkers2(b *testing.B)   { benchmarkMetroRun(b, 1_000, 3, 2) }
func BenchmarkMetroRun1kWorkers4(b *testing.B)   { benchmarkMetroRun(b, 1_000, 3, 4) }
func BenchmarkMetroRun1kWorkers8(b *testing.B)   { benchmarkMetroRun(b, 1_000, 3, 8) }
func BenchmarkMetroRun10kWorkers2(b *testing.B)  { benchmarkMetroRun(b, 10_000, 7, 2) }
func BenchmarkMetroRun10kWorkers4(b *testing.B)  { benchmarkMetroRun(b, 10_000, 7, 4) }
func BenchmarkMetroRun10kWorkers8(b *testing.B)  { benchmarkMetroRun(b, 10_000, 7, 8) }
func BenchmarkMetroRun100kWorkers2(b *testing.B) { benchmarkMetroRun(b, 100_000, 23, 2) }
func BenchmarkMetroRun100kWorkers4(b *testing.B) { benchmarkMetroRun(b, 100_000, 23, 4) }
func BenchmarkMetroRun100kWorkers8(b *testing.B) { benchmarkMetroRun(b, 100_000, 23, 8) }
