package scenario

import (
	"testing"
	"time"
)

// Equal configs must fingerprint equally, and the fingerprint must be a pure
// function of the config value.
func TestFingerprintDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttackerCluster = 4
	a, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config fingerprinted differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not hex SHA-256", a)
	}
}

// A zero field and its explicit default describe the same run, so they must
// share a fingerprint.
func TestFingerprintAppliesDefaults(t *testing.T) {
	sparse := Config{Seed: 7, Attack: SingleBlackHole, AttackerCluster: 3,
		Vehicle: DefaultConfig().Vehicle, RealCrypto: true,
		ActLegitProb: 0.15, FleeProb: 0.3, RenewProb: 0.15, DataPackets: 10}
	full := DefaultConfig()
	full.Seed = 7
	full.AttackerCluster = 3

	a, err := Fingerprint(sparse)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(full)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("defaults-filled and sparse config diverge:\n  sparse %s\n  full   %s", a, b)
	}
}

// EvasiveClusters is a set: order and duplicates must not affect the key.
func TestFingerprintEvasiveClustersAreASet(t *testing.T) {
	a := DefaultConfig()
	a.EvasiveClusters = []int{10, 8, 9, 8}
	b := DefaultConfig()
	b.EvasiveClusters = []int{8, 9, 10}
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatal("evasive-cluster order changed the fingerprint")
	}

	// Empty and nil both mean "no evasive clusters".
	c := DefaultConfig()
	c.EvasiveClusters = []int{}
	d := DefaultConfig()
	d.EvasiveClusters = nil
	fc, _ := Fingerprint(c)
	fd, _ := Fingerprint(d)
	if fc != fd {
		t.Fatal("empty vs nil EvasiveClusters split the fingerprint")
	}
}

// Tracing only observes a run, so it must not change the key; everything
// that changes the run — seed, attack, fault plan — must.
func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	base.AttackerCluster = 2
	ref, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}

	traced := base
	traced.Trace = true
	if f, _ := Fingerprint(traced); f != ref {
		t.Fatal("Trace flag changed the fingerprint")
	}

	for name, mutate := range map[string]func(*Config){
		"seed":   func(c *Config) { c.Seed = 99 },
		"attack": func(c *Config) { c.Attack = CooperativeBlackHole },
		"fault":  func(c *Config) { c.Fault = CrashPlan(2, time.Second, 0) },
		"loss":   func(c *Config) { c.LossRate = 0.05 },
	} {
		c := base
		mutate(&c)
		f, err := Fingerprint(c)
		if err != nil {
			t.Fatal(err)
		}
		if f == ref {
			t.Fatalf("changing %s left the fingerprint unchanged", name)
		}
	}
}

// Invalid configs must not canonicalise.
func TestFingerprintRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 2
	if _, err := Fingerprint(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}

// Canonicalising must not mutate the caller's slice.
func TestCanonicalDoesNotMutateInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvasiveClusters = []int{10, 8, 9}
	if _, err := Canonical(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.EvasiveClusters[0] != 10 {
		t.Fatal("Canonical sorted the caller's EvasiveClusters in place")
	}
}
