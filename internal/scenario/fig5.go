package scenario

import (
	"context"
	"fmt"
	"time"

	"blackdp/internal/attack"
	"blackdp/internal/cluster"
	"blackdp/internal/core"
	"blackdp/internal/exp"
	"blackdp/internal/metrics"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// Fig5Category enumerates the detection-packet scenarios of the paper's
// Figure 5. "Local" means the suspect is registered in the reporter's own
// cluster; "Remote" means it lives elsewhere (one backbone hand-off);
// "Moved" means it answers the first probe and then crosses into the next
// cluster mid-examination, so the case is handed over with its probe state.
type Fig5Category int

// Figure 5 scenario categories.
const (
	Fig5NoAttackerLocal Fig5Category = iota + 1
	Fig5NoAttackerRemote
	Fig5SingleLocal
	Fig5SingleMoved
	Fig5SingleMovedRemote
	Fig5CooperativeLocal
	Fig5CooperativeMoved
	Fig5CooperativeMovedRemote
)

// Fig5Categories lists every category in presentation order.
func Fig5Categories() []Fig5Category {
	return []Fig5Category{
		Fig5NoAttackerLocal, Fig5NoAttackerRemote,
		Fig5SingleLocal, Fig5SingleMoved, Fig5SingleMovedRemote,
		Fig5CooperativeLocal, Fig5CooperativeMoved, Fig5CooperativeMovedRemote,
	}
}

func (c Fig5Category) String() string {
	switch c {
	case Fig5NoAttackerLocal:
		return "no-attacker/local"
	case Fig5NoAttackerRemote:
		return "no-attacker/remote"
	case Fig5SingleLocal:
		return "single/local"
	case Fig5SingleMoved:
		return "single/moved"
	case Fig5SingleMovedRemote:
		return "single/moved+remote"
	case Fig5CooperativeLocal:
		return "cooperative/local"
	case Fig5CooperativeMoved:
		return "cooperative/moved"
	case Fig5CooperativeMovedRemote:
		return "cooperative/moved+remote"
	default:
		return fmt.Sprintf("Fig5Category(%d)", int(c))
	}
}

// PaperPackets returns the packet count the paper reports for the category
// (Figure 5: four to six without an attacker; six, eight and nine for the
// single black hole; plus two for the cooperative one).
func (c Fig5Category) PaperPackets() int {
	switch c {
	case Fig5NoAttackerLocal:
		return 4
	case Fig5NoAttackerRemote:
		return 6
	case Fig5SingleLocal:
		return 6
	case Fig5SingleMoved:
		return 8
	case Fig5SingleMovedRemote:
		return 9
	case Fig5CooperativeLocal:
		return 8
	case Fig5CooperativeMoved:
		return 10
	case Fig5CooperativeMovedRemote:
		return 11
	default:
		return 0
	}
}

func (c Fig5Category) attacker() bool {
	return c != Fig5NoAttackerLocal && c != Fig5NoAttackerRemote
}

func (c Fig5Category) cooperative() bool {
	switch c {
	case Fig5CooperativeLocal, Fig5CooperativeMoved, Fig5CooperativeMovedRemote:
		return true
	}
	return false
}

func (c Fig5Category) moved() bool {
	switch c {
	case Fig5SingleMoved, Fig5SingleMovedRemote, Fig5CooperativeMoved, Fig5CooperativeMovedRemote:
		return true
	}
	return false
}

func (c Fig5Category) remote() bool {
	switch c {
	case Fig5NoAttackerRemote, Fig5SingleMovedRemote, Fig5CooperativeMovedRemote:
		return true
	}
	return false
}

// Fig5Result is the measured outcome of one Figure 5 scenario.
type Fig5Result struct {
	Category Fig5Category
	Packets  int
	Verdict  wire.Verdict
	Case     core.CaseTally
}

// RunFig5 executes one engineered Figure 5 scenario and returns the
// detection-packet count.
func RunFig5(cat Fig5Category, seed int64) (Fig5Result, error) {
	w, err := newFig5World(cat, seed)
	if err != nil {
		return Fig5Result{}, err
	}
	return w.run()
}

// fig5World is a purpose-built miniature highway for packet accounting:
// one reporter, one suspect (honest or hostile, optionally with an
// accomplice), full infrastructure, no filler traffic.
type fig5World struct {
	cat   Fig5Category
	env   core.Env
	sched *sim.Scheduler

	reporter *core.VehicleAgent
	suspect  *core.VehicleAgent
	teammate *core.VehicleAgent
}

func newFig5World(cat Fig5Category, seed int64) (*fig5World, error) {
	highway, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	sched := sim.NewScheduler()
	env := core.Env{
		Sched:    sched,
		RNG:      rng.Split("core"),
		Trust:    pki.NewTrustStore(),
		Scheme:   pki.ECDSA{Rand: rng.Split("crypto").Reader()},
		Dir:      cluster.NewDirectory(),
		Highway:  highway,
		Medium:   radio.NewMedium(sched, rng.Split("radio")),
		Backbone: radio.NewBackbone(sched, time.Millisecond),
		Tally:    core.NewTally(),
	}
	w := &fig5World{cat: cat, env: env, sched: sched}

	served := make([]wire.ClusterID, highway.Clusters())
	for i := range served {
		served[i] = wire.ClusterID(i + 1)
	}
	ta, err := core.NewAuthorityAgent(env, 1, 1, served, time.Hour)
	if err != nil {
		return nil, err
	}
	headCfg := core.HeadConfig{}
	if cat.moved() {
		// The verification-table processing interval during which the
		// suspect crosses into the next cluster.
		headCfg.StageDelay = 2500 * time.Millisecond
	}
	for c := wire.ClusterID(1); int(c) <= highway.Clusters(); c++ {
		cred, err := ta.IssueHeadCredential(c)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHeadAgent(env, headCfg, cred, c)
		if err != nil {
			return nil, err
		}
		h.Start()
	}

	mkVehicle := func(lineage string, x, speed float64) (*core.VehicleAgent, error) {
		cred, err := ta.IssueVehicleCredential(lineage)
		if err != nil {
			return nil, err
		}
		mob, err := mobility.NewMobile(highway, mobility.Position{X: x, Y: 100}, mobility.Eastbound, speed, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.NewVehicleAgent(env, core.VehicleConfig{Verify: true}, cred, mob)
		if err != nil {
			return nil, err
		}
		v.Start()
		return v, nil
	}

	// Reporter near the start of cluster 1, dawdling.
	if w.reporter, err = mkVehicle("reporter", 200, 14); err != nil {
		return nil, err
	}

	// Suspect placement: local cases keep it in the reporter's cluster;
	// remote cases start it one cluster over (so the d_req crosses the
	// backbone once); moved cases start it 25 m short of its cluster's end
	// at 25 m/s, crossing one second after the examination begins.
	var suspectX float64
	speed := 14.0
	switch {
	case cat.moved() && cat.remote():
		suspectX, speed = 1950, 25
	case cat.moved():
		suspectX, speed = 950, 25
	case cat.remote():
		suspectX = 2600
	default:
		suspectX = 700
	}
	if w.suspect, err = mkVehicle("suspect", suspectX, speed); err != nil {
		return nil, err
	}

	if cat.attacker() {
		if cat.cooperative() {
			if w.teammate, err = mkVehicle("teammate", suspectX+250, speed); err != nil {
				return nil, err
			}
			tp := attack.DefaultProfile()
			tp.SupportOnly = true
			w.arm(w.teammate, tp)
		}
		p := attack.DefaultProfile()
		if w.teammate != nil {
			p.Teammate = w.teammate.NodeID()
		}
		w.arm(w.suspect, p)
	}
	return w, nil
}

func (w *fig5World) arm(v *core.VehicleAgent, profile attack.Profile) {
	bh := attack.NewBlackhole(profile, attack.Env{
		Sched:   w.sched,
		RNG:     w.env.RNG.Split("attacker-" + v.NodeID().String()),
		Send:    v.Interface().Send,
		Self:    v.Interface().NodeID,
		Cluster: v.Client().Cluster,
		Seal: func(p wire.Packet) ([]byte, error) {
			sec, err := pki.Seal(p, v.Credential(), w.env.Scheme)
			if err != nil {
				return nil, err
			}
			return sec.MarshalBinary()
		},
		Inner: v.HandleFrame,
	})
	v.Interface().SetReceiver(bh.HandleFrame)
}

func (w *fig5World) run() (Fig5Result, error) {
	suspectID := w.suspect.NodeID()
	var done bool
	w.sched.After(time.Second, func() {
		cluster := w.suspect.Client().Cluster()
		serial := w.suspect.Credential().Cert.Serial
		err := w.reporter.ReportSuspect(suspectID, cluster, serial, func(core.EstablishResult) { done = true })
		if err != nil {
			done = true
		}
	})
	deadline := 30 * time.Second
	for !done && w.sched.Now() < deadline && w.sched.Pending() > 0 {
		w.sched.Step()
	}
	if !done {
		return Fig5Result{}, fmt.Errorf("scenario: %v report never resolved", w.cat)
	}
	// Let trailing isolation traffic settle for the tally.
	w.sched.RunFor(2 * time.Second)

	ct, ok := w.env.Tally.Lookup(suspectID)
	if !ok {
		return Fig5Result{}, fmt.Errorf("scenario: %v produced no tally case", w.cat)
	}
	return Fig5Result{Category: w.cat, Packets: ct.DetectionPackets(), Verdict: ct.Verdict, Case: *ct}, nil
}

// Fig5Series runs every category and returns the measured packet counts in
// presentation order, one category per worker.
func Fig5Series(seed int64) ([]Fig5Result, error) {
	return Fig5SeriesSweep(context.Background(), seed, SweepOptions{})
}

// Fig5SeriesSweep is Fig5Series with cancellation and sweep options. Each
// category builds its own miniature world from the same seed, so results
// match the serial path for any worker count.
func Fig5SeriesSweep(ctx context.Context, seed int64, opt SweepOptions) ([]Fig5Result, error) {
	cats := Fig5Categories()
	return exp.Map(ctx, len(cats), exp.Options{
		Workers:  opt.Workers,
		SeedOf:   func(int) int64 { return seed },
		Progress: opt.Progress,
	}, func(_ context.Context, i int) (Fig5Result, error) {
		return RunFig5(cats[i], seed)
	})
}

// Fig4Point is one bar of the paper's Figure 4: single or cooperative
// attack, per attacker cluster.
type Fig4Point struct {
	Cluster int
	Kind    AttackKind
	Summary metrics.Summary
}

// RunFig4 sweeps attacker clusters 1..N for the given attack kind with reps
// repetitions each, enabling the paper's evasive behaviours in clusters
// 8-10 (generalised: the last three clusters).
func RunFig4(base Config, kind AttackKind, reps int) ([]Fig4Point, error) {
	return RunFig4Sweep(context.Background(), base, kind, reps, SweepOptions{})
}

// RunFig4Sweep is RunFig4 with cancellation and sweep options. The full
// clusters x reps grid is one flat sweep, so the pool stays saturated
// across cluster boundaries; points still come back in cluster order with
// replications aggregated in replication order.
func RunFig4Sweep(ctx context.Context, base Config, kind AttackKind, reps int, opt SweepOptions) ([]Fig4Point, error) {
	base = base.withDefaults()
	clusters := int(base.HighwayLengthM / base.ClusterLengthM)
	evasive := []int{}
	for c := clusters - 2; c <= clusters; c++ {
		if c >= 1 {
			evasive = append(evasive, c)
		}
	}
	cfgs := make([]Config, clusters*reps)
	for c := 1; c <= clusters; c++ {
		for rep := 0; rep < reps; rep++ {
			cfg := base
			cfg.Attack = kind
			cfg.AttackerCluster = c
			cfg.EvasiveClusters = evasive
			cfg.Seed = base.Seed + int64(rep)*7919
			cfgs[(c-1)*reps+rep] = cfg
		}
	}
	outcomes, err := exp.MapScratch(ctx, len(cfgs), exp.Options{
		Workers:  opt.Workers,
		SeedOf:   func(i int) int64 { return cfgs[i].Seed },
		Progress: opt.Progress,
	}, func(int) *sim.EventPool {
		return sim.NewEventPool()
	}, func(ctx context.Context, i int, pool *sim.EventPool) (metrics.Outcome, error) {
		return runPooled(ctx, cfgs[i], pool)
	})
	if err != nil {
		return nil, err
	}
	points := make([]Fig4Point, 0, clusters)
	for c := 1; c <= clusters; c++ {
		batch := outcomes[(c-1)*reps : c*reps]
		points = append(points, Fig4Point{Cluster: c, Kind: kind, Summary: metrics.Aggregate(batch)})
	}
	return points, nil
}
