package scenario

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// The sharded equality wall. The pinned invariant (DESIGN.md): RunWorkers <= 1
// is the legacy serial path, byte-identical across releases (the golden-hash
// and differential suites hold that); RunWorkers >= 2 is the cluster-sharded
// conservative PDES, whose outcomes are deterministic and independent of the
// exact worker count — 2, 4 and 8 workers must produce byte-identical
// outcomes, because the shard layout is fixed and the mail merge order is a
// pure function of the simulation. Run with -race: the wall doubles as the
// proof that the window barriers sequence every cross-shard access.

// shardedConfig is a sharded-eligible scenario: placeholder crypto (the one
// hard requirement), everything else the paper's Table I world.
func shardedConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.RealCrypto = false
	return cfg
}

func TestRunWorkersCountIndependence(t *testing.T) {
	seeds := make([]int64, 0, 20)
	for s := int64(1); s <= 20; s++ {
		seeds = append(seeds, s)
	}
	for _, seed := range seeds {
		base := shardedConfig(seed)
		base.RunWorkers = 2
		want, err := Run(base)
		if err != nil {
			t.Fatalf("seed %d workers=2: %v", seed, err)
		}
		for _, workers := range []int{4, 8} {
			cfg := shardedConfig(seed)
			cfg.RunWorkers = workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			if got != want {
				t.Errorf("seed %d: workers=%d diverged from workers=2:\n got  %+v\n want %+v", seed, workers, got, want)
			}
		}
	}
}

func TestRunWorkersReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11, 17} {
		cfg := shardedConfig(seed)
		cfg.RunWorkers = 4
		first, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if first != again {
			t.Errorf("seed %d: sharded replay diverged:\n got  %+v\n want %+v", seed, again, first)
		}
	}
}

// TestRunWorkersGridTopology drives the sharded executor through a 2D road
// mesh — different cluster geometry, different strip partition — and holds
// worker-count independence plus the channel conservation ledger there too.
func TestRunWorkersGridTopology(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		base := shardedConfig(seed)
		base.Topology = "grid"
		base.GridRows, base.GridCols = 3, 3
		base.RunWorkers = 2
		w, err := Build(base)
		if err != nil {
			t.Fatalf("seed %d build: %v", seed, err)
		}
		want := w.Run()
		if err := w.CheckConservation(); err != nil {
			t.Fatalf("seed %d conservation: %v", seed, err)
		}
		cfg := base
		cfg.RunWorkers = 8
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d workers=8: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d grid: workers=8 diverged from workers=2:\n got  %+v\n want %+v", seed, got, want)
		}
	}
}

// TestRunWorkersSerialEquivalence pins workers 0 and 1 to the same mode: both
// must run the legacy serial scheduler and produce byte-identical outcomes.
func TestRunWorkersSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{2, 9} {
		zero := shardedConfig(seed)
		want, err := Run(zero)
		if err != nil {
			t.Fatalf("seed %d workers=0: %v", seed, err)
		}
		one := shardedConfig(seed)
		one.RunWorkers = 1
		got, err := Run(one)
		if err != nil {
			t.Fatalf("seed %d workers=1: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: workers=1 diverged from workers=0:\n got  %+v\n want %+v", seed, got, want)
		}
	}
}

func TestRunWorkersConservation(t *testing.T) {
	for _, seed := range []int64{1, 4, 13} {
		cfg := shardedConfig(seed)
		cfg.RunWorkers = 4
		w, err := Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = w.Run()
		if err := w.CheckConservation(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRunWorkersValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"trace", func(c *Config) { c.Trace = true }, "Trace"},
		{"linear scan", func(c *Config) { c.LinearScan = true }, "spatial index"},
		{"unknown scheme", func(c *Config) { c.CryptoScheme = "rot13" }, "crypto scheme"},
	}
	for _, tc := range cases {
		cfg := shardedConfig(1)
		cfg.RunWorkers = 4
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
	// Real crypto is no longer gated: verification state is per-agent and
	// signing randomness per-shard, so every scheme shards cleanly.
	for _, scheme := range []string{"", SchemeECDSA, SchemeSession, SchemePlaceholder} {
		ok := shardedConfig(1)
		ok.RunWorkers = 4
		ok.CryptoScheme = scheme
		if scheme != "" {
			ok.RealCrypto = scheme != SchemePlaceholder
		}
		if err := ok.Validate(); err != nil {
			t.Errorf("sharded config with scheme %q rejected: %v", scheme, err)
		}
	}
}

// TestReconcileWorkers pins the budget split between the sweep pool and
// intra-run shard workers: the product stays within GOMAXPROCS, intra-run
// shrinks first (floor 2), the sweep pool shrinks last (floor 1), and a
// config's execution mode — serial vs sharded — is never changed.
func TestReconcileWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	t.Run("serial sweeps pass through", func(t *testing.T) {
		cfgs := []Config{shardedConfig(1), shardedConfig(2)}
		cfgs[1].RunWorkers = 1
		if got := reconcileWorkers(5, cfgs); got != 5 {
			t.Errorf("reconcileWorkers = %d, want 5 untouched", got)
		}
		if cfgs[0].RunWorkers != 0 || cfgs[1].RunWorkers != 1 {
			t.Errorf("serial configs mutated: %d, %d", cfgs[0].RunWorkers, cfgs[1].RunWorkers)
		}
	})

	t.Run("intra-run shrinks first", func(t *testing.T) {
		cfgs := []Config{shardedConfig(1)}
		cfgs[0].RunWorkers = 4
		if got := reconcileWorkers(4, cfgs); got != 4 {
			t.Errorf("sweep pool = %d, want 4 (intra-run should absorb the clamp)", got)
		}
		if cfgs[0].RunWorkers != 2 {
			t.Errorf("RunWorkers = %d, want 2", cfgs[0].RunWorkers)
		}
	})

	t.Run("sweep pool shrinks after intra-run floors", func(t *testing.T) {
		cfgs := []Config{shardedConfig(1)}
		cfgs[0].RunWorkers = 8
		if got := reconcileWorkers(8, cfgs); got != 4 {
			t.Errorf("sweep pool = %d, want 4 (8 pool x 2 run > 8 procs)", got)
		}
		if cfgs[0].RunWorkers != 2 {
			t.Errorf("RunWorkers = %d, want 2", cfgs[0].RunWorkers)
		}
	})

	t.Run("zero sweep workers means one per CPU", func(t *testing.T) {
		cfgs := []Config{shardedConfig(1)}
		cfgs[0].RunWorkers = 2
		if got := reconcileWorkers(0, cfgs); got != 4 {
			t.Errorf("sweep pool = %d, want 4 (8 procs / 2 run workers)", got)
		}
	})

	t.Run("mixed modes clamp only sharded configs", func(t *testing.T) {
		cfgs := []Config{shardedConfig(1), shardedConfig(2)}
		cfgs[0].RunWorkers = 1
		cfgs[1].RunWorkers = 8
		_ = reconcileWorkers(8, cfgs)
		if cfgs[0].RunWorkers != 1 {
			t.Errorf("serial config switched mode: RunWorkers = %d", cfgs[0].RunWorkers)
		}
		if cfgs[1].RunWorkers < 2 {
			t.Errorf("sharded config left sharded mode: RunWorkers = %d", cfgs[1].RunWorkers)
		}
	})
}

// TestRunWorkersSweep drives sharded runs through the replication pool: a
// sweep of sharded configs must yield exactly the outcomes of running each
// replication alone, with the reconciled budget applied underneath.
func TestRunWorkersSweep(t *testing.T) {
	base := shardedConfig(31)
	base.RunWorkers = 2
	got, err := RunSweep(context.Background(), base, 3, SweepOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rep, o := range got {
		cfg := base
		cfg.Seed = base.Seed + int64(rep)*7919
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if o != want {
			t.Errorf("rep %d: sweep outcome diverged from solo run:\n got  %+v\n want %+v", rep, o, want)
		}
	}
}

// TestRunWorkersFingerprint pins the cache-key equivalence classes: every
// serial worker count shares one fingerprint, every sharded count another,
// and the two classes differ (sharded runs draw per-shard RNG streams, so
// they are a distinct mode with distinct results).
func TestRunWorkersFingerprint(t *testing.T) {
	fp := func(workers int) string {
		cfg := shardedConfig(1)
		cfg.RunWorkers = workers
		s, err := Fingerprint(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	if fp(0) != fp(1) {
		t.Error("workers 0 and 1 should share the serial fingerprint")
	}
	if fp(2) != fp(8) {
		t.Error("workers 2 and 8 should share the sharded fingerprint")
	}
	if fp(1) == fp(2) {
		t.Error("serial and sharded modes must have distinct fingerprints")
	}
}
