package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blackdp/internal/aodv"
	"blackdp/internal/attack"
	"blackdp/internal/cluster"
	"blackdp/internal/core"
	"blackdp/internal/exp"
	"blackdp/internal/fault"
	"blackdp/internal/metrics"
	"blackdp/internal/mobility"
	"blackdp/internal/pki"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/trace"
	"blackdp/internal/wire"
)

// shardStrips is the number of non-anchor strip shards in a sharded run
// (Config.RunWorkers >= 2). It is fixed — never derived from the worker
// count — so sharded outcomes are independent of how many workers execute
// them: workers decide only which OS thread runs a strip, never what the
// strip observes.
const shardStrips = 8

// shardLookahead is the conservative window length of a sharded run: a lower
// bound on the virtual latency of every cross-shard interaction. Shards
// interact only through the radio medium, whose per-copy delay is at least
// the frame's airtime (transmission delay; propagation and jitter only add).
// The smallest wire packet is well over 8 bytes, so 64 bits at the 6 Mb/s
// DSRC bitrate — 10666ns, floored to stay a lower bound — is safe for every
// frame. The radio layer panics on any cross-shard post that would land
// inside the window, so a wrong bound fails loudly, never silently.
const shardLookahead = 10666 * time.Nanosecond

// World is one fully constructed simulation: infrastructure, population,
// adversary and workload, ready to Run.
type World struct {
	Cfg   Config
	Env   core.Env
	Sched *sim.Scheduler
	// Topo is the road layout; always set. Highway is the same object when
	// Cfg.Topology is "highway" (nil for mesh topologies) — kept for callers
	// that need the highway's coordinate helpers.
	Topo        mobility.Topology
	Highway     *mobility.Highway
	Authorities []*core.AuthorityAgent
	Heads       map[wire.ClusterID]*core.HeadAgent
	Vehicles    []*core.VehicleAgent

	Source      *core.VehicleAgent
	Destination *core.VehicleAgent
	Attacker    *core.VehicleAgent
	Teammate    *core.VehicleAgent
	AttackerBH  *attack.Blackhole
	TeammateBH  *attack.Blackhole
	// Extras are the additional independent black holes, when
	// Config.ExtraAttackers > 0.
	Extras []*Hostile

	attackerIDs map[wire.NodeID]bool // every pseudonym the primary attacker held
	teammateIDs map[wire.NodeID]bool

	mesh   *mobility.RoadMesh // non-nil for "grid"/"multi"/"interchange"
	rng    *sim.RNG
	vehSeq int

	// Sharded execution (Config.RunWorkers >= 2). shard is the conservative
	// PDES executor; ports are the per-sim-shard radio contexts, indexed like
	// the executor's shards (0 = anchor). Both nil/empty on the serial path.
	// fillers flips once the named protocol participants are placed: from
	// then on new vehicles home on their initial cluster's strip shard.
	shard   *sim.Sharded
	ports   []*radio.Shard
	fillers bool
	// shardSchemes are the per-shard ECDSA signing streams of a sharded
	// real-crypto run, indexed like ports; nil otherwise.
	shardSchemes []pki.Scheme
}

// Hostile bundles one extra attacker with its interceptor and the pseudonym
// history needed to attribute verdicts after renewals.
type Hostile struct {
	Agent *core.VehicleAgent
	BH    *attack.Blackhole
	ids   map[wire.NodeID]bool
}

// Detected reports whether any of the hostile's identities was convicted in
// the tally.
func (h *Hostile) detectedIn(t *core.Tally) bool {
	for _, ct := range t.Cases() {
		if ct.Verdict == wire.VerdictMalicious && h.ids[ct.Suspect] {
			return true
		}
	}
	return false
}

// Build constructs the world for cfg without running it.
func Build(cfg Config) (*World, error) {
	return buildPooled(cfg, nil)
}

// buildTopology constructs the road layout cfg selects. The highway return
// is non-nil only for "highway", the mesh only for the 2D layouts; exactly
// one of the two backs the Topology.
func buildTopology(cfg Config) (mobility.Topology, *mobility.Highway, *mobility.RoadMesh, error) {
	switch cfg.Topology {
	case "", "highway":
		hw, err := mobility.NewHighway(cfg.HighwayLengthM, cfg.HighwayWidthM, cfg.ClusterLengthM)
		if err != nil {
			return nil, nil, nil, err
		}
		return hw, hw, nil, nil
	case "grid":
		m, err := mobility.NewGridCity(cfg.GridRows, cfg.GridCols, cfg.ClusterLengthM, cfg.HighwayWidthM)
		if err != nil {
			return nil, nil, nil, err
		}
		return m, nil, m, nil
	case "multi":
		m, err := mobility.NewMultiHighway(cfg.HighwayCount, cfg.HighwayLengthM, cfg.HighwayWidthM, cfg.HighwayGapM, cfg.ClusterLengthM)
		if err != nil {
			return nil, nil, nil, err
		}
		return m, nil, m, nil
	case "interchange":
		m, err := mobility.NewInterchange(cfg.HighwayLengthM, cfg.HighwayWidthM, cfg.ClusterLengthM)
		if err != nil {
			return nil, nil, nil, err
		}
		return m, nil, m, nil
	default:
		return nil, nil, nil, fmt.Errorf("scenario: unknown topology %q", cfg.Topology)
	}
}

// buildPooled is Build with a shared event pool for the scheduler. Sweep
// workers pass their per-worker pool so consecutive replications reuse one
// warmed free list; a nil pool gives the scheduler a private pool, which is
// exactly Build. Pooling must stay invisible to outcomes — the differential
// and golden-hash tests in this package enforce that.
func buildPooled(cfg Config, pool *sim.EventPool) (*World, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, highway, mesh, err := buildTopology(cfg)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	var (
		sched *sim.Scheduler
		shard *sim.Sharded
	)
	if cfg.RunWorkers >= 2 {
		// Cluster-sharded conservative PDES: shard 0 anchors every agent that
		// touches run-global state, shards 1..shardStrips carry contiguous
		// strips of filler vehicles. The anchor's scheduler doubles as the
		// world's build-time clock; every shard clock starts (and stays, at
		// window barriers) in lockstep with it.
		shard = sim.NewSharded(shardLookahead, 1+shardStrips, cfg.RunWorkers)
		sched = shard.Anchor().Scheduler()
	} else {
		sched = sim.NewSchedulerWithPool(pool)
	}

	var scheme pki.Scheme = pki.Insecure{}
	switch cfg.SchemeName() {
	case SchemeECDSA:
		scheme = pki.ECDSA{Rand: rng.Split("crypto").Reader()}
	case SchemeSession:
		// One shared instance models the epoch key-agreement channel; it
		// is mutex-guarded, and no anchor nonce reaches the wire, so both
		// serial and sharded outcomes stay deterministic.
		scheme = pki.NewSessionToken(rng.Split("crypto").Reader())
	}
	var tracer *trace.Recorder
	if cfg.Trace {
		tracer = trace.NewRecorder(sched.Now, 0)
	}
	radioOpts := []radio.Option{radio.WithRange(cfg.TxRangeM), radio.WithLossRate(cfg.LossRate)}
	if cfg.LinearScan {
		radioOpts = append(radioOpts, radio.WithLinearScan())
	}
	if cfg.Fault.Burst.Enabled() {
		b := cfg.Fault.Burst
		radioOpts = append(radioOpts, radio.WithBurstLoss(b.LossGood, b.LossBad, b.GoodToBad, b.BadToGood))
	}
	if cfg.Fault.DuplicateProb > 0 {
		radioOpts = append(radioOpts, radio.WithDuplication(cfg.Fault.DuplicateProb))
	}
	if cfg.Fault.ReorderProb > 0 {
		radioOpts = append(radioOpts, radio.WithReordering(cfg.Fault.ReorderProb, cfg.Fault.ReorderMax))
	}
	// Split order is part of the serial byte-identity contract: crypto (when
	// real), core, radio — exactly the historical sequence.
	coreRNG := rng.Split("core")
	medium := radio.NewMedium(sched, rng.Split("radio"), radioOpts...)
	var ports []*radio.Shard
	if shard != nil {
		// One radio context per sim shard, registered before any device
		// attaches. Per-shard RNG streams are split serially here, so they
		// are a pure function of the seed and the (fixed) shard count.
		for i := 0; i < shard.Shards(); i++ {
			sh := shard.Shard(i)
			ports = append(ports, medium.AddShard(sh, sh, rng.Split(fmt.Sprintf("radio-shard-%d", i))))
		}
		// Windows read the spatial index lock-free; the barrier brings it up
		// to the window end before any shard starts (refreshing slightly
		// ahead is safe — see Medium.RefreshIndex).
		shard.OnWindow(func(_, we time.Duration) { medium.RefreshIndex(we) })
	}
	var shardSchemes []pki.Scheme
	if shard != nil && cfg.SchemeName() == SchemeECDSA {
		// ECDSA signing draws nonce randomness per signature, so strip
		// shards each get their own signing stream — agents on one shard
		// sign serially, and the draw sequence per shard is a pure function
		// of the sim, keeping sharded real-crypto runs worker-count
		// independent. These splits exist only in the sharded+ECDSA mode
		// (previously rejected by Validate), so no historical stream moves.
		for i := 0; i < shard.Shards(); i++ {
			shardSchemes = append(shardSchemes, pki.ECDSA{Rand: rng.Split(fmt.Sprintf("crypto-shard-%d", i)).Reader()})
		}
	}
	env := core.Env{
		Sched:    sched,
		RNG:      coreRNG,
		Trust:    pki.NewTrustStore(),
		Scheme:   scheme,
		Dir:      cluster.NewDirectory(),
		Highway:  topo,
		Medium:   medium,
		Backbone: radio.NewBackbone(sched, cfg.BackboneLatency),
		Tracer:   tracer,
		Tally:    core.NewTally(),

		NoVerifyCache: cfg.NoVerifyCache,
	}
	if shard != nil {
		env.Port = ports[0]
	}
	w := &World{
		Cfg:          cfg,
		Env:          env,
		Sched:        sched,
		Topo:         topo,
		Highway:      highway,
		mesh:         mesh,
		Heads:        make(map[wire.ClusterID]*core.HeadAgent),
		attackerIDs:  make(map[wire.NodeID]bool),
		teammateIDs:  make(map[wire.NodeID]bool),
		rng:          rng,
		shard:        shard,
		ports:        ports,
		shardSchemes: shardSchemes,
	}
	if mesh != nil {
		// Mesh clusters have more than two neighbors; the directory's
		// consecutive-cluster default only fits the single highway. The hook
		// is not installed for "highway": the default already matches
		// Highway.Neighbors, and leaving the seed path untouched keeps the
		// golden hashes trivially safe.
		env.Dir.SetNeighbors(func(c wire.ClusterID) []wire.ClusterID {
			if int(c) < 1 || int(c) > mesh.Clusters() {
				return nil
			}
			ns := mesh.Neighbors(int(c))
			out := make([]wire.ClusterID, len(ns))
			for i, n := range ns {
				out[i] = wire.ClusterID(n)
			}
			return out
		})
	}
	if err := w.buildInfrastructure(); err != nil {
		return nil, err
	}
	if err := w.buildPopulation(); err != nil {
		return nil, err
	}
	// Timed faults go on the same deterministic event queue as everything
	// else; channel impairments were already baked into the medium above.
	fault.Schedule(sched, cfg.Fault, fault.Targets{
		CrashHead:   func(c int) { w.Heads[wire.ClusterID(c)].Crash() },
		RecoverHead: func(c int) { w.Heads[wire.ClusterID(c)].Recover() },
		CutLink:     func(l int) { env.Backbone.CutLink(l) },
		HealLink:    func(l int) { env.Backbone.HealLink(l) },
	})
	return w, nil
}

// CheckConservation audits the packet ledgers of both channels: every frame
// copy offered to the radio medium or the backbone must end up delivered,
// lost, or still in flight. Property and differential tests call it after a
// run; a non-nil error means the simulation leaked or invented traffic.
func (w *World) CheckConservation() error {
	if err := w.Env.Medium.Stats().CheckConservation(); err != nil {
		return err
	}
	return w.Env.Backbone.Stats().CheckConservation()
}

// buildInfrastructure creates the TAs and one head per cluster.
func (w *World) buildInfrastructure() error {
	clusters := w.Topo.Clusters()
	per := (clusters + w.Cfg.Authorities - 1) / w.Cfg.Authorities
	for a := 0; a < w.Cfg.Authorities; a++ {
		lo := a*per + 1
		hi := lo + per - 1
		if hi > clusters {
			hi = clusters
		}
		if lo > clusters {
			break
		}
		var served []wire.ClusterID
		for c := lo; c <= hi; c++ {
			served = append(served, wire.ClusterID(c))
		}
		ta, err := core.NewAuthorityAgent(w.Env, wire.AuthorityID(a+1), (lo+hi)/2, served, w.Cfg.CertValidity)
		if err != nil {
			return err
		}
		w.Authorities = append(w.Authorities, ta)
	}
	peers := make([]wire.NodeID, 0, len(w.Authorities))
	for _, ta := range w.Authorities {
		peers = append(peers, ta.NodeID())
	}
	for _, ta := range w.Authorities {
		ta.SetPeers(peers)
	}
	for c := 1; c <= clusters; c++ {
		cid := wire.ClusterID(c)
		ta := w.authorityFor(cid)
		cred, err := ta.IssueHeadCredential(cid)
		if err != nil {
			return err
		}
		head, err := core.NewHeadAgent(w.Env, w.Cfg.Head, cred, cid)
		if err != nil {
			return err
		}
		head.Start()
		w.Heads[cid] = head
	}
	return nil
}

func (w *World) authorityFor(c wire.ClusterID) *core.AuthorityAgent {
	clusters := w.Topo.Clusters()
	per := (clusters + w.Cfg.Authorities - 1) / w.Cfg.Authorities
	idx := (int(c) - 1) / per
	if idx >= len(w.Authorities) {
		idx = len(w.Authorities) - 1
	}
	return w.Authorities[idx]
}

// buildPopulation places the source, destination, attacker(s) and filler
// vehicles per the paper's experiment setup, dispatching on the topology.
// The highway path is kept verbatim — its RNG draw sequence is pinned by the
// golden-hash tests — and the mesh path generalises the same placement rules
// to 2D road layouts.
func (w *World) buildPopulation() error {
	if w.mesh != nil {
		return w.buildPopulationMesh()
	}
	return w.buildPopulationHighway()
}

func (w *World) buildPopulationHighway() error {
	clusters := w.Highway.Clusters()
	attackCluster := w.Cfg.AttackerCluster
	if attackCluster == 0 {
		attackCluster = w.rng.IntN(clusters) + 1
	}
	w.Cfg.AttackerCluster = attackCluster

	// Source at the beginning of the highway (paper SIV-A).
	src, err := w.addVehicle(w.rng.Range(50, 450), w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Source = src

	// Destination at least two clusters away from the attacker, never in
	// its radio range at placement.
	destCluster := attackCluster + 3
	if destCluster > clusters {
		destCluster = attackCluster - 3
	}
	if destCluster < 1 {
		destCluster = 1
	}
	lo, hi := w.Highway.ClusterBounds(destCluster)
	dest, err := w.addVehicle(w.rng.Range(lo+100, hi-100), w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Destination = dest

	if w.Cfg.Attack != NoAttack {
		if err := w.placeAttackers(attackCluster); err != nil {
			return err
		}
		if err := w.placeExtraAttackers(destCluster); err != nil {
			return err
		}
	}

	// Filler traffic, both directions, uniform over the highway.
	w.fillers = true
	for len(w.Vehicles) < w.Cfg.Vehicles {
		dir := mobility.Eastbound
		if w.rng.Bool(0.5) {
			dir = mobility.Westbound
		}
		if _, err := w.addVehicle(w.rng.Range(10, w.Highway.Length()-10), w.randomSpeed(), dir); err != nil {
			return err
		}
	}

	for _, v := range w.Vehicles {
		v.Start()
	}
	return nil
}

func (w *World) randomSpeed() float64 {
	return mobility.KmhToMs(w.rng.Range(w.Cfg.SpeedMinKmh, w.Cfg.SpeedMaxKmh))
}

// buildPopulationMesh is buildPopulationHighway generalised to 2D road
// meshes: same placement rules (source near a road start, destination well
// away from the attacker, attacker mid-cluster, filler uniform over the
// roads), expressed in per-road travel coordinates.
func (w *World) buildPopulationMesh() error {
	clusters := w.Topo.Clusters()
	roads := w.Topo.Roads()
	attackCluster := w.Cfg.AttackerCluster
	if attackCluster == 0 {
		attackCluster = w.rng.IntN(clusters) + 1
	}
	w.Cfg.AttackerCluster = attackCluster

	// Source near the start of the first road — the mesh analogue of "the
	// beginning of the highway".
	r0 := roads[0]
	sLo, sHi := r0.Lo+50, r0.Lo+450
	if sHi > r0.Hi-10 {
		sHi = r0.Hi - 10
	}
	if sHi < sLo {
		sLo, sHi = r0.Lo, r0.Hi
	}
	src, err := w.addVehicleOnRoad(0, w.rng.Range(sLo, sHi), w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Source = src

	// Destination several clusters away from the attacker in strip-major
	// numbering, never in its radio range at placement.
	destCluster := attackCluster + 3
	if destCluster > clusters {
		destCluster = attackCluster - 3
	}
	if destCluster < 1 {
		destCluster = 1
	}
	dri, da := w.spawnAlong(destCluster, 100, 100)
	dest, err := w.addVehicleOnRoad(dri, da, w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Destination = dest

	if w.Cfg.Attack != NoAttack {
		if err := w.placeAttackersMesh(attackCluster); err != nil {
			return err
		}
		if err := w.placeExtraAttackersMesh(destCluster); err != nil {
			return err
		}
	}

	// Filler traffic, both directions, uniform over the road mesh.
	w.fillers = true
	for len(w.Vehicles) < w.Cfg.Vehicles {
		dir := mobility.Eastbound
		if w.rng.Bool(0.5) {
			dir = mobility.Westbound
		}
		ri := w.rng.IntN(len(roads))
		r := roads[ri]
		if _, err := w.addVehicleOnRoad(ri, w.rng.Range(r.Lo+10, r.Hi-10), w.randomSpeed(), dir); err != nil {
			return err
		}
	}

	for _, v := range w.Vehicles {
		v.Start()
	}
	return nil
}

// vehicleEnv returns the Env a new vehicle starting in cluster cid is built
// with. Serial builds hand every agent the world Env verbatim. Sharded
// builds home the named protocol participants (source, destination,
// attackers — everything placed before the filler phase) on the anchor,
// where their infrastructure interactions stay race-free, and each filler on
// the strip shard owning its initial cluster: contiguous clusters share a
// strip, so neighbours mostly stay local and only radio traffic crosses
// shards.
func (w *World) vehicleEnv(cid wire.ClusterID) core.Env {
	env := w.Env
	if w.shard == nil || !w.fillers {
		return env
	}
	clusters := w.Topo.Clusters()
	strip := 1 + (int(cid)-1)*shardStrips/clusters
	if strip < 1 {
		strip = 1
	} else if strip > shardStrips {
		strip = shardStrips
	}
	env.Sched = w.shard.Shard(strip)
	env.Port = w.ports[strip]
	if w.shardSchemes != nil {
		// Strip-homed agents sign on their shard's own nonce stream.
		env.Scheme = w.shardSchemes[strip]
	}
	return env
}

// runFor advances the run by d of virtual time on whichever executor the
// build chose. All shard clocks (the anchor's included) sit at the same
// instant when it returns, so w.Sched.Now() is the run's time in both modes.
func (w *World) runFor(d time.Duration) {
	if w.shard != nil {
		w.shard.RunFor(d)
		return
	}
	w.Sched.RunFor(d)
}

// hostileProfile builds the attack profile the config describes. It draws no
// RNG, so sharing it across topology paths cannot shift draw order.
func (w *World) hostileProfile() attack.Profile {
	profile := attack.DefaultProfile()
	if w.Cfg.SeqBonus != 0 {
		profile.SeqBonus = w.Cfg.SeqBonus
	}
	profile.ActLegitProb = w.Cfg.ActLegitProb
	profile.RenewProb = w.Cfg.RenewProb
	profile.FakeHelloReplyProb = w.Cfg.FakeHelloProb
	return profile
}

// clusterAlong returns cluster c's owning road and its travel extent along
// that road's axis (mesh topologies only).
func (w *World) clusterAlong(c int) (ri int, lo, hi float64) {
	ri = w.mesh.ClusterRoad(c)
	rect := w.Topo.ClusterRect(c)
	if w.Topo.Roads()[ri].Axis == mobility.AxisY {
		return ri, rect.Y0, rect.Y1
	}
	return ri, rect.X0, rect.X1
}

// spawnAlong draws a travel coordinate inside cluster c, keeping the given
// margins from its edges when the segment is long enough.
func (w *World) spawnAlong(c int, loMargin, hiMargin float64) (int, float64) {
	ri, lo, hi := w.clusterAlong(c)
	a, b := lo+loMargin, hi-hiMargin
	if b < a {
		a, b = lo, hi
	}
	return ri, w.rng.Range(a, b)
}

// addVehicleOnRoad is addVehicle for mesh topologies: the vehicle travels
// along road ri from the given coordinate, in one of four lanes across the
// road's width.
func (w *World) addVehicleOnRoad(ri int, along, speedMS float64, dir mobility.Direction) (*core.VehicleAgent, error) {
	w.vehSeq++
	road := w.Topo.Roads()[ri]
	span := road.CHi - road.CLo
	lane := road.CLo + span*(0.1+0.2*float64(w.rng.IntN(4)))
	pos := road.At(along, lane)
	cid := wire.ClusterID(w.Topo.ClusterOf(pos))
	cred, err := w.authorityFor(cid).IssueVehicleCredential(fmt.Sprintf("veh-%d", w.vehSeq))
	if err != nil {
		return nil, err
	}
	mob, err := mobility.NewMobileOnRoad(w.Topo, road, pos, dir, speedMS, w.Sched.Now())
	if err != nil {
		return nil, err
	}
	v, err := core.NewVehicleAgent(w.vehicleEnv(cid), w.Cfg.Vehicle, cred, mob)
	if err != nil {
		return nil, err
	}
	w.Vehicles = append(w.Vehicles, v)
	return v, nil
}

// placeAttackersMesh is placeAttackers on a road mesh.
func (w *World) placeAttackersMesh(attackCluster int) error {
	ri, ax := w.spawnAlong(attackCluster, 100, 200)
	attacker, err := w.addVehicleOnRoad(ri, ax, w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Attacker = attacker
	w.attackerIDs[attacker.NodeID()] = true
	attacker.OnRenewed(func(old, new wire.NodeID) { w.attackerIDs[new] = true })

	profile := w.hostileProfile()
	road := w.Topo.Roads()[ri]
	if _, _, segHi := w.clusterAlong(attackCluster); segHi >= road.Hi {
		// The attacker starts in its road's last cluster and can flee the map.
		profile.FleeProb = w.Cfg.FleeProb
	}

	if w.Cfg.Attack == CooperativeBlackHole {
		tx := ax + w.rng.Range(200, 400)
		if tx > road.Hi-10 {
			tx = road.Hi - 10
		}
		teammate, err := w.addVehicleOnRoad(ri, tx, w.randomSpeed(), mobility.Eastbound)
		if err != nil {
			return err
		}
		w.Teammate = teammate
		w.teammateIDs[teammate.NodeID()] = true
		teammate.OnRenewed(func(old, new wire.NodeID) { w.teammateIDs[new] = true })
		tp := profile
		tp.SupportOnly = true
		tp.Teammate = 0
		w.TeammateBH = w.arm(teammate, tp)
		profile.Teammate = teammate.NodeID()
	}
	w.AttackerBH = w.arm(attacker, profile)
	return nil
}

// placeExtraAttackersMesh is placeExtraAttackers on a road mesh.
func (w *World) placeExtraAttackersMesh(destCluster int) error {
	clusters := w.Topo.Clusters()
	for i := 0; i < w.Cfg.ExtraAttackers; i++ {
		c := w.rng.IntN(clusters) + 1
		if c == destCluster {
			c = c%clusters + 1
		}
		ri, ax := w.spawnAlong(c, 100, 100)
		v, err := w.addVehicleOnRoad(ri, ax, w.randomSpeed(), mobility.Eastbound)
		if err != nil {
			return err
		}
		h := &Hostile{Agent: v, ids: map[wire.NodeID]bool{v.NodeID(): true}}
		v.OnRenewed(func(old, new wire.NodeID) { h.ids[new] = true })
		h.BH = w.arm(v, w.hostileProfile())
		w.Extras = append(w.Extras, h)
	}
	return nil
}

// addVehicle provisions a credential from the region's TA and constructs a
// legitimate vehicle agent (not yet started).
func (w *World) addVehicle(x, speedMS float64, dir mobility.Direction) (*core.VehicleAgent, error) {
	w.vehSeq++
	cid := wire.ClusterID(w.Highway.ClusterAt(x))
	cred, err := w.authorityFor(cid).IssueVehicleCredential(fmt.Sprintf("veh-%d", w.vehSeq))
	if err != nil {
		return nil, err
	}
	lane := 20 + 40*float64(w.rng.IntN(4))
	mob, err := mobility.NewMobile(w.Highway, mobility.Position{X: x, Y: lane}, dir, speedMS, w.Sched.Now())
	if err != nil {
		return nil, err
	}
	v, err := core.NewVehicleAgent(w.vehicleEnv(cid), w.Cfg.Vehicle, cred, mob)
	if err != nil {
		return nil, err
	}
	w.Vehicles = append(w.Vehicles, v)
	return v, nil
}

// placeAttackers creates the black hole (and accomplice) in the configured
// cluster, per the paper's placement rules.
func (w *World) placeAttackers(attackCluster int) error {
	lo, hi := w.Highway.ClusterBounds(attackCluster)
	ax := w.rng.Range(lo+100, hi-200)
	attacker, err := w.addVehicle(ax, w.randomSpeed(), mobility.Eastbound)
	if err != nil {
		return err
	}
	w.Attacker = attacker
	w.attackerIDs[attacker.NodeID()] = true
	attacker.OnRenewed(func(old, new wire.NodeID) { w.attackerIDs[new] = true })

	profile := w.hostileProfile()
	if attackCluster == w.Highway.Clusters() {
		// The paper's fleeing attackers escape from the last cluster.
		profile.FleeProb = w.Cfg.FleeProb
	}

	if w.Cfg.Attack == CooperativeBlackHole {
		tx := ax + w.rng.Range(200, 400)
		if tx > w.Highway.Length()-10 {
			tx = w.Highway.Length() - 10
		}
		teammate, err := w.addVehicle(tx, w.randomSpeed(), mobility.Eastbound)
		if err != nil {
			return err
		}
		w.Teammate = teammate
		w.teammateIDs[teammate.NodeID()] = true
		teammate.OnRenewed(func(old, new wire.NodeID) { w.teammateIDs[new] = true })
		tp := profile
		tp.SupportOnly = true
		tp.Teammate = 0
		w.TeammateBH = w.arm(teammate, tp)
		profile.Teammate = teammate.NodeID()
	}
	w.AttackerBH = w.arm(attacker, profile)
	return nil
}

// placeExtraAttackers adds independent single black holes in random
// clusters away from the destination.
func (w *World) placeExtraAttackers(destCluster int) error {
	clusters := w.Highway.Clusters()
	for i := 0; i < w.Cfg.ExtraAttackers; i++ {
		c := w.rng.IntN(clusters) + 1
		if c == destCluster {
			c = c%clusters + 1
		}
		lo, hi := w.Highway.ClusterBounds(c)
		v, err := w.addVehicle(w.rng.Range(lo+100, hi-100), w.randomSpeed(), mobility.Eastbound)
		if err != nil {
			return err
		}
		h := &Hostile{Agent: v, ids: map[wire.NodeID]bool{v.NodeID(): true}}
		v.OnRenewed(func(old, new wire.NodeID) { h.ids[new] = true })
		h.BH = w.arm(v, w.hostileProfile())
		w.Extras = append(w.Extras, h)
	}
	return nil
}

// arm wires a hostile interceptor in front of a vehicle's radio. Evasion is
// drawn only after the first forged reply (the paper's attackers evade
// during detection, not before attacking) and only inside the configured
// evasive clusters.
func (w *World) arm(v *core.VehicleAgent, profile attack.Profile) *attack.Blackhole {
	evasive := make(map[int]bool, len(w.Cfg.EvasiveClusters))
	for _, c := range w.Cfg.EvasiveClusters {
		evasive[c] = true
	}
	var bh *attack.Blackhole
	profile.EvasiveWhen = func() bool {
		if bh == nil || bh.Stats().RepliesForged == 0 {
			return false
		}
		return evasive[v.Mobile().ClusterAt(w.Sched.Now())]
	}
	bh = attack.NewBlackhole(profile, attack.Env{
		Sched:   w.Sched,
		RNG:     w.rng.Split("attacker-" + v.NodeID().String()),
		Send:    v.Interface().Send,
		Self:    v.Interface().NodeID,
		Cluster: v.Client().Cluster,
		Seal: func(p wire.Packet) ([]byte, error) {
			sec, err := pki.Seal(p, v.Credential(), w.Env.Scheme)
			if err != nil {
				return nil, err
			}
			return sec.MarshalBinary()
		},
		Inner: v.HandleFrame,
		Flee:  func() { v.Mobile().Exit(w.Sched.Now()) },
		Renew: func() { _ = v.RenewCertificate() },
	})
	v.Interface().SetReceiver(bh.HandleFrame)
	return bh
}

// Run executes the workload and extracts the outcome.
func (w *World) Run() metrics.Outcome {
	o, _ := w.RunContext(context.Background())
	return o
}

// RunContext is Run with cooperative cancellation: between simulated slices
// it checks ctx and, once cancelled, abandons the run and returns ctx.Err().
// A background context reproduces Run exactly — the checks never touch the
// scheduler or the RNG, so cancellation-capable and plain runs stay
// byte-identical (the differential suite holds this).
func (w *World) RunContext(ctx context.Context) (metrics.Outcome, error) {
	const (
		establishAt = 1500 * time.Millisecond
		dataGap     = 100 * time.Millisecond
		grace       = 3 * time.Second
	)
	var (
		finalStatus   core.EstablishStatus
		statusKnown   bool
		dataSent      int
		dataDelivered int
		workDone      bool
	)
	w.Destination.OnDataReceived(func(*wire.Data, wire.NodeID) { dataDelivered++ })

	// The workload behaves like a real application over AODV: verify a
	// route, stream packets, and on a broken link (or a detected attack)
	// re-establish — within a bounded budget — and resume.
	remaining := w.Cfg.DataPackets
	budget := 4
	var establish func()
	var pump func()
	pump = func() {
		if remaining <= 0 {
			workDone = true
			return
		}
		if err := w.Source.SendData(w.Destination.NodeID(), []byte("telemetry")); err != nil {
			establish() // mobility broke the route; find a new one
			return
		}
		dataSent++
		remaining--
		if remaining == 0 {
			workDone = true
			return
		}
		w.Sched.After(dataGap, pump)
	}
	establish = func() {
		if budget <= 0 {
			workDone = true
			return
		}
		budget--
		err := w.Source.EstablishRoute(w.Destination.NodeID(), func(res core.EstablishResult) {
			finalStatus = res.Status
			statusKnown = true
			switch res.Status {
			case core.StatusVerified, core.StatusUnverified:
				pump()
			case core.StatusDetected:
				// The attacker is isolated. Its forged high-sequence route
				// entries poisoned relay tables along the reply path; they
				// heal when the AODV route lifetime lapses, and the
				// blacklist stops re-infection. Retry after the lifetime so
				// the delivery measurement sees the healed network.
				heal := aodv.DefaultConfig().RouteLifetime + time.Second
				w.Sched.After(heal, establish)
			default:
				workDone = true
			}
		})
		if err != nil {
			workDone = true
		}
	}
	w.Sched.After(establishAt, establish)

	// Drive the run: stop once the workload settled (plus a grace period
	// for isolation traffic) or at the hard limit.
	var doneAt time.Duration
	for w.Sched.Now() < w.Cfg.MaxSimTime {
		if err := ctx.Err(); err != nil {
			return metrics.Outcome{}, err
		}
		w.runFor(500 * time.Millisecond)
		if workDone && doneAt == 0 {
			doneAt = w.Sched.Now()
		}
		if doneAt != 0 && w.Sched.Now() >= doneAt+grace {
			break
		}
	}

	return w.extractOutcome(finalStatus, statusKnown, dataSent, dataDelivered), nil
}

func (w *World) extractOutcome(status core.EstablishStatus, statusKnown bool, sent, delivered int) metrics.Outcome {
	o := metrics.Outcome{
		Seed:            w.Cfg.Seed,
		AttackerPresent: w.Cfg.Attack != NoAttack,
		Cooperative:     w.Cfg.Attack == CooperativeBlackHole,
		AttackerCluster: w.Cfg.AttackerCluster,
		DataSent:        sent,
		DataDelivered:   delivered,
		Duration:        w.Sched.Now(),
	}
	if statusKnown {
		o.EstablishStatus = status.String()
	}
	air := w.Env.Medium.Stats()
	o.AirFrames = air.SentFrames.Frames
	o.AirBytes = air.SentFrames.Bytes
	o.AirOffered = air.OfferedFrames.Frames
	o.AirDelivered = air.DeliveredFrames.Frames
	o.AirLost = air.LostFrames.Frames
	o.AirDuplicated = air.DuplicatedFrames.Frames
	o.DReqRetransmits = w.Source.Stats().DReqRetransmits
	o.Failovers = w.Source.Stats().Failovers

	if o.AttackerPresent {
		o.AttackersPresent = 1 + len(w.Extras)
	}
	extraIDs := func(id wire.NodeID) bool {
		for _, h := range w.Extras {
			if h.ids[id] {
				return true
			}
		}
		return false
	}
	var primaryCase *core.CaseTally
	for _, ct := range w.Env.Tally.Cases() {
		isAttacker := w.attackerIDs[ct.Suspect]
		isTeammate := w.teammateIDs[ct.Suspect]
		if ct.Verdict == wire.VerdictMalicious {
			switch {
			case isAttacker:
				o.Detected = true
			case isTeammate:
				o.TeammateDetected = true
			case extraIDs(ct.Suspect):
				// counted below, per hostile
			default:
				o.FalseAccusations++
			}
			if ct.Teammate != 0 && w.teammateIDs[ct.Teammate] {
				o.TeammateDetected = true
			}
		}
		if isAttacker && (primaryCase == nil || ct.DetectionPackets() > primaryCase.DetectionPackets()) {
			primaryCase = ct
		}
	}
	if o.Detected {
		o.AttackersDetected++
	}
	for _, h := range w.Extras {
		if h.detectedIn(w.Env.Tally) {
			o.AttackersDetected++
		}
	}
	if primaryCase != nil {
		o.DetectionPackets = primaryCase.DetectionPackets()
		o.IsolationPackets = primaryCase.IsolationPackets
		if primaryCase.ResolvedAt > primaryCase.ReportedAt {
			o.DetectionLatency = primaryCase.ResolvedAt - primaryCase.ReportedAt
		}
	}
	if o.AttackerPresent && !o.Detected && w.AttackerBH != nil {
		forged := w.AttackerBH.Stats().RepliesForged > 0
		avoided := status == core.StatusPrevented ||
			(status == core.StatusVerified && w.AttackerBH.Stats().DataDropped == 0)
		o.Prevented = forged && statusKnown && avoided
	}
	return o
}

// Run builds and executes one scenario, returning its outcome.
func Run(cfg Config) (metrics.Outcome, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation (see World.RunContext).
func RunContext(ctx context.Context, cfg Config) (metrics.Outcome, error) {
	return runPooled(ctx, cfg, nil)
}

// runPooled builds and executes one replication against a (possibly shared)
// event pool. See buildPooled for the pooling contract.
func runPooled(ctx context.Context, cfg Config, pool *sim.EventPool) (metrics.Outcome, error) {
	w, err := buildPooled(cfg, pool)
	if err != nil {
		return metrics.Outcome{}, err
	}
	return w.RunContext(ctx)
}

// SweepOptions tune a replication sweep.
type SweepOptions struct {
	// Workers is the pool size: 0 means one per CPU, 1 reproduces the
	// serial path exactly. Either way the aggregated results are
	// byte-identical (see the differential tests).
	Workers int
	// Progress, when non-nil, is called after each replication completes.
	Progress func(done, total int)
	// OnRep, when non-nil, is called after each replication completes with
	// its replication index and error (nil on success). Calls are
	// serialised but, with more than one worker, not in replication order.
	OnRep func(rep int, err error)
}

// RunMany executes reps independent runs of cfg with derived seeds and
// returns every outcome in replication order. mutate, when non-nil, adjusts
// the config per rep (after the seed is assigned). Replications run across
// one worker per CPU; use RunSweep to choose the worker count.
func RunMany(cfg Config, reps int, mutate func(rep int, c *Config)) ([]metrics.Outcome, error) {
	return RunSweep(context.Background(), cfg, reps, SweepOptions{}, mutate)
}

// reconcileWorkers clamps the sweep pool size and the configs' intra-run
// worker counts so the product of the two goroutine budgets stays within
// GOMAXPROCS. A config's execution mode is semantic — RunWorkers >= 2
// selects the sharded result stream — and is never changed here; only
// goroutine counts shrink. Intra-run workers shrink first (parallel
// replications use cores more efficiently than intra-run windows, and
// sharded outcomes are worker-count independent, so the clamp cannot change
// results) but never below 2; the sweep pool shrinks last, never below 1.
// Sweeps whose configs are all serial pass through untouched.
func reconcileWorkers(sweepWorkers int, cfgs []Config) int {
	maxRun := 0
	for _, c := range cfgs {
		if c.RunWorkers > maxRun {
			maxRun = c.RunWorkers
		}
	}
	if maxRun < 2 {
		return sweepWorkers
	}
	procs := exp.DefaultWorkers()
	w := sweepWorkers
	if w <= 0 {
		w = procs
	}
	run := maxRun
	if run > procs && procs >= 2 {
		run = procs
	}
	if run < 2 {
		run = 2
	}
	for w*run > procs && run > 2 {
		run--
	}
	for w*run > procs && w > 1 {
		w--
	}
	for i := range cfgs {
		if cfgs[i].RunWorkers >= 2 && cfgs[i].RunWorkers > run {
			cfgs[i].RunWorkers = run
		}
	}
	return w
}

// RunSweep is RunMany with cancellation and sweep options. Replication
// seeds are a pure function of cfg.Seed and the replication index, worlds
// are built privately per replication, and outcomes are collected in
// replication order — so any worker count yields identical results. The
// mutate hooks are invoked serially in replication order before the sweep
// fans out, preserving RunMany's historical contract (hooks may touch
// caller state without locking). When configs request intra-run parallelism
// (Config.RunWorkers >= 2) the two worker budgets are reconciled so their
// product stays within GOMAXPROCS — see reconcileWorkers.
func RunSweep(ctx context.Context, cfg Config, reps int, opt SweepOptions, mutate func(rep int, c *Config)) ([]metrics.Outcome, error) {
	return RunSweepRange(ctx, cfg, 0, reps, opt, mutate)
}

// RunSweepRange executes the contiguous slice [start, start+count) of a
// sweep's replication range and returns those outcomes in replication
// order. Replication seeds (and mutate's rep argument, and OnRep's) are the
// GLOBAL replication indexes, so concatenating the results of
// RunSweepRange(0, k) and RunSweepRange(k, n-k) is byte-identical to one
// RunSweep of n replications — the property the distributed sweep fabric
// (internal/dist) builds on when it shards a sweep across worker nodes.
// RunSweep is RunSweepRange over the full range.
func RunSweepRange(ctx context.Context, cfg Config, start, count int, opt SweepOptions, mutate func(rep int, c *Config)) ([]metrics.Outcome, error) {
	if start < 0 {
		return nil, fmt.Errorf("scenario: sweep range start %d is negative", start)
	}
	cfgs := make([]Config, count)
	for i := range cfgs {
		rep := start + i
		c := cfg
		c.Seed = cfg.Seed + int64(rep)*7919
		if mutate != nil {
			mutate(rep, &c)
		}
		cfgs[i] = c
	}
	opt.Workers = reconcileWorkers(opt.Workers, cfgs)
	onRep := opt.OnRep
	if onRep != nil && start > 0 {
		local := onRep
		onRep = func(rep int, err error) { local(start+rep, err) }
	}
	return exp.MapScratch(ctx, count, exp.Options{
		Workers:  opt.Workers,
		SeedOf:   func(rep int) int64 { return cfgs[rep].Seed },
		Progress: opt.Progress,
		OnRep:    onRep,
	}, func(int) *sim.EventPool {
		return sim.NewEventPool()
	}, func(ctx context.Context, rep int, pool *sim.EventPool) (metrics.Outcome, error) {
		return runPooled(ctx, cfgs[rep], pool)
	})
}

// RunSweepStream is RunSweep folding every outcome into a streaming
// aggregate instead of retaining one Outcome per replication: sweep memory
// stays constant no matter how many replications run, which is what makes
// metro-scale sweeps fit on one machine. Every Stream counter is
// commutative, so any worker count yields the identical report (the
// streaming equivalence test holds it against the retained path). The
// returned stream is meaningful only when the error is nil.
func RunSweepStream(ctx context.Context, cfg Config, reps int, opt SweepOptions, mutate func(rep int, c *Config)) (*metrics.Stream, error) {
	cfgs := make([]Config, reps)
	for rep := range cfgs {
		c := cfg
		c.Seed = cfg.Seed + int64(rep)*7919
		if mutate != nil {
			mutate(rep, &c)
		}
		cfgs[rep] = c
	}
	opt.Workers = reconcileWorkers(opt.Workers, cfgs)
	stream := metrics.NewStream()
	var mu sync.Mutex
	_, err := exp.MapScratch(ctx, reps, exp.Options{
		Workers:  opt.Workers,
		SeedOf:   func(rep int) int64 { return cfgs[rep].Seed },
		Progress: opt.Progress,
		OnRep:    opt.OnRep,
	}, func(int) *sim.EventPool {
		return sim.NewEventPool()
	}, func(ctx context.Context, rep int, pool *sim.EventPool) (struct{}, error) {
		o, err := runPooled(ctx, cfgs[rep], pool)
		if err != nil {
			return struct{}{}, err
		}
		mu.Lock()
		stream.Add(o)
		mu.Unlock()
		return struct{}{}, nil
	})
	return stream, err
}
