package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"blackdp/internal/exp"
)

// diffConfig is a cheap-but-real world for differential runs: a shorter
// highway (4 clusters), a thinner population and a tighter time budget keep
// each replication fast while still exercising detection end to end.
func diffConfig() Config {
	cfg := DefaultConfig()
	cfg.HighwayLengthM = 4000
	cfg.Vehicles = 30
	cfg.Authorities = 2
	cfg.AttackerCluster = 2
	cfg.DataPackets = 5
	cfg.MaxSimTime = 45 * time.Second
	return cfg
}

// TestRunSweepParallelMatchesSerial is the engine's acceptance gate: the
// full per-replication outcome records — not just aggregates — must be
// byte-identical between the serial path and a saturated pool.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	cfg := diffConfig()
	const reps = 4
	serial, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("outcomes diverged between workers=1 and workers=8:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

func TestRunFig4SweepParallelMatchesSerial(t *testing.T) {
	base := diffConfig()
	base.AttackerCluster = 0 // RunFig4 assigns clusters itself
	for _, kind := range []AttackKind{SingleBlackHole, CooperativeBlackHole} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			serial, err := RunFig4Sweep(context.Background(), base, kind, 2, SweepOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := RunFig4Sweep(context.Background(), base, kind, 2, SweepOptions{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("Fig4 points diverged:\n serial   %+v\n parallel %+v", serial, parallel)
			}
		})
	}
}

// fig4GoldenHash is the SHA-256 of the JSON-marshalled Fig4 sweep points for
// the fixed configuration below, recorded BEFORE the hot-path pooling work
// (event records, radio deliveries, codec scratch, per-worker reuse). The
// pools recycle memory but must never change event ordering or RNG draws, so
// the sweep output has to stay byte-identical across that refactor and any
// future one. If this test fails, a "performance" change altered simulation
// behaviour — that is a correctness bug, not a baseline to re-record.
const fig4GoldenHash = "30ca4f6ead11fe302a37ba22981ba074a8d9fe64dd14597a4e9cb3eee4b0b222"

func TestFig4SweepGoldenHash(t *testing.T) {
	base := DefaultConfig()
	base.HighwayLengthM = 4000
	base.Vehicles = 30
	base.DataPackets = 5
	base.MaxSimTime = 45 * time.Second
	base.Seed = 42
	assertFig4GoldenHash(t, base)
}

// assertFig4GoldenHash runs the pinned Fig4 sweep for base at two worker
// counts and holds the marshalled points to fig4GoldenHash. Shared with the
// spatial-index differential suite, which asserts the linear-scan escape
// hatch reproduces the identical bytes.
func assertFig4GoldenHash(t *testing.T, base Config) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		points, err := RunFig4Sweep(context.Background(), base, SingleBlackHole, 2, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(b)); got != fig4GoldenHash {
			t.Errorf("workers=%d: Fig4 sweep hash = %s, want %s (simulation behaviour changed)", workers, got, fig4GoldenHash)
		}
	}
}

func TestCompareDetectorsSweepParallelMatchesSerial(t *testing.T) {
	cfg := diffConfig()
	serial, err := CompareDetectorsSweep(context.Background(), cfg, 3, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompareDetectorsSweep(context.Background(), cfg, 3, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("detector scores diverged:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

func TestFig5SeriesSweepParallelMatchesSerial(t *testing.T) {
	serial, err := Fig5SeriesSweep(context.Background(), 3, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig5SeriesSweep(context.Background(), 3, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig5 series diverged:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

// TestRunSweepMutateOrder pins the RunMany contract the parallel engine
// must preserve: mutate hooks run serially in replication order, before
// any world executes, so they may touch caller state without locking.
func TestRunSweepMutateOrder(t *testing.T) {
	cfg := diffConfig()
	var order []int
	_, err := RunSweep(context.Background(), cfg, 3, SweepOptions{Workers: 8},
		func(rep int, c *Config) { order = append(order, rep) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("mutate hooks ran in order %v", order)
	}
}

// TestSweepPanicIdentifiesReplication checks a crashing replication fails
// with its replication index and seed attached — the attribution RunSweep
// relies on when a world panics mid-run — instead of killing the sweep.
func TestSweepPanicIdentifiesReplication(t *testing.T) {
	cfg := diffConfig()
	outcomes, err := exp.Map(context.Background(), 3, exp.Options{
		Workers: 2,
		SeedOf:  func(rep int) int64 { return cfg.Seed + int64(rep)*7919 },
	}, func(_ context.Context, rep int) (int, error) {
		if rep == 1 {
			panic("scheduler invariant violated")
		}
		return rep, nil
	})
	if outcomes != nil {
		t.Error("results returned alongside a panicking replication")
	}
	var pe *exp.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *exp.PanicError", err)
	}
	if pe.Rep != 1 || pe.Seed != cfg.Seed+7919 {
		t.Errorf("panic attributed to rep %d seed %d, want rep 1 seed %d", pe.Rep, pe.Seed, cfg.Seed+7919)
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweep(ctx, diffConfig(), 4, SweepOptions{Workers: 2}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
