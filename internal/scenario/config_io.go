package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON / config files: Config is plain data, so the default encoding
// works; durations serialise as nanoseconds, which keeps files seed-exact.

// LoadConfig reads a JSON config file, layering it over DefaultConfig so
// files only need to name the fields they change.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: reading config: %w", err)
	}
	cfg, err := DecodeConfig(b)
	if err != nil {
		return Config{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return cfg, nil
}

// DecodeConfig parses a JSON config document, layering it over DefaultConfig
// exactly as LoadConfig does for files. The serve subsystem decodes request
// bodies through it so a job payload and a config file mean the same thing.
func DecodeConfig(b []byte) (Config, error) {
	cfg := DefaultConfig()
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, fmt.Errorf("parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SaveConfig writes the config as indented JSON.
func SaveConfig(cfg Config, path string) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding config: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("scenario: writing %s: %w", path, err)
	}
	return nil
}
