package scenario

import (
	"testing"
)

func TestMultipleAttackersDetectedSequentially(t *testing.T) {
	// The paper's attack model allows several independent black holes.
	// With each isolation the next freshest forger wins the route race and
	// gets reported in turn; the workload's re-establishment budget lets
	// the source peel them off one by one.
	cfg := DefaultConfig()
	cfg.Seed = 31
	cfg.AttackerCluster = 2
	cfg.ExtraAttackers = 2
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.AttackersPresent != 3 {
		t.Fatalf("AttackersPresent = %d, want 3", o.AttackersPresent)
	}
	if o.FalseAccusations != 0 {
		t.Errorf("false accusations: %d", o.FalseAccusations)
	}
	if !o.Detected {
		t.Error("primary attacker not detected")
	}
	if o.AttackersDetected < 2 {
		t.Errorf("AttackersDetected = %d, want at least the two on the route path", o.AttackersDetected)
	}
	if o.EstablishStatus != "verified" {
		t.Errorf("final status = %q; the source should eventually hold a clean route", o.EstablishStatus)
	}
	if o.DataSent == 0 || float64(o.DataDelivered) < 0.8*float64(o.DataSent) {
		t.Errorf("delivery %d/%d after isolating multiple attackers", o.DataDelivered, o.DataSent)
	}
}

func TestExtraAttackersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtraAttackers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ExtraAttackers accepted")
	}
	cfg.ExtraAttackers = cfg.Vehicles // far beyond the quarter-fleet cap
	if err := cfg.Validate(); err == nil {
		t.Error("absurd ExtraAttackers accepted")
	}
}
