package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.AttackerCluster = 7
	cfg.Attack = CooperativeBlackHole
	cfg.ExtraAttackers = 2
	cfg.EvasiveClusters = []int{8, 9, 10}

	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.AttackerCluster != 7 || got.Attack != CooperativeBlackHole ||
		got.ExtraAttackers != 2 || len(got.EvasiveClusters) != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Vehicles != 100 || got.CertValidity != cfg.CertValidity {
		t.Errorf("defaults lost in round trip: %+v", got)
	}
}

func TestLoadConfigPartialFileLayersOverDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"Seed": 9, "AttackerCluster": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 9 || got.AttackerCluster != 3 {
		t.Errorf("overrides not applied: %+v", got)
	}
	if got.Vehicles != 100 || got.HighwayLengthM != 10_000 || !got.Vehicle.Verify {
		t.Errorf("defaults not layered: %+v", got)
	}
}

func TestLoadConfigRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"AttackerCluster": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("invalid config accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`{{{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(garbage); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedConfigRunsIdentically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.AttackerCluster = 5
	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("run from saved config diverged:\n a=%+v\n b=%+v", a, b)
	}
}
