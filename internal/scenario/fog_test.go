package scenario

import (
	"testing"
	"time"
)

func TestFogOffloadFlattensAuthQueue(t *testing.T) {
	// The paper's SIII-C bottleneck: authentication queueing at a busy head
	// grows with the report burst; fog verifiers divide it.
	alone, err := RunFogAblation(5, 20, 20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	offloaded, err := RunFogAblation(5, 20, 20*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if alone.AuthQueued != 20 || offloaded.AuthQueued != 20 {
		t.Fatalf("queued %d/%d verifications, want 20 each", alone.AuthQueued, offloaded.AuthQueued)
	}
	// A single server serialises ~20 x 20ms; five servers cut the worst
	// wait by roughly the server count.
	if alone.MaxAuthLatency < 300*time.Millisecond {
		t.Errorf("single-server worst delay = %v, expected ~400ms of queueing", alone.MaxAuthLatency)
	}
	if offloaded.MaxAuthLatency*3 > alone.MaxAuthLatency {
		t.Errorf("fog offload did not flatten the queue: %v vs %v",
			offloaded.MaxAuthLatency, alone.MaxAuthLatency)
	}
	if offloaded.MeanVerdict > alone.MeanVerdict {
		t.Errorf("verdicts slower with fog: %v vs %v", offloaded.MeanVerdict, alone.MeanVerdict)
	}
}

func TestFogAblationValidation(t *testing.T) {
	if _, err := RunFogAblation(1, 0, time.Millisecond, 0); err == nil {
		t.Error("zero reporters accepted")
	}
}

func TestZeroAuthCostIsSynchronous(t *testing.T) {
	// With no configured verification cost, detection latency matches the
	// unqueued baseline regardless of burst size.
	res, err := RunFogAblation(5, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAuthLatency != 0 || res.AuthQueued != 0 {
		t.Errorf("free verification still queued: %+v", res)
	}
}
