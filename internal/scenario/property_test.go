package scenario

import (
	"reflect"
	"testing"
	"time"

	"blackdp/internal/fault"
	"blackdp/internal/metrics"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// propertySeeds is how many randomized worlds each property is checked
// against. Placeholder signatures keep a seed's run in the low tens of
// milliseconds, so the whole suite stays fast even under -race.
const propertySeeds = 20

// propConfig is a cheap randomized world for property runs: a 4-cluster
// highway, a thin population, free signatures.
func propConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.HighwayLengthM = 4000
	cfg.Vehicles = 30
	cfg.Authorities = 2
	cfg.RealCrypto = false
	cfg.DataPackets = 5
	cfg.MaxSimTime = 45 * time.Second
	return cfg
}

// randomPlan derives a fault plan from the seed: every seed gets a different
// but reproducible mix of head crashes, link cuts and channel impairments.
func randomPlan(seed int64, clusters int) fault.Plan {
	rng := sim.NewRNG(seed).Split("property-plan")
	var p fault.Plan
	if rng.Bool(0.7) {
		crash := fault.HeadCrash{
			Cluster: rng.IntN(clusters) + 1,
			At:      rng.Duration(500*time.Millisecond, 5*time.Second),
		}
		if rng.Bool(0.5) {
			crash.RecoverAt = crash.At + rng.Duration(2*time.Second, 15*time.Second)
		}
		p.HeadCrashes = append(p.HeadCrashes, crash)
	}
	if rng.Bool(0.5) {
		cut := fault.LinkCut{
			Link: rng.IntN(clusters-1) + 1,
			At:   rng.Duration(500*time.Millisecond, 5*time.Second),
		}
		if rng.Bool(0.5) {
			cut.HealAt = cut.At + rng.Duration(2*time.Second, 15*time.Second)
		}
		p.LinkCuts = append(p.LinkCuts, cut)
	}
	if rng.Bool(0.6) {
		p.Burst = fault.BurstLoss{
			LossBad:   rng.Range(0.05, 0.3),
			GoodToBad: rng.Range(0.02, 0.1),
			BadToGood: rng.Range(0.1, 0.4),
		}
	}
	if rng.Bool(0.4) {
		p.DuplicateProb = rng.Range(0.01, 0.05)
	}
	if rng.Bool(0.4) {
		p.ReorderProb = rng.Range(0.01, 0.05)
		p.ReorderMax = rng.Duration(time.Millisecond, 5*time.Millisecond)
	}
	return p
}

// runChecked builds and runs cfg with the scheduler invariant checker
// installed and audits the packet ledgers afterwards: the engine contract and
// frame conservation are checked on every property run, not just dedicated
// tests.
func runChecked(t *testing.T, cfg Config) (*World, metrics.Outcome) {
	t.Helper()
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checker := sim.NewInvariantChecker(w.Sched)
	o := w.Run()
	if err := checker.Err(); err != nil {
		t.Error(err)
	}
	if err := w.CheckConservation(); err != nil {
		t.Error(err)
	}
	return w, o
}

// infrastructureIDs collects every node identity that must never appear on a
// blacklist: cluster heads and trusted authorities.
func infrastructureIDs(w *World) map[wire.NodeID]bool {
	ids := make(map[wire.NodeID]bool)
	for _, h := range w.Heads {
		ids[h.NodeID()] = true
	}
	for _, ta := range w.Authorities {
		ids[ta.NodeID()] = true
	}
	return ids
}

// TestPropertyNoFalsePositivesUnderFaults: an attacker-free world must never
// isolate anyone, no matter which faults are injected — crashes, cuts and
// lossy channels may delay or abort detection, never invent a conviction.
func TestPropertyNoFalsePositivesUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		cfg := propConfig(seed * 1031)
		cfg.Attack = NoAttack
		cfg.Fault = randomPlan(cfg.Seed, 4)
		w, o := runChecked(t, cfg)
		if o.FalseAccusations != 0 {
			t.Errorf("seed %d: %d false accusations in an attacker-free run (plan %+v)",
				cfg.Seed, o.FalseAccusations, cfg.Fault)
		}
		for cid, h := range w.Heads {
			if n := len(h.Membership().Blacklist()); n != 0 {
				t.Errorf("seed %d: head %d blacklisted %d nodes with no attacker present",
					cfg.Seed, cid, n)
			}
		}
	}
}

// TestPropertyIdenticalSeedAndPlanIdenticalResults: a run is a pure function
// of (seed, config, fault plan) — replaying it must reproduce the outcome
// record byte for byte, faults and all.
func TestPropertyIdenticalSeedAndPlanIdenticalResults(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		cfg := propConfig(seed * 7577)
		cfg.Fault = randomPlan(cfg.Seed, 4)
		_, first := runChecked(t, cfg)
		_, second := runChecked(t, cfg)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("seed %d: outcomes differ between identical runs:\n first  %+v\n second %+v",
				cfg.Seed, first, second)
		}
	}
}

// TestPropertyBlacklistsGrowAndNeverNameInfrastructure: sampled throughout
// adversarial fault runs, every head's blacklist is monotone non-decreasing
// (revocations never vanish mid-run; certificate expiry is an hour away) and
// never contains a cluster head or authority identity.
func TestPropertyBlacklistsGrowAndNeverNameInfrastructure(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		cfg := propConfig(seed * 4099)
		cfg.Fault = randomPlan(cfg.Seed, 4)
		w, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		infra := infrastructureIDs(w)
		sizes := make(map[wire.ClusterID]int)
		var sample func()
		sample = func() {
			for cid, h := range w.Heads {
				bl := h.Membership().Blacklist()
				if len(bl) < sizes[cid] {
					t.Errorf("seed %d: head %d blacklist shrank from %d to %d at %v",
						cfg.Seed, cid, sizes[cid], len(bl), w.Sched.Now())
				}
				sizes[cid] = len(bl)
				for _, rc := range bl {
					if infra[rc.Node] {
						t.Errorf("seed %d: head %d blacklisted infrastructure node %v",
							cfg.Seed, cid, rc.Node)
					}
				}
			}
			if w.Sched.Now() < cfg.MaxSimTime {
				w.Sched.After(time.Second, sample)
			}
		}
		w.Sched.After(time.Second, sample)
		w.Run()
		sample() // final state
	}
}
