package scenario

import (
	"testing"
	"time"

	"blackdp/internal/sim"
)

// TestSoakInvariants drives randomized configurations through full runs and
// checks the properties that must hold in every single one:
//
//   - no false accusations, ever (BlackDP's conviction standard is a
//     protocol violation an honest node cannot commit);
//   - with no attacker, nothing is detected and nothing revoked;
//   - detection-packet counts, when a detection ran, stay within the
//     protocol's structural bounds;
//   - the run terminates within its simulated-time budget.
func TestSoakInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 18; i++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Int63()
		cfg.Vehicles = 40 + rng.IntN(80)
		cfg.AttackerCluster = rng.IntN(10) + 1
		cfg.DataPackets = rng.IntN(8)
		cfg.MaxSimTime = 60 * time.Second
		switch rng.IntN(4) {
		case 0:
			cfg.Attack = NoAttack
		case 1:
			cfg.Attack = CooperativeBlackHole
		case 2:
			cfg.Attack = SingleBlackHole
			cfg.EvasiveClusters = []int{8, 9, 10}
		default:
			cfg.Attack = SingleBlackHole
			cfg.ExtraAttackers = rng.IntN(3)
		}
		if rng.Bool(0.3) {
			cfg.LossRate = 0.01
		}
		if rng.Bool(0.3) {
			cfg.RealCrypto = false
		}

		o, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d (%+v): %v", i, cfg.Attack, err)
		}
		if o.FalseAccusations != 0 {
			t.Errorf("run %d seed %d: %d FALSE ACCUSATIONS", i, cfg.Seed, o.FalseAccusations)
		}
		if cfg.Attack == NoAttack {
			if o.Detected || o.AttackersDetected != 0 {
				t.Errorf("run %d: detection without an attacker", i)
			}
		}
		if o.DetectionPackets != 0 && (o.DetectionPackets < 4 || o.DetectionPackets > 20) {
			t.Errorf("run %d: %d detection packets outside structural bounds", i, o.DetectionPackets)
		}
		if o.Duration > cfg.MaxSimTime+time.Second {
			t.Errorf("run %d: overran the time budget: %v", i, o.Duration)
		}
		if o.AttackersDetected > o.AttackersPresent {
			t.Errorf("run %d: detected %d of %d attackers", i, o.AttackersDetected, o.AttackersPresent)
		}
	}
}
