package scenario

import (
	"context"
	"reflect"
	"testing"
	"time"

	"blackdp/internal/fault"
)

// faultConfig is diffConfig with placement pinned so the fault schedule can
// target the reporter's head: the source starts in cluster 1, the attacker
// sits in cluster 2, and detection runs end to end in under a minute.
func faultConfig() Config {
	cfg := diffConfig()
	cfg.MaxSimTime = 60 * time.Second
	return cfg
}

// TestHeadCrashFailoverStillDetects is the tentpole acceptance scenario: the
// reporter's cluster head dies before the d_req can be answered and never
// comes back, yet the attacker is still convicted — the vehicle exhausts its
// retransmissions, fails over to the adjacent head, refiles, and the verdict
// arrives there.
func TestHeadCrashFailoverStillDetects(t *testing.T) {
	cfg := faultConfig()
	cfg.Fault = CrashPlan(1, time.Second, 0) // source's head, down for good
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Run()
	if !o.Detected {
		t.Fatalf("attacker not detected despite failover path: %+v", o)
	}
	if got := w.Source.Stats().Failovers; got == 0 {
		t.Error("source never failed over; detection must have used the dead head")
	}
	var failoverJoins uint64
	for _, h := range w.Heads {
		failoverJoins += h.Membership().Stats().FailoverJoins
	}
	if failoverJoins == 0 {
		t.Error("no head admitted a failover join")
	}
	// The verdict can only arrive after the retry ladder ran its course
	// (initial timeout + one backoff), so latency reflects the outage.
	if o.DetectionLatency < 2*cfg.Vehicle.DReqTimeout {
		t.Errorf("detection latency %v too low for a crashed-head run", o.DetectionLatency)
	}
	if err := w.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestHeadCrashRecoveryNeedsNoFailover pins the cheaper repair path: a short
// outage is bridged by d_req retransmission alone — the head is back before
// the retries run out, so no failover is attempted.
func TestHeadCrashRecoveryNeedsNoFailover(t *testing.T) {
	cfg := faultConfig()
	cfg.Fault = CrashPlan(1, time.Second, 5*time.Second)
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Run()
	if !o.Detected {
		t.Fatalf("attacker not detected despite head recovery: %+v", o)
	}
	st := w.Source.Stats()
	if st.DReqRetransmits == 0 {
		t.Error("no d_req retransmission; the crash window cannot have been exercised")
	}
	if st.Failovers != 0 {
		t.Errorf("source failed over %d times; retransmission should have sufficed", st.Failovers)
	}
	if err := w.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestRetryFailoverAblationDropsDetection shows the robustness machinery is
// load-bearing: the identical fault plan with retransmission and failover
// disabled (DReqRetries = -1) misses the attacker that the full protocol
// convicts in TestHeadCrashFailoverStillDetects.
func TestRetryFailoverAblationDropsDetection(t *testing.T) {
	cfg := faultConfig()
	cfg.Fault = CrashPlan(1, time.Second, 0)
	cfg.Vehicle.DReqRetries = -1
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Run()
	if o.Detected {
		t.Fatalf("ablated protocol still detected the attacker; robustness is not load-bearing: %+v", o)
	}
	if got := w.Source.Stats().Failovers; got != 0 {
		t.Errorf("ablated vehicle failed over %d times", got)
	}
}

// TestBurstLossRunStaysConserved runs the full adversarial scenario under a
// harsh Gilbert–Elliott channel plus duplication and reordering, and audits
// the packet ledger: every injected impairment must account for its frames.
func TestBurstLossRunStaysConserved(t *testing.T) {
	cfg := faultConfig()
	cfg.Fault = BurstPlan(0.3, 0.1, 0.2)
	cfg.Fault.DuplicateProb = 0.05
	cfg.Fault.ReorderProb = 0.05
	cfg.Fault.ReorderMax = 5 * time.Millisecond
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Run()
	if err := w.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if o.AirLost == 0 {
		t.Error("burst channel lost nothing; the plan cannot have been applied")
	}
	if o.AirDuplicated == 0 {
		t.Error("duplication enabled but no frame was duplicated")
	}
	if o.AirOffered != o.AirDelivered+o.AirLost {
		// In-flight copies at extraction time make up any gap; re-check via
		// the authoritative ledger rather than failing on the snapshot.
		if err := w.Env.Medium.Stats().CheckConservation(); err != nil {
			t.Errorf("offered %d != delivered %d + lost %d and ledger disagrees: %v",
				o.AirOffered, o.AirDelivered, o.AirLost, err)
		}
	}
}

// TestFaultSweepParallelMatchesSerial extends the engine's differential gate
// to fault-injected runs: a plan combining a head crash, a link cut, burst
// loss, duplication and reordering must yield byte-identical outcome records
// between the serial path and a saturated pool.
func TestFaultSweepParallelMatchesSerial(t *testing.T) {
	cfg := faultConfig()
	cfg.Fault = fault.Plan{
		HeadCrashes:   []fault.HeadCrash{{Cluster: 1, At: 2 * time.Second, RecoverAt: 12 * time.Second}},
		LinkCuts:      []fault.LinkCut{{Link: 2, At: 3 * time.Second, HealAt: 9 * time.Second}},
		Burst:         fault.BurstLoss{LossBad: 0.15, GoodToBad: 0.05, BadToGood: 0.3},
		DuplicateProb: 0.02,
		ReorderProb:   0.02,
		ReorderMax:    2 * time.Millisecond,
	}
	const reps = 4
	serial, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fault-injected outcomes diverged between workers=1 and workers=8:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

// TestLossySweepParallelMatchesSerial is the satellite regression for the
// WithLossRate audit: uniform channel loss draws from the per-run seeded
// radio stream, so lossy sweeps must also be worker-count invariant.
func TestLossySweepParallelMatchesSerial(t *testing.T) {
	cfg := diffConfig()
	cfg.LossRate = 0.05
	const reps = 3
	serial, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), cfg, reps, SweepOptions{Workers: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("lossy outcomes diverged between workers=1 and workers=8:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}

// TestFaultPlanValidationInConfig checks Config.Validate delegates to the
// plan validator with the highway's real cluster count.
func TestFaultPlanValidationInConfig(t *testing.T) {
	cfg := faultConfig() // 4 clusters
	cfg.Fault = CrashPlan(5, time.Second, 0)
	if err := cfg.Validate(); err == nil {
		t.Error("crash targeting a cluster past the highway end accepted")
	}
	cfg.Fault = fault.Plan{LinkCuts: []fault.LinkCut{{Link: 4, At: time.Second}}}
	if err := cfg.Validate(); err == nil {
		t.Error("cut of a non-existent backbone link accepted")
	}
	cfg.Fault = CrashPlan(2, 2*time.Second, time.Second)
	if err := cfg.Validate(); err == nil {
		t.Error("recovery before crash accepted")
	}
}
