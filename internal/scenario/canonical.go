package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical config serialization: the byte string that keys the result cache
// in internal/serve. Two configs that provoke byte-identical runs must
// canonicalise to identical bytes, so the form
//
//   - applies DefaultConfig to every zero field (a hand-built Config with
//     Vehicles unset and one with Vehicles: 100 describe the same run),
//   - sorts and deduplicates EvasiveClusters (membership is a set; the
//     world materialises it as a map, so order never reaches the RNG),
//   - clears Trace (the recorder only observes; the differential suite
//     holds runs byte-identical with tracing on or off),
//   - clears LinearScan (the spatial index is byte-for-bit invisible; the
//     differential suite holds indexed and linear runs identical), and
//   - marshals with encoding/json, which emits struct fields in declaration
//     order — deterministic because Config and fault.Plan are plain data
//     with no maps.
//
// The seed and the full fault plan stay in the bytes: they change the run,
// so they must change the key.

// Canonical returns the canonical serialization of cfg.
func Canonical(cfg Config) ([]byte, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.EvasiveClusters) > 0 {
		set := append([]int(nil), cfg.EvasiveClusters...)
		sort.Ints(set)
		uniq := set[:1]
		for _, c := range set[1:] {
			if c != uniq[len(uniq)-1] {
				uniq = append(uniq, c)
			}
		}
		cfg.EvasiveClusters = uniq
	} else {
		// Empty and nil both mean "no evasive clusters" but marshal as []
		// and null; collapse them to one key.
		cfg.EvasiveClusters = nil
	}
	cfg.Trace = false
	cfg.LinearScan = false
	// The verification cache is byte-for-bit invisible (the crypto
	// differential suite holds cached and uncached runs identical), so the
	// reference-path knob never reaches the key. The scheme, by contrast,
	// changes the run: resolve it to its explicit name so the legacy
	// RealCrypto boolean and an equivalent CryptoScheme string collapse to
	// one key, and scheme classes never share cache entries.
	cfg.NoVerifyCache = false
	cfg.CryptoScheme = cfg.SchemeName()
	cfg.RealCrypto = cfg.CryptoScheme != SchemePlaceholder
	// Sharded outcomes depend only on the mode (serial vs. sharded), never on
	// the exact worker count, so the key collapses RunWorkers to its
	// equivalence class: 1 for every serial value, 2 for every sharded one.
	if cfg.RunWorkers >= 2 {
		cfg.RunWorkers = 2
	} else {
		cfg.RunWorkers = 1
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalising config: %w", err)
	}
	return b, nil
}

// Fingerprint returns the hex SHA-256 of the canonical serialization — the
// stable identity of the run cfg describes. By the replay-determinism
// guarantee (see the differential tests), equal fingerprints mean
// byte-identical outcomes.
func Fingerprint(cfg Config) (string, error) {
	b, err := Canonical(cfg)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
