package scenario

import (
	"context"
	"reflect"
	"testing"
	"time"

	"blackdp/internal/metrics"
)

// rangeTestConfig is a fast Table-I-style world for the chunked-range
// differential: small enough to sweep hundreds of replications in tests,
// full enough to exercise attacker placement and detection.
func rangeTestConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		HighwayLengthM:  4000,
		Vehicles:        30,
		AttackerCluster: 2,
		DataPackets:     5,
		MaxSimTime:      45 * time.Second,
	}
}

// TestRunSweepRangeMatchesFull is the chunking correctness proof the
// distributed fabric builds on: concatenating the outcomes of contiguous
// RunSweepRange calls — any chunk size, any worker count — reproduces one
// full RunSweep exactly, because seeds derive from global replication
// indexes alone.
func TestRunSweepRangeMatchesFull(t *testing.T) {
	ctx := context.Background()
	const reps = 13
	for _, seed := range []int64{1, 42, 90210} {
		cfg := rangeTestConfig(seed)
		full, err := RunSweep(ctx, cfg, reps, SweepOptions{Workers: 1}, nil)
		if err != nil {
			t.Fatalf("seed %d: full sweep: %v", seed, err)
		}
		for _, size := range []int{1, 3, 5, 13} {
			var merged []metrics.Outcome
			for start := 0; start < reps; start += size {
				count := size
				if start+count > reps {
					count = reps - start
				}
				part, err := RunSweepRange(ctx, cfg, start, count, SweepOptions{Workers: 2}, nil)
				if err != nil {
					t.Fatalf("seed %d size %d start %d: %v", seed, size, start, err)
				}
				merged = append(merged, part...)
			}
			if !reflect.DeepEqual(merged, full) {
				t.Errorf("seed %d: chunk size %d concatenation diverged from the full sweep", seed, size)
			}
		}
	}
}

// TestRunSweepRangeGlobalIndexes pins the hook contract: OnRep and mutate
// both see global replication indexes, never chunk-relative offsets.
func TestRunSweepRangeGlobalIndexes(t *testing.T) {
	cfg := rangeTestConfig(7)
	seenMutate := map[int]bool{}
	var seenOnRep []int
	_, err := RunSweepRange(context.Background(), cfg, 10, 4, SweepOptions{
		Workers: 1,
		OnRep:   func(rep int, err error) { seenOnRep = append(seenOnRep, rep) },
	}, func(rep int, c *Config) { seenMutate[rep] = true })
	if err != nil {
		t.Fatal(err)
	}
	for rep := 10; rep < 14; rep++ {
		if !seenMutate[rep] {
			t.Errorf("mutate never saw global rep %d (saw %v)", rep, seenMutate)
		}
	}
	want := []int{10, 11, 12, 13}
	if !reflect.DeepEqual(seenOnRep, want) {
		t.Errorf("OnRep saw %v, want %v", seenOnRep, want)
	}
}

// TestRunSweepRangeRejectsNegativeStart pins the validation edge.
func TestRunSweepRangeRejectsNegativeStart(t *testing.T) {
	if _, err := RunSweepRange(context.Background(), rangeTestConfig(1), -1, 4, SweepOptions{}, nil); err == nil {
		t.Fatal("negative start accepted")
	}
}
