// Package attack implements the paper's adversaries: single and cooperative
// black hole vehicles, plus the evasive behaviours the evaluation enables in
// clusters 8-10 (acting legitimately under examination, fleeing the highway,
// and renewing the pseudonymous certificate mid-detection).
//
// A black hole node is a full, correctly registered vehicle — it joins
// clusters and holds a valid certificate — whose routing behaviour is
// hostile: it answers every route request instantly with a signed route
// reply carrying an inflated destination sequence number (so its "route" is
// always the freshest on offer) and silently drops every data packet
// attracted onto it. The interceptor sits between the radio and the
// vehicle's legitimate protocol stack, so "acting legitimately" is literally
// handing the frame to the real AODV router.
package attack

import (
	"time"

	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// Profile configures a black hole's behaviour.
type Profile struct {
	// SeqBonus is added on top of the highest sequence number demanded or
	// previously claimed, keeping the attacker's replies the freshest (the
	// paper's attacker answers seq 0 with 250, then 251 with 300).
	SeqBonus wire.SeqNum
	// ClaimHops is the hop count claimed in forged replies (paper: 4).
	ClaimHops uint8
	// Teammate is the cooperative partner named when a reply is asked for
	// its next hop; 0 for a single attacker.
	Teammate wire.NodeID
	// ReplyDelay is the forged reply's head start; black holes answer as
	// fast as they can, so this should be near zero.
	ReplyDelay time.Duration

	// ActLegitProb is the per-request probability of handling a route
	// request honestly instead of forging (evasion: "the attacker acted
	// legitimately during the detection phase").
	ActLegitProb float64
	// FleeProb is the per-request probability of leaving the highway
	// instead of answering (evasion: "the attacker fled from the network,
	// specifically cluster 10").
	FleeProb float64
	// RenewProb is the per-request probability of renewing the certificate
	// (changing pseudonym) instead of answering (evasion: "certificate
	// renewal ... during the detection process").
	RenewProb float64
	// EvasiveWhen gates the three evasion draws; evasion applies only when
	// it reports true (the experiment enables it for clusters 8-10). Nil
	// means never evasive.
	EvasiveWhen func() bool
	// FakeHelloReplyProb is the probability of answering an end-to-end
	// Hello probe with a forged reply claiming to be the destination,
	// instead of staying silent (paper: "may reply with a fake Hello packet
	// claiming that itself or the teammate attacker is the destination").
	FakeHelloReplyProb float64
	// SupportOnly marks a cooperative accomplice (the paper's B2): it forges
	// replies only to next-hop-inquiry requests, endorsing its teammate's
	// claim, and otherwise behaves legitimately so the victim's report names
	// the primary attacker.
	SupportOnly bool
	// RenewCooldown is the minimum spacing between certificate renewals
	// (identity churn is conspicuous, so even evasive attackers pace it).
	// Zero means the 10 s default.
	RenewCooldown time.Duration
	// DropProb is the probability of dropping each attracted data packet.
	// Zero (the default) and anything >= 1 mean the pure black hole: drop
	// everything. Values strictly between 0 and 1 model a selective ("gray
	// hole") dropper that lets some traffic through the legitimate stack
	// to evade statistics-based detectors. BlackDP is indifferent: it
	// convicts on route forgery, not on delivery ratios.
	DropProb float64
}

// DefaultProfile returns an aggressive, non-evasive single black hole.
func DefaultProfile() Profile {
	return Profile{
		SeqBonus:  120,
		ClaimHops: 4,
	}
}

// Env is what the interceptor needs from its host vehicle.
type Env struct {
	Sched sim.Runtime
	RNG   *sim.RNG
	// Send transmits on the vehicle's radio (link-ACK result ignored:
	// black holes do not care whether their forgeries land).
	Send func(to wire.NodeID, payload []byte) bool
	// Self returns the current pseudonym.
	Self func() wire.NodeID
	// Cluster returns the current cluster registration.
	Cluster func() wire.ClusterID
	// Seal signs a forged packet with the attacker's (valid!) credential;
	// nil sends forgeries unsigned.
	Seal func(p wire.Packet) ([]byte, error)
	// Inner is the vehicle's legitimate frame handler (router + membership);
	// frames the attacker chooses not to subvert go here.
	Inner func(f radio.Frame)
	// Flee removes the vehicle from the highway (next off-ramp).
	Flee func()
	// Renew starts a certificate renewal (pseudonym change). May be nil.
	Renew func()
}

// Stats counts hostile activity.
type Stats struct {
	RepliesForged       uint64
	DataDropped         uint64
	DataForwardedAnyway uint64 // gray hole leniency draws
	ProbesSwallowed     uint64
	FakeHelloSent       uint64
	ActedLegit          uint64
	Fled                uint64
	Renewals            uint64
}

// Blackhole is the interception layer implementing the attack.
type Blackhole struct {
	profile Profile
	env     Env

	maxSeq      wire.SeqNum // highest seq seen or claimed so far
	floods      map[floodKey]bool
	lastRenewal time.Duration
	renewedOnce bool
	stats       Stats
	fled        bool
	stopped     bool
}

// floodKey identifies one route request for duplicate suppression: the
// attacker answers each request once, however many rebroadcast copies reach
// it.
type floodKey struct {
	origin wire.NodeID
	id     uint32
}

// NewBlackhole creates the interceptor. Wire the radio's receive callback to
// HandleFrame.
func NewBlackhole(profile Profile, env Env) *Blackhole {
	if env.Sched == nil || env.RNG == nil || env.Send == nil || env.Self == nil || env.Inner == nil {
		panic("attack: NewBlackhole requires sched, rng, send, self and inner handler")
	}
	if profile.SeqBonus == 0 {
		profile.SeqBonus = DefaultProfile().SeqBonus
	}
	if profile.RenewCooldown == 0 {
		profile.RenewCooldown = 10 * time.Second
	}
	return &Blackhole{profile: profile, env: env, floods: make(map[floodKey]bool)}
}

// Stats returns a snapshot of hostile-activity counters.
func (b *Blackhole) Stats() Stats { return b.stats }

// Stop disables the interceptor (frames still reach the inner stack).
func (b *Blackhole) Stop() { b.stopped = true }

// Cooperative reports whether the attacker names a teammate.
func (b *Blackhole) Cooperative() bool { return b.profile.Teammate != 0 }

// HandleFrame is the radio receive entry point: hostile handling for route
// requests, data and probes; everything else passes through to the
// legitimate stack.
func (b *Blackhole) HandleFrame(f radio.Frame) {
	if b.stopped || b.fled {
		b.env.Inner(f)
		return
	}
	// Kind peek: the attacker only interposes on route requests, data and
	// probes. Other bare kinds pass straight through to the legitimate
	// stack without a wasted decode; the hostile kinds decode into stack
	// values (their handlers never retain the packet).
	switch f.Kind() {
	case wire.KindRREQ:
		var p wire.RREQ
		if p.UnmarshalBinary(f.Payload) != nil {
			return
		}
		b.handleRREQ(&p, f)
		return
	case wire.KindHello:
		var p wire.Hello
		if p.UnmarshalBinary(f.Payload) != nil {
			return
		}
		b.handleHello(&p, f)
		return
	case wire.KindData:
		var p wire.Data
		if p.UnmarshalBinary(f.Payload) != nil {
			return
		}
		b.handleData(&p, f)
		return
	case wire.KindSecure:
		// Sealed traffic may wrap a hostile kind; fall through to the
		// generic decode below.
	default:
		if !f.Kind().Valid() {
			return // corrupt or foreign frame, dropped as before
		}
		b.env.Inner(f)
		return
	}
	pkt, err := wire.Decode(f.Payload)
	if err != nil {
		return
	}
	if sec, ok := pkt.(*wire.Secure); ok {
		inner, err := wire.Decode(sec.Inner)
		if err != nil {
			return
		}
		pkt = inner
	}
	switch p := pkt.(type) {
	case *wire.RREQ:
		b.handleRREQ(p, f)
	case *wire.Data:
		b.handleData(p, f)
	case *wire.Hello:
		b.handleHello(p, f)
	default:
		b.env.Inner(f)
	}
}

func (b *Blackhole) handleData(p *wire.Data, f radio.Frame) {
	if p.Dest == b.env.Self() {
		// Traffic genuinely for the attacker is consumed normally.
		b.env.Inner(f)
		return
	}
	if p := b.profile.DropProb; p > 0 && p < 1 && !b.env.RNG.Bool(p) {
		// Gray hole leniency: let this one through the normal stack
		// (which forwards it only if a genuine route exists).
		b.stats.DataForwardedAnyway++
		b.env.Inner(f)
		return
	}
	b.stats.DataDropped++ // the black hole: attracted traffic vanishes
}

func (b *Blackhole) evasive() bool {
	return b.profile.EvasiveWhen != nil && b.profile.EvasiveWhen()
}

func (b *Blackhole) canRenew() bool {
	if b.env.Renew == nil {
		return false
	}
	return !b.renewedOnce || b.env.Sched.Now()-b.lastRenewal >= b.profile.RenewCooldown
}

func (b *Blackhole) handleRREQ(p *wire.RREQ, f radio.Frame) {
	if p.Origin == b.env.Self() {
		return
	}
	if b.profile.SupportOnly && !p.WantNext {
		// The accomplice keeps a clean profile until asked to vouch for a
		// route.
		b.env.Inner(f)
		return
	}
	key := floodKey{origin: p.Origin, id: p.FloodID}
	if b.floods[key] {
		return // already answered (or evaded) this request; ignore copies
	}
	b.floods[key] = true
	if p.DestSeq > b.maxSeq {
		b.maxSeq = p.DestSeq
	}
	if b.evasive() {
		switch {
		case b.env.RNG.Bool(b.profile.ActLegitProb):
			b.stats.ActedLegit++
			b.env.Inner(f)
			return
		case b.env.RNG.Bool(b.profile.FleeProb):
			b.stats.Fled++
			b.fled = true
			if b.env.Flee != nil {
				b.env.Flee()
			}
			return
		case b.env.RNG.Bool(b.profile.RenewProb) && b.canRenew():
			b.stats.Renewals++
			b.lastRenewal = b.env.Sched.Now()
			b.renewedOnce = true
			b.env.Renew()
			return // identity is changing; answering as the old one helps no-one
		}
	}
	// Forge: claim the freshest route to whatever was asked for.
	b.maxSeq += b.profile.SeqBonus
	rep := &wire.RREP{
		Origin:        p.Origin,
		Dest:          p.Dest,
		DestSeq:       b.maxSeq,
		HopCount:      b.profile.ClaimHops,
		Lifetime:      time.Minute,
		Issuer:        b.env.Self(),
		IssuerCluster: b.clusterOf(),
	}
	if p.WantNext {
		rep.NextHop = b.profile.Teammate
	}
	payload := b.seal(rep)
	b.env.Sched.After(b.profile.ReplyDelay, func() {
		if b.fled || b.stopped {
			return
		}
		b.env.Send(f.From, payload)
	})
	b.stats.RepliesForged++
}

func (b *Blackhole) handleHello(p *wire.Hello, f radio.Frame) {
	if p.Dest == wire.Broadcast {
		b.env.Inner(f) // neighbour beacon: stay inconspicuous
		return
	}
	if p.Dest != b.env.Self() && p.Origin != b.env.Self() {
		// A routed verification probe has landed on us as next hop. We have
		// no route to the real destination, so we cannot forward it; the
		// choice is silence (let the prober time out) or a forged reply.
		if b.env.RNG.Bool(b.profile.FakeHelloReplyProb) {
			fake := &wire.Hello{
				Origin: p.Dest, // impersonate the destination
				Dest:   p.Origin,
				Nonce:  p.Nonce,
				Reply:  true,
			}
			b.env.Send(f.From, b.seal(fake))
			b.stats.FakeHelloSent++
			return
		}
		b.stats.ProbesSwallowed++
		return
	}
	b.env.Inner(f)
}

func (b *Blackhole) clusterOf() wire.ClusterID {
	if b.env.Cluster == nil {
		return 0
	}
	return b.env.Cluster()
}

func (b *Blackhole) seal(p wire.Packet) []byte {
	if b.env.Seal != nil {
		if payload, err := b.env.Seal(p); err == nil {
			return payload
		}
	}
	payload, err := p.MarshalBinary()
	if err != nil {
		panic("attack: marshalling forged packet: " + err.Error())
	}
	return payload
}
