package attack

import (
	"testing"
	"time"

	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// harness wires a Blackhole to recording fakes.
type harness struct {
	sched *sim.Scheduler
	bh    *Blackhole
	sent  []struct {
		to  wire.NodeID
		pkt wire.Packet
	}
	inner   []radio.Frame
	fled    bool
	renewed int
}

func newHarness(t *testing.T, p Profile) *harness {
	t.Helper()
	h := &harness{sched: sim.NewScheduler()}
	env := Env{
		Sched: h.sched,
		RNG:   sim.NewRNG(11),
		Send: func(to wire.NodeID, payload []byte) bool {
			pkt, err := wire.Decode(payload)
			if err != nil {
				t.Fatalf("attacker sent undecodable payload: %v", err)
			}
			h.sent = append(h.sent, struct {
				to  wire.NodeID
				pkt wire.Packet
			}{to, pkt})
			return true
		},
		Self:    func() wire.NodeID { return 66 },
		Cluster: func() wire.ClusterID { return 2 },
		Inner:   func(f radio.Frame) { h.inner = append(h.inner, f) },
		Flee:    func() { h.fled = true },
		Renew:   func() { h.renewed++ },
	}
	h.bh = NewBlackhole(p, env)
	return h
}

func frame(t *testing.T, from wire.NodeID, p wire.Packet) radio.Frame {
	t.Helper()
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return radio.Frame{From: from, To: wire.Broadcast, Payload: b}
}

func TestForgesFreshestReply(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, DestSeq: 0, TTL: 10}))
	h.sched.Run()
	if len(h.sent) != 1 {
		t.Fatalf("attacker sent %d packets, want 1 forged reply", len(h.sent))
	}
	rep, ok := h.sent[0].pkt.(*wire.RREP)
	if !ok {
		t.Fatalf("attacker sent %T, want RREP", h.sent[0].pkt)
	}
	if rep.DestSeq < 100 {
		t.Errorf("forged seq = %d, want inflated (>=100)", rep.DestSeq)
	}
	if rep.Issuer != 66 || rep.Dest != 7 || rep.Origin != 1 {
		t.Errorf("forged reply fields = %+v", rep)
	}
	if rep.IssuerCluster != 2 {
		t.Errorf("forged reply cluster = %d, want 2", rep.IssuerCluster)
	}
	if h.sent[0].to != 2 {
		t.Errorf("reply sent to %v, want the delivering neighbour 2", h.sent[0].to)
	}
	if h.bh.Stats().RepliesForged != 1 {
		t.Errorf("RepliesForged = %d", h.bh.Stats().RepliesForged)
	}
}

func TestSecondReplyAlwaysFresher(t *testing.T) {
	// The AODV violation BlackDP catches: asked with DestSeq above its own
	// previous claim, the attacker still answers with a higher number.
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 50, &wire.RREQ{FloodID: 1, Origin: 50, Dest: 10, DestSeq: 0, TTL: 1}))
	h.sched.Run()
	first := h.sent[0].pkt.(*wire.RREP).DestSeq

	h.bh.HandleFrame(frame(t, 50, &wire.RREQ{FloodID: 2, Origin: 50, Dest: 10, DestSeq: first + 1, TTL: 1, WantNext: true}))
	h.sched.Run()
	second := h.sent[1].pkt.(*wire.RREP).DestSeq
	if second <= first {
		t.Errorf("second forged seq %d not above first %d", second, first)
	}
	if second <= first+1 {
		t.Errorf("second forged seq %d does not exceed the demanded %d", second, first+1)
	}
}

func TestCooperativeNamesTeammateOnlyWhenAsked(t *testing.T) {
	p := DefaultProfile()
	p.Teammate = 67
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 2, Origin: 1, Dest: 7, TTL: 10, WantNext: true}))
	h.sched.Run()
	if got := h.sent[0].pkt.(*wire.RREP).NextHop; got != 0 {
		t.Errorf("unasked reply named next hop %v", got)
	}
	if got := h.sent[1].pkt.(*wire.RREP).NextHop; got != 67 {
		t.Errorf("asked reply named next hop %v, want teammate 67", got)
	}
	if !h.bh.Cooperative() {
		t.Error("Cooperative() = false")
	}
}

func TestDropsForeignData(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 7, SeqNo: 1, Payload: []byte("x")}))
	h.sched.Run()
	if len(h.sent) != 0 || len(h.inner) != 0 {
		t.Error("attracted data was not silently dropped")
	}
	if h.bh.Stats().DataDropped != 1 {
		t.Errorf("DataDropped = %d, want 1", h.bh.Stats().DataDropped)
	}
	// Data addressed to the attacker itself passes to the inner stack.
	h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 66, SeqNo: 2}))
	if len(h.inner) != 1 {
		t.Error("data for the attacker itself did not reach the inner stack")
	}
}

func TestGrayHoleDropsSelectively(t *testing.T) {
	p := DefaultProfile()
	p.DropProb = 0.5
	h := newHarness(t, p)
	const n = 2000
	for i := 0; i < n; i++ {
		h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 7, SeqNo: uint32(i)}))
	}
	st := h.bh.Stats()
	if st.DataDropped+st.DataForwardedAnyway != n {
		t.Fatalf("dropped %d + forwarded %d != %d", st.DataDropped, st.DataForwardedAnyway, n)
	}
	frac := float64(st.DataDropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("drop fraction %v with DropProb 0.5", frac)
	}
	if int(st.DataForwardedAnyway) != len(h.inner) {
		t.Errorf("forwarded %d but inner saw %d", st.DataForwardedAnyway, len(h.inner))
	}
}

func TestPureBlackHoleIsDefault(t *testing.T) {
	h := newHarness(t, DefaultProfile()) // DropProb zero value
	for i := 0; i < 100; i++ {
		h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 7, SeqNo: uint32(i)}))
	}
	st := h.bh.Stats()
	if st.DataDropped != 100 || st.DataForwardedAnyway != 0 {
		t.Errorf("default profile leaked data: %+v", st)
	}
}

func TestSwallowsVerificationProbes(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 1, &wire.Hello{Origin: 1, Dest: 7, Nonce: 5}))
	h.sched.Run()
	if len(h.sent) != 0 {
		t.Errorf("attacker responded to a probe it cannot forward: %+v", h.sent)
	}
	if h.bh.Stats().ProbesSwallowed != 1 {
		t.Errorf("ProbesSwallowed = %d", h.bh.Stats().ProbesSwallowed)
	}
}

func TestFakeHelloReplyImpersonatesDestination(t *testing.T) {
	p := DefaultProfile()
	p.FakeHelloReplyProb = 1
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 1, &wire.Hello{Origin: 1, Dest: 7, Nonce: 5}))
	h.sched.Run()
	if len(h.sent) != 1 {
		t.Fatalf("attacker sent %d packets, want 1 fake hello", len(h.sent))
	}
	fake, ok := h.sent[0].pkt.(*wire.Hello)
	if !ok || !fake.Reply || fake.Origin != 7 || fake.Dest != 1 || fake.Nonce != 5 {
		t.Errorf("fake hello = %+v", h.sent[0].pkt)
	}
	if h.bh.Stats().FakeHelloSent != 1 {
		t.Errorf("FakeHelloSent = %d", h.bh.Stats().FakeHelloSent)
	}
}

func TestBeaconsAndForeignPacketsPassThrough(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 2, &wire.Hello{Origin: 2, Dest: wire.Broadcast}))
	h.bh.HandleFrame(frame(t, 1002, &wire.JoinRep{Head: 1002, Cluster: 2, Vehicle: 66}))
	h.bh.HandleFrame(frame(t, 1002, &wire.BlacklistNotice{Head: 1002, Cluster: 2}))
	if len(h.inner) != 3 {
		t.Errorf("inner stack saw %d frames, want 3", len(h.inner))
	}
	if len(h.sent) != 0 {
		t.Errorf("attacker reacted to benign packets: %d sends", len(h.sent))
	}
}

func TestActLegitPassesRREQToInnerStack(t *testing.T) {
	p := DefaultProfile()
	p.ActLegitProb = 1
	p.EvasiveWhen = func() bool { return true }
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.sched.Run()
	if len(h.sent) != 0 {
		t.Error("evasive attacker still forged a reply")
	}
	if len(h.inner) != 1 {
		t.Error("legit handling did not reach the inner stack")
	}
	if h.bh.Stats().ActedLegit != 1 {
		t.Errorf("ActedLegit = %d", h.bh.Stats().ActedLegit)
	}
}

func TestEvasionGatedByEvasiveWhen(t *testing.T) {
	p := DefaultProfile()
	p.ActLegitProb = 1
	p.EvasiveWhen = func() bool { return false } // e.g. attacker in clusters 1-7
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.sched.Run()
	if len(h.sent) != 1 {
		t.Error("non-evasive attacker did not forge")
	}
}

func TestFleeStopsAttacking(t *testing.T) {
	p := DefaultProfile()
	p.FleeProb = 1
	p.EvasiveWhen = func() bool { return true }
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.sched.Run()
	if !h.fled {
		t.Fatal("Flee hook not invoked")
	}
	if len(h.sent) != 0 {
		t.Error("fleeing attacker still replied")
	}
	// After fleeing, everything passes through untouched.
	h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 7}))
	if h.bh.Stats().DataDropped != 0 {
		t.Error("fled attacker still dropping data")
	}
}

func TestRenewTriggersIdentityChange(t *testing.T) {
	p := DefaultProfile()
	p.RenewProb = 1
	p.EvasiveWhen = func() bool { return true }
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.sched.Run()
	if h.renewed != 1 {
		t.Fatalf("Renew hook invoked %d times, want 1", h.renewed)
	}
	if len(h.sent) != 0 {
		t.Error("renewing attacker still replied under the old identity")
	}
}

func TestStoppedInterceptorPassesEverything(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.Stop()
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	h.bh.HandleFrame(frame(t, 2, &wire.Data{Origin: 1, Dest: 7}))
	if len(h.inner) != 2 {
		t.Errorf("inner saw %d frames after Stop, want 2", len(h.inner))
	}
	if len(h.sent) != 0 {
		t.Error("stopped attacker forged a reply")
	}
}

func TestIgnoresOwnEchoedFlood(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 66, Dest: 7, TTL: 10}))
	h.sched.Run()
	if len(h.sent) != 0 {
		t.Error("attacker replied to its own flood")
	}
}

func TestReplyDelayHonoured(t *testing.T) {
	p := DefaultProfile()
	p.ReplyDelay = 5 * time.Millisecond
	h := newHarness(t, p)
	h.bh.HandleFrame(frame(t, 2, &wire.RREQ{FloodID: 1, Origin: 1, Dest: 7, TTL: 10}))
	if len(h.sent) != 0 {
		t.Error("reply sent before the configured delay")
	}
	h.sched.Run()
	if len(h.sent) != 1 {
		t.Error("reply never sent")
	}
	if h.sched.Now() != 5*time.Millisecond {
		t.Errorf("reply at %v, want 5ms", h.sched.Now())
	}
}

func TestCorruptFrameIgnored(t *testing.T) {
	h := newHarness(t, DefaultProfile())
	h.bh.HandleFrame(radio.Frame{From: 2, Payload: []byte{0xff, 0x01}})
	if len(h.inner) != 0 || len(h.sent) != 0 {
		t.Error("corrupt frame produced activity")
	}
}
