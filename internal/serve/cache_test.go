package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCacheMissThenHit(t *testing.T) {
	c := NewCache(4)
	e, leader := c.Begin("k")
	if !leader {
		t.Fatal("first Begin should lead")
	}
	c.Complete(e, []byte("result"), nil)

	e2, leader := c.Begin("k")
	if leader {
		t.Fatal("second Begin should hit")
	}
	b, err := e2.Wait(context.Background())
	if err != nil || string(b) != "result" {
		t.Fatalf("Wait = %q, %v", b, err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Joins != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSingleFlightCoalesces(t *testing.T) {
	c := NewCache(4)
	leaderEntry, leader := c.Begin("k")
	if !leader {
		t.Fatal("no leader")
	}
	const followers = 8
	var wg sync.WaitGroup
	results := make([][]byte, followers)
	for i := 0; i < followers; i++ {
		e, lead := c.Begin("k")
		if lead {
			t.Fatal("follower elected leader")
		}
		wg.Add(1)
		go func(i int, e *Entry) {
			defer wg.Done()
			results[i], _ = e.Wait(context.Background())
		}(i, e)
	}
	c.Complete(leaderEntry, []byte("shared"), nil)
	wg.Wait()
	for i, b := range results {
		if string(b) != "shared" {
			t.Fatalf("follower %d saw %q", i, b)
		}
	}
	st := c.Stats()
	if st.Joins != followers || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheFailedRunNotCached(t *testing.T) {
	c := NewCache(4)
	e, _ := c.Begin("k")
	c.Complete(e, nil, errors.New("boom"))
	if _, err := e.Wait(context.Background()); err == nil {
		t.Fatal("waiter missed the failure")
	}
	if _, leader := c.Begin("k"); !leader {
		t.Fatal("failed entry should have been removed; next request must lead")
	}
}

func TestCacheEvictsLRUCompletedOnly(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 2; i++ {
		e, _ := c.Begin(fmt.Sprintf("done-%d", i))
		c.Complete(e, []byte("x"), nil)
	}
	inflight, _ := c.Begin("inflight") // exceeds cap; oldest completed goes
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	if _, leader := c.Begin("done-0"); !leader {
		t.Fatal("done-0 should have been evicted")
	}
	// The in-flight entry must never be evicted, no matter the pressure.
	for i := 0; i < 5; i++ {
		e, _ := c.Begin(fmt.Sprintf("more-%d", i))
		c.Complete(e, []byte("x"), nil)
	}
	if _, leader := c.Begin("inflight"); leader {
		t.Fatal("in-flight entry was evicted")
	}
	_ = inflight
}

func TestCacheWaitRespectsContext(t *testing.T) {
	c := NewCache(2)
	e, _ := c.Begin("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestCachePutOverwrites(t *testing.T) {
	c := NewCache(2)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	e, leader := c.Begin("k")
	if leader {
		t.Fatal("Put entry should be hittable")
	}
	b, err := e.Wait(context.Background())
	if err != nil || string(b) != "v2" {
		t.Fatalf("Wait = %q, %v", b, err)
	}
}
