package serve

// Hand-rolled Prometheus text-format metrics (exposition format 0.0.4).
// The service is stdlib-only, so instead of the client library this file
// implements exactly the instrument shapes the /metrics endpoint needs:
// monotone counters (stored or sampled), labelled counter families, sampled
// gauges, and a fixed-bucket histogram. Metrics render in registration
// order, so the exposition document is deterministic for the tests.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

type metric interface {
	expose(w io.Writer) error
}

// Registry holds the service's metrics and renders the exposition document.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// Render writes the full exposition document to w.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if err := m.expose(w); err != nil {
			return err
		}
	}
	return nil
}

func header(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Counter is a monotone uint64 counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer) error {
	if err := header(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// CounterVec is a counter family over one label with a fixed value set
// declared at registration (so the exposition order is stable).
type CounterVec struct {
	name, help, label string
	values            []string
	series            map[string]*atomic.Uint64
}

// CounterVec registers a counter family; incrementing an undeclared label
// value panics, which keeps the value set closed and the output ordered.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label,
		values: values, series: make(map[string]*atomic.Uint64, len(values))}
	for _, val := range values {
		v.series[val] = new(atomic.Uint64)
	}
	r.register(v)
	return v
}

func (v *CounterVec) at(value string) *atomic.Uint64 {
	c, ok := v.series[value]
	if !ok {
		panic(fmt.Sprintf("serve: counter %s has no label %s=%q", v.name, v.label, value))
	}
	return c
}

// Inc adds one to the series for value.
func (v *CounterVec) Inc(value string) { v.at(value).Add(1) }

// Value reads the series for value.
func (v *CounterVec) Value(value string) uint64 { return v.at(value).Load() }

func (v *CounterVec) expose(w io.Writer) error {
	if err := header(w, v.name, v.help, "counter"); err != nil {
		return err
	}
	for _, val := range v.values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, v.series[val].Load()); err != nil {
			return err
		}
	}
	return nil
}

// DynCounterVec is a counter family whose label values are discovered at
// runtime (tenant names arriving in chunk requests, say, which a worker
// cannot enumerate up front). Series render in sorted label order so the
// exposition document stays deterministic.
type DynCounterVec struct {
	name, help, label string

	mu     sync.Mutex
	series map[string]*atomic.Uint64
}

// DynCounterVec registers a counter family with an open label-value set.
func (r *Registry) DynCounterVec(name, help, label string) *DynCounterVec {
	v := &DynCounterVec{name: name, help: help, label: label,
		series: make(map[string]*atomic.Uint64)}
	r.register(v)
	return v
}

// Add adds n to the series for value, creating the series on first use.
func (v *DynCounterVec) Add(value string, n uint64) {
	v.mu.Lock()
	c, ok := v.series[value]
	if !ok {
		c = new(atomic.Uint64)
		v.series[value] = c
	}
	v.mu.Unlock()
	c.Add(n)
}

// Value reads the series for value (0 if it never incremented).
func (v *DynCounterVec) Value(value string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.series[value]; ok {
		return c.Load()
	}
	return 0
}

func (v *DynCounterVec) expose(w io.Writer) error {
	if err := header(w, v.name, v.help, "counter"); err != nil {
		return err
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	counts := make(map[string]uint64, len(v.series))
	for k, c := range v.series {
		counts[k] = c.Load()
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// funcMetric samples a value at render time — used for gauges derived from
// live server state (queue depth, running jobs) and for counters owned by
// another component (the cache keeps its own hit/miss tallies).
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

func (m *funcMetric) expose(w io.Writer) error {
	if err := header(w, m.name, m.help, m.typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
	return err
}

// GaugeFunc registers a gauge sampled from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// CounterFunc registers a counter whose value lives elsewhere; fn must be
// monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&funcMetric{name: name, help: help, typ: "counter",
		fn: func() float64 { return float64(fn()) }})
}

// funcVecMetric samples one value per declared label value at render time —
// per-tenant gauges (queue depth, running jobs) derive from live admission
// state the same way the unlabelled gauges do.
type funcVecMetric struct {
	name, help, typ, label string
	values                 []string
	fn                     func(value string) float64
}

func (m *funcVecMetric) expose(w io.Writer) error {
	if err := header(w, m.name, m.help, m.typ); err != nil {
		return err
	}
	for _, val := range m.values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.label, val, formatFloat(m.fn(val))); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVecFunc registers a labelled gauge family with a fixed value set,
// sampled from fn at render time.
func (r *Registry) GaugeVecFunc(name, help, label string, values []string, fn func(value string) float64) {
	r.register(&funcVecMetric{name: name, help: help, typ: "gauge",
		label: label, values: values, fn: fn})
}

// Histogram is a fixed-bucket histogram with the standard cumulative
// exposition (every bucket counts observations <= its bound, plus +Inf).
type Histogram struct {
	name, help string
	bounds     []float64

	mu     sync.Mutex
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	n      uint64
}

// Histogram registers a histogram over the given ascending upper bounds.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("serve: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := len(h.bounds) // +Inf
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.n++
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

func (h *Histogram) expose(w io.Writer) error {
	if err := header(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, n); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, n)
	return err
}
