package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
	}
	return resp.StatusCode, buf.String()
}

func TestCancelUnknownJobIs404(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := del(t, ts.URL+"/v1/jobs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	var env APIError
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != "not_found" {
		t.Errorf("envelope = %q (err %v), want code not_found", body, err)
	}
}

func TestCancelFinishedJobIs409(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, lines := post(t, ts, runBody(3))
	var accepted struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &accepted); err != nil || accepted.Job == "" {
		t.Fatalf("no job id in %q", lines[0])
	}
	code, body := del(t, ts.URL+"/v1/jobs/"+accepted.Job)
	if code != http.StatusConflict {
		t.Fatalf("status %d, want 409", code)
	}
	var env APIError
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != "already_finished" {
		t.Errorf("envelope = %q (err %v), want code already_finished", body, err)
	}
}

// TestCancelRunningSweepStopsWork cancels a long local sweep mid-flight and
// requires the job stream to terminate with a canceled marker and the
// server's worker pool to come back to idle — no goroutine keeps
// simulating a job nobody is waiting for.
func TestCancelRunningSweepStopsWork(t *testing.T) {
	s := mustNew(t, Config{SweepWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()

	type result struct {
		status int
		lines  []string
	}
	done := make(chan result, 1)
	jobID := make(chan string, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(sweepBody(1, 500)))
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
			var l struct {
				Type string `json:"type"`
				Job  string `json:"job"`
			}
			if json.Unmarshal([]byte(lines[len(lines)-1]), &l) == nil && l.Type == "accepted" {
				jobID <- l.Job
			}
		}
		done <- result{resp.StatusCode, lines}
	}()

	var id string
	select {
	case id = <-jobID:
	case <-time.After(10 * time.Second):
		t.Fatal("no accepted line within 10s")
	}
	// Let a few replications land so the cancel interrupts real work.
	time.Sleep(50 * time.Millisecond)

	code, body := del(t, ts.URL+"/v1/jobs/"+id)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE status %d (%s), want 202", code, body)
	}
	if !strings.Contains(body, `"canceling"`) {
		t.Errorf("DELETE body %q lacks canceling status", body)
	}

	var res result
	select {
	case res = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("job stream did not terminate after cancel")
	}
	tail := strings.Join(res.lines, "\n")
	if !strings.Contains(tail, "canceled") && !strings.Contains(tail, "context canceled") {
		t.Errorf("canceled job stream has no cancel marker:\n%s", tail)
	}

	// A second cancel races the terminal state: either the job is already
	// finished (409) or the cancel is still applying (202); both are fine,
	// anything else is not.
	if code, _ := del(t, ts.URL+"/v1/jobs/"+id); code != http.StatusConflict && code != http.StatusAccepted {
		t.Errorf("second DELETE status %d, want 409 or 202", code)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain after cancel: before=%d now=%d", before, runtime.NumGoroutine())
}
