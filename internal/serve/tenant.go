package serve

// Tenancy: per-client API keys, per-tenant token-bucket rate limits and a
// fair-share admission queue. With no tenants configured the server runs
// open, exactly as before, behind a single anonymous tenant with no rate
// limit — the fair queue then degenerates to the old global slot gate
// (Workers running, QueueDepth queued, 429 beyond).
//
// With tenants configured every job request must carry
// "Authorization: Bearer <key>"; an unknown or missing key is a 401 with
// the typed envelope. Each tenant owns a token bucket (Rate jobs/second up
// to Burst) consulted at submission, its own bounded FIFO of queued jobs,
// and a fair share of the execution slots: freed slots are granted
// round-robin across tenants with queued work, so one tenant saturating
// its bucket or queue cannot starve the others — the saturator sees 429
// (rate_limited or queue_full) while everyone else keeps their share.
//
// Tenancy is admission-only by design: it never reaches the simulation, the
// canonical fingerprint or the result cache, so identical configs submitted
// by different tenants still share one cache entry and stay byte-identical.

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tenant declares one API client: its metrics name, its bearer key and its
// token-bucket rate limit.
type Tenant struct {
	// Name labels the tenant's metrics series and job records.
	Name string
	// Key is the bearer token presented in the Authorization header.
	Key string
	// Rate is the token-bucket refill in jobs per second; <= 0 means no
	// rate limit (queue bounds still apply).
	Rate float64
	// Burst is the bucket capacity; <= 0 takes max(1, ceil(Rate)).
	Burst int
}

// ParseTenant parses the "name:key[:rate[:burst]]" form used by the
// -api-key flag and keyfile lines.
func ParseTenant(s string) (Tenant, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return Tenant{}, fmt.Errorf("serve: tenant %q: want name:key[:rate[:burst]]", s)
	}
	t := Tenant{Name: parts[0], Key: parts[1]}
	if len(parts) >= 3 && parts[2] != "" {
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return Tenant{}, fmt.Errorf("serve: tenant %q: bad rate: %w", s, err)
		}
		t.Rate = rate
	}
	if len(parts) >= 4 && parts[3] != "" {
		burst, err := strconv.Atoi(parts[3])
		if err != nil {
			return Tenant{}, fmt.Errorf("serve: tenant %q: bad burst: %w", s, err)
		}
		t.Burst = burst
	}
	if len(parts) > 4 {
		return Tenant{}, fmt.Errorf("serve: tenant %q: too many fields", s)
	}
	return t, nil
}

// LoadKeyfile reads tenants from path: one name:key[:rate[:burst]] per
// line, blank lines and #-comments ignored.
func LoadKeyfile(path string) ([]Tenant, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tenants []Tenant
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTenant(line)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, t)
	}
	return tenants, sc.Err()
}

// anonTenant is the single open tenant of a server with no keys configured.
const anonTenant = "default"

// tokenBucket is a standard lazily-refilled token bucket. rate <= 0 means
// unlimited.
type tokenBucket struct {
	rate, burst float64
	tokens      float64
	last        time.Time
}

// take spends one token, reporting success and — on refusal — how long
// until the next token accrues.
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// tenantState is the runtime of one tenant: its bucket, its FIFO of queued
// submissions and its slice of the shared counters.
type tenantState struct {
	cfg    Tenant
	bucket tokenBucket // guarded by admission.mu
	queue  []*waiter   // guarded by admission.mu
	run    int         // running jobs, guarded by admission.mu
}

// waiter is one submission parked in a tenant queue until a slot is
// granted (ready closes) or the submitter gives up.
type waiter struct {
	ready chan struct{}
	t     *tenantState
}

// admission is the fair-share gate: Workers execution slots shared across
// tenants, one bounded FIFO per tenant, freed slots granted round-robin
// over tenants with queued work.
type admission struct {
	mu       sync.Mutex
	slots    int // concurrent executions (Config.Workers)
	used     int
	perQueue int // per-tenant queued-job bound (Config.QueueDepth)
	order    []*tenantState
	byKey    map[string]*tenantState
	byName   map[string]*tenantState
	cursor   int
	open     bool // no keys configured: byName[anonTenant] serves everyone
}

func newAdmission(slots, perQueue int, tenants []Tenant) (*admission, error) {
	a := &admission{
		slots:    slots,
		perQueue: perQueue,
		byKey:    make(map[string]*tenantState),
		byName:   make(map[string]*tenantState),
	}
	if len(tenants) == 0 {
		a.open = true
		tenants = []Tenant{{Name: anonTenant}}
	}
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if _, dup := a.byName[t.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant name %q", t.Name)
		}
		if t.Rate > 0 && t.Burst <= 0 {
			t.Burst = int(math.Max(1, math.Ceil(t.Rate)))
		}
		st := &tenantState{cfg: t, bucket: tokenBucket{rate: t.Rate, burst: float64(t.Burst)}}
		if !a.open {
			if t.Key == "" {
				return nil, fmt.Errorf("serve: tenant %q has no key", t.Name)
			}
			if _, dup := a.byKey[t.Key]; dup {
				return nil, fmt.Errorf("serve: tenants share a key")
			}
			a.byKey[t.Key] = st
		}
		a.byName[t.Name] = st
		a.order = append(a.order, st)
	}
	return a, nil
}

// names lists the tenant names in registration order (the metrics label
// value set).
func (a *admission) names() []string {
	out := make([]string, len(a.order))
	for i, t := range a.order {
		out[i] = t.cfg.Name
	}
	return out
}

// authenticate resolves the Authorization header to a tenant. On an open
// server everyone is the anonymous tenant; otherwise only a known
// "Bearer <key>" passes.
func (a *admission) authenticate(header string) *tenantState {
	if a.open {
		return a.byName[anonTenant]
	}
	key, ok := strings.CutPrefix(header, "Bearer ")
	if !ok {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byKey[strings.TrimSpace(key)]
}

// lookup resolves a tenant name (for resumed stored jobs).
func (a *admission) lookup(name string) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byName[name]
}

// takeToken spends one rate-limit token for t, reporting the back-off on
// refusal.
func (a *admission) takeToken(t *tenantState, now time.Time) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return t.bucket.take(now)
}

// acquire claims an execution slot for t. It returns (nil, true) when a
// slot was free, (w, true) when the job was queued — wait for w.ready —
// and (nil, false) when t's queue is full. forced queues past the bound
// (restart recovery must never drop stored work). Every successful acquire
// (immediate or after w.ready closes) must be paired with release.
func (a *admission) acquire(t *tenantState, forced bool) (*waiter, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used < a.slots {
		a.used++
		t.run++
		return nil, true
	}
	if !forced && len(t.queue) >= a.perQueue {
		return nil, false
	}
	w := &waiter{ready: make(chan struct{}), t: t}
	t.queue = append(t.queue, w)
	return w, true
}

// cancelWait withdraws a queued waiter whose submitter gave up. It reports
// false when the waiter was already granted — the caller then owns a slot
// and must release it.
func (a *admission) cancelWait(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range w.t.queue {
		if q == w {
			w.t.queue = append(w.t.queue[:i], w.t.queue[i+1:]...)
			return true
		}
	}
	return false
}

// release returns t's slot. If any tenant has queued work the slot
// transfers to the next one round-robin from the cursor — the fairness
// rule: a tenant with a deep backlog gets one grant per cycle, no more.
func (a *admission) release(t *tenantState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t.run--
	n := len(a.order)
	for i := 1; i <= n; i++ {
		idx := (a.cursor + i) % n
		next := a.order[idx]
		if len(next.queue) > 0 {
			w := next.queue[0]
			next.queue = next.queue[1:]
			next.run++
			a.cursor = idx
			close(w.ready)
			return
		}
	}
	a.used--
}

// queued and running sample one tenant's gauges.
func (a *admission) queued(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.byName[name]; ok {
		return len(t.queue)
	}
	return 0
}

func (a *admission) running(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.byName[name]; ok {
		return t.run
	}
	return 0
}
