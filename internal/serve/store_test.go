package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFileStoreTruncatesTornTrailingLine pins the crash-recovery contract
// of the on-disk journals: a trailing line without its newline (a write
// torn by a machine-level crash) is detected on Load, truncated off the
// file, and later appends continue from the last complete line.
func TestFileStoreTruncatesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := StoredSpec{ID: "j-1", Kind: "sweep", Tenant: "default", Reps: 4,
		Config: json.RawMessage(`{"Seed":1}`)}
	if err := fs.PutSpec(spec); err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{`{"type":"accepted","job":"j-1"}`, `{"type":"progress","rep":0}`} {
		if err := fs.AppendStream("j-1", []byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.AppendOutcomes("j-1", [][]byte{[]byte(`{"Delivered":1}`)}); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Tear both journals: a partial line with no newline at the tail.
	for _, name := range []string{"j-1.stream.ndjson", "j-1.outcomes.ndjson"} {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"torn":tr`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.Spec.ID != "j-1" || j.Spec.Reps != 4 || j.Spec.Tenant != "default" {
		t.Errorf("recovered spec = %+v", j.Spec)
	}
	if len(j.Stream) != 2 || len(j.Outcomes) != 1 {
		t.Fatalf("recovered %d stream / %d outcome lines, want 2 / 1 (torn tails dropped)",
			len(j.Stream), len(j.Outcomes))
	}
	if string(j.Stream[1]) != `{"type":"progress","rep":0}` {
		t.Errorf("last surviving stream line = %s", j.Stream[1])
	}

	// The truncation is physical: a post-recovery append lands on its own
	// line, not glued onto the torn fragment.
	if err := fs2.AppendStream("j-1", []byte(`{"type":"progress","rep":1}`)); err != nil {
		t.Fatal(err)
	}
	fs2.Close()
	fs3, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = fs3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(jobs[0].Stream); n != 3 {
		t.Fatalf("journal has %d lines after post-recovery append, want 3", n)
	}
	if string(jobs[0].Stream[2]) != `{"type":"progress","rep":1}` {
		t.Errorf("appended line corrupted: %s", jobs[0].Stream[2])
	}

	// Remove drops all three artifacts.
	if err := fs3.Remove("j-1"); err != nil {
		t.Fatal(err)
	}
	if jobs, err = fs3.Load(); err != nil || len(jobs) != 0 {
		t.Errorf("after Remove: %d jobs, err %v", len(jobs), err)
	}
}

// tailStream scans one GET /v1/jobs/{id}/stream?offset=N response to its
// end and returns the raw lines.
func tailStream(t *testing.T, base, id string, offset int) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream?offset=" + strconv.Itoa(offset))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestDurableSweepResumesAfterDrainByteIdentical is the in-process half of
// the durability story: a sweep interrupted by Drain leaves a resumable
// journal; a second server on the same directory finishes the job, and the
// complete stream — prefix seen before the interruption plus the
// re-tailed remainder — is byte-identical to what an uninterrupted server
// produces.
func TestDurableSweepResumesAfterDrainByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const reps = 24

	// The uninterrupted reference: a plain in-memory server.
	ref := mustNew(t, Config{})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	_, _, refLines := post(t, refTS, sweepBody(7, reps))
	refPayload := refLines[len(refLines)-1]

	// Server 1: durable, single slot. Submit and cut it off mid-sweep.
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustNew(t, Config{Workers: 1, Store: fs1})
	ts1 := httptest.NewServer(s1.Handler())

	var mu sync.Mutex
	var prefix []string
	jobID := ""
	sawSome := make(chan struct{})
	var once sync.Once
	streamEnded := make(chan struct{})
	go func() {
		defer close(streamEnded)
		resp, err := http.Post(ts1.URL+"/v1/jobs", "application/json",
			strings.NewReader(sweepBody(7, reps)))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for sc.Scan() {
			mu.Lock()
			prefix = append(prefix, sc.Text())
			n := len(prefix)
			if n == 1 {
				var l struct {
					Job string `json:"job"`
				}
				_ = json.Unmarshal(sc.Bytes(), &l)
				jobID = l.Job
			}
			mu.Unlock()
			if n >= 4 {
				once.Do(func() { close(sawSome) })
			}
		}
	}()
	select {
	case <-sawSome:
	case <-time.After(30 * time.Second):
		t.Fatal("no stream progress within 30s")
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if _, err := s1.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	<-streamEnded
	mu.Lock()
	cut := len(prefix)
	id := jobID
	mu.Unlock()
	if id == "" {
		t.Fatal("no job ID before the drain")
	}
	if cut >= reps+3 {
		t.Fatalf("stream completed (%d lines) before the drain — not an interruption", cut)
	}

	// Server 2 on the same store: recovery resumes the sweep.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustNew(t, Config{Workers: 1, Store: fs2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	full := tailStream(t, ts2.URL, id, 0)
	if len(full) != reps+3 {
		t.Fatalf("resumed journal has %d lines, want %d (accepted + reps + result + payload)",
			len(full), reps+3)
	}
	// The interrupted prefix is a byte-exact prefix of the finished journal.
	mu.Lock()
	for i, l := range prefix {
		if full[i] != l {
			t.Fatalf("line %d rewritten across restart:\nbefore: %s\nafter:  %s", i, l, full[i])
		}
	}
	mu.Unlock()
	// And the payload matches the uninterrupted server's bytes.
	if full[len(full)-1] != refPayload {
		t.Errorf("resumed payload differs from the uninterrupted reference\n got: %.120s\nwant: %.120s",
			full[len(full)-1], refPayload)
	}

	// Offset resume: tailing from the cut stitches the remainder exactly.
	rest := tailStream(t, ts2.URL, id, cut)
	if want := len(full) - cut; len(rest) != want {
		t.Fatalf("offset=%d tail returned %d lines, want %d", cut, len(rest), want)
	}
	for i, l := range rest {
		if full[cut+i] != l {
			t.Fatalf("offset tail line %d mismatches the journal", cut+i)
		}
	}

	dctx2, dcancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel2()
	if _, err := s2.Drain(dctx2); err != nil {
		t.Fatal(err)
	}
}

// TestDurableStreamOffsetsStitch completes a durable sweep and re-tails it
// at every offset: each tail must be exactly the journal's suffix, so any
// interrupted consumer can resume wherever it stopped without ever seeing
// a duplicated or altered line.
func TestDurableStreamOffsetsStitch(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Store: fs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const reps = 5
	_, _, lines := post(t, ts, sweepBody(11, reps))
	if len(lines) != reps+3 {
		t.Fatalf("sweep streamed %d lines, want %d", len(lines), reps+3)
	}
	var accepted struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &accepted); err != nil || accepted.Job == "" {
		t.Fatalf("no job in accepted line %q: %v", lines[0], err)
	}

	for offset := 0; offset <= len(lines); offset++ {
		tail := tailStream(t, ts.URL, accepted.Job, offset)
		if len(tail) != len(lines)-offset {
			t.Fatalf("offset %d: %d lines, want %d", offset, len(tail), len(lines)-offset)
		}
		for i, l := range tail {
			if lines[offset+i] != l {
				t.Fatalf("offset %d line %d differs from the live stream:\n got: %s\nwant: %s",
					offset, i, l, lines[offset+i])
			}
		}
	}

	// A non-durable job has no journal to tail: typed 404.
	plain := mustNew(t, Config{})
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()
	_, _, runLines := post(t, plainTS, runBody(1))
	var run struct {
		Job string `json:"job"`
	}
	_ = json.Unmarshal([]byte(runLines[0]), &run)
	resp, err := http.Get(plainTS.URL + "/v1/jobs/" + run.Job + "/stream?offset=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stream of a non-durable job: status %d, want 404", resp.StatusCode)
	}
}
