package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"blackdp/internal/scenario"
	"blackdp/internal/trace"
)

// Request is the POST /jobs payload. Config is layered over DefaultConfig
// exactly like a config file, so a payload only names the fields it changes.
type Request struct {
	// Kind selects the workload: "run" (one simulation) or "sweep" (Reps
	// replications with derived seeds, the Figure 4/5 building block).
	Kind string `json:"kind"`
	// Config is the scenario configuration (scenario.Config JSON).
	Config json.RawMessage `json:"config"`
	// Reps is the replication count for sweeps (ignored for runs).
	Reps int `json:"reps,omitempty"`
	// Workers overrides the per-job sweep pool size (0 = server default).
	Workers int `json:"workers,omitempty"`
	// Trace retains the structured event log for GET /jobs/{id}/trace.
	// Trace jobs always execute — an event log cannot come from the result
	// cache — but still publish their result bytes into it. Runs only.
	Trace bool `json:"trace,omitempty"`
}

// jobSpec is a validated, admission-ready request.
type jobSpec struct {
	kind   string
	cfg    scenario.Config
	reps   int
	pool   int
	trace  bool
	key    string // canonical cache key
	rawCfg []byte // the request's config JSON, persisted for durable jobs
}

// parseRequest validates a request body against the server limits.
func parseRequest(body []byte, maxReps int) (jobSpec, error) {
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return jobSpec{}, fmt.Errorf("parsing request: %w", err)
	}
	spec := jobSpec{kind: req.Kind, reps: req.Reps, pool: req.Workers, trace: req.Trace}
	switch req.Kind {
	case "run":
		spec.reps = 1
	case "sweep":
		if req.Reps < 1 {
			return jobSpec{}, fmt.Errorf("sweep needs reps >= 1, got %d", req.Reps)
		}
		if req.Reps > maxReps {
			return jobSpec{}, fmt.Errorf("sweep of %d reps exceeds the server limit of %d", req.Reps, maxReps)
		}
		if req.Trace {
			return jobSpec{}, fmt.Errorf("trace retention is only available for kind \"run\"")
		}
	default:
		return jobSpec{}, fmt.Errorf("unknown kind %q (want \"run\" or \"sweep\")", req.Kind)
	}
	raw := req.Config
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	cfg, err := scenario.DecodeConfig(raw)
	if err != nil {
		return jobSpec{}, err
	}
	spec.cfg = cfg
	spec.rawCfg = raw
	fp, err := scenario.Fingerprint(cfg)
	if err != nil {
		return jobSpec{}, err
	}
	// The canonical config hash keys the cache together with the workload
	// shape. The per-job pool size is deliberately excluded: by the
	// replay-determinism guarantee it cannot change the bytes.
	spec.key = fmt.Sprintf("%s/%d/%s", spec.kind, spec.reps, fp)
	return spec, nil
}

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Job is the retained record of one accepted request.
type Job struct {
	ID     string `json:"job"`
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	Reps   int    `json:"reps"`
	Tenant string `json:"tenant"`

	mu       sync.Mutex
	status   string
	cache    string // "hit", "miss" or "" while queued
	errMsg   string
	result   []byte // the cached/streamed payload line
	traceLog *trace.Log
	created  time.Time
	finished time.Time
	cancel   context.CancelFunc // cancels the submit handler's job context
}

// view is the GET /jobs/{id} projection.
type jobView struct {
	ID        string          `json:"job"`
	Kind      string          `json:"kind"`
	Key       string          `json:"key"`
	Reps      int             `json:"reps"`
	Tenant    string          `json:"tenant,omitempty"`
	Status    string          `json:"status"`
	Cache     string          `json:"cache,omitempty"`
	Error     string          `json:"error,omitempty"`
	ElapsedMS int64           `json:"elapsed_ms"`
	HasTrace  bool            `json:"has_trace"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func (j *Job) view(withResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.ID, Kind: j.Kind, Key: j.Key, Reps: j.Reps, Tenant: j.Tenant,
		Status: j.status, Cache: j.cache, Error: j.errMsg, HasTrace: j.traceLog != nil}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	v.ElapsedMS = end.Sub(j.created).Milliseconds()
	if withResult && j.result != nil {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

func (j *Job) setStatus(status string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = status
}

func (j *Job) setCache(marker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cache = marker
}

func (j *Job) finish(status, errMsg string, result []byte, log *trace.Log) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = status
	j.errMsg = errMsg
	j.result = result
	j.traceLog = log
	j.finished = time.Now()
}

// bindCancel attaches the submit handler's cancel func so
// DELETE /v1/jobs/{id} can abort the job from another connection.
func (j *Job) bindCancel(fn context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = fn
}

// Cancel aborts a queued or running job and reports whether there was
// anything left to cancel. The job reaches StatusCanceled through the
// submit handler observing its context, not here — Cancel only pulls the
// trigger, so a cancelled job's stream still terminates with its error
// line and the worker fan-out (if any) unwinds through the context chain.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancel == nil || j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return false
	}
	j.cancel()
	return true
}

func (j *Job) traceSnapshot() *trace.Log {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceLog
}

func (j *Job) done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
}
