package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// tinyWorld is the test workload: the differential suite's small-but-real
// world (4 clusters, 30 vehicles, full detection pipeline) with free
// signatures so a run costs milliseconds.
func tinyWorld(seed int64) string {
	return fmt.Sprintf(`{"Seed":%d,"HighwayLengthM":4000,"Vehicles":30,"AttackerCluster":2,"DataPackets":5,"MaxSimTime":45000000000,"RealCrypto":false}`, seed)
}

func runBody(seed int64) string {
	return fmt.Sprintf(`{"kind":"run","config":%s}`, tinyWorld(seed))
}

func sweepBody(seed int64, reps int) string {
	return fmt.Sprintf(`{"kind":"sweep","reps":%d,"config":%s}`, reps, tinyWorld(seed))
}

// mustNew builds a server, failing the test on a config error.
func mustNew(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// post submits a job and returns the status, the cache header and the
// response body split into NDJSON lines.
func post(t *testing.T, ts *httptest.Server, body string) (int, string, []string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	return resp.StatusCode, resp.Header.Get("X-Blackdp-Cache"), lines
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestSubmitRunSecondPostIsByteIdenticalCacheHit(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code1, cache1, lines1 := post(t, ts, runBody(7))
	code2, cache2, lines2 := post(t, ts, runBody(7))
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status %d, %d", code1, code2)
	}
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("cache headers %q, %q; want miss, hit", cache1, cache2)
	}
	// The final line is the result payload; it must be byte-identical.
	p1, p2 := lines1[len(lines1)-1], lines2[len(lines2)-1]
	if p1 != p2 {
		t.Fatalf("payloads differ:\n%s\n%s", p1, p2)
	}
	var payload struct {
		Outcomes []struct {
			Seed     int64
			Detected bool
		} `json:"outcomes"`
		Summary struct {
			Runs int `json:"runs"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(p1), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Outcomes) != 1 || payload.Outcomes[0].Seed != 7 || payload.Summary.Runs != 1 {
		t.Fatalf("payload = %+v", payload)
	}
	// The hit is marked in the stream too.
	if !strings.Contains(lines2[0], `"cache":"hit"`) {
		t.Fatalf("second accepted line not marked as hit: %s", lines2[0])
	}

	// /metrics reflects exactly one miss and one hit.
	_, metricsOut := get(t, ts.URL+"/v1/metrics")
	for _, want := range []string{
		"blackdp_serve_cache_misses_total 1",
		"blackdp_serve_cache_hits_total 1",
		`blackdp_serve_jobs_total{status="done"} 2`,
	} {
		if !strings.Contains(metricsOut, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsOut)
		}
	}
}

func TestSweepStreamsProgressAndAggregates(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, cache, lines := post(t, ts, sweepBody(3, 4))
	if code != 200 || cache != "miss" {
		t.Fatalf("status %d cache %q", code, cache)
	}
	progress := 0
	for _, l := range lines {
		if strings.Contains(l, `"type":"progress"`) {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no progress lines streamed")
	}
	var payload struct {
		Outcomes []json.RawMessage `json:"outcomes"`
		Summary  struct {
			Runs int `json:"runs"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Outcomes) != 4 || payload.Summary.Runs != 4 {
		t.Fatalf("sweep payload: %d outcomes, %d runs", len(payload.Outcomes), payload.Summary.Runs)
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := mustNew(t, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	payloads := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(runBody(11)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
			payloads[i] = lines[len(lines)-1]
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if payloads[i] != payloads[0] {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single flight)", st.Misses)
	}
}

func TestAdmissionControlRejectsWith429(t *testing.T) {
	// One worker, no queue: while a long sweep holds the worker, any new
	// job must bounce with 429 and a Retry-After hint.
	s := mustNew(t, Config{Workers: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody(5, 64)))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 1)
		_, _ = resp.Body.Read(buf) // first byte of the accepted line: admitted
		close(started)
		_, _ = io.Copy(io.Discard, resp.Body)
	}()
	<-started

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(runBody(99)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-finished

	_, metricsOut := get(t, ts.URL+"/v1/metrics")
	if !strings.Contains(metricsOut, "blackdp_serve_jobs_rejected_total 1") {
		t.Errorf("rejection not counted:\n%s", metricsOut)
	}

	// The worker is free again: the rejected job must now be admitted.
	code, _, _ := post(t, ts, runBody(99))
	if code != 200 {
		t.Fatalf("post-drain resubmit status %d", code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"kind":"run","trace":true,"config":%s}`, tinyWorld(7))
	code, cache, lines := post(t, ts, body)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if cache != "miss" {
		t.Fatalf("trace jobs must execute, got cache %q", cache)
	}
	var accepted struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &accepted); err != nil {
		t.Fatal(err)
	}
	code, traceOut := get(t, ts.URL+"/v1/jobs/"+accepted.Job+"/trace")
	if code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if !strings.Contains(traceOut, "detect") {
		t.Errorf("trace has no detection events:\n%.500s", traceOut)
	}

	// A traced run still publishes its bytes: an identical untraced
	// request is a cache hit with the same payload.
	code2, cache2, lines2 := post(t, ts, runBody(7))
	if code2 != 200 || cache2 != "hit" {
		t.Fatalf("untraced follow-up: status %d cache %q", code2, cache2)
	}
	if lines2[len(lines2)-1] != lines[len(lines)-1] {
		t.Error("traced and untraced payloads differ")
	}

	// Untraced jobs have no trace to serve.
	var accepted2 struct {
		Job string `json:"job"`
	}
	_ = json.Unmarshal([]byte(lines2[0]), &accepted2)
	if code, _ := get(t, ts.URL+"/v1/jobs/"+accepted2.Job+"/trace"); code != 404 {
		t.Errorf("trace of untraced job: status %d, want 404", code)
	}
}

func TestJobEndpoints(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, lines := post(t, ts, runBody(21))
	var accepted struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &accepted); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/v1/jobs/"+accepted.Job)
	if code != 200 {
		t.Fatalf("job status %d", code)
	}
	var view struct {
		Status string          `json:"status"`
		Cache  string          `json:"cache"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || view.Cache != "miss" || len(view.Result) == 0 {
		t.Fatalf("job view = %s", body)
	}

	code, body = get(t, ts.URL+"/v1/jobs")
	if code != 200 || !strings.Contains(body, accepted.Job) {
		t.Fatalf("list missing job: %s", body)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/j-999"); code != 404 {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

func TestBadRequests(t *testing.T) {
	s := mustNew(t, Config{MaxReps: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"unknown kind":   `{"kind":"explode"}`,
		"no reps":        `{"kind":"sweep"}`,
		"too many reps":  `{"kind":"sweep","reps":11}`,
		"sweep trace":    `{"kind":"sweep","reps":2,"trace":true}`,
		"invalid config": `{"kind":"run","config":{"LossRate":2}}`,
		"not json":       `{{{`,
	} {
		code, _, _ := post(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, _, lines := post(t, ts, runBody(31)); len(lines) < 2 {
		t.Fatal("warm-up job failed")
	}
	stats, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 1 {
		t.Fatalf("drain stats = %+v", stats)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(runBody(32)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", resp.StatusCode)
	}
	if code, body := get(t, ts.URL+"/v1/healthz"); code != 200 || !strings.Contains(body, "draining") {
		t.Errorf("healthz after drain: %d %s", code, body)
	}
}

// TestLegacyRoutesAreGone checks the retirement of the unversioned routes:
// every pre-/v1 path answers 410 with the typed "gone" envelope pointing at
// its /v1 replacement, while the /v1 surface itself serves normally.
func TestLegacyRoutesAreGone(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(runBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, b)
	}
	var accepted streamLine
	if err := json.Unmarshal([]byte(strings.SplitN(string(b), "\n", 2)[0]), &accepted); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/jobs", "/jobs/" + accepted.Job, "/metrics", "/healthz"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusGone {
			t.Errorf("GET %s = %d, want 410: %s", path, code, body)
			continue
		}
		var e APIError
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Code != "gone" || !strings.Contains(e.Message, "/v1") {
			t.Errorf("GET %s envelope = %s (err %v)", path, body, err)
		}
	}
	if resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(runBody(3))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Errorf("POST /jobs = %d, want 410", resp.StatusCode)
		}
	}
	for _, path := range []string{"/v1/jobs", "/v1/jobs/" + accepted.Job, "/v1/metrics", "/v1/healthz"} {
		if code, body := get(t, ts.URL+path); code != 200 {
			t.Errorf("GET %s = %d: %s", path, code, body)
		}
	}
}

// TestErrorEnvelope pins the typed JSON error contract, table-driven over
// every status the API speaks: 400, 401, 404, 409, 410, 429 and 503 all
// answer with {"code","message","retry_after_seconds"}, the retry hint
// appearing exactly when the Retry-After header does.
func TestErrorEnvelope(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A second, tenant-gated server for the 401 case.
	auth := mustNew(t, Config{Tenants: []Tenant{{Name: "a", Key: "secret"}}})
	authTS := httptest.NewServer(auth.Handler())
	defer authTS.Close()

	// A finished job for the 409 case.
	_, _, lines := post(t, ts, runBody(900))
	var doneJob streamLine
	if err := json.Unmarshal([]byte(lines[0]), &doneJob); err != nil {
		t.Fatal(err)
	}

	// The 429 case: a long sweep holds the single worker while the probe
	// POST bounces.
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody(901, 64)))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 1)
		_, _ = resp.Body.Read(buf) // first byte of the accepted line: admitted
		close(started)
		_, _ = io.Copy(io.Discard, resp.Body)
	}()
	<-started

	do := func(t *testing.T, method, url, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		wantStatus int
		wantCode   string
		wantRetry  bool // retry_after_seconds >= 1 and Retry-After header set
	}{
		{"400 bad request", "POST", ts.URL + "/v1/jobs", "{", http.StatusBadRequest, "bad_request", false},
		{"401 unauthorized", "POST", authTS.URL + "/v1/jobs", runBody(1), http.StatusUnauthorized, "unauthorized", false},
		{"404 not found", "GET", ts.URL + "/v1/jobs/j-missing", "", http.StatusNotFound, "not_found", false},
		{"409 already finished", "DELETE", ts.URL + "/v1/jobs/" + doneJob.Job, "", http.StatusConflict, "already_finished", false},
		{"410 gone", "GET", ts.URL + "/metrics", "", http.StatusGone, "gone", false},
		{"429 queue full", "POST", ts.URL + "/v1/jobs", runBody(902), http.StatusTooManyRequests, "queue_full", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := do(t, tc.method, tc.url, tc.body)
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			var e APIError
			if err := json.Unmarshal(b, &e); err != nil {
				t.Fatalf("error body is not the JSON envelope: %q (%v)", b, err)
			}
			if resp.StatusCode != tc.wantStatus || e.Code != tc.wantCode || e.Message == "" {
				t.Errorf("status %d envelope %+v; want %d %q", resp.StatusCode, e, tc.wantStatus, tc.wantCode)
			}
			hasHeader := resp.Header.Get("Retry-After") != ""
			if tc.wantRetry && (e.RetryAfterSeconds < 1 || !hasHeader) {
				t.Errorf("envelope %+v header %q: retry hint missing", e, resp.Header.Get("Retry-After"))
			}
			if !tc.wantRetry && (e.RetryAfterSeconds != 0 || hasHeader) {
				t.Errorf("envelope %+v carried an unexpected retry hint", e)
			}
		})
	}

	// 503 last: draining is terminal for this server.
	t.Run("503 draining", func(t *testing.T) {
		<-finished
		if _, err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		resp := do(t, "POST", ts.URL+"/v1/jobs", runBody(903))
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		var e APIError
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("error body is not the JSON envelope: %q (%v)", b, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || e.Code != "draining" || e.RetryAfterSeconds < 1 {
			t.Errorf("draining: status %d envelope %+v", resp.StatusCode, e)
		}
	})
}

// TestCryptoSchemeSeparatesCacheEntries pins the fingerprint semantics of
// the crypto knobs at the HTTP layer: scheme classes never share a cache
// entry, the legacy RealCrypto boolean collapses onto its scheme name, and
// the byte-invisible verification-cache toggle never splits one.
func TestCryptoSchemeSeparatesCacheEntries(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := func(extra string) string {
		return fmt.Sprintf(`{"kind":"run","config":{"Seed":5,"HighwayLengthM":4000,"Vehicles":30,"AttackerCluster":2,"DataPackets":5,"MaxSimTime":45000000000,%s}}`, extra)
	}

	if _, cache, _ := post(t, ts, body(`"CryptoScheme":"ecdsa"`)); cache != "miss" {
		t.Fatalf("ecdsa first post: cache %q, want miss", cache)
	}
	if _, cache, _ := post(t, ts, body(`"CryptoScheme":"session"`)); cache != "miss" {
		t.Fatalf("session must not share the ecdsa entry: cache %q", cache)
	}
	if _, cache, _ := post(t, ts, body(`"RealCrypto":true`)); cache != "hit" {
		t.Fatalf("RealCrypto:true should hit the ecdsa entry: cache %q", cache)
	}
	if _, cache, _ := post(t, ts, body(`"CryptoScheme":"ecdsa","NoVerifyCache":true`)); cache != "hit" {
		t.Fatalf("NoVerifyCache is byte-invisible and should hit: cache %q", cache)
	}
}
