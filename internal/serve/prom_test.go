package serve

import (
	"strings"
	"testing"
)

func TestRegistryRendersInRegistrationOrder(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("test_a_total", "first")
	reg.GaugeFunc("test_b", "second", func() float64 { return 2.5 })
	c.Add(3)

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "# HELP test_a_total first\n# TYPE test_a_total counter\ntest_a_total 3\n" +
		"# HELP test_b second\n# TYPE test_b gauge\ntest_b 2.5\n"
	if out != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", out, want)
	}
}

func TestCounterVec(t *testing.T) {
	reg := &Registry{}
	v := reg.CounterVec("jobs_total", "jobs", "status", "done", "failed")
	v.Inc("done")
	v.Inc("done")
	v.Inc("failed")
	if v.Value("done") != 2 || v.Value("failed") != 1 {
		t.Fatalf("values = %d, %d", v.Value("done"), v.Value("failed"))
	}
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{`jobs_total{status="done"} 2`, `jobs_total{status="failed"} 1`} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("incrementing an undeclared label value should panic")
		}
	}()
	v.Inc("unknown")
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	reg := &Registry{}
	h := reg.Histogram("job_seconds", "wall time", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d", h.Count())
	}
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`job_seconds_bucket{le="0.1"} 1`,
		`job_seconds_bucket{le="1"} 3`,
		`job_seconds_bucket{le="10"} 4`,
		`job_seconds_bucket{le="+Inf"} 5`,
		`job_seconds_sum 56.05`,
		`job_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-ascending bounds")
		}
	}()
	(&Registry{}).Histogram("bad", "x", 1, 1)
}
