package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"blackdp/internal/scenario"
)

// BenchmarkFingerprint measures the canonical-serialization hash that keys
// the result cache — it runs once per request, on the admission path.
func BenchmarkFingerprint(b *testing.B) {
	cfg := scenario.DefaultConfig()
	cfg.AttackerCluster = 4
	cfg.EvasiveClusters = []int{10, 8, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Fingerprint(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheHit measures a full HTTP round-trip answered from the
// result cache: parse, fingerprint, single-flight lookup, stream replay.
func BenchmarkServeCacheHit(b *testing.B) {
	s := mustNew(b, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"kind":"run","config":{"Seed":7,"HighwayLengthM":4000,"Vehicles":30,"AttackerCluster":2,"DataPackets":5,"MaxSimTime":45000000000,"RealCrypto":false}}`
	warm, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Blackdp-Cache") != "hit" {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServeSweep measures an uncached 8-replication sweep job through
// the whole service stack, progress streaming included.
func BenchmarkServeSweep(b *testing.B) {
	s := mustNew(b, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh seed each iteration defeats the cache on purpose.
		body := fmt.Sprintf(`{"kind":"sweep","reps":8,"config":{"Seed":%d,"HighwayLengthM":4000,"Vehicles":30,"AttackerCluster":2,"DataPackets":5,"MaxSimTime":45000000000,"RealCrypto":false}}`, i+1)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
