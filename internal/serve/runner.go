package serve

// The durable-job runner. Stored sweeps execute in background goroutines
// under the server's base context — not the submitting request's — so a
// disconnected client leaves the job running and every response (the POST
// stream and GET /v1/jobs/{id}/stream?offset=N alike) is just a tail of
// the job's journal. The journal is deterministic: line 0 is the accepted
// line, lines 1..reps are progress lines in strict replication order,
// then the result line and the result payload. A resumed stream stitched
// at any offset is therefore byte-identical to an uninterrupted one.
//
// Execution is segmented: each storedSegmentReps-replication slice runs
// through scenario.RunSweepRange (or the fleet's SweepRange), its outcomes
// are journaled, and only then do its progress lines enter the stream
// journal. The outcomes journal is always at or ahead of the progress
// lines, so recovery re-executes at most one segment and reconciles the
// stream journal to the frontier before continuing.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
)

// Cancellation causes distinguish a DELETE (terminal: the journal gets an
// error line) from a drain (resumable: the journal is left untouched for
// the next process).
var (
	errCanceledByClient = errors.New("serve: canceled by client")
	errShutdown         = errors.New("serve: server shutting down")
)

// storedSegmentReps is the durability granularity: how many replications
// run between journal appends. Small enough that a crash loses little,
// large enough that journaling stays off the hot path.
const storedSegmentReps = 8

// tenantCtxKey carries the submitting tenant's name through execution so
// the distributor can stamp it onto worker chunk requests.
type tenantCtxKey struct{}

// WithTenant returns ctx carrying the tenant name.
func WithTenant(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, name)
}

// TenantName reports the tenant name carried by ctx ("" if none).
func TenantName(ctx context.Context) string {
	name, _ := ctx.Value(tenantCtxKey{}).(string)
	return name
}

// liveStream is the in-memory mirror of one job's stream journal: the
// replay source for every tail, with a broadcast channel so tails block
// without polling.
type liveStream struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{}
}

func newLiveStream(lines [][]byte) *liveStream {
	return &liveStream{lines: lines, wake: make(chan struct{})}
}

func (st *liveStream) append(line []byte) {
	st.mu.Lock()
	st.lines = append(st.lines, line)
	close(st.wake)
	st.wake = make(chan struct{})
	st.mu.Unlock()
}

func (st *liveStream) close() {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.wake)
		st.wake = make(chan struct{})
	}
	st.mu.Unlock()
}

func (st *liveStream) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.lines)
}

// tail writes journal lines from offset onward, blocking for new lines
// until the stream closes or the client goes away. Lines are written
// byte-exact with a trailing newline and flushed individually, so a
// client stitching tails at any offsets reconstructs the journal exactly.
func (st *liveStream) tail(ctx context.Context, w http.ResponseWriter, offset int) {
	i := offset
	for {
		st.mu.Lock()
		var batch [][]byte
		if i < len(st.lines) {
			batch = st.lines[i:len(st.lines):len(st.lines)]
		}
		closed := st.closed
		wake := st.wake
		st.mu.Unlock()
		for _, line := range batch {
			if _, err := w.Write(append(append(make([]byte, 0, len(line)+1), line...), '\n')); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			i += len(batch)
			continue
		}
		if closed {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		}
	}
}

// storedRun is one durable job's execution state.
type storedRun struct {
	job      *Job
	spec     jobSpec
	tenant   *tenantState
	stream   *liveStream
	ctx      context.Context
	cancel   context.CancelCauseFunc
	frontier int      // replications with journaled outcomes
	outcomes [][]byte // their outcome lines, in replication order
}

// newStoredRun wires a run's context under the server base context and
// registers its stream for tailing.
func (s *Server) newStoredRun(job *Job, spec jobSpec, t *tenantState, stream *liveStream, outcomes [][]byte) *storedRun {
	run := &storedRun{job: job, spec: spec, tenant: t, stream: stream,
		frontier: len(outcomes), outcomes: outcomes}
	run.ctx, run.cancel = context.WithCancelCause(s.baseCtx)
	job.bindCancel(func() { run.cancel(errCanceledByClient) })
	s.jobsMu.Lock()
	s.streams[job.ID] = stream
	s.jobsMu.Unlock()
	return run
}

func (run *storedRun) journalRaw(s *Server, line []byte) error {
	if err := s.store.AppendStream(run.job.ID, line); err != nil {
		return err
	}
	run.stream.append(line)
	return nil
}

func (run *storedRun) journal(s *Server, l streamLine) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return run.journalRaw(s, b)
}

// reconcile brings the stream journal up to the outcome frontier: the
// accepted line if the journal is empty, then any progress lines whose
// outcomes the previous process journaled but whose stream lines it did
// not reach before dying.
func (run *storedRun) reconcile(s *Server) error {
	if run.stream.count() == 0 {
		if err := run.journal(s, streamLine{Type: "accepted", Job: run.job.ID,
			Key: run.spec.key, Cache: "miss", Total: run.spec.reps}); err != nil {
			return err
		}
	}
	for rep := run.stream.count() - 1; rep < run.frontier; rep++ {
		if err := run.journal(s, streamLine{Type: "progress", Job: run.job.ID,
			Rep: rep, Done: rep + 1, Total: run.spec.reps}); err != nil {
			return err
		}
	}
	return nil
}

// runStored is the background goroutine of one durable job: journal
// reconciliation, fair-share admission, segmented execution, terminal
// journaling.
func (s *Server) runStored(run *storedRun, wtr *waiter) {
	defer s.runnersWG.Done()
	if err := run.reconcile(s); err != nil {
		if wtr == nil || !s.adm.cancelWait(wtr) {
			s.adm.release(run.tenant)
		}
		s.finishStoredErr(run, err)
		return
	}
	if wtr != nil {
		s.queued.Add(1)
		select {
		case <-wtr.ready:
			s.queued.Add(-1)
		case <-run.ctx.Done():
			s.queued.Add(-1)
			if !s.adm.cancelWait(wtr) {
				s.adm.release(run.tenant)
			}
			s.finishStoredErr(run, context.Cause(run.ctx))
			return
		}
	}
	run.job.setStatus(StatusRunning)
	s.running.Add(1)
	start := time.Now()
	err := s.executeStored(run)
	s.running.Add(-1)
	s.adm.release(run.tenant)
	if err != nil {
		s.finishStoredErr(run, err)
		return
	}
	s.finishStoredDone(run, time.Since(start))
}

// executeStored runs the remaining replications in journaled segments.
func (s *Server) executeStored(run *storedRun) error {
	ctx := WithTenant(run.ctx, run.tenant.cfg.Name)
	onRep := func(int, error) { s.mReps.Inc() }
	for run.frontier < run.spec.reps {
		count := min(storedSegmentReps, run.spec.reps-run.frontier)
		outcomes, err := s.sweepRange(ctx, run.spec, run.frontier, count, onRep)
		if err != nil {
			return err
		}
		lines := make([][]byte, len(outcomes))
		for i, o := range outcomes {
			if lines[i], err = json.Marshal(o); err != nil {
				return err
			}
		}
		if err := s.store.AppendOutcomes(run.job.ID, lines); err != nil {
			return err
		}
		run.outcomes = append(run.outcomes, lines...)
		for i := 0; i < count; i++ {
			rep := run.frontier + i
			if err := run.journal(s, streamLine{Type: "progress", Job: run.job.ID,
				Rep: rep, Done: rep + 1, Total: run.spec.reps}); err != nil {
				return err
			}
		}
		run.frontier += count
	}
	return nil
}

// finishStoredDone rebuilds the result payload from the journaled outcomes
// (outcome JSON round-trips exactly — the struct holds no floats), caches
// it, and journals the terminal lines. The count checks make completion
// idempotent across restarts: a process killed between the result line and
// the payload line leaves a journal the next process finishes without
// duplicating either.
func (s *Server) finishStoredDone(run *storedRun, elapsed time.Duration) {
	outs := make([]metrics.Outcome, len(run.outcomes))
	for i, b := range run.outcomes {
		if err := json.Unmarshal(b, &outs[i]); err != nil {
			s.finishStoredErr(run, fmt.Errorf("serve: corrupt stored outcome: %w", err))
			return
		}
	}
	payload, err := json.Marshal(resultPayload{Outcomes: outs, Summary: metrics.Aggregate(outs).Report()})
	if err != nil {
		s.finishStoredErr(run, err)
		return
	}
	s.cache.Put(run.spec.key, payload)
	if run.stream.count() == run.spec.reps+1 {
		if err := run.journal(s, streamLine{Type: "result", Job: run.job.ID,
			Cache: "miss", Total: run.spec.reps}); err != nil {
			s.finishStoredErr(run, err)
			return
		}
	}
	if run.stream.count() == run.spec.reps+2 {
		if err := run.journalRaw(s, payload); err != nil {
			s.finishStoredErr(run, err)
			return
		}
	}
	run.job.finish(StatusDone, "", payload, nil)
	s.mJobs.Inc(StatusDone)
	s.mSeconds.Observe(elapsed.Seconds())
	run.stream.close()
}

// finishStoredErr ends a run that did not complete. A drain leaves the
// journal untouched — the job resumes on restart; anything else (DELETE,
// an execution error, a store write failure) is terminal and journals an
// error line.
func (s *Server) finishStoredErr(run *storedRun, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if c := context.Cause(run.ctx); c != nil {
			err = c
		}
	}
	if errors.Is(err, errShutdown) {
		run.stream.close()
		return
	}
	status := StatusFailed
	if errors.Is(err, errCanceledByClient) {
		status = StatusCanceled
	}
	msg := err.Error()
	_ = run.journal(s, streamLine{Type: "error", Job: run.job.ID, Error: msg})
	run.job.finish(status, msg, nil, nil)
	s.mJobs.Inc(status)
	run.stream.close()
}

// sweepRange executes [start, start+count) of a sweep: through the fleet
// when one is configured and alive, locally otherwise. Outcomes come back
// in replication order either way.
func (s *Server) sweepRange(ctx context.Context, spec jobSpec, start, count int, onRep func(int, error)) ([]metrics.Outcome, error) {
	if d := s.cfg.Distributor; d != nil {
		outcomes, err := d.SweepRange(ctx, spec.cfg, start, count, onRep)
		if err == nil || !errors.Is(err, ErrNoWorkers) {
			return outcomes, err
		}
	}
	pool := spec.pool
	if pool <= 0 {
		pool = s.cfg.SweepWorkers
	}
	return scenario.RunSweepRange(ctx, spec.cfg, start, count,
		scenario.SweepOptions{Workers: pool, OnRep: onRep}, nil)
}

// specFromStored rebuilds the validated jobSpec of a recovered job.
func specFromStored(sp StoredSpec) (jobSpec, error) {
	cfg, err := scenario.DecodeConfig(sp.Config)
	if err != nil {
		return jobSpec{}, err
	}
	fp, err := scenario.Fingerprint(cfg)
	if err != nil {
		return jobSpec{}, err
	}
	return jobSpec{kind: sp.Kind, cfg: cfg, reps: sp.Reps, pool: sp.Pool,
		key: fmt.Sprintf("%s/%d/%s", sp.Kind, sp.Reps, fp), rawCfg: sp.Config}, nil
}

// journalState classifies a recovered stream journal: terminal if it holds
// an error line, or a result line followed by its payload line.
func journalState(lines [][]byte) (terminal bool, status, errMsg string, payload []byte) {
	for i, b := range lines {
		var l streamLine
		if json.Unmarshal(b, &l) != nil {
			continue
		}
		switch l.Type {
		case "error":
			status = StatusFailed
			if l.Error == errCanceledByClient.Error() {
				status = StatusCanceled
			}
			return true, status, l.Error, nil
		case "result":
			if i+1 < len(lines) {
				return true, StatusDone, "", lines[i+1]
			}
			// Result line without its payload: the previous process died
			// between the two appends; completion is idempotent, resume.
			return false, "", "", nil
		}
	}
	return false, "", "", nil
}

// recoverStored reloads every stored job at startup: terminal jobs
// reappear in the registry (done results re-enter the cache), unfinished
// jobs re-enter admission — forced past the queue bound, restarts must
// never drop work — and resume at their outcome frontier.
func (s *Server) recoverStored() error {
	stored, err := s.store.Load()
	if err != nil {
		return err
	}
	var maxSeq uint64
	for _, sj := range stored {
		if n := jobSeq(sj.Spec.ID); n > maxSeq {
			maxSeq = n
		}
		spec, err := specFromStored(sj.Spec)
		if err != nil {
			return fmt.Errorf("serve: recovering %s: %w", sj.Spec.ID, err)
		}
		job := &Job{ID: sj.Spec.ID, Kind: spec.kind, Key: spec.key, Reps: spec.reps,
			Tenant: sj.Spec.Tenant, status: StatusQueued, created: time.Now()}
		job.setCache("miss")
		s.jobsMu.Lock()
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.jobsMu.Unlock()
		stream := newLiveStream(sj.Stream)
		if terminal, status, errMsg, payload := journalState(sj.Stream); terminal {
			s.jobsMu.Lock()
			s.streams[job.ID] = stream
			s.jobsMu.Unlock()
			stream.close()
			job.finish(status, errMsg, payload, nil)
			if status == StatusDone && payload != nil {
				s.cache.Put(spec.key, payload)
			}
			continue
		}
		t := s.adm.lookup(sj.Spec.Tenant)
		if t == nil {
			// The keyfile changed across the restart and this job's tenant
			// is gone; it cannot be re-admitted fairly, so it fails loudly
			// rather than running outside every quota.
			s.jobsMu.Lock()
			s.streams[job.ID] = stream
			s.jobsMu.Unlock()
			run := &storedRun{job: job, spec: spec, tenant: nil, stream: stream,
				frontier: len(sj.Outcomes), outcomes: sj.Outcomes}
			run.ctx, run.cancel = context.WithCancelCause(s.baseCtx)
			_ = run.journal(s, streamLine{Type: "error", Job: job.ID,
				Error: "tenant " + sj.Spec.Tenant + " is no longer configured"})
			job.finish(StatusFailed, "tenant "+sj.Spec.Tenant+" is no longer configured", nil, nil)
			s.mJobs.Inc(StatusFailed)
			stream.close()
			continue
		}
		run := s.newStoredRun(job, spec, t, stream, sj.Outcomes)
		wtr, _ := s.adm.acquire(t, true)
		s.runnersWG.Add(1)
		go s.runStored(run, wtr)
	}
	for {
		cur := s.seq.Load()
		if cur >= maxSeq || s.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	return nil
}

// submitStored admits a durable sweep: spec persisted, runner started in
// the background, and the response is a tail of the journal from offset 0.
// A disconnecting client stops only its tail — the job keeps running.
func (s *Server) submitStored(w http.ResponseWriter, r *http.Request, t *tenantState, spec jobSpec) {
	wtr, ok := s.adm.acquire(t, false)
	if !ok {
		s.mRejected.Inc()
		s.mTenantRejected.Inc(t.cfg.Name)
		WriteError(w, http.StatusTooManyRequests, "queue_full",
			"tenant "+t.cfg.Name+" job queue is full", s.retryAfterSeconds())
		return
	}
	s.mAccepted.Inc()
	s.mTenantAccepted.Inc(t.cfg.Name)
	job := s.newJob(spec, t.cfg.Name)
	if err := s.store.PutSpec(StoredSpec{ID: job.ID, Kind: spec.kind, Tenant: t.cfg.Name,
		Reps: spec.reps, Pool: spec.pool, Config: spec.rawCfg}); err != nil {
		if wtr == nil || !s.adm.cancelWait(wtr) {
			s.adm.release(t)
		}
		job.finish(StatusFailed, err.Error(), nil, nil)
		s.mJobs.Inc(StatusFailed)
		WriteError(w, http.StatusInternalServerError, "store_error",
			"persisting job spec: "+err.Error(), 0)
		return
	}
	job.setCache("miss")
	run := s.newStoredRun(job, spec, t, newLiveStream(nil), nil)
	s.runnersWG.Add(1)
	go s.runStored(run, wtr)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Blackdp-Cache", "miss")
	run.stream.tail(r.Context(), w, 0)
}

// handleStream is GET /v1/jobs/{id}/stream?offset=N: a byte-exact replay
// of the job's journal from line offset N, tailing live lines until the
// job finishes. Only durable jobs (server started with a store) have one.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	job := s.lookup(id)
	if job == nil || !s.visible(job, t) {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+id, 0)
		return
	}
	s.jobsMu.Lock()
	stream := s.streams[id]
	s.jobsMu.Unlock()
	if stream == nil {
		WriteError(w, http.StatusNotFound, "no_stream",
			"job "+id+" has no durable stream (server running without a store, or kind \"run\")", 0)
		return
	}
	offset := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			WriteError(w, http.StatusBadRequest, "bad_request",
				"offset must be a non-negative integer", 0)
			return
		}
		offset = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	stream.tail(r.Context(), w, offset)
}
