package serve

import (
	"container/list"
	"context"
	"sync"
)

// Cache is the deterministic result cache: an LRU over canonical job keys
// with single-flight coalescing. The replay-determinism guarantee (equal
// canonical configs produce byte-identical outcomes, any worker count) is
// what makes caching sound — a hit returns exactly the bytes a fresh run
// would have produced.
//
// Entries are inserted in-flight by the first requester (the leader);
// concurrent requests for the same key join the entry and wait for the
// leader's result instead of running the simulation again. In-flight
// entries are pinned: eviction only ever removes completed entries, so a
// burst of distinct requests cannot evict work that is still being paid
// for.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	idx map[string]*list.Element // key -> element whose Value is *Entry

	hits, misses, joins uint64
}

// Entry is one cache slot. Result and Err are valid only after Done closes.
type Entry struct {
	Key    string
	Done   chan struct{}
	Result []byte
	Err    error
}

// NewCache creates a cache bounded to capacity completed entries (<=0 means
// a small default).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 128
	}
	return &Cache{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

func (e *Entry) completed() bool {
	select {
	case <-e.Done:
		return true
	default:
		return false
	}
}

// Begin looks key up. The first requester gets (entry, true) and must call
// Complete or Abort exactly once; everyone else gets (entry, false) and
// waits on it. A completed entry counts as a hit, an in-flight one as a
// join, a fresh insertion as a miss.
func (c *Cache) Begin(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*Entry)
		if e.completed() {
			c.hits++
		} else {
			c.joins++
		}
		return e, false
	}
	c.misses++
	e := &Entry{Key: key, Done: make(chan struct{})}
	c.idx[key] = c.ll.PushFront(e)
	c.evictLocked()
	return e, true
}

// Complete publishes the leader's result (or failure). Failed runs are not
// cached: the entry is removed so the next identical request leads again,
// but waiters still observe the error through the entry they hold.
func (c *Cache) Complete(e *Entry, result []byte, err error) {
	c.mu.Lock()
	if err != nil {
		c.removeLocked(e.Key)
	}
	c.mu.Unlock()
	e.Result, e.Err = result, err
	close(e.Done)
}

// Abort withdraws an in-flight entry whose leader never ran (admission
// rejected the job). Waiters that already joined observe the error.
func (c *Cache) Abort(e *Entry, err error) {
	c.Complete(e, nil, err)
}

// Put unconditionally stores a completed result, bypassing single-flight.
// Trace-enabled jobs use it: they always execute (the event log cannot come
// from the cache) yet still publish their bytes for later requests.
func (c *Cache) Put(key string, result []byte) {
	e := &Entry{Key: key, Done: make(chan struct{}), Result: result}
	close(e.Done)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(key)
	c.idx[key] = c.ll.PushFront(e)
	c.evictLocked()
}

// Wait blocks until the entry completes or ctx is cancelled.
func (e *Entry) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-e.Done:
		return e.Result, e.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// removeLocked drops key from the index and list (in-flight or not).
func (c *Cache) removeLocked(key string) {
	if el, ok := c.idx[key]; ok {
		c.ll.Remove(el)
		delete(c.idx, key)
	}
}

// evictLocked trims least-recently-used *completed* entries down to cap.
func (c *Cache) evictLocked() {
	over := c.ll.Len() - c.cap
	if over <= 0 {
		return
	}
	for el := c.ll.Back(); el != nil && over > 0; {
		prev := el.Prev()
		if e := el.Value.(*Entry); e.completed() {
			c.ll.Remove(el)
			delete(c.idx, e.Key)
			over--
		}
		el = prev
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Joins uint64
	Entries             int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Joins: c.joins, Entries: c.ll.Len()}
}
