package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// authPost submits a job with a bearer key and returns the status and the
// NDJSON lines.
func authPost(t *testing.T, ts *httptest.Server, key, body string) (int, []string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.Split(strings.TrimRight(string(b), "\n"), "\n")
}

// TestParseTenant pins the -api-key / keyfile grammar.
func TestParseTenant(t *testing.T) {
	cases := []struct {
		in   string
		want Tenant
		ok   bool
	}{
		{"alice:k1", Tenant{Name: "alice", Key: "k1"}, true},
		{"alice:k1:2.5", Tenant{Name: "alice", Key: "k1", Rate: 2.5}, true},
		{"alice:k1:2.5:7", Tenant{Name: "alice", Key: "k1", Rate: 2.5, Burst: 7}, true},
		{"alice", Tenant{}, false},
		{":k1", Tenant{}, false},
		{"alice:", Tenant{}, false},
		{"alice:k1:fast", Tenant{}, false},
		{"alice:k1:1:2:3", Tenant{}, false},
	}
	for _, c := range cases {
		got, err := ParseTenant(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseTenant(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseTenant(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	// Config-level validation: duplicate names, shared keys and keyless
	// tenants are rejected at New.
	for _, bad := range [][]Tenant{
		{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}},
		{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
		{{Name: "a"}},
	} {
		if _, err := New(Config{Tenants: bad}); err == nil {
			t.Errorf("New accepted invalid tenant set %+v", bad)
		}
	}
}

// TestAdmissionFairShare pins the slot discipline at the unit level: one
// slot, two tenants, releases granted round-robin so tenant A's backlog
// cannot starve tenant B.
func TestAdmissionFairShare(t *testing.T) {
	adm, err := newAdmission(1, 2, []Tenant{{Name: "a", Key: "ka"}, {Name: "b", Key: "kb"}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := adm.lookup("a"), adm.lookup("b")

	// A takes the slot; its next two submissions queue; the third bounces.
	if w, ok := adm.acquire(a, false); w != nil || !ok {
		t.Fatalf("first acquire: waiter=%v ok=%v, want immediate slot", w, ok)
	}
	wa1, ok := adm.acquire(a, false)
	if wa1 == nil || !ok {
		t.Fatal("second acquire should queue")
	}
	wa2, ok := adm.acquire(a, false)
	if wa2 == nil || !ok {
		t.Fatal("third acquire should queue")
	}
	if _, ok := adm.acquire(a, false); ok {
		t.Fatal("fourth acquire should bounce: queue full")
	}
	// forced acquires (restart recovery) queue past the bound.
	waF, ok := adm.acquire(a, true)
	if waF == nil || !ok {
		t.Fatal("forced acquire must never bounce")
	}
	// B queues behind its own bound, untouched by A's backlog.
	wb, ok := adm.acquire(b, false)
	if wb == nil || !ok {
		t.Fatal("tenant b should queue despite a's backlog")
	}
	if adm.queued("a") != 3 || adm.queued("b") != 1 {
		t.Fatalf("queued a=%d b=%d, want 3 and 1", adm.queued("a"), adm.queued("b"))
	}

	granted := func(w *waiter) bool {
		select {
		case <-w.ready:
			return true
		default:
			return false
		}
	}
	// Release the slot: the round-robin cursor moves past A, so B — one
	// queued job against A's three — is served first.
	adm.release(a)
	if !granted(wb) || granted(wa1) {
		t.Fatal("first release must grant tenant b (round-robin), not a's backlog")
	}
	adm.release(b)
	if !granted(wa1) {
		t.Fatal("second release should grant a's oldest waiter")
	}
	adm.release(a)
	if !granted(wa2) {
		t.Fatal("third release should grant a's next waiter (b has nothing queued)")
	}
	// cancelWait withdraws a queued waiter; a granted one reports false.
	if !adm.cancelWait(waF) {
		t.Fatal("cancelWait should withdraw the still-queued forced waiter")
	}
	if adm.cancelWait(wa2) {
		t.Fatal("cancelWait of a granted waiter must report false")
	}
	adm.release(a)
	if adm.running("a") != 0 || adm.running("b") != 0 || adm.queued("a") != 0 {
		t.Fatalf("final state: run a=%d b=%d queued a=%d, want all zero",
			adm.running("a"), adm.running("b"), adm.queued("a"))
	}
}

// TestTenantAuthAndIsolation drives the HTTP surface: wrong keys bounce
// with the 401 envelope, and tenants cannot see each other's jobs.
func TestTenantAuthAndIsolation(t *testing.T) {
	s := mustNew(t, Config{Tenants: []Tenant{
		{Name: "alice", Key: "ka"}, {Name: "bob", Key: "kb"},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No key, wrong key: 401 envelope.
	for _, key := range []string{"", "nope"} {
		code, lines := authPost(t, ts, key, runBody(1))
		if code != http.StatusUnauthorized || !strings.Contains(lines[0], `"code":"unauthorized"`) {
			t.Errorf("key %q: status %d body %s, want 401 unauthorized envelope", key, code, lines[0])
		}
	}

	// Alice submits; the job is hers.
	code, lines := authPost(t, ts, "ka", runBody(1))
	if code != http.StatusOK {
		t.Fatalf("alice submit: %d %v", code, lines)
	}
	i := strings.Index(lines[0], `"job":"`)
	if i < 0 {
		t.Fatalf("no job id in accepted line %s", lines[0])
	}
	jobID := lines[0][i+7:]
	jobID = jobID[:strings.IndexByte(jobID, '"')]

	// Bob cannot GET, DELETE or list alice's job.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	req.Header.Set("Authorization", "Bearer kb")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bob GET alice's job: %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil)
	req.Header.Set("Authorization", "Bearer kb")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bob DELETE alice's job: %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	req.Header.Set("Authorization", "Bearer kb")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(listing), jobID) {
		t.Errorf("bob's listing leaked alice's job: %s", listing)
	}

	// Alice sees it fine.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	req.Header.Set("Authorization", "Bearer ka")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("alice GET her own job: %d, want 200", resp.StatusCode)
	}
}

// TestTenantRateLimit pins the token bucket at the door: burst spends,
// then 429 rate_limited with a real retry hint, honored by waiting.
func TestTenantRateLimit(t *testing.T) {
	s := mustNew(t, Config{Tenants: []Tenant{
		{Name: "slow", Key: "ks", Rate: 0.5, Burst: 2},
		{Name: "free", Key: "kf"},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The burst admits two; the third bounces with the envelope.
	for i := 0; i < 2; i++ {
		if code, lines := authPost(t, ts, "ks", runBody(int64(i))); code != http.StatusOK {
			t.Fatalf("burst submit %d: %d %v", i, code, lines)
		}
	}
	code, lines := authPost(t, ts, "ks", runBody(9))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", code)
	}
	if !strings.Contains(lines[0], `"code":"rate_limited"`) ||
		!strings.Contains(lines[0], `"retry_after_seconds":`) {
		t.Errorf("rate-limit envelope = %s", lines[0])
	}

	// The unlimited tenant is untouched by slow's exhaustion.
	if code, _ := authPost(t, ts, "kf", runBody(1)); code != http.StatusOK {
		t.Errorf("free tenant rate-limited by slow's bucket: %d", code)
	}

	// Metrics carry the per-tenant series.
	_, metricsBody := get(t, ts.URL+"/v1/metrics")
	for _, want := range []string{
		`blackdp_serve_tenant_jobs_accepted_total{tenant="slow"} 2`,
		`blackdp_serve_tenant_rate_limited_total{tenant="slow"} 1`,
		`blackdp_serve_tenant_jobs_accepted_total{tenant="free"} 1`,
		`blackdp_serve_tenant_queued{tenant="slow"} 0`,
		`blackdp_serve_tenant_running{tenant="slow"} 0`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTenantFairnessUnderSaturation is the in-process soak: one tenant
// floods a one-slot server far past its queue bound while two well-behaved
// tenants submit a modest load. The flood must absorb every rejection —
// the fair tenants complete all of their jobs.
func TestTenantFairnessUnderSaturation(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 2, Tenants: []Tenant{
		{Name: "flood", Key: "k0"},
		{Name: "fair1", Key: "k1"},
		{Name: "fair2", Key: "k2"},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const fairJobs = 4
	var wg sync.WaitGroup
	var floodRejected, floodDone int
	var mu sync.Mutex
	// The flood: 12 concurrent distinct submissions against queue depth 2.
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, lines := authPost(t, ts, "k0", runBody(int64(100+i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case code == http.StatusOK:
				floodDone++
			case code == http.StatusTooManyRequests &&
				strings.Contains(lines[0], `"code":"queue_full"`):
				floodRejected++
			default:
				t.Errorf("flood submit %d: unexpected %d %s", i, code, lines[0])
			}
		}(i)
	}
	// The fair tenants: sequential closed-loop clients, distinct configs.
	fairDone := [2]int{}
	for fi, key := range []string{"k1", "k2"} {
		wg.Add(1)
		go func(fi int, key string) {
			defer wg.Done()
			for j := 0; j < fairJobs; j++ {
				deadline := time.Now().Add(60 * time.Second)
				for {
					code, _ := authPost(t, ts, key, runBody(int64(200+fi*10+j)))
					if code == http.StatusOK {
						mu.Lock()
						fairDone[fi]++
						mu.Unlock()
						break
					}
					if code != http.StatusTooManyRequests || time.Now().After(deadline) {
						t.Errorf("fair tenant %d job %d: status %d", fi, j, code)
						return
					}
					time.Sleep(50 * time.Millisecond) // own queue briefly full
				}
			}
		}(fi, key)
	}
	wg.Wait()

	if fairDone[0] != fairJobs || fairDone[1] != fairJobs {
		t.Errorf("fair tenants completed %d and %d jobs, want %d each (starved by the flood)",
			fairDone[0], fairDone[1], fairJobs)
	}
	if floodRejected == 0 {
		t.Error("the flood saw no queue_full rejections — queue bound not enforced")
	}
	if floodDone+floodRejected != 12 {
		t.Errorf("flood accounting: %d done + %d rejected != 12", floodDone, floodRejected)
	}
}
