// Package serve turns the batch simulator into a long-running HTTP service:
// simulation and sweep jobs arrive as JSON, execute on a bounded worker pool
// layered over internal/exp, and stream per-replication progress back as
// NDJSON. Identical requests — byte-identical by the replay-determinism
// guarantee — are answered from a deterministic LRU result cache keyed by
// the canonical config hash (scenario.Fingerprint), with single-flight
// coalescing for requests that overlap in flight.
//
// The API is versioned under /v1 (the pre-/v1 aliases are retired: the
// unversioned paths answer 410 Gone with the error envelope):
//
//	POST   /v1/jobs            submit a job; the response is an NDJSON stream
//	                           of accepted/progress/result lines, the final
//	                           line being the result payload itself
//	GET    /v1/jobs            list retained jobs (the caller's tenant)
//	GET    /v1/jobs/{id}       one job's status and result
//	DELETE /v1/jobs/{id}       cancel a queued or running job; with a fleet
//	                           configured the cancellation fans out to every
//	                           worker holding one of the job's chunks
//	GET  /v1/jobs/{id}/stream  byte-exact replay of a durable job's NDJSON
//	                           stream from ?offset=N, tailing until done
//	GET  /v1/jobs/{id}/trace the retained event log of a trace-enabled run
//	GET  /v1/metrics         Prometheus text exposition
//	GET  /v1/healthz         liveness and drain state
//
// Every non-2xx response carries the JSON envelope
// {"code", "message", "retry_after_seconds"}; retry_after_seconds is only
// present when the matching Retry-After header is set (429 and 503).
//
// Multi-tenancy (Config.Tenants): requests authenticate with
// "Authorization: Bearer <key>", each tenant has a token-bucket submission
// rate and its own bounded admission queue, and the execution slots are
// granted round-robin across tenants — a tenant saturating its bucket or
// queue is rejected with 429 (rate_limited / queue_full) while the others
// keep their share. Per-tenant counters and gauges join /v1/metrics. With
// no tenants configured the server is open and behaves as a single
// unlimited tenant, preserving the original admission semantics.
//
// Durability (Config.Store): sweep jobs journal their spec, their stream
// lines and their per-replication outcomes through a JobStore; a restarted
// server resumes unfinished sweeps at the journaled frontier, and resumed
// streams stitched through /stream?offset=N are byte-identical to
// uninterrupted ones. Durable jobs run detached from the submitting
// connection — disconnecting stops the tail, not the job.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blackdp/internal/exp"
	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
	"blackdp/internal/trace"
)

// Distributor executes a contiguous slice of a sweep's replication range
// across a fleet of remote worker nodes instead of the local replication
// pool. The contract mirrors scenario.RunSweepRange: outcomes come back in
// replication order for global replications [start, start+count) and must
// be byte-identical to a local run of the same canonical config (the
// distributed differential suite in internal/dist holds implementations to
// it). onRep is called — serialised, but not in replication order — with
// global replication indexes as results stream back from the fleet. A
// Distributor that finds no live workers returns an error wrapping
// ErrNoWorkers, which tells the server to fall back to local execution
// rather than fail the job. Implementations read the submitting tenant
// from the context (TenantName) and stamp it onto chunk requests.
//
// internal/dist.Coordinator is the production implementation; it is wired
// in through Config.Distributor by cmd/blackdp-serve's -fleet flag.
type Distributor interface {
	SweepRange(ctx context.Context, cfg scenario.Config, start, count int, onRep func(rep int, err error)) ([]metrics.Outcome, error)
}

// ErrNoWorkers reports that a Distributor has no live worker to dispatch
// to. The server treats it as "the fleet is not available right now" and
// executes the sweep locally; any other distributor error fails the job.
var ErrNoWorkers = errors.New("serve: no live workers in the fleet")

// Config tunes the service.
type Config struct {
	// Workers is the number of jobs executing concurrently (default 2).
	// Each sweep job additionally fans replications across its own
	// internal/exp pool, so total parallelism is Workers x SweepWorkers.
	Workers int
	// QueueDepth is how many admitted jobs may wait for a worker — per
	// tenant — before admission control starts rejecting that tenant with
	// 429 (default 16; negative means no queue at all — reject unless a
	// worker is free).
	QueueDepth int
	// CacheEntries bounds the result cache (default 128 completed entries).
	CacheEntries int
	// SweepWorkers is the default per-job replication pool (0 = one per
	// CPU); a request's "workers" field overrides it per job.
	SweepWorkers int
	// MaxReps caps a single sweep request (default 10000).
	MaxReps int
	// RetainJobs bounds the completed-job registry (default 256).
	RetainJobs int
	// RetryAfter is advertised on 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Tenants declares the API keys. Empty means an open server: no
	// authentication, one unlimited anonymous tenant.
	Tenants []Tenant
	// Store, when non-nil, makes sweep jobs durable: specs and journals
	// persist through it and unfinished sweeps resume on restart. Runs and
	// trace jobs stay in-memory (a trace log is not journalable).
	Store JobStore
	// Distributor, when non-nil, fans sweep jobs out across a worker fleet
	// (see the Distributor interface). Runs and trace jobs always execute
	// locally. If the distributor additionally implements
	// interface{ RegisterMetrics(*Registry) } its fabric instruments are
	// registered on the server's /metrics registry at construction.
	Distributor Distributor
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = exp.DefaultWorkers()
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 10_000
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the simulation service. Create with New, expose with Handler or
// Serve, stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache
	reg   *Registry
	mux   *http.ServeMux
	http  *http.Server
	adm   *admission
	store JobStore

	// baseCtx parents every durable job's execution context so Drain can
	// interrupt them resumably; request-bound jobs keep their request
	// contexts.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	runnersWG  sync.WaitGroup

	queued   atomic.Int64
	running  atomic.Int64
	draining atomic.Bool

	seq     atomic.Uint64
	jobsMu  sync.Mutex
	jobs    map[string]*Job
	order   []string
	streams map[string]*liveStream // durable jobs' journals, for tailing

	mAccepted       *Counter
	mRejected       *Counter
	mJobs           *CounterVec
	mReps           *Counter
	mSeconds        *Histogram
	mTenantAccepted *CounterVec
	mTenantRejected *CounterVec
	mTenantRate     *CounterVec
}

// New builds a server with cfg (zero fields take defaults). It fails on an
// invalid tenant set or an unreadable job store; with a store configured,
// unfinished stored sweeps resume executing before New returns.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	adm, err := newAdmission(cfg.Workers, cfg.QueueDepth, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		reg:     &Registry{},
		mux:     http.NewServeMux(),
		adm:     adm,
		store:   cfg.Store,
		jobs:    make(map[string]*Job),
		streams: make(map[string]*liveStream),
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.http = &http.Server{Handler: s.mux}

	s.mAccepted = s.reg.Counter("blackdp_serve_jobs_accepted_total",
		"Jobs admitted, including ones answered from the cache.")
	s.mRejected = s.reg.Counter("blackdp_serve_jobs_rejected_total",
		"Jobs rejected with 429 by admission control or rate limiting.")
	s.mJobs = s.reg.CounterVec("blackdp_serve_jobs_total",
		"Executed jobs by final status.", "status", StatusDone, StatusFailed, StatusCanceled)
	s.mReps = s.reg.Counter("blackdp_serve_reps_completed_total",
		"Simulation replications completed across all jobs.")
	s.reg.CounterFunc("blackdp_serve_cache_hits_total",
		"Requests answered from the result cache (completed entries plus in-flight joins).",
		func() uint64 { st := s.cache.Stats(); return st.Hits + st.Joins })
	s.reg.CounterFunc("blackdp_serve_cache_misses_total",
		"Requests that had to execute the simulation.",
		func() uint64 { return s.cache.Stats().Misses })
	s.reg.CounterFunc("blackdp_serve_cache_coalesced_total",
		"Cache hits that joined a result still being computed.",
		func() uint64 { return s.cache.Stats().Joins })
	s.reg.GaugeFunc("blackdp_serve_cache_entries",
		"Entries currently in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.GaugeFunc("blackdp_serve_jobs_running",
		"Jobs currently executing.",
		func() float64 { return float64(s.running.Load()) })
	s.reg.GaugeFunc("blackdp_serve_queue_depth",
		"Admitted jobs waiting for a worker.",
		func() float64 { return float64(s.queued.Load()) })
	s.mSeconds = s.reg.Histogram("blackdp_serve_job_seconds",
		"Wall time per executed job.", 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60)

	names := adm.names()
	s.mTenantAccepted = s.reg.CounterVec("blackdp_serve_tenant_jobs_accepted_total",
		"Jobs admitted per tenant.", "tenant", names...)
	s.mTenantRejected = s.reg.CounterVec("blackdp_serve_tenant_jobs_rejected_total",
		"Jobs rejected per tenant by the admission queue bound.", "tenant", names...)
	s.mTenantRate = s.reg.CounterVec("blackdp_serve_tenant_rate_limited_total",
		"Jobs rejected per tenant by the token-bucket rate limit.", "tenant", names...)
	s.reg.GaugeVecFunc("blackdp_serve_tenant_queued",
		"Jobs waiting for a worker per tenant.", "tenant", names,
		func(name string) float64 { return float64(s.adm.queued(name)) })
	s.reg.GaugeVecFunc("blackdp_serve_tenant_running",
		"Jobs executing per tenant.", "tenant", names,
		func(name string) float64 { return float64(s.adm.running(name)) })

	// A distributor that carries its own instruments (the dist coordinator's
	// fabric gauges and counters) exposes them through the same registry, so
	// one /metrics scrape covers the whole fabric.
	if mr, ok := cfg.Distributor.(interface{ RegisterMetrics(*Registry) }); ok {
		mr.RegisterMetrics(s.reg)
	}

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	// The pre-/v1 aliases are retired: a typed 410 tells old clients where
	// the API went, and everything else unmatched gets an enveloped 404.
	for _, p := range []string{"/jobs", "/jobs/", "/metrics", "/healthz"} {
		s.mux.HandleFunc(p, handleGone)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "not_found", "no such route: "+r.URL.Path, 0)
	})

	if s.store != nil {
		if err := s.recoverStored(); err != nil {
			s.baseCancel(errShutdown)
			return nil, err
		}
	}
	return s, nil
}

// handleGone answers a retired unversioned route.
func handleGone(w http.ResponseWriter, r *http.Request) {
	WriteError(w, http.StatusGone, "gone",
		"the unversioned API is retired; use /v1"+r.URL.Path, 0)
}

// Handler exposes the service mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// SetHandler replaces the handler Serve exposes, letting callers wrap the
// service mux (e.g. with net/http/pprof debug routes) while keeping Drain's
// shutdown semantics. It must be called before Serve.
func (s *Server) SetHandler(h http.Handler) { s.http.Handler = h }

// Serve accepts connections on l until Drain; it returns
// http.ErrServerClosed after a clean drain, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Drain stops admission (new submissions get 503), interrupts durable jobs
// resumably (their journals are left for the next process), waits for
// in-flight requests, and returns the final cache statistics for the
// shutdown log.
func (s *Server) Drain(ctx context.Context) (CacheStats, error) {
	s.draining.Store(true)
	s.baseCancel(errShutdown)
	runnersDone := make(chan struct{})
	go func() { s.runnersWG.Wait(); close(runnersDone) }()
	select {
	case <-runnersDone:
	case <-ctx.Done():
	}
	err := s.http.Shutdown(ctx)
	if c, ok := s.store.(io.Closer); ok {
		_ = c.Close()
	}
	return s.cache.Stats(), err
}

// Metrics exposes the registry (for embedding additional instruments).
func (s *Server) Metrics() *Registry { return s.reg }

// resultPayload is the final NDJSON line of a successful job — the bytes
// the cache stores and replays verbatim, so identical requests get
// byte-identical outcome JSON.
type resultPayload struct {
	Outcomes []metrics.Outcome `json:"outcomes"`
	Summary  metrics.Report    `json:"summary"`
}

func (s *Server) retryAfterSeconds() int {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// APIError is the typed envelope of every non-2xx response: a stable
// machine-readable code, a human-readable message, and — on responses that
// also carry a Retry-After header — the same back-off hint as a number, so
// clients need not parse the header.
type APIError struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// WriteError emits the JSON error envelope; retryAfter <= 0 omits the hint
// and the Retry-After header.
func WriteError(w http.ResponseWriter, status int, code, message string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(APIError{Code: code, Message: message, RetryAfterSeconds: retryAfter})
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return err
}

type streamLine struct {
	Type      string `json:"type"`
	Job       string `json:"job"`
	Key       string `json:"key,omitempty"`
	Cache     string `json:"cache,omitempty"`
	Rep       int    `json:"rep,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// authorize resolves the request's tenant, answering 401 with the envelope
// when keys are configured and the bearer token is missing or unknown.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	t := s.adm.authenticate(r.Header.Get("Authorization"))
	if t == nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="blackdp"`)
		WriteError(w, http.StatusUnauthorized, "unauthorized",
			"missing or unknown API key", 0)
		return nil, false
	}
	return t, true
}

// visible reports whether t may see job. Tenants only see their own jobs
// (an open server has a single tenant, so everything is visible); unknown
// jobs and other tenants' jobs are indistinguishable — both 404.
func (s *Server) visible(job *Job, t *tenantState) bool {
	return s.adm.open || job.Tenant == t.cfg.Name
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "draining",
			"server is draining and not accepting jobs", s.retryAfterSeconds())
		return
	}
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", "reading request: "+err.Error(), 0)
		return
	}
	spec, err := parseRequest(body, s.cfg.MaxReps)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	// The rate limit charges every submission — cache hits included — at
	// the door: it bounds request pressure, not compute.
	if ok, wait := s.adm.takeToken(t, time.Now()); !ok {
		s.mRejected.Inc()
		s.mTenantRate.Inc(t.cfg.Name)
		retry := int(math.Ceil(wait.Seconds()))
		if retry < 1 {
			retry = 1
		}
		WriteError(w, http.StatusTooManyRequests, "rate_limited",
			"tenant "+t.cfg.Name+" is over its submission rate", retry)
		return
	}

	// Durable sweeps detach from the connection and journal through the
	// store; runs and trace jobs keep the request-bound in-memory path.
	if s.store != nil && spec.kind == "sweep" && !spec.trace {
		s.submitStored(w, r, t, spec)
		return
	}

	// A job's execution context cancels two ways: the submitting client
	// disconnecting (r.Context) or DELETE /v1/jobs/{id} from any other
	// connection (the cancel func bound to the job record).
	ctx, cancelJob := context.WithCancel(r.Context())
	defer cancelJob()

	// Cache read path. Trace jobs skip it — an event log cannot come from
	// the cache — but still publish their result bytes on completion.
	var entry *Entry
	if !spec.trace {
		var leader bool
		entry, leader = s.cache.Begin(spec.key)
		if !leader {
			s.serveCached(ctx, cancelJob, w, t, spec, entry)
			return
		}
	}

	// Admission: claim a slot or a place in this tenant's queue.
	wtr, admitted := s.adm.acquire(t, false)
	if !admitted {
		if entry != nil {
			s.cache.Abort(entry, errors.New("serve: rejected by admission control"))
		}
		s.mRejected.Inc()
		s.mTenantRejected.Inc(t.cfg.Name)
		WriteError(w, http.StatusTooManyRequests, "queue_full",
			"job queue is full", s.retryAfterSeconds())
		return
	}
	s.mAccepted.Inc()
	s.mTenantAccepted.Inc(t.cfg.Name)
	job := s.newJob(spec, t.cfg.Name)
	job.bindCancel(cancelJob)
	job.setCache("miss")

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Blackdp-Cache", "miss")
	_ = writeJSONLine(w, streamLine{Type: "accepted", Job: job.ID, Key: spec.key, Cache: "miss", Total: spec.reps})

	// Wait for a slot grant; a disconnected client leaves the queue and
	// withdraws the in-flight cache entry so the next request leads.
	if wtr != nil {
		s.queued.Add(1)
		select {
		case <-wtr.ready:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			if !s.adm.cancelWait(wtr) {
				s.adm.release(t)
			}
			if entry != nil {
				s.cache.Abort(entry, ctx.Err())
			}
			job.finish(StatusCanceled, ctx.Err().Error(), nil, nil)
			s.mJobs.Inc(StatusCanceled)
			return
		}
	}
	s.running.Add(1)
	defer func() { s.running.Add(-1); s.adm.release(t) }()

	job.setStatus(StatusRunning)
	start := time.Now()

	// Progress lines flow through a buffered channel to a writer goroutine:
	// OnRep fires under the sweep pool's lock, and a slow client must stall
	// neither the pool nor the other workers — excess lines are dropped.
	lines := make(chan streamLine, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for line := range lines {
			_ = writeJSONLine(w, line)
		}
	}()
	repsDone := 0
	onRep := func(rep int, err error) { // serialised by exp.Map
		s.mReps.Inc()
		repsDone++
		line := streamLine{Type: "progress", Job: job.ID, Rep: rep, Done: repsDone, Total: spec.reps}
		if err != nil {
			line.Error = err.Error()
		}
		select {
		case lines <- line:
		default: // drop: progress is advisory, the result line is not
		}
	}

	outcomes, log, err := s.execute(WithTenant(ctx, t.cfg.Name), spec, onRep)
	close(lines)
	<-writerDone
	elapsed := time.Since(start)

	if err != nil {
		if entry != nil {
			s.cache.Complete(entry, nil, err)
		}
		status := StatusFailed
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = StatusCanceled
		}
		job.finish(status, err.Error(), nil, nil)
		s.mJobs.Inc(status)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error(), ElapsedMS: elapsed.Milliseconds()})
		return
	}

	payload, err := json.Marshal(resultPayload{Outcomes: outcomes, Summary: metrics.Aggregate(outcomes).Report()})
	if err != nil {
		if entry != nil {
			s.cache.Complete(entry, nil, err)
		}
		job.finish(StatusFailed, err.Error(), nil, nil)
		s.mJobs.Inc(StatusFailed)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error()})
		return
	}
	if entry != nil {
		s.cache.Complete(entry, payload, nil)
	} else {
		s.cache.Put(spec.key, payload)
	}
	job.finish(StatusDone, "", payload, log)
	s.mJobs.Inc(StatusDone)
	s.mSeconds.Observe(elapsed.Seconds())
	_ = writeJSONLine(w, streamLine{Type: "result", Job: job.ID, Cache: "miss", ElapsedMS: elapsed.Milliseconds(), Total: spec.reps})
	_, _ = w.Write(payload)
	_, _ = io.WriteString(w, "\n")
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// serveCached answers a request whose key is already cached or in flight.
func (s *Server) serveCached(ctx context.Context, cancel context.CancelFunc, w http.ResponseWriter, t *tenantState, spec jobSpec, entry *Entry) {
	s.mAccepted.Inc()
	s.mTenantAccepted.Inc(t.cfg.Name)
	job := s.newJob(spec, t.cfg.Name)
	job.bindCancel(cancel)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Blackdp-Cache", "hit")
	_ = writeJSONLine(w, streamLine{Type: "accepted", Job: job.ID, Key: spec.key, Cache: "hit", Total: spec.reps})
	start := time.Now()
	payload, err := entry.Wait(ctx)
	if err != nil {
		job.finish(StatusFailed, err.Error(), nil, nil)
		s.mJobs.Inc(StatusFailed)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error()})
		return
	}
	job.setCache("hit")
	job.finish(StatusDone, "", payload, nil)
	s.mJobs.Inc(StatusDone)
	_ = writeJSONLine(w, streamLine{Type: "result", Job: job.ID, Cache: "hit", ElapsedMS: time.Since(start).Milliseconds(), Total: spec.reps})
	_, _ = w.Write(payload)
	_, _ = io.WriteString(w, "\n")
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// execute runs the job's workload under ctx.
func (s *Server) execute(ctx context.Context, spec jobSpec, onRep func(int, error)) ([]metrics.Outcome, *trace.Log, error) {
	switch spec.kind {
	case "run":
		cfg := spec.cfg
		cfg.Trace = spec.trace
		world, err := scenario.Build(cfg)
		if err != nil {
			return nil, nil, err
		}
		o, err := world.RunContext(ctx)
		if onRep != nil {
			onRep(0, err)
		}
		if err != nil {
			return nil, nil, err
		}
		var log *trace.Log
		if spec.trace {
			snap := world.Env.Tracer.Snapshot()
			log = &snap
		}
		return []metrics.Outcome{o}, log, nil
	default: // "sweep", validated upstream
		outcomes, err := s.sweepRange(ctx, spec, 0, spec.reps, onRep)
		return outcomes, nil, err
	}
}

// newJob registers a retained job record, evicting the oldest finished jobs
// beyond the retention bound (evicted durable jobs drop their journals and
// store artifacts with them).
func (s *Server) newJob(spec jobSpec, tenant string) *Job {
	j := &Job{ID: fmt.Sprintf("j-%d", s.seq.Add(1)), Kind: spec.kind, Key: spec.key,
		Reps: spec.reps, Tenant: tenant, status: StatusQueued, created: time.Now()}
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].done() {
				delete(s.jobs, id)
				delete(s.streams, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if s.store != nil {
					_ = s.store.Remove(id)
				}
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is in flight; admission bounds this
		}
	}
	return j
}

func (s *Server) lookup(id string) *Job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	s.jobsMu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		if s.visible(s.jobs[id], t) {
			views = append(views, s.jobs[id].view(false))
		}
	}
	s.jobsMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Jobs []jobView `json:"jobs"`
	}{views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	job := s.lookup(r.PathValue("id"))
	if job == nil || !s.visible(job, t) {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(job.view(true))
}

// handleCancel is DELETE /v1/jobs/{id}: it cancels a queued or running
// job's execution context. For distributed sweeps the cancellation fans out
// end-to-end — the coordinator's in-flight chunk requests are ctx-bound
// HTTP calls, so cancelling the job aborts them, and each worker's chunk
// context is its request context, so the aborted connections stop the
// remote replication pools too. Cancelling a durable job is terminal: its
// journal ends with an error line and it does not resume on restart.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	job := s.lookup(r.PathValue("id"))
	if job == nil || !s.visible(job, t) {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	if !job.Cancel() {
		WriteError(w, http.StatusConflict, "already_finished",
			"job "+job.ID+" already finished", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(struct {
		Job    string `json:"job"`
		Status string `json:"status"`
	}{job.ID, "canceling"})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authorize(w, r)
	if !ok {
		return
	}
	job := s.lookup(r.PathValue("id"))
	if job == nil || !s.visible(job, t) {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	log := job.traceSnapshot()
	if log == nil {
		WriteError(w, http.StatusNotFound, "no_trace",
			"job retained no trace (submit with \"trace\": true)", 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = log.Dump(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Render(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
	}{status})
}
