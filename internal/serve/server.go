// Package serve turns the batch simulator into a long-running HTTP service:
// simulation and sweep jobs arrive as JSON, execute on a bounded worker pool
// layered over internal/exp, and stream per-replication progress back as
// NDJSON. Identical requests — byte-identical by the replay-determinism
// guarantee — are answered from a deterministic LRU result cache keyed by
// the canonical config hash (scenario.Fingerprint), with single-flight
// coalescing for requests that overlap in flight.
//
// Endpoints (canonical paths are versioned under /v1; the unversioned
// originals remain as aliases for existing clients):
//
//	POST   /v1/jobs            submit a job; the response is an NDJSON stream
//	                           of accepted/progress/result lines, the final
//	                           line being the result payload itself
//	GET    /v1/jobs            list retained jobs
//	GET    /v1/jobs/{id}       one job's status and result
//	DELETE /v1/jobs/{id}       cancel a queued or running job; with a fleet
//	                           configured the cancellation fans out to every
//	                           worker holding one of the job's chunks
//	GET  /v1/jobs/{id}/trace the retained event log of a trace-enabled run
//	GET  /v1/metrics         Prometheus text exposition
//	GET  /v1/healthz         liveness and drain state
//
// Error responses (400, 404, 429, 503) carry a JSON envelope
// {"code", "message", "retry_after_seconds"}; retry_after_seconds is only
// present when the matching Retry-After header is set (429 and 503).
//
// Admission control is a bounded queue: jobs beyond Workers+QueueDepth are
// rejected with 429 and a Retry-After header, a disconnected client cancels
// its job's context, and Drain stops admission, finishes in-flight jobs and
// reports the final cache statistics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blackdp/internal/exp"
	"blackdp/internal/metrics"
	"blackdp/internal/scenario"
	"blackdp/internal/trace"
)

// Distributor executes a sweep's replication range across a fleet of
// remote worker nodes instead of the local replication pool. The contract
// mirrors scenario.RunSweep: outcomes come back in replication order and
// must be byte-identical to a local run of the same canonical config (the
// distributed differential suite in internal/dist holds implementations to
// it). onRep is called — serialised, but not in replication order — as
// replication results stream back from the fleet. A Distributor that finds
// no live workers returns an error wrapping ErrNoWorkers, which tells the
// server to fall back to local execution rather than fail the job.
//
// internal/dist.Coordinator is the production implementation; it is wired
// in through Config.Distributor by cmd/blackdp-serve's -fleet flag.
type Distributor interface {
	Sweep(ctx context.Context, cfg scenario.Config, reps int, onRep func(rep int, err error)) ([]metrics.Outcome, error)
}

// ErrNoWorkers reports that a Distributor has no live worker to dispatch
// to. The server treats it as "the fleet is not available right now" and
// executes the sweep locally; any other distributor error fails the job.
var ErrNoWorkers = errors.New("serve: no live workers in the fleet")

// Config tunes the service.
type Config struct {
	// Workers is the number of jobs executing concurrently (default 2).
	// Each sweep job additionally fans replications across its own
	// internal/exp pool, so total parallelism is Workers x SweepWorkers.
	Workers int
	// QueueDepth is how many admitted jobs may wait for a worker before
	// admission control starts rejecting with 429 (default 16; negative
	// means no queue at all — reject unless a worker is free).
	QueueDepth int
	// CacheEntries bounds the result cache (default 128 completed entries).
	CacheEntries int
	// SweepWorkers is the default per-job replication pool (0 = one per
	// CPU); a request's "workers" field overrides it per job.
	SweepWorkers int
	// MaxReps caps a single sweep request (default 10000).
	MaxReps int
	// RetainJobs bounds the completed-job registry (default 256).
	RetainJobs int
	// RetryAfter is advertised on 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Distributor, when non-nil, fans sweep jobs out across a worker fleet
	// (see the Distributor interface). Runs and trace jobs always execute
	// locally. If the distributor additionally implements
	// interface{ RegisterMetrics(*Registry) } its fabric instruments are
	// registered on the server's /metrics registry at construction.
	Distributor Distributor
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = exp.DefaultWorkers()
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 10_000
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the simulation service. Create with New, expose with Handler or
// Serve, stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache
	reg   *Registry
	mux   *http.ServeMux
	http  *http.Server

	admSlots chan struct{} // admission: Workers+QueueDepth
	runSlots chan struct{} // execution: Workers
	queued   atomic.Int64
	running  atomic.Int64
	draining atomic.Bool

	seq    atomic.Uint64
	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string

	mAccepted *Counter
	mRejected *Counter
	mJobs     *CounterVec
	mReps     *Counter
	mSeconds  *Histogram
}

// New builds a server with cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries),
		reg:      &Registry{},
		mux:      http.NewServeMux(),
		admSlots: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		runSlots: make(chan struct{}, cfg.Workers),
		jobs:     make(map[string]*Job),
	}
	s.http = &http.Server{Handler: s.mux}

	s.mAccepted = s.reg.Counter("blackdp_serve_jobs_accepted_total",
		"Jobs admitted, including ones answered from the cache.")
	s.mRejected = s.reg.Counter("blackdp_serve_jobs_rejected_total",
		"Jobs rejected with 429 by admission control.")
	s.mJobs = s.reg.CounterVec("blackdp_serve_jobs_total",
		"Executed jobs by final status.", "status", StatusDone, StatusFailed, StatusCanceled)
	s.mReps = s.reg.Counter("blackdp_serve_reps_completed_total",
		"Simulation replications completed across all jobs.")
	s.reg.CounterFunc("blackdp_serve_cache_hits_total",
		"Requests answered from the result cache (completed entries plus in-flight joins).",
		func() uint64 { st := s.cache.Stats(); return st.Hits + st.Joins })
	s.reg.CounterFunc("blackdp_serve_cache_misses_total",
		"Requests that had to execute the simulation.",
		func() uint64 { return s.cache.Stats().Misses })
	s.reg.CounterFunc("blackdp_serve_cache_coalesced_total",
		"Cache hits that joined a result still being computed.",
		func() uint64 { return s.cache.Stats().Joins })
	s.reg.GaugeFunc("blackdp_serve_cache_entries",
		"Entries currently in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.GaugeFunc("blackdp_serve_jobs_running",
		"Jobs currently executing.",
		func() float64 { return float64(s.running.Load()) })
	s.reg.GaugeFunc("blackdp_serve_queue_depth",
		"Admitted jobs waiting for a worker.",
		func() float64 { return float64(s.queued.Load()) })
	s.mSeconds = s.reg.Histogram("blackdp_serve_job_seconds",
		"Wall time per executed job.", 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60)

	// A distributor that carries its own instruments (the dist coordinator's
	// fabric gauges and counters) exposes them through the same registry, so
	// one /metrics scrape covers the whole fabric.
	if mr, ok := cfg.Distributor.(interface{ RegisterMetrics(*Registry) }); ok {
		mr.RegisterMetrics(s.reg)
	}

	// Canonical routes live under /v1; the unversioned paths predate the
	// versioned API and stay registered as aliases so existing clients and
	// scripts keep working. Both prefixes resolve to the same handlers, so
	// behaviour (and the job registry) is shared, not forked.
	for _, prefix := range []string{"/v1", ""} {
		s.mux.HandleFunc("POST "+prefix+"/jobs", s.handleSubmit)
		s.mux.HandleFunc("GET "+prefix+"/jobs", s.handleList)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}", s.handleJob)
		s.mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", s.handleCancel)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}/trace", s.handleTrace)
		s.mux.HandleFunc("GET "+prefix+"/metrics", s.handleMetrics)
		s.mux.HandleFunc("GET "+prefix+"/healthz", s.handleHealth)
	}
	return s
}

// Handler exposes the service mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// SetHandler replaces the handler Serve exposes, letting callers wrap the
// service mux (e.g. with net/http/pprof debug routes) while keeping Drain's
// shutdown semantics. It must be called before Serve.
func (s *Server) SetHandler(h http.Handler) { s.http.Handler = h }

// Serve accepts connections on l until Drain; it returns
// http.ErrServerClosed after a clean drain, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Drain stops admission (new submissions get 503), waits for in-flight
// requests — running jobs and their streams included — and returns the
// final cache statistics for the shutdown log.
func (s *Server) Drain(ctx context.Context) (CacheStats, error) {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	return s.cache.Stats(), err
}

// Metrics exposes the registry (for embedding additional instruments).
func (s *Server) Metrics() *Registry { return s.reg }

// resultPayload is the final NDJSON line of a successful job — the bytes
// the cache stores and replays verbatim, so identical requests get
// byte-identical outcome JSON.
type resultPayload struct {
	Outcomes []metrics.Outcome `json:"outcomes"`
	Summary  metrics.Report    `json:"summary"`
}

func (s *Server) retryAfterSeconds() int {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// APIError is the typed envelope of every non-2xx response: a stable
// machine-readable code, a human-readable message, and — on responses that
// also carry a Retry-After header — the same back-off hint as a number, so
// clients need not parse the header.
type APIError struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// WriteError emits the JSON error envelope; retryAfter <= 0 omits the hint
// and the Retry-After header.
func WriteError(w http.ResponseWriter, status int, code, message string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(APIError{Code: code, Message: message, RetryAfterSeconds: retryAfter})
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return err
}

type streamLine struct {
	Type      string `json:"type"`
	Job       string `json:"job"`
	Key       string `json:"key,omitempty"`
	Cache     string `json:"cache,omitempty"`
	Rep       int    `json:"rep,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "draining",
			"server is draining and not accepting jobs", s.retryAfterSeconds())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", "reading request: "+err.Error(), 0)
		return
	}
	spec, err := parseRequest(body, s.cfg.MaxReps)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	// A job's execution context cancels two ways: the submitting client
	// disconnecting (r.Context) or DELETE /v1/jobs/{id} from any other
	// connection (the cancel func bound to the job record).
	ctx, cancelJob := context.WithCancel(r.Context())
	defer cancelJob()

	// Cache read path. Trace jobs skip it — an event log cannot come from
	// the cache — but still publish their result bytes on completion.
	var entry *Entry
	if !spec.trace {
		var leader bool
		entry, leader = s.cache.Begin(spec.key)
		if !leader {
			s.serveCached(ctx, cancelJob, w, spec, entry)
			return
		}
	}

	// Admission control: reserve a queue slot or reject immediately.
	select {
	case s.admSlots <- struct{}{}:
	default:
		if entry != nil {
			s.cache.Abort(entry, errors.New("serve: rejected by admission control"))
		}
		s.mRejected.Inc()
		WriteError(w, http.StatusTooManyRequests, "queue_full",
			"job queue is full", s.retryAfterSeconds())
		return
	}
	defer func() { <-s.admSlots }()
	s.mAccepted.Inc()
	job := s.newJob(spec)
	job.bindCancel(cancelJob)
	job.setCache("miss")

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Blackdp-Cache", "miss")
	_ = writeJSONLine(w, streamLine{Type: "accepted", Job: job.ID, Key: spec.key, Cache: "miss", Total: spec.reps})

	// Wait for a worker; a disconnected client releases its slot and
	// withdraws the in-flight cache entry so the next request leads.
	s.queued.Add(1)
	select {
	case s.runSlots <- struct{}{}:
	case <-ctx.Done():
		s.queued.Add(-1)
		if entry != nil {
			s.cache.Abort(entry, ctx.Err())
		}
		job.finish(StatusCanceled, ctx.Err().Error(), nil, nil)
		s.mJobs.Inc(StatusCanceled)
		return
	}
	s.queued.Add(-1)
	s.running.Add(1)
	defer func() { s.running.Add(-1); <-s.runSlots }()

	job.setStatus(StatusRunning)
	start := time.Now()

	// Progress lines flow through a buffered channel to a writer goroutine:
	// OnRep fires under the sweep pool's lock, and a slow client must stall
	// neither the pool nor the other workers — excess lines are dropped.
	lines := make(chan streamLine, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for line := range lines {
			_ = writeJSONLine(w, line)
		}
	}()
	repsDone := 0
	onRep := func(rep int, err error) { // serialised by exp.Map
		s.mReps.Inc()
		repsDone++
		line := streamLine{Type: "progress", Job: job.ID, Rep: rep, Done: repsDone, Total: spec.reps}
		if err != nil {
			line.Error = err.Error()
		}
		select {
		case lines <- line:
		default: // drop: progress is advisory, the result line is not
		}
	}

	outcomes, log, err := s.execute(ctx, spec, onRep)
	close(lines)
	<-writerDone
	elapsed := time.Since(start)

	if err != nil {
		if entry != nil {
			s.cache.Complete(entry, nil, err)
		}
		status := StatusFailed
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = StatusCanceled
		}
		job.finish(status, err.Error(), nil, nil)
		s.mJobs.Inc(status)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error(), ElapsedMS: elapsed.Milliseconds()})
		return
	}

	payload, err := json.Marshal(resultPayload{Outcomes: outcomes, Summary: metrics.Aggregate(outcomes).Report()})
	if err != nil {
		if entry != nil {
			s.cache.Complete(entry, nil, err)
		}
		job.finish(StatusFailed, err.Error(), nil, nil)
		s.mJobs.Inc(StatusFailed)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error()})
		return
	}
	if entry != nil {
		s.cache.Complete(entry, payload, nil)
	} else {
		s.cache.Put(spec.key, payload)
	}
	job.finish(StatusDone, "", payload, log)
	s.mJobs.Inc(StatusDone)
	s.mSeconds.Observe(elapsed.Seconds())
	_ = writeJSONLine(w, streamLine{Type: "result", Job: job.ID, Cache: "miss", ElapsedMS: elapsed.Milliseconds(), Total: spec.reps})
	_, _ = w.Write(payload)
	_, _ = io.WriteString(w, "\n")
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// serveCached answers a request whose key is already cached or in flight.
func (s *Server) serveCached(ctx context.Context, cancel context.CancelFunc, w http.ResponseWriter, spec jobSpec, entry *Entry) {
	s.mAccepted.Inc()
	job := s.newJob(spec)
	job.bindCancel(cancel)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Blackdp-Cache", "hit")
	_ = writeJSONLine(w, streamLine{Type: "accepted", Job: job.ID, Key: spec.key, Cache: "hit", Total: spec.reps})
	start := time.Now()
	payload, err := entry.Wait(ctx)
	if err != nil {
		job.finish(StatusFailed, err.Error(), nil, nil)
		s.mJobs.Inc(StatusFailed)
		_ = writeJSONLine(w, streamLine{Type: "error", Job: job.ID, Error: err.Error()})
		return
	}
	job.setCache("hit")
	job.finish(StatusDone, "", payload, nil)
	s.mJobs.Inc(StatusDone)
	_ = writeJSONLine(w, streamLine{Type: "result", Job: job.ID, Cache: "hit", ElapsedMS: time.Since(start).Milliseconds(), Total: spec.reps})
	_, _ = w.Write(payload)
	_, _ = io.WriteString(w, "\n")
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// execute runs the job's workload under ctx.
func (s *Server) execute(ctx context.Context, spec jobSpec, onRep func(int, error)) ([]metrics.Outcome, *trace.Log, error) {
	switch spec.kind {
	case "run":
		cfg := spec.cfg
		cfg.Trace = spec.trace
		world, err := scenario.Build(cfg)
		if err != nil {
			return nil, nil, err
		}
		o, err := world.RunContext(ctx)
		if onRep != nil {
			onRep(0, err)
		}
		if err != nil {
			return nil, nil, err
		}
		var log *trace.Log
		if spec.trace {
			snap := world.Env.Tracer.Snapshot()
			log = &snap
		}
		return []metrics.Outcome{o}, log, nil
	default: // "sweep", validated upstream
		// A configured fleet takes the sweep first; a fleet with no live
		// worker (ErrNoWorkers) degrades to local execution so a dead
		// testnet never turns into failed jobs. Any other fleet error is
		// the job's error — the chunks already retried inside Sweep.
		if d := s.cfg.Distributor; d != nil {
			outcomes, err := d.Sweep(ctx, spec.cfg, spec.reps, onRep)
			if err == nil || !errors.Is(err, ErrNoWorkers) {
				return outcomes, nil, err
			}
		}
		pool := spec.pool
		if pool <= 0 {
			pool = s.cfg.SweepWorkers
		}
		outcomes, err := scenario.RunSweep(ctx, spec.cfg, spec.reps,
			scenario.SweepOptions{Workers: pool, OnRep: onRep}, nil)
		return outcomes, nil, err
	}
}

// newJob registers a retained job record, evicting the oldest finished jobs
// beyond the retention bound.
func (s *Server) newJob(spec jobSpec) *Job {
	j := &Job{ID: fmt.Sprintf("j-%d", s.seq.Add(1)), Kind: spec.kind, Key: spec.key,
		Reps: spec.reps, status: StatusQueued, created: time.Now()}
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].done() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is in flight; admission bounds this
		}
	}
	return j
}

func (s *Server) lookup(id string) *Job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.jobsMu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.jobsMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Jobs []jobView `json:"jobs"`
	}{views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(job.view(true))
}

// handleCancel is DELETE /v1/jobs/{id}: it cancels a queued or running
// job's execution context. For distributed sweeps the cancellation fans out
// end-to-end — the coordinator's in-flight chunk requests are ctx-bound
// HTTP calls, so cancelling the job aborts them, and each worker's chunk
// context is its request context, so the aborted connections stop the
// remote replication pools too.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	if !job.Cancel() {
		WriteError(w, http.StatusConflict, "already_finished",
			"job "+job.ID+" already finished", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(struct {
		Job    string `json:"job"`
		Status string `json:"status"`
	}{job.ID, "canceling"})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		WriteError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"), 0)
		return
	}
	log := job.traceSnapshot()
	if log == nil {
		WriteError(w, http.StatusNotFound, "no_trace",
			"job retained no trace (submit with \"trace\": true)", 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = log.Dump(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Render(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
	}{status})
}
