package serve

// Durable jobs. A JobStore persists each accepted sweep as three
// append-only artifacts:
//
//   - the spec: the validated request (kind, canonical config JSON, reps,
//     pool, tenant) — everything needed to re-admit the job after a restart;
//   - the stream journal: the job's NDJSON response lines, wire-exact — the
//     journal IS the canonical stream, POST responses and
//     GET /v1/jobs/{id}/stream?offset=N both replay it verbatim;
//   - the outcomes journal: one metrics.Outcome JSON line per completed
//     replication, strictly in replication order.
//
// The outcomes journal is the resume frontier: a restarted server counts
// its complete lines and continues the sweep at that replication via
// scenario.RunSweepRange — seeds are a pure function of the global
// replication index, so the continuation is byte-identical to the part an
// uninterrupted run would have produced. Outcome JSON round-trips exactly
// (the struct is ints, bools, strings and Durations — no floats), so the
// final result payload rebuilt from stored outcomes matches an
// uninterrupted run byte for byte.
//
// FileStore, the on-disk implementation, never rewrites: appends go
// straight to the files with no fsync — surviving SIGKILL of the process
// only needs the OS page cache, which outlives it. A line torn by a
// machine-level crash is detected on load (no trailing newline) and
// truncated away; at most one segment of replications re-executes.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// StoredSpec is the durable record of an accepted sweep: enough to re-admit
// and re-execute it after a restart.
type StoredSpec struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Tenant string          `json:"tenant"`
	Reps   int             `json:"reps"`
	Pool   int             `json:"workers,omitempty"`
	Config json.RawMessage `json:"config"`
}

// StoredJob is one recovered job: its spec plus both journals' complete
// lines (torn trailing lines already truncated).
type StoredJob struct {
	Spec     StoredSpec
	Stream   [][]byte
	Outcomes [][]byte
}

// JobStore persists sweep jobs across restarts. Implementations must be
// safe for concurrent use and must only ever append to a job's journals —
// recovery depends on prefixes staying immutable.
type JobStore interface {
	// PutSpec persists a new job's spec.
	PutSpec(spec StoredSpec) error
	// AppendStream appends one NDJSON line (no trailing newline) to the
	// job's stream journal.
	AppendStream(id string, line []byte) error
	// AppendOutcomes appends outcome JSON lines (no trailing newlines) to
	// the job's outcomes journal.
	AppendOutcomes(id string, lines [][]byte) error
	// Load recovers every stored job, truncating torn trailing lines.
	Load() ([]StoredJob, error)
	// Remove deletes a job's artifacts (retention eviction).
	Remove(id string) error
}

// FileStore is the on-disk JobStore: <dir>/<id>.spec.json,
// <dir>/<id>.stream.ndjson, <dir>/<id>.outcomes.ndjson.
type FileStore struct {
	dir string

	mu      sync.Mutex
	writers map[string]*os.File // open appenders, keyed "<id>.<journal>"
}

// NewFileStore opens (creating if needed) a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, writers: make(map[string]*os.File)}, nil
}

// Dir reports the store root.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) path(id, suffix string) string {
	return filepath.Join(fs.dir, id+"."+suffix)
}

// PutSpec persists a new job's spec.
func (fs *FileStore) PutSpec(spec StoredSpec) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	return os.WriteFile(fs.path(spec.ID, "spec.json"), b, 0o644)
}

func (fs *FileStore) appender(id, suffix string) (*os.File, error) {
	key := id + "." + suffix
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.writers[key]; ok {
		return f, nil
	}
	f, err := os.OpenFile(fs.path(id, suffix), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fs.writers[key] = f
	return f, nil
}

// AppendStream appends one stream-journal line.
func (fs *FileStore) AppendStream(id string, line []byte) error {
	f, err := fs.appender(id, "stream.ndjson")
	if err != nil {
		return err
	}
	_, err = f.Write(append(append(make([]byte, 0, len(line)+1), line...), '\n'))
	return err
}

// AppendOutcomes appends outcome lines as one write.
func (fs *FileStore) AppendOutcomes(id string, lines [][]byte) error {
	f, err := fs.appender(id, "outcomes.ndjson")
	if err != nil {
		return err
	}
	var buf []byte
	for _, l := range lines {
		buf = append(buf, l...)
		buf = append(buf, '\n')
	}
	_, err = f.Write(buf)
	return err
}

// loadLines reads a journal's complete lines; a torn trailing line (no
// newline) is truncated off the file so subsequent appends stay aligned.
func loadLines(path string) ([][]byte, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	keep := len(b)
	for keep > 0 && b[keep-1] != '\n' {
		keep--
	}
	if keep < len(b) {
		if err := os.Truncate(path, int64(keep)); err != nil {
			return nil, err
		}
		b = b[:keep]
	}
	var lines [][]byte
	for len(b) > 0 {
		nl := 0
		for nl < len(b) && b[nl] != '\n' {
			nl++
		}
		lines = append(lines, b[:nl:nl])
		b = b[nl+1:]
	}
	return lines, nil
}

// Load recovers every stored job in id order.
func (fs *FileStore) Load() ([]StoredJob, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".spec.json"); ok {
			ids = append(ids, name)
		}
	}
	// Jobs are j-<n>; recover them in submission order so the registry
	// lists them the way an uninterrupted server would.
	sort.Slice(ids, func(i, j int) bool {
		return jobSeq(ids[i]) < jobSeq(ids[j])
	})
	jobs := make([]StoredJob, 0, len(ids))
	for _, id := range ids {
		b, err := os.ReadFile(fs.path(id, "spec.json"))
		if err != nil {
			return nil, err
		}
		var spec StoredSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			return nil, fmt.Errorf("serve: store: corrupt spec %s: %w", id, err)
		}
		stream, err := loadLines(fs.path(id, "stream.ndjson"))
		if err != nil {
			return nil, err
		}
		outcomes, err := loadLines(fs.path(id, "outcomes.ndjson"))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, StoredJob{Spec: spec, Stream: stream, Outcomes: outcomes})
	}
	return jobs, nil
}

// Remove deletes a job's artifacts and closes its appenders.
func (fs *FileStore) Remove(id string) error {
	fs.mu.Lock()
	for _, suffix := range []string{"stream.ndjson", "outcomes.ndjson"} {
		if f, ok := fs.writers[id+"."+suffix]; ok {
			f.Close()
			delete(fs.writers, id+"."+suffix)
		}
	}
	fs.mu.Unlock()
	var first error
	for _, suffix := range []string{"spec.json", "stream.ndjson", "outcomes.ndjson"} {
		if err := os.Remove(fs.path(id, suffix)); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every open appender (the files are append-only, so this is
// bookkeeping, not durability).
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for k, f := range fs.writers {
		f.Close()
		delete(fs.writers, k)
	}
	return nil
}

// jobSeq extracts n from "j-<n>" (0 for anything else).
func jobSeq(id string) uint64 {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}
