package cluster

import (
	"testing"
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

func TestHeadAdmitsAdjacentFailoverJoin(t *testing.T) {
	hh := newHeadHarness(t, 2) // covers [1000, 2000)
	// A failover join from the next segment over is admitted...
	hh.head.HandlePacket(&wire.JoinReq{Vehicle: 21, PosX: 2500, PosY: 100, Failover: true}, 21)
	if !hh.head.IsMember(21) {
		t.Fatal("adjacent failover join not admitted")
	}
	if hh.head.Stats().FailoverJoins != 1 {
		t.Errorf("FailoverJoins = %d, want 1", hh.head.Stats().FailoverJoins)
	}
	// ...but not from two segments away: that vehicle has a nearer neighbour.
	hh.head.HandlePacket(&wire.JoinReq{Vehicle: 22, PosX: 4500, PosY: 100, Failover: true}, 22)
	if hh.head.IsMember(22) {
		t.Error("far failover join admitted; only adjacent segments may fail over")
	}
	if hh.head.Stats().RejectedJoins != 1 {
		t.Errorf("RejectedJoins = %d, want 1", hh.head.Stats().RejectedJoins)
	}
}

// silentClient wires a Client to a sender that records join requests and
// never answers.
func silentClient(t *testing.T) (*Client, *sim.Scheduler, *[]wire.JoinReq) {
	t.Helper()
	hw := testHighway(t)
	sched := sim.NewScheduler()
	mob, err := mobility.NewMobile(hw, mobility.Position{X: 1500, Y: 50}, mobility.Eastbound, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []wire.JoinReq
	send := func(to wire.NodeID, payload []byte) {
		if p, err := wire.Decode(payload); err == nil {
			if jr, ok := p.(*wire.JoinReq); ok {
				reqs = append(reqs, *jr)
			}
		}
	}
	c := NewClient(sched, hw, mob, 1000, send, func() wire.NodeID { return 21 }, ClientCallbacks{})
	return c, sched, &reqs
}

func TestClientEscalatesToFailoverWhenUnanswered(t *testing.T) {
	c, sched, reqs := silentClient(t)
	c.Start()
	sched.RunFor(6 * time.Second) // initial + retries at 1s intervals
	if len(*reqs) < failoverAfter+2 {
		t.Fatalf("only %d join requests sent", len(*reqs))
	}
	for i, r := range *reqs {
		want := i >= failoverAfter
		if r.Failover != want {
			t.Errorf("request %d: Failover = %v, want %v", i, r.Failover, want)
		}
	}
	c.Stop()
}

func TestClientRejoinRaisesFailoverFlag(t *testing.T) {
	c, sched, reqs := silentClient(t)
	c.Start()
	// Admit on the first request.
	c.HandlePacket(&wire.JoinRep{Head: 1002, Cluster: 2, Vehicle: 21}, 1002)
	if c.Cluster() != 2 {
		t.Fatal("client did not register")
	}
	// The detection layer gives up on the head.
	c.Rejoin()
	if c.Cluster() != 0 {
		t.Error("Rejoin left the stale registration in place")
	}
	last := (*reqs)[len(*reqs)-1]
	if !last.Failover {
		t.Error("post-Rejoin join request does not carry the failover flag")
	}
	// An adjacent head admits; the flag resets for future cycles.
	c.HandlePacket(&wire.JoinRep{Head: 1003, Cluster: 3, Vehicle: 21}, 1003)
	if c.Head() != 1003 {
		t.Errorf("client head = %v, want 1003", c.Head())
	}
	if got := c.Stats().FailoverJoins; got != 1 {
		t.Errorf("FailoverJoins = %d, want 1", got)
	}
	sched.RunFor(time.Millisecond)
	c.Stop()
}

func TestClientIgnoresCompetingJoinReply(t *testing.T) {
	c, _, _ := silentClient(t)
	c.Start()
	c.HandlePacket(&wire.JoinRep{Head: 1002, Cluster: 2, Vehicle: 21}, 1002)
	// A second head's late answer (both heard a failover broadcast) must not
	// flip the registration.
	c.HandlePacket(&wire.JoinRep{Head: 1003, Cluster: 3, Vehicle: 21}, 1003)
	if c.Head() != 1002 || c.Cluster() != 2 {
		t.Errorf("registration flip-flopped to head %v cluster %d", c.Head(), c.Cluster())
	}
	c.Stop()
}

func TestBlacklistNoticeOrderIsRevocationOrder(t *testing.T) {
	hh := newHeadHarness(t, 2)
	serials := []uint64{900, 300, 700} // deliberately unsorted
	for i, s := range serials {
		hh.head.AddRevoked(wire.RevokedCert{
			Node: wire.NodeID(40 + i), CertSerial: s, Expiry: time.Hour,
		})
	}
	var last *wire.BlacklistNotice
	for _, m := range hh.sent {
		if n, ok := m.pkt.(*wire.BlacklistNotice); ok {
			last = n
		}
	}
	if last == nil {
		t.Fatal("no blacklist notice broadcast")
	}
	if len(last.Revoked) != len(serials) {
		t.Fatalf("notice carries %d entries, want %d", len(last.Revoked), len(serials))
	}
	for i, rc := range last.Revoked {
		if rc.CertSerial != serials[i] {
			t.Errorf("notice entry %d serial = %d, want %d (revocation order)", i, rc.CertSerial, serials[i])
		}
	}
	bl := hh.head.Blacklist()
	for i, rc := range bl {
		if rc.CertSerial != serials[i] {
			t.Errorf("Blacklist()[%d] = %d, want %d", i, rc.CertSerial, serials[i])
		}
	}
}
