// Package cluster implements the paper's static highway clustering: Road
// Side Units acting as cluster heads (membership tables, join/leave
// handling, history tables, blacklist dissemination) and the vehicle-side
// membership client that joins the cluster covering its position and
// re-registers as it crosses cluster boundaries.
package cluster

import (
	"fmt"

	"blackdp/internal/wire"
)

// Directory is the provisioned map of the infrastructure: which head serves
// each cluster and which Trusted Authority serves each head. RSUs are
// deployed at fixed positions by the road operator, so every infrastructure
// node knows this layout a priori; vehicles learn head identities from join
// replies.
type Directory struct {
	heads       map[wire.ClusterID]wire.NodeID
	clusters    map[wire.NodeID]wire.ClusterID
	authorities map[wire.ClusterID]wire.NodeID // cluster -> TA node id
	taIDs       map[wire.NodeID]wire.AuthorityID

	// neighbors, when set, supplies topology-aware cluster adjacency for
	// AdjacentHeads (2D meshes have more neighbors than c±1). Unset, the
	// directory keeps the highway's consecutive-cluster default.
	neighbors func(c wire.ClusterID) []wire.ClusterID
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		heads:       make(map[wire.ClusterID]wire.NodeID),
		clusters:    make(map[wire.NodeID]wire.ClusterID),
		authorities: make(map[wire.ClusterID]wire.NodeID),
		taIDs:       make(map[wire.NodeID]wire.AuthorityID),
	}
}

// AddHead registers the head node serving a cluster.
func (d *Directory) AddHead(c wire.ClusterID, head wire.NodeID) error {
	if c == 0 || head == wire.Broadcast {
		return fmt.Errorf("cluster: invalid head registration (%v, %v)", c, head)
	}
	if existing, ok := d.heads[c]; ok && existing != head {
		return fmt.Errorf("cluster: cluster %d already served by %v", c, existing)
	}
	d.heads[c] = head
	d.clusters[head] = c
	return nil
}

// AddAuthority registers the TA node (with its authority id) responsible
// for a cluster.
func (d *Directory) AddAuthority(c wire.ClusterID, node wire.NodeID, id wire.AuthorityID) error {
	if c == 0 || node == wire.Broadcast || id == 0 {
		return fmt.Errorf("cluster: invalid authority registration (%v, %v, %v)", c, node, id)
	}
	d.authorities[c] = node
	d.taIDs[node] = id
	return nil
}

// HeadOf returns the head node serving cluster c.
func (d *Directory) HeadOf(c wire.ClusterID) (wire.NodeID, bool) {
	h, ok := d.heads[c]
	return h, ok
}

// ClusterOf returns the cluster served by head node id.
func (d *Directory) ClusterOf(head wire.NodeID) (wire.ClusterID, bool) {
	c, ok := d.clusters[head]
	return c, ok
}

// AuthorityOf returns the TA node responsible for cluster c.
func (d *Directory) AuthorityOf(c wire.ClusterID) (wire.NodeID, bool) {
	a, ok := d.authorities[c]
	return a, ok
}

// IsHead reports whether id is a registered cluster head.
func (d *Directory) IsHead(id wire.NodeID) bool {
	_, ok := d.clusters[id]
	return ok
}

// Heads returns the number of registered heads.
func (d *Directory) Heads() int { return len(d.heads) }

// SetNeighbors installs a topology-aware adjacency source for AdjacentHeads.
// The function must return neighbor clusters in ascending order so failover
// probing stays deterministic.
func (d *Directory) SetNeighbors(fn func(c wire.ClusterID) []wire.ClusterID) {
	d.neighbors = fn
}

// AdjacentHeads returns the head nodes of the clusters adjacent to c: by
// default the consecutive clusters c-1, c+1 (one or two, at the highway
// ends), or whatever SetNeighbors supplies for mesh topologies.
func (d *Directory) AdjacentHeads(c wire.ClusterID) []wire.NodeID {
	var out []wire.NodeID
	if d.neighbors != nil {
		for _, n := range d.neighbors(c) {
			if h, ok := d.heads[n]; ok {
				out = append(out, h)
			}
		}
		return out
	}
	if h, ok := d.heads[c-1]; ok {
		out = append(out, h)
	}
	if h, ok := d.heads[c+1]; ok {
		out = append(out, h)
	}
	return out
}

// AuthorityNodes returns every distinct TA node in the directory.
func (d *Directory) AuthorityNodes() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(d.taIDs))
	for n := range d.taIDs {
		out = append(out, n)
	}
	return out
}
