package cluster

import (
	"testing"
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/wire"
)

func TestClientJoinsFromOverlapZone(t *testing.T) {
	// A vehicle at a cluster boundary is within radio range of two heads;
	// its join request is marked Overlapped and broadcast, and exactly the
	// covering head admits it.
	ch := newClientHarness(t, 1001, 20, mobility.Eastbound)
	ch.client.Start()
	ch.sched.RunFor(time.Second)

	if ch.client.Cluster() != 2 {
		t.Fatalf("joined cluster %d, want 2 (position 1001 m)", ch.client.Cluster())
	}
	if ch.heads[1].IsMember(21) {
		t.Error("non-covering head admitted the vehicle")
	}
	if !ch.heads[2].IsMember(21) {
		t.Error("covering head did not admit the vehicle")
	}
	// Both heads saw the broadcast; head 1 must have rejected it.
	if ch.heads[1].Stats().RejectedJoins == 0 {
		t.Error("non-covering head never saw (and rejected) the overlapped join")
	}
}

func TestOverlappedFlagSetAtBoundary(t *testing.T) {
	hw := testHighway(t)
	// x=1000 is equidistant (500 m) from the heads of clusters 1 and 2.
	if !hw.OverlapZone(1000, 1000) {
		t.Fatal("boundary not an overlap zone")
	}
	// Deep inside a cluster only one head is reachable.
	if hw.OverlapZone(450, 1000) {
		t.Error("cluster interior flagged as overlap zone")
	}
}

func TestClientTraversesWholeHighway(t *testing.T) {
	// A fast vehicle crossing many clusters re-registers at every boundary
	// and ends registered where it stands.
	ch := newClientHarness(t, 100, 25, mobility.Eastbound)
	ch.client.Start()
	ch.sched.RunFor(200 * time.Second) // 100 + 5000 m -> cluster 6

	wantCluster := wire.ClusterID(ch.mobile.ClusterAt(ch.sched.Now()))
	if ch.client.Cluster() != wantCluster {
		t.Errorf("registered in cluster %d, physically in %d", ch.client.Cluster(), wantCluster)
	}
	st := ch.client.Stats()
	if st.Leaves < 4 {
		t.Errorf("only %d leaves after crossing ~5 boundaries", st.Leaves)
	}
	if st.Joins != st.Leaves+1 {
		t.Errorf("joins (%d) != leaves (%d) + 1", st.Joins, st.Leaves)
	}
	// Every head it passed keeps a history record.
	for c := wire.ClusterID(1); c < wantCluster; c++ {
		if !ch.heads[c].InHistory(21) {
			t.Errorf("head %d lost the traversal history", c)
		}
	}
}

func TestClientLeavesHighwayCleanly(t *testing.T) {
	// A westbound vehicle exits at x=0: it sends its final Leave and never
	// rejoins.
	ch := newClientHarness(t, 300, 25, mobility.Westbound)
	ch.client.Start()
	ch.sched.RunFor(30 * time.Second) // exits at t=12s
	if ch.client.Cluster() != 0 {
		t.Errorf("registered in cluster %d after leaving the highway", ch.client.Cluster())
	}
	if ch.heads[1].IsMember(21) {
		t.Error("departed vehicle still a member")
	}
}
