package cluster

import (
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// ClientCallbacks are upcalls from the membership client.
type ClientCallbacks struct {
	// Joined fires when a join reply admits the vehicle to a cluster.
	Joined func(c wire.ClusterID, head wire.NodeID)
	// BlacklistUpdated fires when a blacklist notice adds new entries.
	BlacklistUpdated func(added []wire.RevokedCert)
}

// Client is the vehicle-side membership state machine: it registers with
// the cluster head covering its position, re-registers as the vehicle
// crosses cluster boundaries (Leave + JoinReq, per the paper), and tracks
// the blacklist its heads advertise.
type Client struct {
	sched   sim.Runtime
	topo    mobility.Topology
	mobile  *mobility.Mobile
	send    Sender
	self    func() wire.NodeID // current pseudonym (rotates on renewal)
	txRange float64
	cb      ClientCallbacks

	cluster   wire.ClusterID
	head      wire.NodeID
	blacklist map[wire.NodeID]wire.RevokedCert

	unanswered int  // consecutive join broadcasts without a reply
	failover   bool // soliciting adjacent heads because ours stopped answering

	retryTimer    sim.Timer
	boundaryTimer sim.Timer
	stopped       bool
	stats         ClientStats

	// Reusable timer callbacks: built once so rescheduling join retries and
	// boundary crossings does not allocate a method value per event.
	requestJoinFn   func()
	crossBoundaryFn func()
}

// ClientStats counts membership client activity.
type ClientStats struct {
	JoinRequests  uint64
	Joins         uint64
	Leaves        uint64
	FailoverJoins uint64 // joins completed under the failover flag
}

// joinRetry is how long the client waits for a join reply before
// rebroadcasting its request.
const joinRetry = time.Second

// failoverAfter is how many consecutive unanswered join broadcasts make the
// client solicit adjacent heads: the covering head is presumed dead.
const failoverAfter = 3

// NewClient creates a membership client for a vehicle moving as mobile on
// topo, transmitting with send and identifying itself with self().
func NewClient(sched sim.Runtime, topo mobility.Topology, mobile *mobility.Mobile, txRange float64, send Sender, self func() wire.NodeID, cb ClientCallbacks) *Client {
	if sched == nil || topo == nil || mobile == nil || send == nil || self == nil {
		panic("cluster: NewClient requires scheduler, topology, mobile, sender and identity")
	}
	c := &Client{
		sched:     sched,
		topo:      topo,
		mobile:    mobile,
		send:      send,
		self:      self,
		txRange:   txRange,
		cb:        cb,
		blacklist: make(map[wire.NodeID]wire.RevokedCert),
	}
	c.requestJoinFn = c.requestJoin
	c.crossBoundaryFn = c.crossBoundary
	return c
}

// Start broadcasts the initial join request.
func (c *Client) Start() { c.requestJoin() }

// Stop cancels timers; the client ignores further packets.
func (c *Client) Stop() {
	c.stopped = true
	c.retryTimer.Stop()
	c.boundaryTimer.Stop()
}

// Cluster returns the cluster the vehicle is registered in (0 before the
// first join completes).
func (c *Client) Cluster() wire.ClusterID { return c.cluster }

// Head returns the registered cluster head's pseudonym.
func (c *Client) Head() wire.NodeID { return c.head }

// Stats returns a snapshot of activity counters.
func (c *Client) Stats() ClientStats { return c.stats }

// IsBlacklisted reports whether the pseudonym is on the blacklist the
// vehicle has learned from its heads.
func (c *Client) IsBlacklisted(id wire.NodeID) bool {
	_, ok := c.blacklist[id]
	return ok
}

// BlacklistSize returns the number of revocations known to the vehicle.
func (c *Client) BlacklistSize() int { return len(c.blacklist) }

func (c *Client) requestJoin() {
	if c.stopped || !c.mobile.OnHighwayAt(c.sched.Now()) {
		return
	}
	now := c.sched.Now()
	pos := c.mobile.PositionAt(now)
	if c.unanswered >= failoverAfter {
		// The covering head never answered; start soliciting neighbours.
		c.failover = true
	}
	req := &wire.JoinReq{
		Vehicle:    c.self(),
		PosX:       pos.X,
		PosY:       pos.Y,
		SpeedMS:    c.mobile.Speed(),
		Eastbound:  c.mobile.Direction() == mobility.Eastbound,
		Overlapped: len(c.topo.ClustersNear(pos, c.txRange)) > 1,
		Failover:   c.failover,
	}
	b, err := req.MarshalBinary()
	if err != nil {
		panic("cluster: marshalling JoinReq: " + err.Error())
	}
	c.send(wire.Broadcast, b)
	c.stats.JoinRequests++
	c.unanswered++
	c.retryTimer.Stop()
	c.retryTimer = c.sched.After(joinRetry, c.requestJoinFn)
}

// Rejoin deregisters and immediately solicits a new head with the failover
// flag raised: the vehicle's detection layer calls it when the registered
// head has stopped answering, so adjacent heads may admit the vehicle even
// though its position is outside their segment.
func (c *Client) Rejoin() {
	if c.stopped {
		return
	}
	c.cluster = 0
	c.head = wire.Broadcast
	c.failover = true
	c.requestJoin()
}

// HandlePacket processes membership packets addressed to this vehicle,
// reporting whether the packet was one it owns.
func (c *Client) HandlePacket(p wire.Packet, from wire.NodeID) bool {
	if c.stopped {
		return false
	}
	switch pkt := p.(type) {
	case *wire.JoinRep:
		if pkt.Vehicle != c.self() {
			return true // overheard someone else's admission
		}
		if c.cluster != 0 && pkt.Head != c.head {
			// Already registered; a late admission from a second head (two
			// neighbours both answered a failover broadcast) must not
			// flip-flop the registration.
			return true
		}
		c.retryTimer.Stop()
		if c.failover {
			c.stats.FailoverJoins++
		}
		c.unanswered = 0
		c.failover = false
		c.cluster = pkt.Cluster
		c.head = pkt.Head
		c.stats.Joins++
		c.scheduleBoundaryCrossing()
		if c.cb.Joined != nil {
			c.cb.Joined(pkt.Cluster, pkt.Head)
		}
		return true
	case *wire.BlacklistNotice:
		var added []wire.RevokedCert
		for _, rc := range pkt.Revoked {
			if _, known := c.blacklist[rc.Node]; !known {
				c.blacklist[rc.Node] = rc
				added = append(added, rc)
			}
		}
		if len(added) > 0 && c.cb.BlacklistUpdated != nil {
			c.cb.BlacklistUpdated(added)
		}
		return true
	default:
		return false
	}
}

// scheduleBoundaryCrossing arms a timer for the moment the vehicle exits
// its current cluster, at which point it sends Leave plus a fresh JoinReq.
func (c *Client) scheduleBoundaryCrossing() {
	c.boundaryTimer.Stop()
	rect := c.topo.ClusterRect(int(c.cluster))
	lo, hi := rect.X0, rect.X1
	if c.mobile.Axis() == mobility.AxisY {
		lo, hi = rect.Y0, rect.Y1
	}
	edge := hi
	if c.mobile.Direction() == mobility.Westbound {
		edge = lo
	}
	at, ok := c.mobile.TimeToReach(edge)
	if !ok {
		return // stationary or already exited
	}
	const nudge = 50 * time.Millisecond
	if wlo, whi := c.mobile.TravelBounds(); edge <= wlo || edge >= whi {
		// The boundary is the end of the road: deregister just before
		// driving out of radio coverage.
		at -= nudge
	} else {
		// Cross strictly past the boundary so the next head accepts the
		// reported position.
		at += nudge
	}
	if at < c.sched.Now() {
		at = c.sched.Now()
	}
	c.boundaryTimer = c.sched.At(at, c.crossBoundaryFn)
}

func (c *Client) crossBoundary() {
	if c.stopped {
		return
	}
	now := c.sched.Now()
	leave := &wire.Leave{Vehicle: c.self(), Cluster: c.cluster}
	b, err := leave.MarshalBinary()
	if err != nil {
		panic("cluster: marshalling Leave: " + err.Error())
	}
	c.send(c.head, b)
	c.stats.Leaves++
	c.cluster = 0
	c.head = wire.Broadcast
	if dep, ok := c.mobile.DepartureTime(); ok && dep <= now+time.Second {
		return // driving off the highway; stay deregistered
	}
	if c.mobile.OnHighwayAt(now) {
		c.requestJoin()
	}
}
