package cluster

import (
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// Member is one vehicle registered with a cluster head.
type Member struct {
	Node     wire.NodeID
	Joined   time.Duration
	LastPos  mobility.Position
	SpeedMS  float64
	East     bool
	LastSeen time.Duration
}

// Sender transmits a marshalled packet over the head's radio;
// *radio.Interface's Send method satisfies it.
type Sender func(to wire.NodeID, payload []byte)

// HeadCallbacks are upcalls from membership handling.
type HeadCallbacks struct {
	// MemberJoined fires after a join reply is sent.
	MemberJoined func(m Member)
	// MemberLeft fires when a member leaves (explicitly or pruned).
	MemberLeft func(node wire.NodeID)
}

// Head is the membership state machine of one RSU cluster head: the routing
// (member) table, the history table of departed members, and the blacklist
// of revoked certificates it must keep advertising until they expire.
type Head struct {
	id      wire.NodeID
	cluster wire.ClusterID
	topo    mobility.Topology
	sched   sim.Runtime
	send    Sender
	cb      HeadCallbacks

	members    map[wire.NodeID]*Member
	history    map[wire.NodeID]Member
	blacklist  map[uint64]wire.RevokedCert // by certificate serial
	blackIDs   map[wire.NodeID]uint64      // pseudonym -> serial
	blackOrder []uint64                    // serials in revocation order, for deterministic notices

	// memberTTL prunes members that silently left (fled the highway).
	memberTTL time.Duration
	stats     HeadStats
}

// HeadStats counts membership activity.
type HeadStats struct {
	Joins            uint64
	Rejoins          uint64
	Leaves           uint64
	RejectedJoins    uint64
	FailoverJoins    uint64 // out-of-segment vehicles admitted under the failover flag
	BlacklistNotices uint64
	Pruned           uint64
}

// NewHead creates the head for cluster c of topo, transmitting with send.
func NewHead(id wire.NodeID, c wire.ClusterID, topo mobility.Topology, sched sim.Runtime, send Sender, cb HeadCallbacks) *Head {
	if id == wire.Broadcast || c == 0 || topo == nil || sched == nil || send == nil {
		panic("cluster: NewHead requires id, cluster, topology, scheduler and sender")
	}
	return &Head{
		id:        id,
		cluster:   c,
		topo:      topo,
		sched:     sched,
		send:      send,
		cb:        cb,
		members:   make(map[wire.NodeID]*Member),
		history:   make(map[wire.NodeID]Member),
		blacklist: make(map[uint64]wire.RevokedCert),
		blackIDs:  make(map[wire.NodeID]uint64),
		memberTTL: 30 * time.Second,
	}
}

// ID returns the head's pseudonym.
func (h *Head) ID() wire.NodeID { return h.id }

// Cluster returns the cluster the head serves.
func (h *Head) Cluster() wire.ClusterID { return h.cluster }

// Stats returns a snapshot of membership counters.
func (h *Head) Stats() HeadStats { return h.stats }

// HandlePacket processes membership packets, reporting whether the packet
// was one it owns. Unhandled kinds belong to other layers.
func (h *Head) HandlePacket(p wire.Packet, from wire.NodeID) bool {
	switch pkt := p.(type) {
	case *wire.JoinReq:
		h.handleJoin(pkt)
		return true
	case *wire.Leave:
		h.handleLeave(pkt)
		return true
	default:
		return false
	}
}

func (h *Head) handleJoin(p *wire.JoinReq) {
	pos := mobility.Position{X: p.PosX, Y: p.PosY}
	// Accept only vehicles whose reported position falls in this head's
	// segment; in an overlapped zone several heads hear the broadcast and
	// exactly the covering one accepts (paper SIII-A). A failover join — the
	// vehicle's own head stopped answering — may be admitted by a head one
	// segment over, so detection service survives a crashed RSU.
	seg := h.topo.ClusterOf(pos)
	if seg != int(h.cluster) {
		adjacent := h.topo.Adjacent(seg, int(h.cluster))
		if !p.Failover || !adjacent {
			h.stats.RejectedJoins++
			return
		}
		h.stats.FailoverJoins++
	}
	now := h.sched.Now()
	if m, ok := h.members[p.Vehicle]; ok {
		m.LastPos = pos
		m.SpeedMS = p.SpeedMS
		m.East = p.Eastbound
		m.LastSeen = now
		h.stats.Rejoins++
	} else {
		h.members[p.Vehicle] = &Member{
			Node:     p.Vehicle,
			Joined:   now,
			LastPos:  pos,
			SpeedMS:  p.SpeedMS,
			East:     p.Eastbound,
			LastSeen: now,
		}
		h.stats.Joins++
	}
	rep := &wire.JoinRep{Head: h.id, Cluster: h.cluster, Vehicle: p.Vehicle}
	b, err := rep.MarshalBinary()
	if err != nil {
		panic("cluster: marshalling JoinRep: " + err.Error())
	}
	h.send(p.Vehicle, b)
	// Newly joined vehicles must learn the live blacklist immediately so
	// they neither route via attackers nor file redundant reports.
	h.sendBlacklistTo(p.Vehicle)
	if h.cb.MemberJoined != nil {
		h.cb.MemberJoined(*h.members[p.Vehicle])
	}
}

func (h *Head) handleLeave(p *wire.Leave) {
	m, ok := h.members[p.Vehicle]
	if !ok {
		return
	}
	delete(h.members, p.Vehicle)
	h.history[p.Vehicle] = *m
	h.stats.Leaves++
	if h.cb.MemberLeft != nil {
		h.cb.MemberLeft(p.Vehicle)
	}
}

// IsMember reports whether the pseudonym is currently registered here.
func (h *Head) IsMember(id wire.NodeID) bool {
	_, ok := h.members[id]
	return ok
}

// MemberCount returns the number of registered members.
func (h *Head) MemberCount() int { return len(h.members) }

// Member returns the registration record for id.
func (h *Head) Member(id wire.NodeID) (Member, bool) {
	m, ok := h.members[id]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// InHistory reports whether the pseudonym recently left this cluster.
func (h *Head) InHistory(id wire.NodeID) bool {
	_, ok := h.history[id]
	return ok
}

// HistoryRecord returns the departed member's last known record.
func (h *Head) HistoryRecord(id wire.NodeID) (Member, bool) {
	m, ok := h.history[id]
	return m, ok
}

// Touch refreshes a member's liveness (any packet heard from it).
func (h *Head) Touch(id wire.NodeID) {
	if m, ok := h.members[id]; ok {
		m.LastSeen = h.sched.Now()
	}
}

// AddRevoked records a revoked certificate and broadcasts the updated
// blacklist to the cluster (the paper's "report the existing and
// newly-joined vehicles about the recent revoked certificate").
func (h *Head) AddRevoked(rc wire.RevokedCert) {
	if _, known := h.blacklist[rc.CertSerial]; known {
		return
	}
	h.blacklist[rc.CertSerial] = rc
	h.blackIDs[rc.Node] = rc.CertSerial
	h.blackOrder = append(h.blackOrder, rc.CertSerial)
	// The attacker is no longer a legitimate member.
	if _, ok := h.members[rc.Node]; ok {
		delete(h.members, rc.Node)
		if h.cb.MemberLeft != nil {
			h.cb.MemberLeft(rc.Node)
		}
	}
	h.sendBlacklistTo(wire.Broadcast)
}

// IsBlacklisted reports whether the pseudonym has a live revocation record
// here.
func (h *Head) IsBlacklisted(id wire.NodeID) bool {
	_, ok := h.blackIDs[id]
	return ok
}

// BlacklistSize returns the number of live revocation records.
func (h *Head) BlacklistSize() int { return len(h.blacklist) }

// Blacklist returns the live revocation records in revocation order.
func (h *Head) Blacklist() []wire.RevokedCert {
	out := make([]wire.RevokedCert, 0, len(h.blacklist))
	for _, serial := range h.blackOrder {
		if rc, live := h.blacklist[serial]; live {
			out = append(out, rc)
		}
	}
	return out
}

func (h *Head) sendBlacklistTo(to wire.NodeID) {
	if len(h.blacklist) == 0 {
		return
	}
	// Iterate in revocation order, not map order: the notice's bytes must be
	// identical across runs for replay determinism.
	notice := &wire.BlacklistNotice{Head: h.id, Cluster: h.cluster, Revoked: h.Blacklist()}
	b, err := notice.MarshalBinary()
	if err != nil {
		panic("cluster: marshalling BlacklistNotice: " + err.Error())
	}
	h.send(to, b)
	h.stats.BlacklistNotices++
}

// Prune drops silent members to history, expired history records, and
// expired blacklist entries ("remove them once they expired to avoid
// reporting expired information and reduce storage overhead").
func (h *Head) Prune() {
	now := h.sched.Now()
	for id, m := range h.members {
		if now-m.LastSeen >= h.memberTTL {
			delete(h.members, id)
			h.history[id] = *m
			h.stats.Pruned++
			if h.cb.MemberLeft != nil {
				h.cb.MemberLeft(id)
			}
		}
	}
	expiredBlack := false
	for serial, rc := range h.blacklist {
		if rc.Expiry <= now {
			delete(h.blacklist, serial)
			delete(h.blackIDs, rc.Node)
			expiredBlack = true
		}
	}
	if expiredBlack {
		live := h.blackOrder[:0]
		for _, serial := range h.blackOrder {
			if _, ok := h.blacklist[serial]; ok {
				live = append(live, serial)
			}
		}
		h.blackOrder = live
	}
	for id, m := range h.history {
		if now-m.LastSeen >= 10*h.memberTTL {
			delete(h.history, id)
		}
	}
}
