package cluster

import (
	"testing"
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/radio"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

func testHighway(t *testing.T) *mobility.Highway {
	t.Helper()
	h, err := mobility.NewHighway(10_000, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	for c := wire.ClusterID(1); c <= 10; c++ {
		if err := d.AddHead(c, wire.NodeID(1000+uint64(c))); err != nil {
			t.Fatalf("AddHead(%d): %v", c, err)
		}
	}
	if err := d.AddAuthority(1, 2001, 1); err != nil {
		t.Fatalf("AddAuthority: %v", err)
	}
	if d.Heads() != 10 {
		t.Errorf("Heads() = %d, want 10", d.Heads())
	}
	h, ok := d.HeadOf(3)
	if !ok || h != 1003 {
		t.Errorf("HeadOf(3) = %v, %v", h, ok)
	}
	c, ok := d.ClusterOf(1003)
	if !ok || c != 3 {
		t.Errorf("ClusterOf(1003) = %v, %v", c, ok)
	}
	if !d.IsHead(1003) || d.IsHead(42) {
		t.Error("IsHead wrong")
	}
	a, ok := d.AuthorityOf(1)
	if !ok || a != 2001 {
		t.Errorf("AuthorityOf(1) = %v, %v", a, ok)
	}
	if _, ok := d.AuthorityOf(9); ok {
		t.Error("AuthorityOf(9) unexpectedly found")
	}

	adj := d.AdjacentHeads(1)
	if len(adj) != 1 || adj[0] != 1002 {
		t.Errorf("AdjacentHeads(1) = %v, want [1002]", adj)
	}
	adj = d.AdjacentHeads(5)
	if len(adj) != 2 || adj[0] != 1004 || adj[1] != 1006 {
		t.Errorf("AdjacentHeads(5) = %v, want [1004 1006]", adj)
	}

	if err := d.AddHead(3, 9999); err == nil {
		t.Error("conflicting AddHead accepted")
	}
	if err := d.AddHead(0, 1); err == nil {
		t.Error("cluster 0 accepted")
	}
	if err := d.AddAuthority(1, 2001, 0); err == nil {
		t.Error("authority id 0 accepted")
	}
}

// headHarness wires a Head to a recording sender.
type headHarness struct {
	head  *Head
	sched *sim.Scheduler
	sent  []struct {
		to  wire.NodeID
		pkt wire.Packet
	}
}

func newHeadHarness(t *testing.T, cluster wire.ClusterID) *headHarness {
	t.Helper()
	hw := testHighway(t)
	hh := &headHarness{sched: sim.NewScheduler()}
	send := func(to wire.NodeID, payload []byte) {
		p, err := wire.Decode(payload)
		if err != nil {
			t.Fatalf("head sent undecodable packet: %v", err)
		}
		hh.sent = append(hh.sent, struct {
			to  wire.NodeID
			pkt wire.Packet
		}{to, p})
	}
	hh.head = NewHead(wire.NodeID(1000+uint64(cluster)), cluster, hw, hh.sched, send, HeadCallbacks{})
	return hh
}

func (hh *headHarness) join(id wire.NodeID, x float64) {
	hh.head.HandlePacket(&wire.JoinReq{Vehicle: id, PosX: x, PosY: 100, SpeedMS: 20, Eastbound: true}, id)
}

func TestHeadAcceptsJoinInItsSegment(t *testing.T) {
	hh := newHeadHarness(t, 2) // covers [1000, 2000)
	hh.join(21, 1500)
	if !hh.head.IsMember(21) {
		t.Fatal("vehicle not admitted")
	}
	if len(hh.sent) != 1 {
		t.Fatalf("head sent %d packets, want 1 join reply", len(hh.sent))
	}
	rep, ok := hh.sent[0].pkt.(*wire.JoinRep)
	if !ok || rep.Vehicle != 21 || rep.Cluster != 2 || rep.Head != hh.head.ID() {
		t.Errorf("join reply = %+v", hh.sent[0].pkt)
	}
	if hh.sent[0].to != 21 {
		t.Errorf("reply addressed to %v, want 21", hh.sent[0].to)
	}
	m, ok := hh.head.Member(21)
	if !ok || m.LastPos.X != 1500 || m.SpeedMS != 20 {
		t.Errorf("member record = %+v", m)
	}
}

func TestHeadRejectsJoinOutsideSegment(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(21, 2500) // cluster 3 territory
	if hh.head.IsMember(21) {
		t.Error("vehicle admitted outside the segment")
	}
	if hh.head.Stats().RejectedJoins != 1 {
		t.Errorf("RejectedJoins = %d, want 1", hh.head.Stats().RejectedJoins)
	}
	if len(hh.sent) != 0 {
		t.Errorf("head replied to a foreign join: %+v", hh.sent)
	}
}

func TestHeadRejoinUpdatesRecord(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(21, 1100)
	hh.join(21, 1600)
	if hh.head.MemberCount() != 1 {
		t.Errorf("MemberCount = %d, want 1", hh.head.MemberCount())
	}
	m, _ := hh.head.Member(21)
	if m.LastPos.X != 1600 {
		t.Errorf("position not updated: %+v", m)
	}
	st := hh.head.Stats()
	if st.Joins != 1 || st.Rejoins != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeadLeaveMovesToHistory(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(21, 1500)
	hh.head.HandlePacket(&wire.Leave{Vehicle: 21, Cluster: 2}, 21)
	if hh.head.IsMember(21) {
		t.Error("member still registered after leave")
	}
	if !hh.head.InHistory(21) {
		t.Error("departed member not in history")
	}
	// Leave for a non-member is ignored.
	hh.head.HandlePacket(&wire.Leave{Vehicle: 99, Cluster: 2}, 99)
	if hh.head.Stats().Leaves != 1 {
		t.Errorf("Leaves = %d, want 1", hh.head.Stats().Leaves)
	}
}

func TestHeadBlacklistBroadcastAndJoinNotice(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(21, 1500)
	rc := wire.RevokedCert{Node: 66, CertSerial: 5, Expiry: time.Hour}
	hh.head.AddRevoked(rc)
	// Broadcast notice to current members.
	last := hh.sent[len(hh.sent)-1]
	bl, ok := last.pkt.(*wire.BlacklistNotice)
	if !ok || last.to != wire.Broadcast || len(bl.Revoked) != 1 || bl.Revoked[0].Node != 66 {
		t.Fatalf("blacklist broadcast = %+v to %v", last.pkt, last.to)
	}
	if !hh.head.IsBlacklisted(66) {
		t.Error("IsBlacklisted(66) = false")
	}
	// Duplicate revocations do not re-broadcast.
	n := len(hh.sent)
	hh.head.AddRevoked(rc)
	if len(hh.sent) != n {
		t.Error("duplicate revocation re-broadcast")
	}
	// A newly joining vehicle receives the blacklist unicast.
	hh.join(22, 1200)
	var gotNotice bool
	for _, s := range hh.sent[n:] {
		if _, ok := s.pkt.(*wire.BlacklistNotice); ok && s.to == 22 {
			gotNotice = true
		}
	}
	if !gotNotice {
		t.Error("new member did not receive the blacklist")
	}
}

func TestHeadRevokedMemberIsEjected(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(66, 1500)
	hh.head.AddRevoked(wire.RevokedCert{Node: 66, CertSerial: 5, Expiry: time.Hour})
	if hh.head.IsMember(66) {
		t.Error("revoked attacker still a member")
	}
}

func TestHeadPrune(t *testing.T) {
	hh := newHeadHarness(t, 2)
	hh.join(21, 1500)
	hh.head.AddRevoked(wire.RevokedCert{Node: 66, CertSerial: 5, Expiry: 10 * time.Second})

	// Member stays while touched.
	hh.sched.RunFor(20 * time.Second)
	hh.head.Touch(21)
	hh.sched.RunFor(20 * time.Second)
	hh.head.Touch(21)
	hh.head.Prune()
	if !hh.head.IsMember(21) {
		t.Error("live member pruned")
	}
	// Blacklist entry expired at 10s.
	if hh.head.BlacklistSize() != 0 {
		t.Errorf("BlacklistSize = %d after expiry, want 0", hh.head.BlacklistSize())
	}
	if hh.head.IsBlacklisted(66) {
		t.Error("expired revocation still blacklisted")
	}
	// Silent member pruned to history.
	hh.sched.RunFor(40 * time.Second)
	hh.head.Prune()
	if hh.head.IsMember(21) {
		t.Error("silent member not pruned")
	}
	if !hh.head.InHistory(21) {
		t.Error("pruned member not in history")
	}
}

// clientHarness runs a real medium with heads at every cluster centre and
// one vehicle client.
type clientHarness struct {
	sched  *sim.Scheduler
	medium *radio.Medium
	heads  map[wire.ClusterID]*Head
	client *Client
	mobile *mobility.Mobile
}

func newClientHarness(t *testing.T, startX float64, speed float64, dir mobility.Direction) *clientHarness {
	t.Helper()
	hw := testHighway(t)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	medium := radio.NewMedium(sched, rng.Split("radio"))
	ch := &clientHarness{sched: sched, medium: medium, heads: make(map[wire.ClusterID]*Head)}

	for c := 1; c <= hw.Clusters(); c++ {
		c := wire.ClusterID(c)
		id := wire.NodeID(1000 + uint64(c))
		head := new(Head)
		ifc := medium.Attach(id, mobility.Static{Pos: hw.ClusterCenter(int(c)), H: hw}, func(f radio.Frame) {
			p, err := wire.Decode(f.Payload)
			if err != nil {
				return
			}
			head.HandlePacket(p, f.From)
		})
		*head = *NewHead(id, c, hw, sched, func(to wire.NodeID, b []byte) { ifc.Send(to, b) }, HeadCallbacks{})
		ch.heads[c] = head
	}

	mob, err := mobility.NewMobile(hw, mobility.Position{X: startX, Y: 50}, dir, speed, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch.mobile = mob
	var client *Client
	ifc := medium.Attach(21, mob, func(f radio.Frame) {
		p, err := wire.Decode(f.Payload)
		if err != nil {
			return
		}
		client.HandlePacket(p, f.From)
	})
	client = NewClient(sched, hw, mob, medium.Range(), func(to wire.NodeID, b []byte) { ifc.Send(to, b) }, ifc.NodeID, ClientCallbacks{})
	ch.client = client
	return ch
}

func TestClientJoinsCoveringCluster(t *testing.T) {
	ch := newClientHarness(t, 1500, 20, mobility.Eastbound)
	ch.client.Start()
	ch.sched.RunFor(time.Second)
	if ch.client.Cluster() != 2 {
		t.Fatalf("client joined cluster %d, want 2", ch.client.Cluster())
	}
	if ch.client.Head() != 1002 {
		t.Errorf("client head = %v, want 1002", ch.client.Head())
	}
	if !ch.heads[2].IsMember(21) {
		t.Error("head 2 does not list the vehicle")
	}
}

func TestClientCrossesBoundary(t *testing.T) {
	// Start near the end of cluster 2, eastbound at 25 m/s: crosses into
	// cluster 3 (x=2000) after 4s.
	ch := newClientHarness(t, 1900, 25, mobility.Eastbound)
	ch.client.Start()
	ch.sched.RunFor(10 * time.Second)
	if ch.client.Cluster() != 3 {
		t.Fatalf("client in cluster %d after crossing, want 3", ch.client.Cluster())
	}
	if ch.heads[2].IsMember(21) {
		t.Error("old head still lists the vehicle")
	}
	if !ch.heads[2].InHistory(21) {
		t.Error("old head has no history record")
	}
	if !ch.heads[3].IsMember(21) {
		t.Error("new head does not list the vehicle")
	}
	st := ch.client.Stats()
	if st.Leaves != 1 || st.Joins != 2 {
		t.Errorf("client stats = %+v, want 1 leave 2 joins", st)
	}
}

func TestClientWestboundCrossing(t *testing.T) {
	ch := newClientHarness(t, 2100, 25, mobility.Westbound)
	ch.client.Start()
	ch.sched.RunFor(10 * time.Second)
	if ch.client.Cluster() != 2 {
		t.Fatalf("client in cluster %d, want 2", ch.client.Cluster())
	}
}

func TestClientLearnsBlacklistOnJoin(t *testing.T) {
	ch := newClientHarness(t, 1500, 20, mobility.Eastbound)
	ch.heads[2].AddRevoked(wire.RevokedCert{Node: 66, CertSerial: 5, Expiry: time.Hour})
	var updates [][]wire.RevokedCert
	ch.client.cb.BlacklistUpdated = func(added []wire.RevokedCert) { updates = append(updates, added) }
	ch.client.Start()
	ch.sched.RunFor(time.Second)
	if !ch.client.IsBlacklisted(66) {
		t.Error("client did not learn the blacklist on join")
	}
	if len(updates) != 1 || len(updates[0]) != 1 {
		t.Errorf("BlacklistUpdated fired %d times: %v", len(updates), updates)
	}
	if ch.client.BlacklistSize() != 1 {
		t.Errorf("BlacklistSize = %d, want 1", ch.client.BlacklistSize())
	}
}

func TestClientRetriesJoinUntilAnswered(t *testing.T) {
	ch := newClientHarness(t, 1500, 20, mobility.Eastbound)
	// Silence all heads briefly so the first request goes unanswered.
	ch.medium.Stats() // no-op; just exercising the path
	for _, h := range ch.heads {
		_ = h
	}
	// Simplest deafness: start the client while heads ignore joins by
	// blacklisting nothing but dropping frames — instead we emulate by
	// starting the vehicle off-highway coverage: silence via radio not
	// available here, so just verify the retry timer fires by checking
	// JoinRequests grows when no reply arrives (achieved by detaching
	// head 2's radio is not exposed; skip if joined immediately).
	ch.client.Start()
	ch.sched.RunFor(100 * time.Millisecond)
	if ch.client.Cluster() == 0 {
		ch.sched.RunFor(3 * time.Second)
		if ch.client.Stats().JoinRequests < 2 {
			t.Error("client did not retry an unanswered join")
		}
	}
}

func TestClientStopCancelsActivity(t *testing.T) {
	ch := newClientHarness(t, 1500, 20, mobility.Eastbound)
	ch.client.Start()
	ch.client.Stop()
	ch.sched.RunFor(5 * time.Second)
	if ch.client.Cluster() != 0 {
		t.Error("stopped client completed a join")
	}
	if ch.client.HandlePacket(&wire.JoinRep{Vehicle: 21, Cluster: 2, Head: 1002}, 1002) {
		t.Error("stopped client handled a packet")
	}
}

func TestHeadIgnoresForeignKinds(t *testing.T) {
	hh := newHeadHarness(t, 2)
	if hh.head.HandlePacket(&wire.Data{Origin: 1, Dest: 2}, 1) {
		t.Error("head claimed a Data packet")
	}
}
