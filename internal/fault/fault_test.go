package fault

import (
	"strings"
	"testing"
	"time"

	"blackdp/internal/sim"
)

func TestEmptyPlan(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero Plan is not Empty")
	}
	for _, p := range []Plan{
		{HeadCrashes: []HeadCrash{{Cluster: 1, At: time.Second}}},
		{LinkCuts: []LinkCut{{Link: 1, At: time.Second}}},
		{Burst: BurstLoss{LossBad: 0.3, GoodToBad: 0.1, BadToGood: 0.2}},
		{DuplicateProb: 0.1},
		{ReorderProb: 0.1, ReorderMax: time.Millisecond},
	} {
		if p.Empty() {
			t.Errorf("plan %+v reported Empty", p)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error, "" = valid
	}{
		{"zero", Plan{}, ""},
		{"good crash", Plan{HeadCrashes: []HeadCrash{{Cluster: 3, At: time.Second, RecoverAt: 2 * time.Second}}}, ""},
		{"cluster too high", Plan{HeadCrashes: []HeadCrash{{Cluster: 6, At: time.Second}}}, "cluster 6"},
		{"cluster zero", Plan{HeadCrashes: []HeadCrash{{Cluster: 0, At: time.Second}}}, "cluster 0"},
		{"recover before crash", Plan{HeadCrashes: []HeadCrash{{Cluster: 1, At: 2 * time.Second, RecoverAt: time.Second}}}, "not after"},
		{"good cut", Plan{LinkCuts: []LinkCut{{Link: 4, At: time.Second}}}, ""},
		{"link out of range", Plan{LinkCuts: []LinkCut{{Link: 5, At: time.Second}}}, "links 1..4"},
		{"heal before cut", Plan{LinkCuts: []LinkCut{{Link: 1, At: 2 * time.Second, HealAt: time.Second}}}, "not after"},
		{"prob out of range", Plan{DuplicateProb: 1.5}, "outside [0,1]"},
		{"absorbing bad state", Plan{Burst: BurstLoss{LossBad: 1, GoodToBad: 0.5}}, "never leave"},
		{"reorder without window", Plan{ReorderProb: 0.5}, "non-positive max delay"},
	}
	for _, c := range cases {
		err := c.plan.Validate(5)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	s := sim.NewScheduler()
	var log []string
	note := func(what string) func(int) {
		return func(n int) { log = append(log, what) }
	}
	Schedule(s, Plan{
		HeadCrashes: []HeadCrash{{Cluster: 2, At: time.Second, RecoverAt: 3 * time.Second}},
		LinkCuts:    []LinkCut{{Link: 1, At: 2 * time.Second, HealAt: 4 * time.Second}},
	}, Targets{
		CrashHead:   note("crash"),
		RecoverHead: note("recover"),
		CutLink:     note("cut"),
		HealLink:    note("heal"),
	})
	s.Run()
	want := "crash,cut,recover,heal"
	if got := strings.Join(log, ","); got != want {
		t.Errorf("fault order = %s, want %s", got, want)
	}
}

func TestSchedulePermanentFaults(t *testing.T) {
	s := sim.NewScheduler()
	recovered := false
	Schedule(s, Plan{
		HeadCrashes: []HeadCrash{{Cluster: 1, At: time.Second}}, // RecoverAt 0
	}, Targets{
		CrashHead:   func(int) {},
		RecoverHead: func(int) { recovered = true },
	})
	s.Run()
	if recovered {
		t.Error("permanent crash scheduled a recovery")
	}
}
