// Package fault injects infrastructure failures into a running simulation.
//
// A Plan is a declarative schedule of faults — cluster-head crashes, backbone
// link cuts, and channel impairments — that Schedule translates into
// scheduler events against a set of Targets callbacks. The plan itself never
// touches protocol state, so the same plan replays identically across runs
// and worker counts; everything it triggers goes through the deterministic
// event queue.
//
// The zero Plan is the ablation baseline: Empty() reports true and Schedule
// registers nothing, leaving the fault-free RNG streams and event order
// byte-identical to a build without this package.
package fault

import (
	"fmt"
	"time"

	"blackdp/internal/sim"
)

// HeadCrash takes one cluster head fully offline — radio silenced, backbone
// port down, all open detection cases aborted — at a point in simulated time,
// optionally recovering later.
type HeadCrash struct {
	Cluster   int           // 1-based cluster whose head crashes
	At        time.Duration // crash instant
	RecoverAt time.Duration // 0 = never recovers
}

// LinkCut severs one backbone chain link (between cluster positions Link and
// Link+1), optionally healing later.
type LinkCut struct {
	Link   int           // 1-based: link i joins clusters i and i+1
	At     time.Duration // cut instant
	HealAt time.Duration // 0 = never heals
}

// BurstLoss configures a Gilbert–Elliott two-state channel on the wireless
// medium, replacing the uniform loss rate. The zero value means "keep the
// uniform model".
type BurstLoss struct {
	LossGood  float64 // loss probability in the good state
	LossBad   float64 // loss probability in the bad (fading) state
	GoodToBad float64 // per-decision transition probability good -> bad
	BadToGood float64 // per-decision transition probability bad -> good
}

// Enabled reports whether the burst channel replaces uniform loss.
func (b BurstLoss) Enabled() bool { return b != BurstLoss{} }

// Plan is a full fault schedule for one run. The zero value injects nothing.
type Plan struct {
	HeadCrashes []HeadCrash
	LinkCuts    []LinkCut
	Burst       BurstLoss
	// DuplicateProb duplicates each delivered frame copy with this
	// probability (MAC retransmit races).
	DuplicateProb float64
	// ReorderProb adds up to ReorderMax of extra delay to a frame copy with
	// this probability, enough to reorder back-to-back frames.
	ReorderProb float64
	ReorderMax  time.Duration
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return len(p.HeadCrashes) == 0 && len(p.LinkCuts) == 0 &&
		!p.Burst.Enabled() && p.DuplicateProb == 0 && p.ReorderProb == 0
}

// Validate checks the plan against a highway with the given cluster count.
func (p Plan) Validate(clusters int) error {
	for _, c := range p.HeadCrashes {
		if c.Cluster < 1 || c.Cluster > clusters {
			return fmt.Errorf("fault: head crash targets cluster %d of %d", c.Cluster, clusters)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: head crash at negative time %v", c.At)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("fault: head recovery at %v not after crash at %v", c.RecoverAt, c.At)
		}
	}
	for _, l := range p.LinkCuts {
		if l.Link < 1 || l.Link >= clusters {
			return fmt.Errorf("fault: link cut targets link %d; highway has links 1..%d", l.Link, clusters-1)
		}
		if l.At < 0 {
			return fmt.Errorf("fault: link cut at negative time %v", l.At)
		}
		if l.HealAt != 0 && l.HealAt <= l.At {
			return fmt.Errorf("fault: link heal at %v not after cut at %v", l.HealAt, l.At)
		}
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"burst loss (good)", p.Burst.LossGood},
		{"burst loss (bad)", p.Burst.LossBad},
		{"burst good->bad", p.Burst.GoodToBad},
		{"burst bad->good", p.Burst.BadToGood},
		{"duplicate", p.DuplicateProb},
		{"reorder", p.ReorderProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Burst.Enabled() && p.Burst.BadToGood == 0 && p.Burst.GoodToBad > 0 {
		return fmt.Errorf("fault: burst channel can enter the bad state but never leave it")
	}
	if p.ReorderProb > 0 && p.ReorderMax <= 0 {
		return fmt.Errorf("fault: reordering enabled with non-positive max delay %v", p.ReorderMax)
	}
	return nil
}

// Targets are the world-side hooks a plan's timed faults fire against. The
// world wires them to the concrete head agents and backbone; the fault layer
// stays ignorant of protocol types.
type Targets struct {
	CrashHead   func(cluster int)
	RecoverHead func(cluster int)
	CutLink     func(link int)
	HealLink    func(link int)
}

// Schedule registers the plan's timed faults on s. Channel impairments
// (burst loss, duplication, reordering) are medium construction options, not
// events, so they are applied by the world at build time instead.
func Schedule(s sim.Runtime, p Plan, t Targets) {
	for _, c := range p.HeadCrashes {
		c := c
		s.At(c.At, func() { t.CrashHead(c.Cluster) })
		if c.RecoverAt > 0 {
			s.At(c.RecoverAt, func() { t.RecoverHead(c.Cluster) })
		}
	}
	for _, l := range p.LinkCuts {
		l := l
		s.At(l.At, func() { t.CutLink(l.Link) })
		if l.HealAt > 0 {
			s.At(l.HealAt, func() { t.HealLink(l.Link) })
		}
	}
}
