package pki

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"blackdp/internal/wire"
)

// wireFuzzCorpus loads the raw byte inputs the wire-codec fuzzer has found,
// so envelope shapes that once broke the decoder also exercise the
// verification paths.
func wireFuzzCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := filepath.Join("..", "wire", "testdata", "fuzz", "FuzzDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil // corpus is optional seed material
	}
	var out [][]byte
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			if s, err := strconv.Unquote(line[len("[]byte(") : len(line)-1]); err == nil {
				out = append(out, []byte(s))
			}
		}
	}
	return out
}

// FuzzOpenSecure feeds arbitrary envelope bytes through every verification
// path — uncached Open, a cold cached Verifier, a Verifier warmed on honest
// traffic, and the session-token scheme — and requires them to agree: same
// accept/reject verdict, same error class, same decoded packet. No input may
// panic, and no input may be accepted by a cached path that the reference
// path rejects (the laundering property, fuzzed).
func FuzzOpenSecure(f *testing.F) {
	ecdsaScheme := ECDSA{Rand: newDetReader(71)}
	fx := newVerifierFixture(f, ecdsaScheme, 2)
	honest := fx.seal(f, fx.creds[0], 1)

	sessionScheme := NewSessionToken(newDetReader(72))
	sfx := newVerifierFixture(f, sessionScheme, 2)
	sHonest := sfx.seal(f, sfx.creds[0], 1)

	// Seeds: honest envelopes under both schemes, targeted mutations, and
	// the wire fuzzer's decoder-breaking finds.
	for _, sec := range []*wire.Secure{honest, sHonest, fx.seal(f, fx.creds[1], 2)} {
		b, err := sec.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		for _, i := range []int{0, 8, len(b) / 2, len(b) - 1} {
			mut := append([]byte(nil), b...)
			mut[i] ^= 0xa5
			f.Add(mut)
		}
		f.Add(b[:len(b)/2])
	}
	for _, b := range wireFuzzCorpus(f) {
		f.Add(b)
	}

	warm := NewVerifier(fx.trust, ecdsaScheme, VerifierOptions{})
	if _, _, err := warm.Open(honest, 0); err != nil {
		f.Fatal(err)
	}
	sessionWarm := NewVerifier(sfx.trust, sessionScheme, VerifierOptions{})
	if _, _, err := sessionWarm.Open(sHonest, 0); err != nil {
		f.Fatal(err)
	}

	classes := []error{ErrBadSignature, ErrBadCertificate, ErrCertExpired, ErrUnknownAuthority}
	now := 30 * time.Minute

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := wire.Decode(data)
		if err != nil {
			return
		}
		sec, ok := pkt.(*wire.Secure)
		if !ok {
			return
		}
		check := func(label string, trust *TrustStore, scheme Scheme, vs ...*Verifier) {
			wantPkt, _, wantErr := Open(sec, trust, now, scheme)
			for _, v := range vs {
				gotPkt, _, gotErr := v.Open(sec, now)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: verdict diverged: cached err %v, reference err %v", label, gotErr, wantErr)
				}
				if wantErr != nil {
					for _, class := range classes {
						if errors.Is(wantErr, class) != errors.Is(gotErr, class) {
							t.Fatalf("%s: error class diverged: cached %v, reference %v", label, gotErr, wantErr)
						}
					}
					continue
				}
				if !reflect.DeepEqual(gotPkt, wantPkt) {
					t.Fatalf("%s: packet diverged: cached %+v, reference %+v", label, gotPkt, wantPkt)
				}
			}
		}
		cold := NewVerifier(fx.trust, ecdsaScheme, VerifierOptions{})
		check("ecdsa", fx.trust, ecdsaScheme, cold, warm)
		sessionCold := NewVerifier(sfx.trust, sessionScheme, VerifierOptions{})
		check("session", sfx.trust, sessionScheme, sessionCold, sessionWarm)
	})
}
