package pki

import (
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"io"
	"sync"
)

// SessionToken is the amortized-cost scheme: one real ECDSA P-256 signature
// per pseudonym epoch, then a cheap HMAC-SHA256 tag per packet.
//
// An epoch is the lifetime of one key pair — pseudonym issuance and renewal
// both mint fresh keys, so rotating identity always rotates the session. On
// a key's first Sign the scheme derives a 256-bit session key from the
// private scalar and signs an anchor message (public key point plus session
// key) with plain ECDSA: that one signature is the epoch's key agreement,
// and its cost is charged exactly once per epoch. Every packet signature
// thereafter is HMAC-SHA256(session key, message), framed into the same
// fixed-width field as an ECDSA signature so wire sizes, transmission delays
// and event ordering are identical across schemes.
//
// A verifier accepts a tag only for a public key whose epoch anchor it has
// checked: the first Verify against a key runs the one real ECDSA
// verification of the anchor signature; later packets cost a constant-time
// MAC compare. A key that never anchored, a tag minted under a different
// epoch's session key, or a tampered anchor all fail — the session table
// cannot launder tokens across epochs because the table is keyed by the
// public key point and the session key is bound to the private scalar.
//
// The shared instance stands in for the epoch key-agreement channel (in a
// deployment the anchor signature would travel with the first packet of the
// epoch); a receiver that was never announced to — a separate SessionToken
// instance — rejects everything, which the tests pin. The instance is
// mutex-guarded so sharded runs can sign and verify concurrently; anchor
// signatures consume nonce randomness in establishment order, but no nonce
// byte reaches the wire or a verdict, so run outcomes stay deterministic.
type SessionToken struct {
	// Rand seeds the nonces of the per-epoch anchor signatures; nil means
	// crypto/rand.
	Rand io.Reader

	mu       sync.Mutex
	sessions map[[32]byte]*epochSession
	stats    SessionStats
}

// SessionStats counts the scheme's two cost classes: real ECDSA operations
// (once per epoch per side) and per-packet MAC operations.
type SessionStats struct {
	EpochSigns    uint64 // ECDSA anchor signatures created (sender epochs)
	EpochVerifies uint64 // ECDSA anchor verifications (verifier-side epochs)
	MACSigns      uint64 // per-packet HMAC tags minted
	MACVerifies   uint64 // per-packet HMAC tags checked
}

type epochSession struct {
	key         [sha256.Size]byte // HMAC session key for the epoch
	anchorSig   []byte            // ECDSA signature binding key point + session key
	established bool              // verifier-side anchor check passed
}

var _ Scheme = (*SessionToken)(nil)

// NewSessionToken creates a session-token scheme drawing anchor-signature
// nonces from rand (nil for crypto/rand).
func NewSessionToken(rand io.Reader) *SessionToken {
	return &SessionToken{Rand: rand, sessions: make(map[[32]byte]*epochSession)}
}

// Name implements Scheme.
func (*SessionToken) Name() string { return "session-token-hmac-sha256" }

// Stats returns a snapshot of the epoch/packet operation counters.
func (st *SessionToken) Stats() SessionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Sessions returns the number of epochs the instance has seen.
func (st *SessionToken) Sessions() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// Domain-separation labels for the scheme's two derivations.
var (
	sessionKeyDomain    = []byte("blackdp/session-token/key/v1")
	sessionAnchorDomain = []byte("blackdp/session-token/anchor/v1")
)

// p256Coord is the byte width of a P-256 coordinate.
const p256Coord = 32

// pointBytes writes the fixed-width affine point of pub into dst (64 bytes)
// and reports whether the key is usable.
func pointBytes(dst []byte, pub *ecdsa.PublicKey) bool {
	if pub == nil || pub.X == nil || pub.Y == nil {
		return false
	}
	pub.X.FillBytes(dst[:p256Coord])
	pub.Y.FillBytes(dst[p256Coord : 2*p256Coord])
	return true
}

func sessionFingerprint(pub *ecdsa.PublicKey) ([32]byte, bool) {
	var pt [2 * p256Coord]byte
	if !pointBytes(pt[:], pub) {
		return [32]byte{}, false
	}
	return sha256.Sum256(pt[:]), true
}

// deriveSessionKey binds the epoch's session key to the private scalar, so
// only the key holder can mint it.
func deriveSessionKey(priv *ecdsa.PrivateKey) ([sha256.Size]byte, bool) {
	var pt [2 * p256Coord]byte
	if priv == nil || priv.D == nil || !pointBytes(pt[:], &priv.PublicKey) {
		return [sha256.Size]byte{}, false
	}
	var d [p256Coord]byte
	priv.D.FillBytes(d[:])
	h := sha256.New()
	h.Write(sessionKeyDomain)
	h.Write(d[:])
	h.Write(pt[:])
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k, true
}

// anchorMessage is the byte string the epoch's one ECDSA signature covers:
// the public key point plus the session key it vouches for.
func anchorMessage(pub *ecdsa.PublicKey, key [sha256.Size]byte) ([]byte, bool) {
	msg := make([]byte, len(sessionAnchorDomain)+2*p256Coord+sha256.Size)
	n := copy(msg, sessionAnchorDomain)
	if !pointBytes(msg[n:n+2*p256Coord], pub) {
		return nil, false
	}
	copy(msg[n+2*p256Coord:], key[:])
	return msg, true
}

// Sign implements Scheme: the first call for a key pair establishes the
// epoch (one real ECDSA signature over the anchor message); every call mints
// an HMAC-SHA256 tag over msg under the epoch's session key.
func (st *SessionToken) Sign(priv *ecdsa.PrivateKey, msg []byte) ([]byte, error) {
	if priv == nil {
		return nil, errors.New("pki: Sign with nil key")
	}
	fp, ok := sessionFingerprint(&priv.PublicKey)
	if !ok {
		return nil, errors.New("pki: session sign with malformed key")
	}
	st.mu.Lock()
	if st.sessions == nil {
		st.sessions = make(map[[32]byte]*epochSession)
	}
	sess := st.sessions[fp]
	if sess == nil {
		key, ok := deriveSessionKey(priv)
		if !ok {
			st.mu.Unlock()
			return nil, errors.New("pki: session sign with malformed key")
		}
		anchor, _ := anchorMessage(&priv.PublicKey, key)
		sig, err := ECDSA{Rand: st.Rand}.Sign(priv, anchor)
		if err != nil {
			st.mu.Unlock()
			return nil, err
		}
		sess = &epochSession{key: key, anchorSig: sig}
		st.sessions[fp] = sess
		st.stats.EpochSigns++
	}
	key := sess.key
	st.stats.MACSigns++
	st.mu.Unlock()

	mac := hmac.New(sha256.New, key[:])
	mac.Write(msg)
	tag := mac.Sum(nil)
	sig := make([]byte, SignatureSize)
	sig[0] = byte(len(tag))
	copy(sig[1:], tag)
	return sig, nil
}

// Verify implements Scheme: it accepts only tags minted under the session
// key whose epoch anchor for this exact public key has been ECDSA-verified.
func (st *SessionToken) Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	tag, ok := unframe(sig)
	if !ok || len(tag) != sha256.Size {
		return false
	}
	fp, ok := sessionFingerprint(pub)
	if !ok {
		return false
	}
	st.mu.Lock()
	sess := st.sessions[fp]
	if sess == nil {
		st.mu.Unlock()
		return false
	}
	if !sess.established {
		anchor, ok := anchorMessage(pub, sess.key)
		if !ok || !(ECDSA{}).Verify(pub, anchor, sess.anchorSig) {
			st.mu.Unlock()
			return false
		}
		sess.established = true
		st.stats.EpochVerifies++
	}
	key := sess.key
	st.stats.MACVerifies++
	st.mu.Unlock()

	mac := hmac.New(sha256.New, key[:])
	mac.Write(msg)
	want := mac.Sum(nil)
	return hmac.Equal(tag, want)
}
