package pki

import (
	"testing"
	"testing/quick"
	"time"

	"blackdp/internal/wire"
)

// TestSealOpenProperty: any packet sealed by a valid credential opens to an
// equivalent packet bound to the sealing identity.
func TestSealOpenProperty(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	scheme := ECDSA{Rand: newDetReader(11)}
	a, err := NewAuthority(1, trust, clk.clock, scheme, newDetReader(12))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.Issue("prop", time.Hour, newDetReader(13))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(origin, dest uint64, seq uint32, hops uint8) bool {
		inner := &wire.RREP{
			Origin: wire.NodeID(origin), Dest: wire.NodeID(dest),
			DestSeq: wire.SeqNum(seq), HopCount: hops, Issuer: cred.NodeID(),
		}
		sec, err := Seal(inner, cred, scheme)
		if err != nil {
			return false
		}
		got, cert, err := Open(sec, trust, clk.now, scheme)
		if err != nil || cert.Node != cred.NodeID() {
			return false
		}
		rep, ok := got.(*wire.RREP)
		return ok && rep.DestSeq == inner.DestSeq && rep.Origin == inner.Origin && rep.Dest == inner.Dest
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTamperedEnvelopeNeverOpensProperty: flipping any byte of the sealed
// inner payload must fail verification.
func TestTamperedEnvelopeNeverOpensProperty(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	scheme := ECDSA{Rand: newDetReader(21)}
	a, err := NewAuthority(1, trust, clk.clock, scheme, newDetReader(22))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.Issue("prop", time.Hour, newDetReader(23))
	if err != nil {
		t.Fatal(err)
	}
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 2, DestSeq: 250, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(pos uint8, bit uint8) bool {
		mutated := *sec
		mutated.Inner = append([]byte(nil), sec.Inner...)
		mutated.Inner[int(pos)%len(mutated.Inner)] ^= 1 << (bit % 8)
		if string(mutated.Inner) == string(sec.Inner) {
			return true // the xor was a no-op (bit flip of 0? impossible, but guard)
		}
		_, _, err := Open(&mutated, trust, clk.now, scheme)
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSerialsStrictlyIncreaseProperty: serials and pseudonyms from one
// authority never repeat across arbitrary issue sequences.
func TestSerialsStrictlyIncreaseProperty(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a, err := NewAuthority(1, trust, clk.clock, Insecure{}, newDetReader(31))
	if err != nil {
		t.Fatal(err)
	}
	var lastSerial uint64
	seen := map[wire.NodeID]bool{}
	for i := 0; i < 200; i++ {
		cred, err := a.Issue("lineage", time.Hour, newDetReader(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if cred.Cert.Serial <= lastSerial {
			t.Fatalf("serial %d not above %d", cred.Cert.Serial, lastSerial)
		}
		lastSerial = cred.Cert.Serial
		if seen[cred.NodeID()] {
			t.Fatalf("pseudonym %v reused", cred.NodeID())
		}
		seen[cred.NodeID()] = true
	}
}
