package pki

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"time"

	"blackdp/internal/wire"
)

// Authority errors.
var (
	// ErrRenewalPaused reports a renewal denied because the presented
	// identity's certificate chain has been revoked or paused.
	ErrRenewalPaused = errors.New("pki: renewals paused for this identity")
	// ErrBadCertificate reports a certificate that fails verification.
	ErrBadCertificate = errors.New("pki: bad certificate")
	// ErrCertExpired reports a certificate past its expiry.
	ErrCertExpired = errors.New("pki: certificate expired")
	// ErrBadSignature reports an envelope whose signature does not verify.
	ErrBadSignature = errors.New("pki: bad signature")
	// ErrUnknownAuthority reports a certificate from an untrusted issuer.
	ErrUnknownAuthority = errors.New("pki: unknown authority")
)

// Credential is a node's operating identity: its current certificate plus
// the matching private key.
type Credential struct {
	Cert wire.Certificate
	Key  *ecdsa.PrivateKey
}

// NodeID returns the pseudonym bound by the credential.
func (c *Credential) NodeID() wire.NodeID { return c.Cert.Node }

// TrustStore holds the public keys of all Trusted Authorities. It is
// pre-provisioned in every node, mirroring the paper's assumption that nodes
// can validate certificates with the available TA public key.
type TrustStore struct {
	keys map[wire.AuthorityID]*ecdsa.PublicKey
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{keys: make(map[wire.AuthorityID]*ecdsa.PublicKey)}
}

// Add registers an authority's public key.
func (ts *TrustStore) Add(id wire.AuthorityID, pub *ecdsa.PublicKey) {
	if pub == nil {
		panic("pki: TrustStore.Add with nil key")
	}
	ts.keys[id] = pub
}

// Lookup returns the public key for an authority, or nil if untrusted.
func (ts *TrustStore) Lookup(id wire.AuthorityID) *ecdsa.PublicKey {
	return ts.keys[id]
}

// Authorities returns the number of trusted authorities.
func (ts *TrustStore) Authorities() int { return len(ts.keys) }

// Clock yields the current virtual time; the simulation injects the
// scheduler's clock.
type Clock func() time.Duration

// Authority is one Trusted Authority node: it issues pseudonymous
// certificates, renews them (rotating the pseudonym to frustrate tracking),
// and processes revocations, pausing future renewals for revoked identities
// — including those reported by peer authorities.
type Authority struct {
	id     wire.AuthorityID
	key    *ecdsa.PrivateKey
	scheme Scheme
	clock  Clock
	trust  *TrustStore

	nextSerial uint64
	nextNode   uint64

	lineageOf     map[uint64]string // serial -> lineage, for locally issued certs
	latestSerial  map[string]uint64 // lineage -> most recent serial
	revoked       map[uint64]wire.RevokedCert
	pausedSerials map[uint64]bool
	pausedNodes   map[wire.NodeID]bool
}

// NewAuthority creates an authority with a fresh key pair (from rand; nil
// for crypto/rand) registered in trust, stamping certificates with clock.
func NewAuthority(id wire.AuthorityID, trust *TrustStore, clock Clock, scheme Scheme, rand io.Reader) (*Authority, error) {
	if trust == nil || clock == nil || scheme == nil {
		return nil, errors.New("pki: NewAuthority requires trust store, clock and scheme")
	}
	if id == 0 {
		return nil, errors.New("pki: authority id must be nonzero")
	}
	key, err := GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		id:            id,
		key:           key,
		scheme:        scheme,
		clock:         clock,
		trust:         trust,
		nextSerial:    1,
		nextNode:      1,
		lineageOf:     make(map[uint64]string),
		latestSerial:  make(map[string]uint64),
		revoked:       make(map[uint64]wire.RevokedCert),
		pausedSerials: make(map[uint64]bool),
		pausedNodes:   make(map[wire.NodeID]bool),
	}
	trust.Add(id, &key.PublicKey)
	return a, nil
}

// ID returns the authority's identity.
func (a *Authority) ID() wire.AuthorityID { return a.id }

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() *ecdsa.PublicKey { return &a.key.PublicKey }

// Issue creates a fresh credential for the (TA-internal) identity lineage,
// valid for validity from now. Pseudonyms are allocated from the authority's
// private range so two authorities never collide.
func (a *Authority) Issue(lineage string, validity time.Duration, rand io.Reader) (*Credential, error) {
	if lineage == "" {
		return nil, errors.New("pki: empty lineage")
	}
	if validity <= 0 {
		return nil, fmt.Errorf("pki: non-positive validity %v", validity)
	}
	if a.pausedLineage(lineage) {
		return nil, ErrRenewalPaused
	}
	key, err := GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	der, err := MarshalPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	cert, err := a.issueCert(lineage, der, validity)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key}, nil
}

// IssueFor issues a certificate binding a fresh pseudonym to a
// vehicle-supplied public key (CSR-style issuance; the private key never
// leaves the vehicle). The same pause rules as Issue apply.
func (a *Authority) IssueFor(lineage string, pubDER []byte, validity time.Duration) (wire.Certificate, error) {
	if lineage == "" {
		return wire.Certificate{}, errors.New("pki: empty lineage")
	}
	if validity <= 0 {
		return wire.Certificate{}, fmt.Errorf("pki: non-positive validity %v", validity)
	}
	if a.pausedLineage(lineage) {
		return wire.Certificate{}, ErrRenewalPaused
	}
	if _, err := ParsePublicKey(pubDER); err != nil {
		return wire.Certificate{}, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	return a.issueCert(lineage, pubDER, validity)
}

// RenewFor validates the presented certificate and issues a successor bound
// to the supplied public key, under a fresh pseudonym.
func (a *Authority) RenewFor(current wire.Certificate, pubDER []byte, validity time.Duration) (wire.Certificate, error) {
	if err := VerifyCertificate(&current, a.trust, a.clock(), a.scheme); err != nil {
		return wire.Certificate{}, err
	}
	if a.pausedSerials[current.Serial] || a.pausedNodes[current.Node] || a.isRevoked(current.Serial) {
		return wire.Certificate{}, ErrRenewalPaused
	}
	lineage, ok := a.lineageOf[current.Serial]
	if !ok {
		lineage = fmt.Sprintf("peer:%d:%d", current.Authority, current.Serial)
	}
	return a.IssueFor(lineage, pubDER, validity)
}

func (a *Authority) issueCert(lineage string, pubDER []byte, validity time.Duration) (wire.Certificate, error) {
	node := wire.NodeID(uint64(a.id)<<48 | a.nextNode)
	a.nextNode++
	cert := wire.Certificate{
		Serial:    uint64(a.id)<<48 | a.nextSerial,
		Node:      node,
		Authority: a.id,
		PubKey:    pubDER,
		Expiry:    a.clock() + validity,
	}
	a.nextSerial++
	sig, err := a.scheme.Sign(a.key, cert.Preimage())
	if err != nil {
		return wire.Certificate{}, err
	}
	cert.Signature = sig
	a.lineageOf[cert.Serial] = lineage
	a.latestSerial[lineage] = cert.Serial
	return cert, nil
}

func (a *Authority) pausedLineage(lineage string) bool {
	serial, ok := a.latestSerial[lineage]
	return ok && (a.pausedSerials[serial] || a.isRevoked(serial))
}

// Renew validates the presented certificate (issued by any trusted
// authority) and, unless renewals are paused for it, issues a fresh
// credential under a new pseudonym. This is the identity-change service the
// paper's attackers exploit when they renew mid-detection.
func (a *Authority) Renew(current wire.Certificate, validity time.Duration, rand io.Reader) (*Credential, error) {
	if err := VerifyCertificate(&current, a.trust, a.clock(), a.scheme); err != nil {
		return nil, err
	}
	if a.pausedSerials[current.Serial] || a.pausedNodes[current.Node] || a.isRevoked(current.Serial) {
		return nil, ErrRenewalPaused
	}
	lineage, ok := a.lineageOf[current.Serial]
	if !ok {
		// Issued by a peer authority; track the chain under a synthetic
		// lineage so later revocations of the new certificate propagate.
		lineage = fmt.Sprintf("peer:%d:%d", current.Authority, current.Serial)
	}
	return a.Issue(lineage, validity, rand)
}

// Revoke marks the certificate revoked and pauses every future renewal of
// its lineage. It returns the blacklist record to distribute; the record
// keeps the certificate's natural expiry so holders can drop it once the
// certificate would have lapsed anyway.
func (a *Authority) Revoke(node wire.NodeID, serial uint64) wire.RevokedCert {
	expiry := a.clock()
	if lineage, ok := a.lineageOf[serial]; ok {
		if latest := a.latestSerial[lineage]; latest != 0 {
			a.pausedSerials[latest] = true
		}
	}
	rc := wire.RevokedCert{Node: node, CertSerial: serial, Expiry: expiry}
	if cur, ok := a.revoked[serial]; ok {
		rc = cur
	} else {
		a.revoked[serial] = rc
	}
	a.pausedSerials[serial] = true
	a.pausedNodes[node] = true
	return rc
}

// RevokeCert is Revoke with the certificate's true expiry preserved in the
// record, for callers that hold the full certificate.
func (a *Authority) RevokeCert(cert wire.Certificate) wire.RevokedCert {
	rc := a.Revoke(cert.Node, cert.Serial)
	if cert.Expiry > rc.Expiry {
		rc.Expiry = cert.Expiry
		a.revoked[cert.Serial] = rc
	}
	return rc
}

// RecordPeerRevocation ingests a revocation notice from a peer authority,
// pausing renewals for the named pseudonym and serial.
func (a *Authority) RecordPeerRevocation(rc wire.RevokedCert) {
	a.revoked[rc.CertSerial] = rc
	a.pausedSerials[rc.CertSerial] = true
	a.pausedNodes[rc.Node] = true
	if lineage, ok := a.lineageOf[rc.CertSerial]; ok {
		if latest := a.latestSerial[lineage]; latest != 0 {
			a.pausedSerials[latest] = true
		}
	}
}

func (a *Authority) isRevoked(serial uint64) bool {
	_, ok := a.revoked[serial]
	return ok
}

// IsRevoked reports whether the serial has been revoked (locally or via a
// peer notice).
func (a *Authority) IsRevoked(serial uint64) bool { return a.isRevoked(serial) }

// PruneExpired drops revocation records whose certificates have lapsed
// naturally, bounding storage as the paper requires. It returns the number
// of records dropped.
func (a *Authority) PruneExpired() int {
	now := a.clock()
	n := 0
	for serial, rc := range a.revoked {
		if rc.Expiry <= now {
			delete(a.revoked, serial)
			delete(a.pausedSerials, serial)
			delete(a.pausedNodes, rc.Node)
			n++
		}
	}
	return n
}

// RevokedCount returns the number of live revocation records.
func (a *Authority) RevokedCount() int { return len(a.revoked) }

// VerifyCertificate checks that the certificate was signed by a trusted
// authority and has not expired at time now.
func VerifyCertificate(cert *wire.Certificate, trust *TrustStore, now time.Duration, scheme Scheme) error {
	if cert == nil {
		return fmt.Errorf("%w: nil", ErrBadCertificate)
	}
	taPub := trust.Lookup(cert.Authority)
	if taPub == nil {
		return fmt.Errorf("%w: authority %d", ErrUnknownAuthority, cert.Authority)
	}
	if cert.Expiry <= now {
		return fmt.Errorf("%w: at %v, expired %v", ErrCertExpired, now, cert.Expiry)
	}
	if !scheme.Verify(taPub, cert.Preimage(), cert.Signature) {
		return fmt.Errorf("%w: authority signature invalid", ErrBadCertificate)
	}
	return nil
}

// Seal wraps inner as the paper's secure packet: the marshalled inner bytes
// are signed with the credential's key, and the credential's certificate is
// attached so any receiver can verify without prior contact.
func Seal(inner wire.Packet, cred *Credential, scheme Scheme) (*wire.Secure, error) {
	if cred == nil {
		return nil, errors.New("pki: Seal with nil credential")
	}
	body, err := inner.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("pki: sealing %v: %w", inner.Kind(), err)
	}
	sig, err := scheme.Sign(cred.Key, body)
	if err != nil {
		return nil, err
	}
	return &wire.Secure{Inner: body, Cert: cred.Cert, Signature: sig}, nil
}

// Open verifies a secure packet end to end — certificate against the trust
// store, signature against the certificate's key — and returns the decoded
// inner packet plus the authenticated sender certificate.
func Open(sec *wire.Secure, trust *TrustStore, now time.Duration, scheme Scheme) (wire.Packet, *wire.Certificate, error) {
	if sec == nil {
		return nil, nil, fmt.Errorf("%w: nil envelope", ErrBadSignature)
	}
	if err := VerifyCertificate(&sec.Cert, trust, now, scheme); err != nil {
		return nil, nil, err
	}
	senderPub, err := ParsePublicKey(sec.Cert.PubKey)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if !scheme.Verify(senderPub, sec.Inner, sec.Signature) {
		return nil, nil, ErrBadSignature
	}
	inner, err := wire.Decode(sec.Inner)
	if err != nil {
		return nil, nil, fmt.Errorf("pki: opening envelope: %w", err)
	}
	cert := sec.Cert
	return inner, &cert, nil
}
