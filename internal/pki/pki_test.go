package pki

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"blackdp/internal/wire"
)

// detReader is a deterministic io.Reader for key generation in tests.
type detReader struct{ r *rand.Rand }

func (d detReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newDetReader(seed int64) detReader {
	return detReader{r: rand.New(rand.NewSource(seed))}
}

type fakeClock struct{ now time.Duration }

func (c *fakeClock) clock() time.Duration { return c.now }

func newTestAuthority(t *testing.T, id wire.AuthorityID, trust *TrustStore, clk *fakeClock) *Authority {
	t.Helper()
	a, err := NewAuthority(id, trust, clk.clock, ECDSA{Rand: newDetReader(int64(id))}, newDetReader(int64(id)*100))
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

func TestIssueAndVerifyCertificate(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	scheme := ECDSA{Rand: newDetReader(9)}

	cred, err := a.Issue("veh-1", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if cred.NodeID() == wire.Broadcast {
		t.Error("issued broadcast pseudonym")
	}
	if cred.Cert.Authority != 1 {
		t.Errorf("cert authority = %d, want 1", cred.Cert.Authority)
	}
	if err := VerifyCertificate(&cred.Cert, trust, clk.now, scheme); err != nil {
		t.Errorf("VerifyCertificate: %v", err)
	}
}

func TestVerifyCertificateFailures(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	scheme := ECDSA{Rand: newDetReader(9)}
	cred, err := a.Issue("veh-1", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("expired", func(t *testing.T) {
		err := VerifyCertificate(&cred.Cert, trust, 2*time.Hour, scheme)
		if !errors.Is(err, ErrCertExpired) {
			t.Errorf("error = %v, want ErrCertExpired", err)
		}
	})
	t.Run("unknown authority", func(t *testing.T) {
		bad := cred.Cert
		bad.Authority = 42
		err := VerifyCertificate(&bad, trust, 0, scheme)
		if !errors.Is(err, ErrUnknownAuthority) {
			t.Errorf("error = %v, want ErrUnknownAuthority", err)
		}
	})
	t.Run("tampered node id", func(t *testing.T) {
		bad := cred.Cert
		bad.Node = 999 // forging a different pseudonym breaks the signature
		err := VerifyCertificate(&bad, trust, 0, scheme)
		if !errors.Is(err, ErrBadCertificate) {
			t.Errorf("error = %v, want ErrBadCertificate", err)
		}
	})
	t.Run("tampered signature", func(t *testing.T) {
		bad := cred.Cert
		bad.Signature = append([]byte(nil), bad.Signature...)
		bad.Signature[10] ^= 0xff
		err := VerifyCertificate(&bad, trust, 0, scheme)
		if !errors.Is(err, ErrBadCertificate) {
			t.Errorf("error = %v, want ErrBadCertificate", err)
		}
	})
	t.Run("nil cert", func(t *testing.T) {
		if err := VerifyCertificate(nil, trust, 0, scheme); err == nil {
			t.Error("nil certificate accepted")
		}
	})
}

func TestPseudonymsUniqueAcrossAuthorities(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a1 := newTestAuthority(t, 1, trust, clk)
	a2 := newTestAuthority(t, 2, trust, clk)
	seen := map[wire.NodeID]bool{}
	for i := 0; i < 50; i++ {
		c1, err := a1.Issue("x", time.Hour, newDetReader(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := a2.Issue("x", time.Hour, newDetReader(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []wire.NodeID{c1.NodeID(), c2.NodeID()} {
			if seen[id] {
				t.Fatalf("pseudonym %v issued twice", id)
			}
			seen[id] = true
		}
	}
}

func TestRenewRotatesPseudonym(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	cred, err := a.Issue("veh-1", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	renewed, err := a.Renew(cred.Cert, time.Hour, newDetReader(2))
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if renewed.NodeID() == cred.NodeID() {
		t.Error("renewal did not rotate the pseudonym")
	}
	if renewed.Cert.Serial == cred.Cert.Serial {
		t.Error("renewal did not advance the serial")
	}
}

func TestRenewDeniedAfterRevocation(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	cred, err := a.Issue("attacker", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	rc := a.RevokeCert(cred.Cert)
	if rc.Node != cred.NodeID() || rc.CertSerial != cred.Cert.Serial {
		t.Errorf("revocation record = %+v", rc)
	}
	if !a.IsRevoked(cred.Cert.Serial) {
		t.Error("IsRevoked = false after revocation")
	}
	if _, err := a.Renew(cred.Cert, time.Hour, newDetReader(2)); !errors.Is(err, ErrRenewalPaused) {
		t.Errorf("Renew after revocation error = %v, want ErrRenewalPaused", err)
	}
	// Fresh issuance for the same lineage is paused too.
	if _, err := a.Issue("attacker", time.Hour, newDetReader(3)); !errors.Is(err, ErrRenewalPaused) {
		t.Errorf("Issue for revoked lineage error = %v, want ErrRenewalPaused", err)
	}
}

func TestRevocationPausesLatestSerialInLineage(t *testing.T) {
	// Attacker renews first, then the *old* serial is revoked: the current
	// serial must be paused as well, because the TA knows the lineage.
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	old, err := a.Issue("attacker", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Renew(old.Cert, time.Hour, newDetReader(2))
	if err != nil {
		t.Fatal(err)
	}
	a.RevokeCert(old.Cert)
	if _, err := a.Renew(fresh.Cert, time.Hour, newDetReader(3)); !errors.Is(err, ErrRenewalPaused) {
		t.Errorf("renewal of successor cert error = %v, want ErrRenewalPaused", err)
	}
}

func TestPeerRevocationPausesRenewal(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a1 := newTestAuthority(t, 1, trust, clk)
	a2 := newTestAuthority(t, 2, trust, clk)
	cred, err := a1.Issue("attacker", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	// Before the notice, the peer authority would happily renew.
	if _, err := a2.Renew(cred.Cert, time.Hour, newDetReader(2)); err != nil {
		t.Fatalf("pre-notice peer renewal failed: %v", err)
	}
	rc := a1.RevokeCert(cred.Cert)
	a2.RecordPeerRevocation(rc)
	if _, err := a2.Renew(cred.Cert, time.Hour, newDetReader(3)); !errors.Is(err, ErrRenewalPaused) {
		t.Errorf("post-notice peer renewal error = %v, want ErrRenewalPaused", err)
	}
	if !a2.IsRevoked(rc.CertSerial) {
		t.Error("peer authority does not report the serial revoked")
	}
}

func TestCrossAuthorityRenewalThenRevocation(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a1 := newTestAuthority(t, 1, trust, clk)
	a2 := newTestAuthority(t, 2, trust, clk)
	cred, err := a1.Issue("veh", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	moved, err := a2.Renew(cred.Cert, time.Hour, newDetReader(2))
	if err != nil {
		t.Fatal(err)
	}
	a2.RevokeCert(moved.Cert)
	if _, err := a2.Renew(moved.Cert, time.Hour, newDetReader(3)); !errors.Is(err, ErrRenewalPaused) {
		t.Errorf("renewal of revoked foreign-lineage cert error = %v, want ErrRenewalPaused", err)
	}
}

func TestPruneExpired(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	cred, err := a.Issue("attacker", time.Hour, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	a.RevokeCert(cred.Cert)
	if a.RevokedCount() != 1 {
		t.Fatalf("RevokedCount = %d, want 1", a.RevokedCount())
	}
	clk.now = 30 * time.Minute
	if n := a.PruneExpired(); n != 0 {
		t.Errorf("pruned %d records before expiry, want 0", n)
	}
	clk.now = 2 * time.Hour
	if n := a.PruneExpired(); n != 1 {
		t.Errorf("pruned %d records after expiry, want 1", n)
	}
	if a.RevokedCount() != 0 {
		t.Errorf("RevokedCount = %d after prune, want 0", a.RevokedCount())
	}
}

func TestIssueValidation(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	a := newTestAuthority(t, 1, trust, clk)
	if _, err := a.Issue("", time.Hour, newDetReader(1)); err == nil {
		t.Error("empty lineage accepted")
	}
	if _, err := a.Issue("x", 0, newDetReader(1)); err == nil {
		t.Error("zero validity accepted")
	}
}

func TestNewAuthorityValidation(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	if _, err := NewAuthority(0, trust, clk.clock, ECDSA{}, newDetReader(1)); err == nil {
		t.Error("authority id 0 accepted")
	}
	if _, err := NewAuthority(1, nil, clk.clock, ECDSA{}, newDetReader(1)); err == nil {
		t.Error("nil trust store accepted")
	}
	if _, err := NewAuthority(1, trust, nil, ECDSA{}, newDetReader(1)); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewAuthority(1, trust, clk.clock, nil, newDetReader(1)); err == nil {
		t.Error("nil scheme accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{ECDSA{Rand: newDetReader(5)}, Insecure{}} {
		t.Run(scheme.Name(), func(t *testing.T) {
			trust := NewTrustStore()
			clk := &fakeClock{}
			a, err := NewAuthority(1, trust, clk.clock, scheme, newDetReader(1))
			if err != nil {
				t.Fatal(err)
			}
			cred, err := a.Issue("veh-1", time.Hour, newDetReader(2))
			if err != nil {
				t.Fatal(err)
			}
			inner := &wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, HopCount: 3, Issuer: cred.NodeID()}
			sec, err := Seal(inner, cred, scheme)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			got, cert, err := Open(sec, trust, clk.now, scheme)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			rrep, ok := got.(*wire.RREP)
			if !ok || rrep.DestSeq != 75 || rrep.Issuer != cred.NodeID() {
				t.Errorf("opened packet = %+v", got)
			}
			if cert.Node != cred.NodeID() {
				t.Errorf("authenticated cert node = %v, want %v", cert.Node, cred.NodeID())
			}
		})
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	scheme := ECDSA{Rand: newDetReader(5)}
	a, err := NewAuthority(1, trust, clk.clock, scheme, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.Issue("veh-1", time.Hour, newDetReader(2))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *wire.Secure {
		sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75}, cred, scheme)
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}

	t.Run("payload tampered", func(t *testing.T) {
		sec := mk()
		sec.Inner[5] ^= 0xff // e.g. inflating the sequence number in flight
		if _, _, err := Open(sec, trust, clk.now, scheme); !errors.Is(err, ErrBadSignature) {
			t.Errorf("error = %v, want ErrBadSignature", err)
		}
	})
	t.Run("signature tampered", func(t *testing.T) {
		sec := mk()
		sec.Signature[8] ^= 0xff
		if _, _, err := Open(sec, trust, clk.now, scheme); !errors.Is(err, ErrBadSignature) {
			t.Errorf("error = %v, want ErrBadSignature", err)
		}
	})
	t.Run("substituted certificate", func(t *testing.T) {
		// An impersonator presents its own valid certificate with someone
		// else's signed payload.
		other, err := a.Issue("veh-2", time.Hour, newDetReader(3))
		if err != nil {
			t.Fatal(err)
		}
		sec := mk()
		sec.Cert = other.Cert
		if _, _, err := Open(sec, trust, clk.now, scheme); !errors.Is(err, ErrBadSignature) {
			t.Errorf("error = %v, want ErrBadSignature", err)
		}
	})
	t.Run("expired certificate", func(t *testing.T) {
		sec := mk()
		if _, _, err := Open(sec, trust, 2*time.Hour, scheme); !errors.Is(err, ErrCertExpired) {
			t.Errorf("error = %v, want ErrCertExpired", err)
		}
	})
	t.Run("nil envelope", func(t *testing.T) {
		if _, _, err := Open(nil, trust, 0, scheme); err == nil {
			t.Error("nil envelope accepted")
		}
	})
}

func TestSecureEnvelopeSurvivesWire(t *testing.T) {
	trust := NewTrustStore()
	clk := &fakeClock{}
	scheme := ECDSA{Rand: newDetReader(5)}
	a, err := NewAuthority(1, trust, clk.clock, scheme, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.Issue("veh-1", time.Hour, newDetReader(2))
	if err != nil {
		t.Fatal(err)
	}
	sec, err := Seal(&wire.Hello{Origin: cred.NodeID(), Dest: 7, Nonce: 99}, cred, scheme)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Open(decoded.(*wire.Secure), trust, clk.now, scheme)
	if err != nil {
		t.Fatalf("Open after wire round trip: %v", err)
	}
	if h := got.(*wire.Hello); h.Nonce != 99 {
		t.Errorf("hello nonce = %d, want 99", h.Nonce)
	}
}

func TestSignatureFixedWidth(t *testing.T) {
	key, err := GenerateKey(newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{ECDSA{Rand: newDetReader(2)}, Insecure{}} {
		for i := 0; i < 20; i++ {
			sig, err := scheme.Sign(key, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != SignatureSize {
				t.Fatalf("%s: signature %d bytes, want fixed %d", scheme.Name(), len(sig), SignatureSize)
			}
			if !scheme.Verify(&key.PublicKey, []byte{byte(i)}, sig) {
				t.Fatalf("%s: self-verify failed", scheme.Name())
			}
		}
	}
}

func TestVerifyRejectsMalformedSignatures(t *testing.T) {
	key, err := GenerateKey(newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	for _, scheme := range []Scheme{ECDSA{}, Insecure{}} {
		if scheme.Verify(&key.PublicKey, msg, nil) {
			t.Errorf("%s: nil signature verified", scheme.Name())
		}
		if scheme.Verify(&key.PublicKey, msg, make([]byte, 10)) {
			t.Errorf("%s: short signature verified", scheme.Name())
		}
		bad := make([]byte, SignatureSize)
		bad[0] = 200 // length byte exceeding the frame
		if scheme.Verify(&key.PublicKey, msg, bad) {
			t.Errorf("%s: overlong length byte verified", scheme.Name())
		}
		if scheme.Verify(nil, msg, make([]byte, SignatureSize)) {
			t.Errorf("%s: nil key verified", scheme.Name())
		}
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	key, err := GenerateKey(newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	der, err := MarshalPublicKey(&key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(&key.PublicKey) {
		t.Error("public key round trip mismatch")
	}
	if _, err := ParsePublicKey([]byte{1, 2, 3}); err == nil {
		t.Error("garbage public key parsed")
	}
}

// TestInsecureSchemeProperty: for random messages, Insecure verifies its own
// signatures and rejects signatures moved to a different message.
func TestInsecureSchemeProperty(t *testing.T) {
	key, err := GenerateKey(newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	scheme := Insecure{}
	prop := func(msg, other []byte) bool {
		sig, err := scheme.Sign(key, msg)
		if err != nil {
			return false
		}
		if !scheme.Verify(&key.PublicKey, msg, sig) {
			return false
		}
		if string(other) != string(msg) && scheme.Verify(&key.PublicKey, other, sig) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
