package pki

import (
	"container/list"
	"crypto/ecdsa"
	"encoding/binary"
	"fmt"
	"hash"

	"crypto/sha256"
	"time"

	"blackdp/internal/wire"
)

// Verifier is a per-node verification front end over Open: it memoises the
// expensive, pure parts of envelope verification so re-broadcast and relayed
// packets verify once per node instead of once per reception.
//
// Two content-addressed caches back it, both bounded LRU:
//
//   - a certificate cache keyed by a digest of the certificate's signed
//     preimage AND its authority signature, holding the parsed public key.
//     A hit skips the authority-signature check and the PKIX parse; expiry
//     is re-checked against `now` on every use, so a cached certificate can
//     never outlive its validity, and any tampered byte (including in the
//     signature) changes the key and forces a full verification.
//   - an envelope cache keyed by a digest of (certificate key, payload,
//     signature), recording successful signature verifications only.
//     Tampering with the payload, the signature, or the certificate moves
//     the envelope to a different key, so a forgery can never ride a cached
//     success. Failures are never cached.
//
// Verification results are pure functions of the envelope bytes and the
// trust store, and the Verifier draws no randomness, so a cached Open is
// byte-identical to an uncached one — the crypto differential wall in
// internal/scenario holds whole runs to that. The envelope cache engages
// only for schemes whose Verify is expensive (ECDSA); for cheap schemes the
// digest would cost as much as the verification it saves. The certificate
// cache engages for every scheme: it also elides the PKIX parse.
//
// A Verifier is not safe for concurrent use; every agent owns one, which
// also keeps sharded runs (one agent per shard home) race-free.
type Verifier struct {
	trust  *TrustStore
	scheme Scheme

	certs *lruCache // certKey -> *certEntry
	envs  *lruCache // envKey -> struct{}{}

	cacheEnvelopes bool

	h       hash.Hash
	scratch [64]byte
	sum     [sha256.Size]byte
	results []OpenResult

	stats VerifierStats
}

// VerifierStats counts cache traffic and the scheme verifications that got
// through it. SchemeVerifies is the number of Scheme.Verify invocations
// (certificate and envelope checks both) — the figure the "lightweight"
// claim is about.
type VerifierStats struct {
	SchemeVerifies uint64
	CertHits       uint64
	CertMisses     uint64
	EnvelopeHits   uint64
	EnvelopeMisses uint64
}

// VerifierOptions tune a Verifier. The zero value means the defaults:
// caching on, 256 certificates, 512 envelopes.
type VerifierOptions struct {
	// CertCapacity bounds the certificate cache; 0 means the default.
	CertCapacity int
	// EnvelopeCapacity bounds the envelope cache; 0 means the default.
	EnvelopeCapacity int
	// Disabled bypasses both caches: every Open performs the full
	// verification, exactly like the package-level Open. This is the
	// reference path for the differential suite, not a tuning knob.
	Disabled bool
}

// Default cache bounds: sized for a node's radio neighbourhood (certificates
// seen) and its recent traffic (envelopes), small enough that metro-scale
// worlds with one Verifier per agent stay cheap.
const (
	defaultCertCapacity     = 256
	defaultEnvelopeCapacity = 512
)

// NewVerifier builds a verification front end over trust and scheme.
func NewVerifier(trust *TrustStore, scheme Scheme, opt VerifierOptions) *Verifier {
	if opt.CertCapacity <= 0 {
		opt.CertCapacity = defaultCertCapacity
	}
	if opt.EnvelopeCapacity <= 0 {
		opt.EnvelopeCapacity = defaultEnvelopeCapacity
	}
	v := &Verifier{
		trust:  trust,
		scheme: scheme,
		h:      sha256.New(),
	}
	if !opt.Disabled {
		v.certs = newLRU(opt.CertCapacity)
		exp, ok := scheme.(interface{ ExpensiveVerify() bool })
		v.cacheEnvelopes = ok && exp.ExpensiveVerify()
		if v.cacheEnvelopes {
			v.envs = newLRU(opt.EnvelopeCapacity)
		}
	}
	return v
}

// Stats returns a snapshot of the cache counters.
func (v *Verifier) Stats() VerifierStats { return v.stats }

// Scheme returns the scheme the verifier fronts.
func (v *Verifier) Scheme() Scheme { return v.scheme }

type certEntry struct {
	pub    *ecdsa.PublicKey
	expiry time.Duration
}

type cacheKey [sha256.Size]byte

// certKeyOf digests the certificate's signed preimage and its signature into
// the cache key. The layout mirrors wire.Certificate.Preimage (fixed-width
// fields, length-prefixed variable ones) so the mapping is injective, but it
// writes straight into the running hash instead of materialising the buffer.
func (v *Verifier) certKeyOf(c *wire.Certificate) cacheKey {
	v.h.Reset()
	b := v.scratch[:0]
	b = binary.BigEndian.AppendUint64(b, c.Serial)
	b = binary.BigEndian.AppendUint64(b, uint64(c.Node))
	b = binary.BigEndian.AppendUint16(b, uint16(c.Authority))
	b = binary.BigEndian.AppendUint32(b, uint32(len(c.PubKey)))
	v.h.Write(b)
	v.h.Write(c.PubKey)
	b = v.scratch[:0]
	b = binary.BigEndian.AppendUint64(b, uint64(c.Expiry))
	b = binary.BigEndian.AppendUint32(b, uint32(len(c.Signature)))
	v.h.Write(b)
	v.h.Write(c.Signature)
	v.h.Sum(v.sum[:0])
	return v.sum
}

func (v *Verifier) envKeyOf(certKey cacheKey, sec *wire.Secure) cacheKey {
	v.h.Reset()
	v.h.Write(certKey[:])
	b := binary.BigEndian.AppendUint32(v.scratch[:0], uint32(len(sec.Inner)))
	v.h.Write(b)
	v.h.Write(sec.Inner)
	v.h.Write(sec.Signature)
	v.h.Sum(v.sum[:0])
	return v.sum
}

// verifyCert reproduces VerifyCertificate + ParsePublicKey through the
// certificate cache: identical checks, identical errors, in the identical
// order — only the redundant re-verification of an unchanged certificate is
// skipped. Expiry is checked against now on hits and misses alike.
// key is the certificate's precomputed cache key; it is ignored when the
// cache is disabled.
func (v *Verifier) verifyCert(cert *wire.Certificate, key cacheKey, now time.Duration) (*ecdsa.PublicKey, error) {
	if v.certs == nil {
		if err := VerifyCertificate(cert, v.trust, now, v.scheme); err != nil {
			return nil, err
		}
		v.stats.SchemeVerifies++
		pub, err := ParsePublicKey(cert.PubKey)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCertificate, err)
		}
		return pub, nil
	}
	if e, ok := v.certs.get(key); ok {
		entry := e.(*certEntry)
		if entry.expiry <= now {
			return nil, fmt.Errorf("%w: at %v, expired %v", ErrCertExpired, now, entry.expiry)
		}
		v.stats.CertHits++
		return entry.pub, nil
	}
	v.stats.CertMisses++
	if err := VerifyCertificate(cert, v.trust, now, v.scheme); err != nil {
		return nil, err
	}
	v.stats.SchemeVerifies++
	pub, err := ParsePublicKey(cert.PubKey)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	v.certs.put(key, &certEntry{pub: pub, expiry: cert.Expiry})
	return pub, nil
}

// Open verifies a secure packet exactly like the package-level Open —
// certificate against the trust store, signature against the certificate's
// key — resolving the pure, expensive steps through the caches. The decoded
// inner packet and the returned errors are byte-identical to the uncached
// path for every input.
func (v *Verifier) Open(sec *wire.Secure, now time.Duration) (wire.Packet, *wire.Certificate, error) {
	if sec == nil {
		return nil, nil, fmt.Errorf("%w: nil envelope", ErrBadSignature)
	}
	var certKey cacheKey
	if v.certs != nil {
		certKey = v.certKeyOf(&sec.Cert)
	}
	pub, err := v.verifyCert(&sec.Cert, certKey, now)
	if err != nil {
		return nil, nil, err
	}
	if v.envs != nil {
		envKey := v.envKeyOf(certKey, sec)
		if _, ok := v.envs.get(envKey); ok {
			v.stats.EnvelopeHits++
		} else {
			v.stats.EnvelopeMisses++
			v.stats.SchemeVerifies++
			if !v.scheme.Verify(pub, sec.Inner, sec.Signature) {
				return nil, nil, ErrBadSignature
			}
			v.envs.put(envKey, struct{}{})
		}
	} else {
		v.stats.SchemeVerifies++
		if !v.scheme.Verify(pub, sec.Inner, sec.Signature) {
			return nil, nil, ErrBadSignature
		}
	}
	inner, err := wire.Decode(sec.Inner)
	if err != nil {
		return nil, nil, fmt.Errorf("pki: opening envelope: %w", err)
	}
	cert := sec.Cert
	return inner, &cert, nil
}

// OpenResult is one envelope's outcome in an OpenBatch.
type OpenResult struct {
	Packet wire.Packet
	Cert   *wire.Certificate
	Err    error
}

// OpenBatch verifies a slice of envelopes in one pass — the batch the
// route-verification layer accumulates per candidate-collection window —
// sharing the verifier's scratch and caches, so a batch of relayed copies of
// one reply costs one signature verification. Entries are processed in
// order; a nil envelope yields the nil-envelope error in its slot. The
// returned slice is reused by the next OpenBatch call.
func (v *Verifier) OpenBatch(secs []*wire.Secure, now time.Duration) []OpenResult {
	v.results = v.results[:0]
	for _, sec := range secs {
		pkt, cert, err := v.Open(sec, now)
		v.results = append(v.results, OpenResult{Packet: pkt, Cert: cert, Err: err})
	}
	return v.results
}

// lruCache is a deterministic bounded map: least-recently-used eviction via
// an intrusive list, no randomness, so cache behaviour is a pure function of
// the access sequence (the differential wall depends on that).
type lruCache struct {
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recent
}

type lruEntry struct {
	key cacheKey
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[cacheKey]*list.Element), order: list.New()}
}

func (c *lruCache) get(key cacheKey) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key cacheKey, val any) {
	if e, ok := c.items[key]; ok {
		e.Value.(*lruEntry).val = val
		c.order.MoveToFront(e)
		return
	}
	if len(c.items) >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
		}
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

func (c *lruCache) len() int { return len(c.items) }
