// Package pki implements the paper's IEEE 1609.2-style security substrate:
// Trusted Authorities that issue short-lived pseudonymous ECDSA certificates,
// certificate verification, revocation with cross-authority renewal pausing,
// and the "secure packet" envelope (SHA-256 digest signed with the sender's
// private key, carried with the sender's certificate).
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
)

// Scheme abstracts the signature algorithm so the benchmark harness can
// ablate cryptographic cost (real ECDSA P-256 versus a free placeholder).
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Sign produces a fixed-width signature over msg.
	Sign(priv *ecdsa.PrivateKey, msg []byte) ([]byte, error)
	// Verify reports whether sig is a valid signature over msg by pub.
	Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool
}

// Signature framing: ECDSA P-256 ASN.1 signatures vary between 70 and 72
// bytes, and Go's signer draws nondeterministic nonces. To keep simulated
// packet sizes (and therefore transmission delays and event ordering)
// independent of signature randomness, signatures travel in a fixed-width
// field: one length byte followed by the ASN.1 bytes, zero-padded.
const (
	maxASN1SigLen = 72
	// SignatureSize is the fixed on-wire signature field width.
	SignatureSize = 1 + maxASN1SigLen
)

// ECDSA is the production scheme: SHA-256 digests signed with ECDSA P-256,
// as mandated by IEEE 1609.2. The rand reader seeds nonce generation; pass
// nil for crypto/rand.
type ECDSA struct {
	Rand io.Reader
}

var _ Scheme = ECDSA{}

// Name implements Scheme.
func (ECDSA) Name() string { return "ecdsa-p256-sha256" }

// Sign implements Scheme.
func (e ECDSA) Sign(priv *ecdsa.PrivateKey, msg []byte) ([]byte, error) {
	if priv == nil {
		return nil, errors.New("pki: Sign with nil key")
	}
	digest := sha256.Sum256(msg)
	asn1, err := ecdsa.SignASN1(e.Rand, priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("pki: signing: %w", err)
	}
	if len(asn1) > maxASN1SigLen {
		return nil, fmt.Errorf("pki: unexpected %d-byte ASN.1 signature", len(asn1))
	}
	sig := make([]byte, SignatureSize)
	sig[0] = byte(len(asn1))
	copy(sig[1:], asn1)
	return sig, nil
}

// Verify implements Scheme.
func (ECDSA) Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	asn1, ok := unframe(sig)
	if !ok || pub == nil {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pub, digest[:], asn1)
}

// ExpensiveVerify marks ECDSA verification as costly enough that a
// Verifier's content-addressed envelope cache pays for itself.
func (ECDSA) ExpensiveVerify() bool { return true }

// Insecure is the ablation scheme: the "signature" is the SHA-256 digest of
// the message and the key's public point, checked by recomputation. It has
// the same wire size as ECDSA but near-zero CPU cost and no security; it
// exists only to measure the cryptographic share of detection latency.
type Insecure struct{}

var _ Scheme = Insecure{}

// Name implements Scheme.
func (Insecure) Name() string { return "insecure-digest" }

func insecureTag(pub *ecdsa.PublicKey, msg []byte) []byte {
	h := sha256.New()
	h.Write(msg)
	if pub != nil && pub.X != nil {
		h.Write(pub.X.Bytes())
		h.Write(pub.Y.Bytes())
	}
	return h.Sum(nil)
}

// Sign implements Scheme.
func (Insecure) Sign(priv *ecdsa.PrivateKey, msg []byte) ([]byte, error) {
	if priv == nil {
		return nil, errors.New("pki: Sign with nil key")
	}
	tag := insecureTag(&priv.PublicKey, msg)
	sig := make([]byte, SignatureSize)
	sig[0] = byte(len(tag))
	copy(sig[1:], tag)
	return sig, nil
}

// Verify implements Scheme.
func (Insecure) Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	tag, ok := unframe(sig)
	if !ok || pub == nil {
		return false
	}
	want := insecureTag(pub, msg)
	if len(tag) != len(want) {
		return false
	}
	for i := range tag {
		if tag[i] != want[i] {
			return false
		}
	}
	return true
}

func unframe(sig []byte) ([]byte, bool) {
	if len(sig) != SignatureSize {
		return nil, false
	}
	n := int(sig[0])
	if n > maxASN1SigLen {
		return nil, false
	}
	return sig[1 : 1+n], true
}

// MarshalPublicKey encodes an ECDSA public key in PKIX DER form for
// embedding in certificates.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("pki: encoding public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey decodes a PKIX DER public key, requiring ECDSA P-256.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing public key: %w", err)
	}
	pub, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("pki: public key is %T, want *ecdsa.PublicKey", k)
	}
	if pub.Curve != elliptic.P256() {
		return nil, fmt.Errorf("pki: public key curve %v, want P-256", pub.Curve.Params().Name)
	}
	return pub, nil
}

// GenerateKey creates a fresh ECDSA P-256 key pair using rand (nil for
// crypto/rand).
func GenerateKey(rand io.Reader) (*ecdsa.PrivateKey, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), orCryptoRand(rand))
	if err != nil {
		return nil, fmt.Errorf("pki: generating key: %w", err)
	}
	return key, nil
}

func orCryptoRand(r io.Reader) io.Reader {
	if r != nil {
		return r
	}
	return cryptorand.Reader
}
