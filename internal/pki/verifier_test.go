package pki

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// verifierFixture builds an authority, two credentials and a sealed envelope
// factory under the given scheme.
type verifierFixture struct {
	trust  *TrustStore
	auth   *Authority
	scheme Scheme
	creds  []*Credential
}

func newVerifierFixture(t testing.TB, scheme Scheme, nCreds int) *verifierFixture {
	t.Helper()
	trust := NewTrustStore()
	auth, err := NewAuthority(1, trust, func() time.Duration { return 0 }, scheme, newDetReader(1))
	if err != nil {
		t.Fatal(err)
	}
	f := &verifierFixture{trust: trust, auth: auth, scheme: scheme}
	for i := 0; i < nCreds; i++ {
		cred, err := auth.Issue("veh", time.Hour, newDetReader(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		f.creds = append(f.creds, cred)
	}
	return f
}

func (f *verifierFixture) seal(t testing.TB, cred *Credential, seq uint32) *wire.Secure {
	t.Helper()
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: wire.SeqNum(seq), Issuer: cred.NodeID()}, cred, f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

// assertSameOpen checks that the cached verifier agrees with the uncached
// package-level Open on packet, certificate and error class.
func assertSameOpen(t *testing.T, v *Verifier, sec *wire.Secure, now time.Duration, trust *TrustStore, scheme Scheme) {
	t.Helper()
	wantPkt, wantCert, wantErr := Open(sec, trust, now, scheme)
	gotPkt, gotCert, gotErr := v.Open(sec, now)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("cached err = %v, uncached err = %v", gotErr, wantErr)
	}
	if wantErr != nil {
		for _, class := range []error{ErrBadSignature, ErrBadCertificate, ErrCertExpired, ErrUnknownAuthority} {
			if errors.Is(wantErr, class) != errors.Is(gotErr, class) {
				t.Fatalf("error class mismatch: cached %v, uncached %v", gotErr, wantErr)
			}
		}
		return
	}
	if !reflect.DeepEqual(gotPkt, wantPkt) {
		t.Fatalf("packet mismatch: cached %+v, uncached %+v", gotPkt, wantPkt)
	}
	if !reflect.DeepEqual(gotCert, wantCert) {
		t.Fatalf("cert mismatch: cached %+v, uncached %+v", gotCert, wantCert)
	}
}

// TestVerifierMatchesOpen holds cached and uncached verification to the same
// verdicts across valid, tampered, forged, expired and malformed envelopes —
// on a cold cache, and again after every envelope has been seen once (a warm
// cache must not change a single verdict).
func TestVerifierMatchesOpen(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
	}{
		{"ecdsa", ECDSA{Rand: newDetReader(9)}},
		{"insecure", Insecure{}},
		{"session", NewSessionToken(newDetReader(9))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newVerifierFixture(t, tc.scheme, 2)
			valid := f.seal(t, f.creds[0], 10)
			other := f.seal(t, f.creds[1], 11)

			tamperedInner := f.seal(t, f.creds[0], 12)
			tamperedInner.Inner[len(tamperedInner.Inner)-1] ^= 0x01

			tamperedSig := f.seal(t, f.creds[0], 13)
			tamperedSig.Signature[5] ^= 0x40

			swappedSig := f.seal(t, f.creds[0], 14)
			swappedSig.Signature = append([]byte(nil), other.Signature...)

			forgedCert := f.seal(t, f.creds[0], 15)
			forgedCert.Cert.Signature = append([]byte(nil), forgedCert.Cert.Signature...)
			forgedCert.Cert.Signature[3] ^= 0x80

			unknownAuth := f.seal(t, f.creds[0], 16)
			unknownAuth.Cert.Authority = 42

			promotedNode := f.seal(t, f.creds[0], 17)
			promotedNode.Cert.Node++ // claims a pseudonym the TA never signed

			cases := []struct {
				name string
				sec  *wire.Secure
				now  time.Duration
			}{
				{"valid", valid, 0},
				{"valid other sender", other, 0},
				{"tampered inner", tamperedInner, 0},
				{"tampered signature", tamperedSig, 0},
				{"signature from other envelope", swappedSig, 0},
				{"forged certificate signature", forgedCert, 0},
				{"unknown authority", unknownAuth, 0},
				{"promoted pseudonym", promotedNode, 0},
				{"expired certificate", valid, 2 * time.Hour},
				{"nil envelope", nil, 0},
			}
			v := NewVerifier(f.trust, f.scheme, VerifierOptions{})
			for pass := 0; pass < 2; pass++ { // cold, then warm
				for _, c := range cases {
					t.Run(c.name, func(t *testing.T) {
						assertSameOpen(t, v, c.sec, c.now, f.trust, f.scheme)
					})
				}
			}
		})
	}
}

// TestVerifierNoLaundering drives the adversarial cases against a cache that
// has already accepted the honest envelopes: nothing a cached success proves
// may transfer to tampered payloads, forged or expired certificates.
func TestVerifierNoLaundering(t *testing.T) {
	scheme := ECDSA{Rand: newDetReader(21)}
	f := newVerifierFixture(t, scheme, 2)
	v := NewVerifier(f.trust, scheme, VerifierOptions{})

	a := f.seal(t, f.creds[0], 1)
	b := f.seal(t, f.creds[1], 2)
	for _, sec := range []*wire.Secure{a, b} {
		if _, _, err := v.Open(sec, 0); err != nil {
			t.Fatalf("honest open: %v", err)
		}
		if _, _, err := v.Open(sec, 0); err != nil { // warm the envelope cache
			t.Fatalf("honest reopen: %v", err)
		}
	}

	t.Run("tampered payload after cached success", func(t *testing.T) {
		bad := *a
		bad.Inner = append([]byte(nil), a.Inner...)
		bad.Inner[0] ^= 0xff
		if _, _, err := v.Open(&bad, 0); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v, want ErrBadSignature", err)
		}
	})
	t.Run("signature swapped between cached envelopes", func(t *testing.T) {
		bad := *a
		bad.Signature = b.Signature
		if _, _, err := v.Open(&bad, 0); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v, want ErrBadSignature", err)
		}
	})
	t.Run("certificate swapped between cached envelopes", func(t *testing.T) {
		bad := *a
		bad.Cert = b.Cert
		if _, _, err := v.Open(&bad, 0); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v, want ErrBadSignature", err)
		}
	})
	t.Run("forged certificate never accepted", func(t *testing.T) {
		bad := *a
		bad.Cert.Signature = append([]byte(nil), a.Cert.Signature...)
		bad.Cert.Signature[2] ^= 0x01
		if _, _, err := v.Open(&bad, 0); !errors.Is(err, ErrBadCertificate) {
			t.Fatalf("err = %v, want ErrBadCertificate", err)
		}
	})
	t.Run("cached certificate expires on schedule", func(t *testing.T) {
		if _, _, err := v.Open(a, time.Hour-time.Nanosecond); err != nil {
			t.Fatalf("open just before expiry: %v", err)
		}
		if _, _, err := v.Open(a, time.Hour); !errors.Is(err, ErrCertExpired) {
			t.Fatalf("err = %v, want ErrCertExpired", err)
		}
		if _, _, err := v.Open(a, 2*time.Hour); !errors.Is(err, ErrCertExpired) {
			t.Fatalf("err = %v, want ErrCertExpired", err)
		}
	})
}

// TestVerifierEvictionBounded proves the caches never outgrow their bounds
// and that evicted entries are simply re-verified, not corrupted.
func TestVerifierEvictionBounded(t *testing.T) {
	scheme := ECDSA{Rand: newDetReader(31)}
	f := newVerifierFixture(t, scheme, 5)
	v := NewVerifier(f.trust, scheme, VerifierOptions{CertCapacity: 2, EnvelopeCapacity: 3})

	var secs []*wire.Secure
	for i, cred := range f.creds {
		secs = append(secs, f.seal(t, cred, uint32(i)))
	}
	for round := 0; round < 3; round++ {
		for _, sec := range secs {
			if _, _, err := v.Open(sec, 0); err != nil {
				t.Fatalf("open: %v", err)
			}
		}
		if n := v.certs.len(); n > 2 {
			t.Fatalf("cert cache grew to %d, capacity 2", n)
		}
		if n := v.envs.len(); n > 3 {
			t.Fatalf("envelope cache grew to %d, capacity 3", n)
		}
	}
	st := v.Stats()
	// 5 senders cycling through capacity-2/3 caches: every open misses, so
	// verification counts match the disabled path — correctness over reuse.
	if st.CertHits != 0 || st.EnvelopeHits != 0 {
		t.Fatalf("unexpected hits under thrashing: %+v", st)
	}
}

// TestOpenBatchMatchesSequential pins OpenBatch to per-envelope Open
// results, including nil slots.
func TestOpenBatchMatchesSequential(t *testing.T) {
	scheme := ECDSA{Rand: newDetReader(41)}
	f := newVerifierFixture(t, scheme, 3)
	good := f.seal(t, f.creds[0], 1)
	bad := f.seal(t, f.creds[1], 2)
	bad.Inner[0] ^= 0x10
	batch := []*wire.Secure{good, nil, bad, f.seal(t, f.creds[2], 3), good}

	seq := NewVerifier(f.trust, scheme, VerifierOptions{})
	var want []OpenResult
	for _, sec := range batch {
		pkt, cert, err := seq.Open(sec, 0)
		want = append(want, OpenResult{Packet: pkt, Cert: cert, Err: err})
	}

	v := NewVerifier(f.trust, scheme, VerifierOptions{})
	got := v.OpenBatch(batch, 0)
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("slot %d: err = %v, want %v", i, got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Packet, want[i].Packet) {
			t.Fatalf("slot %d: packet = %+v, want %+v", i, got[i].Packet, want[i].Packet)
		}
		if !reflect.DeepEqual(got[i].Cert, want[i].Cert) {
			t.Fatalf("slot %d: cert = %+v, want %+v", i, got[i].Cert, want[i].Cert)
		}
	}
}

// relayedWorkload models the traffic shape the cache is for: a handful of
// neighbours whose envelopes are each received many times via re-broadcast.
func relayedWorkload(t testing.TB, f *verifierFixture, copies int) []*wire.Secure {
	t.Helper()
	var uniques []*wire.Secure
	for i, cred := range f.creds {
		for p := 0; p < 2; p++ {
			uniques = append(uniques, f.seal(t, cred, uint32(i*10+p)))
		}
	}
	var work []*wire.Secure
	for c := 0; c < copies; c++ {
		for i := range uniques {
			work = append(work, uniques[(i+c)%len(uniques)])
		}
	}
	return work
}

// TestCachedVerifyReduction is the tentpole's acceptance check: on a relayed
// workload (each envelope received 8 times) the cache must cut scheme
// verifications by at least 5x versus the uncached reference path.
func TestCachedVerifyReduction(t *testing.T) {
	scheme := ECDSA{Rand: newDetReader(51)}
	f := newVerifierFixture(t, scheme, 8)
	work := relayedWorkload(t, f, 8)

	ref := NewVerifier(f.trust, scheme, VerifierOptions{Disabled: true})
	cached := NewVerifier(f.trust, scheme, VerifierOptions{})
	for _, sec := range work {
		if _, _, err := ref.Open(sec, 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cached.Open(sec, 0); err != nil {
			t.Fatal(err)
		}
	}
	uncached := ref.Stats().SchemeVerifies
	got := cached.Stats().SchemeVerifies
	if got == 0 || uncached < 5*got {
		t.Fatalf("scheme verifies: uncached %d, cached %d — want >=5x reduction", uncached, got)
	}
	t.Logf("relayed workload (%d opens): %d uncached verifies vs %d cached (%.1fx)",
		len(work), uncached, got, float64(uncached)/float64(got))
}

// TestVerifierAllocsCachedOpen pins the allocation cost of a warm-cache Open
// — the steady-state hot path — low enough that relayed traffic does not
// churn the heap. Budget: the decoded inner packet plus decode internals.
func TestVerifierAllocsCachedOpen(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	scheme := ECDSA{Rand: newDetReader(61)}
	f := newVerifierFixture(t, scheme, 1)
	sec := f.seal(t, f.creds[0], 7)
	v := NewVerifier(f.trust, scheme, VerifierOptions{})
	if _, _, err := v.Open(sec, 0); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, _, err := v.Open(sec, 0); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 4 // decoded packet + cert copy + decode scratch
	if got > budget {
		t.Fatalf("warm cached Open: %.0f allocs/op, budget %d", got, budget)
	}
}
