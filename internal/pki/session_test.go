package pki

import (
	"errors"
	"testing"
	"time"

	"blackdp/internal/wire"
)

// TestSessionTokenRoundTrip runs the full envelope path — TA-signed
// certificate plus per-packet token — under the session scheme.
func TestSessionTokenRoundTrip(t *testing.T) {
	scheme := NewSessionToken(newDetReader(3))
	f := newVerifierFixture(t, scheme, 1)
	sec := f.seal(t, f.creds[0], 5)
	pkt, cert, err := Open(sec, f.trust, 0, scheme)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rrep, ok := pkt.(*wire.RREP); !ok || rrep.DestSeq != 5 {
		t.Fatalf("decoded %+v, want RREP with DestSeq 5", pkt)
	}
	if cert.Node != f.creds[0].NodeID() {
		t.Fatalf("cert node = %v, want %v", cert.Node, f.creds[0].NodeID())
	}
}

// TestSessionTokenAmortization pins the scheme's cost model: real ECDSA work
// happens once per epoch per side, no matter how many packets flow.
func TestSessionTokenAmortization(t *testing.T) {
	scheme := NewSessionToken(newDetReader(5))
	f := newVerifierFixture(t, scheme, 1)
	const packets = 50
	for i := 0; i < packets; i++ {
		sec := f.seal(t, f.creds[0], uint32(i))
		if _, _, err := Open(sec, f.trust, 0, scheme); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	st := scheme.Stats()
	// Two epochs total: the TA's signing key (certificates) and the
	// vehicle's key (packets). Each is anchored once per side.
	if st.EpochSigns != 2 {
		t.Errorf("EpochSigns = %d, want 2 (TA + vehicle)", st.EpochSigns)
	}
	if st.EpochVerifies != 2 {
		t.Errorf("EpochVerifies = %d, want 2 (TA + vehicle)", st.EpochVerifies)
	}
	if st.MACSigns < packets {
		t.Errorf("MACSigns = %d, want >= %d", st.MACSigns, packets)
	}
	if st.MACVerifies < packets {
		t.Errorf("MACVerifies = %d, want >= %d", st.MACVerifies, packets)
	}
}

// TestSessionTokenRejections drives the forgery surface: tampering, keys
// with no anchored epoch, cross-epoch token reuse, corrupted anchors, and
// receivers the epoch was never announced to.
func TestSessionTokenRejections(t *testing.T) {
	scheme := NewSessionToken(newDetReader(7))
	f := newVerifierFixture(t, scheme, 2)
	sec := f.seal(t, f.creds[0], 9)
	if _, _, err := Open(sec, f.trust, 0, scheme); err != nil {
		t.Fatalf("honest open: %v", err)
	}

	t.Run("tampered payload", func(t *testing.T) {
		bad := *sec
		bad.Inner = append([]byte(nil), sec.Inner...)
		bad.Inner[0] ^= 0x01
		if _, _, err := Open(&bad, f.trust, 0, scheme); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v, want ErrBadSignature", err)
		}
	})
	t.Run("tampered tag", func(t *testing.T) {
		bad := *sec
		bad.Signature = append([]byte(nil), sec.Signature...)
		bad.Signature[4] ^= 0x01
		if _, _, err := Open(&bad, f.trust, 0, scheme); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v, want ErrBadSignature", err)
		}
	})
	t.Run("unanchored key", func(t *testing.T) {
		// A key that has never signed under this scheme has no epoch;
		// any tag presented for it must fail.
		key, err := GenerateKey(newDetReader(99))
		if err != nil {
			t.Fatal(err)
		}
		if scheme.Verify(&key.PublicKey, sec.Inner, sec.Signature) {
			t.Fatal("accepted a token for a key with no anchored epoch")
		}
	})
	t.Run("cross-epoch token", func(t *testing.T) {
		// A tag minted under cred[0]'s epoch presented as cred[1]'s:
		// the other epoch's session key cannot validate it.
		other := f.seal(t, f.creds[1], 10) // anchors cred[1]'s epoch
		if _, _, err := Open(other, f.trust, 0, scheme); err != nil {
			t.Fatal(err)
		}
		if scheme.Verify(&f.creds[1].Key.PublicKey, sec.Inner, sec.Signature) {
			t.Fatal("accepted a token across epochs")
		}
	})
	t.Run("renewal rotates the epoch", func(t *testing.T) {
		// Renewal mints a fresh key pair, hence a fresh epoch: the old
		// epoch's tokens are useless under the new pseudonym.
		renewed, err := f.auth.Renew(f.creds[0].Cert, time.Hour, newDetReader(123))
		if err != nil {
			t.Fatal(err)
		}
		if scheme.Verify(&renewed.Key.PublicKey, sec.Inner, sec.Signature) {
			t.Fatal("old epoch's token accepted under renewed pseudonym")
		}
		fresh, err := Seal(&wire.RREP{Origin: 1, Dest: 2, Issuer: renewed.NodeID()}, renewed, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(fresh, f.trust, 0, scheme); err != nil {
			t.Fatalf("renewed epoch open: %v", err)
		}
	})
	t.Run("corrupted anchor", func(t *testing.T) {
		// A fresh verifier-side epoch whose anchor signature was damaged
		// in the session table must reject every packet: the session key
		// is only trusted once its ECDSA anchor verifies.
		corrupt := NewSessionToken(newDetReader(11))
		g := newVerifierFixture(t, corrupt, 1)
		csec := g.seal(t, g.creds[0], 1)
		fp, ok := sessionFingerprint(&g.creds[0].Key.PublicKey)
		if !ok {
			t.Fatal("fingerprint failed")
		}
		corrupt.mu.Lock()
		corrupt.sessions[fp].anchorSig[3] ^= 0x20
		corrupt.mu.Unlock()
		if corrupt.Verify(&g.creds[0].Key.PublicKey, csec.Inner, csec.Signature) {
			t.Fatal("accepted a token whose epoch anchor does not verify")
		}
	})
	t.Run("unannounced receiver", func(t *testing.T) {
		// A receiver whose session table never saw the epoch (a separate
		// scheme instance) rejects the packet outright.
		elsewhere := NewSessionToken(newDetReader(13))
		if elsewhere.Verify(&f.creds[0].Key.PublicKey, sec.Inner, sec.Signature) {
			t.Fatal("accepted a token for an epoch never announced here")
		}
	})
	t.Run("malformed frame", func(t *testing.T) {
		if scheme.Verify(&f.creds[0].Key.PublicKey, sec.Inner, sec.Signature[:10]) {
			t.Fatal("accepted a short signature frame")
		}
		if scheme.Verify(nil, sec.Inner, sec.Signature) {
			t.Fatal("accepted a nil public key")
		}
	})
}

// TestSessionTokenWireShape pins the invariant the determinism contract
// rides on: session tokens occupy exactly the same fixed-width signature
// field as ECDSA, so packet sizes and event timing are scheme-independent.
func TestSessionTokenWireShape(t *testing.T) {
	scheme := NewSessionToken(newDetReader(17))
	key, err := GenerateKey(newDetReader(18))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := scheme.Sign(key, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureSize {
		t.Fatalf("session signature is %d bytes, want SignatureSize %d", len(sig), SignatureSize)
	}
	if !scheme.Verify(&key.PublicKey, []byte("payload"), sig) {
		t.Fatal("round trip failed")
	}
}

// TestSessionTokenCheapVerify documents that the verifier's envelope cache
// stays off for session tokens: the MAC check is as cheap as the cache
// lookup would be, so only the certificate cache engages.
func TestSessionTokenCheapVerify(t *testing.T) {
	scheme := NewSessionToken(newDetReader(19))
	v := NewVerifier(NewTrustStore(), scheme, VerifierOptions{})
	if v.cacheEnvelopes {
		t.Fatal("envelope cache engaged for session tokens")
	}
	if ev := NewVerifier(NewTrustStore(), ECDSA{}, VerifierOptions{}); !ev.cacheEnvelopes {
		t.Fatal("envelope cache not engaged for ECDSA")
	}
}
