package pki

import (
	"testing"
	"time"

	"blackdp/internal/wire"
)

func benchSetup(b *testing.B, scheme Scheme) (*Authority, *Credential, *TrustStore) {
	b.Helper()
	trust := NewTrustStore()
	a, err := NewAuthority(1, trust, func() time.Duration { return 0 }, scheme, newDetReader(1))
	if err != nil {
		b.Fatal(err)
	}
	cred, err := a.Issue("veh", time.Hour, newDetReader(2))
	if err != nil {
		b.Fatal(err)
	}
	return a, cred, trust
}

// BenchmarkSealECDSA measures signing one route reply (the per-RREP cost a
// destination or intermediate pays).
func BenchmarkSealECDSA(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, _ := benchSetup(b, scheme)
	p := &wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, HopCount: 3, Issuer: cred.NodeID()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(p, cred, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenECDSA measures the receiver side: certificate verification
// plus signature verification plus decode — the paper's per-packet
// authentication cost at vehicles and RSUs.
func BenchmarkOpenECDSA(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(sec, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenInsecure is the ablation control for Open.
func BenchmarkOpenInsecure(b *testing.B) {
	scheme := Insecure{}
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(sec, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIssue measures credential issuance (key generation + TA
// signature), the TA-side renewal cost the paper worries about under load.
func BenchmarkIssue(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	a, _, _ := benchSetup(b, scheme)
	r := newDetReader(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Issue("bench", time.Hour, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyCertificate isolates the certificate check.
func BenchmarkVerifyCertificate(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, trust := benchSetup(b, scheme)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyCertificate(&cred.Cert, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}
