package pki

import (
	"testing"
	"time"

	"blackdp/internal/wire"
)

func benchSetup(b *testing.B, scheme Scheme) (*Authority, *Credential, *TrustStore) {
	b.Helper()
	trust := NewTrustStore()
	a, err := NewAuthority(1, trust, func() time.Duration { return 0 }, scheme, newDetReader(1))
	if err != nil {
		b.Fatal(err)
	}
	cred, err := a.Issue("veh", time.Hour, newDetReader(2))
	if err != nil {
		b.Fatal(err)
	}
	return a, cred, trust
}

// BenchmarkSealECDSA measures signing one route reply (the per-RREP cost a
// destination or intermediate pays).
func BenchmarkSealECDSA(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, _ := benchSetup(b, scheme)
	p := &wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, HopCount: 3, Issuer: cred.NodeID()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(p, cred, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenECDSA measures the receiver side: certificate verification
// plus signature verification plus decode — the paper's per-packet
// authentication cost at vehicles and RSUs.
func BenchmarkOpenECDSA(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(sec, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenInsecure is the ablation control for Open.
func BenchmarkOpenInsecure(b *testing.B) {
	scheme := Insecure{}
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(sec, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIssue measures credential issuance (key generation + TA
// signature), the TA-side renewal cost the paper worries about under load.
func BenchmarkIssue(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	a, _, _ := benchSetup(b, scheme)
	r := newDetReader(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Issue("bench", time.Hour, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyCertificate isolates the certificate check.
func BenchmarkVerifyCertificate(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, trust := benchSetup(b, scheme)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyCertificate(&cred.Cert, trust, 0, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenECDSACached measures the steady-state receiver cost once the
// verification cache is warm — the price of a re-broadcast reception.
func BenchmarkOpenECDSACached(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	v := NewVerifier(trust, scheme, VerifierOptions{})
	if _, _, err := v.Open(sec, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Open(sec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// relayedBenchWorkload builds the cache's target traffic shape: a small
// neighbourhood of senders whose envelopes each arrive several times.
func relayedBenchWorkload(b *testing.B, scheme Scheme) (*TrustStore, []*wire.Secure) {
	b.Helper()
	trust := NewTrustStore()
	a, err := NewAuthority(1, trust, func() time.Duration { return 0 }, scheme, newDetReader(1))
	if err != nil {
		b.Fatal(err)
	}
	var uniques []*wire.Secure
	for s := 0; s < 8; s++ {
		cred, err := a.Issue("veh", time.Hour, newDetReader(int64(200+s)))
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < 2; p++ {
			sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: wire.SeqNum(s*10 + p), Issuer: cred.NodeID()}, cred, scheme)
			if err != nil {
				b.Fatal(err)
			}
			uniques = append(uniques, sec)
		}
	}
	var work []*wire.Secure
	for c := 0; c < 8; c++ { // each envelope received 8 times
		for i := range uniques {
			work = append(work, uniques[(i+c)%len(uniques)])
		}
	}
	return trust, work
}

// BenchmarkOpenRelayedECDSA is the uncached reference on the relayed
// workload: every reception pays the full certificate + envelope ECDSA cost.
func BenchmarkOpenRelayedECDSA(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	trust, work := relayedBenchWorkload(b, scheme)
	v := NewVerifier(trust, scheme, VerifierOptions{Disabled: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Open(work[i%len(work)], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(v.Stats().SchemeVerifies)/float64(b.N), "verifies/op")
}

// BenchmarkOpenRelayedECDSACached is the same workload through the cache:
// each envelope verifies once per node, repeats cost two digests. The 16
// unique envelopes are opened once during setup so the loop measures the
// steady state even at tiny -benchtime iteration counts; the one-off miss
// cost is BenchmarkOpenECDSA, and TestCachedVerifyReduction pins the >= 5x
// verification reduction including the cold misses.
func BenchmarkOpenRelayedECDSACached(b *testing.B) {
	scheme := ECDSA{Rand: newDetReader(3)}
	trust, work := relayedBenchWorkload(b, scheme)
	v := NewVerifier(trust, scheme, VerifierOptions{})
	for _, sec := range work {
		if _, _, err := v.Open(sec, 0); err != nil {
			b.Fatal(err)
		}
	}
	warmVerifies := v.Stats().SchemeVerifies
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Open(work[i%len(work)], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(v.Stats().SchemeVerifies-warmVerifies)/float64(b.N), "verifies/op")
}

// BenchmarkSealSessionToken measures the sender-side per-packet cost under
// the session-token scheme (epoch anchor amortized away).
func BenchmarkSealSessionToken(b *testing.B) {
	scheme := NewSessionToken(newDetReader(3))
	_, cred, _ := benchSetup(b, scheme)
	p := &wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, HopCount: 3, Issuer: cred.NodeID()}
	if _, err := Seal(p, cred, scheme); err != nil { // establish the epoch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(p, cred, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenSessionToken measures the receiver-side per-packet cost under
// the session-token scheme: after the one ECDSA anchor verification per
// epoch, each packet is an HMAC compare (plus the cached certificate check).
func BenchmarkOpenSessionToken(b *testing.B) {
	scheme := NewSessionToken(newDetReader(3))
	_, cred, trust := benchSetup(b, scheme)
	sec, err := Seal(&wire.RREP{Origin: 1, Dest: 7, DestSeq: 75, Issuer: cred.NodeID()}, cred, scheme)
	if err != nil {
		b.Fatal(err)
	}
	v := NewVerifier(trust, scheme, VerifierOptions{})
	if _, _, err := v.Open(sec, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Open(sec, 0); err != nil {
			b.Fatal(err)
		}
	}
}
