package wire

import (
	"testing"
	"time"
)

func BenchmarkMarshalRREQ(b *testing.B) {
	p := &RREQ{FloodID: 7, Origin: 11, Dest: 42, DestSeq: 9, HopCount: 2, TTL: 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRREQ(b *testing.B) {
	p := &RREQ{FloodID: 7, Origin: 11, Dest: 42, DestSeq: 9, HopCount: 2, TTL: 30}
	buf, err := p.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalSecureEnvelope(b *testing.B) {
	inner, err := (&RREP{Origin: 1, Dest: 7, DestSeq: 200, HopCount: 4, Issuer: 66}).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	p := &Secure{
		Inner: inner,
		Cert: Certificate{
			Serial: 5, Node: 66, Authority: 1,
			PubKey: make([]byte, 91), Expiry: time.Hour, Signature: make([]byte, 73),
		},
		Signature: make([]byte, 73),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSecureEnvelope(b *testing.B) {
	inner, _ := (&RREP{Origin: 1, Dest: 7, DestSeq: 200, Issuer: 66}).MarshalBinary()
	p := &Secure{
		Inner: inner,
		Cert: Certificate{
			Serial: 5, Node: 66, Authority: 1,
			PubKey: make([]byte, 91), Expiry: time.Hour, Signature: make([]byte, 73),
		},
		Signature: make([]byte, 73),
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
