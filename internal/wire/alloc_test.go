package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"blackdp/internal/sim"
)

// TestAppendBinaryMatchesMarshal checks, for every packet kind, that
// AppendBinary into a reused buffer produces exactly the MarshalBinary bytes
// and honours an existing prefix.
func TestAppendBinaryMatchesMarshal(t *testing.T) {
	scratch := make([]byte, 0, 512)
	for _, p := range samplePackets() {
		want, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: MarshalBinary: %v", p.Kind(), err)
		}
		got, err := p.AppendBinary(scratch[:0])
		if err != nil {
			t.Fatalf("%v: AppendBinary: %v", p.Kind(), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendBinary != MarshalBinary", p.Kind())
		}
		prefixed, err := p.AppendBinary([]byte("prefix"))
		if err != nil {
			t.Fatalf("%v: AppendBinary with prefix: %v", p.Kind(), err)
		}
		if !bytes.Equal(prefixed, append([]byte("prefix"), want...)) {
			t.Errorf("%v: AppendBinary did not append after existing prefix", p.Kind())
		}
	}
}

// TestUnmarshalBinaryRoundTrip checks the typed decoders agree with Decode
// and reject wrong-kind and truncated input.
func TestUnmarshalBinaryRoundTrip(t *testing.T) {
	for _, p := range samplePackets() {
		b, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: MarshalBinary: %v", p.Kind(), err)
		}
		// Fresh instance of the same concrete type, decoded via the typed path.
		got := reflect.New(reflect.TypeOf(p).Elem()).Interface().(interface {
			UnmarshalBinary([]byte) error
		})
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("%v: UnmarshalBinary: %v", p.Kind(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("%v: typed round trip mismatch:\n got %+v\nwant %+v", p.Kind(), got, p)
		}
		if err := got.UnmarshalBinary(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("%v: UnmarshalBinary(nil) = %v, want ErrTruncated", p.Kind(), err)
		}
	}
	var h Hello
	rrep, _ := (&RREP{}).MarshalBinary()
	if err := h.UnmarshalBinary(rrep); !errors.Is(err, ErrBadKind) {
		t.Errorf("Hello.UnmarshalBinary(RREP bytes) = %v, want ErrBadKind", err)
	}
}

// TestAllocsEncodeRoundTrip pins the hot codec paths: encoding into a warm
// scratch buffer and stack-decoding a fixed-size packet must not allocate,
// and Size must stay allocation-free via the pooled scratch buffer.
func TestAllocsEncodeRoundTrip(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	p := &Hello{Origin: 1, Dest: 7, Nonce: 42, Reply: true, Hops: 3}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h Hello
	got := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = p.AppendBinary(buf[:0])
		if err != nil {
			panic(err)
		}
		if err := h.UnmarshalBinary(buf); err != nil {
			panic(err)
		}
	})
	if got > 0 {
		t.Errorf("AppendBinary+UnmarshalBinary round trip: %.1f allocs/op, budget 0", got)
	}
	if h != *p {
		t.Fatalf("round trip mismatch: %+v != %+v", h, *p)
	}
	Size(p) // warm the pool outside the measurement
	got = testing.AllocsPerRun(200, func() { Size(p) })
	if got > 0 {
		t.Errorf("Size: %.1f allocs/op, budget 0", got)
	}
}
