package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// samplePackets returns one representative instance of every packet kind.
func samplePackets() []Packet {
	return []Packet{
		&RREQ{FloodID: 7, Origin: 11, OriginSeq: 3, Dest: 42, DestSeq: 9, HopCount: 2, TTL: 30, WantNext: true},
		&RREP{Origin: 11, Dest: 42, DestSeq: 120, HopCount: 4, Lifetime: 3 * time.Second, Issuer: 13, IssuerCluster: 5, NextHop: 99},
		&RERR{Reporter: 5, Unreachable: []UnreachableDest{{Node: 42, Seq: 8}, {Node: 43, Seq: 9}}},
		&Hello{Origin: 1, Dest: 7, Nonce: 0xdeadbeef, Reply: true, Hops: 3},
		&Data{Origin: 1, Dest: 7, SeqNo: 12, Payload: []byte("road closed ahead")},
		&JoinReq{Vehicle: 21, PosX: 1234.5, PosY: 60.25, SpeedMS: 22.2, Eastbound: true, Overlapped: true, Failover: true},
		&JoinRep{Head: 1001, Cluster: 3, Vehicle: 21},
		&Leave{Vehicle: 21, Cluster: 3},
		&DetectReq{Reporter: 21, ReporterCluster: 1, Suspect: 66, SuspectCluster: 2, SuspectSerial: 777, FakeDest: 50, PriorSeq: 250, Forwards: 1, Nonce: 0x1122334455667788},
		&DetectResp{Reporter: 21, Suspect: 66, Verdict: VerdictMalicious, Teammate: 67},
		&RevocationReq{Head: 1002, Suspect: 66, CertSerial: 555, Cluster: 2},
		&RevocationNotice{Authority: 1, Revoked: RevokedCert{Node: 66, CertSerial: 555, Expiry: time.Hour}},
		&BlacklistNotice{Head: 1002, Cluster: 2, Revoked: []RevokedCert{
			{Node: 66, CertSerial: 555, Expiry: time.Hour},
			{Node: 67, CertSerial: 556, Expiry: 2 * time.Hour},
		}},
		&RenewalReq{Current: 21, CertSerial: 17, NewPubKey: []byte{4, 8, 15}},
		&RenewalResp{Requester: 21, Denied: false, Cert: Certificate{
			Serial: 18, Node: 121, Authority: 1,
			PubKey: []byte{4, 1, 2, 3}, Expiry: time.Hour, Signature: []byte{9, 8, 7},
		}},
		&Secure{Inner: []byte{byte(KindHello), 0, 0}, Cert: Certificate{
			Serial: 18, Node: 121, Authority: 1,
			PubKey: []byte{4, 1, 2}, Expiry: time.Hour, Signature: []byte{5},
		}, Signature: []byte{1, 2, 3, 4}},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, p := range samplePackets() {
		p := p
		t.Run(p.Kind().String(), func(t *testing.T) {
			b, err := p.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			if len(b) == 0 || Kind(b[0]) != p.Kind() {
				t.Fatalf("leading kind byte = %v, want %v", b[0], p.Kind())
			}
			got, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, p) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
			}
		})
	}
}

func TestDecodeEmptyAndBadKind(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) error = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0xff}); !errors.Is(err, ErrBadKind) {
		t.Errorf("Decode(0xff) error = %v, want ErrBadKind", err)
	}
	if _, err := Decode([]byte{0}); !errors.Is(err, ErrBadKind) {
		t.Errorf("Decode(0) error = %v, want ErrBadKind", err)
	}
}

// TestDecodeTruncations checks every strict prefix of every sample packet
// fails cleanly rather than panicking or succeeding.
func TestDecodeTruncations(t *testing.T) {
	for _, p := range samplePackets() {
		b, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: MarshalBinary: %v", p.Kind(), err)
		}
		for n := 1; n < len(b); n++ {
			if _, err := Decode(b[:n]); err == nil {
				t.Errorf("%v: Decode of %d/%d-byte prefix succeeded", p.Kind(), n, len(b))
			}
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	for _, p := range samplePackets() {
		b, _ := p.MarshalBinary()
		if _, err := Decode(append(b, 0x00)); err == nil {
			t.Errorf("%v: Decode accepted trailing garbage", p.Kind())
		}
	}
}

func TestDecodeRandomGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		// Must never panic; errors are fine, and a successful decode must
		// re-encode to the same bytes.
		p, err := Decode(b)
		if err != nil {
			continue
		}
		again, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded garbage failed: %v", err)
		}
		if !reflect.DeepEqual(again, b) {
			t.Fatalf("decode/encode of garbage not canonical:\n in  %x\n out %x", b, again)
		}
	}
}

func TestOverlongFieldsRejected(t *testing.T) {
	big := make([]byte, maxVarLen+1)
	if _, err := (&Data{Payload: big}).MarshalBinary(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize Data payload error = %v, want ErrTooLong", err)
	}
	if _, err := (&Secure{Inner: big}).MarshalBinary(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize Secure inner error = %v, want ErrTooLong", err)
	}
	rerr := &RERR{Unreachable: make([]UnreachableDest, maxVarLen+1)}
	if _, err := rerr.MarshalBinary(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize RERR error = %v, want ErrTooLong", err)
	}
	bl := &BlacklistNotice{Revoked: make([]RevokedCert, maxVarLen+1)}
	if _, err := bl.MarshalBinary(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize BlacklistNotice error = %v, want ErrTooLong", err)
	}
}

func TestRREQRoundTripProperty(t *testing.T) {
	prop := func(floodID uint32, origin, dest uint64, oseq, dseq uint32, hop, ttl uint8, want bool) bool {
		p := &RREQ{
			FloodID: floodID, Origin: NodeID(origin), OriginSeq: SeqNum(oseq),
			Dest: NodeID(dest), DestSeq: SeqNum(dseq), HopCount: hop, TTL: ttl, WantNext: want,
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRREPRoundTripProperty(t *testing.T) {
	prop := func(origin, dest, issuer, next uint64, seq uint32, hop uint8, life int64, cl uint16) bool {
		p := &RREP{
			Origin: NodeID(origin), Dest: NodeID(dest), DestSeq: SeqNum(seq),
			HopCount: hop, Lifetime: time.Duration(life), Issuer: NodeID(issuer),
			IssuerCluster: ClusterID(cl), NextHop: NodeID(next),
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	prop := func(origin, dest uint64, seq uint32, payload []byte) bool {
		if len(payload) > maxVarLen {
			payload = payload[:maxVarLen]
		}
		p := &Data{Origin: NodeID(origin), Dest: NodeID(dest), SeqNo: seq, Payload: payload}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		q := got.(*Data)
		if len(payload) == 0 {
			return len(q.Payload) == 0
		}
		return reflect.DeepEqual(q, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHelloRoundTripProperty(t *testing.T) {
	prop := func(origin, dest, nonce uint64, reply bool, hops uint8) bool {
		p := &Hello{Origin: NodeID(origin), Dest: NodeID(dest), Nonce: nonce, Reply: reply, Hops: hops}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJoinReqRoundTripProperty(t *testing.T) {
	prop := func(vehicle uint64, x, y, speed float64, east, overlapped bool) bool {
		p := &JoinReq{Vehicle: NodeID(vehicle), PosX: x, PosY: y, SpeedMS: speed, Eastbound: east, Overlapped: overlapped}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		q := got.(*JoinReq)
		// NaN != NaN; compare bit patterns via re-marshal instead.
		again, err := q.MarshalBinary()
		return err == nil && reflect.DeepEqual(again, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDetectReqRoundTripProperty(t *testing.T) {
	prop := func(rep, sus uint64, rc, sc uint16, serial uint64, fake uint64, prior uint32, fwd uint8, nonce uint64) bool {
		p := &DetectReq{
			Reporter: NodeID(rep), ReporterCluster: ClusterID(rc),
			Suspect: NodeID(sus), SuspectCluster: ClusterID(sc),
			SuspectSerial: serial, FakeDest: NodeID(fake), PriorSeq: SeqNum(prior), Forwards: fwd,
			Nonce: nonce,
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCertificatePreimageExcludesSignature(t *testing.T) {
	c := Certificate{Serial: 1, Node: 2, Authority: 3, PubKey: []byte{4, 5}, Expiry: time.Hour, Signature: []byte{6}}
	a := c.Preimage()
	c.Signature = []byte{7, 8, 9}
	b := c.Preimage()
	if !reflect.DeepEqual(a, b) {
		t.Error("Preimage changed when only the signature changed")
	}
	c.Serial = 99
	if reflect.DeepEqual(c.Preimage(), a) {
		t.Error("Preimage did not change when the serial changed")
	}
}

func TestSize(t *testing.T) {
	for _, p := range samplePackets() {
		b, _ := p.MarshalBinary()
		if got := Size(p); got != len(b) {
			t.Errorf("%v: Size = %d, want %d", p.Kind(), got, len(b))
		}
	}
	// The d_req the paper describes is a small control packet (the 8-byte
	// retransmission nonce is the one field this reproduction adds).
	if s := Size(&DetectReq{}); s > 56 {
		t.Errorf("DetectReq size = %d bytes, expected a compact packet", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindRREQ; k < kindEnd; k++ {
		if !k.Valid() {
			t.Errorf("Kind %d not Valid()", k)
		}
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Error("out-of-range kinds report Valid")
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("unknown Kind String not diagnostic")
	}
}

func TestVerdictStrings(t *testing.T) {
	verdicts := []Verdict{VerdictUnknown, VerdictMalicious, VerdictLegitimate, VerdictUnreachable, VerdictAlreadyKnown}
	seen := map[string]bool{}
	for _, v := range verdicts {
		s := v.String()
		if strings.HasPrefix(s, "Verdict(") || seen[s] {
			t.Errorf("Verdict %d has bad or duplicate name %q", v, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Verdict(99).String(), "Verdict(") {
		t.Error("unknown Verdict String not diagnostic")
	}
}

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "*" {
		t.Errorf("Broadcast.String() = %q, want *", Broadcast.String())
	}
	if NodeID(17).String() != "n17" {
		t.Errorf("NodeID(17).String() = %q", NodeID(17).String())
	}
}

func TestSecureRoundTripNested(t *testing.T) {
	inner := &RREP{Origin: 1, Dest: 7, DestSeq: 200, HopCount: 4, Issuer: 66}
	ib, err := inner.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sec := &Secure{
		Inner:     ib,
		Cert:      Certificate{Serial: 5, Node: 66, PubKey: []byte{4, 9}, Expiry: time.Minute, Signature: []byte{1}},
		Signature: []byte{2, 3},
	}
	b, err := sec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gotSec := got.(*Secure)
	nested, err := Decode(gotSec.Inner)
	if err != nil {
		t.Fatalf("decoding nested packet: %v", err)
	}
	if !reflect.DeepEqual(nested, inner) {
		t.Errorf("nested packet mismatch: %+v", nested)
	}
}
