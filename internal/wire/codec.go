package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Codec errors.
var (
	// ErrTruncated reports a buffer that ended before the packet did.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrBadKind reports an unknown leading Kind byte.
	ErrBadKind = errors.New("wire: unknown packet kind")
	// ErrTooLong reports a variable-length field exceeding its wire bound.
	ErrTooLong = errors.New("wire: field too long")
)

// maxVarLen bounds every variable-length field (payloads, keys, signatures,
// lists) to keep decoders allocation-safe on hostile input.
const maxVarLen = 1 << 16

// writer appends big-endian fields to a buffer. It is used as a stack value;
// only the buffer it builds escapes.
type writer struct {
	buf []byte
}

// start begins a packet encoding appended to dst: when dst is nil a fresh
// buffer is allocated with the size hint, otherwise the caller's buffer (and
// capacity) is reused.
func start(dst []byte, kind Kind, sizeHint int) writer {
	if dst == nil {
		dst = make([]byte, 0, sizeHint+1)
	}
	return writer{buf: append(dst, byte(kind))}
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) duration(d time.Duration) { w.u64(uint64(d)) }

func (w *writer) bytes(b []byte) error {
	if len(b) > maxVarLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(b))
	}
	w.u16(uint16(len(b)))
	w.buf = append(w.buf, b...)
	return nil
}

// reader consumes big-endian fields from a buffer, latching the first error.
// Like writer it lives on the caller's stack.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// boolean accepts only the canonical encodings 0 and 1. Rejecting other
// bytes keeps decode∘encode the identity on every accepted input — a
// relayed packet cannot silently normalise in flight (found by FuzzDecode).
func (r *reader) boolean() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: non-canonical boolean byte %#x", v)
		}
		return true
	}
}

func (r *reader) duration() time.Duration { return time.Duration(r.u64()) }

func (r *reader) bytes() []byte {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// finish returns the latched error, also failing if trailing bytes remain.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// body strips and verifies the leading Kind byte for UnmarshalBinary.
func body(b []byte, want Kind) ([]byte, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	if Kind(b[0]) != want {
		return nil, fmt.Errorf("%w: got %v, want %v", ErrBadKind, Kind(b[0]), want)
	}
	return b[1:], nil
}

// Decode parses a packet from its wire bytes, dispatching on the leading
// Kind byte. Each call allocates a fresh packet; hot paths that know the
// kind in advance (Frame.Kind) can instead UnmarshalBinary into a stack
// value and skip the heap entirely.
func Decode(b []byte) (Packet, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	kind := Kind(b[0])
	var (
		p   Packet
		err error
	)
	switch kind {
	case KindRREQ:
		p, err = alloc[RREQ](b)
	case KindRREP:
		p, err = alloc[RREP](b)
	case KindRERR:
		p, err = alloc[RERR](b)
	case KindHello:
		p, err = alloc[Hello](b)
	case KindData:
		p, err = alloc[Data](b)
	case KindJoinReq:
		p, err = alloc[JoinReq](b)
	case KindJoinRep:
		p, err = alloc[JoinRep](b)
	case KindLeave:
		p, err = alloc[Leave](b)
	case KindDetectReq:
		p, err = alloc[DetectReq](b)
	case KindDetectResp:
		p, err = alloc[DetectResp](b)
	case KindRevocationReq:
		p, err = alloc[RevocationReq](b)
	case KindRevocationNotice:
		p, err = alloc[RevocationNotice](b)
	case KindBlacklistNotice:
		p, err = alloc[BlacklistNotice](b)
	case KindRenewalReq:
		p, err = alloc[RenewalReq](b)
	case KindRenewalResp:
		p, err = alloc[RenewalResp](b)
	case KindSecure:
		p, err = alloc[Secure](b)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	return p, nil
}

// unmarshaler is the pointer-receiver decode constraint for alloc.
type unmarshaler[T any] interface {
	*T
	Packet
	UnmarshalBinary(b []byte) error
}

// alloc heap-allocates a T and unmarshals the full wire bytes into it.
func alloc[T any, PT unmarshaler[T]](b []byte) (Packet, error) {
	p := PT(new(T))
	if err := p.UnmarshalBinary(b); err != nil {
		return nil, err
	}
	return p, nil
}

// AppendBinary implements Packet.
func (p *RREQ) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRREQ, 31)
	w.u32(p.FloodID)
	w.u64(uint64(p.Origin))
	w.u32(uint32(p.OriginSeq))
	w.u64(uint64(p.Dest))
	w.u32(uint32(p.DestSeq))
	w.u8(p.HopCount)
	w.u8(p.TTL)
	w.boolean(p.WantNext)
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p. It does not allocate, so decoding into a stack value is free.
func (p *RREQ) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRREQ)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RREQ{
		FloodID:   r.u32(),
		Origin:    NodeID(r.u64()),
		OriginSeq: SeqNum(r.u32()),
		Dest:      NodeID(r.u64()),
		DestSeq:   SeqNum(r.u32()),
		HopCount:  r.u8(),
		TTL:       r.u8(),
		WantNext:  r.boolean(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *RREP) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRREP, 47)
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u32(uint32(p.DestSeq))
	w.u8(p.HopCount)
	w.duration(p.Lifetime)
	w.u64(uint64(p.Issuer))
	w.u16(uint16(p.IssuerCluster))
	w.u64(uint64(p.NextHop))
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *RREP) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRREP)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RREP{
		Origin:        NodeID(r.u64()),
		Dest:          NodeID(r.u64()),
		DestSeq:       SeqNum(r.u32()),
		HopCount:      r.u8(),
		Lifetime:      r.duration(),
		Issuer:        NodeID(r.u64()),
		IssuerCluster: ClusterID(r.u16()),
		NextHop:       NodeID(r.u64()),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *RERR) AppendBinary(dst []byte) ([]byte, error) {
	if len(p.Unreachable) > maxVarLen {
		return nil, fmt.Errorf("%w: %d unreachable entries", ErrTooLong, len(p.Unreachable))
	}
	w := start(dst, KindRERR, 10+12*len(p.Unreachable))
	w.u64(uint64(p.Reporter))
	w.u16(uint16(len(p.Unreachable)))
	for _, u := range p.Unreachable {
		w.u64(uint64(u.Node))
		w.u32(uint32(u.Seq))
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p. The Unreachable slice is allocated only when non-empty.
func (p *RERR) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRERR)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RERR{Reporter: NodeID(r.u64())}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		p.Unreachable = append(p.Unreachable, UnreachableDest{
			Node: NodeID(r.u64()),
			Seq:  SeqNum(r.u32()),
		})
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *Hello) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindHello, 26)
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u64(p.Nonce)
	w.boolean(p.Reply)
	w.u8(p.Hops)
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p. It does not allocate.
func (p *Hello) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindHello)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = Hello{
		Origin: NodeID(r.u64()),
		Dest:   NodeID(r.u64()),
		Nonce:  r.u64(),
		Reply:  r.boolean(),
		Hops:   r.u8(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *Data) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindData, 22+len(p.Payload))
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u32(p.SeqNo)
	if err := w.bytes(p.Payload); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p. The payload is copied out of b, so b may be reused.
func (p *Data) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindData)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = Data{
		Origin:  NodeID(r.u64()),
		Dest:    NodeID(r.u64()),
		SeqNo:   r.u32(),
		Payload: r.bytes(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *JoinReq) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindJoinReq, 35)
	w.u64(uint64(p.Vehicle))
	w.f64(p.PosX)
	w.f64(p.PosY)
	w.f64(p.SpeedMS)
	w.boolean(p.Eastbound)
	w.boolean(p.Overlapped)
	w.boolean(p.Failover)
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *JoinReq) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindJoinReq)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = JoinReq{
		Vehicle:    NodeID(r.u64()),
		PosX:       r.f64(),
		PosY:       r.f64(),
		SpeedMS:    r.f64(),
		Eastbound:  r.boolean(),
		Overlapped: r.boolean(),
		Failover:   r.boolean(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *JoinRep) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindJoinRep, 18)
	w.u64(uint64(p.Head))
	w.u16(uint16(p.Cluster))
	w.u64(uint64(p.Vehicle))
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *JoinRep) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindJoinRep)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = JoinRep{
		Head:    NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
		Vehicle: NodeID(r.u64()),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *Leave) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindLeave, 10)
	w.u64(uint64(p.Vehicle))
	w.u16(uint16(p.Cluster))
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *Leave) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindLeave)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = Leave{
		Vehicle: NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *DetectReq) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindDetectReq, 50)
	w.u64(uint64(p.Reporter))
	w.u16(uint16(p.ReporterCluster))
	w.u64(uint64(p.Suspect))
	w.u16(uint16(p.SuspectCluster))
	w.u64(p.SuspectSerial)
	w.u64(uint64(p.FakeDest))
	w.u32(uint32(p.PriorSeq))
	w.u8(p.Forwards)
	w.u64(p.Nonce)
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *DetectReq) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindDetectReq)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = DetectReq{
		Reporter:        NodeID(r.u64()),
		ReporterCluster: ClusterID(r.u16()),
		Suspect:         NodeID(r.u64()),
		SuspectCluster:  ClusterID(r.u16()),
		SuspectSerial:   r.u64(),
		FakeDest:        NodeID(r.u64()),
		PriorSeq:        SeqNum(r.u32()),
		Forwards:        r.u8(),
		Nonce:           r.u64(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *DetectResp) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindDetectResp, 25)
	w.u64(uint64(p.Reporter))
	w.u64(uint64(p.Suspect))
	w.u8(uint8(p.Verdict))
	w.u64(uint64(p.Teammate))
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *DetectResp) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindDetectResp)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = DetectResp{
		Reporter: NodeID(r.u64()),
		Suspect:  NodeID(r.u64()),
		Verdict:  Verdict(r.u8()),
		Teammate: NodeID(r.u64()),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *RevocationReq) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRevocationReq, 26)
	w.u64(uint64(p.Head))
	w.u64(uint64(p.Suspect))
	w.u64(p.CertSerial)
	w.u16(uint16(p.Cluster))
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *RevocationReq) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRevocationReq)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RevocationReq{
		Head:       NodeID(r.u64()),
		Suspect:    NodeID(r.u64()),
		CertSerial: r.u64(),
		Cluster:    ClusterID(r.u16()),
	}
	return r.finish()
}

func (w *writer) revokedCert(rc RevokedCert) {
	w.u64(uint64(rc.Node))
	w.u64(rc.CertSerial)
	w.duration(rc.Expiry)
}

func (r *reader) revokedCert() RevokedCert {
	return RevokedCert{
		Node:       NodeID(r.u64()),
		CertSerial: r.u64(),
		Expiry:     r.duration(),
	}
}

// AppendBinary implements Packet.
func (p *RevocationNotice) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRevocationNotice, 26)
	w.u16(uint16(p.Authority))
	w.revokedCert(p.Revoked)
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *RevocationNotice) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRevocationNotice)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RevocationNotice{
		Authority: AuthorityID(r.u16()),
		Revoked:   r.revokedCert(),
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *BlacklistNotice) AppendBinary(dst []byte) ([]byte, error) {
	if len(p.Revoked) > maxVarLen {
		return nil, fmt.Errorf("%w: %d blacklist entries", ErrTooLong, len(p.Revoked))
	}
	w := start(dst, KindBlacklistNotice, 12+24*len(p.Revoked))
	w.u64(uint64(p.Head))
	w.u16(uint16(p.Cluster))
	w.u16(uint16(len(p.Revoked)))
	for _, rc := range p.Revoked {
		w.revokedCert(rc)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *BlacklistNotice) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindBlacklistNotice)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = BlacklistNotice{
		Head:    NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
	}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		p.Revoked = append(p.Revoked, r.revokedCert())
	}
	return r.finish()
}

// AppendBinary implements Packet.
func (p *RenewalReq) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRenewalReq, 18+len(p.NewPubKey))
	w.u64(uint64(p.Current))
	w.u64(p.CertSerial)
	if err := w.bytes(p.NewPubKey); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *RenewalReq) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRenewalReq)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RenewalReq{
		Current:    NodeID(r.u64()),
		CertSerial: r.u64(),
		NewPubKey:  r.bytes(),
	}
	return r.finish()
}

func (w *writer) certificate(c Certificate) error {
	w.u64(c.Serial)
	w.u64(uint64(c.Node))
	w.u16(uint16(c.Authority))
	if err := w.bytes(c.PubKey); err != nil {
		return err
	}
	w.duration(c.Expiry)
	return w.bytes(c.Signature)
}

func (r *reader) certificate() Certificate {
	return Certificate{
		Serial:    r.u64(),
		Node:      NodeID(r.u64()),
		Authority: AuthorityID(r.u16()),
		PubKey:    r.bytes(),
		Expiry:    r.duration(),
		Signature: r.bytes(),
	}
}

// AppendBinary implements Packet.
func (p *RenewalResp) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindRenewalResp, 48+len(p.Cert.PubKey)+len(p.Cert.Signature))
	w.u64(uint64(p.Requester))
	w.boolean(p.Denied)
	if err := w.certificate(p.Cert); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p.
func (p *RenewalResp) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindRenewalResp)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = RenewalResp{
		Requester: NodeID(r.u64()),
		Denied:    r.boolean(),
		Cert:      r.certificate(),
	}
	return r.finish()
}

// Preimage returns the byte string a Trusted Authority signs when issuing
// the certificate: every field except the signature itself.
func (c *Certificate) Preimage() []byte {
	w := writer{buf: make([]byte, 0, 28+len(c.PubKey))}
	w.u64(c.Serial)
	w.u64(uint64(c.Node))
	w.u16(uint16(c.Authority))
	// PubKey length is bounded by construction (SEC1 P-256 point, 65 bytes);
	// a too-long key would already have failed MarshalBinary.
	_ = w.bytes(c.PubKey)
	w.duration(c.Expiry)
	return w.buf
}

// AppendBinary implements Packet.
func (p *Secure) AppendBinary(dst []byte) ([]byte, error) {
	w := start(dst, KindSecure, 50+len(p.Inner)+len(p.Cert.PubKey)+len(p.Cert.Signature)+len(p.Signature))
	if err := w.bytes(p.Inner); err != nil {
		return nil, err
	}
	if err := w.certificate(p.Cert); err != nil {
		return nil, err
	}
	if err := w.bytes(p.Signature); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// UnmarshalBinary decodes the full wire bytes (including the Kind byte),
// replacing p. Secure packets are always heap-decoded in protocol code:
// detection candidates retain the envelope, so the struct must not live in a
// reused scratch buffer.
func (p *Secure) UnmarshalBinary(b []byte) error {
	b, err := body(b, KindSecure)
	if err != nil {
		return err
	}
	r := reader{buf: b}
	*p = Secure{
		Inner:     r.bytes(),
		Cert:      r.certificate(),
		Signature: r.bytes(),
	}
	return r.finish()
}

// scratch pools small encode buffers for transient marshals (Size, sealing
// digests) so measuring or hashing a packet does not allocate per call.
var scratch = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// GetScratch borrows a pooled encode buffer (length 0). Pass the returned
// pointer back to PutScratch when done; the buffer's contents must not be
// retained past that point.
func GetScratch() *[]byte { return scratch.Get().(*[]byte) }

// PutScratch returns a buffer borrowed from GetScratch to the pool.
func PutScratch(b *[]byte) {
	*b = (*b)[:0]
	scratch.Put(b)
}

// Size returns the on-air size of p in bytes, panicking on marshal failure
// (only possible for over-length variable fields, a programming error). It
// encodes into a pooled scratch buffer, so it does not allocate.
func Size(p Packet) int {
	bp := GetScratch()
	b, err := p.AppendBinary((*bp)[:0])
	if err != nil {
		panic(fmt.Sprintf("wire: Size(%v): %v", p.Kind(), err))
	}
	n := len(b)
	*bp = b[:0]
	PutScratch(bp)
	return n
}

// MarshalBinary implements Packet.
func (p *RREQ) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RREP) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RERR) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *Hello) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *Data) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *JoinReq) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *JoinRep) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *Leave) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *DetectReq) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *DetectResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RevocationReq) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RevocationNotice) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *BlacklistNotice) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RenewalReq) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *RenewalResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// MarshalBinary implements Packet.
func (p *Secure) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }
