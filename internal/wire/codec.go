package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Codec errors.
var (
	// ErrTruncated reports a buffer that ended before the packet did.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrBadKind reports an unknown leading Kind byte.
	ErrBadKind = errors.New("wire: unknown packet kind")
	// ErrTooLong reports a variable-length field exceeding its wire bound.
	ErrTooLong = errors.New("wire: field too long")
)

// maxVarLen bounds every variable-length field (payloads, keys, signatures,
// lists) to keep decoders allocation-safe on hostile input.
const maxVarLen = 1 << 16

// writer appends big-endian fields to a buffer.
type writer struct {
	buf []byte
}

func newWriter(kind Kind, sizeHint int) *writer {
	w := &writer{buf: make([]byte, 0, sizeHint+1)}
	w.u8(uint8(kind))
	return w
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) duration(d time.Duration) { w.u64(uint64(d)) }

func (w *writer) bytes(b []byte) error {
	if len(b) > maxVarLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(b))
	}
	w.u16(uint16(len(b)))
	w.buf = append(w.buf, b...)
	return nil
}

// reader consumes big-endian fields from a buffer, latching the first error.
type reader struct {
	buf []byte
	off int
	err error
}

func newReader(b []byte) *reader { return &reader{buf: b} }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// boolean accepts only the canonical encodings 0 and 1. Rejecting other
// bytes keeps decode∘encode the identity on every accepted input — a
// relayed packet cannot silently normalise in flight (found by FuzzDecode).
func (r *reader) boolean() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: non-canonical boolean byte %#x", v)
		}
		return true
	}
}

func (r *reader) duration() time.Duration { return time.Duration(r.u64()) }

func (r *reader) bytes() []byte {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// finish returns the latched error, also failing if trailing bytes remain.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Decode parses a packet from its wire bytes, dispatching on the leading
// Kind byte.
func Decode(b []byte) (Packet, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	kind := Kind(b[0])
	body := b[1:]
	var (
		p   Packet
		err error
	)
	switch kind {
	case KindRREQ:
		p, err = decodeRREQ(body)
	case KindRREP:
		p, err = decodeRREP(body)
	case KindRERR:
		p, err = decodeRERR(body)
	case KindHello:
		p, err = decodeHello(body)
	case KindData:
		p, err = decodeData(body)
	case KindJoinReq:
		p, err = decodeJoinReq(body)
	case KindJoinRep:
		p, err = decodeJoinRep(body)
	case KindLeave:
		p, err = decodeLeave(body)
	case KindDetectReq:
		p, err = decodeDetectReq(body)
	case KindDetectResp:
		p, err = decodeDetectResp(body)
	case KindRevocationReq:
		p, err = decodeRevocationReq(body)
	case KindRevocationNotice:
		p, err = decodeRevocationNotice(body)
	case KindBlacklistNotice:
		p, err = decodeBlacklistNotice(body)
	case KindRenewalReq:
		p, err = decodeRenewalReq(body)
	case KindRenewalResp:
		p, err = decodeRenewalResp(body)
	case KindSecure:
		p, err = decodeSecure(body)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	return p, nil
}

// MarshalBinary implements Packet.
func (p *RREQ) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRREQ, 31)
	w.u32(p.FloodID)
	w.u64(uint64(p.Origin))
	w.u32(uint32(p.OriginSeq))
	w.u64(uint64(p.Dest))
	w.u32(uint32(p.DestSeq))
	w.u8(p.HopCount)
	w.u8(p.TTL)
	w.boolean(p.WantNext)
	return w.buf, nil
}

func decodeRREQ(b []byte) (*RREQ, error) {
	r := newReader(b)
	p := &RREQ{
		FloodID:   r.u32(),
		Origin:    NodeID(r.u64()),
		OriginSeq: SeqNum(r.u32()),
		Dest:      NodeID(r.u64()),
		DestSeq:   SeqNum(r.u32()),
		HopCount:  r.u8(),
		TTL:       r.u8(),
		WantNext:  r.boolean(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *RREP) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRREP, 47)
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u32(uint32(p.DestSeq))
	w.u8(p.HopCount)
	w.duration(p.Lifetime)
	w.u64(uint64(p.Issuer))
	w.u16(uint16(p.IssuerCluster))
	w.u64(uint64(p.NextHop))
	return w.buf, nil
}

func decodeRREP(b []byte) (*RREP, error) {
	r := newReader(b)
	p := &RREP{
		Origin:        NodeID(r.u64()),
		Dest:          NodeID(r.u64()),
		DestSeq:       SeqNum(r.u32()),
		HopCount:      r.u8(),
		Lifetime:      r.duration(),
		Issuer:        NodeID(r.u64()),
		IssuerCluster: ClusterID(r.u16()),
		NextHop:       NodeID(r.u64()),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *RERR) MarshalBinary() ([]byte, error) {
	if len(p.Unreachable) > maxVarLen {
		return nil, fmt.Errorf("%w: %d unreachable entries", ErrTooLong, len(p.Unreachable))
	}
	w := newWriter(KindRERR, 10+12*len(p.Unreachable))
	w.u64(uint64(p.Reporter))
	w.u16(uint16(len(p.Unreachable)))
	for _, u := range p.Unreachable {
		w.u64(uint64(u.Node))
		w.u32(uint32(u.Seq))
	}
	return w.buf, nil
}

func decodeRERR(b []byte) (*RERR, error) {
	r := newReader(b)
	p := &RERR{Reporter: NodeID(r.u64())}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		p.Unreachable = append(p.Unreachable, UnreachableDest{
			Node: NodeID(r.u64()),
			Seq:  SeqNum(r.u32()),
		})
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *Hello) MarshalBinary() ([]byte, error) {
	w := newWriter(KindHello, 26)
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u64(p.Nonce)
	w.boolean(p.Reply)
	w.u8(p.Hops)
	return w.buf, nil
}

func decodeHello(b []byte) (*Hello, error) {
	r := newReader(b)
	p := &Hello{
		Origin: NodeID(r.u64()),
		Dest:   NodeID(r.u64()),
		Nonce:  r.u64(),
		Reply:  r.boolean(),
		Hops:   r.u8(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *Data) MarshalBinary() ([]byte, error) {
	w := newWriter(KindData, 22+len(p.Payload))
	w.u64(uint64(p.Origin))
	w.u64(uint64(p.Dest))
	w.u32(p.SeqNo)
	if err := w.bytes(p.Payload); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func decodeData(b []byte) (*Data, error) {
	r := newReader(b)
	p := &Data{
		Origin:  NodeID(r.u64()),
		Dest:    NodeID(r.u64()),
		SeqNo:   r.u32(),
		Payload: r.bytes(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *JoinReq) MarshalBinary() ([]byte, error) {
	w := newWriter(KindJoinReq, 35)
	w.u64(uint64(p.Vehicle))
	w.f64(p.PosX)
	w.f64(p.PosY)
	w.f64(p.SpeedMS)
	w.boolean(p.Eastbound)
	w.boolean(p.Overlapped)
	w.boolean(p.Failover)
	return w.buf, nil
}

func decodeJoinReq(b []byte) (*JoinReq, error) {
	r := newReader(b)
	p := &JoinReq{
		Vehicle:    NodeID(r.u64()),
		PosX:       r.f64(),
		PosY:       r.f64(),
		SpeedMS:    r.f64(),
		Eastbound:  r.boolean(),
		Overlapped: r.boolean(),
		Failover:   r.boolean(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *JoinRep) MarshalBinary() ([]byte, error) {
	w := newWriter(KindJoinRep, 18)
	w.u64(uint64(p.Head))
	w.u16(uint16(p.Cluster))
	w.u64(uint64(p.Vehicle))
	return w.buf, nil
}

func decodeJoinRep(b []byte) (*JoinRep, error) {
	r := newReader(b)
	p := &JoinRep{
		Head:    NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
		Vehicle: NodeID(r.u64()),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *Leave) MarshalBinary() ([]byte, error) {
	w := newWriter(KindLeave, 10)
	w.u64(uint64(p.Vehicle))
	w.u16(uint16(p.Cluster))
	return w.buf, nil
}

func decodeLeave(b []byte) (*Leave, error) {
	r := newReader(b)
	p := &Leave{
		Vehicle: NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *DetectReq) MarshalBinary() ([]byte, error) {
	w := newWriter(KindDetectReq, 50)
	w.u64(uint64(p.Reporter))
	w.u16(uint16(p.ReporterCluster))
	w.u64(uint64(p.Suspect))
	w.u16(uint16(p.SuspectCluster))
	w.u64(p.SuspectSerial)
	w.u64(uint64(p.FakeDest))
	w.u32(uint32(p.PriorSeq))
	w.u8(p.Forwards)
	w.u64(p.Nonce)
	return w.buf, nil
}

func decodeDetectReq(b []byte) (*DetectReq, error) {
	r := newReader(b)
	p := &DetectReq{
		Reporter:        NodeID(r.u64()),
		ReporterCluster: ClusterID(r.u16()),
		Suspect:         NodeID(r.u64()),
		SuspectCluster:  ClusterID(r.u16()),
		SuspectSerial:   r.u64(),
		FakeDest:        NodeID(r.u64()),
		PriorSeq:        SeqNum(r.u32()),
		Forwards:        r.u8(),
		Nonce:           r.u64(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *DetectResp) MarshalBinary() ([]byte, error) {
	w := newWriter(KindDetectResp, 25)
	w.u64(uint64(p.Reporter))
	w.u64(uint64(p.Suspect))
	w.u8(uint8(p.Verdict))
	w.u64(uint64(p.Teammate))
	return w.buf, nil
}

func decodeDetectResp(b []byte) (*DetectResp, error) {
	r := newReader(b)
	p := &DetectResp{
		Reporter: NodeID(r.u64()),
		Suspect:  NodeID(r.u64()),
		Verdict:  Verdict(r.u8()),
		Teammate: NodeID(r.u64()),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *RevocationReq) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRevocationReq, 26)
	w.u64(uint64(p.Head))
	w.u64(uint64(p.Suspect))
	w.u64(p.CertSerial)
	w.u16(uint16(p.Cluster))
	return w.buf, nil
}

func decodeRevocationReq(b []byte) (*RevocationReq, error) {
	r := newReader(b)
	p := &RevocationReq{
		Head:       NodeID(r.u64()),
		Suspect:    NodeID(r.u64()),
		CertSerial: r.u64(),
		Cluster:    ClusterID(r.u16()),
	}
	return p, r.finish()
}

func (w *writer) revokedCert(rc RevokedCert) {
	w.u64(uint64(rc.Node))
	w.u64(rc.CertSerial)
	w.duration(rc.Expiry)
}

func (r *reader) revokedCert() RevokedCert {
	return RevokedCert{
		Node:       NodeID(r.u64()),
		CertSerial: r.u64(),
		Expiry:     r.duration(),
	}
}

// MarshalBinary implements Packet.
func (p *RevocationNotice) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRevocationNotice, 26)
	w.u16(uint16(p.Authority))
	w.revokedCert(p.Revoked)
	return w.buf, nil
}

func decodeRevocationNotice(b []byte) (*RevocationNotice, error) {
	r := newReader(b)
	p := &RevocationNotice{
		Authority: AuthorityID(r.u16()),
		Revoked:   r.revokedCert(),
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *BlacklistNotice) MarshalBinary() ([]byte, error) {
	if len(p.Revoked) > maxVarLen {
		return nil, fmt.Errorf("%w: %d blacklist entries", ErrTooLong, len(p.Revoked))
	}
	w := newWriter(KindBlacklistNotice, 12+24*len(p.Revoked))
	w.u64(uint64(p.Head))
	w.u16(uint16(p.Cluster))
	w.u16(uint16(len(p.Revoked)))
	for _, rc := range p.Revoked {
		w.revokedCert(rc)
	}
	return w.buf, nil
}

func decodeBlacklistNotice(b []byte) (*BlacklistNotice, error) {
	r := newReader(b)
	p := &BlacklistNotice{
		Head:    NodeID(r.u64()),
		Cluster: ClusterID(r.u16()),
	}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		p.Revoked = append(p.Revoked, r.revokedCert())
	}
	return p, r.finish()
}

// MarshalBinary implements Packet.
func (p *RenewalReq) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRenewalReq, 18+len(p.NewPubKey))
	w.u64(uint64(p.Current))
	w.u64(p.CertSerial)
	if err := w.bytes(p.NewPubKey); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func decodeRenewalReq(b []byte) (*RenewalReq, error) {
	r := newReader(b)
	p := &RenewalReq{
		Current:    NodeID(r.u64()),
		CertSerial: r.u64(),
		NewPubKey:  r.bytes(),
	}
	return p, r.finish()
}

func (w *writer) certificate(c Certificate) error {
	w.u64(c.Serial)
	w.u64(uint64(c.Node))
	w.u16(uint16(c.Authority))
	if err := w.bytes(c.PubKey); err != nil {
		return err
	}
	w.duration(c.Expiry)
	return w.bytes(c.Signature)
}

func (r *reader) certificate() Certificate {
	return Certificate{
		Serial:    r.u64(),
		Node:      NodeID(r.u64()),
		Authority: AuthorityID(r.u16()),
		PubKey:    r.bytes(),
		Expiry:    r.duration(),
		Signature: r.bytes(),
	}
}

// MarshalBinary implements Packet.
func (p *RenewalResp) MarshalBinary() ([]byte, error) {
	w := newWriter(KindRenewalResp, 48+len(p.Cert.PubKey)+len(p.Cert.Signature))
	w.u64(uint64(p.Requester))
	w.boolean(p.Denied)
	if err := w.certificate(p.Cert); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func decodeRenewalResp(b []byte) (*RenewalResp, error) {
	r := newReader(b)
	p := &RenewalResp{
		Requester: NodeID(r.u64()),
		Denied:    r.boolean(),
		Cert:      r.certificate(),
	}
	return p, r.finish()
}

// Preimage returns the byte string a Trusted Authority signs when issuing
// the certificate: every field except the signature itself.
func (c *Certificate) Preimage() []byte {
	w := &writer{buf: make([]byte, 0, 28+len(c.PubKey))}
	w.u64(c.Serial)
	w.u64(uint64(c.Node))
	w.u16(uint16(c.Authority))
	// PubKey length is bounded by construction (SEC1 P-256 point, 65 bytes);
	// a too-long key would already have failed MarshalBinary.
	_ = w.bytes(c.PubKey)
	w.duration(c.Expiry)
	return w.buf
}

// MarshalBinary implements Packet.
func (p *Secure) MarshalBinary() ([]byte, error) {
	w := newWriter(KindSecure, 50+len(p.Inner)+len(p.Cert.PubKey)+len(p.Cert.Signature)+len(p.Signature))
	if err := w.bytes(p.Inner); err != nil {
		return nil, err
	}
	if err := w.certificate(p.Cert); err != nil {
		return nil, err
	}
	if err := w.bytes(p.Signature); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func decodeSecure(b []byte) (*Secure, error) {
	r := newReader(b)
	p := &Secure{
		Inner:     r.bytes(),
		Cert:      r.certificate(),
		Signature: r.bytes(),
	}
	return p, r.finish()
}

// Size returns the on-air size of p in bytes, panicking on marshal failure
// (only possible for over-length variable fields, a programming error).
func Size(p Packet) int {
	b, err := p.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("wire: Size(%v): %v", p.Kind(), err))
	}
	return len(b)
}
