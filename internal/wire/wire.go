// Package wire defines every packet format exchanged in the simulated
// connected-vehicle network: AODV routing packets (RREQ, RREP, RERR, Hello,
// Data), cluster-membership packets (JoinReq, JoinRep, Leave), BlackDP
// detection packets (DetectReq, DetectResp and the bait probes reuse RREQ/
// RREP), and PKI packets (certificates, revocation requests/notices,
// blacklist notices, pseudonym renewal).
//
// Each packet has a hand-written binary codec so the simulator can account
// for on-air bytes; Decode dispatches on the leading Kind byte. The package
// sits at the bottom of the dependency graph and imports only the standard
// library.
package wire

import (
	"fmt"
	"time"
)

// NodeID is a temporary pseudonymous identity (IEEE 1609.2-style id) issued
// by a Trusted Authority. Cluster heads and TAs hold NodeIDs too. The zero
// value addresses no one; broadcasts use Broadcast.
type NodeID uint64

// Broadcast is the layer-3 destination meaning "all neighbours".
const Broadcast NodeID = 0

func (id NodeID) String() string {
	if id == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", uint64(id))
}

// SeqNum is an AODV destination sequence number. Higher means fresher.
type SeqNum uint32

// ClusterID is a 1-based static cluster index on the highway; 0 means
// unknown/none.
type ClusterID uint16

// AuthorityID identifies a Trusted Authority node; 0 means unknown.
type AuthorityID uint16

// Kind discriminates packet types on the wire.
type Kind uint8

// Packet kinds. Values are wire-stable; do not reorder.
const (
	KindRREQ Kind = iota + 1
	KindRREP
	KindRERR
	KindHello
	KindData
	KindJoinReq
	KindJoinRep
	KindLeave
	KindDetectReq
	KindDetectResp
	KindRevocationReq
	KindRevocationNotice
	KindBlacklistNotice
	KindRenewalReq
	KindRenewalResp
	KindSecure
	kindEnd // sentinel; keep last
)

var kindNames = map[Kind]string{
	KindRREQ:             "RREQ",
	KindRREP:             "RREP",
	KindRERR:             "RERR",
	KindHello:            "HELLO",
	KindData:             "DATA",
	KindJoinReq:          "JREQ",
	KindJoinRep:          "JREP",
	KindLeave:            "LEAVE",
	KindDetectReq:        "DREQ",
	KindDetectResp:       "DRESP",
	KindRevocationReq:    "REVOKE-REQ",
	KindRevocationNotice: "REVOKE-NOTICE",
	KindBlacklistNotice:  "BLACKLIST",
	KindRenewalReq:       "RENEW-REQ",
	KindRenewalResp:      "RENEW-RESP",
	KindSecure:           "SECURE",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined packet kind.
func (k Kind) Valid() bool { return k >= KindRREQ && k < kindEnd }

// Packet is implemented by every wire message.
type Packet interface {
	// Kind returns the wire discriminator for the packet type.
	Kind() Kind
	// MarshalBinary encodes the packet, including its leading Kind byte.
	MarshalBinary() ([]byte, error)
	// AppendBinary encodes the packet (including its leading Kind byte)
	// appended to dst, reusing dst's capacity. A nil dst behaves like
	// MarshalBinary.
	AppendBinary(dst []byte) ([]byte, error)
}

// RREQ is an AODV route request, flooded hop by hop. BlackDP cluster heads
// also use RREQs as bait probes against suspects (with a fabricated Dest and
// a disposable Origin).
type RREQ struct {
	FloodID   uint32 // per-origin flood identifier for duplicate suppression
	Origin    NodeID
	OriginSeq SeqNum
	Dest      NodeID
	DestSeq   SeqNum // minimum freshness demanded by the origin
	HopCount  uint8
	TTL       uint8
	WantNext  bool // BlackDP probe: demand the replier name its next hop
}

// Kind implements Packet.
func (*RREQ) Kind() Kind { return KindRREQ }

// RREP is an AODV route reply, unicast back along the reverse route. Nodes
// include their cluster-head association in packets they originate (paper
// SIII-A), which is how a reporter knows which cluster to name in a d_req.
type RREP struct {
	Origin        NodeID // requester the reply travels to
	Dest          NodeID // destination the route leads to
	DestSeq       SeqNum
	HopCount      uint8
	Lifetime      time.Duration
	Issuer        NodeID    // node that generated the reply (destination or intermediate)
	IssuerCluster ClusterID // issuer's registered cluster; 0 if unregistered
	NextHop       NodeID    // answer to RREQ.WantNext; 0 when not asked/unknown
}

// Kind implements Packet.
func (*RREP) Kind() Kind { return KindRREP }

// UnreachableDest is one broken-route entry in a RERR.
type UnreachableDest struct {
	Node NodeID
	Seq  SeqNum
}

// RERR is an AODV route error, broadcast when a next hop is lost.
type RERR struct {
	Reporter    NodeID
	Unreachable []UnreachableDest
}

// Kind implements Packet.
func (*RERR) Kind() Kind { return KindRERR }

// Hello serves two roles, as in the paper: with Dest == Broadcast it is the
// periodic AODV neighbour beacon; with a concrete Dest it is BlackDP's
// end-to-end route-verification probe, answered with Reply set.
type Hello struct {
	Origin NodeID
	Dest   NodeID
	Nonce  uint64 // correlates a probe with its reply
	Reply  bool
	Hops   uint8
}

// Kind implements Packet.
func (*Hello) Kind() Kind { return KindHello }

// Data is an application payload routed over established AODV routes. Black
// hole attackers silently drop these.
type Data struct {
	Origin  NodeID
	Dest    NodeID
	SeqNo   uint32
	Payload []byte
}

// Kind implements Packet.
func (*Data) Kind() Kind { return KindData }

// JoinReq asks a cluster head for membership. Vehicles in an overlapped zone
// broadcast it to all reachable heads with Overlapped set (paper SIII-A).
type JoinReq struct {
	Vehicle    NodeID
	PosX, PosY float64 // metres
	SpeedMS    float64 // metres/second
	Eastbound  bool
	Overlapped bool
	// Failover marks a join from a vehicle whose own cluster head stopped
	// answering: heads of adjacent clusters may admit it even though its
	// reported position lies outside their segment, so detection keeps
	// working while the home RSU is down.
	Failover bool
}

// Kind implements Packet.
func (*JoinReq) Kind() Kind { return KindJoinReq }

// JoinRep accepts a vehicle into a cluster and names the head so members can
// tag subsequent packets with their cluster.
type JoinRep struct {
	Head    NodeID
	Cluster ClusterID
	Vehicle NodeID
}

// Kind implements Packet.
func (*JoinRep) Kind() Kind { return KindJoinRep }

// Leave tells a cluster head the vehicle is departing; the head moves the
// entry to its history table.
type Leave struct {
	Vehicle NodeID
	Cluster ClusterID
}

// Kind implements Packet.
func (*Leave) Kind() Kind { return KindLeave }

// DetectReq is the paper's d_req = <v_i, v_i^cy, v_B, v_B^cy>: a legitimate
// node reports a suspicious route issuer to its cluster head for
// examination. When one cluster head hands an in-progress examination to
// another (the suspect moved, or lives elsewhere), the forwarded d_req
// additionally carries the probe state so the next head resumes rather than
// restarts: the disposable fake destination and the sequence number the
// suspect already claimed for it.
type DetectReq struct {
	Reporter        NodeID
	ReporterCluster ClusterID
	Suspect         NodeID
	SuspectCluster  ClusterID
	SuspectSerial   uint64 // certificate serial from the suspicious signed RREP; 0 unknown
	FakeDest        NodeID // probe destination already in use; 0 when not yet probed
	PriorSeq        SeqNum // sequence number from the suspect's first probe reply; 0 none
	Forwards        uint8  // times this d_req has been handed between heads (loop bound)
	// Nonce identifies one report across retransmissions: the reporter
	// draws it once and reuses it on every resend, so a head can tell a
	// lost-verdict retransmission (re-answer from cache) from a genuinely
	// new report (re-examine). 0 means the reporter does not retransmit.
	Nonce uint64
}

// Kind implements Packet.
func (*DetectReq) Kind() Kind { return KindDetectReq }

// Verdict is the outcome a cluster head reports for an examined suspect.
type Verdict uint8

// Verdict values.
const (
	VerdictUnknown      Verdict = iota // examination could not complete
	VerdictMalicious                   // protocol violation confirmed; node isolated
	VerdictLegitimate                  // suspect behaved correctly under probing
	VerdictUnreachable                 // suspect left before examination finished
	VerdictAlreadyKnown                // suspect was already blacklisted
)

func (v Verdict) String() string {
	switch v {
	case VerdictUnknown:
		return "unknown"
	case VerdictMalicious:
		return "malicious"
	case VerdictLegitimate:
		return "legitimate"
	case VerdictUnreachable:
		return "unreachable"
	case VerdictAlreadyKnown:
		return "already-known"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// DetectResp reports the examination outcome back to the reporter through
// its cluster head.
type DetectResp struct {
	Reporter NodeID
	Suspect  NodeID
	Verdict  Verdict
	Teammate NodeID // cooperative accomplice, when one was exposed; else 0
}

// Kind implements Packet.
func (*DetectResp) Kind() Kind { return KindDetectResp }

// Certificate is an IEEE 1609.2-style pseudonymous certificate: a TA-signed
// binding of a temporary NodeID to an ECDSA public key.
type Certificate struct {
	Serial    uint64
	Node      NodeID
	Authority AuthorityID
	PubKey    []byte        // SEC1-encoded ECDSA P-256 point
	Expiry    time.Duration // virtual time at which the certificate lapses
	Signature []byte        // TA's ECDSA signature over the preimage
}

// RevocationReq is sent by a cluster head to its Trusted Authority after a
// confirmed attack, asking for the suspect's certificate to be revoked.
type RevocationReq struct {
	Head       NodeID
	Suspect    NodeID
	CertSerial uint64
	Cluster    ClusterID
}

// Kind implements Packet.
func (*RevocationReq) Kind() Kind { return KindRevocationReq }

// RevokedCert is the blacklist record distributed for one revoked
// certificate: latest pseudonym, serial, and natural expiry (after which the
// record can be dropped).
type RevokedCert struct {
	Node       NodeID
	CertSerial uint64
	Expiry     time.Duration
}

// RevocationNotice is fanned out by the TA to surrounding cluster heads (and
// to peer TAs, pausing renewals for the attacker).
type RevocationNotice struct {
	Authority AuthorityID
	Revoked   RevokedCert
}

// Kind implements Packet.
func (*RevocationNotice) Kind() Kind { return KindRevocationNotice }

// BlacklistNotice is a cluster head telling its members (including newly
// joined vehicles) which certificates are revoked but not yet expired.
type BlacklistNotice struct {
	Head    NodeID
	Cluster ClusterID
	Revoked []RevokedCert
}

// Kind implements Packet.
func (*BlacklistNotice) Kind() Kind { return KindBlacklistNotice }

// RenewalReq asks the TA (via the local cluster head) for a fresh pseudonym
// certificate, presenting the current one. The vehicle generates its next
// key pair locally and submits only the public half (CSR-style), so private
// keys never travel.
type RenewalReq struct {
	Current    NodeID
	CertSerial uint64
	NewPubKey  []byte // PKIX DER public key for the next certificate
}

// Kind implements Packet.
func (*RenewalReq) Kind() Kind { return KindRenewalReq }

// RenewalResp carries the freshly issued certificate back to the vehicle.
// Denied is set when the TA has paused renewals for a revoked identity.
type RenewalResp struct {
	Requester NodeID
	Denied    bool
	Cert      Certificate
}

// Kind implements Packet.
func (*RenewalResp) Kind() Kind { return KindRenewalResp }

// Secure is the paper's "secure packet": an inner packet plus the sender's
// certificate and an ECDSA signature over the inner bytes (SHA-256 digest).
// Receivers verify the certificate against the TA key, then the signature
// against the certificate's public key, before decoding Inner.
type Secure struct {
	Inner     []byte // a marshalled Packet
	Cert      Certificate
	Signature []byte
}

// Kind implements Packet.
func (*Secure) Kind() Kind { return KindSecure }

// Compile-time interface checks.
var (
	_ Packet = (*RREQ)(nil)
	_ Packet = (*RREP)(nil)
	_ Packet = (*RERR)(nil)
	_ Packet = (*Hello)(nil)
	_ Packet = (*Data)(nil)
	_ Packet = (*JoinReq)(nil)
	_ Packet = (*JoinRep)(nil)
	_ Packet = (*Leave)(nil)
	_ Packet = (*DetectReq)(nil)
	_ Packet = (*DetectResp)(nil)
	_ Packet = (*RevocationReq)(nil)
	_ Packet = (*RevocationNotice)(nil)
	_ Packet = (*BlacklistNotice)(nil)
	_ Packet = (*RenewalReq)(nil)
	_ Packet = (*RenewalResp)(nil)
	_ Packet = (*Secure)(nil)
)
