package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode holds the codec to its two safety contracts on hostile input:
// Decode must never panic (black holes control what arrives on the air),
// and any successful decode must re-encode canonically — encode(decode(b))
// yields b again, so a relayed packet cannot mutate in flight.
//
// CI runs this as a short smoke (-fuzztime); run it open-ended with:
//
//	go test -run '^$' -fuzz FuzzDecode ./internal/wire
func FuzzDecode(f *testing.F) {
	// Seed corpus: the canonical encoding of every packet kind, plus the
	// degenerate shapes the unit tests already pin down.
	for _, p := range samplePackets() {
		b, err := p.MarshalBinary()
		if err != nil {
			f.Fatalf("%v: MarshalBinary: %v", p.Kind(), err)
		}
		f.Add(b)
		// A truncation and a corrupted-length variant per kind steer the
		// fuzzer toward the variable-length field parsing.
		f.Add(b[:len(b)/2])
		if len(b) > 3 {
			mut := append([]byte(nil), b...)
			mut[1] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x41}, 64))

	// Extra seeds for the detection and revocation packets, biased toward
	// the retransmission-nonce field: extreme values, the zero nonce
	// (non-retransmitting reporter), and a pre-nonce-length DetectReq —
	// old-format bytes must be rejected, not misparsed.
	for _, p := range []Packet{
		&DetectReq{Reporter: 1, Suspect: 2, Nonce: ^uint64(0)},
		&DetectReq{Reporter: 1, Suspect: 2, Forwards: 255, Nonce: 0},
		&DetectResp{Reporter: 3, Suspect: 4, Verdict: VerdictUnreachable},
		&DetectResp{Reporter: 3, Suspect: 4, Verdict: Verdict(255), Teammate: 5},
		&RevocationReq{Head: 6, Suspect: 7, CertSerial: ^uint64(0), Cluster: 65535},
		&RevocationNotice{Authority: 255, Revoked: RevokedCert{Node: 8, CertSerial: 9}},
	} {
		b, err := p.MarshalBinary()
		if err != nil {
			f.Fatalf("%v: MarshalBinary: %v", p.Kind(), err)
		}
		f.Add(b)
	}
	if full, err := (&DetectReq{Reporter: 1, Suspect: 2, Nonce: 1}).MarshalBinary(); err == nil {
		f.Add(full[:len(full)-8]) // the PR-2-era encoding, sans nonce
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b) // must not panic, whatever b holds
		if err != nil {
			return
		}
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v\n in %x", err, b)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, enc)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("decode/encode/decode drifted:\n first  %+v\n second %+v", p, again)
		}
	})
}
