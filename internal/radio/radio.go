// Package radio simulates the DSRC wireless channel and the wired RSU
// backbone.
//
// The wireless Medium is a unit-disk model: every attached device shares one
// transmission range (the paper assumes bidirectional links with an identical
// range for all nodes), and a frame reaches exactly the active devices within
// that range of the sender at transmit time. Per-receiver delay is
// transmission time (frame bits over the channel bitrate) plus propagation
// time plus a small uniform jitter standing in for MAC contention; an
// optional uniform loss rate injects failures. Addressing is by the sender's
// and receiver's current pseudonymous NodeID — unicast frames are delivered
// only to the addressee, broadcasts to every neighbour.
//
// A medium normally runs on one scheduler (the serial path, byte-identical
// across releases). For sharded runs (sim.Sharded), AddShard registers one
// execution context per shard — its runtime, RNG stream, channel counters and
// scratch — and AttachOn homes each device on one of them. Loss and jitter
// draws then come from the *sender's* shard stream, deliveries are routed to
// the *receiver's* home shard through sim.CrossPoster, and the spatial index
// is refreshed only at window barriers (Medium.RefreshIndex) so windows read
// it lock-free. A sharded run is deterministic and independent of worker
// count, but draws RNG from per-shard streams, so its outputs form their own
// mode — distinct from the serial stream — pinned by the scenario equality
// wall.
package radio

import (
	"fmt"
	"math"
	"time"

	"blackdp/internal/mobility"
	"blackdp/internal/sim"
	"blackdp/internal/wire"
)

// Frame is one link-layer transmission.
type Frame struct {
	From    wire.NodeID // transmitting neighbour (current pseudonym)
	To      wire.NodeID // wire.Broadcast for broadcasts
	Payload []byte      // a marshalled wire packet
}

// Kind peeks at the payload's packet kind without decoding. It returns an
// invalid Kind for empty payloads.
func (f Frame) Kind() wire.Kind {
	if len(f.Payload) == 0 {
		return 0
	}
	return wire.Kind(f.Payload[0])
}

// Receiver handles delivered frames.
type Receiver func(Frame)

// Option configures a Medium.
type Option func(*Medium)

// WithRange sets the shared transmission range in metres (default 1000,
// Table I).
func WithRange(metres float64) Option {
	return func(m *Medium) { m.txRange = metres }
}

// WithBitrate sets the channel bitrate in bits/second (default 6 Mb/s, the
// DSRC default data rate).
func WithBitrate(bps float64) Option {
	return func(m *Medium) { m.bitrate = bps }
}

// WithLossRate sets the independent per-receiver frame-loss probability
// (default 0).
func WithLossRate(p float64) Option {
	return func(m *Medium) { m.lossRate = p }
}

// WithJitter sets the maximum per-receiver MAC jitter (default 2 ms).
func WithJitter(max time.Duration) Option {
	return func(m *Medium) { m.jitterMax = max }
}

// WithBurstLoss replaces the uniform loss process with a two-state
// Gilbert–Elliott channel: the medium sits in a good or bad fading state,
// transitions between them with the given per-draw probabilities, and drops
// each frame copy with the loss probability of the current state. The state
// is channel-wide (fading affects every receiver) and advances one step per
// loss decision, all drawn from the medium's seeded RNG, so runs stay
// deterministic. Mean bad-burst length is 1/badToGood decisions. In sharded
// mode each shard carries its own fading state (channel-wide sequential
// state cannot cross shards deterministically); the serial path is
// unchanged.
func WithBurstLoss(lossGood, lossBad, goodToBad, badToGood float64) Option {
	return func(m *Medium) {
		m.burst = &burstState{
			lossGood: lossGood, lossBad: lossBad,
			goodToBad: goodToBad, badToGood: badToGood,
		}
	}
}

// WithDuplication makes each scheduled frame copy spawn a duplicate with
// probability p (default 0), modelling MAC-layer retransmit races. The
// duplicate takes its own loss draw and jitter.
func WithDuplication(p float64) Option {
	return func(m *Medium) { m.dupProb = p }
}

// WithReordering adds, with probability p per frame copy, an extra uniform
// delay in [0, maxExtra) on top of the normal propagation and jitter —
// enough to reorder frames sent close together (default off).
func WithReordering(p float64, maxExtra time.Duration) Option {
	return func(m *Medium) { m.reorderProb, m.reorderMax = p, maxExtra }
}

// WithLinearScan disables the grid-hash neighbor index: receivers resolve by
// scanning every attached device, the medium's original O(N) reference path.
// Indexed and linear media produce byte-identical simulations (the
// differential suite holds this); the option exists to prove exactly that,
// and as an escape hatch.
func WithLinearScan() Option {
	return func(m *Medium) { m.linearScan = true }
}

// burstState is the Gilbert–Elliott channel state.
type burstState struct {
	lossGood, lossBad    float64
	goodToBad, badToGood float64
	bad                  bool
}

func (b *burstState) clone() *burstState {
	c := *b
	c.bad = false
	return &c
}

// Medium is the shared wireless channel.
type Medium struct {
	txRange     float64
	bitrate     float64
	lossRate    float64
	jitterMax   time.Duration
	burst       *burstState
	dupProb     float64
	reorderProb float64
	reorderMax  time.Duration

	linearScan bool

	// windowed is true once AddShard has been called: the medium belongs to
	// a sharded run, devices attach to explicit shard contexts, and the
	// spatial index refreshes only at window barriers.
	windowed bool
	serial   *Shard   // the implicit context of a serial medium
	shards   []*Shard // all execution contexts (serial: exactly one)

	devices []*Interface
	index   *cellIndex // nil under WithLinearScan (or a degenerate range)

	// deliver is the single scheduler callback shared by every in-flight
	// frame copy; per-copy state travels in pooled delivery records, so the
	// per-frame broadcast path allocates nothing once the pool is warm.
	deliver func(any)
}

// Shard is one execution context of the medium: the runtime whose events its
// devices run on, the RNG stream their loss/jitter decisions draw from, and
// the context's private channel counters and scratch. A serial medium has
// exactly one, created implicitly; a sharded medium gets one per sim shard
// via AddShard. All of a Shard's state is touched only by its own shard's
// goroutine (or the orchestrator at barriers), so none of it needs locks.
type Shard struct {
	m       *Medium
	rt      sim.Runtime
	cross   sim.CrossPoster
	rng     *sim.RNG
	burst   *burstState
	stats   Stats
	freeDel []*delivery
	scratch collectScratch
}

// delivery is one frame copy in flight toward one receiver. Records are
// pooled per shard context and reused; a record is drawn from the sender's
// context and recycled into the receiver's, each touched only on its own
// shard's goroutine, so plain free lists suffice.
type delivery struct {
	dev   *Interface
	frame Frame
}

// propagationSpeed is the signal speed in m/s.
const propagationSpeed = 299_792_458.0

// NewMedium creates a wireless medium driven by sched, drawing loss and
// jitter decisions from rng.
func NewMedium(sched *sim.Scheduler, rng *sim.RNG, opts ...Option) *Medium {
	if sched == nil || rng == nil {
		panic("radio: NewMedium requires a scheduler and RNG")
	}
	m := &Medium{
		txRange:   1000,
		bitrate:   6_000_000,
		jitterMax: 2 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(m)
	}
	if !m.linearScan && m.txRange > 0 && !math.IsInf(m.txRange, 0) {
		m.index = newCellIndex(m.txRange)
	}
	m.serial = &Shard{m: m, rt: sched, cross: sched, rng: rng, burst: m.burst}
	m.shards = []*Shard{m.serial}
	m.deliver = m.deliverCopy
	return m
}

// AddShard registers one sim shard's execution context. The first call flips
// the medium into windowed (sharded) mode, discarding the implicit serial
// context; every device must then attach through AttachOn, and the run's
// orchestrator must call RefreshIndex at each window start. AddShard must
// precede all attaches.
func (m *Medium) AddShard(rt sim.Runtime, cross sim.CrossPoster, rng *sim.RNG) *Shard {
	if rt == nil || cross == nil || rng == nil {
		panic("radio: AddShard requires a runtime, cross-poster and RNG")
	}
	if len(m.devices) > 0 {
		panic("radio: AddShard after devices attached")
	}
	if !m.windowed {
		m.windowed = true
		m.serial = nil
		m.shards = m.shards[:0]
	}
	c := &Shard{m: m, rt: rt, cross: cross, rng: rng}
	if m.burst != nil {
		c.burst = m.burst.clone()
	}
	m.shards = append(m.shards, c)
	return c
}

// Windowed reports whether the medium runs in sharded (windowed) mode.
func (m *Medium) Windowed() bool { return m.windowed }

// RefreshIndex brings the spatial index's buckets up to date for positions
// at t. Serial media never need it (Send refreshes lazily); a sharded run's
// orchestrator calls it at each window start — from sim.Sharded.OnWindow,
// with t = the window end — so every shard reads the index without writes
// racing. Refreshing slightly ahead of a query is safe by the same
// early-never-late argument as the index's crossing-time nudge: within one
// lookahead a device moves a sub-millimetre fraction of a cell.
func (m *Medium) RefreshIndex(t time.Duration) {
	if m.index != nil {
		m.index.refresh(t)
	}
}

// getDelivery takes a record from the context's free list (or allocates the
// pool's first few).
func (c *Shard) getDelivery(dev *Interface, frame Frame) *delivery {
	if n := len(c.freeDel); n > 0 {
		d := c.freeDel[n-1]
		c.freeDel[n-1] = nil
		c.freeDel = c.freeDel[:n-1]
		d.dev, d.frame = dev, frame
		return d
	}
	return &delivery{dev: dev, frame: frame}
}

// putDelivery clears a record and returns it to the context's free list.
func (c *Shard) putDelivery(d *delivery) {
	d.dev = nil
	d.frame = Frame{}
	c.freeDel = append(c.freeDel, d)
}

// Range returns the shared transmission range in metres.
func (m *Medium) Range() float64 { return m.txRange }

// Stats returns a snapshot of the channel counters, summed over every
// execution context. The snapshot is independent of the live counters.
func (m *Medium) Stats() Stats {
	var out Stats
	for _, c := range m.shards {
		out.add(&c.stats)
	}
	return out
}

// Attach adds a device with the given initial pseudonym, trajectory and
// receive handler, returning its channel endpoint. On a sharded medium use
// AttachOn: every device needs an explicit home shard.
func (m *Medium) Attach(id wire.NodeID, loc mobility.Locator, recv Receiver) *Interface {
	if m.windowed {
		panic("radio: a sharded medium requires AttachOn with an explicit shard")
	}
	return m.AttachOn(m.serial, id, loc, recv)
}

// AttachOn adds a device homed on shard context c: its receive handler runs
// on that shard, and its sends draw from that shard's RNG stream.
func (m *Medium) AttachOn(c *Shard, id wire.NodeID, loc mobility.Locator, recv Receiver) *Interface {
	if c == nil || c.m != m {
		panic("radio: AttachOn requires a shard context of this medium")
	}
	if loc == nil || recv == nil {
		panic("radio: Attach requires a locator and receiver")
	}
	if id == wire.Broadcast {
		panic("radio: cannot attach with the broadcast NodeID")
	}
	ifc := &Interface{medium: m, shard: c, id: id, loc: loc, recv: recv, seq: len(m.devices)}
	m.devices = append(m.devices, ifc)
	if m.index != nil {
		m.index.add(ifc, c.rt.Now())
	}
	return ifc
}

// Interface is one device's endpoint on the medium.
type Interface struct {
	medium   *Medium
	shard    *Shard
	id       wire.NodeID
	loc      mobility.Locator
	recv     Receiver
	detached bool
	silenced bool

	// Spatial-index state (see cellIndex). seq is the attach order the
	// linear scan iterates in and the index merges by.
	seq    int
	kin    mobility.Kinematic
	cell   cellKey
	inCell bool
	dirty  bool
	gen    uint64
}

// NodeID returns the device's current pseudonym.
func (i *Interface) NodeID() wire.NodeID { return i.id }

// SetNodeID changes the device's pseudonym (certificate renewal). Frames
// already in flight to the old pseudonym are lost, as in a real identity
// change. In a sharded run, renames mutate the shared pseudonym map and so
// may only happen from the anchor shard's solo slot (renewal is an
// infrastructure interaction, so it already does).
func (i *Interface) SetNodeID(id wire.NodeID) {
	if id == wire.Broadcast {
		panic("radio: cannot take the broadcast NodeID")
	}
	if x := i.medium.index; x != nil && id != i.id && !i.detached {
		x.rename(i, i.id, id)
	}
	i.id = id
}

// SetReceiver replaces the device's receive handler. The attack layer uses
// it to interpose on a vehicle's frame processing.
func (i *Interface) SetReceiver(recv Receiver) {
	if recv == nil {
		panic("radio: SetReceiver with nil receiver")
	}
	i.recv = recv
}

// Detach removes the device from the channel permanently. Anchor-solo only
// in sharded runs, like SetNodeID.
func (i *Interface) Detach() {
	if i.detached {
		return
	}
	i.detached = true
	if x := i.medium.index; x != nil {
		x.remove(i)
	}
}

// SetSilenced pauses (true) or resumes (false) the radio without detaching;
// a silenced device neither sends nor receives.
func (i *Interface) SetSilenced(s bool) { i.silenced = s }

// active reports whether the device is transmitting/receiving at time t.
func (i *Interface) active(t time.Duration) bool {
	return !i.detached && !i.silenced && i.loc.OnHighwayAt(t)
}

// Send transmits payload to the pseudonym to (wire.Broadcast for all
// neighbours). Delivery is scheduled per in-range receiver.
//
// The return value models 802.11-style unicast acknowledgement: false means
// the frame certainly did not reach the addressee (absent, out of range,
// silenced, or eaten by the residual loss process after retries), which is
// how real AODV implementations detect broken links. Broadcasts are
// unacknowledged and always report true. A true for unicast can still
// rarely turn into a loss if the receiver deactivates while the frame is in
// flight.
func (i *Interface) Send(to wire.NodeID, payload []byte) bool {
	m := i.medium
	c := i.shard
	now := c.rt.Now()
	if !i.active(now) {
		c.stats.count(&c.stats.SuppressedFrames, payload, 0)
		return false
	}
	c.stats.count(&c.stats.SentFrames, payload, len(payload))
	from := i.id
	src := i.loc.PositionAt(now)
	txDelay := time.Duration(float64(len(payload)*8) / m.bitrate * float64(time.Second))
	acked := to == wire.Broadcast
	frame := Frame{From: from, To: to, Payload: payload}
	switch {
	case m.index == nil:
		for _, dev := range m.devices {
			if m.consider(c, i, dev, to, frame, src, txDelay, now) {
				acked = true
			}
		}
	case to != wire.Broadcast:
		// The linear path draws no RNG for non-addressees, so resolving the
		// addressee through the pseudonym map is draw-for-draw identical.
		for _, dev := range m.index.byID[to] {
			if m.consider(c, i, dev, to, frame, src, txDelay, now) {
				acked = true
			}
		}
	default:
		if !m.windowed {
			m.index.refresh(now)
		}
		for _, dev := range m.index.collectInto(&c.scratch, src) {
			if m.consider(c, i, dev, to, frame, src, txDelay, now) {
				acked = true
			}
		}
	}
	if !acked {
		c.stats.count(&c.stats.UnackedFrames, payload, len(payload))
	}
	return acked
}

// consider is the per-candidate body of Send, shared verbatim by the linear
// scan and both index paths so their RNG draw sequences cannot diverge. It
// reports whether a copy survived the loss process (the ack).
func (m *Medium) consider(c *Shard, sender, dev *Interface, to wire.NodeID, frame Frame, src mobility.Position, txDelay time.Duration, now time.Duration) bool {
	if dev == sender || !dev.active(now) {
		return false
	}
	if to != wire.Broadcast && dev.id != to {
		return false
	}
	dist := src.DistanceTo(dev.loc.PositionAt(now))
	if dist > m.txRange {
		return false
	}
	acked := m.offerCopy(c, dev, frame, txDelay, dist, now)
	// Fault injection: a duplicate copy races the original with its own
	// loss draw and jitter. The probability check short-circuits so an
	// unconfigured medium draws exactly the same RNG sequence as before.
	if m.dupProb > 0 && c.rng.Bool(m.dupProb) {
		c.stats.count(&c.stats.DuplicatedFrames, frame.Payload, len(frame.Payload))
		if m.offerCopy(c, dev, frame, txDelay, dist, now) {
			acked = true
		}
	}
	return acked
}

// offerCopy accounts for and schedules one frame copy toward one in-range
// receiver, reporting whether the copy survived the loss process at send
// time. Every offered copy ends up exactly once in DeliveredFrames or
// LostFrames (or is still in flight) — the conservation ledger
// CheckConservation audits.
func (m *Medium) offerCopy(c *Shard, dev *Interface, frame Frame, txDelay time.Duration, dist float64, now time.Duration) bool {
	payload := frame.Payload
	c.stats.count(&c.stats.OfferedFrames, payload, len(payload))
	if c.dropCopy() {
		c.stats.count(&c.stats.LostFrames, payload, len(payload))
		return false
	}
	prop := time.Duration(dist / propagationSpeed * float64(time.Second))
	delay := txDelay + prop + c.rng.Jitter(m.jitterMax)
	if m.reorderProb > 0 && c.rng.Bool(m.reorderProb) {
		delay += c.rng.Jitter(m.reorderMax)
	}
	c.stats.InFlightFrames++
	// Route the copy to the receiver's home shard; for a serial medium (and
	// same-shard pairs) this is a plain AfterFunc on the shared runtime.
	// Cross-shard delay is bounded below by txDelay, which is why a frame's
	// minimum airtime is the sharded run's lookahead.
	c.cross.PostTo(dev.shard.rt, now+delay, m.deliver, c.getDelivery(dev, frame))
	return true
}

// deliverCopy is the shared arrival callback for every in-flight frame copy.
// It runs on the receiver's home shard: it settles the conservation ledger
// (delivered or lost) in the receiver shard's counters, hands the frame to
// the receiver, and recycles the delivery record there — after recv returns,
// so a re-entrant Send inside the receiver draws fresh records. In-flight
// accounting may thus increment on one shard and decrement on another; the
// per-shard counters are summed with wraparound in Stats, so the merged
// ledger stays exact.
func (m *Medium) deliverCopy(a any) {
	d := a.(*delivery)
	dev, frame := d.dev, d.frame
	c := dev.shard
	payload := frame.Payload
	c.stats.InFlightFrames--
	if !dev.active(c.rt.Now()) {
		c.stats.count(&c.stats.LostFrames, payload, len(payload))
		c.putDelivery(d)
		return
	}
	c.stats.count(&c.stats.DeliveredFrames, payload, len(payload))
	dev.recv(frame)
	c.putDelivery(d)
}

// dropCopy draws one loss decision: uniform by default, Gilbert–Elliott when
// burst loss is configured.
func (c *Shard) dropCopy() bool {
	b := c.burst
	if b == nil {
		return c.rng.Bool(c.m.lossRate)
	}
	if b.bad {
		if c.rng.Bool(b.badToGood) {
			b.bad = false
		}
	} else if c.rng.Bool(b.goodToBad) {
		b.bad = true
	}
	p := b.lossGood
	if b.bad {
		p = b.lossBad
	}
	return c.rng.Bool(p)
}

// Neighbors returns the pseudonyms of all active devices currently within
// range of i, in attach order. Intended for tests and diagnostics; protocol
// code should discover neighbours with Hello beacons.
func (i *Interface) Neighbors() []wire.NodeID {
	return i.AppendNeighbors(nil)
}

// AppendNeighbors appends the pseudonyms of all active in-range devices to
// dst and returns the extended slice, so a caller polling repeatedly can
// reuse one scratch buffer (dst[:0]) instead of allocating per poll.
func (i *Interface) AppendNeighbors(dst []wire.NodeID) []wire.NodeID {
	m := i.medium
	c := i.shard
	now := c.rt.Now()
	if !i.active(now) {
		return dst
	}
	src := i.loc.PositionAt(now)
	if m.index != nil {
		if !m.windowed {
			m.index.refresh(now)
		}
		for _, dev := range m.index.collectInto(&c.scratch, src) {
			if dev == i || !dev.active(now) {
				continue
			}
			if src.DistanceTo(dev.loc.PositionAt(now)) <= m.txRange {
				dst = append(dst, dev.id)
			}
		}
		return dst
	}
	for _, dev := range m.devices {
		if dev == i || !dev.active(now) {
			continue
		}
		if src.DistanceTo(dev.loc.PositionAt(now)) <= m.txRange {
			dst = append(dst, dev.id)
		}
	}
	return dst
}

// Stats aggregates channel counters. Frame counters are per transmission
// attempt or per receiver as noted; byte counters follow their frame
// counter.
type Stats struct {
	SentFrames       Counter // transmissions initiated
	OfferedFrames    Counter // per-receiver frame copies entering the loss process
	DeliveredFrames  Counter // per-receiver successful deliveries
	LostFrames       Counter // per-receiver losses (random loss or receiver gone)
	DuplicatedFrames Counter // extra copies spawned by WithDuplication
	SuppressedFrames Counter // sends attempted while the device was inactive
	UnackedFrames    Counter // unicasts whose addressee was unreachable at send time

	InFlightFrames uint64 // copies offered but not yet delivered or lost
}

// CheckConservation verifies the channel's packet ledger: every offered frame
// copy is delivered, lost, or still in flight — in frames and in bytes.
// A non-nil error means the medium (or a backbone sharing this ledger)
// leaked or double-counted traffic.
func (s Stats) CheckConservation() error {
	if got := s.DeliveredFrames.Frames + s.LostFrames.Frames + s.InFlightFrames; got != s.OfferedFrames.Frames {
		return fmt.Errorf("radio: frame ledger broken: offered %d != delivered %d + lost %d + in-flight %d",
			s.OfferedFrames.Frames, s.DeliveredFrames.Frames, s.LostFrames.Frames, s.InFlightFrames)
	}
	if s.DeliveredFrames.Bytes+s.LostFrames.Bytes > s.OfferedFrames.Bytes {
		return fmt.Errorf("radio: byte ledger broken: offered %d < delivered %d + lost %d",
			s.OfferedFrames.Bytes, s.DeliveredFrames.Bytes, s.LostFrames.Bytes)
	}
	return nil
}

// Counter tallies frames and bytes, overall and per packet kind.
type Counter struct {
	Frames uint64
	Bytes  uint64
	ByKind map[wire.Kind]uint64
}

func (s *Stats) count(c *Counter, payload []byte, bytes int) {
	c.Frames++
	c.Bytes += uint64(bytes)
	if len(payload) > 0 {
		if c.ByKind == nil {
			c.ByKind = make(map[wire.Kind]uint64)
		}
		c.ByKind[wire.Kind(payload[0])]++
	}
}

func (c Counter) String() string {
	return fmt.Sprintf("%d frames / %d bytes", c.Frames, c.Bytes)
}

// add accumulates o into c, copying (never aliasing) o's per-kind map.
func (c *Counter) add(o *Counter) {
	c.Frames += o.Frames
	c.Bytes += o.Bytes
	if o.ByKind != nil {
		if c.ByKind == nil {
			c.ByKind = make(map[wire.Kind]uint64, len(o.ByKind))
		}
		for k, v := range o.ByKind {
			c.ByKind[k] += v
		}
	}
}

// add accumulates o into s. In-flight counts sum with uint64 wraparound,
// which keeps cross-shard deliveries exact: the receiver shard's decrement
// may underflow its own counter, but the sum over shards is the true
// in-flight count.
func (s *Stats) add(o *Stats) {
	s.SentFrames.add(&o.SentFrames)
	s.OfferedFrames.add(&o.OfferedFrames)
	s.DeliveredFrames.add(&o.DeliveredFrames)
	s.LostFrames.add(&o.LostFrames)
	s.DuplicatedFrames.add(&o.DuplicatedFrames)
	s.SuppressedFrames.add(&o.SuppressedFrames)
	s.UnackedFrames.add(&o.UnackedFrames)
	s.InFlightFrames += o.InFlightFrames
}

func (c Counter) clone() Counter {
	out := c
	if c.ByKind != nil {
		out.ByKind = make(map[wire.Kind]uint64, len(c.ByKind))
		for k, v := range c.ByKind {
			out.ByKind[k] = v
		}
	}
	return out
}

func (s Stats) clone() Stats {
	return Stats{
		SentFrames:       s.SentFrames.clone(),
		OfferedFrames:    s.OfferedFrames.clone(),
		DeliveredFrames:  s.DeliveredFrames.clone(),
		LostFrames:       s.LostFrames.clone(),
		DuplicatedFrames: s.DuplicatedFrames.clone(),
		SuppressedFrames: s.SuppressedFrames.clone(),
		UnackedFrames:    s.UnackedFrames.clone(),
		InFlightFrames:   s.InFlightFrames,
	}
}
